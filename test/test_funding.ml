(* Tickets & currencies: valuation (paper Figure 3), activation propagation
   (§4.4), inflation (§3.2), acyclicity, lifecycle, and randomized invariant
   checks. *)

module F = Core.Funding

let check = Alcotest.check
let checkf msg = check (Alcotest.float 1e-9) msg
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* Build the paper's Figure 3 graph:
   base -> alice (1000.base), bob (2000.base)
   alice -> task1 (100.alice, inactive), task2 (200.alice)
   bob -> task3 (100.bob)
   task2 issues thread2=200, thread3=300 (held); task3 issues thread4=100. *)
let figure3 () =
  let sys = F.create_system () in
  let base = F.base sys in
  let mk name ~from ~amount =
    let c = F.make_currency sys ~name in
    let t = F.issue sys ~currency:from ~amount in
    F.fund sys ~ticket:t ~currency:c;
    c
  in
  let alice = mk "alice" ~from:base ~amount:1000 in
  let bob = mk "bob" ~from:base ~amount:2000 in
  let task1 = mk "task1" ~from:alice ~amount:100 in
  let task2 = mk "task2" ~from:alice ~amount:200 in
  let task3 = mk "task3" ~from:bob ~amount:100 in
  let hold c amount =
    let t = F.issue sys ~currency:c ~amount in
    F.hold sys t;
    t
  in
  let thread1 = F.issue sys ~currency:task1 ~amount:100 in
  let thread2 = hold task2 200 in
  let thread3 = hold task2 300 in
  let thread4 = hold task3 100 in
  (sys, base, alice, bob, task1, task2, task3, thread1, thread2, thread3, thread4)

let test_figure3_values () =
  let sys, _, alice, bob, task1, task2, task3, _t1, t2, t3, t4 = figure3 () in
  F.check_invariants sys;
  checkf "thread2 = 400" 400. (F.ticket_value sys t2);
  checkf "thread3 = 600" 600. (F.ticket_value sys t3);
  checkf "thread4 = 2000" 2000. (F.ticket_value sys t4);
  checkf "task2 currency = 1000" 1000. (F.currency_value sys task2);
  checkf "task3 currency = 2000" 2000. (F.currency_value sys task3);
  (* task1 is inactive: its backing ticket is inactive and alice's active
     amount only counts the task2 allocation *)
  checki "alice active amount" 200 (F.active_amount alice);
  checki "bob active amount" 100 (F.active_amount bob);
  checkf "task1 value 0 while inactive" 0. (F.currency_value sys task1)

let test_figure3_task1_wakes () =
  let sys, _, alice, _, _task1, _, _, thread1, t2, _, _ = figure3 () in
  (* thread1 starts competing: task1 activates and dilutes alice *)
  F.hold sys thread1;
  F.check_invariants sys;
  checki "alice active amount" 300 (F.active_amount alice);
  checkf "thread2 drops to (1000*200/300)*(200/500)" (2000. /. 3. *. 0.4)
    (F.ticket_value sys t2);
  checkf "thread1 now worth its task1 share" (1000. /. 3.)
    (F.ticket_value sys thread1);
  (* and back *)
  F.suspend sys thread1;
  F.check_invariants sys;
  checki "alice active amount restored" 200 (F.active_amount alice);
  checkf "thread2 restored" 400. (F.ticket_value sys t2)

let test_base_valuation () =
  let sys = F.create_system () in
  let t = F.issue sys ~currency:(F.base sys) ~amount:123 in
  F.hold sys t;
  checkf "base ticket is face value" 123. (F.ticket_value sys t);
  F.suspend sys t;
  checkf "inactive ticket is worthless" 0. (F.ticket_value sys t)

let test_activation_propagation_chain () =
  (* base -> a -> b -> c, client at the bottom: activity of the whole chain
     follows the single held ticket *)
  let sys = F.create_system () in
  let base = F.base sys in
  let mk name from amount =
    let c = F.make_currency sys ~name in
    let t = F.issue sys ~currency:from ~amount in
    F.fund sys ~ticket:t ~currency:c;
    (c, t)
  in
  let a, ta = mk "a" base 100 in
  let b, tb = mk "b" a 10 in
  let c, tc = mk "c" b 10 in
  let held = F.issue sys ~currency:c ~amount:1 in
  checkb "backing inactive before any client" false (F.is_active ta);
  F.hold sys held;
  F.check_invariants sys;
  checkb "ta active" true (F.is_active ta);
  checkb "tb active" true (F.is_active tb);
  checkb "tc active" true (F.is_active tc);
  checkf "full value flows down" 100. (F.ticket_value sys held);
  F.suspend sys held;
  F.check_invariants sys;
  checkb "ta inactive again" false (F.is_active ta);
  checkb "tb inactive again" false (F.is_active tb);
  checki "a active amount" 0 (F.active_amount a);
  F.resume sys held;
  checkb "reactivates" true (F.is_active ta)

let test_sibling_share_shift () =
  (* two clients in one currency: one blocking doubles the other's value *)
  let sys = F.create_system () in
  let base = F.base sys in
  let cur = F.make_currency sys ~name:"users" in
  let t = F.issue sys ~currency:base ~amount:600 in
  F.fund sys ~ticket:t ~currency:cur;
  let c1 = F.issue sys ~currency:cur ~amount:100 in
  let c2 = F.issue sys ~currency:cur ~amount:200 in
  F.hold sys c1;
  F.hold sys c2;
  checkf "c1 share" 200. (F.ticket_value sys c1);
  checkf "c2 share" 400. (F.ticket_value sys c2);
  F.suspend sys c2;
  checkf "c1 absorbs full value" 600. (F.ticket_value sys c1);
  checkf "c2 worthless while suspended" 0. (F.ticket_value sys c2)

let test_inflation_contained () =
  (* paper §3.2/§5.5: inflation inside one currency must not leak out *)
  let sys = F.create_system () in
  let base = F.base sys in
  let mk name =
    let c = F.make_currency sys ~name in
    let t = F.issue sys ~currency:base ~amount:1000 in
    F.fund sys ~ticket:t ~currency:c;
    c
  in
  let a = mk "a" and b = mk "b" in
  let a1 = F.issue sys ~currency:a ~amount:100 in
  let b1 = F.issue sys ~currency:b ~amount:100 in
  F.hold sys a1;
  F.hold sys b1;
  checkf "a1 before" 1000. (F.ticket_value sys a1);
  (* b inflates: issue 300 more inside b *)
  let b2 = F.issue sys ~currency:b ~amount:300 in
  F.hold sys b2;
  F.check_invariants sys;
  checkf "a1 unchanged by b's inflation" 1000. (F.ticket_value sys a1);
  checkf "b1 diluted 4x" 250. (F.ticket_value sys b1);
  checkf "b2 gets the rest" 750. (F.ticket_value sys b2)

let test_set_amount () =
  let sys = F.create_system () in
  let base = F.base sys in
  let t = F.issue sys ~currency:base ~amount:100 in
  F.hold sys t;
  checki "active amount" 100 (F.active_amount base);
  F.set_amount sys t 250;
  checki "inflated" 250 (F.active_amount base);
  checki "ticket amount" 250 (F.amount t);
  F.set_amount sys t 0;
  checki "deflated to zero" 0 (F.active_amount base);
  F.set_amount sys t 10;
  checki "re-inflated" 10 (F.active_amount base);
  F.check_invariants sys;
  Alcotest.check_raises "negative" (Invalid_argument "Funding.set_amount: negative amount")
    (fun () -> F.set_amount sys t (-1))

let test_set_amount_zero_crossing_propagates () =
  (* deflating a currency's only active ticket to zero must deactivate its
     backing tickets, and back *)
  let sys = F.create_system () in
  let base = F.base sys in
  let c = F.make_currency sys ~name:"c" in
  let backing = F.issue sys ~currency:base ~amount:50 in
  F.fund sys ~ticket:backing ~currency:c;
  let held = F.issue sys ~currency:c ~amount:10 in
  F.hold sys held;
  checkb "backing active" true (F.is_active backing);
  F.set_amount sys held 0;
  F.check_invariants sys;
  checkb "backing deactivated on zero" false (F.is_active backing);
  F.set_amount sys held 5;
  F.check_invariants sys;
  checkb "backing reactivated" true (F.is_active backing)

let test_cycle_rejected () =
  let sys = F.create_system () in
  let a = F.make_currency sys ~name:"a" in
  let b = F.make_currency sys ~name:"b" in
  let t_ab = F.issue sys ~currency:a ~amount:10 in
  F.fund sys ~ticket:t_ab ~currency:b;
  (* now b depends on a; funding a with a b-denominated ticket is a cycle *)
  let t_ba = F.issue sys ~currency:b ~amount:10 in
  checkb "cycle raises" true
    (match F.fund sys ~ticket:t_ba ~currency:a with
    | () -> false
    | exception F.Cycle _ -> true);
  (* self-funding is rejected outright *)
  let t_aa = F.issue sys ~currency:a ~amount:1 in
  checkb "self-funding rejected" true
    (match F.fund sys ~ticket:t_aa ~currency:a with
    | () -> false
    | exception Invalid_argument _ -> true);
  F.check_invariants sys

let test_deep_cycle_rejected () =
  let sys = F.create_system () in
  let names = [ "c1"; "c2"; "c3"; "c4" ] in
  let curs = List.map (fun name -> F.make_currency sys ~name) names in
  let rec chain = function
    | a :: (b :: _ as rest) ->
        let t = F.issue sys ~currency:a ~amount:1 in
        F.fund sys ~ticket:t ~currency:b;
        chain rest
    | _ -> ()
  in
  chain curs;
  let c1 = List.hd curs and c4 = List.nth curs 3 in
  let t = F.issue sys ~currency:c4 ~amount:1 in
  checkb "long cycle rejected" true
    (match F.fund sys ~ticket:t ~currency:c1 with
    | () -> false
    | exception F.Cycle _ -> true)

let test_duplicate_names () =
  let sys = F.create_system () in
  ignore (F.make_currency sys ~name:"x");
  checkb "duplicate" true
    (match F.make_currency sys ~name:"x" with
    | _ -> false
    | exception F.Duplicate_name "x" -> true);
  checkb "base reserved" true
    (match F.make_currency sys ~name:"base" with
    | _ -> false
    | exception F.Duplicate_name _ -> true)

let test_find_and_list () =
  let sys = F.create_system () in
  let a = F.make_currency sys ~name:"a" in
  checkb "find a" true
    (match F.find_currency sys "a" with Some c -> c == a | None -> false);
  checkb "find missing" true (F.find_currency sys "zz" = None);
  checki "currencies incl. base" 2 (List.length (F.currencies sys));
  checkb "base first" true (F.is_base (List.hd (F.currencies sys)))

let test_remove_currency () =
  let sys = F.create_system () in
  let a = F.make_currency sys ~name:"a" in
  let t = F.issue sys ~currency:(F.base sys) ~amount:5 in
  F.fund sys ~ticket:t ~currency:a;
  checkb "in use (backing)" true
    (match F.remove_currency sys a with
    | () -> false
    | exception F.In_use _ -> true);
  F.unfund sys t;
  let issued = F.issue sys ~currency:a ~amount:5 in
  checkb "in use (issued)" true
    (match F.remove_currency sys a with
    | () -> false
    | exception F.In_use _ -> true);
  F.destroy_ticket sys issued;
  F.remove_currency sys a;
  checkb "gone" true (F.find_currency sys "a" = None);
  checkb "base protected" true
    (match F.remove_currency sys (F.base sys) with
    | () -> false
    | exception F.In_use _ -> true)

let test_destroy_ticket_everywhere () =
  let sys = F.create_system () in
  let base = F.base sys in
  let c = F.make_currency sys ~name:"c" in
  (* backing ticket *)
  let t1 = F.issue sys ~currency:base ~amount:10 in
  F.fund sys ~ticket:t1 ~currency:c;
  (* held ticket *)
  let t2 = F.issue sys ~currency:c ~amount:4 in
  F.hold sys t2;
  (* unattached *)
  let t3 = F.issue sys ~currency:c ~amount:4 in
  F.destroy_ticket sys t2;
  F.destroy_ticket sys t1;
  F.destroy_ticket sys t3;
  F.check_invariants sys;
  checki "no backing left" 0 (List.length (F.backing_tickets sys c));
  checki "no issued left" 0 (List.length (F.issued_tickets sys c));
  checkb "destroyed ticket unusable" true
    (match F.hold sys t2 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_lifecycle_errors () =
  let sys = F.create_system () in
  let t = F.issue sys ~currency:(F.base sys) ~amount:1 in
  Alcotest.check_raises "suspend unheld" (Invalid_argument "Funding.suspend: ticket not held")
    (fun () -> F.suspend sys t);
  Alcotest.check_raises "unfund unattached" (Invalid_argument "Funding.unfund: ticket not backing")
    (fun () -> F.unfund sys t);
  let c = F.make_currency sys ~name:"c" in
  F.fund sys ~ticket:t ~currency:c;
  Alcotest.check_raises "hold a backing ticket"
    (Invalid_argument "Funding.hold: ticket is backing a currency") (fun () ->
      F.hold sys t);
  checkb "negative issue rejected" true
    (match F.issue sys ~currency:c ~amount:(-1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Money conservation: value flows through the graph without being created.
   The total base-unit value held by competing tickets can never exceed the
   base currency's active amount, and equals it exactly when every funding
   chain terminates in an active holder. *)
let qcheck_value_conservation =
  let module Rng = Core.Rng in
  QCheck.Test.make ~name:"held value never exceeds (and in trees equals) base value"
    ~count:80 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~algo:Splitmix64 ~seed () in
      let sys = F.create_system () in
      let base = F.base sys in
      (* random tree of currencies, each funded from an earlier one *)
      let currencies = ref [| base |] in
      let n_cur = 1 + Rng.int_below rng 6 in
      for i = 0 to n_cur - 1 do
        let from = Rng.choose rng !currencies in
        let c = F.make_currency sys ~name:(Printf.sprintf "c%d" i) in
        let t = F.issue sys ~currency:from ~amount:(1 + Rng.int_below rng 500) in
        F.fund sys ~ticket:t ~currency:c;
        currencies := Array.append !currencies [| c |]
      done;
      (* one active holder per currency: every chain terminates actively *)
      let held =
        Array.to_list !currencies
        |> List.filter (fun c -> not (F.is_base c))
        |> List.map (fun c ->
               let t = F.issue sys ~currency:c ~amount:(1 + Rng.int_below rng 100) in
               F.hold sys t;
               t)
      in
      (* plus some held base tickets *)
      let held =
        if Rng.bool rng then begin
          let t = F.issue sys ~currency:base ~amount:(1 + Rng.int_below rng 100) in
          F.hold sys t;
          t :: held
        end
        else held
      in
      F.check_invariants sys;
      let v = F.Valuation.make sys in
      let total_held =
        List.fold_left (fun acc t -> acc +. F.Valuation.ticket_value v t) 0. held
      in
      let base_active = float_of_int (F.active_amount base) in
      (* full equality in an all-active tree; suspend one holder and the
         total can only drop *)
      let equal_when_active = abs_float (total_held -. base_active) < 1e-6 in
      let still_bounded =
        match held with
        | first :: _ ->
            F.suspend sys first;
            let v2 = F.Valuation.make sys in
            let t2 =
              List.fold_left
                (fun acc t -> acc +. F.Valuation.ticket_value v2 t)
                0. held
            in
            t2 <= float_of_int (F.active_amount base) +. 1e-6
        | [] -> true
      in
      equal_when_active && still_bounded)

(* Randomized operation sequences must never break the structural
   invariants. *)
let qcheck_random_ops_keep_invariants =
  let module Rng = Core.Rng in
  QCheck.Test.make ~name:"random funding operations preserve invariants" ~count:60
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~algo:Splitmix64 ~seed () in
      let sys = F.create_system () in
      let currencies = ref [ F.base sys ] in
      let tickets = ref [] in
      for i = 0 to 199 do
        (match Rng.int_below rng 8 with
        | 0 ->
            currencies :=
              F.make_currency sys ~name:(Printf.sprintf "c%d-%d" seed i) :: !currencies
        | 1 | 2 ->
            let denom = Rng.choose rng (Array.of_list !currencies) in
            tickets :=
              F.issue sys ~currency:denom ~amount:(Rng.int_below rng 100) :: !tickets
        | 3 when !tickets <> [] -> (
            let t = Rng.choose rng (Array.of_list !tickets) in
            let c = Rng.choose rng (Array.of_list !currencies) in
            try F.fund sys ~ticket:t ~currency:c
            with F.Cycle _ | Invalid_argument _ -> ())
        | 4 when !tickets <> [] -> (
            let t = Rng.choose rng (Array.of_list !tickets) in
            try F.hold sys t with Invalid_argument _ -> ())
        | 5 when !tickets <> [] -> (
            let t = Rng.choose rng (Array.of_list !tickets) in
            try if Rng.bool rng then F.suspend sys t else F.resume sys t
            with Invalid_argument _ -> ())
        | 6 when !tickets <> [] -> (
            let t = Rng.choose rng (Array.of_list !tickets) in
            try F.set_amount sys t (Rng.int_below rng 50)
            with Invalid_argument _ -> ())
        | 7 when !tickets <> [] ->
            let t = Rng.choose rng (Array.of_list !tickets) in
            (try F.destroy_ticket sys t with Invalid_argument _ -> ());
            tickets := List.filter (fun t' -> t' != t) !tickets
        | _ -> ());
        F.check_invariants sys
      done;
      true)

(* From-scratch valuation through the public accessors only, bypassing the
   incremental caches. Mirrors the cached arithmetic operation-for-operation
   (same fold order over the backing list, same value/active division), so
   agreement below can be asserted with exact float equality. *)
let scratch_value sys root =
  let memo = Hashtbl.create 16 in
  let rec unit c =
    if F.is_base c then 1.
    else if F.active_amount c = 0 then 0.
    else
      match Hashtbl.find_opt memo (F.currency_id c) with
      | Some x -> x
      | None ->
          Hashtbl.replace memo (F.currency_id c) 0.;
          let x = value c /. float_of_int (F.active_amount c) in
          Hashtbl.replace memo (F.currency_id c) x;
          x
  and value c =
    if F.is_base c then float_of_int (F.active_amount c)
    else
      List.fold_left
        (fun acc t ->
          if F.is_active t then
            acc +. (float_of_int (F.amount t) *. unit (F.denomination t))
          else acc)
        0. (F.backing_tickets sys c)
  in
  value root

let scratch_unit sys c =
  if F.is_base c then 1.
  else if F.active_amount c = 0 then 0.
  else scratch_value sys c /. float_of_int (F.active_amount c)

(* Tentpole property of the incremental valuation engine: after arbitrary
   mutation sequences on a multi-level graph, (1) every cached valuation
   equals a from-scratch walk bit-for-bit, and (2) the scoped change events
   name every currency whose observed valuation moved since it was last
   read — the contract the scheduler and resource managers rely on to
   revalue only O(dirtied) clients per draw. *)
let qcheck_incremental_valuation_exact =
  let module Rng = Core.Rng in
  QCheck.Test.make
    ~name:"incremental valuation = from-scratch; events cover every move"
    ~count:1000 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~algo:Splitmix64 ~seed:(seed + 7919) () in
      let sys = F.create_system () in
      let base = F.base sys in
      let currencies = ref [ base ] in
      let tickets = ref [] in
      (* multi-level graph: each currency is funded from a random earlier
         one, so chains several levels deep (and diamonds) appear *)
      let mk_currency i =
        let from = Rng.choose rng (Array.of_list !currencies) in
        let c = F.make_currency sys ~name:(Printf.sprintf "q%d-%d" seed i) in
        let t = F.issue sys ~currency:from ~amount:(1 + Rng.int_below rng 400) in
        F.fund sys ~ticket:t ~currency:c;
        tickets := t :: !tickets;
        currencies := c :: !currencies
      in
      for i = 0 to 5 + Rng.int_below rng 6 do
        mk_currency i
      done;
      List.iter
        (fun c ->
          if (not (F.is_base c)) && Rng.bool rng then begin
            let t = F.issue sys ~currency:c ~amount:(1 + Rng.int_below rng 100) in
            F.hold sys t;
            tickets := t :: !tickets
          end)
        !currencies;
      (* subscribe like a consumer: accumulate dirtied currency ids *)
      let dirt = Hashtbl.create 32 in
      let sub =
        F.on_change sys (fun ch ->
            List.iter
              (fun c -> Hashtbl.replace dirt (F.currency_id c) ())
              (F.changed ch))
      in
      (* last observed (value, unit) per currency, read through the caches *)
      let shadow = Hashtbl.create 32 in
      let observe_all () =
        List.iter
          (fun c ->
            Hashtbl.replace shadow (F.currency_id c)
              (F.currency_value sys c, F.unit_value sys c))
          (F.currencies sys)
      in
      observe_all ();
      Hashtbl.reset dirt;
      let ok = ref true in
      for i = 0 to 29 do
        (match Rng.int_below rng 7 with
        | 0 -> mk_currency (100 + i)
        | 1 ->
            let denom = Rng.choose rng (Array.of_list !currencies) in
            tickets :=
              F.issue sys ~currency:denom ~amount:(Rng.int_below rng 200)
              :: !tickets
        | 2 when !tickets <> [] -> (
            let t = Rng.choose rng (Array.of_list !tickets) in
            let c = Rng.choose rng (Array.of_list !currencies) in
            try F.fund sys ~ticket:t ~currency:c
            with F.Cycle _ | Invalid_argument _ -> ())
        | 3 when !tickets <> [] -> (
            let t = Rng.choose rng (Array.of_list !tickets) in
            try F.hold sys t with Invalid_argument _ -> ())
        | 4 when !tickets <> [] -> (
            let t = Rng.choose rng (Array.of_list !tickets) in
            try if Rng.bool rng then F.suspend sys t else F.resume sys t
            with Invalid_argument _ -> ())
        | 5 when !tickets <> [] -> (
            let t = Rng.choose rng (Array.of_list !tickets) in
            try F.set_amount sys t (Rng.int_below rng 300)
            with Invalid_argument _ -> ())
        | 6 when !tickets <> [] ->
            let t = Rng.choose rng (Array.of_list !tickets) in
            (try F.destroy_ticket sys t with Invalid_argument _ -> ());
            tickets := List.filter (fun t' -> t' != t) !tickets
        | _ -> ());
        (* after each mutation: exact cache agreement, and any move since
           the last observation must have been announced *)
        List.iter
          (fun c ->
            let fresh_v = scratch_value sys c and fresh_u = scratch_unit sys c in
            let cached_v = F.currency_value sys c in
            let cached_u = F.unit_value sys c in
            if cached_v <> fresh_v || cached_u <> fresh_u then ok := false;
            (match Hashtbl.find_opt shadow (F.currency_id c) with
            | Some (ov, ou)
              when (ov <> cached_v || ou <> cached_u)
                   && not (Hashtbl.mem dirt (F.currency_id c)) ->
                ok := false
            | _ -> ());
            Hashtbl.replace shadow (F.currency_id c) (cached_v, cached_u))
          (F.currencies sys);
        Hashtbl.reset dirt;
        F.check_invariants sys
      done;
      F.unsubscribe sys sub;
      !ok)

let test_pp_smoke () =
  let sys, _, alice, _, _, _, _, _, t2, _, _ = figure3 () in
  let s = Format.asprintf "%a" F.pp_system sys in
  checkb "system rendering mentions alice" true
    (Core.Corpus.count_substring ~haystack:s ~needle:"alice" > 0);
  let cs = Format.asprintf "%a" (F.pp_currency sys) alice in
  checkb "currency rendering has active amount" true
    (Core.Corpus.count_substring ~haystack:cs ~needle:"active" > 0);
  let ts = Format.asprintf "%a" F.pp_ticket t2 in
  checkb "ticket rendering shows denomination" true
    (Core.Corpus.count_substring ~haystack:ts ~needle:"task2" > 0)

let test_valuation_snapshot_consistent () =
  (* one snapshot values many tickets coherently and cheaply *)
  let sys, _, _, _, _, task2, task3, _, t2, t3, t4 = figure3 () in
  let v = F.Valuation.make sys in
  checkf "t2 via snapshot" 400. (F.Valuation.ticket_value v t2);
  checkf "t3 via snapshot" 600. (F.Valuation.ticket_value v t3);
  checkf "t4 via snapshot" 2000. (F.Valuation.ticket_value v t4);
  checkf "currency via snapshot" 1000. (F.Valuation.currency_value v task2);
  checkf "unit value" 2. (F.Valuation.unit_value v task2);
  checkf "unit value task3" 20. (F.Valuation.unit_value v task3)

let test_to_dot () =
  let sys, _, _, _, _task1, _, _, _, _, _, _ = figure3 () in
  let dot = F.to_dot sys in
  let has needle = Core.Corpus.count_substring ~haystack:dot ~needle > 0 in
  checkb "digraph" true (has "digraph funding");
  checkb "currencies as boxes" true (has "shape=box");
  checkb "held tickets as ellipses" true (has "shape=ellipse");
  checkb "alice labelled" true (has "alice");
  checkb "inactive edges dashed" true (has "style=dashed");
  checkb "amount labels" true (has "1000.base")

let () =
  Alcotest.run "funding"
    [
      ( "valuation",
        [
          Alcotest.test_case "paper figure 3 values" `Quick test_figure3_values;
          Alcotest.test_case "figure 3 with task1 active" `Quick test_figure3_task1_wakes;
          Alcotest.test_case "base tickets are face value" `Quick test_base_valuation;
          Alcotest.test_case "sibling share shift" `Quick test_sibling_share_shift;
        ] );
      ( "activation",
        [
          Alcotest.test_case "propagation through a chain" `Quick
            test_activation_propagation_chain;
          Alcotest.test_case "set_amount zero crossings propagate" `Quick
            test_set_amount_zero_crossing_propagates;
        ] );
      ( "inflation",
        [
          Alcotest.test_case "contained within a currency" `Quick test_inflation_contained;
          Alcotest.test_case "set_amount updates sums" `Quick test_set_amount;
        ] );
      ( "graph",
        [
          Alcotest.test_case "direct cycle rejected" `Quick test_cycle_rejected;
          Alcotest.test_case "deep cycle rejected" `Quick test_deep_cycle_rejected;
          Alcotest.test_case "duplicate names" `Quick test_duplicate_names;
          Alcotest.test_case "find and list" `Quick test_find_and_list;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "remove currency" `Quick test_remove_currency;
          Alcotest.test_case "destroy tickets in any state" `Quick
            test_destroy_ticket_everywhere;
          Alcotest.test_case "misuse raises" `Quick test_lifecycle_errors;
          Alcotest.test_case "graphviz export" `Quick test_to_dot;
          Alcotest.test_case "pretty printers" `Quick test_pp_smoke;
          Alcotest.test_case "valuation snapshots" `Quick test_valuation_snapshot_consistent;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_value_conservation;
            qcheck_random_ops_keep_invariants;
            qcheck_incremental_valuation_exact;
          ] );
    ]
