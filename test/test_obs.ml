(* Observability subsystem: event bus fan-out, ring-buffer recorder and its
   exporters, the metrics registry, and end-to-end determinism of the typed
   event stream. *)

open Core

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let actor name tid = Obs.Event.actor_of ~tid ~tname:name

let select name tid = Obs.Event.Select { who = actor name tid }

(* --- minimal JSON validity checker ----------------------------------------- *)

(* enough of RFC 8259 to reject anything Chrome's trace loader would: a
   recursive-descent scan that must consume the entire string *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c = if peek () = Some c then advance () else raise Exit in
  let literal w = String.iter expect w in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> raise Exit
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> raise Exit
              done;
              go ()
          | _ -> raise Exit)
      | Some c when Char.code c < 0x20 -> raise Exit (* raw control char *)
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            saw := true;
            advance ();
            go ()
        | _ -> if not !saw then raise Exit
      in
      go ()
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise Exit);
    skip_ws ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | _ -> expect '}'
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elements () =
        value ();
        match peek () with
        | Some ',' ->
            advance ();
            elements ()
        | _ -> expect ']'
      in
      elements ()
  in
  match value () with
  | () -> !pos = n
  | exception Exit -> false

let count_substring hay needle =
  let nl = String.length needle in
  let rec go from acc =
    match String.index_from_opt hay from needle.[0] with
    | None -> acc
    | Some i ->
        if i + nl <= String.length hay && String.sub hay i nl = needle then
          go (i + 1) (acc + 1)
        else go (i + 1) acc
  in
  if nl = 0 then 0 else go 0 0

let test_json_checker_self_test () =
  List.iter
    (fun s -> checkb s true (json_valid s))
    [
      "[]"; "{}"; "[1,2.5,-3e4]"; {|{"a":"b\"c","d":[true,false,null]}|};
      {|[{"name":"A"}]|}; " [ 1 , 2 ] ";
    ];
  List.iter
    (fun s -> checkb s false (json_valid s))
    [ ""; "["; "[1,]"; {|{"a":}|}; {|{"a" 1}|}; "[1] trailing"; "{'a':1}";
      "[\"raw\nnewline\"]" ]

(* --- bus -------------------------------------------------------------------- *)

let test_bus_fanout_and_unsubscribe () =
  let bus = Obs.Bus.create () in
  checkb "idle bus inactive" false (Obs.Bus.active bus);
  let got1 = ref [] and got2 = ref [] in
  let s1 = Obs.Bus.subscribe ~name:"one" bus (fun t e -> got1 := (t, e) :: !got1) in
  let _s2 = Obs.Bus.subscribe ~name:"two" bus (fun t e -> got2 := (t, e) :: !got2) in
  checkb "active with subscribers" true (Obs.Bus.active bus);
  checki "count" 2 (Obs.Bus.subscriber_count bus);
  check (Alcotest.list Alcotest.string) "names" [ "one"; "two" ]
    (Obs.Bus.subscribers bus);
  Obs.Bus.emit bus ~time:1 (select "a" 0);
  Obs.Bus.emit bus ~time:2 (select "b" 1);
  checki "both delivered to one" 2 (List.length !got1);
  checkb "identical streams" true (!got1 = !got2);
  Obs.Bus.unsubscribe s1;
  Obs.Bus.unsubscribe s1;
  (* idempotent *)
  checki "one left" 1 (Obs.Bus.subscriber_count bus);
  Obs.Bus.emit bus ~time:3 (select "c" 2);
  checki "unsubscribed sees nothing new" 2 (List.length !got1);
  checki "survivor still receives" 3 (List.length !got2)

let test_bus_churn_during_delivery () =
  (* a subscriber unsubscribing itself mid-delivery must not disturb the
     current emission *)
  let bus = Obs.Bus.create () in
  let sub = ref None in
  let fired = ref 0 and other = ref 0 in
  sub :=
    Some
      (Obs.Bus.subscribe bus (fun _ _ ->
           incr fired;
           Option.iter Obs.Bus.unsubscribe !sub));
  let _keep = Obs.Bus.subscribe bus (fun _ _ -> incr other) in
  Obs.Bus.emit bus ~time:1 (select "a" 0);
  Obs.Bus.emit bus ~time:2 (select "b" 0);
  checki "self-removing subscriber fired once" 1 !fired;
  checki "other subscriber saw every emission" 2 !other

(* --- recorder --------------------------------------------------------------- *)

let test_ring_wraparound () =
  let r = Obs.Recorder.create ~capacity:8 () in
  for i = 1 to 20 do
    Obs.Recorder.record r i (select (Printf.sprintf "t%d" i) i)
  done;
  checki "capacity" 8 (Obs.Recorder.capacity r);
  checki "length capped" 8 (Obs.Recorder.length r);
  checki "seen counts everything" 20 (Obs.Recorder.seen r);
  checki "dropped" 12 (Obs.Recorder.dropped r);
  let times = List.map fst (Obs.Recorder.events r) in
  check (Alcotest.list Alcotest.int) "oldest-first window"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ] times;
  Obs.Recorder.clear r;
  checki "clear empties" 0 (Obs.Recorder.length r);
  checki "clear resets accounting" 0 (Obs.Recorder.dropped r)

let test_chrome_json_valid_and_escaped () =
  let r = Obs.Recorder.create ~capacity:64 () in
  let nasty = "we\"ird\\name\ttab" in
  let a = actor nasty 0 in
  Obs.Recorder.record r 0 (Obs.Event.Spawn { who = a });
  Obs.Recorder.record r 0 (Obs.Event.Select { who = a });
  Obs.Recorder.record r 100 (Obs.Event.Block { who = a; on = "sleep" });
  Obs.Recorder.record r 100
    (Obs.Event.Preempt { who = a; used = 100; quantum = 250; why = Obs.Event.End_block });
  Obs.Recorder.record r 150 (Obs.Event.Wake { who = a });
  Obs.Recorder.record r 150 (Obs.Event.Select { who = a });
  (* no final Preempt: the exporter must close the dangling slice itself *)
  let json = Obs.Recorder.to_chrome_json r in
  checkb "valid JSON" true (json_valid json);
  checkb "quotes and backslashes escaped" true
    (count_substring json {|we\"ird\\name\ttab|} > 0);
  checki "balanced B/E pairs" (count_substring json {|"ph":"B"|})
    (count_substring json {|"ph":"E"|});
  checki "thread_name metadata once" 1 (count_substring json "thread_name")

let test_chrome_json_wrapped_open_slice () =
  (* wraparound can evict a Select whose matching Preempt survived; the E
     must then be suppressed, not emitted unbalanced *)
  let r = Obs.Recorder.create ~capacity:2 () in
  let a = actor "w" 0 in
  Obs.Recorder.record r 0 (Obs.Event.Select { who = a });
  Obs.Recorder.record r 100
    (Obs.Event.Preempt { who = a; used = 100; quantum = 100; why = Obs.Event.End_quantum });
  Obs.Recorder.record r 100 (Obs.Event.Select { who = a });
  Obs.Recorder.record r 200
    (Obs.Event.Preempt { who = a; used = 100; quantum = 100; why = Obs.Event.End_quantum });
  (* window now holds [Select@100; Preempt@200] -- wait, capacity 2 keeps the
     last two events: Select@100 and Preempt@200, a matched pair. Push once
     more so the window is [Preempt@200; Select@200] and the orphan Preempt
     leads. *)
  Obs.Recorder.record r 200 (Obs.Event.Select { who = a });
  let json = Obs.Recorder.to_chrome_json r in
  checkb "valid JSON" true (json_valid json);
  checki "orphan E suppressed, dangling B closed"
    (count_substring json {|"ph":"B"|})
    (count_substring json {|"ph":"E"|})

let test_csv_shape () =
  let r = Obs.Recorder.create ~capacity:16 () in
  let a = actor "com,ma" 3 in
  Obs.Recorder.record r 5 (Obs.Event.Spawn { who = a });
  Obs.Recorder.record r 7 (Obs.Event.Block { who = a; on = "lock" });
  let csv = Obs.Recorder.to_csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  checki "header + one row per event" 3 (List.length lines);
  check Alcotest.string "header" "time_us,event,tid,thread,detail" (List.hd lines);
  checkb "comma-bearing name quoted" true (count_substring csv {|"com,ma"|} > 0)

(* --- live kernel helpers ----------------------------------------------------- *)

let lottery_kernel ~seed () =
  let rng = Rng.create ~seed () in
  let ls = Lottery_sched.create ~rng () in
  let k = Kernel.create ~quantum:(Time.ms 100) ~sched:(Lottery_sched.sched ls) () in
  (k, ls)

let spin_thread k ls name amount =
  let th =
    Kernel.spawn k ~name (fun () ->
        while true do
          Api.compute (Time.ms 10)
        done)
  in
  ignore
    (Lottery_sched.fund_thread ls th ~amount ~from:(Lottery_sched.base_currency ls));
  th

(* --- determinism of the typed stream ----------------------------------------- *)

let run_traced seed =
  let k, ls = lottery_kernel ~seed () in
  let r = Obs.Recorder.create ~capacity:(1 lsl 16) () in
  Obs.Recorder.attach r (Kernel.bus k);
  let _a = spin_thread k ls "a" 100 in
  let _b = spin_thread k ls "b" 200 in
  let _i =
    let th =
      Kernel.spawn k ~name:"i" (fun () ->
          while true do
            Api.compute (Time.ms 20);
            Api.sleep (Time.ms 50)
          done)
    in
    ignore
      (Lottery_sched.fund_thread ls th ~amount:100
         ~from:(Lottery_sched.base_currency ls));
    th
  in
  ignore (Kernel.run k ~until:(Time.seconds 5));
  List.map
    (fun (t, e) -> Printf.sprintf "%d %s" t (Obs.Event.render e))
    (Obs.Recorder.events r)

let test_typed_stream_deterministic () =
  let one = run_traced 42 and two = run_traced 42 in
  checkb "non-trivial stream" true (List.length one > 100);
  checkb "same seed, byte-identical streams" true (one = two);
  let three = run_traced 43 in
  checkb "different seed diverges" true (one <> three)

(* --- multiple subscribers on a live kernel ----------------------------------- *)

let test_multi_subscriber_full_stream () =
  let k, ls = lottery_kernel ~seed:9 () in
  let timeline = Lotto_sim.Timeline.attach k () in
  let r = Obs.Recorder.create ~capacity:(1 lsl 16) () in
  Obs.Recorder.attach r (Kernel.bus k);
  let probe = ref 0 in
  let _sub = Obs.Bus.subscribe ~name:"probe" (Kernel.bus k) (fun _ _ -> incr probe) in
  let tha = spin_thread k ls "a" 100 in
  let _thb = spin_thread k ls "b" 300 in
  ignore (Kernel.run k ~until:(Time.seconds 2));
  checkb "probe saw traffic" true (!probe > 0);
  checki "probe and recorder saw the same stream" (Obs.Recorder.seen r) !probe;
  checki "nothing dropped below capacity" 0 (Obs.Recorder.dropped r);
  (* the timeline subscriber works from the same stream: its per-thread CPU
     matches the kernel's own accounting *)
  checki "timeline cpu = kernel cpu" (Kernel.cpu_time tha)
    (Lotto_sim.Timeline.cpu_of timeline "a")

(* --- metrics ----------------------------------------------------------------- *)

let test_metrics_quanta_match_kernel () =
  let k, ls = lottery_kernel ~seed:5 () in
  let m = Obs.Metrics.create () in
  Obs.Metrics.attach m (Kernel.bus k);
  let tha = spin_thread k ls "a" 100 in
  let thb = spin_thread k ls "b" 200 in
  ignore (Kernel.run k ~until:(Time.seconds 3));
  Obs.Metrics.detach m;
  let by_name n =
    match List.find_opt (fun s -> s.Obs.Metrics.name = n) (Obs.Metrics.snapshots m) with
    | Some s -> s
    | None -> Alcotest.failf "no snapshot for %s" n
  in
  checki "a: metric quanta = kernel cpu" (Kernel.cpu_time tha) (by_name "a").quanta;
  checki "b: metric quanta = kernel cpu" (Kernel.cpu_time thb) (by_name "b").quanta;
  checki "total quanta = clock" (Time.seconds 3) (Obs.Metrics.total_quanta m);
  checkb "a won lotteries" true ((by_name "a").wins > 0);
  checki "spinners never block" 0 (by_name "a").blocks

let test_metrics_wait_time () =
  let k, ls = lottery_kernel ~seed:6 () in
  let m = Obs.Metrics.create () in
  Obs.Metrics.attach m (Kernel.bus k);
  let th =
    Kernel.spawn k ~name:"sleeper" (fun () ->
        while true do
          Api.compute (Time.ms 10);
          Api.sleep (Time.ms 40)
        done)
  in
  ignore
    (Lottery_sched.fund_thread ls th ~amount:100
       ~from:(Lottery_sched.base_currency ls));
  ignore (Kernel.run k ~until:(Time.seconds 2));
  match Obs.Metrics.snapshots m with
  | [ s ] ->
      checkb "blocked at least once" true (s.blocks > 0);
      (* the final block may still be pending at the horizon *)
      checkb "one wait sample per completed block" true
        (let n = Array.length s.wait_us in
         n = s.blocks || n = s.blocks - 1);
      Array.iter
        (fun w -> checkb "each wait is the sleep duration" true (w = 40_000.))
        s.wait_us;
      checkb "compensated after each early block" true (s.compensations > 0)
  | l -> Alcotest.failf "expected 1 snapshot, got %d" (List.length l)

let test_fairness_gauge () =
  let k, ls = lottery_kernel ~seed:7 () in
  let m = Obs.Metrics.create () in
  Obs.Metrics.attach m (Kernel.bus k);
  let tha = spin_thread k ls "a" 100 in
  let thb = spin_thread k ls "b" 200 in
  let thc = spin_thread k ls "c" 300 in
  ignore (Kernel.run k ~until:(Time.seconds 60));
  let entitled =
    List.map
      (fun th -> (Kernel.thread_id th, Lottery_sched.thread_entitlement ls th))
      [ tha; thb; thc ]
  in
  let shares, p = Obs.Metrics.fairness m ~entitled in
  checki "three rows" 3 (List.length shares);
  List.iter
    (fun (s : Obs.Metrics.share) ->
      checkb
        (Printf.sprintf "%s within 10%% of entitlement" s.s_name)
        true
        (Float.abs (s.observed -. s.entitled) < 0.10))
    shares;
  (match p with
  | Some p -> checkb "1:2:3 split statistically consistent" true (p > 0.001)
  | None -> Alcotest.fail "p-value expected");
  let text = Obs.Metrics.summary ~entitled m in
  checkb "summary names all threads" true
    (List.for_all (fun n -> count_substring text n > 0) [ "a"; "b"; "c" ]);
  checkb "summary prints verdict" true (count_substring text "consistent" > 0)

let test_fairness_none_when_undefined () =
  let m = Obs.Metrics.create () in
  let _, p = Obs.Metrics.fairness m ~entitled:[ (0, 1.); (1, 1.) ] in
  checkb "no events -> no verdict" true (p = None)

(* --- legacy tracer compatibility --------------------------------------------- *)

let test_legacy_render_format () =
  let a = actor "worker" 4 in
  check Alcotest.string "spawn" "spawn worker" (Obs.Event.render (Spawn { who = a }));
  check Alcotest.string "block" "block worker"
    (Obs.Event.render (Block { who = a; on = "sleep" }));
  check Alcotest.string "wake" "wake worker" (Obs.Event.render (Wake { who = a }));
  check Alcotest.string "select" "select worker"
    (Obs.Event.render (Select { who = a }));
  check Alcotest.string "exit ok" "exit worker"
    (Obs.Event.render (Exit { who = a; failure = None }));
  check Alcotest.string "exit failure" "exit worker (boom)"
    (Obs.Event.render (Exit { who = a; failure = Some "boom" }))

let () =
  Alcotest.run "obs"
    [
      ( "json-checker",
        [ Alcotest.test_case "accepts valid, rejects invalid" `Quick
            test_json_checker_self_test ] );
      ( "bus",
        [
          Alcotest.test_case "fan-out and unsubscribe" `Quick
            test_bus_fanout_and_unsubscribe;
          Alcotest.test_case "churn during delivery" `Quick
            test_bus_churn_during_delivery;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "chrome json valid + escaped" `Quick
            test_chrome_json_valid_and_escaped;
          Alcotest.test_case "chrome json after wraparound" `Quick
            test_chrome_json_wrapped_open_slice;
          Alcotest.test_case "csv shape" `Quick test_csv_shape;
        ] );
      ( "stream",
        [
          Alcotest.test_case "typed stream deterministic" `Quick
            test_typed_stream_deterministic;
          Alcotest.test_case "multiple subscribers, full stream" `Quick
            test_multi_subscriber_full_stream;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "quanta match kernel accounting" `Quick
            test_metrics_quanta_match_kernel;
          Alcotest.test_case "wait-time samples" `Quick test_metrics_wait_time;
          Alcotest.test_case "fairness gauge" `Quick test_fairness_gauge;
          Alcotest.test_case "fairness undefined without data" `Quick
            test_fairness_none_when_undefined;
        ] );
      ( "legacy",
        [ Alcotest.test_case "render matches old tracer" `Quick
            test_legacy_render_format ] );
    ]
