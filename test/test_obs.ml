(* Observability subsystem: event bus fan-out, ring-buffer recorder and its
   exporters, the metrics registry, and end-to-end determinism of the typed
   event stream. *)

open Core

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let actor name tid = Obs.Event.actor_of ~tid ~tname:name

let select name tid = Obs.Event.Select { who = actor name tid; cpu = 0 }

(* --- minimal JSON validity checker ----------------------------------------- *)

(* enough of RFC 8259 to reject anything Chrome's trace loader would: a
   recursive-descent scan that must consume the entire string *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c = if peek () = Some c then advance () else raise Exit in
  let literal w = String.iter expect w in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> raise Exit
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> raise Exit
              done;
              go ()
          | _ -> raise Exit)
      | Some c when Char.code c < 0x20 -> raise Exit (* raw control char *)
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            saw := true;
            advance ();
            go ()
        | _ -> if not !saw then raise Exit
      in
      go ()
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise Exit);
    skip_ws ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | _ -> expect '}'
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elements () =
        value ();
        match peek () with
        | Some ',' ->
            advance ();
            elements ()
        | _ -> expect ']'
      in
      elements ()
  in
  match value () with
  | () -> !pos = n
  | exception Exit -> false

let count_substring hay needle =
  let nl = String.length needle in
  let rec go from acc =
    match String.index_from_opt hay from needle.[0] with
    | None -> acc
    | Some i ->
        if i + nl <= String.length hay && String.sub hay i nl = needle then
          go (i + 1) (acc + 1)
        else go (i + 1) acc
  in
  if nl = 0 then 0 else go 0 0

let test_json_checker_self_test () =
  List.iter
    (fun s -> checkb s true (json_valid s))
    [
      "[]"; "{}"; "[1,2.5,-3e4]"; {|{"a":"b\"c","d":[true,false,null]}|};
      {|[{"name":"A"}]|}; " [ 1 , 2 ] ";
    ];
  List.iter
    (fun s -> checkb s false (json_valid s))
    [ ""; "["; "[1,]"; {|{"a":}|}; {|{"a" 1}|}; "[1] trailing"; "{'a':1}";
      "[\"raw\nnewline\"]" ]

(* --- bus -------------------------------------------------------------------- *)

let test_bus_fanout_and_unsubscribe () =
  let bus = Obs.Bus.create () in
  checkb "idle bus inactive" false (Obs.Bus.active bus);
  let got1 = ref [] and got2 = ref [] in
  let s1 = Obs.Bus.subscribe ~name:"one" bus (fun t e -> got1 := (t, e) :: !got1) in
  let _s2 = Obs.Bus.subscribe ~name:"two" bus (fun t e -> got2 := (t, e) :: !got2) in
  checkb "active with subscribers" true (Obs.Bus.active bus);
  checki "count" 2 (Obs.Bus.subscriber_count bus);
  check (Alcotest.list Alcotest.string) "names" [ "one"; "two" ]
    (Obs.Bus.subscribers bus);
  Obs.Bus.emit bus ~time:1 (select "a" 0);
  Obs.Bus.emit bus ~time:2 (select "b" 1);
  checki "both delivered to one" 2 (List.length !got1);
  checkb "identical streams" true (!got1 = !got2);
  Obs.Bus.unsubscribe s1;
  Obs.Bus.unsubscribe s1;
  (* idempotent *)
  checki "one left" 1 (Obs.Bus.subscriber_count bus);
  Obs.Bus.emit bus ~time:3 (select "c" 2);
  checki "unsubscribed sees nothing new" 2 (List.length !got1);
  checki "survivor still receives" 3 (List.length !got2)

let test_bus_churn_during_delivery () =
  (* a subscriber unsubscribing itself mid-delivery must not disturb the
     current emission *)
  let bus = Obs.Bus.create () in
  let sub = ref None in
  let fired = ref 0 and other = ref 0 in
  sub :=
    Some
      (Obs.Bus.subscribe bus (fun _ _ ->
           incr fired;
           Option.iter Obs.Bus.unsubscribe !sub));
  let _keep = Obs.Bus.subscribe bus (fun _ _ -> incr other) in
  Obs.Bus.emit bus ~time:1 (select "a" 0);
  Obs.Bus.emit bus ~time:2 (select "b" 0);
  checki "self-removing subscriber fired once" 1 !fired;
  checki "other subscriber saw every emission" 2 !other

let test_bus_subscribe_during_delivery () =
  (* a subscriber added while an emission is being delivered must not see
     that emission — emit works from a snapshot — but must see the next *)
  let bus = Obs.Bus.create () in
  let late = ref 0 and first = ref 0 in
  let _s =
    Obs.Bus.subscribe bus (fun _ _ ->
        incr first;
        if !first = 1 then
          ignore (Obs.Bus.subscribe ~name:"late" bus (fun _ _ -> incr late)))
  in
  Obs.Bus.emit bus ~time:1 (select "a" 0);
  checki "mid-emit subscriber missed the current emission" 0 !late;
  checki "but is registered" 2 (Obs.Bus.subscriber_count bus);
  Obs.Bus.emit bus ~time:2 (select "b" 0);
  checki "and receives from the next one on" 1 !late;
  checki "existing subscriber saw both" 2 !first

(* --- recorder --------------------------------------------------------------- *)

let test_ring_wraparound () =
  let r = Obs.Recorder.create ~capacity:8 () in
  for i = 1 to 20 do
    Obs.Recorder.record r i (select (Printf.sprintf "t%d" i) i)
  done;
  checki "capacity" 8 (Obs.Recorder.capacity r);
  checki "length capped" 8 (Obs.Recorder.length r);
  checki "seen counts everything" 20 (Obs.Recorder.seen r);
  checki "dropped" 12 (Obs.Recorder.dropped r);
  let times = List.map fst (Obs.Recorder.events r) in
  check (Alcotest.list Alcotest.int) "oldest-first window"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ] times;
  Obs.Recorder.clear r;
  checki "clear empties" 0 (Obs.Recorder.length r);
  checki "clear resets accounting" 0 (Obs.Recorder.dropped r)

let test_chrome_json_valid_and_escaped () =
  let r = Obs.Recorder.create ~capacity:64 () in
  let nasty = "we\"ird\\name\ttab" in
  let a = actor nasty 0 in
  Obs.Recorder.record r 0 (Obs.Event.Spawn { who = a });
  Obs.Recorder.record r 0 (Obs.Event.Select { who = a; cpu = 0 });
  Obs.Recorder.record r 100 (Obs.Event.Block { who = a; on = "sleep" });
  Obs.Recorder.record r 100
    (Obs.Event.Preempt { who = a; used = 100; quantum = 250; why = Obs.Event.End_block });
  Obs.Recorder.record r 150 (Obs.Event.Wake { who = a });
  Obs.Recorder.record r 150 (Obs.Event.Select { who = a; cpu = 0 });
  (* no final Preempt: the exporter must close the dangling slice itself *)
  let json = Obs.Recorder.to_chrome_json r in
  checkb "valid JSON" true (json_valid json);
  checkb "quotes and backslashes escaped" true
    (count_substring json {|we\"ird\\name\ttab|} > 0);
  checki "balanced B/E pairs" (count_substring json {|"ph":"B"|})
    (count_substring json {|"ph":"E"|});
  checki "thread_name metadata once" 1 (count_substring json "thread_name")

let test_chrome_json_wrapped_open_slice () =
  (* wraparound can evict a Select whose matching Preempt survived; the E
     must then be suppressed, not emitted unbalanced *)
  let r = Obs.Recorder.create ~capacity:2 () in
  let a = actor "w" 0 in
  Obs.Recorder.record r 0 (Obs.Event.Select { who = a; cpu = 0 });
  Obs.Recorder.record r 100
    (Obs.Event.Preempt { who = a; used = 100; quantum = 100; why = Obs.Event.End_quantum });
  Obs.Recorder.record r 100 (Obs.Event.Select { who = a; cpu = 0 });
  Obs.Recorder.record r 200
    (Obs.Event.Preempt { who = a; used = 100; quantum = 100; why = Obs.Event.End_quantum });
  (* window now holds [Select@100; Preempt@200] -- wait, capacity 2 keeps the
     last two events: Select@100 and Preempt@200, a matched pair. Push once
     more so the window is [Preempt@200; Select@200] and the orphan Preempt
     leads. *)
  Obs.Recorder.record r 200 (Obs.Event.Select { who = a; cpu = 0 });
  let json = Obs.Recorder.to_chrome_json r in
  checkb "valid JSON" true (json_valid json);
  checki "orphan E suppressed, dangling B closed"
    (count_substring json {|"ph":"B"|})
    (count_substring json {|"ph":"E"|})

let test_csv_shape () =
  let r = Obs.Recorder.create ~capacity:16 () in
  let a = actor "com,ma" 3 in
  Obs.Recorder.record r 5 (Obs.Event.Spawn { who = a });
  Obs.Recorder.record r 7 (Obs.Event.Block { who = a; on = "lock" });
  let csv = Obs.Recorder.to_csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  checki "header + one row per event" 3 (List.length lines);
  check Alcotest.string "header" "time_us,event,tid,thread,detail" (List.hd lines);
  checkb "comma-bearing name quoted" true (count_substring csv {|"com,ma"|} > 0)

let test_trace_window_metadata () =
  (* the Chrome export must carry the ring-window accounting so a wrapped
     trace is detectable from the file alone *)
  let r = Obs.Recorder.create ~capacity:4 () in
  for i = 1 to 10 do
    Obs.Recorder.record r i (select "t" 0)
  done;
  let json = Obs.Recorder.to_chrome_json r in
  checkb "valid JSON" true (json_valid json);
  checki "trace_window metadata once" 1 (count_substring json "trace_window");
  checkb "dropped count surfaced" true
    (count_substring json {|"seen":10,"capacity":4,"dropped":6|} > 0)

let test_csv_dropped_comment () =
  let r = Obs.Recorder.create ~capacity:4 () in
  for i = 1 to 10 do
    Obs.Recorder.record r i (select "t" 0)
  done;
  let csv = Obs.Recorder.to_csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (* header stays first so the file still machine-parses; the warning is a
     comment row right after it *)
  check Alcotest.string "header first" "time_us,event,tid,thread,detail"
    (List.hd lines);
  checkb "comment row flags the wrap" true
    (match lines with
    | _ :: c :: _ -> String.length c > 0 && c.[0] = '#' && count_substring c "dropped 6" > 0
    | _ -> false);
  (* and no comment row at all when nothing was dropped *)
  let r2 = Obs.Recorder.create ~capacity:16 () in
  Obs.Recorder.record r2 1 (select "t" 0);
  checki "clean window has no comment rows" 0
    (count_substring (Obs.Recorder.to_csv r2) "#")

(* --- hdr histograms ----------------------------------------------------------- *)

(* same rank convention as Hdr.percentile: the 1-indexed sample of rank
   ceil(p/100 * n) in the sorted data *)
let exact_rank_percentile sorted p =
  let n = Array.length sorted in
  let r = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  let r = if r < 1 then 1 else if r > n then n else r in
  sorted.(r - 1)

let test_hdr_exact_region () =
  (* below 2^sub_bits every bucket has unit width: quantiles are exact *)
  let h = Obs.Hdr.create ~sub_bits:5 () in
  for v = 0 to 31 do
    Obs.Hdr.record h v
  done;
  checki "count" 32 (Obs.Hdr.count h);
  checki "sum exact" (31 * 32 / 2) (Obs.Hdr.sum h);
  checki "min" 0 (Obs.Hdr.min_value h);
  checki "max" 31 (Obs.Hdr.max_value_seen h);
  checkb "p50 exact" true (Obs.Hdr.percentile h 50. = 15.);
  checkb "p100 exact" true (Obs.Hdr.percentile h 100. = 31.)

let test_hdr_vs_exact_quantiles () =
  (* the acceptance property: 10^6 samples from a latency-shaped mixture,
     histogram quantiles within the documented relative error of the exact
     order statistics (and of Descriptive's interpolating quantile) *)
  let rng = Rng.create ~seed:71 () in
  let n = 1_000_000 in
  let h = Obs.Hdr.create () in
  let xs =
    Array.init n (fun _ ->
        if Rng.float_unit rng < 0.1 then Rng.int_below rng 32
        else int_of_float (Rng.exponential rng ~mean:4000.))
  in
  Array.iter (fun v -> Obs.Hdr.record h v) xs;
  checki "all recorded, none clamped" n (Obs.Hdr.count h);
  checki "no clamping at default max" 0 (Obs.Hdr.clamped h);
  let sorted = Array.map float_of_int xs in
  Array.sort compare sorted;
  let tol = Obs.Hdr.max_relative_error h in
  checkb "documented bound is 2^-5" true (tol = 1. /. 32.);
  List.iter
    (fun p ->
      let est = Obs.Hdr.percentile h p in
      let exact = exact_rank_percentile sorted p in
      let rel a b = if b = 0. then Float.abs (a -. b) else Float.abs (a -. b) /. b in
      checkb
        (Printf.sprintf "p%g within %.4f of exact rank (est %.0f, exact %.0f)" p
           tol est exact)
        true
        (rel est exact <= tol);
      (* Descriptive interpolates between adjacent ranks; with 10^6 samples
         that shifts the target by at most one order statistic *)
      let interp = Descriptive.percentile sorted p in
      checkb
        (Printf.sprintf "p%g within %.4f of Descriptive (est %.0f, interp %.1f)"
           p tol est interp)
        true
        (rel est interp <= tol +. 0.005))
    [ 50.; 90.; 99.; 99.9 ]

let test_hdr_clamping_and_reset () =
  let h = Obs.Hdr.create ~sub_bits:5 ~max_value:1024 () in
  Obs.Hdr.record h (-3);
  (* negatives clamp to 0 *)
  Obs.Hdr.record h 5000;
  (* oversized samples clamp into the top bucket but keep exact sum/max *)
  checki "count includes clamped" 2 (Obs.Hdr.count h);
  checki "one clamped sample" 1 (Obs.Hdr.clamped h);
  checki "sum keeps the exact oversized value" 5000 (Obs.Hdr.sum h);
  checki "max exact" 5000 (Obs.Hdr.max_value_seen h);
  checki "negative floored at zero" 0 (Obs.Hdr.min_value h);
  let snap = Obs.Hdr.copy h in
  Obs.Hdr.reset h;
  checki "reset empties" 0 (Obs.Hdr.count h);
  checki "copy unaffected by reset" 2 (Obs.Hdr.count snap)

let test_hdr_merge () =
  (* interleave one stream into two histograms: the merge must be
     indistinguishable from having recorded everything into one *)
  let a = Obs.Hdr.create () and b = Obs.Hdr.create () in
  let all = Obs.Hdr.create () in
  let rng = Rng.create ~seed:5 () in
  for i = 0 to 9_999 do
    let v = Rng.int_below rng 100_000 in
    Obs.Hdr.record (if i mod 2 = 0 then a else b) v;
    Obs.Hdr.record all v
  done;
  Obs.Hdr.merge ~into:a b;
  checki "merged count" (Obs.Hdr.count all) (Obs.Hdr.count a);
  checki "merged sum" (Obs.Hdr.sum all) (Obs.Hdr.sum a);
  checki "merged min" (Obs.Hdr.min_value all) (Obs.Hdr.min_value a);
  checki "merged max" (Obs.Hdr.max_value_seen all) (Obs.Hdr.max_value_seen a);
  List.iter
    (fun p ->
      checkb
        (Printf.sprintf "merged p%g = single-stream p%g" p p)
        true
        (Obs.Hdr.percentile a p = Obs.Hdr.percentile all p))
    [ 1.; 50.; 99.; 100. ];
  Alcotest.check_raises "mismatched parameters rejected"
    (Invalid_argument "Hdr.merge: mismatched histogram parameters") (fun () ->
      Obs.Hdr.merge ~into:a (Obs.Hdr.create ~sub_bits:6 ()))

(* --- live kernel helpers ----------------------------------------------------- *)

let lottery_kernel ~seed () =
  let rng = Rng.create ~seed () in
  let ls = Lottery_sched.create ~rng () in
  let k = Kernel.create ~quantum:(Time.ms 100) ~sched:(Lottery_sched.sched ls) () in
  (k, ls)

let spin_thread k ls name amount =
  let th =
    Kernel.spawn k ~name (fun () ->
        while true do
          Api.compute (Time.ms 10)
        done)
  in
  ignore
    (Lottery_sched.fund_thread ls th ~amount ~from:(Lottery_sched.base_currency ls));
  th

(* --- causal rpc spans --------------------------------------------------------- *)

(* round-robin kernels: no funding boilerplate, and span semantics are
   scheduler-independent *)
let rr_kernel () =
  Kernel.create ~quantum:(Time.ms 10)
    ~sched:(Round_robin.sched (Round_robin.create ()))
    ()

let traced_kernel () =
  let k = rr_kernel () in
  let tracer = Obs.Span.create () in
  Obs.Span.attach tracer (Kernel.bus k);
  (k, tracer)

let span_accounting_closed tracer =
  let st = Obs.Span.stats tracer in
  st.Obs.Span.st_open = 0
  && st.st_closed + st.st_dropped + st.st_orphaned = st.st_total

let test_span_roundtrip_and_flow_events () =
  let k, tracer = traced_kernel () in
  let r = Obs.Recorder.create ~capacity:(1 lsl 12) () in
  Obs.Recorder.attach r (Kernel.bus k);
  let port = Kernel.create_port k ~name:"echo" in
  ignore
    (Kernel.spawn k ~name:"server" (fun () ->
         while true do
           let m = Api.receive port in
           Api.compute (Time.ms 5);
           Api.reply m m.payload
         done));
  ignore
    (Kernel.spawn k ~name:"client" (fun () ->
         for _ = 1 to 5 do
           ignore (Api.rpc port "ping")
         done));
  ignore (Kernel.run k ~until:(Time.seconds 2));
  Obs.Span.finalize tracer ~now:(Kernel.now k);
  let st = Obs.Span.stats tracer in
  checki "five spans opened" 5 st.Obs.Span.st_total;
  checki "all closed" 5 st.st_closed;
  checki "none left open" 0 st.st_open;
  check (Alcotest.list Alcotest.string) "no violations" []
    (Obs.Span.violations tracer);
  Obs.Span.iter tracer (fun s ->
      checkb "top-level spans have no parent" true (s.Obs.Span.parent = None);
      checkb "server endpoint recorded" true (s.Obs.Span.server <> None);
      checkb "send <= recv <= close" true
        (match (s.Obs.Span.recv_at, s.Obs.Span.closed_at) with
        | Some rv, Some c -> s.Obs.Span.sent_at <= rv && rv <= c
        | _ -> false));
  let span_json = Obs.Span.to_chrome_json tracer in
  checkb "span JSON valid" true (json_valid span_json);
  checki "one async begin per span" 5 (count_substring span_json {|"ph":"b"|});
  checki "one service instant per span" 5 (count_substring span_json {|"ph":"n"|});
  checki "one async end per span" 5 (count_substring span_json {|"ph":"e"|});
  (* the recorder's trace carries matching flow events: the request path
     renders as connected arrows across the two thread tracks *)
  let trace_json = Obs.Recorder.to_chrome_json r in
  checkb "trace JSON valid" true (json_valid trace_json);
  checki "flow start per request" 5 (count_substring trace_json {|"ph":"s"|});
  checki "flow step at pickup" 5 (count_substring trace_json {|"ph":"t"|});
  checki "flow finish at reply" 5 (count_substring trace_json {|"ph":"f"|})

let test_span_nested_parenting () =
  (* client -> front -> back: the inner request must be parented to the
     span its sender was servicing, forming a two-level tree *)
  let k, tracer = traced_kernel () in
  let front = Kernel.create_port k ~name:"front" in
  let back = Kernel.create_port k ~name:"back" in
  ignore
    (Kernel.spawn k ~name:"backend" (fun () ->
         while true do
           let m = Api.receive back in
           Api.compute (Time.ms 2);
           Api.reply m ("b:" ^ m.payload)
         done));
  ignore
    (Kernel.spawn k ~name:"mid" (fun () ->
         while true do
           let m = Api.receive front in
           Api.reply m (Api.rpc back m.payload)
         done));
  let answer = ref "" in
  ignore
    (Kernel.spawn k ~name:"client" (fun () -> answer := Api.rpc front "x"));
  ignore (Kernel.run k ~until:(Time.seconds 2));
  Obs.Span.finalize tracer ~now:(Kernel.now k);
  check Alcotest.string "request went through both hops" "b:x" !answer;
  check (Alcotest.list Alcotest.string) "no violations" []
    (Obs.Span.violations tracer);
  match Obs.Span.spans tracer with
  | [ outer; inner ] ->
      checkb "outer span is the root" true (outer.Obs.Span.parent = None);
      checkb "inner parented to outer" true
        (inner.Obs.Span.parent = Some outer.Obs.Span.id);
      checkb "outer lists inner as child" true
        (List.mem inner.Obs.Span.id outer.Obs.Span.children);
      check Alcotest.string "outer port" "front" outer.Obs.Span.port;
      check Alcotest.string "inner port" "back" inner.Obs.Span.port;
      checkb "both closed" true
        (outer.Obs.Span.status = Obs.Span.Closed
        && inner.Obs.Span.status = Obs.Span.Closed)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_client_killed_reply_dropped () =
  (* the client dies while its request is in service; the server's eventual
     reply is a traced no-op and the span must end Dropped, not leak *)
  let k, tracer = traced_kernel () in
  let port = Kernel.create_port k ~name:"svc" in
  ignore
    (Kernel.spawn k ~name:"server" (fun () ->
         let m = Api.receive port in
         Api.compute (Time.ms 500);
         Api.reply m ""));
  let doomed =
    Kernel.spawn k ~name:"doomed" (fun () -> ignore (Api.rpc port "a"))
  in
  ignore (Kernel.run k ~until:(Time.ms 100));
  Kernel.kill k doomed;
  ignore (Kernel.run k ~until:(Time.seconds 2));
  Obs.Span.finalize tracer ~now:(Kernel.now k);
  check (Alcotest.list Alcotest.string) "kills are not violations" []
    (Obs.Span.violations tracer);
  checkb "accounting closed" true (span_accounting_closed tracer);
  (match Obs.Span.spans tracer with
  | [ s ] ->
      checkb "span ended Dropped" true
        (match s.Obs.Span.status with Obs.Span.Dropped _ -> true | _ -> false)
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l))

let test_span_server_killed_orphans () =
  let k, tracer = traced_kernel () in
  let port = Kernel.create_port k ~name:"svc" in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        let m = Api.receive port in
        Api.compute (Time.seconds 10);
        Api.reply m "")
  in
  ignore
    (Kernel.spawn k ~name:"client" (fun () -> ignore (Api.rpc port "x")));
  ignore (Kernel.run k ~until:(Time.ms 100));
  Kernel.kill k server;
  ignore (Kernel.run k ~until:(Time.ms 200));
  Obs.Span.finalize tracer ~now:(Kernel.now k);
  check (Alcotest.list Alcotest.string) "no violations" []
    (Obs.Span.violations tracer);
  checkb "accounting closed" true (span_accounting_closed tracer);
  (match Obs.Span.spans tracer with
  | [ s ] ->
      checkb "span flagged orphaned by server death" true
        (s.Obs.Span.status = Obs.Span.Orphaned "server died")
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l))

let test_span_finalize_flags_unfinished () =
  (* a request to a port nobody serves: still pending at the horizon, so
     finalize must flag it rather than leave it open *)
  let k, tracer = traced_kernel () in
  let port = Kernel.create_port k ~name:"void" in
  ignore
    (Kernel.spawn k ~name:"client" (fun () -> ignore (Api.rpc port "x")));
  ignore (Kernel.run k ~until:(Time.ms 100));
  Obs.Span.finalize tracer ~now:(Kernel.now k);
  checkb "accounting closed" true (span_accounting_closed tracer);
  (match Obs.Span.spans tracer with
  | [ s ] ->
      checkb "pending span orphaned at finalize" true
        (s.Obs.Span.status = Obs.Span.Orphaned "unfinished at finalize");
      checkb "closed_at set to the horizon" true
        (s.Obs.Span.closed_at = Some (Kernel.now k))
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
  checkb "span JSON of flagged spans still valid" true
    (json_valid (Obs.Span.to_chrome_json tracer))

let test_span_scatter_gather () =
  (* rpc_many opens one span per target, all parented the same way (none,
     here) and all closed on gather *)
  let k, tracer = traced_kernel () in
  let mk name =
    let port = Kernel.create_port k ~name in
    ignore
      (Kernel.spawn k ~name:(name ^ "-srv") (fun () ->
           while true do
             let m = Api.receive port in
             Api.compute (Time.ms 3);
             Api.reply m (name ^ ":" ^ m.payload)
           done));
    port
  in
  let p1 = mk "s1" and p2 = mk "s2" and p3 = mk "s3" in
  let got = ref [] in
  ignore
    (Kernel.spawn k ~name:"client" (fun () ->
         got := Api.rpc_many [ (p1, "a"); (p2, "b"); (p3, "c") ]));
  ignore (Kernel.run k ~until:(Time.seconds 2));
  Obs.Span.finalize tracer ~now:(Kernel.now k);
  check (Alcotest.list Alcotest.string) "replies in request order"
    [ "s1:a"; "s2:b"; "s3:c" ] !got;
  let st = Obs.Span.stats tracer in
  checki "one span per scatter target" 3 st.Obs.Span.st_total;
  checki "all closed" 3 st.st_closed;
  check (Alcotest.list Alcotest.string) "no violations" []
    (Obs.Span.violations tracer)

let test_span_eviction_bounds_memory () =
  let k = rr_kernel () in
  let tracer = Obs.Span.create ~retain:8 () in
  Obs.Span.attach tracer (Kernel.bus k);
  let port = Kernel.create_port k ~name:"echo" in
  ignore
    (Kernel.spawn k ~name:"server" (fun () ->
         while true do
           let m = Api.receive port in
           Api.reply m ""
         done));
  ignore
    (Kernel.spawn k ~name:"client" (fun () ->
         for _ = 1 to 100 do
           ignore (Api.rpc port "x")
         done));
  ignore (Kernel.run k ~until:(Time.seconds 10));
  Obs.Span.finalize tracer ~now:(Kernel.now k);
  let st = Obs.Span.stats tracer in
  checki "stats count every span ever opened" 100 st.Obs.Span.st_total;
  checki "all closed" 100 st.st_closed;
  checkb "retention window enforced" true
    (List.length (Obs.Span.spans tracer) <= 8);
  checki "eviction accounted" (100 - List.length (Obs.Span.spans tracer))
    (Obs.Span.evicted tracer);
  check (Alcotest.list Alcotest.string) "no violations" []
    (Obs.Span.violations tracer)

(* --- determinism of the typed stream ----------------------------------------- *)

let run_traced seed =
  let k, ls = lottery_kernel ~seed () in
  let r = Obs.Recorder.create ~capacity:(1 lsl 16) () in
  Obs.Recorder.attach r (Kernel.bus k);
  let _a = spin_thread k ls "a" 100 in
  let _b = spin_thread k ls "b" 200 in
  let _i =
    let th =
      Kernel.spawn k ~name:"i" (fun () ->
          while true do
            Api.compute (Time.ms 20);
            Api.sleep (Time.ms 50)
          done)
    in
    ignore
      (Lottery_sched.fund_thread ls th ~amount:100
         ~from:(Lottery_sched.base_currency ls));
    th
  in
  ignore (Kernel.run k ~until:(Time.seconds 5));
  List.map
    (fun (t, e) -> Printf.sprintf "%d %s" t (Obs.Event.render e))
    (Obs.Recorder.events r)

let test_typed_stream_deterministic () =
  let one = run_traced 42 and two = run_traced 42 in
  checkb "non-trivial stream" true (List.length one > 100);
  checkb "same seed, byte-identical streams" true (one = two);
  let three = run_traced 43 in
  checkb "different seed diverges" true (one <> three)

(* --- multiple subscribers on a live kernel ----------------------------------- *)

let test_multi_subscriber_full_stream () =
  let k, ls = lottery_kernel ~seed:9 () in
  let timeline = Lotto_sim.Timeline.attach k () in
  let r = Obs.Recorder.create ~capacity:(1 lsl 16) () in
  Obs.Recorder.attach r (Kernel.bus k);
  let probe = ref 0 in
  let _sub = Obs.Bus.subscribe ~name:"probe" (Kernel.bus k) (fun _ _ -> incr probe) in
  let tha = spin_thread k ls "a" 100 in
  let _thb = spin_thread k ls "b" 300 in
  ignore (Kernel.run k ~until:(Time.seconds 2));
  checkb "probe saw traffic" true (!probe > 0);
  checki "probe and recorder saw the same stream" (Obs.Recorder.seen r) !probe;
  checki "nothing dropped below capacity" 0 (Obs.Recorder.dropped r);
  (* the timeline subscriber works from the same stream: its per-thread CPU
     matches the kernel's own accounting *)
  checki "timeline cpu = kernel cpu" (Kernel.cpu_time tha)
    (Lotto_sim.Timeline.cpu_of timeline "a")

(* --- metrics ----------------------------------------------------------------- *)

let test_metrics_quanta_match_kernel () =
  let k, ls = lottery_kernel ~seed:5 () in
  let m = Obs.Metrics.create () in
  Obs.Metrics.attach m (Kernel.bus k);
  let tha = spin_thread k ls "a" 100 in
  let thb = spin_thread k ls "b" 200 in
  ignore (Kernel.run k ~until:(Time.seconds 3));
  Obs.Metrics.detach m;
  let by_name n =
    match List.find_opt (fun s -> s.Obs.Metrics.name = n) (Obs.Metrics.snapshots m) with
    | Some s -> s
    | None -> Alcotest.failf "no snapshot for %s" n
  in
  checki "a: metric quanta = kernel cpu" (Kernel.cpu_time tha) (by_name "a").quanta;
  checki "b: metric quanta = kernel cpu" (Kernel.cpu_time thb) (by_name "b").quanta;
  checki "total quanta = clock" (Time.seconds 3) (Obs.Metrics.total_quanta m);
  checkb "a won lotteries" true ((by_name "a").wins > 0);
  checki "spinners never block" 0 (by_name "a").blocks

let test_metrics_wait_time () =
  let k, ls = lottery_kernel ~seed:6 () in
  (* per-sample assertions need the raw arrays; retention is opt-in now that
     the histograms carry the percentile duty *)
  let m = Obs.Metrics.create ~raw:true () in
  Obs.Metrics.attach m (Kernel.bus k);
  let th =
    Kernel.spawn k ~name:"sleeper" (fun () ->
        while true do
          Api.compute (Time.ms 10);
          Api.sleep (Time.ms 40)
        done)
  in
  ignore
    (Lottery_sched.fund_thread ls th ~amount:100
       ~from:(Lottery_sched.base_currency ls));
  ignore (Kernel.run k ~until:(Time.seconds 2));
  match Obs.Metrics.snapshots m with
  | [ s ] ->
      checkb "blocked at least once" true (s.blocks > 0);
      (* the final block may still be pending at the horizon *)
      checkb "one wait sample per completed block" true
        (let n = Array.length s.wait_us in
         n = s.blocks || n = s.blocks - 1);
      Array.iter
        (fun w -> checkb "each wait is the sleep duration" true (w = 40_000.))
        s.wait_us;
      checkb "compensated after each early block" true (s.compensations > 0)
  | l -> Alcotest.failf "expected 1 snapshot, got %d" (List.length l)

let test_fairness_gauge () =
  let k, ls = lottery_kernel ~seed:7 () in
  let m = Obs.Metrics.create () in
  Obs.Metrics.attach m (Kernel.bus k);
  let tha = spin_thread k ls "a" 100 in
  let thb = spin_thread k ls "b" 200 in
  let thc = spin_thread k ls "c" 300 in
  ignore (Kernel.run k ~until:(Time.seconds 60));
  let entitled =
    List.map
      (fun th -> (Kernel.thread_id th, Lottery_sched.thread_entitlement ls th))
      [ tha; thb; thc ]
  in
  let shares, p = Obs.Metrics.fairness m ~entitled in
  checki "three rows" 3 (List.length shares);
  List.iter
    (fun (s : Obs.Metrics.share) ->
      checkb
        (Printf.sprintf "%s within 10%% of entitlement" s.s_name)
        true
        (Float.abs (s.observed -. s.entitled) < 0.10))
    shares;
  (match p with
  | Some p -> checkb "1:2:3 split statistically consistent" true (p > 0.001)
  | None -> Alcotest.fail "p-value expected");
  let text = Obs.Metrics.summary ~entitled m in
  checkb "summary names all threads" true
    (List.for_all (fun n -> count_substring text n > 0) [ "a"; "b"; "c" ]);
  checkb "summary prints verdict" true (count_substring text "consistent" > 0)

let test_fairness_none_when_undefined () =
  let m = Obs.Metrics.create () in
  let _, p = Obs.Metrics.fairness m ~entitled:[ (0, 1.); (1, 1.) ] in
  checkb "no events -> no verdict" true (p = None)

(* feed [n] full slices of [quantum] µs to [who], starting at [t0] *)
let feed_slices m who ~t0 ~quantum ~n =
  for i = 0 to n - 1 do
    let t = t0 + (i * quantum) in
    Obs.Metrics.on_event m t (Obs.Event.Select { who; cpu = 0 });
    Obs.Metrics.on_event m (t + quantum)
      (Obs.Event.Preempt
         { who; used = quantum; quantum; why = Obs.Event.End_quantum })
  done;
  t0 + (n * quantum)

let test_fairness_dedupes_duplicate_tids () =
  (* regression: a tid listed twice in ~entitled used to keep both entries,
     double-counting that thread's quanta in the share total and giving it
     two cells in the chi-square *)
  let m = Obs.Metrics.create () in
  let a = actor "a" 1 and b = actor "b" 2 in
  let t = feed_slices m a ~t0:0 ~quantum:10_000 ~n:30 in
  ignore (feed_slices m b ~t0:t ~quantum:10_000 ~n:30);
  let shares, p =
    Obs.Metrics.fairness m ~entitled:[ (1, 1.); (2, 1.); (1, 5.) ]
  in
  checki "duplicate entry collapsed" 2 (List.length shares);
  let sa = List.find (fun s -> s.Obs.Metrics.s_tid = 1) shares in
  checkb "first entry wins" true
    (Float.abs (sa.Obs.Metrics.entitled -. 0.5) < 1e-9);
  (match p with
  | Some p -> checkb "even split consistent with 1:1" true (p > 0.9)
  | None -> Alcotest.fail "p-value expected")

let test_fairness_heterogeneous_quanta () =
  (* regression: slice counts were computed as cpu / max-quantum-seen, so a
     thread whose time was granted under a smaller quantum had its slices
     undercounted by the ratio of the quanta — here, 10 grants @10ms
     counted as 1, spuriously rejecting a perfectly even 15:15 grant split *)
  let m = Obs.Metrics.create () in
  let a = actor "a" 1 and b = actor "b" 2 in
  let t = feed_slices m a ~t0:0 ~quantum:10_000 ~n:10 in
  let t = feed_slices m a ~t0:t ~quantum:100_000 ~n:5 in
  ignore (feed_slices m b ~t0:t ~quantum:100_000 ~n:15);
  let _, p = Obs.Metrics.fairness m ~entitled:[ (1, 1.); (2, 1.) ] in
  match p with
  | Some p -> checkb "equal grant counts consistent with 1:1" true (p > 0.9)
  | None -> Alcotest.fail "p-value expected"

let test_metrics_histogram_default () =
  (* the default registry keeps no raw arrays — bounded memory — yet the
     histograms still answer the percentile questions *)
  let k, ls = lottery_kernel ~seed:6 () in
  let m = Obs.Metrics.create () in
  Obs.Metrics.attach m (Kernel.bus k);
  let th =
    Kernel.spawn k ~name:"sleeper" (fun () ->
        while true do
          Api.compute (Time.ms 10);
          Api.sleep (Time.ms 40)
        done)
  in
  ignore
    (Lottery_sched.fund_thread ls th ~amount:100
       ~from:(Lottery_sched.base_currency ls));
  ignore (Kernel.run k ~until:(Time.seconds 2));
  match Obs.Metrics.snapshots m with
  | [ s ] ->
      checki "no raw wait samples retained" 0 (Array.length s.wait_us);
      checki "no raw dispatch samples retained" 0 (Array.length s.dispatch_us);
      checkb "histogram counted every completed block" true
        (let n = Obs.Hdr.count s.wait in
         n = s.blocks || n = s.blocks - 1);
      (* every wait is exactly 40ms; the histogram estimate must sit within
         its documented relative error of that *)
      let p50 = Obs.Hdr.percentile s.wait 50. in
      let tol = Obs.Hdr.max_relative_error s.wait *. 40_000. in
      checkb
        (Printf.sprintf "p50 wait ~ 40ms (got %.0f)" p50)
        true
        (Float.abs (p50 -. 40_000.) <= tol);
      (* and the rendered summary works without any raw arrays *)
      let text = Obs.Metrics.summary m in
      checkb "summary renders percentiles" true
        (count_substring text "p50/90/99" > 0)
  | l -> Alcotest.failf "expected 1 snapshot, got %d" (List.length l)

let test_metrics_prom_exposition () =
  let k, ls = lottery_kernel ~seed:8 () in
  let m = Obs.Metrics.create () in
  Obs.Metrics.attach m (Kernel.bus k);
  let _a = spin_thread k ls "api\"svc" 100 in
  let ivy =
    Kernel.spawn k ~name:"ivy" (fun () ->
        while true do
          Api.compute (Time.ms 10);
          Api.sleep (Time.ms 30)
        done)
  in
  ignore
    (Lottery_sched.fund_thread ls ivy ~amount:100
       ~from:(Lottery_sched.base_currency ls));
  ignore (Kernel.run k ~until:(Time.seconds 5));
  let prom = Obs.Metrics.to_prom m in
  (* families declared once, one sample line per thread *)
  checki "wins family declared once" 1
    (count_substring prom "# TYPE lotto_wins_total counter");
  checki "one wins line per thread" 2 (count_substring prom "lotto_wins_total{");
  checki "wait summary declared" 1
    (count_substring prom "# TYPE lotto_wait_us summary");
  checkb "quantile lines present" true
    (count_substring prom {|quantile="0.99"|} > 0
    && count_substring prom {|quantile="0.999"|} > 0);
  checkb "sum/count companions present" true
    (count_substring prom "lotto_wait_us_sum{" > 0
    && count_substring prom "lotto_wait_us_count{" > 0);
  (* label values escape quotes per the text-exposition rules *)
  checkb "quote in thread name escaped" true
    (count_substring prom {|thread="api\"svc"|} > 0);
  (* a custom namespace reaches every family *)
  let ns = Obs.Metrics.to_prom ~namespace:"sim" m in
  checkb "namespace honoured" true
    (count_substring ns "sim_wins_total" > 0 && count_substring ns "lotto_" = 0)

(* --- scheduler phase profiler -------------------------------------------------- *)

let test_profile_phases () =
  (* a deterministic fake clock: each call advances 1000 ns, so every timed
     section lasts exactly 1000 ns x (stops between start and stop) *)
  let ticks = ref 0 in
  let clock () =
    ticks := !ticks + 1000;
    !ticks
  in
  let p = Obs.Profile.create ~clock () in
  let t0 = Obs.Profile.start p in
  Obs.Profile.stop p Obs.Profile.Draw t0;
  let t0 = Obs.Profile.start p in
  Obs.Profile.stop p Obs.Profile.Valuation t0;
  checki "draw recorded once" 1 (Obs.Hdr.count (Obs.Profile.hdr p Obs.Profile.Draw));
  checki "draw duration is one tick" 1000
    (Obs.Hdr.sum (Obs.Profile.hdr p Obs.Profile.Draw));
  checki "dispatch untouched" 0
    (Obs.Hdr.count (Obs.Profile.hdr p Obs.Profile.Dispatch));
  let text = Obs.Metrics.profile p in
  List.iter
    (fun n -> checkb (n ^ " named in the report") true (count_substring text n > 0))
    [ "valuation"; "draw"; "dispatch"; "publish" ]

let test_profile_on_live_kernel () =
  (* wire the profiler the way lottosim --profile does, with a fake clock:
     every scheduler phase must accumulate samples on a busy kernel *)
  let ticks = ref 0 in
  let clock () =
    ticks := !ticks + 7;
    !ticks
  in
  let k, ls = lottery_kernel ~seed:4 () in
  let p = Obs.Profile.create ~clock () in
  Kernel.set_profiler k (Some p);
  Lottery_sched.set_profiler ls (Some p);
  let _a = spin_thread k ls "a" 100 in
  let _b = spin_thread k ls "b" 200 in
  ignore (Kernel.run k ~until:(Time.seconds 2));
  List.iter
    (fun ph ->
      checkb
        (Obs.Profile.phase_name ph ^ " sampled")
        true
        (Obs.Hdr.count (Obs.Profile.hdr p ph) > 0))
    [ Obs.Profile.Valuation; Obs.Profile.Draw; Obs.Profile.Dispatch ]

(* --- legacy tracer compatibility --------------------------------------------- *)

let test_legacy_render_format () =
  let a = actor "worker" 4 in
  check Alcotest.string "spawn" "spawn worker" (Obs.Event.render (Spawn { who = a }));
  check Alcotest.string "block" "block worker"
    (Obs.Event.render (Block { who = a; on = "sleep" }));
  check Alcotest.string "wake" "wake worker" (Obs.Event.render (Wake { who = a }));
  check Alcotest.string "select" "select worker"
    (Obs.Event.render (Select { who = a; cpu = 0 }));
  check Alcotest.string "exit ok" "exit worker"
    (Obs.Event.render (Exit { who = a; failure = None }));
  check Alcotest.string "exit failure" "exit worker (boom)"
    (Obs.Event.render (Exit { who = a; failure = Some "boom" }))

let () =
  Alcotest.run "obs"
    [
      ( "json-checker",
        [ Alcotest.test_case "accepts valid, rejects invalid" `Quick
            test_json_checker_self_test ] );
      ( "bus",
        [
          Alcotest.test_case "fan-out and unsubscribe" `Quick
            test_bus_fanout_and_unsubscribe;
          Alcotest.test_case "churn during delivery" `Quick
            test_bus_churn_during_delivery;
          Alcotest.test_case "subscribe during delivery" `Quick
            test_bus_subscribe_during_delivery;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "chrome json valid + escaped" `Quick
            test_chrome_json_valid_and_escaped;
          Alcotest.test_case "chrome json after wraparound" `Quick
            test_chrome_json_wrapped_open_slice;
          Alcotest.test_case "csv shape" `Quick test_csv_shape;
          Alcotest.test_case "trace window metadata" `Quick
            test_trace_window_metadata;
          Alcotest.test_case "csv flags dropped events" `Quick
            test_csv_dropped_comment;
        ] );
      ( "hdr",
        [
          Alcotest.test_case "exact below sub-bucket resolution" `Quick
            test_hdr_exact_region;
          Alcotest.test_case "quantiles within documented error (1e6 samples)"
            `Slow test_hdr_vs_exact_quantiles;
          Alcotest.test_case "clamping, copy and reset" `Quick
            test_hdr_clamping_and_reset;
          Alcotest.test_case "merge" `Quick test_hdr_merge;
        ] );
      ( "spans",
        [
          Alcotest.test_case "roundtrip spans + flow events" `Quick
            test_span_roundtrip_and_flow_events;
          Alcotest.test_case "nested rpc parenting" `Quick
            test_span_nested_parenting;
          Alcotest.test_case "client killed -> reply dropped" `Quick
            test_span_client_killed_reply_dropped;
          Alcotest.test_case "server killed -> orphaned" `Quick
            test_span_server_killed_orphans;
          Alcotest.test_case "finalize flags unfinished" `Quick
            test_span_finalize_flags_unfinished;
          Alcotest.test_case "scatter-gather spans" `Quick
            test_span_scatter_gather;
          Alcotest.test_case "eviction bounds memory" `Quick
            test_span_eviction_bounds_memory;
        ] );
      ( "stream",
        [
          Alcotest.test_case "typed stream deterministic" `Quick
            test_typed_stream_deterministic;
          Alcotest.test_case "multiple subscribers, full stream" `Quick
            test_multi_subscriber_full_stream;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "quanta match kernel accounting" `Quick
            test_metrics_quanta_match_kernel;
          Alcotest.test_case "wait-time samples" `Quick test_metrics_wait_time;
          Alcotest.test_case "fairness gauge" `Quick test_fairness_gauge;
          Alcotest.test_case "fairness undefined without data" `Quick
            test_fairness_none_when_undefined;
          Alcotest.test_case "fairness dedupes duplicate tids" `Quick
            test_fairness_dedupes_duplicate_tids;
          Alcotest.test_case "fairness under heterogeneous quanta" `Quick
            test_fairness_heterogeneous_quanta;
          Alcotest.test_case "histogram percentiles, no raw retention" `Quick
            test_metrics_histogram_default;
          Alcotest.test_case "prometheus exposition" `Quick
            test_metrics_prom_exposition;
        ] );
      ( "profile",
        [
          Alcotest.test_case "phase accumulation" `Quick test_profile_phases;
          Alcotest.test_case "live kernel phases sampled" `Quick
            test_profile_on_live_kernel;
        ] );
      ( "legacy",
        [ Alcotest.test_case "render matches old tracer" `Quick
            test_legacy_render_format ] );
    ]
