(* Domain-pool unit tests, byte-for-byte determinism of parallel experiment
   replication, and a stress run of many concurrent simulator instances.

   The determinism contract under test (see lib/parallel/pool.mli): results
   are merged by task index and every task carries its own seed, so
   [map_tasks ~jobs:n] must produce output byte-identical to [~jobs:1] for
   any [n] — including the rendered tables and CSV exports of the sweep
   experiments. *)

open Core

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* --- pool units -------------------------------------------------------- *)

let test_map_tasks_ordering () =
  let input = Array.init 100 Fun.id in
  let expected = Array.map (fun x -> x * x) input in
  let got = Pool.map_tasks ~jobs:4 (fun x -> x * x) input in
  Alcotest.(check (array int)) "index-merged squares" expected got

let test_map_tasks_empty () =
  checki "empty in, empty out" 0
    (Array.length (Pool.map_tasks ~jobs:4 (fun x -> x) [||]))

let test_exception_lowest_index () =
  (* two tasks fail; whichever domain finishes first, the caller must see
     the lowest-index task's exception *)
  let f i = if i = 3 || i = 7 then failwith (Printf.sprintf "boom-%d" i) else i in
  Alcotest.check_raises "lowest failing index wins" (Failure "boom-3")
    (fun () -> ignore (Pool.map_tasks ~jobs:4 f (Array.init 10 Fun.id)))

let test_jobs_exceed_tasks () =
  let got = Pool.map_tasks ~jobs:8 (fun x -> x + 1) [| 10; 20; 30 |] in
  Alcotest.(check (array int)) "more jobs than tasks" [| 11; 21; 31 |] got

let test_jobs_one_stays_in_caller () =
  let caller = (Domain.self () :> int) in
  let domains =
    Pool.map_tasks ~jobs:1 (fun _ -> (Domain.self () :> int)) (Array.init 8 Fun.id)
  in
  Array.iter (fun d -> checki "jobs:1 runs in the calling domain" caller d) domains

let test_pool_reuse () =
  let pool = Pool.create ~jobs:3 in
  checki "pool size" 3 (Pool.jobs pool);
  let a = Pool.map pool (fun x -> x * 2) (Array.init 50 Fun.id) in
  Alcotest.(check (array int)) "first map" (Array.init 50 (fun i -> 2 * i)) a;
  let b = Pool.map pool string_of_int [| 1; 2; 3 |] in
  Alcotest.(check (array string)) "second map, new type" [| "1"; "2"; "3" |] b;
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

(* --- byte-identical experiment output across jobs ----------------------- *)

(* capture everything [f] prints on stdout, byte for byte *)
let capture_stdout f =
  let tmp = Filename.temp_file "lotto_par" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close fd)
    f;
  let ic = open_in_bin tmp in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  s

let test_fig4_byte_identical () =
  let run jobs =
    Lotto_exp.Fig4.run ~seed:41 ~duration:(Time.seconds 30) ~runs_per_ratio:2
      ~max_ratio:5 ~jobs ()
  in
  let seq = run 1 and par = run 4 in
  checks "fig4 stdout identical at jobs 4"
    (capture_stdout (fun () -> Lotto_exp.Fig4.print seq))
    (capture_stdout (fun () -> Lotto_exp.Fig4.print par));
  checks "fig4 csv identical at jobs 4" (Lotto_exp.Fig4.to_csv seq)
    (Lotto_exp.Fig4.to_csv par)

let test_ablation_mc_byte_identical () =
  let run jobs = Lotto_exp.Ablation_mc.run ~seed:66 ~duration:(Time.seconds 60) ~jobs () in
  let seq = run 1 and par = run 4 in
  checks "ablation_mc stdout identical at jobs 4"
    (capture_stdout (fun () -> Lotto_exp.Ablation_mc.print seq))
    (capture_stdout (fun () -> Lotto_exp.Ablation_mc.print par));
  checks "ablation_mc csv identical at jobs 4" (Lotto_exp.Ablation_mc.to_csv seq)
    (Lotto_exp.Ablation_mc.to_csv par)

(* --- stress: many tiny concurrent simulator instances ------------------- *)

(* one self-contained kernel: three spinners funded 3:2:1, metrics registry
   attached, chi-square fairness computed. If any module-level mutable state
   hid in the simulator stack, 64 of these racing on 8 domains would
   corrupt each other and diverge from the sequential run. *)
let tiny_kernel seed =
  let rng = Rng.create ~seed () in
  let ls = Lottery_sched.create ~rng () in
  let k = Kernel.create ~quantum:(Time.ms 100) ~sched:(Lottery_sched.sched ls) () in
  let m = Obs.Metrics.create () in
  Obs.Metrics.attach m (Kernel.bus k);
  let spin name amount =
    let th =
      Kernel.spawn k ~name (fun () ->
          while true do
            Api.compute (Time.ms 10)
          done)
    in
    ignore
      (Lottery_sched.fund_thread ls th ~amount
         ~from:(Lottery_sched.base_currency ls));
    th
  in
  let a = spin "a" 300 and b = spin "b" 200 and c = spin "c" 100 in
  ignore (Kernel.run k ~until:(Time.seconds 2));
  let entitled =
    List.map
      (fun th -> (Kernel.thread_id th, Lottery_sched.thread_entitlement ls th))
      [ a; b; c ]
  in
  let shares, p = Obs.Metrics.fairness m ~entitled in
  let rendered =
    List.map
      (fun (s : Obs.Metrics.share) ->
        Printf.sprintf "%d:%s:%d:%.9f:%.9f" s.s_tid s.s_name s.s_quanta
          s.observed s.entitled)
      shares
  in
  let cpus = List.map Kernel.cpu_time [ a; b; c ] in
  (rendered, Option.map (Printf.sprintf "%.9f") p, cpus)

let test_stress_concurrent_kernels () =
  let seeds = Array.init 64 Fun.id in
  let seq = Pool.map_tasks ~jobs:1 tiny_kernel seeds in
  let par = Pool.map_tasks ~jobs:8 tiny_kernel seeds in
  checki "64 results" 64 (Array.length par);
  Array.iteri
    (fun i (rendered, p, cpus) ->
      checkb
        (Printf.sprintf "kernel %d identical under 8 domains" i)
        true
        ((rendered, p, cpus) = par.(i)))
    seq;
  (* sanity: the fairness gauge actually fired on every instance *)
  Array.iter
    (fun (_, p, _) -> checkb "p-value present" true (p <> None))
    seq

(* --- recursive csv directory creation ----------------------------------- *)

let test_mkdir_p () =
  let base = Filename.temp_file "lotto_mkdir" "" in
  Sys.remove base;
  let deep = List.fold_left Filename.concat base [ "a"; "b"; "c" ] in
  Lotto_exp.Common.mkdir_p deep;
  checkb "nested path created" true (Sys.is_directory deep);
  Lotto_exp.Common.mkdir_p deep;
  checkb "idempotent on existing path" true (Sys.is_directory deep);
  Lotto_exp.Common.mkdir_p ".";
  checkb "current dir is a no-op" true (Sys.is_directory ".")

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "index-merged ordering" `Quick
            test_map_tasks_ordering;
          Alcotest.test_case "empty task array" `Quick test_map_tasks_empty;
          Alcotest.test_case "deterministic exception choice" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "jobs exceed tasks" `Quick test_jobs_exceed_tasks;
          Alcotest.test_case "jobs:1 sequential in caller" `Quick
            test_jobs_one_stays_in_caller;
          Alcotest.test_case "pool reuse and shutdown" `Quick test_pool_reuse;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig4 byte-identical across jobs" `Slow
            test_fig4_byte_identical;
          Alcotest.test_case "ablation_mc byte-identical across jobs" `Slow
            test_ablation_mc_byte_identical;
        ] );
      ( "stress",
        [
          Alcotest.test_case "64 concurrent kernels with fairness gauge" `Slow
            test_stress_concurrent_kernels;
        ] );
      ( "csv",
        [ Alcotest.test_case "recursive --csv dir creation" `Quick test_mkdir_p ] );
    ]
