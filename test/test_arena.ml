(* Handle arenas (the flat-table entity representation): Slots allocator
   unit tests, the Vec registry, and the recycling/ABA properties across
   every arena consumer — kernel thread table, funding currency/ticket
   tables, draw structures — under randomized create/kill/block/wake
   churn. *)

module Slots = Core.Arena.Slots
module Vec = Core.Arena.Vec
module F = Core.Funding

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* --- Slots: the allocator itself --------------------------------------- *)

let test_slots_basics () =
  let t = Slots.create () in
  let a = Slots.alloc t and b = Slots.alloc t and c = Slots.alloc t in
  checki "dense handles" 0 a;
  checki "dense handles" 1 b;
  checki "dense handles" 2 c;
  checki "live count" 3 (Slots.live_count t);
  checki "high-water mark" 3 (Slots.used t);
  List.iter
    (fun s ->
      checkb "live slot" true (Slots.is_live t s);
      checki "live generation is odd" 1 (Slots.gen t s land 1))
    [ a; b; c ];
  Slots.release t b;
  checkb "released slot is vacant" false (Slots.is_live t b);
  checki "vacant generation is even" 0 (Slots.gen t b land 1);
  checki "live count after release" 2 (Slots.live_count t);
  (* most recently vacated slot is recycled first *)
  let d = Slots.alloc t in
  checki "LIFO recycling" b d;
  checkb "recycled slot is live" true (Slots.is_live t d);
  checki "high-water mark unchanged by recycling" 3 (Slots.used t);
  (* deeper LIFO: release two, get them back in reverse order *)
  Slots.release t a;
  Slots.release t c;
  checki "LIFO recycling" c (Slots.alloc t);
  checki "LIFO recycling" a (Slots.alloc t)

let test_slots_generation_aba () =
  let t = Slots.create () in
  let s = Slots.alloc t in
  let g0 = Slots.gen t s in
  (* a (slot, gen) pair captured live never matches any later occupant *)
  let seen = ref [ g0 ] in
  for _ = 1 to 10 do
    Slots.release t s;
    let s' = Slots.alloc t in
    checki "same slot recycled" s s';
    let g = Slots.gen t s in
    checki "recycled generation is odd" 1 (g land 1);
    checkb "generation never repeats" false (List.mem g !seen);
    seen := g :: !seen
  done

let test_slots_creation_order () =
  let t = Slots.create () in
  let order () = List.rev (Slots.fold_live t ~init:[] ~f:(fun acc s -> s :: acc)) in
  let a = Slots.alloc t and b = Slots.alloc t and c = Slots.alloc t in
  Alcotest.(check (list int)) "initial order" [ a; b; c ] (order ());
  Slots.release t b;
  Alcotest.(check (list int)) "order after release" [ a; c ] (order ());
  (* the recycled slot re-enters at the TAIL: creation order, not slot order *)
  let d = Slots.alloc t in
  checki "b's slot recycled" b d;
  Alcotest.(check (list int)) "recycled slot at tail" [ a; c; d ] (order ());
  let iter_order = ref [] in
  Slots.iter_live t (fun s -> iter_order := s :: !iter_order);
  Alcotest.(check (list int)) "iter_live matches fold_live" [ a; c; d ]
    (List.rev !iter_order)

let test_slots_release_during_iteration () =
  let t = Slots.create () in
  let slots = List.init 20 (fun _ -> Slots.alloc t) in
  let visited = ref [] in
  Slots.iter_live t (fun s ->
      visited := s :: !visited;
      Slots.release t s);
  Alcotest.(check (list int)) "all slots visited in creation order" slots
    (List.rev !visited);
  checki "all released" 0 (Slots.live_count t);
  checkb "none live" false (Slots.exists_live t (fun _ -> true))

let test_slots_grow_payload () =
  let t = Slots.create ~initial_capacity:2 () in
  let payload = ref [||] in
  let put s v =
    payload := Slots.grow_payload t !payload ~dummy:v;
    !payload.(s) <- v
  in
  for i = 0 to 99 do
    let s = Slots.alloc t in
    put s (i * 10)
  done;
  checkb "payload covers capacity" true
    (Array.length !payload >= Slots.capacity t);
  (* existing cells survived every growth step *)
  Slots.iter_live t (fun s -> checki "payload preserved" (s * 10) !payload.(s));
  (* a long-enough array is returned untouched *)
  let before = !payload in
  checkb "no copy when already covering" true
    (before == Slots.grow_payload t before ~dummy:0)

let test_slots_errors () =
  let t = Slots.create () in
  let s = Slots.alloc t in
  Slots.release t s;
  checkb "double release rejected" true
    (match Slots.release t s with
    | () -> false
    | exception Invalid_argument _ -> true);
  checkb "release of never-allocated slot rejected" true
    (match Slots.release t 7 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- Vec: the append-only registry ------------------------------------- *)

let test_vec () =
  let v = Vec.create () in
  checki "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  checki "length" 100 (Vec.length v);
  checki "index" 49 (Vec.get v 7 * 0 + 49);
  checki "index" (9 * 9) (Vec.get v 9);
  let sum = Vec.fold_left v ~init:0 ~f:( + ) in
  let expect = List.fold_left ( + ) 0 (List.init 100 (fun i -> i * i)) in
  checki "fold over all" expect sum;
  checkb "exists" true (Vec.exists v (fun x -> x = 81));
  checkb "exists" false (Vec.exists v (fun x -> x = 83));
  let order = ref [] in
  Vec.iter v (fun x -> order := x :: !order);
  Alcotest.(check (list int)) "iteration in push order"
    (List.init 100 (fun i -> i * i))
    (List.rev !order);
  Alcotest.(check (list int)) "to_list in push order"
    (List.init 100 (fun i -> i * i))
    (Vec.to_list v);
  checkb "out of bounds rejected" true
    (match Vec.get v 100 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Draw structures: stale handles are inert -------------------------- *)

let test_draw_recycling mode () =
  let d = Core.Draw.of_mode mode in
  let hs = Array.init 8 (fun i -> Core.Draw.add d ~client:i ~weight:(float_of_int (i + 1))) in
  checki "size" 8 (Core.Draw.size d);
  checkf "total" 36. (Core.Draw.total d);
  Core.Draw.remove d hs.(3);
  checki "size after remove" 7 (Core.Draw.size d);
  checkf "total after remove" 32. (Core.Draw.total d);
  Core.Draw.remove d hs.(3);
  checki "stale remove is idempotent" 7 (Core.Draw.size d);
  (* the vacated slot is recycled for the next client; the stale handle
     must stay inert — removing it again must NOT evict the new occupant *)
  let h = Core.Draw.add d ~client:99 ~weight:4. in
  checki "size after recycling add" 8 (Core.Draw.size d);
  checkf "total after recycling add" 36. (Core.Draw.total d);
  Core.Draw.remove d hs.(3);
  checki "stale remove leaves the new occupant" 8 (Core.Draw.size d);
  checkf "stale remove leaves the weight" 36. (Core.Draw.total d);
  checkf "stale weight reads as zero" 0. (Core.Draw.weight d hs.(3));
  checkf "live weight reads through" 4. (Core.Draw.weight d h);
  Core.Draw.set_weight d h 8.;
  checkf "new handle updates" 8. (Core.Draw.weight d h);
  (* every live client is reachable by a deterministic sweep *)
  let winners = Hashtbl.create 8 in
  let total = Core.Draw.total d in
  let steps = 400 in
  for i = 0 to steps - 1 do
    match Core.Draw.draw_with_value d ~winning:(float_of_int i *. total /. float_of_int steps) with
    | Some w -> Hashtbl.replace winners (Core.Draw.client w) ()
    | None -> Alcotest.fail "draw_with_value returned no winner"
  done;
  checki "all live clients win some interval" 8 (Hashtbl.length winners);
  checkb "removed client never wins" false (Hashtbl.mem winners 3)

let test_tree_stale_set_weight () =
  let t = Core.Tree_lottery.create () in
  let h = Core.Tree_lottery.add t ~client:"x" ~weight:1. in
  Core.Tree_lottery.remove t h;
  checkb "stale handle is not a member" false (Core.Tree_lottery.mem t h);
  Alcotest.check_raises "set_weight on a stale handle"
    (Invalid_argument "Tree_lottery.set_weight: removed handle") (fun () ->
      Core.Tree_lottery.set_weight t h 2.)

(* --- Kernel thread table: randomized create/kill/block/wake churn ------- *)

(* The tentpole safety property: a (slot, generation) pair captured while a
   thread is live never matches any later occupant of its recycled slot,
   and reaped threads read back as (-1, -1). Random operation sequences
   against the real kernel + tree scheduler, funding included so every kill
   also recycles currency and ticket slots. *)
let qcheck_kernel_handle_recycling =
  let module Rng = Core.Rng in
  QCheck.Test.make
    ~name:"kernel (slot, generation) handles are ABA-safe across recycling"
    ~count:1000 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~algo:Splitmix64 ~seed () in
      let srng = Rng.create ~algo:Splitmix64 ~seed:(seed + 1) () in
      let ls =
        Core.Lottery_sched.create ~mode:Core.Lottery_sched.Tree_mode ~rng:srng ()
      in
      let s = Core.Lottery_sched.sched ls in
      let k = Core.Kernel.create ~sched:s () in
      let base = Core.Lottery_sched.base_currency ls in
      (* model: (thread, slot, gen, blocked-by-us) for every live thread,
         and every (slot, gen) pair we ever captured for a killed one *)
      let live = ref [] in
      let dead = ref [] in
      let counter = ref 0 in
      let ok = ref true in
      let expect msg b = if not b then (ok := false; print_endline ("FAIL " ^ msg)) in
      let spawn () =
        incr counter;
        let th =
          Core.Kernel.spawn k ~name:(Printf.sprintf "h%d" !counter) (fun () ->
              while true do
                Core.Api.compute (Core.Time.ms 10)
              done)
        in
        ignore
          (Core.Lottery_sched.fund_thread ls th
             ~amount:(1 + Rng.int_below rng 300) ~from:base);
        let slot = Core.Kernel.thread_slot th in
        let gen = Core.Kernel.thread_generation k th in
        expect "live slot is nonnegative" (slot >= 0);
        expect "live generation is odd" (gen land 1 = 1);
        List.iter
          (fun (ds, dg) -> expect "dead handle never resurrected" (not (ds = slot && dg = gen)))
          !dead;
        live := (th, slot, gen, ref false) :: !live
      in
      let pick () =
        let arr = Array.of_list !live in
        arr.(Rng.int_below rng (Array.length arr))
      in
      spawn ();
      for _ = 1 to 59 do
        match Rng.int_below rng 10 with
        | 0 | 1 | 2 -> spawn ()
        | 3 | 4 when List.length !live > 1 ->
            let th, slot, gen, blocked = pick () in
            if !blocked then begin
              s.Core.Types.ready th;
              ignore (s.Core.Types.select ~cpu:0)
            end;
            Core.Kernel.kill k th;
            expect "reaped slot reads -1" (Core.Kernel.thread_slot th = -1);
            expect "reaped generation reads -1"
              (Core.Kernel.thread_generation k th = -1);
            dead := (slot, gen) :: !dead;
            live := List.filter (fun (t, _, _, _) -> not (t == th)) !live
        | 5 | 6 ->
            let _, _, _, blocked = pick () in
            if not !blocked then begin
              let th, _, _, _ =
                List.find (fun (_, _, _, b) -> b == blocked) !live
              in
              s.Core.Types.unready th;
              ignore (s.Core.Types.select ~cpu:0);
              blocked := true
            end
        | 7 | 8 -> (
            match List.find_opt (fun (_, _, _, b) -> !b) !live with
            | Some (th, _, _, blocked) ->
                s.Core.Types.ready th;
                ignore (s.Core.Types.select ~cpu:0);
                blocked := false
            | None -> ())
        | _ ->
            if List.exists (fun (_, _, _, b) -> not !b) !live then
              ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 10))
      done;
      (* the model and the kernel agree; the audit passes; every live
         occupant of a recycled slot carries a fresh generation *)
      expect "live count matches model"
        (Core.Kernel.live_thread_count k = List.length !live);
      expect "kernel audit is clean" (Core.Kernel.check_invariants k = []);
      List.iter
        (fun (th, slot, gen, _) ->
          expect "model slot still current" (Core.Kernel.thread_slot th = slot);
          expect "model generation still current"
            (Core.Kernel.thread_generation k th = gen);
          List.iter
            (fun (ds, dg) ->
              expect "live handle distinct from every dead capture"
                (not (ds = slot && dg = gen)))
            !dead)
        !live;
      !ok)

(* --- Funding arenas: recycling + exact valuation ------------------------ *)

(* From-scratch valuation mirroring the cached arithmetic
   operation-for-operation (same fold order, same divisions), as in
   test_funding — agreement is exact, not approximate. *)
let scratch_value sys root =
  let memo = Hashtbl.create 16 in
  let rec unit c =
    if F.is_base c then 1.
    else if F.active_amount c = 0 then 0.
    else
      match Hashtbl.find_opt memo (F.currency_id c) with
      | Some x -> x
      | None ->
          Hashtbl.replace memo (F.currency_id c) 0.;
          let x = value c /. float_of_int (F.active_amount c) in
          Hashtbl.replace memo (F.currency_id c) x;
          x
  and value c =
    if F.is_base c then float_of_int (F.active_amount c)
    else
      List.fold_left
        (fun acc t ->
          if F.is_active t then
            acc +. (float_of_int (F.amount t) *. unit (F.denomination t))
          else acc)
        0. (F.backing_tickets sys c)
  in
  value root

(* test_funding's randomized suites never remove currencies, so slot
   recycling in the currency/ticket arenas is exercised here: random
   graph mutation interleaved with remove_currency/destroy_ticket, with
   the incremental caches checked against a from-scratch walk after every
   recycling step. *)
let qcheck_funding_recycling_valuation =
  let module Rng = Core.Rng in
  QCheck.Test.make
    ~name:"valuation stays exact across currency/ticket slot recycling"
    ~count:300 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~algo:Splitmix64 ~seed:(seed + 31) () in
      let sys = F.create_system () in
      let base = F.base sys in
      let currencies = ref [ base ] in
      let tickets = ref [] in
      let dead_cur = ref [] in
      let dead_tk = ref [] in
      let ok = ref true in
      let expect msg b = if not b then (ok := false; print_endline ("FAIL " ^ msg)) in
      let fresh_ticket t =
        let slot = F.ticket_slot t and gen = F.ticket_generation sys t in
        expect "live ticket slot nonnegative" (slot >= 0);
        List.iter
          (fun (ds, dg) ->
            expect "destroyed ticket handle never resurrected"
              (not (ds = slot && dg = gen)))
          !dead_tk
      in
      for i = 0 to 79 do
        (match Rng.int_below rng 10 with
        | 0 | 1 ->
            (* funded currency: new currency + ticket slots (recycled ones
               must come back under fresh generations) *)
            let from = Rng.choose rng (Array.of_list !currencies) in
            let c = F.make_currency sys ~name:(Printf.sprintf "a%d-%d" seed i) in
            let slot = F.currency_slot c and gen = F.currency_generation sys c in
            List.iter
              (fun (ds, dg) ->
                expect "removed currency handle never resurrected"
                  (not (ds = slot && dg = gen)))
              !dead_cur;
            let t = F.issue sys ~currency:from ~amount:(1 + Rng.int_below rng 300) in
            fresh_ticket t;
            F.fund sys ~ticket:t ~currency:c;
            tickets := t :: !tickets;
            currencies := c :: !currencies
        | 2 | 3 ->
            let denom = Rng.choose rng (Array.of_list !currencies) in
            let t = F.issue sys ~currency:denom ~amount:(Rng.int_below rng 200) in
            fresh_ticket t;
            if Rng.bool rng then F.hold sys t;
            tickets := t :: !tickets
        | 4 | 5 when !tickets <> [] ->
            let t = Rng.choose rng (Array.of_list !tickets) in
            let slot = F.ticket_slot t and gen = F.ticket_generation sys t in
            F.destroy_ticket sys t;
            expect "destroyed ticket slot reads -1" (F.ticket_slot t = -1);
            expect "destroyed ticket generation reads -1"
              (F.ticket_generation sys t = -1);
            dead_tk := (slot, gen) :: !dead_tk;
            tickets := List.filter (fun t' -> not (t' == t)) !tickets
        | 6 -> (
            (* remove a currency once its edges are gone: this is the slot
               recycling no other suite reaches *)
            match
              List.find_opt
                (fun c ->
                  (not (F.is_base c))
                  && F.issued_tickets sys c = []
                  && F.backing_tickets sys c = [])
                !currencies
            with
            | Some c ->
                let slot = F.currency_slot c in
                let gen = F.currency_generation sys c in
                F.remove_currency sys c;
                expect "removed currency slot reads -1" (F.currency_slot c = -1);
                expect "removed currency generation reads -1"
                  (F.currency_generation sys c = -1);
                dead_cur := (slot, gen) :: !dead_cur;
                currencies := List.filter (fun c' -> not (c' == c)) !currencies
            | None -> ())
        | 7 when !tickets <> [] -> (
            let t = Rng.choose rng (Array.of_list !tickets) in
            try if Rng.bool rng then F.suspend sys t else F.resume sys t
            with Invalid_argument _ -> ())
        | 8 when !tickets <> [] -> (
            let t = Rng.choose rng (Array.of_list !tickets) in
            try F.set_amount sys t (Rng.int_below rng 250)
            with Invalid_argument _ -> ())
        | _ when !tickets <> [] -> (
            let t = Rng.choose rng (Array.of_list !tickets) in
            let c = Rng.choose rng (Array.of_list !currencies) in
            try F.fund sys ~ticket:t ~currency:c
            with F.Cycle _ | Invalid_argument _ -> ())
        | _ -> ());
        F.check_invariants sys;
        (* incremental caches = from-scratch walk, bit for bit, after every
           mutation (including the recycling ones) *)
        List.iter
          (fun c ->
            expect "cached value exact" (F.currency_value sys c = scratch_value sys c))
          (F.currencies sys)
      done;
      expect "live currency count matches"
        (F.live_currency_count sys = List.length !currencies);
      !ok)

(* --- kill-heavy audit: O(live) sweep stays clean ------------------------ *)

(* Most threads die; the audit must pass over the survivors without
   tripping on recycled slots (the dead outnumber the living 5:1, so any
   audit path that still walks dead history would surface here; the 10^5
   timing claim is covered by bench --scale-smoke). *)
let test_kill_heavy_audit () =
  let rng = Core.Rng.create ~seed:11 () in
  let ls = Core.Lottery_sched.create ~mode:Core.Lottery_sched.Tree_mode ~rng () in
  let k = Core.Kernel.create ~sched:(Core.Lottery_sched.sched ls) () in
  let base = Core.Lottery_sched.base_currency ls in
  let threads =
    Array.init 300 (fun i ->
        let th =
          Core.Kernel.spawn k ~name:(Printf.sprintf "t%d" i) (fun () ->
              while true do
                Core.Api.compute (Core.Time.ms 10)
              done)
        in
        ignore (Core.Lottery_sched.fund_thread ls th ~amount:100 ~from:base);
        th)
  in
  ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 100));
  for i = 0 to 249 do
    Core.Kernel.kill k threads.(i)
  done;
  ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.ms 100));
  checki "survivors" 50 (Core.Kernel.live_thread_count k);
  Alcotest.(check (list string)) "kernel audit clean" []
    (Core.Kernel.check_invariants k);
  Alcotest.(check (list string)) "funding coherence clean" []
    (Core.Lottery_sched.check_funding_coherence ls (Core.Kernel.threads k));
  (* survivors keep scheduling: the whole population accrues cpu *)
  let total () =
    List.fold_left
      (fun acc th -> acc + Core.Kernel.cpu_time th)
      0 (Core.Kernel.threads k)
  in
  let before = total () in
  ignore (Core.Kernel.run k ~until:(Core.Kernel.now k + Core.Time.seconds 2));
  checkb "survivors accumulate cpu" true (total () > before)

let () =
  Alcotest.run "arena"
    [
      ( "slots",
        [
          Alcotest.test_case "alloc/release/LIFO recycling" `Quick
            test_slots_basics;
          Alcotest.test_case "generations never repeat (ABA)" `Quick
            test_slots_generation_aba;
          Alcotest.test_case "creation-order iteration" `Quick
            test_slots_creation_order;
          Alcotest.test_case "release during iteration" `Quick
            test_slots_release_during_iteration;
          Alcotest.test_case "grow_payload" `Quick test_slots_grow_payload;
          Alcotest.test_case "misuse raises" `Quick test_slots_errors;
        ] );
      ("vec", [ Alcotest.test_case "registry basics" `Quick test_vec ]);
      ( "draw",
        [
          Alcotest.test_case "tree: stale handles are inert" `Quick
            (test_draw_recycling Core.Draw.Tree);
          Alcotest.test_case "list: stale handles are inert" `Quick
            (test_draw_recycling Core.Draw.List);
          Alcotest.test_case "tree: stale set_weight raises" `Quick
            test_tree_stale_set_weight;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "kill-heavy audit over recycled slots" `Quick
            test_kill_heavy_audit;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_kernel_handle_recycling;
            qcheck_funding_recycling_valuation;
          ] );
    ]
