(* Space-shared resource managers: inverse-lottery memory and lottery I/O
   bandwidth. *)

module Im = Core.Inverse_memory
module Io = Core.Io_bandwidth
module Rng = Core.Rng
module Chi = Core.Chi_square

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let rng seed = Rng.create ~algo:Splitmix64 ~seed ()

(* --- inverse memory ------------------------------------------------------------ *)

let test_no_eviction_until_full () =
  let pool = Im.create ~frames:10 ~rng:(rng 1) () in
  let c = Im.add_client pool ~name:"c" ~tickets:1 ~working_set:5 in
  for p = 0 to 4 do
    (match Im.access pool c p with
    | `Fault -> ()
    | `Hit -> Alcotest.fail "first touch must fault");
    ()
  done;
  checki "resident" 5 (Im.resident pool c);
  checki "free frames" 5 (Im.frames_free pool);
  checki "no evictions" 0 (Im.evictions_suffered pool c);
  (* second pass: all hits *)
  for p = 0 to 4 do
    match Im.access pool c p with
    | `Hit -> ()
    | `Fault -> Alcotest.fail "resident page must hit"
  done;
  checki "faults counted once" 5 (Im.faults pool c);
  checki "accesses counted" 10 (Im.accesses pool c)

let test_eviction_under_pressure () =
  let pool = Im.create ~frames:4 ~rng:(rng 2) () in
  let a = Im.add_client pool ~name:"a" ~tickets:1 ~working_set:8 in
  for p = 0 to 7 do
    ignore (Im.access pool a p)
  done;
  checki "capped at frames" 4 (Im.resident pool a);
  checki "free" 0 (Im.frames_free pool);
  checki "evictions" 4 (Im.evictions_suffered pool a)

let test_lru_within_victim () =
  (* LRU policy evicts the globally oldest page *)
  let pool = Im.create ~policy:Im.Global_lru ~frames:3 ~rng:(rng 3) () in
  let c = Im.add_client pool ~name:"c" ~tickets:1 ~working_set:4 in
  ignore (Im.access pool c 0);
  ignore (Im.access pool c 1);
  ignore (Im.access pool c 2);
  (* refresh page 0 so page 1 is oldest *)
  ignore (Im.access pool c 0);
  ignore (Im.access pool c 3);
  (* page 1 was evicted: touching it faults, touching 0 hits *)
  checkb "page 0 still resident" true (Im.access pool c 0 = `Hit);
  checkb "page 1 evicted" true (Im.access pool c 1 = `Fault)

let steady_state ?(seed = 4) ~allocations policy =
  let pool = Im.create ~policy ~frames:120 ~rng:(rng seed) () in
  let clients =
    List.map
      (fun (name, tickets) -> Im.add_client pool ~name ~tickets ~working_set:160)
      allocations
  in
  (* settle, then average residency over several snapshots to damp the
     random-victim fluctuations (resident counts wander by ~sqrt(frames)) *)
  Im.simulate pool ~steps:60_000;
  let sums = Array.make (List.length clients) 0 in
  let snapshots = 10 in
  for _ = 1 to snapshots do
    Im.simulate pool ~steps:6_000;
    List.iteri (fun i c -> sums.(i) <- sums.(i) + Im.resident pool c) clients
  done;
  Array.to_list (Array.map (fun s -> s / snapshots) sums)

let test_inverse_orders_by_tickets () =
  (* a pronounced 18:5:1 allocation makes the inverse weights (1 - t/T)
     clearly distinct: 0.25 vs 0.79 vs 0.96 *)
  match
    steady_state ~allocations:[ ("gold", 900); ("silver", 250); ("bronze", 50) ]
      Im.Inverse_lottery
  with
  | [ gold; silver; bronze ] ->
      checkb
        (Printf.sprintf "residency ordered %d > %d > %d" gold silver bronze)
        true
        (gold > silver && silver > bronze);
      checkb "spread is material" true (float_of_int gold > 1.8 *. float_of_int bronze)
  | _ -> Alcotest.fail "three clients expected"

let test_ticket_blind_policies_split_evenly () =
  List.iter
    (fun policy ->
      match
        steady_state ~allocations:[ ("gold", 900); ("silver", 250); ("bronze", 50) ]
          policy
      with
      | [ gold; _silver; bronze ] ->
          checkb "even within 25% despite skewed tickets" true
            (abs (gold - bronze) * 100 < 25 * max gold bronze)
      | _ -> Alcotest.fail "three clients expected")
    [ Im.Global_lru; Im.Global_random ]

let test_set_tickets_shifts_residency () =
  let pool = Im.create ~frames:100 ~rng:(rng 5) () in
  let a = Im.add_client pool ~name:"a" ~tickets:100 ~working_set:150 in
  let b = Im.add_client pool ~name:"b" ~tickets:100 ~working_set:150 in
  Im.simulate pool ~steps:40_000;
  Im.set_tickets pool b 1000;
  Im.simulate pool ~steps:80_000;
  checkb "b's residency outgrows a's after inflation" true
    (Im.resident pool b > Im.resident pool a)

let test_memory_validation () =
  Alcotest.check_raises "frames" (Invalid_argument "Inverse_memory.create: frames <= 0")
    (fun () -> ignore (Im.create ~frames:0 ~rng:(rng 6) ()));
  let pool = Im.create ~frames:2 ~rng:(rng 7) () in
  let c = Im.add_client pool ~name:"c" ~tickets:1 ~working_set:2 in
  Alcotest.check_raises "page range"
    (Invalid_argument "Inverse_memory.access: page outside working set") (fun () ->
      ignore (Im.access pool c 2));
  Alcotest.check_raises "no clients" (Invalid_argument "Inverse_memory.simulate: no clients")
    (fun () ->
      Im.simulate (Im.create ~frames:2 ~rng:(rng 8) ()) ~steps:1)

let test_single_over_provisioned_client_still_evicts () =
  (* t_i = T makes the paper's weight zero; the occupancy floor must keep
     the pool functional *)
  let pool = Im.create ~frames:2 ~rng:(rng 9) () in
  let c = Im.add_client pool ~name:"only" ~tickets:50 ~working_set:5 in
  for i = 0 to 4 do
    ignore (Im.access pool c i)
  done;
  checki "still capped" 2 (Im.resident pool c)

let test_zipf_locality_raises_hit_rate () =
  let run pattern =
    let pool = Im.create ~frames:50 ~rng:(rng 40) () in
    let c = Im.add_client pool ~name:"c" ~tickets:1 ~working_set:500 in
    Im.simulate ~pattern pool ~steps:50_000;
    1. -. (float_of_int (Im.faults pool c) /. float_of_int (Im.accesses pool c))
  in
  let uniform = run Im.Uniform and zipf = run (Im.Zipf 1.0) in
  checkb
    (Printf.sprintf "zipf hit rate %.2f well above uniform %.2f" zipf uniform)
    true
    (zipf > uniform +. 0.2);
  (* uniform hit rate roughly frames/working_set = 10% *)
  checkb "uniform hit rate sane" true (uniform > 0.05 && uniform < 0.2)

let test_zipf_validation () =
  let pool = Im.create ~frames:2 ~rng:(rng 41) () in
  ignore (Im.add_client pool ~name:"c" ~tickets:1 ~working_set:4);
  checkb "zipf s must be positive" true
    (match Im.simulate ~pattern:(Im.Zipf 0.) pool ~steps:1 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- disk --------------------------------------------------------------------------- *)

module Disk = Core.Disk

let test_disk_service_time_math () =
  let disk = Disk.create ~policy:Disk.Fcfs ~seek_cost:10 ~transfer_cost:2000 ~rng:(rng 20) () in
  let c = Disk.add_client disk ~name:"c" ~tickets:1 in
  Disk.submit disk c ~cylinder:100;
  Disk.submit disk c ~cylinder:50;
  checkb "first request served" true (Disk.serve_one disk <> None);
  (* head 0 -> 100: 100*10 + 2000 *)
  checki "clock after seek+transfer" 3000 (Disk.now disk);
  checki "head moved" 100 (Disk.head_position disk);
  ignore (Disk.serve_one disk);
  (* 100 -> 50: 50*10 + 2000 *)
  checki "clock accumulates" 5500 (Disk.now disk);
  checki "seek distance" 150 (Disk.total_seek_distance disk);
  checkb "idle when drained" true (Disk.serve_one disk = None)

let test_disk_sstf_picks_nearest () =
  let disk = Disk.create ~policy:Disk.Sstf ~rng:(rng 21) () in
  let c = Disk.add_client disk ~name:"c" ~tickets:1 in
  Disk.submit disk c ~cylinder:900;
  Disk.submit disk c ~cylinder:10;
  Disk.submit disk c ~cylinder:500;
  ignore (Disk.serve_one disk);
  checki "nearest first (head at 0)" 10 (Disk.head_position disk);
  ignore (Disk.serve_one disk);
  checki "then 500" 500 (Disk.head_position disk);
  ignore (Disk.serve_one disk);
  checki "then 900" 900 (Disk.head_position disk)

let test_disk_fcfs_order () =
  let disk = Disk.create ~policy:Disk.Fcfs ~rng:(rng 22) () in
  let a = Disk.add_client disk ~name:"a" ~tickets:1 in
  let b = Disk.add_client disk ~name:"b" ~tickets:100 in
  Disk.submit disk a ~cylinder:900;
  Disk.submit disk b ~cylinder:10;
  (* fcfs ignores both tickets and seek distance *)
  (match Disk.serve_one disk with
  | Some winner -> Alcotest.check Alcotest.string "oldest first" "a" (Disk.client_name winner)
  | None -> Alcotest.fail "no service");
  checki "head at 900" 900 (Disk.head_position disk)

let test_disk_lottery_proportional () =
  let disk = Disk.create ~policy:Disk.Lottery ~rng:(rng 23) () in
  let wl = rng 24 in
  let a = Disk.add_client disk ~name:"a" ~tickets:3 in
  let b = Disk.add_client disk ~name:"b" ~tickets:1 in
  let refill () =
    List.iter
      (fun c ->
        while Disk.pending disk c < 8 do
          Disk.submit disk c ~cylinder:(Rng.int_below wl 1000)
        done)
      [ a; b ]
  in
  for _ = 1 to 8_000 do
    refill ();
    ignore (Disk.serve_one disk)
  done;
  let observed = [| Disk.served disk a; Disk.served disk b |] in
  checkb "3:1 by chi-square" true
    (Chi.goodness_of_fit ~observed ~weights:[| 3.; 1. |] ())

let test_disk_no_starvation_under_lottery () =
  (* SSTF starves a far-away request while near traffic persists; the
     lottery does not *)
  let run policy =
    let disk = Disk.create ~policy ~rng:(rng 25) () in
    let near = Disk.add_client disk ~name:"near" ~tickets:1 in
    let far = Disk.add_client disk ~name:"far" ~tickets:1 in
    Disk.submit disk far ~cylinder:999;
    for _ = 1 to 500 do
      Disk.submit disk near ~cylinder:1;
      ignore (Disk.serve_one disk)
    done;
    Disk.served disk far
  in
  checki "sstf starves the far request" 0 (run Disk.Sstf);
  checkb "lottery serves it" true (run Disk.Lottery > 0)

let test_disk_validation () =
  let disk = Disk.create ~rng:(rng 26) () in
  let c = Disk.add_client disk ~name:"c" ~tickets:1 in
  Alcotest.check_raises "cylinder range" (Invalid_argument "Disk.submit: cylinder out of range")
    (fun () -> Disk.submit disk c ~cylinder:1000);
  checkb "negative tickets" true
    (match Disk.add_client disk ~name:"x" ~tickets:(-1) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "mean latency nan before service" true (Float.is_nan (Disk.mean_latency disk c))

(* --- switch ------------------------------------------------------------------------- *)

module Sw = Core.Switch

let test_switch_uncongested_delivers_everything () =
  let sw = Sw.create ~ports:1 ~rng:(rng 30) () in
  let c = Sw.add_circuit sw ~name:"c" ~output_port:0 ~tickets:1 ~rate:0.4 in
  Sw.step sw ~slots:20_000;
  checki "no drops" 0 (Sw.dropped sw c);
  checkb "delivered matches arrivals (~0.4/slot)" true
    (abs (Sw.delivered sw c + Sw.backlog sw c - 8000) < 400);
  checkb "tiny delay" true (Sw.mean_delay sw c < 2.)

let test_switch_congested_shares () =
  let sw = Sw.create ~ports:1 ~rng:(rng 31) () in
  let a = Sw.add_circuit sw ~name:"a" ~output_port:0 ~tickets:3 ~rate:0.8 in
  let b = Sw.add_circuit sw ~name:"b" ~output_port:0 ~tickets:1 ~rate:0.8 in
  Sw.step sw ~slots:30_000;
  let observed = [| Sw.delivered sw a; Sw.delivered sw b |] in
  checkb "3:1 delivered (chi-square)" true
    (Chi.goodness_of_fit ~observed ~weights:[| 3.; 1. |] ());
  checkb "port saturated" true (Sw.port_utilization sw 0 > 0.99);
  checkb "poor circuit drops more" true (Sw.dropped sw b > Sw.dropped sw a);
  checkb "poor circuit waits longer" true (Sw.mean_delay sw b > Sw.mean_delay sw a)

let test_switch_ports_independent () =
  let sw = Sw.create ~ports:2 ~rng:(rng 32) () in
  let hog = Sw.add_circuit sw ~name:"hog" ~output_port:0 ~tickets:1000 ~rate:1.0 in
  let quiet = Sw.add_circuit sw ~name:"quiet" ~output_port:1 ~tickets:1 ~rate:0.2 in
  Sw.step sw ~slots:10_000;
  ignore hog;
  checki "no drops on the quiet port" 0 (Sw.dropped sw quiet);
  checkb "quiet circuit unaffected" true (Sw.mean_delay sw quiet < 2.)

let test_switch_buffer_capacity () =
  let sw = Sw.create ~ports:1 ~buffer_capacity:4 ~rng:(rng 33) () in
  let starved = Sw.add_circuit sw ~name:"starved" ~output_port:0 ~tickets:0 ~rate:1.0 in
  let winner = Sw.add_circuit sw ~name:"winner" ~output_port:0 ~tickets:10 ~rate:1.0 in
  Sw.step sw ~slots:1_000;
  ignore winner;
  checkb "backlog capped" true (Sw.backlog sw starved <= 4);
  checkb "overflow counted" true (Sw.dropped sw starved > 900)

let test_switch_validation () =
  let sw = Sw.create ~ports:2 ~rng:(rng 34) () in
  checkb "port range" true
    (match Sw.add_circuit sw ~name:"x" ~output_port:2 ~tickets:1 ~rate:0.5 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "rate range" true
    (match Sw.add_circuit sw ~name:"x" ~output_port:0 ~tickets:1 ~rate:1.5 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- io bandwidth ------------------------------------------------------------------ *)

let test_io_proportional_shares () =
  let dev = Io.create ~rng:(rng 10) () in
  let a = Io.add_client dev ~name:"a" ~tickets:3 in
  let b = Io.add_client dev ~name:"b" ~tickets:2 in
  let c = Io.add_client dev ~name:"c" ~tickets:1 in
  List.iter (fun cl -> Io.submit dev cl ~requests:50_000) [ a; b; c ];
  Io.serve dev ~slots:30_000;
  checki "all slots served" 30_000 (Io.total_served dev);
  let observed = [| Io.served dev a; Io.served dev b; Io.served dev c |] in
  checkb "3:2:1 by chi-square" true
    (Chi.goodness_of_fit ~observed ~weights:[| 3.; 2.; 1. |] ())

let test_io_idle_client_share_redistributes () =
  let dev = Io.create ~rng:(rng 11) () in
  let a = Io.add_client dev ~name:"a" ~tickets:3 in
  let b = Io.add_client dev ~name:"b" ~tickets:2 in
  let c = Io.add_client dev ~name:"c" ~tickets:1 in
  (* b has nothing queued: a and c split 3:1 *)
  Io.submit dev a ~requests:40_000;
  Io.submit dev c ~requests:40_000;
  ignore b;
  Io.serve dev ~slots:20_000;
  let observed = [| Io.served dev a; Io.served dev c |] in
  checkb "3:1 between backlogged clients" true
    (Chi.goodness_of_fit ~observed ~weights:[| 3.; 1. |] ())

let test_io_drains_and_idles () =
  let dev = Io.create ~rng:(rng 12) () in
  let a = Io.add_client dev ~name:"a" ~tickets:1 in
  Io.submit dev a ~requests:5;
  Io.serve dev ~slots:100;
  checki "only queued requests served" 5 (Io.served dev a);
  checki "queue empty" 0 (Io.pending dev a);
  checkb "device idle" true (Io.serve_slot dev = None)

let test_io_cancel_pending () =
  let dev = Io.create ~rng:(rng 13) () in
  let a = Io.add_client dev ~name:"a" ~tickets:1 in
  Io.submit dev a ~requests:10;
  Io.cancel_pending dev a;
  checki "cancelled" 0 (Io.pending dev a);
  checkb "nothing to serve" true (Io.serve_slot dev = None)

let test_io_zero_ticket_backlog_served_fifo () =
  let dev = Io.create ~rng:(rng 14) () in
  let a = Io.add_client dev ~name:"a" ~tickets:0 in
  Io.submit dev a ~requests:3;
  Io.serve dev ~slots:10;
  checki "unfunded but alone: still served" 3 (Io.served dev a)

let test_io_ticket_change_mid_run () =
  let dev = Io.create ~rng:(rng 16) () in
  let a = Io.add_client dev ~name:"a" ~tickets:1 in
  let b = Io.add_client dev ~name:"b" ~tickets:1 in
  List.iter (fun c -> Io.submit dev c ~requests:100_000) [ a; b ];
  Io.serve dev ~slots:10_000;
  let a1 = Io.served dev a in
  Io.set_tickets dev a 9;
  Io.serve dev ~slots:10_000;
  let a2 = Io.served dev a - a1 in
  checkb "first phase even" true (abs (a1 - 5_000) < 500);
  checkb "second phase ~90%" true (abs (a2 - 9_000) < 500)

let test_io_validation () =
  let dev = Io.create ~rng:(rng 15) () in
  checkb "negative tickets rejected" true
    (match Io.add_client dev ~name:"x" ~tickets:(-1) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let a = Io.add_client dev ~name:"a" ~tickets:1 in
  checkb "negative submit rejected" true
    (match Io.submit dev a ~requests:(-1) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- funded-client change tracker ---------------------------------------------- *)

module Fd = Lotto_res.Funded
module F = Core.Funding

let tracker_setup () =
  let sys = F.create_system () in
  let tr = Fd.Tracker.attach sys in
  let cur = F.make_currency sys ~name:"tenant" in
  let tk = F.issue sys ~currency:(F.base sys) ~amount:100 in
  F.hold sys tk;
  (* holding dirties the base currency; start the tests from a clean slate *)
  ignore (Fd.Tracker.drain tr);
  (sys, tr, cur, tk)

let dirtied = function
  | `Dirtied cids -> List.sort compare cids
  | `All -> Alcotest.fail "expected `Dirtied, got `All"
  | `None -> Alcotest.fail "expected `Dirtied, got `None"

let test_tracker_force_drains_all_once () =
  let _, tr, _, _ = tracker_setup () in
  Fd.Tracker.force tr;
  (match Fd.Tracker.drain tr with
  | `All -> ()
  | `Dirtied _ | `None -> Alcotest.fail "forced tracker must drain `All");
  match Fd.Tracker.drain tr with
  | `None -> ()
  | `All -> Alcotest.fail "`All must be consumed by the first drain"
  | `Dirtied _ -> Alcotest.fail "no mutations since the forced drain"

let test_tracker_force_clears_stale_pending () =
  let sys, tr, _, tk = tracker_setup () in
  (* dirty some currencies, then force: the full drain subsumes them and
     they must not resurface as a stale `Dirtied on the next drain *)
  F.set_amount sys tk 150;
  Fd.Tracker.force tr;
  (match Fd.Tracker.drain tr with
  | `All -> ()
  | `Dirtied _ | `None -> Alcotest.fail "force wins over pending cids");
  match Fd.Tracker.drain tr with
  | `None -> ()
  | `All | `Dirtied _ -> Alcotest.fail "stale cids leaked past a full drain"

let test_tracker_mutations_between_drains_surface () =
  let sys, tr, cur, _ = tracker_setup () in
  let tk = F.issue sys ~currency:cur ~amount:10 in
  F.hold sys tk;
  (* change events are scoped to currencies with a validated value cache
     ("currencies never read by anyone may stay stale"), so read the value
     first — exactly what a manager's revalue step does before a draw *)
  ignore (F.currency_value sys cur);
  ignore (Fd.Tracker.drain tr);
  F.set_amount sys tk 20;
  let d1 = dirtied (Fd.Tracker.drain tr) in
  checkb "mutation dirties the read currency" true
    (List.mem (F.currency_id cur) d1);
  (match Fd.Tracker.drain tr with
  | `None -> ()
  | `All | `Dirtied _ -> Alcotest.fail "drain must consume pending cids");
  (* a mutation landing after a drain and the manager's revalue (i.e.
     between revalue and the draw itself) must surface on the NEXT drain,
     not vanish *)
  ignore (F.currency_value sys cur);
  F.set_amount sys tk 30;
  let d2 = dirtied (Fd.Tracker.drain tr) in
  checkb "post-drain mutation surfaces next drain" true
    (List.mem (F.currency_id cur) d2);
  match Fd.Tracker.drain tr with
  | `None -> ()
  | `All | `Dirtied _ -> Alcotest.fail "second drain must be empty"

let () =
  Alcotest.run "resmgr"
    [
      ( "inverse-memory",
        [
          Alcotest.test_case "no eviction until full" `Quick test_no_eviction_until_full;
          Alcotest.test_case "eviction under pressure" `Quick test_eviction_under_pressure;
          Alcotest.test_case "global LRU order" `Quick test_lru_within_victim;
          Alcotest.test_case "inverse lottery orders residency by tickets" `Slow
            test_inverse_orders_by_tickets;
          Alcotest.test_case "ticket-blind baselines split evenly" `Slow
            test_ticket_blind_policies_split_evenly;
          Alcotest.test_case "set_tickets shifts residency" `Slow
            test_set_tickets_shifts_residency;
          Alcotest.test_case "validation" `Quick test_memory_validation;
          Alcotest.test_case "over-provisioned lone client" `Quick
            test_single_over_provisioned_client_still_evicts;
          Alcotest.test_case "zipf locality raises hit rate" `Slow
            test_zipf_locality_raises_hit_rate;
          Alcotest.test_case "zipf validation" `Quick test_zipf_validation;
        ] );
      ( "disk",
        [
          Alcotest.test_case "service-time arithmetic" `Quick test_disk_service_time_math;
          Alcotest.test_case "sstf picks nearest" `Quick test_disk_sstf_picks_nearest;
          Alcotest.test_case "fcfs order beats tickets" `Quick test_disk_fcfs_order;
          Alcotest.test_case "lottery proportional (chi-square)" `Slow
            test_disk_lottery_proportional;
          Alcotest.test_case "lottery avoids sstf starvation" `Quick
            test_disk_no_starvation_under_lottery;
          Alcotest.test_case "validation" `Quick test_disk_validation;
        ] );
      ( "switch",
        [
          Alcotest.test_case "uncongested port delivers all" `Quick
            test_switch_uncongested_delivers_everything;
          Alcotest.test_case "congested port splits by tickets" `Slow
            test_switch_congested_shares;
          Alcotest.test_case "ports independent" `Quick test_switch_ports_independent;
          Alcotest.test_case "buffers bounded, drops counted" `Quick
            test_switch_buffer_capacity;
          Alcotest.test_case "validation" `Quick test_switch_validation;
        ] );
      ( "io-bandwidth",
        [
          Alcotest.test_case "3:2:1 shares (chi-square)" `Quick test_io_proportional_shares;
          Alcotest.test_case "idle share redistributes" `Quick
            test_io_idle_client_share_redistributes;
          Alcotest.test_case "drains and idles" `Quick test_io_drains_and_idles;
          Alcotest.test_case "cancel pending" `Quick test_io_cancel_pending;
          Alcotest.test_case "zero-ticket fifo fallback" `Quick
            test_io_zero_ticket_backlog_served_fifo;
          Alcotest.test_case "ticket change mid-run" `Quick test_io_ticket_change_mid_run;
          Alcotest.test_case "validation" `Quick test_io_validation;
        ] );
      ( "funded-tracker",
        [
          Alcotest.test_case "force drains `All exactly once" `Quick
            test_tracker_force_drains_all_once;
          Alcotest.test_case "force clears stale pending cids" `Quick
            test_tracker_force_clears_stale_pending;
          Alcotest.test_case "mutations between drains surface" `Quick
            test_tracker_mutations_between_drains_surface;
        ] );
    ]
