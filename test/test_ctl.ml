(* The lotteryctl command engine: parsing, execution, persistence. *)

module Store = Lotto_ctl.Store
module F = Core.Funding

let check = Alcotest.check
let checkb = check Alcotest.bool
let checki = check Alcotest.int

let ok ?user store words =
  match Store.parse_command words with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok cmd -> (
      match Store.exec ?user store cmd with
      | Ok out -> out
      | Error m -> Alcotest.failf "exec %s failed: %s" (String.concat " " words) m)

let expect_error ?user store words =
  match Store.parse_command words with
  | Error m -> m
  | Ok cmd -> (
      match Store.exec ?user store cmd with
      | Ok out -> Alcotest.failf "expected failure, got %S" out
      | Error m -> m)

let build_basic () =
  let s = Store.create () in
  ignore (ok s [ "mkcur"; "alice" ]);
  ignore (ok s [ "mktkt"; "200"; "base" ]);
  ignore (ok s [ "fund"; "t1"; "alice" ]);
  ignore (ok s [ "mktkt"; "100"; "alice" ]);
  ignore (ok s [ "hold"; "t2" ]);
  s

(* tiny case-insensitive substring helper *)
module Astring_contains = struct
  let contains haystack needle =
    Core.Corpus.count_substring ~haystack ~needle > 0
end

let test_basic_workflow () =
  let s = build_basic () in
  F.check_invariants (Store.system s);
  let eval = ok s [ "eval" ] in
  checkb "eval mentions alice" true (Astring_contains.contains eval "alice");
  checkb "ticket value 200 shown" true (Astring_contains.contains eval "200.00");
  let lstkt = ok s [ "lstkt" ] in
  checkb "lstkt lists t1" true (Astring_contains.contains lstkt "t1");
  checkb "lstkt shows held state" true (Astring_contains.contains lstkt "held");
  let lscur = ok s [ "lscur" ] in
  checkb "lscur lists base" true (Astring_contains.contains lscur "base")

let test_roundtrip_persistence () =
  let s = build_basic () in
  let text = Store.save s in
  match Store.load text with
  | Error m -> Alcotest.failf "reload failed: %s" m
  | Ok s' ->
      F.check_invariants (Store.system s');
      check Alcotest.string "serialization is stable" text (Store.save s');
      (* values must survive the roundtrip *)
      check Alcotest.string "eval equal" (ok s [ "eval" ]) (ok s' [ "eval" ]);
      (* labels continue after the highest loaded one *)
      let out = ok s' [ "mktkt"; "10"; "base" ] in
      checkb "next label is t3" true (Astring_contains.contains out "t3")

let test_load_file_missing () =
  match Store.load_file "/nonexistent/funding.lot" with
  | Ok s -> checki "fresh store" 1 (List.length (F.currencies (Store.system s)))
  | Error m -> Alcotest.failf "expected fresh store, got error %s" m

let test_save_and_load_file () =
  let path = Filename.temp_file "lotto" ".lot" in
  let s = build_basic () in
  (match Store.save_file s path with
  | Ok () -> ()
  | Error m -> Alcotest.failf "save failed: %s" m);
  (match Store.load_file path with
  | Ok s' -> check Alcotest.string "same contents" (Store.save s) (Store.save s')
  | Error m -> Alcotest.failf "load failed: %s" m);
  Sys.remove path

let test_errors () =
  let s = build_basic () in
  checkb "duplicate currency" true
    (Astring_contains.contains (expect_error s [ "mkcur"; "alice" ]) "exists");
  checkb "unknown ticket" true
    (Astring_contains.contains (expect_error s [ "rmtkt"; "t99" ]) "no ticket");
  checkb "unknown currency" true
    (Astring_contains.contains (expect_error s [ "fund"; "t2"; "nope" ]) "no currency");
  checkb "unknown command" true
    (Astring_contains.contains (expect_error s [ "frobnicate" ]) "unknown command");
  checkb "bad int" true
    (Astring_contains.contains (expect_error s [ "mktkt"; "abc"; "base" ]) "integer");
  (* cycle via CLI *)
  ignore (ok s [ "mkcur"; "b" ]);
  ignore (ok s [ "mktkt"; "10"; "alice" ]);
  ignore (ok s [ "fund"; "t3"; "b" ]);
  ignore (ok s [ "mktkt"; "10"; "b" ]);
  checkb "cycle reported" true
    (Astring_contains.contains (expect_error s [ "fund"; "t4"; "alice" ]) "cycle")

let test_rm_and_release () =
  let s = build_basic () in
  ignore (ok s [ "release"; "t2" ]);
  ignore (ok s [ "rmtkt"; "t2" ]);
  ignore (ok s [ "rmtkt"; "t1" ]);
  ignore (ok s [ "rmcur"; "alice" ]);
  F.check_invariants (Store.system s);
  checkb "alice gone" true (F.find_currency (Store.system s) "alice" = None);
  checkb "rmcur base refused" true
    (Astring_contains.contains (expect_error s [ "rmcur"; "base" ]) "base")

let test_draw_distribution () =
  let s = Store.create () in
  ignore (ok s [ "mktkt"; "300"; "base" ]);
  ignore (ok s [ "hold"; "t1" ]);
  ignore (ok s [ "mktkt"; "100"; "base" ]);
  ignore (ok s [ "hold"; "t2" ]);
  let out = ok s [ "draw"; "2000"; "7" ] in
  (* t1 should take roughly 75% of wins; parse its count *)
  checkb "draw output mentions both" true
    (Astring_contains.contains out "t1" && Astring_contains.contains out "t2");
  checkb "draw errors without held tickets" true
    (Astring_contains.contains
       (expect_error (Store.create ()) [ "draw"; "10" ])
       "no held")

let test_simulate () =
  let s = build_basic () in
  (* a second held ticket so the split is interesting: 200-alice vs 100-base *)
  ignore (ok s [ "mktkt"; "100"; "base" ]);
  ignore (ok s [ "hold"; "t3" ]);
  let out = ok s [ "simulate"; "30"; "5" ] in
  checkb "simulate reports both" true
    (Astring_contains.contains out "t2" && Astring_contains.contains out "t3");
  checkb "reports percentages" true (Astring_contains.contains out "%");
  checkb "simulate needs held tickets" true
    (Astring_contains.contains
       (expect_error (Store.create ()) [ "simulate"; "5" ])
       "no held")

let test_users_and_permissions () =
  let s = Store.create () in
  ignore (ok ~user:"alice" s [ "mkcur"; "wonderland" ]);
  (* strangers cannot inflate alice's currency *)
  checkb "mallory denied" true
    (Astring_contains.contains
       (expect_error ~user:"mallory" s [ "mktkt"; "999"; "wonderland" ])
       "denied");
  (* owner can, and can delegate *)
  ignore (ok ~user:"alice" s [ "mktkt"; "10"; "wonderland" ]);
  ignore (ok ~user:"alice" s [ "grant"; "wonderland"; "bob"; "issue" ]);
  ignore (ok ~user:"bob" s [ "mktkt"; "5"; "wonderland" ]);
  ignore (ok ~user:"alice" s [ "ungrant"; "wonderland"; "bob"; "issue" ]);
  checkb "revoked" true
    (Astring_contains.contains
       (expect_error ~user:"bob" s [ "mktkt"; "5"; "wonderland" ])
       "denied");
  (* ownership transfer *)
  ignore (ok ~user:"alice" s [ "chown"; "wonderland"; "carol" ]);
  checkb "alice lost manage" true
    (Astring_contains.contains
       (expect_error ~user:"alice" s [ "grant"; "wonderland"; "alice"; "issue" ])
       "denied");
  checkb "lscur shows owner" true
    (Astring_contains.contains (ok s [ "lscur" ]) "carol")

let test_acl_persistence () =
  let s = Store.create () in
  ignore (ok ~user:"alice" s [ "mkcur"; "wonderland" ]);
  ignore (ok ~user:"alice" s [ "grant"; "wonderland"; "bob"; "fund" ]);
  match Store.load (Store.save s) with
  | Error m -> Alcotest.failf "reload: %s" m
  | Ok s' ->
      checkb "owner persisted" true
        (Astring_contains.contains (ok s' [ "lscur" ]) "alice");
      (* bob's fund grant survives: issue a base ticket as root and let bob
         fund wonderland with it — bob also needs issue on base, so grant it *)
      ignore (ok s' [ "grant"; "base"; "bob"; "issue" ]);
      ignore (ok ~user:"bob" s' [ "mktkt"; "7"; "base" ]);
      ignore (ok ~user:"bob" s' [ "fund"; "t1"; "wonderland" ]);
      checkb "grant survived the roundtrip" true true

let test_dot_command () =
  let s = build_basic () in
  let out = ok s [ "dot" ] in
  checkb "dot output" true
    (Astring_contains.contains out "digraph"
    && Astring_contains.contains out "alice")

let test_hold_backing_rejected () =
  let s = build_basic () in
  (* t1 backs alice: holding it must fail *)
  checkb "hold on backing ticket" true
    (Astring_contains.contains (expect_error s [ "hold"; "t1" ]) "backing")

let test_draw_deterministic_by_seed () =
  let s = build_basic () in
  ignore (ok s [ "mktkt"; "100"; "base" ]);
  ignore (ok s [ "hold"; "t3" ]);
  check Alcotest.string "same seed, same wins" (ok s [ "draw"; "500"; "9" ])
    (ok s [ "draw"; "500"; "9" ]);
  checkb "different seeds differ" true
    (ok s [ "draw"; "500"; "9" ] <> ok s [ "draw"; "500"; "10" ])

let test_corrupt_state_rejected () =
  List.iter
    (fun text ->
      match Store.load text with
      | Ok _ -> Alcotest.failf "accepted corrupt state %S" text
      | Error _ -> ())
    [
      "garbage line";
      "ticket t1 10 nowhere unattached";
      "ticket t1 abc base unattached";
      "currency base";
      "ticket t1 10 base backs:missing";
    ]

(* --- scenarios ------------------------------------------------------------- *)

module Scenario = Lotto_ctl.Scenario

let demo_scenario =
  {|
# comment
seed 7
quantum 100ms
currency alice 1000 base
thread a1 spin 1ms 100 alice
thread a2 spin 1ms 200 alice
thread ivy interactive 10ms 90ms 100 base
run 20s
|}

let test_scenario_end_to_end () =
  match Scenario.parse demo_scenario with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok s ->
      let r = Scenario.run s in
      checki "horizon" (Lotto_sim.Time.seconds 20) r.Scenario.horizon;
      (match r.Scenario.rows with
      | [ ("a1", cpu1, _); ("a2", cpu2, _); ("ivy", cpu3, _) ] ->
          checkb "a1:a2 near 1:2" true
            (abs ((2 * cpu1) - cpu2) * 100 < 40 * cpu2);
          checkb "interactive thread uses least" true (cpu3 < cpu1)
      | _ -> Alcotest.fail "rows");
      checkb "timeline rendered" true
        (Astring_contains.contains r.Scenario.timeline "a1")

let test_scenario_parse_errors () =
  let expect_parse_error text needle =
    match Scenario.parse text with
    | Ok _ -> Alcotest.failf "accepted %S" text
    | Error m ->
        checkb
          (Printf.sprintf "%S mentions %S (got %S)" text needle m)
          true
          (Astring_contains.contains m needle)
  in
  expect_parse_error "thread a spin 1ms 100 base" "run";
  expect_parse_error "bogus directive
run 1s" "unparseable";
  expect_parse_error "quantum fast
run 1s" "bad quantum";
  expect_parse_error "seed x
run 1s" "bad seed";
  expect_parse_error "run 1s
thread a spin 1ms 1 base" "nothing may follow";
  expect_parse_error "thread a spin 1ms -5 base
run 1s" "bad funding";
  expect_parse_error "currency alice ten base
run 1s" "bad currency amount";
  expect_parse_error "run 0s" "bad run duration"

let rpc_scenario =
  "seed 7\n\
   currency alice 600 base\n\
   thread a1 spin 1ms 100 alice\n\
   thread srv serve echo 5ms 200 base\n\
   thread cli rpc echo 2ms 100 alice\n\
   run 5s"

let test_scenario_rpc_workloads () =
  (* serve/rpc threads: the run produces causal spans, a Prometheus
     snapshot and a phase profile when asked *)
  match Scenario.parse rpc_scenario with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok s ->
      let clock =
        let t = ref 0 in
        fun () ->
          t := !t + 50;
          !t
      in
      let r =
        Scenario.run ~trace:true ~stats:true ~spans:true ~prom:true
          ~profile_clock:clock s
      in
      checki "three rows" 3 (List.length r.Scenario.rows);
      (match r.Scenario.spans with
      | None -> Alcotest.fail "spans expected"
      | Some tracer ->
          let st = Lotto_obs.Span.stats tracer in
          checkb "rpc traffic produced spans" true (st.Lotto_obs.Span.st_total > 100);
          checki "all spans settled at the horizon" 0 st.st_open;
          check (Alcotest.list Alcotest.string) "no span violations" []
            (Lotto_obs.Span.violations tracer));
      (match r.Scenario.prom with
      | None -> Alcotest.fail "prom expected"
      | Some text ->
          checkb "rpc counters exported" true
            (Astring_contains.contains text "lotto_rpcs_sent_total"
            && Astring_contains.contains text "lotto_rpcs_served_total"));
      (match r.Scenario.profile with
      | None -> Alcotest.fail "profile expected"
      | Some text ->
          checkb "profile names the phases" true
            (Astring_contains.contains text "valuation"
            && Astring_contains.contains text "dispatch"));
      (match r.Scenario.stats with
      | None -> Alcotest.fail "stats expected"
      | Some text ->
          checkb "no wrap warning below capacity" false
            (Astring_contains.contains text "window wrapped"))

let test_scenario_wrap_warning () =
  (* a deliberately tiny trace ring: the stats text must warn that the
     window wrapped instead of letting the numbers look complete *)
  match Scenario.parse rpc_scenario with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok s ->
      let r = Scenario.run ~trace:true ~trace_capacity:64 ~stats:true s in
      (match r.Scenario.recorder with
      | None -> Alcotest.fail "recorder expected"
      | Some rec_ ->
          checkb "ring wrapped" true (Lotto_obs.Recorder.dropped rec_ > 0));
      match r.Scenario.stats with
      | None -> Alcotest.fail "stats expected"
      | Some text ->
          checkb "wrap warning present" true
            (Astring_contains.contains text "window wrapped")

let test_scenario_rpc_parse_errors () =
  let expect_parse_error text needle =
    match Scenario.parse text with
    | Ok _ -> Alcotest.failf "accepted %S" text
    | Error m ->
        checkb
          (Printf.sprintf "%S mentions %S (got %S)" text needle m)
          true
          (Astring_contains.contains m needle)
  in
  expect_parse_error "thread s serve echo 0ms 10 base\nrun 1s" "bad service cost";
  expect_parse_error "thread c rpc echo never 10 base\nrun 1s" "bad think time";
  expect_parse_error "thread c rpc echo 10 base\nrun 1s" "expected: thread"

let test_scenario_durations () =
  (* us/ms/s suffixes all parse *)
  match
    Scenario.parse
      "thread a spin 500us 10 base
thread b spin 2ms 10 base
run 1s"
  with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok s ->
      let r = Scenario.run s in
      checki "two rows" 2 (List.length r.Scenario.rows)

let () =
  Alcotest.run "ctl"
    [
      ( "store",
        [
          Alcotest.test_case "basic workflow" `Quick test_basic_workflow;
          Alcotest.test_case "save/load roundtrip" `Quick test_roundtrip_persistence;
          Alcotest.test_case "missing file is a fresh store" `Quick test_load_file_missing;
          Alcotest.test_case "file persistence" `Quick test_save_and_load_file;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "rm and release" `Quick test_rm_and_release;
          Alcotest.test_case "draw" `Quick test_draw_distribution;
          Alcotest.test_case "simulate (fundx analog)" `Quick test_simulate;
          Alcotest.test_case "users and permissions" `Quick test_users_and_permissions;
          Alcotest.test_case "acl persistence" `Quick test_acl_persistence;
          Alcotest.test_case "dot export" `Quick test_dot_command;
          Alcotest.test_case "hold on backing rejected" `Quick test_hold_backing_rejected;
          Alcotest.test_case "draw determinism" `Quick test_draw_deterministic_by_seed;
          Alcotest.test_case "corrupt state rejected" `Quick test_corrupt_state_rejected;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "end to end" `Quick test_scenario_end_to_end;
          Alcotest.test_case "parse errors" `Quick test_scenario_parse_errors;
          Alcotest.test_case "duration suffixes" `Quick test_scenario_durations;
          Alcotest.test_case "rpc workloads, spans, prom, profile" `Quick
            test_scenario_rpc_workloads;
          Alcotest.test_case "wrapped-window warning" `Quick
            test_scenario_wrap_warning;
          Alcotest.test_case "rpc parse errors" `Quick
            test_scenario_rpc_parse_errors;
        ] );
    ]
