(* Draw structures: list lottery (Figure 1, move-to-front), Fenwick-tree
   lottery, inverse lottery, and the Section 2 probabilistic guarantees. *)

module Ll = Core.List_lottery
module Tl = Core.Tree_lottery
module Cl = Core.Cumul_lottery
module Al = Core.Alias_lottery
module Il = Core.Inverse_lottery
module Rng = Core.Rng
module Chi = Core.Chi_square

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf msg = check (Alcotest.float 1e-9) msg

let rng () = Rng.create ~algo:Splitmix64 ~seed:20240 ()

(* --- list lottery --------------------------------------------------------- *)

let add_paper_clients t =
  (* Figure 1's clients hold 10, 2, 5, 1, 2 tickets; the list lottery
     prepends, so add in reverse to scan in the paper's order. *)
  List.rev_map
    (fun (name, w) -> (name, Ll.add t ~client:name ~weight:(float_of_int w)))
    (List.rev [ ("c1", 10); ("c2", 2); ("c3", 5); ("c4", 1); ("c5", 2) ])

let test_figure1_walkthrough () =
  let t = Ll.create ~move_to_front:false () in
  ignore (add_paper_clients t);
  checkf "total is 20" 20. (Ll.total t);
  (* running sums 10, 12, 17, 18, 20: winning value 15 lands on c3 *)
  (match Ll.draw_with_value t ~winning:15. with
  | Some h -> check Alcotest.string "winner" "c3" (Ll.client h)
  | None -> Alcotest.fail "no winner");
  (* boundaries: 9.99 -> c1, 10 -> c2, 17 -> c4, 19.5 -> c5 *)
  let winner_at v =
    match Ll.draw_with_value t ~winning:v with
    | Some h -> Ll.client h
    | None -> Alcotest.fail "no winner"
  in
  check Alcotest.string "9.99" "c1" (winner_at 9.99);
  check Alcotest.string "10" "c2" (winner_at 10.);
  check Alcotest.string "17" "c4" (winner_at 17.);
  check Alcotest.string "19.5" "c5" (winner_at 19.5)

let test_move_to_front () =
  let t = Ll.create () in
  ignore (add_paper_clients t);
  (* winning value 19.5 selects the last client; it must move to the head *)
  (match Ll.draw_with_value t ~winning:19.5 with
  | Some h -> check Alcotest.string "winner" "c5" (Ll.client h)
  | None -> Alcotest.fail "no winner");
  (match Ll.to_list t with
  | (first, _) :: _ -> check Alcotest.string "moved to front" "c5" first
  | [] -> Alcotest.fail "empty");
  checkf "total unchanged" 20. (Ll.total t)

let test_mtf_shortens_searches () =
  (* a heavily funded client should be found quickly under move-to-front *)
  let run ~mtf =
    let t =
      Ll.create ~order:(if mtf then Ll.Move_to_front else Ll.Unordered) ()
    in
    ignore (Ll.add t ~client:"heavy" ~weight:100.);
    (* heavy lands at the tail of the scan order: 50 light clients first *)
    for i = 1 to 50 do
      ignore (Ll.add t ~client:(Printf.sprintf "light%d" i) ~weight:1.)
    done;
    let r = rng () in
    Ll.reset_comparisons t;
    for _ = 1 to 2_000 do
      ignore (Ll.draw t r)
    done;
    Ll.comparisons t
  in
  let with_mtf = run ~mtf:true and without = run ~mtf:false in
  checkb
    (Printf.sprintf "mtf=%d < plain=%d" with_mtf without)
    true (with_mtf * 2 < without)

let test_list_add_remove_weights () =
  let t = Ll.create () in
  let a = Ll.add t ~client:"a" ~weight:1. in
  let b = Ll.add t ~client:"b" ~weight:2. in
  checki "size" 2 (Ll.size t);
  checkf "total" 3. (Ll.total t);
  Ll.set_weight t a 5.;
  checkf "total after set" 7. (Ll.total t);
  checkf "weight readback" 5. (Ll.weight t a);
  Ll.remove t a;
  checkb "removed" false (Ll.mem t a);
  checki "size after remove" 1 (Ll.size t);
  Ll.remove t a;
  checki "remove idempotent" 1 (Ll.size t);
  checkb "b still in" true (Ll.mem t b);
  Alcotest.check_raises "negative weight"
    (Invalid_argument "List_lottery.set_weight: negative weight") (fun () ->
      Ll.set_weight t b (-1.))

let test_list_empty_and_zero () =
  let t = Ll.create () in
  checkb "empty draw" true (Ll.draw t (rng ()) = None);
  ignore (Ll.add t ~client:"z" ~weight:0.);
  checkb "all-zero draw" true (Ll.draw t (rng ()) = None)

let test_zero_weight_never_wins () =
  let t = Ll.create () in
  ignore (Ll.add t ~client:"zero" ~weight:0.);
  ignore (Ll.add t ~client:"one" ~weight:1.);
  let r = rng () in
  for _ = 1 to 500 do
    match Ll.draw_client t r with
    | Some "one" -> ()
    | other -> Alcotest.failf "unexpected winner %s" (Option.value ~default:"-" other)
  done

let distribution_matches draw_client weights ~draws =
  let r = rng () in
  let observed = Array.make (Array.length weights) 0 in
  for _ = 1 to draws do
    match draw_client r with
    | Some i -> observed.(i) <- observed.(i) + 1
    | None -> Alcotest.fail "no winner"
  done;
  Chi.goodness_of_fit ~observed ~weights ()

let test_list_distribution () =
  let t = Ll.create () in
  let weights = [| 10.; 2.; 5.; 1.; 2. |] in
  Array.iteri (fun i w -> ignore (Ll.add t ~client:i ~weight:w)) weights;
  checkb "chi-square ok" true
    (distribution_matches (fun r -> Ll.draw_client t r) weights ~draws:20_000)

let test_sorted_order_shortens_searches () =
  (* the paper's other suggestion: keep clients sorted by decreasing
     tickets *)
  let run order =
    let t = Ll.create ~order () in
    ignore (Ll.add t ~client:"heavy" ~weight:100.);
    for i = 1 to 50 do
      ignore (Ll.add t ~client:(Printf.sprintf "light%d" i) ~weight:1.)
    done;
    let r = rng () in
    Ll.reset_comparisons t;
    for _ = 1 to 2_000 do
      ignore (Ll.draw t r)
    done;
    Ll.comparisons t
  in
  let sorted = run Ll.By_weight and plain = run Ll.Unordered in
  checkb
    (Printf.sprintf "sorted=%d < plain=%d" sorted plain)
    true (sorted * 2 < plain);
  (* sorted order must not change the distribution *)
  let t = Ll.create ~order:Ll.By_weight () in
  let weights = [| 1.; 5.; 3. |] in
  Array.iteri (fun i w -> ignore (Ll.add t ~client:i ~weight:w)) weights;
  checkb "distribution intact (chi-square)" true
    (distribution_matches (fun r -> Ll.draw_client t r) weights ~draws:20_000)

(* --- tree lottery ---------------------------------------------------------- *)

let test_tree_matches_prefix_sums () =
  let t = Tl.create () in
  let weights = [| 10.; 2.; 5.; 1.; 2. |] in
  Array.iteri (fun i w -> ignore (Tl.add t ~client:i ~weight:w)) weights;
  checkf "total" 20. (Tl.total t);
  let winner_at v =
    match Tl.draw_with_value t ~winning:v with
    | Some h -> Tl.client h
    | None -> Alcotest.fail "no winner"
  in
  checki "15 -> slot 2" 2 (winner_at 15.);
  checki "9.99 -> slot 0" 0 (winner_at 9.99);
  checki "10 -> slot 1" 1 (winner_at 10.);
  checki "17 -> slot 3" 3 (winner_at 17.);
  checki "19.9 -> slot 4" 4 (winner_at 19.9)

let test_tree_update_remove_reuse () =
  let t = Tl.create ~initial_capacity:2 () in
  let handles = Array.init 10 (fun i -> Tl.add t ~client:i ~weight:1.) in
  checki "size" 10 (Tl.size t);
  checkf "total" 10. (Tl.total t);
  Tl.set_weight t handles.(3) 5.;
  checkf "total after update" 14. (Tl.total t);
  Tl.remove t handles.(0);
  Tl.remove t handles.(0);
  checki "size after idempotent remove" 9 (Tl.size t);
  checkf "weight of removed" 0. (Tl.weight t handles.(0));
  (* slot reuse *)
  let again = Tl.add t ~client:99 ~weight:2. in
  checki "size back to 10" 10 (Tl.size t);
  checkb "live" true (Tl.mem t again);
  checkf "total" 15. (Tl.total t);
  Alcotest.check_raises "set on removed handle"
    (Invalid_argument "Tree_lottery.set_weight: removed handle") (fun () ->
      Tl.set_weight t handles.(0) 1.)

let test_tree_distribution () =
  let t = Tl.create () in
  let weights = [| 8.; 4.; 2.; 1.; 1. |] in
  Array.iteri (fun i w -> ignore (Tl.add t ~client:i ~weight:w)) weights;
  checkb "chi-square ok" true
    (distribution_matches (fun r -> Tl.draw_client t r) weights ~draws:20_000)

let test_tree_and_list_agree () =
  (* identical weights in identical scan order must pick identical winners
     for every winning value *)
  let weights = [| 3.; 0.; 7.; 2.; 5.; 0.; 1. |] in
  let tree = Tl.create () in
  Array.iteri (fun i w -> ignore (Tl.add tree ~client:i ~weight:w)) weights;
  let lst = Ll.create ~move_to_front:false () in
  (* prepend-reversal again: add backwards so scans run 0..n *)
  for i = Array.length weights - 1 downto 0 do
    ignore (Ll.add lst ~client:i ~weight:weights.(i))
  done;
  let r = rng () in
  for _ = 1 to 2_000 do
    let v = Rng.float_unit r *. 18. in
    let wt = Option.map Tl.client (Tl.draw_with_value tree ~winning:v) in
    let wl = Option.map Ll.client (Ll.draw_with_value lst ~winning:v) in
    if wt <> wl then
      Alcotest.failf "disagree at %.6f: tree=%s list=%s" v
        (match wt with Some i -> string_of_int i | None -> "-")
        (match wl with Some i -> string_of_int i | None -> "-")
  done

let qcheck_tree_total_is_sum =
  QCheck.Test.make ~name:"tree total equals sum of live weights" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 60) (float_bound_inclusive 50.))
    (fun ws ->
      let t = Tl.create () in
      let hs = List.map (fun w -> Tl.add t ~client:() ~weight:w) ws in
      (* remove every third *)
      List.iteri (fun i h -> if i mod 3 = 0 then Tl.remove t h) hs;
      let expected =
        List.filteri (fun i _ -> i mod 3 <> 0) ws |> List.fold_left ( +. ) 0.
      in
      abs_float (Tl.total t -. expected) < 1e-6)

let qcheck_tree_matches_reference_model =
  (* model-based: a random sequence of add/remove/set_weight against a
     naive association-list model; totals and deterministic winners must
     agree at every step *)
  QCheck.Test.make ~name:"fenwick tree agrees with a naive model" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~algo:Splitmix64 ~seed () in
      let tree = Tl.create ~initial_capacity:2 () in
      let model : (int Tl.handle * float) list ref = ref [] in
      let ok = ref true in
      for i = 0 to 120 do
        (match Rng.int_below rng 3 with
        | 0 ->
            let w = float_of_int (Rng.int_below rng 50) in
            let h = Tl.add tree ~client:i ~weight:w in
            model := !model @ [ (h, w) ]
        | 1 when !model <> [] ->
            let idx = Rng.int_below rng (List.length !model) in
            let h, _ = List.nth !model idx in
            Tl.remove tree h;
            model := List.filteri (fun j _ -> j <> idx) !model
        | 2 when !model <> [] ->
            let idx = Rng.int_below rng (List.length !model) in
            let h, _ = List.nth !model idx in
            let w = float_of_int (Rng.int_below rng 50) in
            Tl.set_weight tree h w;
            model := List.map (fun (h', w') -> if h' == h then (h', w) else (h', w')) !model
        | _ -> ());
        let model_total = List.fold_left (fun acc (_, w) -> acc +. w) 0. !model in
        if abs_float (Tl.total tree -. model_total) > 1e-6 then ok := false;
        (* winner agreement on a deterministic draw value; the model must
           walk handles in slot order, which to_list provides *)
        if model_total > 0. then begin
          let v = Rng.float_unit rng *. model_total in
          let tree_winner = Option.map Tl.client (Tl.draw_with_value tree ~winning:v) in
          let rec walk acc = function
            | [] -> None
            | (_, w) :: rest when w <= 0. -> walk acc rest
            | (h, w) :: rest ->
                if acc +. w > v then Some (Tl.client h) else walk (acc +. w) rest
          in
          (* to_list is slot-ordered; rebuild the model in that order *)
          let slot_ordered =
            List.map
              (fun (c, w) -> (List.find (fun (h, _) -> Tl.client h = c) !model |> fst, w))
              (Tl.to_list tree)
          in
          if walk 0. slot_ordered <> tree_winner then ok := false
        end
      done;
      !ok)

let qcheck_tree_draw_in_range =
  QCheck.Test.make ~name:"tree draw always returns a live positive-weight client"
    ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 40) (float_bound_inclusive 20.)) small_int)
    (fun (ws, seed) ->
      let t = Tl.create () in
      List.iteri (fun i w -> ignore (Tl.add t ~client:i ~weight:w)) ws;
      let r = Rng.create ~algo:Splitmix64 ~seed () in
      let arr = Array.of_list ws in
      match Tl.draw t r with
      | Some h -> arr.(Tl.client h) > 0.
      | None -> List.for_all (fun w -> w <= 0.) ws)

(* --- inverse lottery --------------------------------------------------------- *)

let test_inverse_probabilities () =
  let t = Il.create () in
  let a = Il.add t ~client:"a" ~tickets:3. in
  let b = Il.add t ~client:"b" ~tickets:2. in
  let c = Il.add t ~client:"c" ~tickets:1. in
  checkf "total" 6. (Il.total_tickets t);
  (* paper formula: (1/(n-1)) (1 - t/T) *)
  checkf "p(a)" (0.5 *. (1. -. 0.5)) (Il.loss_probability t a);
  checkf "p(b)" (0.5 *. (1. -. (1. /. 3.))) (Il.loss_probability t b);
  checkf "p(c)" (0.5 *. (1. -. (1. /. 6.))) (Il.loss_probability t c);
  let sum =
    Il.loss_probability t a +. Il.loss_probability t b +. Il.loss_probability t c
  in
  checkf "probabilities sum to 1" 1. sum

let test_inverse_distribution () =
  let t = Il.create () in
  let handles =
    Array.of_list
      (List.map
         (fun (name, w) -> Il.add t ~client:name ~tickets:w)
         [ ("a", 3.); ("b", 2.); ("c", 1.) ])
  in
  let weights = Array.map (fun h -> Il.loss_probability t h) handles in
  let r = rng () in
  let observed = Array.make 3 0 in
  for _ = 1 to 20_000 do
    match Il.draw_loser t r with
    | Some h ->
        let i = match Il.client h with "a" -> 0 | "b" -> 1 | _ -> 2 in
        observed.(i) <- observed.(i) + 1
    | None -> Alcotest.fail "no loser"
  done;
  checkb "distribution matches the inverse formula" true
    (Chi.goodness_of_fit ~observed ~weights ());
  (* fewer tickets must lose more often *)
  checkb "a loses least" true (observed.(0) < observed.(1) && observed.(1) < observed.(2))

let test_inverse_small_cases () =
  let t = Il.create () in
  checkb "empty" true (Il.draw_loser t (rng ()) = None);
  let only = Il.add t ~client:"only" ~tickets:5. in
  checkb "singleton" true (Il.draw_loser t (rng ()) = None);
  checkf "singleton probability 0" 0. (Il.loss_probability t only);
  Il.remove t only;
  checki "size" 0 (Il.size t)

let test_inverse_weighted_extra () =
  let t = Il.create () in
  ignore (Il.add t ~client:"holds-nothing" ~tickets:1.);
  ignore (Il.add t ~client:"holds-pages" ~tickets:1.);
  let extra = function "holds-pages" -> 1. | _ -> 0. in
  let r = rng () in
  for _ = 1 to 200 do
    match Il.draw_loser_weighted t r ~extra with
    | Some h -> check Alcotest.string "only the page holder loses" "holds-pages" (Il.client h)
    | None -> Alcotest.fail "no loser"
  done

let test_inverse_set_tickets () =
  let t = Il.create () in
  let a = Il.add t ~client:"a" ~tickets:1. in
  ignore (Il.add t ~client:"b" ~tickets:1.);
  Il.set_tickets t a 9.;
  checkf "tickets readback" 9. (Il.tickets t a);
  checkf "p(a) shrinks" (1. -. 0.9) (Il.loss_probability t a)

let test_list_total_stays_exact_over_many_mutations () =
  (* incremental float totals are re-summed periodically; after thousands of
     updates the draw bound must still match the exact sum *)
  let t = Ll.create () in
  let handles = Array.init 10 (fun i -> Ll.add t ~client:i ~weight:1.1) in
  let r = rng () in
  for _ = 1 to 10_000 do
    let h = handles.(Rng.int_below r 10) in
    Ll.set_weight t h (0.1 +. Rng.float_unit r)
  done;
  let exact = List.fold_left (fun acc (_, w) -> acc +. w) 0. (Ll.to_list t) in
  checkb "total within float tolerance of exact sum" true
    (abs_float (Ll.total t -. exact) < 1e-6)

let test_tree_drift_stability () =
  let t = Tl.create () in
  let handles = Array.init 32 (fun i -> Tl.add t ~client:i ~weight:1.) in
  let r = rng () in
  for _ = 1 to 20_000 do
    let h = handles.(Rng.int_below r 32) in
    Tl.set_weight t h (Rng.float_unit r);
    (* a draw must always return a live client despite accumulated drift *)
    match Tl.draw t r with
    | Some _ -> ()
    | None ->
        if Tl.total t > 1e-9 then Alcotest.fail "draw failed with positive total"
  done;
  checkb "still consistent" true (Tl.size t = 32)

(* --- distributed lottery ----------------------------------------------------- *)

module Dl = Core.Distributed_lottery

let test_distributed_rounds_up_nodes () =
  let t = Dl.create ~nodes:5 () in
  checki "rounded to 8" 8 (Dl.nodes t);
  checkb "bad node rejected" true
    (match Dl.add_on t ~node:8 ~client:() ~weight:1. with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_distributed_distribution () =
  let t = Dl.create ~nodes:4 () in
  (* clients spread across nodes with distinct weights *)
  let weights = [| 8.; 4.; 2.; 1.; 1. |] in
  Array.iteri
    (fun i w -> ignore (Dl.add_on t ~node:(i mod 4) ~client:i ~weight:w))
    weights;
  checkf "grand total" 16. (Dl.total t);
  checkf "node 0 holds clients 0 and 4" 9. (Dl.node_total t 0);
  let r = rng () in
  let observed = Array.make 5 0 in
  for _ = 1 to 20_000 do
    match Dl.draw_client t r with
    | Some i -> observed.(i) <- observed.(i) + 1
    | None -> Alcotest.fail "no winner"
  done;
  checkb "system-wide proportional (chi-square)" true
    (Chi.goodness_of_fit ~observed ~weights ())

let test_distributed_message_bounds () =
  let t = Dl.create ~nodes:16 () in
  let h = Dl.add_on t ~node:3 ~client:"x" ~weight:5. in
  let after_add = Dl.messages t in
  (* one message per tree level on the update path: log2(16) = 4 *)
  checki "add costs log2(nodes) messages" 4 after_add;
  Dl.set_weight t h 7.;
  checki "update costs log2(nodes)" 8 (Dl.messages t);
  let r = rng () in
  ignore (Dl.draw t r);
  checki "draw costs log2(nodes) hops" 12 (Dl.messages t);
  Dl.remove t h;
  checki "remove costs log2(nodes)" 16 (Dl.messages t);
  checkb "empty after remove" true (Dl.draw t r = None)

let test_distributed_remove_and_update () =
  let t = Dl.create ~nodes:2 () in
  let a = Dl.add_on t ~node:0 ~client:"a" ~weight:1. in
  let b = Dl.add_on t ~node:1 ~client:"b" ~weight:0. in
  let r = rng () in
  for _ = 1 to 100 do
    check (Alcotest.option Alcotest.string) "only a can win" (Some "a")
      (Dl.draw_client t r)
  done;
  Dl.set_weight t b 1000.;
  Dl.remove t a;
  for _ = 1 to 100 do
    check (Alcotest.option Alcotest.string) "now only b" (Some "b")
      (Dl.draw_client t r)
  done

(* --- unified Draw front-end -------------------------------------------------- *)

module D = Core.Draw

let test_draw_wrapper_ops () =
  List.iter
    (fun mode ->
      let t = D.of_mode mode in
      let a = D.add t ~client:"a" ~weight:2. in
      let b = D.add t ~client:"b" ~weight:1. in
      checki "size" 2 (D.size t);
      checkf "total" 3. (D.total t);
      checkf "weight readback" 2. (D.weight t a);
      check Alcotest.string "client readback" "b" (D.client b);
      D.set_weight t a 5.;
      checkf "total after set" 6. (D.total t);
      D.remove t b;
      checki "size after remove" 1 (D.size t);
      (match D.draw_client t (rng ()) with
      | Some "a" -> ()
      | _ -> Alcotest.fail "expected a to win");
      D.iter t (fun h -> check Alcotest.string "iter sees a" "a" (D.client h));
      D.remove t a;
      checkb "empty draw" true (D.draw t (rng ()) = None))
    [ D.List; D.Tree; D.Distributed 4; D.Cumul; D.Alias ]

let test_draw_foreign_handle_rejected () =
  let l = D.of_mode D.List and tr = D.of_mode D.Tree in
  let h = D.add l ~client:"x" ~weight:1. in
  checkb "foreign handle rejected" true
    (match D.set_weight tr h 2. with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_draw_backends_agree () =
  (* identical weights in identical scan order must pick identical winners
     for every winning value, whatever the backend *)
  let weights = [| 3.; 0.; 7.; 2.; 5.; 0.; 1. |] in
  let n = Array.length weights in
  let lst =
    (* the list prepends: add backwards so scans run in index order *)
    let l = Ll.create ~order:Ll.Unordered () in
    for i = n - 1 downto 0 do
      ignore (Ll.add l ~client:i ~weight:weights.(i))
    done;
    D.of_list l
  in
  let tree = D.of_mode D.Tree in
  Array.iteri (fun i w -> ignore (D.add tree ~client:i ~weight:w)) weights;
  let dist = D.of_mode (D.Distributed 8) in
  (* round-robin placement over >= n nodes: client i on node i, so the
     node-prefix order is the index order too *)
  Array.iteri (fun i w -> ignore (D.add dist ~client:i ~weight:w)) weights;
  let cumul = D.of_mode D.Cumul in
  Array.iteri (fun i w -> ignore (D.add cumul ~client:i ~weight:w)) weights;
  let alias = D.of_mode D.Alias in
  Array.iteri (fun i w -> ignore (D.add alias ~client:i ~weight:w)) weights;
  let total = Array.fold_left ( +. ) 0. weights in
  checkf "list total" total (D.total lst);
  checkf "tree total" total (D.total tree);
  checkf "dist total" total (D.total dist);
  checkf "cumul total" total (D.total cumul);
  checkf "alias total" total (D.total alias);
  let r = rng () in
  for _ = 1 to 2_000 do
    let v = Rng.float_unit r *. total in
    let winner t = Option.map D.client (D.draw_with_value t ~winning:v) in
    let wl = winner lst
    and wt = winner tree
    and wd = winner dist
    and wc = winner cumul
    and wa = winner alias in
    if wl <> wt || wt <> wd || wt <> wc || wt <> wa then
      Alcotest.failf "disagree at %.6f: list=%s tree=%s dist=%s cumul=%s alias=%s"
        v
        (match wl with Some i -> string_of_int i | None -> "-")
        (match wt with Some i -> string_of_int i | None -> "-")
        (match wd with Some i -> string_of_int i | None -> "-")
        (match wc with Some i -> string_of_int i | None -> "-")
        (match wa with Some i -> string_of_int i | None -> "-")
  done

let test_draw_backend_distributions () =
  (* every backend must honour ticket proportions (chi-square) *)
  let weights = [| 10.; 2.; 5.; 1.; 2. |] in
  List.iter
    (fun (mode, name) ->
      let t = D.of_mode mode in
      Array.iteri (fun i w -> ignore (D.add t ~client:i ~weight:w)) weights;
      checkb
        (Printf.sprintf "%s chi-square ok" name)
        true
        (distribution_matches (fun r -> D.draw_client t r) weights ~draws:20_000))
    [
      (D.List, "list");
      (D.Tree, "tree");
      (D.Distributed 4, "distributed");
      (D.Cumul, "cumul");
      (D.Alias, "alias");
    ]

let test_draw_first_class_backends () =
  List.iter
    (fun mode ->
      let (module B : D.S) = D.backend mode in
      let t = B.create () in
      ignore (B.add t ~client:42 ~weight:3.);
      checkf "total" 3. (B.total t);
      match B.draw_client t (rng ()) with
      | Some 42 -> ()
      | _ -> Alcotest.fail "expected the only client to win")
    [ D.List; D.Tree; D.Distributed 4; D.Cumul; D.Alias ]

(* --- flat backends: cumul, alias, draw_slot, draw_k -------------------------- *)

let test_draw_slot_matches_draw_client () =
  (* a draw_slot/client_at pair and a draw_client consume the same
     randomness and name the same winner on every backend *)
  let weights = [| 10.; 2.; 5.; 1.; 2. |] in
  List.iter
    (fun (mode, name) ->
      let mk () =
        let t = D.of_mode mode in
        Array.iteri (fun i w -> ignore (D.add t ~client:i ~weight:w)) weights;
        t
      in
      let t1 = mk () and t2 = mk () in
      let r1 = rng () and r2 = rng () in
      for _ = 1 to 1_000 do
        let s = D.draw_slot t1 r1 in
        checkb (name ^ " slot nonnegative") true (s >= 0);
        let via_slot = D.client_at t1 s in
        match D.draw_client t2 r2 with
        | Some c -> checki (name ^ " same winner") c via_slot
        | None -> Alcotest.fail "draw_client returned None"
      done)
    [
      (D.List, "list");
      (D.Tree, "tree");
      (D.Distributed 4, "distributed");
      (D.Cumul, "cumul");
      (D.Alias, "alias");
    ]

let test_draw_k_matches_sequential () =
  (* one draw_k call and k sequential draw_slot calls are the same lottery
     sequence on every backend (the batch only amortizes the rebuild) *)
  let weights = [| 3.; 7.; 2.; 5.; 1. |] in
  List.iter
    (fun (mode, name) ->
      let mk () =
        let t = D.of_mode mode in
        Array.iteri (fun i w -> ignore (D.add t ~client:i ~weight:w)) weights;
        t
      in
      let t1 = mk () and t2 = mk () in
      let r1 = rng () and r2 = rng () in
      let out = Array.make 64 (-1) in
      let n = D.draw_k t1 r1 ~k:64 out in
      checki (name ^ " batch filled") 64 n;
      for i = 0 to n - 1 do
        let s = D.draw_slot t2 r2 in
        checki
          (Printf.sprintf "%s draw %d matches sequential" name i)
          (D.client_at t2 s) out.(i)
      done)
    [
      (D.List, "list");
      (D.Tree, "tree");
      (D.Distributed 4, "distributed");
      (D.Cumul, "cumul");
      (D.Alias, "alias");
    ]

let test_draw_k_empty_and_small () =
  let t = D.of_mode D.Cumul in
  let out = Array.make 8 (-1) in
  checki "empty draws nothing" 0 (D.draw_k t (rng ()) ~k:8 out);
  ignore (D.add t ~client:1 ~weight:0.);
  checki "all-zero draws nothing" 0 (D.draw_k t (rng ()) ~k:8 out);
  ignore (D.add t ~client:2 ~weight:1.);
  checki "k capped by scratch length" 8 (D.draw_k t (rng ()) ~k:100 out);
  Array.iter (fun c -> checki "only funded client wins" 2 c) out

(* The interleaving property of the lazy-rebuild backends: 1000 random
   add/remove/set_weight/draw steps, mirrored into Tree, Cumul and Alias.
   Integer-valued weights keep every partial sum float-exact, so Cumul —
   which allocates slots and accumulates its running total in exactly
   Tree's order — must name Tree's winner on every single draw from the
   same RNG stream. Alias draws from its own stream (its table transforms
   the deviate differently); each winner must simply be live with positive
   weight, and its long-run distribution is checked separately below. *)
let qcheck_flat_backends_match_tree =
  QCheck.Test.make ~name:"cumul matches tree draw-for-draw over 1000 interleavings"
    ~count:100 QCheck.small_int
    (fun seed ->
      let ops = Rng.create ~algo:Splitmix64 ~seed () in
      let r_tree = Rng.create ~algo:Splitmix64 ~seed:(seed + 7919) () in
      let r_cumul = Rng.create ~algo:Splitmix64 ~seed:(seed + 7919) () in
      let r_alias = Rng.create ~algo:Splitmix64 ~seed:(seed + 7919) () in
      let tree = Tl.create ~initial_capacity:2 () in
      let cumul = Cl.create ~initial_capacity:2 () in
      let alias = Al.create ~initial_capacity:2 () in
      let live = ref [] in
      let weight_of = Hashtbl.create 64 in
      let ok = ref true in
      for i = 0 to 999 do
        match Rng.int_below ops 4 with
        | 0 ->
            let w = float_of_int (Rng.int_below ops 50) in
            let ht = Tl.add tree ~client:i ~weight:w in
            let hc = Cl.add cumul ~client:i ~weight:w in
            let ha = Al.add alias ~client:i ~weight:w in
            Hashtbl.replace weight_of i w;
            live := (i, ht, hc, ha) :: !live
        | 1 when !live <> [] ->
            let idx = Rng.int_below ops (List.length !live) in
            let c, ht, hc, ha = List.nth !live idx in
            Tl.remove tree ht;
            Cl.remove cumul hc;
            Al.remove alias ha;
            Hashtbl.remove weight_of c;
            live := List.filteri (fun j _ -> j <> idx) !live
        | 2 when !live <> [] ->
            let idx = Rng.int_below ops (List.length !live) in
            let c, ht, hc, ha = List.nth !live idx in
            let w = float_of_int (Rng.int_below ops 50) in
            Tl.set_weight tree ht w;
            Cl.set_weight cumul hc w;
            Al.set_weight alias ha w;
            Hashtbl.replace weight_of c w
        | _ ->
            let wt = Tl.draw_client tree r_tree in
            let wc = Cl.draw_client cumul r_cumul in
            if wt <> wc then ok := false;
            (match Al.draw_client alias r_alias with
            | Some c ->
                if
                  match Hashtbl.find_opt weight_of c with
                  | Some w -> w <= 0.
                  | None -> true
                then ok := false
            | None ->
                (* alias may only come up empty when nothing can win *)
                if Tl.total tree > 0. then ok := false)
      done;
      !ok)

let test_alias_distribution_after_churn () =
  (* after a mutation burst, the rebuilt alias table must still honour the
     surviving weights exactly (chi-square) *)
  let al = Al.create ~initial_capacity:2 () in
  let handles = Array.init 12 (fun i -> Al.add al ~client:i ~weight:1.) in
  let r = rng () in
  for _ = 1 to 500 do
    let i = Rng.int_below r 12 in
    Al.set_weight al handles.(i) (float_of_int (Rng.int_below r 10))
  done;
  (* final reshape into a known distribution over a subset *)
  let weights = [| 10.; 2.; 5.; 1.; 2. |] in
  Array.iteri
    (fun i h ->
      if i < Array.length weights then Al.set_weight al h weights.(i)
      else Al.remove al h)
    handles;
  let observed = Array.make (Array.length weights) 0 in
  for _ = 1 to 20_000 do
    match Al.draw_client al r with
    | Some i -> observed.(i) <- observed.(i) + 1
    | None -> Alcotest.fail "no winner"
  done;
  checkb "chi-square ok after churn" true
    (Chi.goodness_of_fit ~observed ~weights ())

let test_cumul_lazy_rebuild_bookkeeping () =
  let c = Cl.create ~initial_capacity:2 () in
  let a = Cl.add c ~client:"a" ~weight:2. in
  let b = Cl.add c ~client:"b" ~weight:6. in
  checkf "total" 8. (Cl.total c);
  (* grow across the initial capacity, remove, re-add into the freed slot *)
  let more = Array.init 10 (fun i -> Cl.add c ~client:(string_of_int i) ~weight:1.) in
  Cl.remove c a;
  Cl.remove c more.(0);
  let z = Cl.add c ~client:"z" ~weight:4. in
  checkf "total tracks churn" (8. +. 10. -. 2. -. 1. +. 4.) (Cl.total c);
  checkb "z live" true (Cl.mem c z);
  checkb "a dead" false (Cl.mem c a);
  checkf "b weight" 6. (Cl.weight c b);
  (* a deterministic draw after all that must land on a live client *)
  match Cl.draw_with_value c ~winning:(Cl.total c -. 1e-6) with
  | Some h -> checkb "winner live" true (Cl.mem c h)
  | None -> Alcotest.fail "no winner"

(* --- Section 2 guarantees --------------------------------------------------- *)

let test_binomial_moments () =
  (* n lotteries, client with p = t/T: E[w] = np, Var = np(1-p) *)
  let t = Ll.create () in
  ignore (Ll.add t ~client:`Us ~weight:3.);
  ignore (Ll.add t ~client:`Them ~weight:7.);
  let r = rng () in
  let runs = 300 and n = 200 in
  let wins = Array.make runs 0. in
  for run = 0 to runs - 1 do
    let w = ref 0 in
    for _ = 1 to n do
      if Ll.draw_client t r = Some `Us then incr w
    done;
    wins.(run) <- float_of_int !w
  done;
  let p = 0.3 in
  let mean = Core.Descriptive.mean wins in
  let var = Core.Descriptive.variance wins in
  checkb
    (Printf.sprintf "mean %f near np=%f" mean (float_of_int n *. p))
    true
    (abs_float (mean -. (float_of_int n *. p)) < 3.);
  checkb
    (Printf.sprintf "variance %f near np(1-p)=%f" var (float_of_int n *. p *. (1. -. p)))
    true
    (abs_float (var -. (float_of_int n *. p *. (1. -. p))) < 10.)

let test_geometric_first_win () =
  (* E[lotteries until first win] = 1/p *)
  let t = Ll.create () in
  ignore (Ll.add t ~client:`Us ~weight:1.);
  ignore (Ll.add t ~client:`Them ~weight:4.);
  let r = rng () in
  let trials = 3_000 in
  let total = ref 0 in
  for _ = 1 to trials do
    let n = ref 1 in
    while Ll.draw_client t r <> Some `Us do
      incr n
    done;
    total := !total + !n
  done;
  let avg = float_of_int !total /. float_of_int trials in
  checkb (Printf.sprintf "mean first win %f near 5" avg) true (abs_float (avg -. 5.) < 0.35)

let () =
  Alcotest.run "draw"
    [
      ( "list",
        [
          Alcotest.test_case "figure 1 walkthrough" `Quick test_figure1_walkthrough;
          Alcotest.test_case "move-to-front relocation" `Quick test_move_to_front;
          Alcotest.test_case "move-to-front shortens searches" `Quick
            test_mtf_shortens_searches;
          Alcotest.test_case "sorted order shortens searches" `Slow
            test_sorted_order_shortens_searches;
          Alcotest.test_case "add/remove/set_weight" `Quick test_list_add_remove_weights;
          Alcotest.test_case "empty and all-zero" `Quick test_list_empty_and_zero;
          Alcotest.test_case "zero weight never wins" `Quick test_zero_weight_never_wins;
          Alcotest.test_case "ticket-proportional (chi-square)" `Slow
            test_list_distribution;
          Alcotest.test_case "total exact after many mutations" `Quick
            test_list_total_stays_exact_over_many_mutations;
        ] );
      ( "tree",
        [
          Alcotest.test_case "prefix-sum selection" `Quick test_tree_matches_prefix_sums;
          Alcotest.test_case "update/remove/slot reuse/grow" `Quick
            test_tree_update_remove_reuse;
          Alcotest.test_case "ticket-proportional (chi-square)" `Slow
            test_tree_distribution;
          Alcotest.test_case "agrees with the list lottery" `Quick test_tree_and_list_agree;
          Alcotest.test_case "stable under float drift" `Quick test_tree_drift_stability;
        ] );
      ( "inverse",
        [
          Alcotest.test_case "paper formula probabilities" `Quick
            test_inverse_probabilities;
          Alcotest.test_case "distribution (chi-square)" `Slow test_inverse_distribution;
          Alcotest.test_case "fewer than two clients" `Quick test_inverse_small_cases;
          Alcotest.test_case "occupancy weighting" `Quick test_inverse_weighted_extra;
          Alcotest.test_case "set_tickets" `Quick test_inverse_set_tickets;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "node rounding & validation" `Quick
            test_distributed_rounds_up_nodes;
          Alcotest.test_case "system-wide distribution" `Slow
            test_distributed_distribution;
          Alcotest.test_case "O(log n) message bounds" `Quick
            test_distributed_message_bounds;
          Alcotest.test_case "remove and update" `Quick test_distributed_remove_and_update;
        ] );
      ( "unified-draw",
        [
          Alcotest.test_case "wrapper ops on every backend" `Quick
            test_draw_wrapper_ops;
          Alcotest.test_case "foreign handle rejected" `Quick
            test_draw_foreign_handle_rejected;
          Alcotest.test_case "backends agree on every winning value" `Quick
            test_draw_backends_agree;
          Alcotest.test_case "ticket-proportional on every backend (chi-square)"
            `Slow test_draw_backend_distributions;
          Alcotest.test_case "first-class backend modules" `Quick
            test_draw_first_class_backends;
        ] );
      ( "flat-backends",
        [
          Alcotest.test_case "draw_slot matches draw_client" `Quick
            test_draw_slot_matches_draw_client;
          Alcotest.test_case "draw_k matches sequential draws" `Quick
            test_draw_k_matches_sequential;
          Alcotest.test_case "draw_k empty/zero/capped" `Quick
            test_draw_k_empty_and_small;
          Alcotest.test_case "alias distribution after churn (chi-square)" `Slow
            test_alias_distribution_after_churn;
          Alcotest.test_case "cumul arena bookkeeping" `Quick
            test_cumul_lazy_rebuild_bookkeeping;
        ] );
      ( "section-2-math",
        [
          Alcotest.test_case "binomial win moments" `Slow test_binomial_moments;
          Alcotest.test_case "geometric first-win expectation" `Slow
            test_geometric_first_win;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_tree_total_is_sum;
            qcheck_tree_draw_in_range;
            qcheck_tree_matches_reference_model;
            qcheck_flat_backends_match_tree;
          ] );
    ]
