(* Currency protection: ownership, grants, and guarded funding operations
   (paper §4.7's access-control proposal). *)

module F = Core.Funding
module Acl = Core.Acl

let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let ok = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected denial: %s" m

let denied name = function
  | Ok _ -> Alcotest.failf "%s: expected denial" name
  | Error m -> m

let setup () =
  let sys = F.create_system () in
  let acl = Acl.create sys in
  let alice = ok (Acl.make_currency acl ~as_:"alice" ~name:"alice") in
  (sys, acl, alice)

let test_ownership () =
  let _sys, acl, alice = setup () in
  checks "creator owns" "alice" (Acl.owner acl alice);
  checks "base owned by root" "root" (Acl.owner acl (F.base (Acl.system acl)));
  checkb "owner holds every perm" true
    (Acl.allowed acl "alice" alice Issue
    && Acl.allowed acl "alice" alice Fund
    && Acl.allowed acl "alice" alice Manage);
  checkb "stranger holds none" false (Acl.allowed acl "mallory" alice Issue)

let test_issue_guard () =
  let _sys, acl, alice = setup () in
  (* the paper's inflation control: only permitted principals may create
     tickets in a currency *)
  let t = ok (Acl.issue acl ~as_:"alice" ~currency:alice ~amount:100) in
  checkb "ticket created" true (F.amount t = 100);
  let m = denied "mallory issue" (Acl.issue acl ~as_:"mallory" ~currency:alice ~amount:1_000_000) in
  checkb "denial names the perm" true
    (Core.Corpus.count_substring ~haystack:m ~needle:"issue" > 0);
  (* grant and retry *)
  ok (Acl.grant acl ~as_:"alice" alice "bob" Issue);
  let _t2 = ok (Acl.issue acl ~as_:"bob" ~currency:alice ~amount:10) in
  ok (Acl.revoke_perm acl ~as_:"alice" alice "bob" Issue);
  ignore (denied "revoked" (Acl.issue acl ~as_:"bob" ~currency:alice ~amount:10))

let test_fund_guard () =
  let sys, acl, alice = setup () in
  let bob = ok (Acl.make_currency acl ~as_:"bob" ~name:"bob") in
  let t = ok (Acl.issue acl ~as_:"alice" ~currency:alice ~amount:50) in
  (* alice may not push funding into bob's currency without Fund *)
  ignore (denied "no fund perm" (Acl.fund acl ~as_:"alice" ~ticket:t ~currency:bob));
  ok (Acl.grant acl ~as_:"bob" bob "alice" Fund);
  ok (Acl.fund acl ~as_:"alice" ~ticket:t ~currency:bob);
  checkb "edge exists" true (List.length (F.backing_tickets sys bob) = 1);
  (* and mallory may not detach it *)
  ignore (denied "no unfund perm" (Acl.unfund acl ~as_:"mallory" t));
  ok (Acl.unfund acl ~as_:"alice" t)

let test_set_amount_and_destroy_guard () =
  let _sys, acl, alice = setup () in
  let t = ok (Acl.issue acl ~as_:"alice" ~currency:alice ~amount:5) in
  ignore (denied "inflate denied" (Acl.set_amount acl ~as_:"mallory" t 500));
  ok (Acl.set_amount acl ~as_:"alice" t 500);
  checkb "amount changed" true (F.amount t = 500);
  ignore (denied "destroy denied" (Acl.destroy_ticket acl ~as_:"mallory" t));
  ok (Acl.destroy_ticket acl ~as_:"alice" t)

let test_manage_guard () =
  let _sys, acl, alice = setup () in
  ignore (denied "chown denied" (Acl.chown acl ~as_:"mallory" alice "mallory"));
  ok (Acl.chown acl ~as_:"alice" alice "carol");
  checks "new owner" "carol" (Acl.owner acl alice);
  checkb "old owner lost rights" false (Acl.allowed acl "alice" alice Issue);
  ignore (denied "grant by non-manager" (Acl.grant acl ~as_:"alice" alice "alice" Issue));
  (* removal requires manage and an empty currency *)
  ignore (denied "remove denied" (Acl.remove_currency acl ~as_:"alice" alice));
  ok (Acl.remove_currency acl ~as_:"carol" alice);
  checkb "gone" true (F.find_currency (Acl.system acl) "alice" = None)

let test_grants_listing () =
  let _sys, acl, alice = setup () in
  ok (Acl.grant acl ~as_:"alice" alice "bob" Issue);
  ok (Acl.grant acl ~as_:"alice" alice "carol" Fund);
  let gs = Acl.grants acl alice in
  checkb "two grants" true (List.length gs = 2);
  checkb "bob listed" true (List.mem ("bob", Acl.Issue) gs);
  (* duplicate grants collapse *)
  ok (Acl.grant acl ~as_:"alice" alice "bob" Issue);
  checkb "no duplicate" true (List.length (Acl.grants acl alice) = 2)

let test_duplicate_currency () =
  let _sys, acl, _alice = setup () in
  match Acl.make_currency acl ~as_:"eve" ~name:"alice" with
  | Ok _ -> Alcotest.fail "duplicate accepted"
  | Error m ->
      checkb "explains" true (Core.Corpus.count_substring ~haystack:m ~needle:"exists" > 0)

let () =
  Alcotest.run "acl"
    [
      ( "protection",
        [
          Alcotest.test_case "ownership basics" `Quick test_ownership;
          Alcotest.test_case "issue (inflation) guard" `Quick test_issue_guard;
          Alcotest.test_case "fund guard" `Quick test_fund_guard;
          Alcotest.test_case "set_amount/destroy guard" `Quick
            test_set_amount_and_destroy_guard;
          Alcotest.test_case "manage guard & chown" `Quick test_manage_guard;
          Alcotest.test_case "grants listing" `Quick test_grants_listing;
          Alcotest.test_case "duplicate currency" `Quick test_duplicate_currency;
        ] );
    ]
