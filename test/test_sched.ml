(* Scheduler policies: lottery (list & tree) proportional share, transfers,
   compensation, mutex lotteries, cleanup; and the baselines (round-robin,
   fixed-priority with inheritance, decay-usage, stride). *)

open Core

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let close ?(tol = 0.15) msg expected actual =
  if abs_float (actual -. expected) > tol *. expected then
    Alcotest.failf "%s: expected ~%.3f (±%.0f%%), got %.3f" msg expected
      (100. *. tol) actual

let lottery_kernel ?mode ?use_compensation ~seed () =
  let rng = Rng.create ~seed () in
  let ls = Lottery_sched.create ?mode ?use_compensation ~rng () in
  (Kernel.create ~sched:(Lottery_sched.sched ls) (), ls)

let spin k name =
  Kernel.spawn k ~name (fun () ->
      while true do
        Api.compute (Time.ms 1)
      done)

(* --- lottery: proportional share -------------------------------------------- *)

let proportional_share mode () =
  let k, ls = lottery_kernel ~mode ~seed:101 () in
  let base = Lottery_sched.base_currency ls in
  let mk name amount =
    let th = spin k name in
    ignore (Lottery_sched.fund_thread ls th ~amount ~from:base);
    th
  in
  let a = mk "a" 300 and b = mk "b" 200 and c = mk "c" 100 in
  ignore (Kernel.run k ~until:(Time.seconds 120));
  let total = Kernel.cpu_time a + Kernel.cpu_time b + Kernel.cpu_time c in
  checki "fully utilized" (Time.seconds 120) total;
  close "a share" 0.5 (float_of_int (Kernel.cpu_time a) /. float_of_int total);
  close "b share" (1. /. 3.) (float_of_int (Kernel.cpu_time b) /. float_of_int total);
  close ~tol:0.25 "c share" (1. /. 6.) (float_of_int (Kernel.cpu_time c) /. float_of_int total)

let test_list_tree_same_distribution () =
  (* both draw structures must yield statistically identical shares *)
  let share mode =
    let k, ls = lottery_kernel ~mode ~seed:500 () in
    let base = Lottery_sched.base_currency ls in
    let a = spin k "a" and b = spin k "b" in
    ignore (Lottery_sched.fund_thread ls a ~amount:700 ~from:base);
    ignore (Lottery_sched.fund_thread ls b ~amount:300 ~from:base);
    ignore (Kernel.run k ~until:(Time.seconds 100));
    float_of_int (Kernel.cpu_time a)
    /. float_of_int (Kernel.cpu_time a + Kernel.cpu_time b)
  in
  let l = share Lottery_sched.List_mode and t = share Lottery_sched.Tree_mode in
  close ~tol:0.08 "list near 0.7" 0.7 l;
  close ~tol:0.08 "tree near 0.7" 0.7 t;
  close ~tol:0.08 "cumul near 0.7" 0.7 (share Lottery_sched.Cumul_mode);
  close ~tol:0.08 "alias near 0.7" 0.7 (share Lottery_sched.Alias_mode)

let test_cumul_tree_identical_schedule () =
  (* Cumul shares Tree's slot arena and winning-value arithmetic, so with
     the same seed the two modes must produce the exact same schedule —
     byte-identical per-thread CPU time, not just the same distribution. *)
  let times mode =
    let k, ls = lottery_kernel ~mode ~seed:500 () in
    let base = Lottery_sched.base_currency ls in
    let a = spin k "a" and b = spin k "b" in
    ignore (Lottery_sched.fund_thread ls a ~amount:700 ~from:base);
    ignore (Lottery_sched.fund_thread ls b ~amount:300 ~from:base);
    ignore (Kernel.run k ~until:(Time.seconds 100));
    (Kernel.cpu_time a, Kernel.cpu_time b)
  in
  let ta, tb = times Lottery_sched.Tree_mode in
  let ca, cb = times Lottery_sched.Cumul_mode in
  checki "a identical" ta ca;
  checki "b identical" tb cb

let test_unfunded_fallback () =
  (* threads without tickets may only run via the round-robin fallback *)
  let k, ls = lottery_kernel ~seed:7 () in
  let a = spin k "funded" in
  ignore (Lottery_sched.fund_thread ls a ~amount:100 ~from:(Lottery_sched.base_currency ls));
  let z = spin k "zero" in
  ignore (Kernel.run k ~until:(Time.seconds 10));
  checki "unfunded starves while funded work exists" 0 (Kernel.cpu_time z);
  checki "funded takes everything" (Time.seconds 10) (Kernel.cpu_time a)

let test_fallback_runs_when_nothing_funded () =
  let k, _ls = lottery_kernel ~seed:8 () in
  let a = spin k "a" and b = spin k "b" in
  ignore (Kernel.run k ~until:(Time.seconds 2));
  (* round-robin fallback: both make equal progress *)
  checki "equal split" (Kernel.cpu_time a) (Kernel.cpu_time b)

let test_starvation_free_with_tickets () =
  (* paper §2: any client with nonzero tickets eventually wins *)
  let k, ls = lottery_kernel ~seed:9 () in
  let base = Lottery_sched.base_currency ls in
  let big = spin k "big" and tiny = spin k "tiny" in
  ignore (Lottery_sched.fund_thread ls big ~amount:10_000 ~from:base);
  ignore (Lottery_sched.fund_thread ls tiny ~amount:10 ~from:base);
  ignore (Kernel.run k ~until:(Time.seconds 200));
  checkb "tiny ran" true (Kernel.cpu_time tiny > 0)

let test_dynamic_inflation_shifts_share () =
  let k, ls = lottery_kernel ~seed:10 () in
  let base = Lottery_sched.base_currency ls in
  let a = spin k "a" and b = spin k "b" in
  let ta = Lottery_sched.fund_thread ls a ~amount:100 ~from:base in
  ignore (Lottery_sched.fund_thread ls b ~amount:100 ~from:base);
  ignore (Kernel.run k ~until:(Time.seconds 50));
  let a1 = Kernel.cpu_time a and b1 = Kernel.cpu_time b in
  close ~tol:0.2 "initially equal" 1. (float_of_int a1 /. float_of_int b1);
  Lottery_sched.set_ticket_amount ls ta 300;
  ignore (Kernel.run k ~until:(Time.seconds 150));
  let a2 = Kernel.cpu_time a - a1 and b2 = Kernel.cpu_time b - b1 in
  close ~tol:0.2 "3:1 after inflation" 3. (float_of_int a2 /. float_of_int b2)

let test_currency_isolation () =
  (* shares inside one currency cannot affect another currency's total *)
  let k, ls = lottery_kernel ~seed:11 () in
  let base = Lottery_sched.base_currency ls in
  let u1 = Lottery_sched.make_currency ls "u1" in
  let u2 = Lottery_sched.make_currency ls "u2" in
  ignore (Lottery_sched.fund_currency ls ~target:u1 ~amount:100 ~from:base);
  ignore (Lottery_sched.fund_currency ls ~target:u2 ~amount:100 ~from:base);
  let a = spin k "u1-only" in
  ignore (Lottery_sched.fund_thread ls a ~amount:10 ~from:u1);
  let b = spin k "u2-1" and c = spin k "u2-2" in
  ignore (Lottery_sched.fund_thread ls b ~amount:10 ~from:u2);
  ignore (Lottery_sched.fund_thread ls c ~amount:90 ~from:u2);
  ignore (Kernel.run k ~until:(Time.seconds 100));
  let total = Kernel.cpu_time a + Kernel.cpu_time b + Kernel.cpu_time c in
  close "u1 half despite one thread" 0.5
    (float_of_int (Kernel.cpu_time a) /. float_of_int total);
  close ~tol:0.3 "u2 split 1:9 internally" 9.
    (float_of_int (Kernel.cpu_time c) /. float_of_int (Kernel.cpu_time b))

let test_thread_value_and_detach_cleanup () =
  let k, ls = lottery_kernel ~seed:12 () in
  let base = Lottery_sched.base_currency ls in
  let short =
    Kernel.spawn k ~name:"short" (fun () -> Api.compute (Time.seconds 1))
  in
  ignore (Lottery_sched.fund_thread ls short ~amount:250 ~from:base);
  check (Alcotest.float 1e-6) "thread value equals funding" 250.
    (Lottery_sched.thread_value ls short);
  let long = spin k "long" in
  ignore (Lottery_sched.fund_thread ls long ~amount:250 ~from:base);
  ignore (Kernel.run k ~until:(Time.seconds 10));
  (* exited thread's currency and tickets must be gone *)
  Funding.check_invariants (Lottery_sched.funding ls);
  checkb "short's currency removed" true
    (Funding.find_currency (Lottery_sched.funding ls) "thread:0:short" = None);
  checki "long got the rest" (Time.seconds 10 - Time.seconds 1) (Kernel.cpu_time long)

(* --- lottery: transfers ------------------------------------------------------ *)

let test_rpc_transfer_funds_server () =
  (* an unfunded server must run at its client's rate while serving it; a
     second funded spinner competes for the remaining share *)
  let k, ls = lottery_kernel ~seed:13 () in
  let base = Lottery_sched.base_currency ls in
  let port = Kernel.create_port k ~name:"svc" in
  ignore
    (Kernel.spawn k ~name:"server" (fun () ->
         while true do
           let m = Api.receive port in
           Api.compute (Time.ms 400);
           Api.reply m ""
         done));
  (* let the (zero-funded) server park in receive before contenders exist,
     as a real server would initialize before its clients *)
  ignore (Kernel.run k ~until:(Time.us 1));
  let completions = ref 0 in
  let client =
    Kernel.spawn k ~name:"client" (fun () ->
        while true do
          ignore (Api.rpc port "x");
          incr completions
        done)
  in
  ignore (Lottery_sched.fund_thread ls client ~amount:300 ~from:base);
  let spinner = spin k "spinner" in
  ignore (Lottery_sched.fund_thread ls spinner ~amount:100 ~from:base);
  ignore (Kernel.run k ~until:(Time.seconds 100));
  (* client's 3/4 share flows to the server: ~75s of service time /400ms *)
  close ~tol:0.2 "server completes at client rate" 187.
    (float_of_int !completions);
  close ~tol:0.2 "spinner keeps its quarter" (float_of_int (Time.seconds 25))
    (float_of_int (Kernel.cpu_time spinner))

let test_transfer_chain_transitive () =
  (* client -> front server -> back server: the back server must inherit the
     client's funding through the chain while everyone else competes *)
  let k, ls = lottery_kernel ~seed:14 () in
  let base = Lottery_sched.base_currency ls in
  let front = Kernel.create_port k ~name:"front" in
  let back = Kernel.create_port k ~name:"back" in
  ignore
    (Kernel.spawn k ~name:"backend" (fun () ->
         while true do
           let m = Api.receive back in
           Api.compute (Time.ms 300);
           Api.reply m ""
         done));
  ignore
    (Kernel.spawn k ~name:"frontend" (fun () ->
         while true do
           let m = Api.receive front in
           let r = Api.rpc back m.payload in
           Api.reply m r
         done));
  ignore (Kernel.run k ~until:(Time.us 1));
  let completions = ref 0 in
  let client =
    Kernel.spawn k ~name:"client" (fun () ->
        while true do
          ignore (Api.rpc front "x");
          incr completions
        done)
  in
  ignore (Lottery_sched.fund_thread ls client ~amount:300 ~from:base);
  let spinner = spin k "competitor" in
  ignore (Lottery_sched.fund_thread ls spinner ~amount:100 ~from:base);
  ignore (Kernel.run k ~until:(Time.seconds 60));
  (* back server serves at the client's 3/4 share: 45s / 300ms = 150 *)
  close ~tol:0.25 "chain delivers client funding to the backend" 150.
    (float_of_int !completions)

let test_divided_transfer_splits_equally () =
  (* a client scattering to two unfunded servers funds each with half its
     value: both servers then tie a spinner holding exactly half the
     client's tickets *)
  let k, ls = lottery_kernel ~seed:21 () in
  let base = Lottery_sched.base_currency ls in
  let mk_server name =
    let port = Kernel.create_port k ~name in
    let th =
      Kernel.spawn k ~name:(name ^ "-srv") (fun () ->
          let m = Api.receive port in
          Api.compute (Time.seconds 10);
          Api.reply m "")
    in
    (port, th)
  in
  let p1, s1 = mk_server "s1" in
  let p2, s2 = mk_server "s2" in
  ignore (Kernel.run k ~until:(Time.us 1));
  let client =
    Kernel.spawn k ~name:"client" (fun () ->
        ignore (Api.rpc_many [ (p1, "x"); (p2, "x") ]))
  in
  ignore (Lottery_sched.fund_thread ls client ~amount:400 ~from:base);
  let spinner = spin k "spinner" in
  ignore (Lottery_sched.fund_thread ls spinner ~amount:200 ~from:base);
  ignore (Kernel.run k ~until:(Time.seconds 15));
  (* weights while all run: 200 / 200 / 200 -> equal thirds *)
  close ~tol:0.15 "server1 third" (float_of_int (Time.seconds 5))
    (float_of_int (Kernel.cpu_time s1));
  close ~tol:0.15 "server2 third" (float_of_int (Time.seconds 5))
    (float_of_int (Kernel.cpu_time s2));
  close ~tol:0.15 "spinner third" (float_of_int (Time.seconds 5))
    (float_of_int (Kernel.cpu_time spinner))

let test_divided_transfer_reconcentrates () =
  (* when one server of a divided transfer replies, its share flows back to
     the stragglers: the slow server speeds up after the fast one finishes *)
  let k, ls = lottery_kernel ~seed:22 () in
  let base = Lottery_sched.base_currency ls in
  let mk_server name work =
    let port = Kernel.create_port k ~name in
    ignore
      (Kernel.spawn k ~name:(name ^ "-srv") (fun () ->
           let m = Api.receive port in
           Api.compute work;
           Api.reply m ""));
    port
  in
  let fast = mk_server "fast" (Time.seconds 5) in
  let slow = mk_server "slow" (Time.seconds 15) in
  ignore (Kernel.run k ~until:(Time.us 1));
  let finished = ref (-1) in
  let client =
    Kernel.spawn k ~name:"client" (fun () ->
        ignore (Api.rpc_many [ (fast, "x"); (slow, "x") ]);
        finished := Api.now ())
  in
  ignore (Lottery_sched.fund_thread ls client ~amount:400 ~from:base);
  let spinner = spin k "spinner" in
  ignore (Lottery_sched.fund_thread ls spinner ~amount:200 ~from:base);
  ignore (Kernel.run k ~until:(Time.seconds 60));
  (* phase 1 (thirds): fast done ~15s with slow at ~5s done; phase 2: slow
     at 400 vs 200 -> 2/3 share, 10s left -> ~15s more. Total ~30s. A
     static split would take ~45s. *)
  checkb
    (Printf.sprintf "scatter completed at %.1fs (static split ~45s)"
       (Time.to_seconds !finished))
    true
    (!finished > 0 && !finished < Time.seconds 37)

(* --- lottery: compensation ----------------------------------------------------- *)

let test_compensation_restores_share () =
  let run use_compensation =
    let k, ls = lottery_kernel ~seed:15 ~use_compensation () in
    let base = Lottery_sched.base_currency ls in
    let hog =
      Kernel.spawn k ~name:"hog" (fun () ->
          while true do
            Api.compute (Time.ms 100)
          done)
    in
    let nibbler =
      Kernel.spawn k ~name:"nibbler" (fun () ->
          while true do
            Api.compute (Time.ms 20);
            Api.yield ()
          done)
    in
    ignore (Lottery_sched.fund_thread ls hog ~amount:100 ~from:base);
    ignore (Lottery_sched.fund_thread ls nibbler ~amount:100 ~from:base);
    ignore (Kernel.run k ~until:(Time.seconds 100));
    float_of_int (Kernel.cpu_time hog) /. float_of_int (Kernel.cpu_time nibbler)
  in
  close ~tol:0.2 "with compensation 1:1" 1. (run true);
  close ~tol:0.2 "without compensation 5:1" 5. (run false)

(* --- lottery: mutex ---------------------------------------------------------------- *)

let test_lottery_mutex_prefers_funded_waiters () =
  let k, ls = lottery_kernel ~seed:16 () in
  let base = Lottery_sched.base_currency ls in
  let m = Kernel.create_mutex k ~policy:Types.Lottery_wake "m" in
  let mk name amount =
    let c = Mutex_workload.spawn_contender k ~mutex:m ~name ~hold:(Time.ms 50) ~work:(Time.ms 50) () in
    ignore (Lottery_sched.fund_thread ls (Mutex_workload.thread c) ~amount ~from:base);
    c
  in
  let rich = Array.init 3 (fun i -> mk (Printf.sprintf "r%d" i) 300) in
  let poor = Array.init 3 (fun i -> mk (Printf.sprintf "p%d" i) 100) in
  ignore (Kernel.run k ~until:(Time.seconds 120));
  let acq g = Array.fold_left (fun acc c -> acc + Mutex_workload.acquisitions c) 0 g in
  let wait g =
    Descriptive.mean
      (Array.concat (Array.to_list (Array.map Mutex_workload.waiting_times g)))
  in
  checkb "rich acquire more" true (acq rich > acq poor);
  checkb "rich wait less" true (wait rich < wait poor)

let test_lottery_semaphore_prefers_funded () =
  (* a lottery-wake semaphore guarding one permit behaves like the §6.1
     mutex: funded waiters get it more often *)
  let k, ls = lottery_kernel ~seed:19 () in
  let base = Lottery_sched.base_currency ls in
  let sm = Kernel.create_semaphore k ~policy:Types.Lottery_wake ~initial:1 "permit" in
  let acquisitions = Array.make 2 0 in
  let mk i amount =
    let th =
      Kernel.spawn k ~name:(Printf.sprintf "g%d" i) (fun () ->
          while true do
            Api.sem_wait sm;
            acquisitions.(i) <- acquisitions.(i) + 1;
            Api.compute (Time.ms 50);
            Api.sem_post sm;
            Api.compute (Time.ms 50)
          done)
    in
    ignore (Lottery_sched.fund_thread ls th ~amount ~from:base)
  in
  (* two rich threads and two poor threads, bucketed by group *)
  mk 0 300;
  mk 0 300;
  mk 1 100;
  mk 1 100;
  ignore (Kernel.run k ~until:(Time.seconds 120));
  checkb
    (Printf.sprintf "funded group acquires more (%d vs %d)" acquisitions.(0)
       acquisitions.(1))
    true
    (acquisitions.(0) > acquisitions.(1))

let test_lottery_condition_wakes_funded_first () =
  (* a lottery-wake condition's signal picks waiters by funding *)
  let k, ls = lottery_kernel ~seed:20 () in
  let base = Lottery_sched.base_currency ls in
  let m = Kernel.create_mutex k "m" in
  let c = Kernel.create_condition k ~policy:Types.Lottery_wake "c" in
  let first_wakes = Array.make 2 0 in
  let mk i amount =
    let th =
      Kernel.spawn k ~name:(Printf.sprintf "w%d" i) (fun () ->
          while true do
            Api.lock m;
            Api.wait c m;
            first_wakes.(i) <- first_wakes.(i) + 1;
            Api.unlock m;
            Api.compute (Time.ms 1)
          done)
    in
    ignore (Lottery_sched.fund_thread ls th ~amount ~from:base)
  in
  mk 0 900;
  mk 1 100;
  ignore
    (Kernel.spawn k ~name:"signaller" (fun () ->
         while true do
           Api.sleep (Time.ms 20);
           (* one signal per round: the lottery picks who proceeds *)
           Api.lock m;
           Api.signal c;
           Api.unlock m
         done));
  ignore (Kernel.run k ~until:(Time.seconds 120));
  checkb
    (Printf.sprintf "funded waiter signalled more (%d vs %d)" first_wakes.(0)
       first_wakes.(1))
    true
    (first_wakes.(0) > 2 * first_wakes.(1))

(* --- baselines ------------------------------------------------------------------------ *)

let test_round_robin_equal_split () =
  let rr = Round_robin.create () in
  let k = Kernel.create ~sched:(Round_robin.sched rr) () in
  let ths = Array.init 4 (fun i -> spin k (Printf.sprintf "t%d" i)) in
  ignore (Kernel.run k ~until:(Time.seconds 8));
  Array.iter (fun th -> checki "equal share" (Time.seconds 2) (Kernel.cpu_time th)) ths;
  checkb "selections counted" true (Round_robin.selections rr >= 80)

let test_fixed_priority_strictness () =
  let fp = Fixed_priority.create () in
  let k = Kernel.create ~sched:(Fixed_priority.sched fp) () in
  let hi = spin k "hi" and lo = spin k "lo" in
  Fixed_priority.set_priority fp hi 10;
  Fixed_priority.set_priority fp lo 1;
  ignore (Kernel.run k ~until:(Time.seconds 5));
  checki "low priority starves" 0 (Kernel.cpu_time lo);
  checki "high priority gets all" (Time.seconds 5) (Kernel.cpu_time hi)

let test_priority_inheritance_solves_inversion () =
  (* classic inversion: low holds a lock high needs, medium spins. With
     inheritance the low thread is boosted and high proceeds; without it,
     medium starves low forever and high never runs. *)
  let run inheritance =
    let fp = Fixed_priority.create ~inheritance () in
    let k = Kernel.create ~sched:(Fixed_priority.sched fp) () in
    let m = Kernel.create_mutex k "shared" in
    let high_done = ref (-1) in
    let low =
      Kernel.spawn k ~name:"low" (fun () ->
          Api.lock m;
          Api.compute (Time.seconds 2);
          Api.unlock m;
          while true do
            Api.compute (Time.ms 10)
          done)
    in
    let medium =
      Kernel.spawn k ~name:"medium" (fun () ->
          Api.sleep (Time.ms 50);
          while true do
            Api.compute (Time.ms 10)
          done)
    in
    let high =
      Kernel.spawn k ~name:"high" (fun () ->
          Api.sleep (Time.ms 100);
          Api.lock m;
          high_done := Api.now ();
          Api.unlock m;
          while true do
            Api.compute (Time.ms 10)
          done)
    in
    Fixed_priority.set_priority fp low 1;
    Fixed_priority.set_priority fp medium 5;
    Fixed_priority.set_priority fp high 10;
    ignore (Kernel.run k ~until:(Time.seconds 10));
    !high_done
  in
  checki "without inheritance: inversion blocks high forever" (-1) (run false);
  let t = run true in
  checkb (Printf.sprintf "with inheritance high acquires (t=%d)" t) true
    (t >= 0 && t <= Time.ms 2200)

let test_decay_usage_equalizes () =
  let du = Decay_usage.create () in
  let k = Kernel.create ~sched:(Decay_usage.sched du) () in
  let a = spin k "a" and b = spin k "b" and c = spin k "c" in
  ignore (Kernel.run k ~until:(Time.seconds 9));
  close ~tol:0.05 "a third each" (float_of_int (Time.seconds 3))
    (float_of_int (Kernel.cpu_time a));
  close ~tol:0.05 "b third" (float_of_int (Time.seconds 3))
    (float_of_int (Kernel.cpu_time b));
  ignore c

let test_decay_usage_favors_fresh_threads () =
  let du = Decay_usage.create () in
  let k = Kernel.create ~sched:(Decay_usage.sched du) () in
  let hog = spin k "hog" in
  ignore
    (Kernel.spawn k ~name:"sleeper" (fun () ->
         Api.sleep (Time.seconds 5);
         let t0 = Api.now () in
         Api.compute (Time.ms 100);
         (* must get the CPU immediately: its decayed usage is zero *)
         if Api.now () - t0 > Time.ms 200 then failwith "starved"));
  ignore (Kernel.run k ~until:(Time.seconds 10));
  checkb "sleeper not starved" true (Kernel.failures k = []);
  checkb "hog ran" true (Kernel.cpu_time hog > 0)

let test_stride_exact_proportionality () =
  let st = Stride_sched.create () in
  let k = Kernel.create ~sched:(Stride_sched.sched st) () in
  let a = spin k "a" and b = spin k "b" and c = spin k "c" in
  Stride_sched.set_tickets st a 3;
  Stride_sched.set_tickets st b 2;
  Stride_sched.set_tickets st c 1;
  ignore (Kernel.run k ~until:(Time.seconds 60));
  (* stride is deterministic: error bounded by one quantum, far tighter
     than the lottery's statistical bounds *)
  let q = float_of_int (Time.ms 100) in
  let expect share th =
    let got = float_of_int (Kernel.cpu_time th) in
    let want = share *. float_of_int (Time.seconds 60) in
    if abs_float (got -. want) > 2. *. q then
      Alcotest.failf "stride share off: want %.0f got %.0f" want got
  in
  expect 0.5 a;
  expect (1. /. 3.) b;
  expect (1. /. 6.) c

let test_stride_ticket_change () =
  let st = Stride_sched.create () in
  let k = Kernel.create ~sched:(Stride_sched.sched st) () in
  let a = spin k "a" and b = spin k "b" in
  Stride_sched.set_tickets st a 1;
  Stride_sched.set_tickets st b 1;
  ignore (Kernel.run k ~until:(Time.seconds 10));
  let a1 = Kernel.cpu_time a in
  Stride_sched.set_tickets st a 4;
  ignore (Kernel.run k ~until:(Time.seconds 20));
  let a2 = Kernel.cpu_time a - a1 in
  close ~tol:0.1 "a takes 4/5 after change" (0.8 *. float_of_int (Time.seconds 10))
    (float_of_int a2);
  checki "tickets readback" 4 (Stride_sched.tickets st a)

let test_baseline_accessors () =
  let fp = Fixed_priority.create ~inheritance:true () in
  let k = Kernel.create ~sched:(Fixed_priority.sched fp) () in
  let a = spin k "a" in
  Fixed_priority.set_priority fp a 7;
  checki "priority readback" 7 (Fixed_priority.priority fp a);
  checki "effective = base without donors" 7 (Fixed_priority.effective_priority fp a);
  let du = Decay_usage.create ~half_life:(Time.seconds 1) () in
  let k2 = Kernel.create ~sched:(Decay_usage.sched du) () in
  let b = spin k2 "b" in
  ignore (Kernel.run k2 ~until:(Time.seconds 1));
  checkb "usage accumulates" true (Decay_usage.usage du b > 0.);
  let st = Stride_sched.create () in
  let k3 = Kernel.create ~sched:(Stride_sched.sched st) () in
  let c = spin k3 "c" in
  Stride_sched.set_tickets st c 5;
  ignore (Kernel.run k3 ~until:(Time.seconds 1));
  checkb "pass advances" true (Stride_sched.pass st c > 0.);
  checkb "zero tickets rejected" true
    (match Stride_sched.set_tickets st c 0 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_lottery_introspection () =
  let k, ls = lottery_kernel ~seed:17 () in
  let a = spin k "a" in
  ignore (Lottery_sched.fund_thread ls a ~amount:10 ~from:(Lottery_sched.base_currency ls));
  checki "one runnable" 1 (Lottery_sched.runnable_count ls);
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checkb "draws counted" true (Lottery_sched.draws ls >= 10);
  checkb "list comparisons exposed" true (Lottery_sched.list_comparisons ls <> None);
  let _, ls_tree = lottery_kernel ~mode:Lottery_sched.Tree_mode ~seed:18 () in
  checkb "tree mode has no list stats" true
    (Lottery_sched.list_comparisons ls_tree = None)

(* Incremental valuation in the scheduler: with N runnable threads, blocking
   and waking one of them must never trigger a full weight refresh, and each
   block/wake cycle must cost exactly one scoped per-thread weight update —
   independent of N. Drives the sched callbacks directly so nothing else
   perturbs the funding graph between selects. *)
let test_scoped_updates_on_block_wake () =
  let rng = Rng.create ~seed:4242 () in
  let ls = Lottery_sched.create ~rng () in
  let s = Lottery_sched.sched ls in
  let mk id =
    {
      Types.id;
      tslot = id;
      name = Printf.sprintf "t%d" id;
      state = Types.Runnable;
      pending = Types.Exited;
      cpu = 0;
      compensate = 1.;
      donating_to = [];
      donors = [];
      owned = [];
      failure = None;
      joiners = [];
      servicing = [];
      created_at = 0;
      exited_at = None;
    }
  in
  let n = 50 in
  let threads = Array.init n mk in
  let base = Lottery_sched.base_currency ls in
  Array.iter
    (fun th ->
      s.Types.attach th;
      ignore (Lottery_sched.fund_thread ls th ~amount:100 ~from:base))
    threads;
  (* one settling select drains the creation-time funding events *)
  ignore (s.Types.select ~cpu:0);
  let fr0 = Lottery_sched.full_refreshes ls in
  let su0 = Lottery_sched.scoped_weight_updates ls in
  let cycles = 10 in
  for i = 1 to cycles do
    let th = threads.(i * 3 mod n) in
    s.Types.unready th;
    ignore (s.Types.select ~cpu:0);
    s.Types.ready th;
    ignore (s.Types.select ~cpu:0)
  done;
  checki "steady-state selects never fall back to a full refresh" fr0
    (Lottery_sched.full_refreshes ls);
  checki "each block/wake cycle costs exactly one scoped weight update"
    (su0 + cycles)
    (Lottery_sched.scoped_weight_updates ls)

(* Conservation under random workloads: whatever mix of computing,
   sleeping, yielding and exiting threads a scheduler faces, consumed CPU
   plus idle time must exactly cover the horizon, and the lottery's funding
   graph must stay structurally sound. *)
let qcheck_conservation =
  QCheck.Test.make ~name:"cpu + idle = horizon for every scheduler" ~count:40
    QCheck.(pair small_int (int_bound 3))
    (fun (seed, which) ->
      let sched =
        match which with
        | 0 ->
            let rng = Rng.create ~seed:(seed + 1) () in
            Lottery_sched.sched (Lottery_sched.create ~rng ())
        | 1 -> Round_robin.sched (Round_robin.create ())
        | 2 -> Decay_usage.sched (Decay_usage.create ())
        | _ -> Stride_sched.sched (Stride_sched.create ())
      in
      let k = Kernel.create ~quantum:(Time.ms 10) ~sched () in
      let wl = Rng.create ~algo:Splitmix64 ~seed () in
      let n = 2 + Rng.int_below wl 6 in
      let threads =
        List.init n (fun i ->
            Kernel.spawn k
              ~name:(Printf.sprintf "t%d" i)
              (fun () ->
                let steps = 1 + Rng.int_below wl 30 in
                for _ = 1 to steps do
                  match Rng.int_below wl 4 with
                  | 0 -> Api.compute (Time.ms (1 + Rng.int_below wl 50))
                  | 1 -> Api.sleep (Time.ms (Rng.int_below wl 30))
                  | 2 -> Api.yield ()
                  | _ -> Api.compute (Time.us (1 + Rng.int_below wl 500))
                done))
      in
      let horizon = Time.seconds 2 in
      let summary = Kernel.run k ~until:horizon in
      let cpu = List.fold_left (fun acc th -> acc + Kernel.cpu_time th) 0 threads in
      Kernel.failures k = [] && cpu + summary.idle_ticks = summary.ended_at)

let qcheck_lottery_invariants_under_load =
  QCheck.Test.make ~name:"funding invariants survive random rpc/mutex traffic"
    ~count:25 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed:(seed + 7) () in
      let ls = Lottery_sched.create ~rng () in
      let k = Kernel.create ~quantum:(Time.ms 10) ~sched:(Lottery_sched.sched ls) () in
      let wl = Rng.create ~algo:Splitmix64 ~seed () in
      let port = Kernel.create_port k ~name:"svc" in
      let m = Kernel.create_mutex k ~policy:Types.Lottery_wake "m" in
      ignore
        (Kernel.spawn k ~name:"server" (fun () ->
             while true do
               let msg = Api.receive port in
               Api.compute (Time.ms 3);
               Api.reply msg ""
             done));
      for i = 1 to 2 + Rng.int_below wl 4 do
        let th =
          Kernel.spawn k ~name:(Printf.sprintf "c%d" i) (fun () ->
              for _ = 1 to 20 do
                match Rng.int_below wl 3 with
                | 0 -> ignore (Api.rpc port "q")
                | 1 -> Api.with_lock m (fun () -> Api.compute (Time.ms 2))
                | _ -> Api.compute (Time.ms (1 + Rng.int_below wl 10))
              done)
        in
        ignore
          (Lottery_sched.fund_thread ls th
             ~amount:(10 + Rng.int_below wl 500)
             ~from:(Lottery_sched.base_currency ls))
      done;
      ignore (Kernel.run k ~until:(Time.seconds 30));
      Funding.check_invariants (Lottery_sched.funding ls);
      Kernel.failures k = [])

let () =
  Alcotest.run "sched"
    [
      ( "lottery-shares",
        [
          Alcotest.test_case "3:2:1 proportional (list)" `Quick
            (proportional_share Lottery_sched.List_mode);
          Alcotest.test_case "3:2:1 proportional (tree)" `Quick
            (proportional_share Lottery_sched.Tree_mode);
          Alcotest.test_case "3:2:1 proportional (cumul)" `Quick
            (proportional_share Lottery_sched.Cumul_mode);
          Alcotest.test_case "3:2:1 proportional (alias)" `Quick
            (proportional_share Lottery_sched.Alias_mode);
          Alcotest.test_case "list and tree agree" `Quick test_list_tree_same_distribution;
          Alcotest.test_case "cumul reproduces tree's exact schedule" `Quick
            test_cumul_tree_identical_schedule;
          Alcotest.test_case "zero tickets starve (by design)" `Quick
            test_unfunded_fallback;
          Alcotest.test_case "fallback when nothing funded" `Quick
            test_fallback_runs_when_nothing_funded;
          Alcotest.test_case "nonzero tickets never starve" `Quick
            test_starvation_free_with_tickets;
          Alcotest.test_case "inflation shifts share at runtime" `Quick
            test_dynamic_inflation_shifts_share;
          Alcotest.test_case "currencies isolate users" `Quick test_currency_isolation;
          Alcotest.test_case "thread value & detach cleanup" `Quick
            test_thread_value_and_detach_cleanup;
        ] );
      ( "lottery-transfers",
        [
          Alcotest.test_case "rpc transfer funds server" `Quick
            test_rpc_transfer_funds_server;
          Alcotest.test_case "transitive chains" `Quick test_transfer_chain_transitive;
          Alcotest.test_case "divided transfers split equally" `Quick
            test_divided_transfer_splits_equally;
          Alcotest.test_case "divided transfers re-concentrate" `Quick
            test_divided_transfer_reconcentrates;
        ] );
      ( "lottery-compensation",
        [
          Alcotest.test_case "restores 1:1 for fractional quanta" `Quick
            test_compensation_restores_share;
        ] );
      ( "lottery-mutex",
        [
          Alcotest.test_case "funded waiters preferred" `Quick
            test_lottery_mutex_prefers_funded_waiters;
          Alcotest.test_case "lottery semaphore prefers funded" `Quick
            test_lottery_semaphore_prefers_funded;
          Alcotest.test_case "lottery condition prefers funded" `Quick
            test_lottery_condition_wakes_funded_first;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "round-robin equal split" `Quick test_round_robin_equal_split;
          Alcotest.test_case "fixed priority strict" `Quick test_fixed_priority_strictness;
          Alcotest.test_case "priority inheritance fixes inversion" `Quick
            test_priority_inheritance_solves_inversion;
          Alcotest.test_case "decay-usage equalizes" `Quick test_decay_usage_equalizes;
          Alcotest.test_case "decay-usage favors fresh threads" `Quick
            test_decay_usage_favors_fresh_threads;
          Alcotest.test_case "stride near-exact shares" `Quick
            test_stride_exact_proportionality;
          Alcotest.test_case "stride ticket change" `Quick test_stride_ticket_change;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "draw counters and modes" `Quick test_lottery_introspection;
          Alcotest.test_case "block/wake is O(affected), not a full refresh" `Quick
            test_scoped_updates_on_block_wake;
          Alcotest.test_case "baseline accessors" `Quick test_baseline_accessors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_conservation; qcheck_lottery_invariants_under_load ] );
    ]
