(* Multi-tenant service layer: arrival generators, bounded-port admission
   control (reject-new / drop-oldest / scatter exemption), request
   accounting, and the insulation invariant end to end. *)

open Core
module Svc = Service.Harness
module Tenant = Service.Tenant
module Arrivals = Service.Arrivals
module Slo = Service.Slo

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let rr_kernel ?quantum () =
  Kernel.create ?quantum ~sched:(Round_robin.sched (Round_robin.create ())) ()

(* --- arrival generators -------------------------------------------------------- *)

let gaps profile ~seed ~n =
  let g = Arrivals.create ~rng:(Rng.create ~seed ()) profile in
  List.init n (fun _ -> Arrivals.next_gap_us g)

let test_arrivals_deterministic () =
  let p =
    Arrivals.Mmpp
      { calm_per_s = 50.; burst_per_s = 500.; calm_ms = 40.; burst_ms = 10. }
  in
  check (Alcotest.list Alcotest.int) "same seed, same schedule"
    (gaps p ~seed:5 ~n:1000) (gaps p ~seed:5 ~n:1000);
  checkb "different seed, different schedule" true
    (gaps p ~seed:5 ~n:1000 <> gaps p ~seed:6 ~n:1000)

let test_poisson_mean () =
  let n = 50_000 in
  let total =
    List.fold_left ( + ) 0 (gaps (Arrivals.Poisson 250.) ~seed:7 ~n)
  in
  let mean = float_of_int total /. float_of_int n in
  checkb "empirical mean within 3% of 4000us" true
    (Float.abs (mean -. 4000.) < 120.)

let test_mmpp_mean_rate () =
  let p =
    Arrivals.Mmpp
      { calm_per_s = 100.; burst_per_s = 900.; calm_ms = 30.; burst_ms = 10. }
  in
  (* time-weighted: (100*30 + 900*10) / 40 = 300 req/s *)
  check (Alcotest.float 1e-9) "analytic mean rate" 300.
    (Arrivals.mean_rate_per_s p);
  let n = 100_000 in
  let total = List.fold_left ( + ) 0 (gaps p ~seed:8 ~n) in
  let rate = float_of_int n /. (float_of_int total /. 1e6) in
  checkb "empirical rate within 5% of analytic" true
    (Float.abs (rate -. 300.) < 15.)

let test_arrivals_validation () =
  let rng () = Rng.create ~seed:1 () in
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Arrivals: Poisson rate must be > 0") (fun () ->
      ignore (Arrivals.create ~rng:(rng ()) (Arrivals.Poisson 0.)));
  Alcotest.check_raises "negative sojourn"
    (Invalid_argument "Arrivals: Mmpp parameters must be > 0") (fun () ->
      ignore
        (Arrivals.create ~rng:(rng ())
           (Arrivals.Mmpp
              { calm_per_s = 1.; burst_per_s = 1.; calm_ms = -1.; burst_ms = 1. })))

(* --- bounded ports ------------------------------------------------------------- *)

(* [n] clients each sending one rpc to [port], no server: every request
   queues or sheds. Returns (rejected names in order, still-blocked count). *)
let send_n k port n =
  let rejected = ref [] in
  let blocked = ref 0 in
  for i = 1 to n do
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "c%d" i) (fun () ->
           incr blocked;
           match Api.rpc port "x" with
           | (_ : string) -> decr blocked
           | exception Types.Rejected _ ->
               decr blocked;
               rejected := Printf.sprintf "c%d" i :: !rejected))
  done;
  (rejected, blocked)

let test_reject_new () =
  let k = rr_kernel () in
  let port = Kernel.create_port ~capacity:2 k ~name:"svc" in
  let tracer = Obs.Span.create () in
  Obs.Span.attach tracer (Kernel.bus k);
  let rejected, blocked = send_n k port 4 in
  ignore (Kernel.run k ~until:(Time.seconds 1));
  check (Alcotest.list Alcotest.string) "newest two rejected immediately"
    [ "c3"; "c4" ] (List.rev !rejected);
  checki "first two still queued" 2 !blocked;
  checki "kernel counted both sheds" 2 (Kernel.port_shed_count port);
  checkb "queue full again -> next would shed" true (Kernel.port_would_shed port);
  let st = Obs.Span.stats tracer in
  checki "shed requests traced as dropped spans" 2 st.Obs.Span.st_dropped

let test_drop_oldest () =
  let k = rr_kernel () in
  let port =
    Kernel.create_port ~capacity:2 ~shed:Types.Drop_oldest k ~name:"svc"
  in
  let rejected, blocked = send_n k port 4 in
  ignore (Kernel.run k ~until:(Time.seconds 1));
  (* c3 evicts c1, c4 evicts c2: the oldest queued senders are unwound
     kill-style; the two newest requests hold the queue *)
  check (Alcotest.list Alcotest.string) "oldest two evicted, in order"
    [ "c1"; "c2" ] (List.rev !rejected);
  checki "newest two queued" 2 !blocked;
  checki "kernel counted both sheds" 2 (Kernel.port_shed_count port)

let test_drop_oldest_no_victim () =
  let k = rr_kernel () in
  let port =
    Kernel.create_port ~capacity:1 ~shed:Types.Drop_oldest k ~name:"svc"
  in
  let scatter_rejected = ref false and plain_rejected = ref false in
  ignore
    (Kernel.spawn k ~name:"scatter" (fun () ->
         try ignore (Api.rpc_many [ (port, "s") ])
         with Types.Rejected _ -> scatter_rejected := true));
  ignore
    (Kernel.spawn k ~name:"plain" (fun () ->
         try ignore (Api.rpc port "x")
         with Types.Rejected _ -> plain_rejected := true));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  (* the queue is full of a scatter slice, which is exempt from eviction:
     drop-oldest degrades to rejecting the newcomer *)
  checkb "scatter request never shed" false !scatter_rejected;
  checkb "plain request rejected for lack of victim" true !plain_rejected;
  checki "shed counted" 1 (Kernel.port_shed_count port)

let test_unbounded_port_never_sheds () =
  let k = rr_kernel () in
  let port = Kernel.create_port k ~name:"svc" in
  ignore
    (Kernel.spawn k ~name:"server" (fun () ->
         while true do
           let m = Api.receive port in
           Api.compute (Time.ms 1);
           Api.reply m "ok"
         done));
  let rejected, _ = send_n k port 100 in
  ignore (Kernel.run k ~until:(Time.seconds 2));
  checki "nothing rejected" 0 (List.length !rejected);
  checki "nothing shed" 0 (Kernel.port_shed_count port);
  checkb "never sheds" false (Kernel.port_would_shed port)

let test_port_capacity_validation () =
  let k = rr_kernel () in
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Kernel.create_port: capacity must be >= 1") (fun () ->
      ignore (Kernel.create_port ~capacity:0 k ~name:"bad"))

(* --- service harness ----------------------------------------------------------- *)

let test_accounting_under_overload () =
  (* one tenant at 2x machine capacity: roughly half the arrivals shed,
     and every single one is accounted for *)
  let spec = Tenant.spec ~arrivals:(Arrivals.Poisson 400.) "A" in
  let report = Svc.run (Svc.config ~horizon:(Time.seconds 10) [ spec ]) in
  let tr = Svc.find report "A" in
  checkb "conservation law" true report.Svc.accounted;
  checkb "client sheds equal kernel sheds" true report.Svc.shed_consistent;
  checki "arrivals = served + shed + in_flight" tr.Svc.arrivals
    (tr.Svc.served + tr.Svc.shed + tr.Svc.in_flight);
  checkb "substantial shedding at 2x load" true (tr.Svc.shed > tr.Svc.arrivals / 4);
  checkb "goodput near machine capacity" true
    (Float.abs (tr.Svc.goodput_per_s -. 200.) < 20.)

let test_prom_exposition () =
  let spec = Tenant.spec ~arrivals:(Arrivals.Poisson 100.) "web" in
  let report = Svc.run (Svc.config ~horizon:(Time.seconds 5) [ spec ]) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let has s = contains report.Svc.prom s in
  List.iter
    (fun family -> checkb family true (has family))
    [
      "lotto_slo_requests_total{tenant=\"web\"}";
      "lotto_slo_served_total{tenant=\"web\"}";
      "lotto_slo_shed_total{tenant=\"web\"}";
      "lotto_slo_latency_us{tenant=\"web\",quantile=\"0.99\"}";
      "lotto_slo_latency_us_count{tenant=\"web\"}";
    ]

let test_insulation_invariant () =
  (* the PR's acceptance gate at test scale: tenant B at 10x its
     entitlement must not move tenant A's p99 by more than 1.5x, CPU
     shares must pass chi-square against the 9:1 split, and every
     rejected request must be accounted for *)
  let t = Lotto_exp.Service_insulation.run ~horizon:(Time.seconds 20) () in
  checkb "p99 ratio within 1.5x" true (t.Lotto_exp.Service_insulation.p99_ratio <= 1.5);
  (match t.Lotto_exp.Service_insulation.loaded.Svc.chi_square_p with
  | Some p -> checkb "chi-square p >= 0.01" true (p >= 0.01)
  | None -> Alcotest.fail "chi-square expected");
  checkb "every request accounted" true
    (t.Lotto_exp.Service_insulation.loaded.Svc.accounted
    && t.Lotto_exp.Service_insulation.loaded.Svc.shed_consistent);
  checkb "SLO invariant passes" true t.Lotto_exp.Service_insulation.pass

let test_decay_breaks_shares () =
  (* same workload on decay-usage: B's saturated workers pull even with
     A's and the chi-square against 9:1 rejects — the SRM contrast *)
  let t = Lotto_exp.Service_vs_decay.run ~horizon:(Time.seconds 20) () in
  let arm name =
    List.find
      (fun a -> a.Lotto_exp.Service_vs_decay.sched = name)
      t.Lotto_exp.Service_vs_decay.arms
  in
  let lot = (arm "lottery").Lotto_exp.Service_vs_decay.report in
  let dec = (arm "decay-usage").Lotto_exp.Service_vs_decay.report in
  let ratio (r : Svc.report) =
    let a = Svc.find r "A" and b = Svc.find r "B" in
    float_of_int a.Svc.worker_quanta /. float_of_int (max 1 b.Svc.worker_quanta)
  in
  checkb "lottery holds ~9:1 cpu" true (Float.abs (ratio lot -. 9.) < 1.5);
  checkb "decay collapses toward 1:1" true (ratio dec < 2.);
  (match dec.Svc.chi_square_p with
  | Some p -> checkb "decay rejects the 9:1 split" true (p < 0.01)
  | None -> Alcotest.fail "chi-square expected");
  checkb "accounting also holds under decay" true
    (dec.Svc.accounted && dec.Svc.shed_consistent)

let () =
  Alcotest.run "service"
    [
      ( "arrivals",
        [
          Alcotest.test_case "deterministic per seed" `Quick
            test_arrivals_deterministic;
          Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
          Alcotest.test_case "mmpp mean rate" `Quick test_mmpp_mean_rate;
          Alcotest.test_case "validation" `Quick test_arrivals_validation;
        ] );
      ( "bounded-ports",
        [
          Alcotest.test_case "reject-new sheds newest" `Quick test_reject_new;
          Alcotest.test_case "drop-oldest evicts oldest" `Quick test_drop_oldest;
          Alcotest.test_case "scatter slices are not victims" `Quick
            test_drop_oldest_no_victim;
          Alcotest.test_case "unbounded port never sheds" `Quick
            test_unbounded_port_never_sheds;
          Alcotest.test_case "capacity validation" `Quick
            test_port_capacity_validation;
        ] );
      ( "harness",
        [
          Alcotest.test_case "accounting under overload" `Quick
            test_accounting_under_overload;
          Alcotest.test_case "prometheus exposition" `Quick test_prom_exposition;
          Alcotest.test_case "insulation invariant" `Slow
            test_insulation_invariant;
          Alcotest.test_case "decay-usage breaks shares" `Slow
            test_decay_breaks_shares;
        ] );
    ]
