(* Kernel semantics: time accounting, preemption, sleep, RPC, mutexes,
   determinism, failure handling, the timer heap, and Time helpers. *)

open Core

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf msg = check (Alcotest.float 1e-9) msg

(* a fresh kernel under round-robin: deterministic and policy-free *)
let rr_kernel ?quantum () =
  Kernel.create ?quantum ~sched:(Round_robin.sched (Round_robin.create ())) ()

(* --- heap ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Lotto_sim.Heap.create () in
  List.iter (fun k -> Lotto_sim.Heap.push h ~key:k k) [ 5; 1; 4; 1; 3; 9; 0 ];
  checki "size" 7 (Lotto_sim.Heap.size h);
  let order = ref [] in
  let rec drain () =
    match Lotto_sim.Heap.pop_min h with
    | Some (k, _) ->
        order := k :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.int) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] (List.rev !order);
  checkb "empty" true (Lotto_sim.Heap.is_empty h)

let test_heap_fifo_on_ties () =
  let h = Lotto_sim.Heap.create () in
  Lotto_sim.Heap.push h ~key:7 "first";
  Lotto_sim.Heap.push h ~key:7 "second";
  Lotto_sim.Heap.push h ~key:7 "third";
  let next () = match Lotto_sim.Heap.pop_min h with Some (_, v) -> v | None -> "?" in
  check Alcotest.string "fifo 1" "first" (next ());
  check Alcotest.string "fifo 2" "second" (next ());
  check Alcotest.string "fifo 3" "third" (next ())

let test_heap_growth () =
  let h = Lotto_sim.Heap.create () in
  for i = 999 downto 0 do
    Lotto_sim.Heap.push h ~key:i i
  done;
  checki "size" 1000 (Lotto_sim.Heap.size h);
  (match Lotto_sim.Heap.peek_min h with
  | Some (k, _) -> checki "min" 0 k
  | None -> Alcotest.fail "empty");
  checki "size unchanged by peek" 1000 (Lotto_sim.Heap.size h)

(* --- time ------------------------------------------------------------------- *)

let test_time_units () =
  checki "us" 7 (Time.us 7);
  checki "ms" 3_000 (Time.ms 3);
  checki "seconds" 2_000_000 (Time.seconds 2);
  checkf "to_seconds" 1.5 (Time.to_seconds 1_500_000);
  checkf "to_ms" 2.5 (Time.to_ms 2_500);
  check Alcotest.string "pp" "1.250s" (Format.asprintf "%a" Time.pp 1_250_000)

(* --- basic execution ---------------------------------------------------------- *)

let test_compute_accounting () =
  let k = rr_kernel () in
  let th =
    Kernel.spawn k ~name:"worker" (fun () ->
        Api.compute (Time.ms 250);
        Api.compute (Time.ms 250))
  in
  let s = Kernel.run k ~until:(Time.seconds 10) in
  checki "cpu charged exactly" (Time.ms 500) (Kernel.cpu_time th);
  checki "clock advanced to completion" (Time.ms 500) s.ended_at;
  checkb "thread exited" true (Kernel.thread_state th = Types.Zombie);
  checkb "no failures" true (Kernel.failures k = [])

let test_quantum_preemption_interleaves () =
  (* two equal RR threads must alternate per 100ms quantum *)
  let k = rr_kernel ~quantum:(Time.ms 100) () in
  let spin name =
    Kernel.spawn k ~name (fun () ->
        while true do
          Api.compute (Time.ms 10)
        done)
  in
  let a = spin "a" and b = spin "b" in
  ignore (Kernel.run k ~until:(Time.seconds 10));
  checki "equal shares" (Kernel.cpu_time a) (Kernel.cpu_time b);
  checki "everything accounted" (Time.seconds 10) (Kernel.cpu_time a + Kernel.cpu_time b)

let test_slice_count () =
  let k = rr_kernel ~quantum:(Time.ms 100) () in
  ignore
    (Kernel.spawn k ~name:"solo" (fun () ->
         while true do
           Api.compute (Time.ms 100)
         done));
  let s = Kernel.run k ~until:(Time.seconds 1) in
  checki "one decision per quantum" 10 s.slices

let test_sleep_wakes_on_time () =
  let k = rr_kernel () in
  let woke = ref (-1) in
  ignore
    (Kernel.spawn k ~name:"sleeper" (fun () ->
         Api.sleep (Time.ms 300);
         woke := Api.now ()));
  let s = Kernel.run k ~until:(Time.seconds 5) in
  checki "woke at 300ms" (Time.ms 300) !woke;
  checkb "idle time accounted" true (s.idle_ticks >= Time.ms 300)

let test_sleep_zero () =
  let k = rr_kernel () in
  let order = ref [] in
  ignore
    (Kernel.spawn k ~name:"z" (fun () ->
         order := `Before :: !order;
         Api.sleep 0;
         order := `After :: !order));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  check (Alcotest.list Alcotest.bool) "both steps ran" [ true; true ]
    (List.map (fun _ -> true) !order)

let test_now_and_self () =
  let k = rr_kernel () in
  let seen = ref ("", -1) in
  let th =
    Kernel.spawn k ~name:"me" (fun () ->
        Api.compute (Time.ms 50);
        seen := (Kernel.thread_name (Api.self ()), Api.now ()))
  in
  ignore (Kernel.run k ~until:(Time.seconds 1));
  check Alcotest.string "self" "me" (fst !seen);
  checki "now" (Time.ms 50) (snd !seen);
  checki "thread id stable" (Kernel.thread_id th) (Kernel.thread_id th)

let test_spawn_from_inside () =
  let k = rr_kernel () in
  let child_cpu = ref 0 in
  ignore
    (Kernel.spawn k ~name:"parent" (fun () ->
         Api.compute (Time.ms 10);
         let child =
           Api.spawn "child" (fun () -> Api.compute (Time.ms 70))
         in
         Api.compute (Time.ms 10);
         ignore child));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  (match Kernel.find_thread k "child" with
  | Some th -> child_cpu := Kernel.cpu_time th
  | None -> Alcotest.fail "child not spawned");
  checki "child ran" (Time.ms 70) !child_cpu

let test_yield_rotates () =
  let k = rr_kernel ~quantum:(Time.ms 100) () in
  let trace = ref [] in
  let mk name =
    Kernel.spawn k ~name (fun () ->
        for _ = 1 to 3 do
          Api.compute (Time.ms 10);
          trace := name :: !trace;
          Api.yield ()
        done)
  in
  ignore (mk "a");
  ignore (mk "b");
  ignore (Kernel.run k ~until:(Time.seconds 1));
  (* yielding after 10ms lets the other thread in: strict alternation *)
  check
    (Alcotest.list Alcotest.string)
    "alternation" [ "a"; "b"; "a"; "b"; "a"; "b" ]
    (List.rev !trace)

(* --- RPC ----------------------------------------------------------------------- *)

let test_rpc_roundtrip () =
  let k = rr_kernel () in
  let port = Kernel.create_port k ~name:"echo" in
  ignore
    (Kernel.spawn k ~name:"server" (fun () ->
         let m = Api.receive port in
         Api.compute (Time.ms 100);
         Api.reply m ("got:" ^ m.payload)));
  let answer = ref "" in
  ignore
    (Kernel.spawn k ~name:"client" (fun () ->
         answer := Api.rpc port "ping"));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  check Alcotest.string "reply" "got:ping" !answer

let test_rpc_response_time_includes_service () =
  let k = rr_kernel () in
  let port = Kernel.create_port k ~name:"svc" in
  ignore
    (Kernel.spawn k ~name:"server" (fun () ->
         while true do
           let m = Api.receive port in
           Api.compute (Time.ms 200);
           Api.reply m ""
         done));
  let latency = ref 0 in
  ignore
    (Kernel.spawn k ~name:"client" (fun () ->
         let t0 = Api.now () in
         ignore (Api.rpc port "x");
         latency := Api.now () - t0));
  ignore (Kernel.run k ~until:(Time.seconds 2));
  checki "latency is the service time" (Time.ms 200) !latency

let test_rpc_queue_is_fifo () =
  let k = rr_kernel () in
  let port = Kernel.create_port k ~name:"q" in
  let served = ref [] in
  ignore
    (Kernel.spawn k ~name:"c1" (fun () -> ignore (Api.rpc port "first")));
  ignore
    (Kernel.spawn k ~name:"c2" (fun () -> ignore (Api.rpc port "second")));
  ignore
    (Kernel.spawn k ~name:"server" (fun () ->
         for _ = 1 to 2 do
           let m = Api.receive port in
           served := m.payload :: !served;
           Api.reply m ""
         done));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  check (Alcotest.list Alcotest.string) "fifo order" [ "first"; "second" ]
    (List.rev !served)

let test_rpc_multiple_workers_parallel () =
  (* two workers serve two clients concurrently: both replies land at 100ms
     of virtual time, not 200ms *)
  let k = rr_kernel () in
  let port = Kernel.create_port k ~name:"pool" in
  for i = 1 to 2 do
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "w%d" i) (fun () ->
           while true do
             let m = Api.receive port in
             Api.compute (Time.ms 100);
             Api.reply m ""
           done))
  done;
  let done_at = Array.make 2 0 in
  for i = 0 to 1 do
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "c%d" i) (fun () ->
           ignore (Api.rpc port "x");
           done_at.(i) <- Api.now ()))
  done;
  ignore (Kernel.run k ~until:(Time.seconds 2));
  (* with interleaved 100ms quanta both finish by 200ms; with a single
     worker the second would finish at 200ms+ *)
  checkb "both served concurrently" true
    (done_at.(0) = Time.ms 200 && done_at.(1) = Time.ms 200)

let test_message_metadata () =
  let k = rr_kernel () in
  let port = Kernel.create_port k ~name:"meta" in
  let seen = ref None in
  ignore
    (Kernel.spawn k ~name:"server" (fun () ->
         let m = Api.receive port in
         seen := Some (Kernel.thread_name m.sender, m.sent_at);
         Api.reply m ""));
  ignore
    (Kernel.spawn k ~name:"client" (fun () ->
         Api.compute (Time.ms 30);
         ignore (Api.rpc port "x")));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  (match !seen with
  | Some (sender, at) ->
      check Alcotest.string "sender" "client" sender;
      checki "sent_at" (Time.ms 30) at
  | None -> Alcotest.fail "no message")

let test_poll_receive () =
  let k = rr_kernel () in
  let port = Kernel.create_port k ~name:"p" in
  let seen = ref [] in
  ignore
    (Kernel.spawn k ~name:"server" (fun () ->
         (* empty poll first *)
         (match Api.poll_receive port with
         | None -> seen := "empty" :: !seen
         | Some _ -> seen := "unexpected" :: !seen);
         Api.sleep (Time.ms 10);
         (* two queued requests drained without blocking *)
         let rec drain () =
           match Api.poll_receive port with
           | Some m ->
               seen := m.payload :: !seen;
               Api.reply m "";
               drain ()
           | None -> ()
         in
         drain ()));
  for i = 1 to 2 do
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "c%d" i) (fun () ->
           Api.sleep (Time.ms 1);
           ignore (Api.rpc port (Printf.sprintf "m%d" i))))
  done;
  ignore (Kernel.run k ~until:(Time.seconds 1));
  check (Alcotest.list Alcotest.string) "poll saw both after the empty probe"
    [ "empty"; "m1"; "m2" ] (List.rev !seen);
  checkb "clients unblocked" true (Kernel.failures k = [])

let test_rpc_after_server_killed () =
  let k = rr_kernel () in
  let port = Kernel.create_port k ~name:"p" in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        let m = Api.receive port in
        Api.reply m "")
  in
  ignore (Kernel.run k ~until:(Time.ms 1));
  Kernel.kill k server;
  (* a sender now waits forever: deadlock detection must fire, and the
     dead waiter entry must not corrupt the port *)
  ignore (Kernel.spawn k ~name:"client" (fun () -> ignore (Api.rpc port "x")));
  let s = Kernel.run k ~until:(Time.seconds 1) in
  checkb "deadlock detected" true s.deadlocked

let test_rpc_many_gathers_in_order () =
  let k = rr_kernel () in
  let mk_port cost name =
    let port = Kernel.create_port k ~name in
    ignore
      (Kernel.spawn k ~name:(name ^ "-srv") (fun () ->
           while true do
             let m = Api.receive port in
             Api.compute cost;
             Api.reply m (name ^ ":" ^ m.payload)
           done));
    port
  in
  let fast = mk_port (Time.ms 10) "fast" in
  let slow = mk_port (Time.ms 200) "slow" in
  let got = ref [] in
  ignore
    (Kernel.spawn k ~name:"client" (fun () ->
         Api.sleep (Time.ms 1);
         got := Api.rpc_many [ (slow, "a"); (fast, "b"); (slow, "c") ]));
  ignore (Kernel.run k ~until:(Time.seconds 5));
  check (Alcotest.list Alcotest.string) "replies in request order"
    [ "slow:a"; "fast:b"; "slow:c" ] !got

let test_rpc_many_empty_rejected () =
  let k = rr_kernel () in
  ignore (Kernel.spawn k ~name:"client" (fun () -> ignore (Api.rpc_many [])));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  (match Kernel.failures k with
  | [ (_, Invalid_argument _) ] -> ()
  | _ -> Alcotest.fail "empty scatter should fail the caller")

(* --- mutexes ---------------------------------------------------------------------- *)

let test_mutex_mutual_exclusion () =
  let k = rr_kernel ~quantum:(Time.ms 10) () in
  let m = Kernel.create_mutex k "m" in
  let inside = ref 0 and violations = ref 0 in
  for i = 1 to 4 do
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "t%d" i) (fun () ->
           for _ = 1 to 20 do
             Api.lock m;
             incr inside;
             if !inside > 1 then incr violations;
             Api.compute (Time.ms 25);
             decr inside;
             Api.unlock m
           done))
  done;
  ignore (Kernel.run k ~until:(Time.seconds 10));
  checki "no two holders" 0 !violations;
  checki "all exited cleanly" 0 (List.length (Kernel.failures k))

let test_mutex_fifo_policy () =
  let k = rr_kernel ~quantum:(Time.ms 10) () in
  let m = Kernel.create_mutex k ~policy:Types.Fifo "m" in
  let order = ref [] in
  ignore
    (Kernel.spawn k ~name:"holder" (fun () ->
         Api.lock m;
         Api.compute (Time.ms 100);
         Api.unlock m));
  for i = 1 to 3 do
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "w%d" i) (fun () ->
           (* stagger arrivals to fix the waiter order *)
           Api.sleep (Time.ms i);
           Api.lock m;
           order := i :: !order;
           Api.unlock m))
  done;
  ignore (Kernel.run k ~until:(Time.seconds 2));
  check (Alcotest.list Alcotest.int) "fifo handoff" [ 1; 2; 3 ] (List.rev !order)

let test_with_lock_releases_on_exception () =
  let k = rr_kernel () in
  let m = Kernel.create_mutex k "m" in
  let second_got_it = ref false in
  ignore
    (Kernel.spawn k ~name:"thrower" (fun () ->
         try Api.with_lock m (fun () -> failwith "boom") with Failure _ -> ()));
  ignore
    (Kernel.spawn k ~name:"second" (fun () ->
         Api.sleep (Time.ms 1);
         Api.with_lock m (fun () -> second_got_it := true)));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checkb "lock released by exception path" true !second_got_it;
  checki "acquisitions" 2 m.Types.acquisitions

let test_unlock_not_owner_fails_thread () =
  let k = rr_kernel () in
  let m = Kernel.create_mutex k "m" in
  ignore (Kernel.spawn k ~name:"bad" (fun () -> Api.unlock m));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  match Kernel.failures k with
  | [ (th, Invalid_argument _) ] ->
      check Alcotest.string "failing thread" "bad" (Kernel.thread_name th)
  | _ -> Alcotest.fail "expected exactly one Invalid_argument failure"

(* --- condition variables and semaphores --------------------------------------------- *)

let test_condition_producer_consumer () =
  let k = rr_kernel ~quantum:(Time.ms 10) () in
  let m = Kernel.create_mutex k "m" in
  let c = Kernel.create_condition k "items" in
  let queue = Queue.create () in
  let consumed = ref [] in
  ignore
    (Kernel.spawn k ~name:"consumer" (fun () ->
         for _ = 1 to 5 do
           Api.lock m;
           while Queue.is_empty queue do
             Api.wait c m
           done;
           consumed := Queue.pop queue :: !consumed;
           Api.unlock m
         done));
  ignore
    (Kernel.spawn k ~name:"producer" (fun () ->
         for i = 1 to 5 do
           Api.compute (Time.ms 30);
           Api.lock m;
           Queue.push i queue;
           Api.signal c;
           Api.unlock m
         done));
  ignore (Kernel.run k ~until:(Time.seconds 5));
  checkb "no failures" true (Kernel.failures k = []);
  check (Alcotest.list Alcotest.int) "all items, in order" [ 1; 2; 3; 4; 5 ]
    (List.rev !consumed);
  checki "signals counted" 5 c.Types.signals

let test_condition_wait_releases_mutex () =
  let k = rr_kernel () in
  let m = Kernel.create_mutex k "m" in
  let c = Kernel.create_condition k "c" in
  let got_lock_while_waiter_blocked = ref false in
  ignore
    (Kernel.spawn k ~name:"waiter" (fun () ->
         Api.lock m;
         Api.wait c m;
         Api.unlock m));
  ignore
    (Kernel.spawn k ~name:"other" (fun () ->
         Api.sleep (Time.ms 1);
         (* the waiter is blocked in wait: the mutex must be free *)
         Api.lock m;
         got_lock_while_waiter_blocked := true;
         Api.signal c;
         Api.unlock m));
  ignore (Kernel.run k ~until:(Time.seconds 2));
  checkb "wait released the mutex" true !got_lock_while_waiter_blocked;
  checkb "waiter completed after signal" true (Kernel.failures k = [])

let test_broadcast_wakes_all () =
  let k = rr_kernel () in
  let m = Kernel.create_mutex k "m" in
  let c = Kernel.create_condition k "barrier" in
  let released = ref 0 in
  let gate_open = ref false in
  for i = 1 to 4 do
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "w%d" i) (fun () ->
           Api.lock m;
           while not !gate_open do
             Api.wait c m
           done;
           incr released;
           Api.unlock m))
  done;
  ignore
    (Kernel.spawn k ~name:"opener" (fun () ->
         Api.sleep (Time.ms 5);
         Api.lock m;
         gate_open := true;
         Api.broadcast c;
         Api.unlock m));
  ignore (Kernel.run k ~until:(Time.seconds 2));
  checki "all four released" 4 !released

let test_signal_no_waiters_is_noop () =
  let k = rr_kernel () in
  let c = Kernel.create_condition k "c" in
  ignore
    (Kernel.spawn k ~name:"t" (fun () ->
         Api.signal c;
         Api.broadcast c));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checkb "no failures" true (Kernel.failures k = [])

let test_semaphore_counting () =
  let k = rr_kernel ~quantum:(Time.ms 10) () in
  let sm = Kernel.create_semaphore k ~initial:2 "pool" in
  let inside = ref 0 and peak = ref 0 in
  for i = 1 to 5 do
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "t%d" i) (fun () ->
           Api.sem_wait sm;
           incr inside;
           peak := max !peak !inside;
           Api.compute (Time.ms 30);
           decr inside;
           Api.sem_post sm))
  done;
  ignore (Kernel.run k ~until:(Time.seconds 5));
  checkb "no failures" true (Kernel.failures k = []);
  checki "never more than 2 permits out" 2 !peak;
  checki "count restored" 2 sm.Types.count

let test_semaphore_zero_initial_blocks () =
  let k = rr_kernel () in
  let sm = Kernel.create_semaphore k ~initial:0 "event" in
  let order = ref [] in
  ignore
    (Kernel.spawn k ~name:"waiter" (fun () ->
         Api.sem_wait sm;
         order := "woke" :: !order));
  ignore
    (Kernel.spawn k ~name:"poster" (fun () ->
         Api.sleep (Time.ms 20);
         order := "posting" :: !order;
         Api.sem_post sm));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  check (Alcotest.list Alcotest.string) "post before wake" [ "posting"; "woke" ]
    (List.rev !order)

(* --- join and kill ------------------------------------------------------------------- *)

let test_join_waits_for_exit () =
  let k = rr_kernel () in
  let worker = Kernel.spawn k ~name:"worker" (fun () -> Api.compute (Time.ms 300)) in
  let joined_at = ref (-1) in
  ignore
    (Kernel.spawn k ~name:"joiner" (fun () ->
         Api.join worker;
         joined_at := Api.now ()));
  ignore (Kernel.run k ~until:(Time.seconds 2));
  checki "joined exactly at worker exit" (Time.ms 300) !joined_at

let test_join_already_dead () =
  let k = rr_kernel () in
  let worker = Kernel.spawn k ~name:"worker" (fun () -> ()) in
  ignore (Kernel.run k ~until:(Time.ms 1));
  let ok = ref false in
  ignore
    (Kernel.spawn k ~name:"joiner" (fun () ->
         Api.join worker;
         ok := true));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checkb "join on zombie returns immediately" true !ok

let test_join_self_rejected () =
  let k = rr_kernel () in
  ignore (Kernel.spawn k ~name:"narcissus" (fun () -> Api.join (Api.self ())));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  (match Kernel.failures k with
  | [ (_, Invalid_argument _) ] -> ()
  | _ -> Alcotest.fail "self-join should fail the thread")

let test_join_funds_target () =
  (* the joiner's tickets speed up the joined thread *)
  let rng = Rng.create ~seed:88 () in
  let ls = Lottery_sched.create ~rng () in
  let k = Kernel.create ~sched:(Lottery_sched.sched ls) () in
  let base = Lottery_sched.base_currency ls in
  let worker = Kernel.spawn k ~name:"worker" (fun () -> Api.compute (Time.seconds 10)) in
  let done_at = ref 0 in
  let joiner =
    Kernel.spawn k ~name:"joiner" (fun () ->
        Api.join worker;
        done_at := Api.now ())
  in
  let spinner =
    Kernel.spawn k ~name:"spinner" (fun () ->
        while true do
          Api.compute (Time.ms 10)
        done)
  in
  ignore (Lottery_sched.fund_thread ls worker ~amount:100 ~from:base);
  ignore (Lottery_sched.fund_thread ls joiner ~amount:200 ~from:base);
  ignore (Lottery_sched.fund_thread ls spinner ~amount:100 ~from:base);
  ignore (Kernel.run k ~until:(Time.seconds 60));
  (* worker runs with 100+200 of 400 = 3/4 share: 10s of work in ~13.3s,
     versus 40s if the joiner's transfer were lost *)
  checkb
    (Printf.sprintf "worker finished early (t=%.1fs)" (Time.to_seconds !done_at))
    true
    (!done_at > 0 && !done_at < Time.seconds 20)

let test_kill_blocked_thread () =
  let k = rr_kernel () in
  let port = Kernel.create_port k ~name:"never" in
  let victim = Kernel.spawn k ~name:"victim" (fun () -> ignore (Api.receive port)) in
  ignore (Kernel.run k ~until:(Time.ms 10));
  checkb "blocked" true (Kernel.thread_state victim = Types.Blocked);
  Kernel.kill k victim;
  checkb "zombie" true (Kernel.thread_state victim = Types.Zombie);
  (match Kernel.failures k with
  | [ (_, Types.Killed) ] -> ()
  | _ -> Alcotest.fail "killed not recorded")

let test_kill_releases_lock_via_cleanup () =
  let k = rr_kernel () in
  let m = Kernel.create_mutex k "m" in
  let holder =
    Kernel.spawn k ~name:"holder" (fun () ->
        Api.with_lock m (fun () -> Api.compute (Time.seconds 100)))
  in
  let got_it = ref false in
  ignore
    (Kernel.spawn k ~name:"waiter" (fun () ->
         Api.sleep (Time.ms 10);
         Api.with_lock m (fun () -> got_it := true)));
  ignore (Kernel.run k ~until:(Time.ms 50));
  Kernel.kill k holder;
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checkb "with_lock cleanup released the mutex to the waiter" true !got_it

let test_kill_survivable () =
  let k = rr_kernel () in
  let stubborn =
    Kernel.spawn k ~name:"stubborn" (fun () ->
        (try Api.compute (Time.seconds 100) with Types.Killed -> ());
        Api.compute (Time.ms 50))
  in
  ignore (Kernel.run k ~until:(Time.ms 10));
  Kernel.kill k stubborn;
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checkb "caught Killed and finished normally" true
    (Kernel.thread_state stubborn = Types.Zombie && Kernel.failures k = [])

let test_kill_sleeping_thread_timer_harmless () =
  let k = rr_kernel () in
  let sleeper = Kernel.spawn k ~name:"sleeper" (fun () -> Api.sleep (Time.ms 100)) in
  ignore (Kernel.run k ~until:(Time.ms 10));
  Kernel.kill k sleeper;
  (* the dangling timer entry must not wake a zombie *)
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checkb "zombie stays dead" true (Kernel.thread_state sleeper = Types.Zombie)

(* --- failure, deadlock, horizon ---------------------------------------------------- *)

let test_body_exception_recorded () =
  let k = rr_kernel () in
  let th = Kernel.spawn k ~name:"dies" (fun () -> failwith "oops") in
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checkb "zombie" true (Kernel.thread_state th = Types.Zombie);
  (match Kernel.failures k with
  | [ (_, Failure m) ] when m = "oops" -> ()
  | _ -> Alcotest.fail "failure not recorded")

let test_deadlock_detected () =
  let k = rr_kernel () in
  let m1 = Kernel.create_mutex k "m1" in
  let m2 = Kernel.create_mutex k "m2" in
  ignore
    (Kernel.spawn k ~name:"ab" (fun () ->
         Api.lock m1;
         Api.sleep (Time.ms 10);
         Api.lock m2;
         Api.unlock m2;
         Api.unlock m1));
  ignore
    (Kernel.spawn k ~name:"ba" (fun () ->
         Api.lock m2;
         Api.sleep (Time.ms 10);
         Api.lock m1;
         Api.unlock m1;
         Api.unlock m2));
  let s = Kernel.run k ~until:(Time.seconds 5) in
  checkb "deadlock flagged" true s.deadlocked;
  checkb "stopped early" true (s.ended_at < Time.seconds 5)

let test_run_resumable () =
  let k = rr_kernel () in
  let th =
    Kernel.spawn k ~name:"long" (fun () ->
        while true do
          Api.compute (Time.ms 1)
        done)
  in
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checki "first second" (Time.seconds 1) (Kernel.cpu_time th);
  ignore (Kernel.run k ~until:(Time.seconds 3));
  checki "resumed to 3s" (Time.seconds 3) (Kernel.cpu_time th);
  checki "clock at horizon" (Time.seconds 3) (Kernel.now k)

let test_horizon_mid_compute () =
  (* horizon may land inside a compute request; the remainder must carry
     into the next run *)
  let k = rr_kernel () in
  let th = Kernel.spawn k ~name:"big" (fun () -> Api.compute (Time.seconds 4)) in
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checki "partial work" (Time.seconds 1) (Kernel.cpu_time th);
  ignore (Kernel.run k ~until:(Time.seconds 10));
  checki "completed" (Time.seconds 4) (Kernel.cpu_time th);
  checkb "exited" true (Kernel.thread_state th = Types.Zombie)

let test_determinism_trace () =
  let trace_of seed =
    let rng = Rng.create ~seed () in
    let ls = Lottery_sched.create ~rng () in
    let k = Kernel.create ~sched:(Lottery_sched.sched ls) () in
    let buf = Buffer.create 256 in
    Kernel.set_tracer k (Some (fun t s -> Buffer.add_string buf (Printf.sprintf "%d %s\n" t s)));
    let mk name amount =
      let th =
        Kernel.spawn k ~name (fun () ->
            while true do
              Api.compute (Time.ms 7)
            done)
      in
      ignore (Lottery_sched.fund_thread ls th ~amount ~from:(Lottery_sched.base_currency ls))
    in
    mk "x" 100;
    mk "y" 300;
    ignore (Kernel.run k ~until:(Time.seconds 5));
    Buffer.contents buf
  in
  check Alcotest.string "same seed, same trace" (trace_of 11) (trace_of 11);
  checkb "different seed, different trace" true (trace_of 11 <> trace_of 12)

let test_api_outside_thread_rejected () =
  checkb "perform outside kernel raises" true
    (match Api.now () with
    | _ -> false
    | exception Effect.Unhandled _ -> true)

let test_timeline_records_shares () =
  let rng = Rng.create ~seed:77 () in
  let ls = Lottery_sched.create ~rng () in
  let k = Kernel.create ~sched:(Lottery_sched.sched ls) () in
  let tl = Timeline.attach k ~bucket:(Time.seconds 1) () in
  let spin name =
    Kernel.spawn k ~name (fun () ->
        while true do
          Api.compute (Time.ms 5)
        done)
  in
  let a = spin "busy" and b = spin "light" in
  ignore (Lottery_sched.fund_thread ls a ~amount:300 ~from:(Lottery_sched.base_currency ls));
  ignore (Lottery_sched.fund_thread ls b ~amount:100 ~from:(Lottery_sched.base_currency ls));
  ignore (Kernel.run k ~until:(Time.seconds 20));
  Timeline.detach tl;
  (* recorded CPU matches the kernel's accounting (the last slice may still
     be uncharged when recording stops) *)
  checkb "cpu recorded for busy" true
    (abs (Timeline.cpu_of tl "busy" - Kernel.cpu_time a) <= Time.ms 100);
  checkb "cpu recorded for light" true
    (abs (Timeline.cpu_of tl "light" - Kernel.cpu_time b) <= Time.ms 100);
  let chart = Timeline.render ~width:40 tl in
  checkb "chart mentions both rows" true
    (Core.Corpus.count_substring ~haystack:chart ~needle:"busy" = 1
    && Core.Corpus.count_substring ~haystack:chart ~needle:"light" = 1);
  checkb "busy row darker than light row" true
    (Core.Corpus.count_substring ~haystack:chart ~needle:"#" > 0);
  checkb "unknown thread has no cpu" true (Timeline.cpu_of tl "nope" = 0)

let test_timeline_empty () =
  let k = rr_kernel () in
  let tl = Timeline.attach k () in
  check Alcotest.string "placeholder" "(no activity recorded)\n" (Timeline.render tl)

let test_kernel_validation_and_accessors () =
  Alcotest.check_raises "quantum must be positive"
    (Invalid_argument "Kernel.create: quantum <= 0") (fun () ->
      ignore (rr_kernel ~quantum:0 ()));
  let k = rr_kernel ~quantum:(Time.ms 25) () in
  checki "quantum accessor" (Time.ms 25) (Kernel.quantum k);
  checki "clock starts at zero" 0 (Kernel.now k)

let test_compute_zero_and_negative () =
  let k = rr_kernel () in
  let th =
    Kernel.spawn k ~name:"noop" (fun () ->
        Api.compute 0;
        Api.compute (-5);
        Api.compute (Time.ms 1))
  in
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checki "only real work charged" (Time.ms 1) (Kernel.cpu_time th);
  checkb "clean exit" true (Kernel.failures k = [])

let test_semaphore_validation () =
  let k = rr_kernel () in
  Alcotest.check_raises "negative initial"
    (Invalid_argument "Kernel.create_semaphore: negative initial count") (fun () ->
      ignore (Kernel.create_semaphore k ~initial:(-1) "bad"))

let test_find_thread_and_listing () =
  let k = rr_kernel () in
  let a = Kernel.spawn k ~name:"alpha" (fun () -> ()) in
  let b = Kernel.spawn k ~name:"beta" (fun () -> ()) in
  checkb "find alpha" true
    (match Kernel.find_thread k "alpha" with Some th -> th == a | None -> false);
  checkb "missing" true (Kernel.find_thread k "gamma" = None);
  check (Alcotest.list Alcotest.string) "creation order" [ "alpha"; "beta" ]
    (List.map Kernel.thread_name (Kernel.threads k));
  ignore b

let test_find_thread_duplicate_names () =
  let k = rr_kernel () in
  let first = Kernel.spawn k ~name:"twin" (fun () -> ()) in
  let second = Kernel.spawn k ~name:"twin" (fun () -> ()) in
  checkb "first-created twin wins" true
    (match Kernel.find_thread k "twin" with
    | Some th -> th == first && th != second
    | None -> false)

(* --- kill/reply lifecycle --------------------------------------------------- *)

(* count Rpc_reply_dropped events published on the kernel's bus *)
let count_drops k =
  let dropped = ref 0 in
  ignore
    (Obs.Bus.subscribe ~name:"drop-probe" (Kernel.bus k) (fun _ ev ->
         match ev with
         | Obs.Event.Rpc_reply_dropped _ -> incr dropped
         | _ -> ()));
  dropped

let test_reply_after_kill_is_traced_noop () =
  let k = rr_kernel () in
  let dropped = count_drops k in
  let p = Kernel.create_port k ~name:"svc" in
  let served = ref false in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        let m = Api.receive p in
        Api.sleep (Time.ms 50);
        Api.reply m "late";
        served := true)
  in
  let client = Kernel.spawn k ~name:"client" (fun () -> ignore (Api.rpc p "req")) in
  ignore (Kernel.run k ~until:(Time.ms 10));
  Kernel.kill k client;
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checkb "server survived the late reply" true !served;
  checkb "server exited clean" true (Kernel.thread_state server = Types.Zombie);
  (match Kernel.failures k with
  | [ (th, Types.Killed) ] -> checkb "only the client died" true (th == client)
  | _ -> Alcotest.fail "unexpected failures");
  checki "one dropped-reply event" 1 !dropped;
  check (Alcotest.list Alcotest.string) "invariants clean" []
    (Kernel.check_invariants k)

let test_reply_after_kill_scatter () =
  let k = rr_kernel () in
  let dropped = count_drops k in
  let p0 = Kernel.create_port k ~name:"p0" in
  let p1 = Kernel.create_port k ~name:"p1" in
  let serve name port delay =
    Kernel.spawn k ~name (fun () ->
        let m = Api.receive port in
        Api.sleep delay;
        Api.reply m "ok")
  in
  let s0 = serve "s0" p0 (Time.ms 5) in
  let s1 = serve "s1" p1 (Time.ms 50) in
  let client =
    Kernel.spawn k ~name:"client" (fun () ->
        ignore (Api.rpc_many [ (p0, "a"); (p1, "b") ]))
  in
  (* s0 has replied (slot 0 filled), s1 is still working: kill mid-scatter *)
  ignore (Kernel.run k ~until:(Time.ms 20));
  checkb "client still gathering" true (Kernel.thread_state client = Types.Blocked);
  Kernel.kill k client;
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checkb "both servers exited clean" true
    (Kernel.thread_state s0 = Types.Zombie
    && Kernel.thread_state s1 = Types.Zombie
    && List.for_all (fun (th, e) -> th == client && e = Types.Killed) (Kernel.failures k));
  checki "straggler's reply dropped" 1 !dropped;
  check (Alcotest.list Alcotest.string) "invariants clean" []
    (Kernel.check_invariants k)

let test_reply_to_queued_message_from_dead_sender () =
  let k = rr_kernel () in
  let dropped = count_drops k in
  let p = Kernel.create_port k ~name:"svc" in
  let client = Kernel.spawn k ~name:"client" (fun () -> ignore (Api.rpc p "req")) in
  (* no server yet: the request sits in the port queue *)
  ignore (Kernel.run k ~until:(Time.ms 10));
  Kernel.kill k client;
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        let m = Api.receive p in
        Api.reply m "for a ghost")
  in
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checkb "server handled the orphaned request" true
    (Kernel.thread_state server = Types.Zombie
    && not (List.exists (fun (th, _) -> th == server) (Kernel.failures k)));
  checki "reply dropped" 1 !dropped;
  check (Alcotest.list Alcotest.string) "invariants clean" []
    (Kernel.check_invariants k)

let test_kill_during_cond_wait_reacquires () =
  let k = rr_kernel () in
  let m = Kernel.create_mutex k "m" in
  let c = Kernel.create_condition k "c" in
  let waiter =
    Kernel.spawn k ~name:"waiter" (fun () ->
        Api.with_lock m (fun () -> Api.wait c m))
  in
  ignore (Kernel.run k ~until:(Time.ms 10));
  checkb "parked on the condition" true (Kernel.thread_state waiter = Types.Blocked);
  Kernel.kill k waiter;
  ignore (Kernel.run k ~until:(Time.seconds 1));
  (* POSIX cancellation semantics: the mutex is reacquired before Killed
     propagates, so with_lock's cleanup unlocks cleanly and the thread dies
     with Killed — not Invalid_argument from unlocking an unowned mutex *)
  (match Kernel.failures k with
  | [ (th, Types.Killed) ] -> checkb "died with Killed" true (th == waiter)
  | fs ->
      Alcotest.failf "expected Killed, got %s"
        (String.concat ","
           (List.map (fun (_, e) -> Printexc.to_string e) fs)));
  checkb "mutex free again" true (m.Types.owner = None);
  check (Alcotest.list Alcotest.string) "invariants clean" []
    (Kernel.check_invariants k)

let test_dying_lock_owner_hands_off () =
  let k = rr_kernel () in
  let m = Kernel.create_mutex k "m" in
  (* no with_lock: the holder dies without running any cleanup *)
  let holder =
    Kernel.spawn k ~name:"holder" (fun () ->
        Api.lock m;
        Api.sleep (Time.ms 200);
        Api.unlock m)
  in
  let got_it = ref false in
  ignore
    (Kernel.spawn k ~name:"waiter" (fun () ->
         Api.with_lock m (fun () -> got_it := true)));
  ignore (Kernel.run k ~until:(Time.ms 10));
  Kernel.kill k holder;
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checkb "waiter got the orphaned mutex" true !got_it;
  checkb "mutex free at the end" true (m.Types.owner = None);
  check (Alcotest.list Alcotest.string) "invariants clean" []
    (Kernel.check_invariants k)

let test_stale_timer_idle_accounting () =
  let k = rr_kernel () in
  let sleeper = Kernel.spawn k ~name:"sleeper" (fun () -> Api.sleep (Time.ms 500)) in
  let s1 = Kernel.run k ~until:(Time.ms 10) in
  checki "idle up to the first horizon" (Time.ms 10) s1.idle_ticks;
  Kernel.kill k sleeper;
  (* the dead sleeper's timer entry must not pull the clock to 500 ms or
     count phantom idle time *)
  let s2 = Kernel.run k ~until:(Time.seconds 2) in
  checki "clock did not chase the stale timer" (Time.ms 10) s2.ended_at;
  checki "no phantom idle" (Time.ms 10) s2.idle_ticks;
  checkb "not a deadlock" true (not s2.deadlocked)

let test_check_invariants_clean_on_healthy_kernel () =
  let k = rr_kernel ~quantum:(Time.ms 10) () in
  let m = Kernel.create_mutex k "m" in
  let sm = Kernel.create_semaphore k ~initial:1 "s" in
  let p = Kernel.create_port k ~name:"svc" in
  ignore
    (Kernel.spawn k ~name:"server" (fun () ->
         for _ = 1 to 3 do
           let msg = Api.receive p in
           Api.reply msg "ok"
         done));
  for i = 1 to 3 do
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "w%d" i) (fun () ->
           Api.with_lock m (fun () -> Api.compute_ms 5);
           Api.sem_wait sm;
           ignore (Api.rpc p "hi");
           Api.sem_post sm))
  done;
  (* audit mid-flight at every scheduling boundary, then once at the end *)
  let worst = ref [] in
  Kernel.set_pre_select k
    (Some
       (fun () ->
         match Kernel.check_invariants k with
         | [] -> ()
         | vs -> if !worst = [] then worst := vs));
  ignore (Kernel.run k ~until:(Time.seconds 1));
  check (Alcotest.list Alcotest.string) "mid-run audits clean" [] !worst;
  check (Alcotest.list Alcotest.string) "final audit clean" []
    (Kernel.check_invariants k);
  checkb "workload actually finished" true (Kernel.failures k = [])

let test_check_invariants_reports_corruption () =
  let k = rr_kernel () in
  let m = Kernel.create_mutex k "m" in
  let violations_seen = ref 0 in
  ignore
    (Obs.Bus.subscribe ~name:"viol-probe" (Kernel.bus k) (fun _ ev ->
         match ev with
         | Obs.Event.Invariant_violation _ -> incr violations_seen
         | _ -> ()));
  let ghost = Kernel.spawn k ~name:"ghost" (fun () -> ()) in
  ignore (Kernel.run k ~until:(Time.ms 10));
  checkb "ghost is a zombie" true (Kernel.thread_state ghost = Types.Zombie);
  (* corrupt the kernel on purpose: a dead thread on a waiter list must be
     REPORTED by the auditor — returned and published — not crashed on *)
  m.Types.lock_waiters <- [ ghost ];
  let vs = Kernel.check_invariants k in
  checkb "corruption detected" true (vs <> []);
  checkb "violation published on the bus" true (!violations_seen > 0);
  m.Types.lock_waiters <- [];
  check (Alcotest.list Alcotest.string) "clean after repair" []
    (Kernel.check_invariants k)

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "min ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo on equal keys" `Quick test_heap_fifo_on_ties;
          Alcotest.test_case "growth and peek" `Quick test_heap_growth;
        ] );
      ("time", [ Alcotest.test_case "unit conversions" `Quick test_time_units ]);
      ( "execution",
        [
          Alcotest.test_case "compute accounting" `Quick test_compute_accounting;
          Alcotest.test_case "quantum preemption" `Quick test_quantum_preemption_interleaves;
          Alcotest.test_case "one decision per quantum" `Quick test_slice_count;
          Alcotest.test_case "sleep wakes on time" `Quick test_sleep_wakes_on_time;
          Alcotest.test_case "sleep 0" `Quick test_sleep_zero;
          Alcotest.test_case "now and self" `Quick test_now_and_self;
          Alcotest.test_case "spawn from inside" `Quick test_spawn_from_inside;
          Alcotest.test_case "yield rotates" `Quick test_yield_rotates;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "response includes service time" `Quick
            test_rpc_response_time_includes_service;
          Alcotest.test_case "queue is fifo" `Quick test_rpc_queue_is_fifo;
          Alcotest.test_case "workers serve in parallel" `Quick
            test_rpc_multiple_workers_parallel;
          Alcotest.test_case "message metadata" `Quick test_message_metadata;
          Alcotest.test_case "poll_receive" `Quick test_poll_receive;
          Alcotest.test_case "rpc after server killed" `Quick test_rpc_after_server_killed;
          Alcotest.test_case "rpc_many gathers in order" `Quick
            test_rpc_many_gathers_in_order;
          Alcotest.test_case "rpc_many rejects empty" `Quick test_rpc_many_empty_rejected;
        ] );
      ( "mutex",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_mutex_mutual_exclusion;
          Alcotest.test_case "fifo policy order" `Quick test_mutex_fifo_policy;
          Alcotest.test_case "with_lock exception safety" `Quick
            test_with_lock_releases_on_exception;
          Alcotest.test_case "unlock by non-owner fails the thread" `Quick
            test_unlock_not_owner_fails_thread;
        ] );
      ( "synchronization",
        [
          Alcotest.test_case "condition producer/consumer" `Quick
            test_condition_producer_consumer;
          Alcotest.test_case "wait releases the mutex" `Quick
            test_condition_wait_releases_mutex;
          Alcotest.test_case "broadcast wakes all" `Quick test_broadcast_wakes_all;
          Alcotest.test_case "signal without waiters" `Quick
            test_signal_no_waiters_is_noop;
          Alcotest.test_case "semaphore counting" `Quick test_semaphore_counting;
          Alcotest.test_case "semaphore blocks at zero" `Quick
            test_semaphore_zero_initial_blocks;
        ] );
      ( "join-kill",
        [
          Alcotest.test_case "join waits for exit" `Quick test_join_waits_for_exit;
          Alcotest.test_case "join on zombie" `Quick test_join_already_dead;
          Alcotest.test_case "self-join rejected" `Quick test_join_self_rejected;
          Alcotest.test_case "join transfers funding" `Quick test_join_funds_target;
          Alcotest.test_case "kill a blocked thread" `Quick test_kill_blocked_thread;
          Alcotest.test_case "kill runs lock cleanup" `Quick
            test_kill_releases_lock_via_cleanup;
          Alcotest.test_case "Killed is catchable" `Quick test_kill_survivable;
          Alcotest.test_case "killing a sleeper leaves no zombie wakeups" `Quick
            test_kill_sleeping_thread_timer_harmless;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "body exception recorded" `Quick test_body_exception_recorded;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "run is resumable" `Quick test_run_resumable;
          Alcotest.test_case "horizon mid-compute" `Quick test_horizon_mid_compute;
          Alcotest.test_case "deterministic traces" `Quick test_determinism_trace;
          Alcotest.test_case "timeline records shares" `Quick
            test_timeline_records_shares;
          Alcotest.test_case "timeline empty" `Quick test_timeline_empty;
          Alcotest.test_case "api outside kernel" `Quick test_api_outside_thread_rejected;
          Alcotest.test_case "find and list threads" `Quick test_find_thread_and_listing;
          Alcotest.test_case "validation and accessors" `Quick
            test_kernel_validation_and_accessors;
          Alcotest.test_case "compute 0 and negative" `Quick
            test_compute_zero_and_negative;
          Alcotest.test_case "semaphore validation" `Quick test_semaphore_validation;
        ] );
      ( "kill-reply",
        [
          Alcotest.test_case "duplicate names: first-created wins" `Quick
            test_find_thread_duplicate_names;
          Alcotest.test_case "reply after kill is a traced no-op" `Quick
            test_reply_after_kill_is_traced_noop;
          Alcotest.test_case "scatter reply after kill" `Quick
            test_reply_after_kill_scatter;
          Alcotest.test_case "reply to queued message from dead sender" `Quick
            test_reply_to_queued_message_from_dead_sender;
          Alcotest.test_case "kill during cond wait reacquires mutex" `Quick
            test_kill_during_cond_wait_reacquires;
          Alcotest.test_case "dying lock owner hands off" `Quick
            test_dying_lock_owner_hands_off;
          Alcotest.test_case "stale timer idle accounting" `Quick
            test_stale_timer_idle_accounting;
          Alcotest.test_case "invariants clean on healthy kernel" `Quick
            test_check_invariants_clean_on_healthy_kernel;
          Alcotest.test_case "invariants report corruption" `Quick
            test_check_invariants_reports_corruption;
        ] );
    ]
