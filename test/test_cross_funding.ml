(* One currency, many resources: the same Funding.currency proportionally
   funds a CPU thread (Lottery_sched) and a disk client (Disk), and a single
   ticket inflation shifts both shares at once, with no re-registration of
   either consumer.

   This is the tentpole property of the unified draw/funding stack: resource
   rights are denominated once and spent everywhere. *)

open Core

let checkb = Alcotest.check Alcotest.bool

let in_range msg lo hi x =
  if x < lo || x > hi then
    Alcotest.failf "%s: %.3f outside [%.2f, %.2f]" msg x lo hi;
  checkb msg true true

let test_currency_funds_cpu_and_disk () =
  let rng = Rng.create ~algo:Splitmix64 ~seed:2024 () in
  let ls = Lottery_sched.create ~rng () in
  let k = Kernel.create ~sched:(Lottery_sched.sched ls) () in
  let sys = Lottery_sched.funding ls in
  let base = Lottery_sched.base_currency ls in

  (* alice = 600.base, bob = 300.base *)
  let alice = Lottery_sched.make_currency ls "alice" in
  let bob = Lottery_sched.make_currency ls "bob" in
  let alice_backing =
    Lottery_sched.fund_currency ls ~target:alice ~amount:600 ~from:base
  in
  ignore (Lottery_sched.fund_currency ls ~target:bob ~amount:300 ~from:base);

  (* each currency funds one compute-bound thread... *)
  let spin name =
    Kernel.spawn k ~name (fun () ->
        while true do
          Api.compute (Time.ms 1)
        done)
  in
  let a_thr = spin "a-cpu" and b_thr = spin "b-cpu" in
  ignore (Lottery_sched.fund_thread ls a_thr ~amount:100 ~from:alice);
  ignore (Lottery_sched.fund_thread ls b_thr ~amount:100 ~from:bob);

  (* ... and one disk client, against the same funding system *)
  let drng = Rng.create ~algo:Splitmix64 ~seed:2025 () in
  let disk = Disk.create ~policy:Disk.Lottery ~funding:sys ~rng:drng () in
  let a_dsk = Disk.add_funded_client disk ~name:"a-disk" ~currency:alice () in
  let b_dsk = Disk.add_funded_client disk ~name:"b-disk" ~currency:bob () in

  let cyl = ref 0 in
  let top_up c =
    while Disk.pending disk c < 8 do
      cyl := (!cyl + 37) mod 1000;
      Disk.submit disk c ~cylinder:!cyl
    done
  in
  (* interleave CPU quanta and disk slots in one simulation; return the
     per-consumer deltas accrued during the phase *)
  let run_phase ~serves =
    let cpu_a0 = Kernel.cpu_time a_thr and cpu_b0 = Kernel.cpu_time b_thr in
    let dsk_a0 = Disk.served disk a_dsk and dsk_b0 = Disk.served disk b_dsk in
    for _ = 1 to serves do
      top_up a_dsk;
      top_up b_dsk;
      ignore (Disk.serve_one disk);
      ignore (Kernel.run k ~until:(Kernel.now k + Time.ms 20))
    done;
    ( float_of_int (Kernel.cpu_time a_thr - cpu_a0),
      float_of_int (Kernel.cpu_time b_thr - cpu_b0),
      float_of_int (Disk.served disk a_dsk - dsk_a0),
      float_of_int (Disk.served disk b_dsk - dsk_b0) )
  in

  (* phase 1: alice:bob = 600:300, so both resources split 2:1 *)
  let cpu_a, cpu_b, dsk_a, dsk_b = run_phase ~serves:500 in
  in_range "cpu ratio a/b ~ 2" 1.6 2.5 (cpu_a /. cpu_b);
  in_range "disk ratio a/b ~ 2" 1.6 2.5 (dsk_a /. dsk_b);

  (* one ticket inflation — alice's backing drops 600 -> 150 — must shift
     CPU and disk together, with no consumer re-registered *)
  Lottery_sched.set_ticket_amount ls alice_backing 150;
  let cpu_a', cpu_b', dsk_a', dsk_b' = run_phase ~serves:500 in
  in_range "cpu ratio a/b ~ 1/2 after inflation" 0.38 0.66 (cpu_a' /. cpu_b');
  in_range "disk ratio a/b ~ 1/2 after inflation" 0.38 0.66 (dsk_a' /. dsk_b')

let test_idle_disk_share_reconcentrates () =
  (* while a currency's disk client has nothing queued, its held ticket is
     suspended, so the full currency value backs the CPU thread again *)
  let rng = Rng.create ~algo:Splitmix64 ~seed:7 () in
  let ls = Lottery_sched.create ~rng () in
  let k = Kernel.create ~sched:(Lottery_sched.sched ls) () in
  let sys = Lottery_sched.funding ls in
  let base = Lottery_sched.base_currency ls in
  let alice = Lottery_sched.make_currency ls "alice" in
  ignore (Lottery_sched.fund_currency ls ~target:alice ~amount:400 ~from:base);
  let thr =
    Kernel.spawn k ~name:"cpu" (fun () ->
        while true do
          Api.compute (Time.ms 1)
        done)
  in
  ignore (Lottery_sched.fund_thread ls thr ~amount:100 ~from:alice);
  let drng = Rng.create ~algo:Splitmix64 ~seed:8 () in
  let disk = Disk.create ~policy:Disk.Lottery ~funding:sys ~rng:drng () in
  let c = Disk.add_funded_client disk ~name:"stream" ~amount:300 ~currency:alice () in
  ignore (Kernel.run k ~until:(Time.ms 5));
  let idle_value = Lottery_sched.thread_value ls thr in
  (* queued work activates the disk ticket: the thread now gets 100/400 of
     alice instead of all of it *)
  Disk.submit disk c ~cylinder:10;
  ignore (Kernel.run k ~until:(Time.ms 10));
  let contended_value = Lottery_sched.thread_value ls thr in
  in_range "idle: thread holds the whole currency" 390. 410. idle_value;
  in_range "backlogged: thread holds 100/400 of it" 90. 110. contended_value;
  (* drain the queue: the share re-concentrates without any explicit call *)
  ignore (Disk.serve_one disk);
  ignore (Kernel.run k ~until:(Time.ms 15));
  in_range "drained: share re-concentrates" 390. 410.
    (Lottery_sched.thread_value ls thr)

let () =
  Alcotest.run "cross-funding"
    [
      ( "one currency, many resources",
        [
          Alcotest.test_case "currency funds CPU and disk; inflation shifts both"
            `Slow test_currency_funds_cpu_and_disk;
          Alcotest.test_case "idle disk share re-concentrates on the CPU" `Quick
            test_idle_disk_share_reconcentrates;
        ] );
    ]
