(* Tests for Lotto_chaos: deterministic fault injection, the combined
   invariant audit, and the soak driver. *)

open Core
module Plan = Chaos.Plan
module Injector = Chaos.Injector
module Scenarios = Chaos.Scenarios
module Soak = Chaos.Soak

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* --- plans ----------------------------------------------------------------- *)

let test_plan_validation () =
  Plan.validate Plan.default;
  Plan.validate Plan.none;
  Plan.validate Plan.aggressive;
  Alcotest.check_raises "probability out of range"
    (Invalid_argument "Plan: kill_prob = 1.5 not in [0,1]") (fun () ->
      Plan.validate { Plan.default with kill_prob = 1.5 });
  Alcotest.check_raises "negative budget"
    (Invalid_argument "Plan: max_kills < 0") (fun () ->
      Plan.validate { Plan.default with max_kills = -1 })

(* --- determinism ----------------------------------------------------------- *)

let fault_log sc seed =
  let o = Soak.run_one sc ~seed in
  o.Soak.faults

let test_injector_deterministic () =
  List.iter
    (fun sc ->
      let a = fault_log sc 7 and b = fault_log sc 7 in
      checkb
        (Printf.sprintf "%s: same seed, same fault log" sc.Scenarios.name)
        true (a = b))
    Scenarios.all

let test_seeds_differ () =
  (* not a hard guarantee per-scenario, but across five scenarios two seeds
     must not produce five identical fault logs *)
  let logs seed = List.map (fun sc -> fault_log sc seed) Scenarios.all in
  checkb "seed changes the fault sequence" true (logs 1 <> logs 2)

let test_plan_none_injects_nothing () =
  List.iter
    (fun sc ->
      let o = Soak.run_one ~plan:Plan.none sc ~seed:5 in
      checkb
        (Printf.sprintf "%s: no faults under Plan.none" sc.Scenarios.name)
        true (o.Soak.faults = []);
      checkb
        (Printf.sprintf "%s: clean run" sc.Scenarios.name)
        false (Soak.failed o))
    Scenarios.all

let test_fault_events_published () =
  (* wire a kernel by hand so we can subscribe before the run *)
  let sc = Scenarios.mutex in
  let rng = Rng.create ~seed:11 () in
  let inj_rng = Rng.split rng in
  let ls = Lottery_sched.create ~rng () in
  let k = Kernel.create ~sched:(Lottery_sched.sched ls) () in
  let seen = ref 0 in
  ignore
    (Obs.Bus.subscribe ~name:"fault-probe" (Kernel.bus k) (fun _ ev ->
         match ev with Obs.Event.Fault_injected _ -> incr seen | _ -> ()));
  let inj =
    Injector.create ~plan:Plan.aggressive ~rng:inj_rng ~kernel:k ()
  in
  Kernel.set_pre_select k (Some (fun () -> Injector.step inj));
  sc.Scenarios.build
    { Scenarios.kernel = k; ls; point = (fun () -> Injector.point inj) };
  ignore (Kernel.run k ~until:sc.Scenarios.horizon);
  checkb "faults were injected" true (Injector.faults inj <> []);
  checki "every fault published on the bus" (List.length (Injector.faults inj))
    !seen

(* --- the soak -------------------------------------------------------------- *)

let test_soak_200_seeds_audited () =
  (* the acceptance soak: >= 200 audited runs across all scenarios *)
  let seeds = Soak.seed_range ~from:0 ~count:40 in
  let r = Soak.soak ~audit:true ~seeds () in
  checki "40 seeds x 6 scenarios" 240 r.Soak.runs;
  (match Soak.first_failure r with
  | None -> ()
  | Some (sc, seed) ->
      Alcotest.failf "soak failed: scenario=%s seed=%d\n%s" sc seed
        (Soak.report_to_string r));
  checkb "report prints clean" true
    (r.Soak.failures = [] && Soak.report_to_string r <> "")

let test_soak_catches_reintroduced_bug () =
  (* reintroduce the historical reply-after-kill bug and prove the soak
     REPORTS it (a failure with a repro pair), rather than crashing *)
  let seeds = Soak.seed_range ~from:0 ~count:30 in
  let r = Soak.soak ~scenarios:[ Scenarios.rpc_buggy ] ~seeds () in
  (match Soak.first_failure r with
  | Some (sc, seed) ->
      check Alcotest.string "repro names the buggy scenario" "rpc-buggy" sc;
      (* the reported pair must actually reproduce *)
      (match Scenarios.find sc with
      | None -> Alcotest.fail "reported scenario not found"
      | Some scen ->
          let o = Soak.run_one scen ~seed in
          checkb "repro pair reproduces the failure" true (Soak.failed o);
          checkb "failure names the server exception" true
            (List.exists
               (fun (_, e) ->
                 let is_sub sub s =
                   let n = String.length sub and m = String.length s in
                   let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
                   go 0
                 in
                 is_sub "not awaiting a reply" e)
               o.Soak.thread_failures))
  | None ->
      Alcotest.fail "soak missed the deliberately reintroduced bug");
  checkb "failing runs listed in the report" true
    (r.Soak.failures <> [] && Soak.report_to_string r <> "")

let test_span_audit_in_soak () =
  (* every chaos run now carries a span tracer: RPC-heavy scenarios must
     account for every request — closed, dropped or orphan-flagged, never
     leaked — even with kills flying *)
  let o = Soak.run_one Scenarios.rpc ~seed:3 in
  checkb "clean run" false (Soak.failed o);
  let st = o.Soak.span_stats in
  checkb "spans were traced" true (st.Lotto_obs.Span.st_total > 0);
  checki "no span left open after finalize" 0 st.st_open;
  checki "every span accounted for" st.st_total
    (st.st_closed + st.st_dropped + st.st_orphaned)

let test_span_soak_200_seeds () =
  (* the acceptance soak for span tracing: 200 seeds over the RPC and
     scatter scenarios, kills and all; any structural span violation is a
     run failure, and every opened span must be accounted for *)
  let seeds = Soak.seed_range ~from:0 ~count:200 in
  List.iter
    (fun sc ->
      let r = Soak.soak ~scenarios:[ sc ] ~seeds () in
      (match Soak.first_failure r with
      | None -> ()
      | Some (name, seed) ->
          Alcotest.failf "span soak failed: scenario=%s seed=%d\n%s" name seed
            (Soak.report_to_string r));
      checki
        (Printf.sprintf "%s: 200 runs" sc.Scenarios.name)
        200 r.Soak.runs)
    [ Scenarios.rpc; Scenarios.scatter ]

let test_service_scenario_soak () =
  (* the bounded-port service scenario: 200 seeds of kills landing in a
     worker pool with drop-oldest shedding. Shed accounting (every request
     served or shed, checked inside the scenario's clients) and span
     well-formedness (every span closed, dropped or orphaned — shed spans
     land as Dropped) must survive every fault schedule *)
  let seeds = Soak.seed_range ~from:0 ~count:200 in
  let r = Soak.soak ~audit:true ~scenarios:[ Scenarios.service ] ~seeds () in
  (match Soak.first_failure r with
  | None -> ()
  | Some (name, seed) ->
      Alcotest.failf "service soak failed: scenario=%s seed=%d\n%s" name seed
        (Soak.report_to_string r));
  checki "200 runs" 200 r.Soak.runs;
  let o = Soak.run_one Scenarios.service ~seed:11 in
  checkb "clean single run" false (Soak.failed o);
  let st = o.Soak.span_stats in
  checkb "spans traced" true (st.Lotto_obs.Span.st_total > 0);
  checki "no span leaked" st.st_total
    (st.st_closed + st.st_dropped + st.st_orphaned)

let test_soak_multi_cpu () =
  (* the sharded scheduler under fault injection, with the combined audit
     (kernel + funding + sharding) at every boundary *)
  let seeds = Soak.seed_range ~from:0 ~count:10 in
  List.iter
    (fun cpus ->
      let r = Soak.soak ~audit:true ~cpus ~seeds () in
      checki (Printf.sprintf "%d-cpu: 10 seeds x 6 scenarios" cpus) 60 r.Soak.runs;
      match Soak.first_failure r with
      | None -> ()
      | Some (sc, seed) ->
          Alcotest.failf "%d-cpu soak failed: scenario=%s seed=%d\n%s" cpus sc
            seed (Soak.report_to_string r))
    [ 2; 4 ]

let test_multi_cpu_outcome_reproducible () =
  let sc = Scenarios.scatter in
  let a = Soak.run_one ~cpus:4 sc ~seed:23 and b = Soak.run_one ~cpus:4 sc ~seed:23 in
  checkb "identical 4-cpu outcomes" true
    (a.Soak.faults = b.Soak.faults
    && a.Soak.violations = b.Soak.violations
    && a.Soak.thread_failures = b.Soak.thread_failures
    && a.Soak.summary = b.Soak.summary)

let test_outcome_reproducible_end_to_end () =
  (* full outcome equality, not just fault logs *)
  let sc = Scenarios.scatter in
  let a = Soak.run_one sc ~seed:23 and b = Soak.run_one sc ~seed:23 in
  checkb "identical outcomes" true
    (a.Soak.faults = b.Soak.faults
    && a.Soak.violations = b.Soak.violations
    && a.Soak.thread_failures = b.Soak.thread_failures
    && a.Soak.summary = b.Soak.summary)

let test_scenario_lookup () =
  checkb "rpc found" true (Scenarios.find "rpc" <> None);
  checkb "rpc-buggy found" true (Scenarios.find "rpc-buggy" <> None);
  checkb "unknown rejected" true (Scenarios.find "nope" = None);
  checkb "service found" true (Scenarios.find "service" <> None);
  checki "six healthy scenarios" 6 (List.length Scenarios.all)

let () =
  Alcotest.run "chaos"
    [
      ( "plan",
        [ Alcotest.test_case "validation" `Quick test_plan_validation ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same faults" `Quick
            test_injector_deterministic;
          Alcotest.test_case "different seeds differ" `Quick test_seeds_differ;
          Alcotest.test_case "Plan.none injects nothing" `Quick
            test_plan_none_injects_nothing;
          Alcotest.test_case "faults published on the bus" `Quick
            test_fault_events_published;
          Alcotest.test_case "outcome reproducible end to end" `Quick
            test_outcome_reproducible_end_to_end;
        ] );
      ( "soak",
        [
          Alcotest.test_case "200 audited seeded runs pass" `Slow
            test_soak_200_seeds_audited;
          Alcotest.test_case "span audit rides every run" `Quick
            test_span_audit_in_soak;
          Alcotest.test_case "200-seed span soak over rpc scenarios" `Slow
            test_span_soak_200_seeds;
          Alcotest.test_case "200-seed service scenario soak (shed + spans)"
            `Slow test_service_scenario_soak;
          Alcotest.test_case "catches a reintroduced reply-after-kill bug"
            `Quick test_soak_catches_reintroduced_bug;
          Alcotest.test_case "multi-cpu soak (2 and 4 cpus, sharding audit)"
            `Quick test_soak_multi_cpu;
          Alcotest.test_case "4-cpu outcome reproducible" `Quick
            test_multi_cpu_outcome_reproducible;
          Alcotest.test_case "scenario lookup" `Quick test_scenario_lookup;
        ] );
    ]
