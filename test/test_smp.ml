(* Multi-CPU kernel and sharded lottery scheduling: shard-tree unit tests,
   zero-alloc readd, N-CPU pinned-placement equivalence with the 1-CPU
   schedule, per-shard and aggregate fairness, deterministic replay, and
   the sharding audits. *)

open Core

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string
let checkf = check (Alcotest.float 1e-9)

(* --- shard tree -------------------------------------------------------------- *)

let test_shard_tree_basic () =
  let t = Shard_tree.create ~shards:4 in
  checki "shards" 4 (Shard_tree.shards t);
  checkf "empty total" 0. (Shard_tree.total t);
  Shard_tree.set t 0 3.;
  Shard_tree.set t 1 1.;
  Shard_tree.set t 3 2.;
  checkf "total" 6. (Shard_tree.total t);
  checkf "get 0" 3. (Shard_tree.get t 0);
  checkf "get 2" 0. (Shard_tree.get t 2);
  Shard_tree.set t 0 1.;
  checkf "total after rewrite" 4. (Shard_tree.total t);
  checki "max" 3 (Shard_tree.max_shard t);
  checki "min (lowest id wins ties)" 2 (Shard_tree.min_shard t)

let test_shard_tree_pick () =
  let t = Shard_tree.create ~shards:3 in
  checki "pick on empty" (-1) (Shard_tree.pick t ~u:0.5);
  Shard_tree.set t 0 1.;
  Shard_tree.set t 1 2.;
  Shard_tree.set t 2 1.;
  (* cumulative masses: [0,1) -> 0, [1,3) -> 1, [3,4) -> 2 *)
  checki "low u" 0 (Shard_tree.pick t ~u:0.1);
  checki "middle u" 1 (Shard_tree.pick t ~u:0.5);
  checki "high u" 2 (Shard_tree.pick t ~u:0.99);
  (* zero-mass shards are never picked, even at the boundary *)
  Shard_tree.set t 1 0.;
  for i = 0 to 99 do
    let u = float_of_int i /. 100. in
    checkb "never the empty shard" true (Shard_tree.pick t ~u <> 1)
  done

let test_shard_tree_non_power_of_two () =
  let t = Shard_tree.create ~shards:3 in
  Shard_tree.set t 2 5.;
  checkf "last real leaf" 5. (Shard_tree.get t 2);
  checkf "total ignores padding" 5. (Shard_tree.total t);
  checki "pick lands on it" 2 (Shard_tree.pick t ~u:0.5)

(* --- readd: the zero-alloc migration primitive ------------------------------- *)

let test_readd_roundtrip () =
  let modes =
    [
      ("list", Draw.List);
      ("tree", Draw.Tree);
      ("cumul", Draw.Cumul);
      ("alias", Draw.Alias);
    ]
  in
  List.iter
    (fun (name, mode) ->
      let d = Draw.of_mode mode in
      let a = Draw.add d ~client:"a" ~weight:1. in
      let b = Draw.add d ~client:"b" ~weight:2. in
      Draw.remove d b;
      checkb (name ^ ": removed not mem") false (Draw.mem d b);
      checkb (name ^ ": live still mem") true (Draw.mem d a);
      Draw.readd d b ~weight:3.;
      checkb (name ^ ": readded mem") true (Draw.mem d b);
      checki (name ^ ": size back to 2") 2 (Draw.size d);
      checkf (name ^ ": total reflects new weight") 4. (Draw.total d);
      Alcotest.check_raises
        (name ^ ": readd of a live handle rejected")
        (Invalid_argument
           (match mode with
           | Draw.List -> "List_lottery.readd: handle still live"
           | Draw.Tree -> "Tree_lottery.readd: handle still live"
           | Draw.Cumul -> "Cumul_lottery.readd: handle still live"
           | Draw.Alias -> "Alias_lottery.readd: handle still live"
           | _ -> assert false))
        (fun () -> Draw.readd d b ~weight:1.))
    modes

let test_readd_cross_structure () =
  (* the actual migration pattern: remove from one shard draw, readd into
     another, with the same handle record *)
  let src = Draw.of_mode Draw.Tree and dst = Draw.of_mode Draw.Tree in
  let h = Draw.add src ~client:42 ~weight:5. in
  Draw.remove src h;
  Draw.readd dst h ~weight:5.;
  checkb "gone from src" false (Draw.mem src h);
  checkb "live in dst" true (Draw.mem dst h);
  checki "dst sees it" 42 (Draw.client h);
  let rng = Rng.create ~seed:7 () in
  checki "drawable in dst" 42
    (match Draw.draw_client dst rng with Some c -> c | None -> -1)

(* --- multi-CPU kernel + sharded scheduler ------------------------------------ *)

let sharded_kernel ?placement ?(migration = true) ~shards ~cpus ~seed () =
  let rng = Rng.create ~seed () in
  let ls = Lottery_sched.create ~mode:Tree_mode ~shards ~rng () in
  Lottery_sched.set_migration_enabled ls migration;
  (match placement with
  | Some f -> Lottery_sched.set_placement_hook ls (Some f)
  | None -> ());
  (Kernel.create ~cpus ~sched:(Lottery_sched.sched ls) (), ls)

let spin k name =
  Kernel.spawn k ~name (fun () ->
      while true do
        Api.compute (Time.ms 1)
      done)

let test_smp_throughput_and_shares () =
  let k, ls = sharded_kernel ~shards:4 ~cpus:4 ~seed:42 () in
  let base = Lottery_sched.base_currency ls in
  let threads =
    List.init 32 (fun i ->
        let th = spin k (Printf.sprintf "t%02d" i) in
        ignore
          (Lottery_sched.fund_thread ls th ~amount:(100 * (1 + (i mod 4))) ~from:base);
        th)
  in
  let horizon = Time.seconds 100 in
  ignore (Kernel.run k ~until:horizon);
  let total = List.fold_left (fun a th -> a + Kernel.cpu_time th) 0 threads in
  checki "4 CPUs deliver 4x virtual time" (4 * horizon) total;
  for c = 0 to 3 do
    checki "every cpu reached the horizon" horizon (Kernel.cpu_clock k c)
  done;
  checkb "rebalancing happened" true (Lottery_sched.migrations ls > 0);
  check (Alcotest.list Alcotest.string) "sharding audit clean" []
    (Lottery_sched.check_sharding ls);
  check (Alcotest.list Alcotest.string) "kernel audit clean" []
    (Kernel.check_invariants k);
  (* aggregate proportional share across all 4 CPUs *)
  let observed =
    Array.of_list (List.map (fun th -> Kernel.cpu_time th / Time.ms 100) threads)
  in
  let weights =
    Array.init 32 (fun i -> float_of_int (100 * (1 + (i mod 4))))
  in
  checkb "aggregate chi-square (p >= 0.01)" true
    (Chi_square.goodness_of_fit ~alpha:0.01 ~observed ~weights ())

let test_smp_per_shard_fairness_churny () =
  (* Pin threads round-robin (migration off) so shard membership is stable.
     The measured threads are pure spinners — a thread asleep does not
     compete, so mixing sleeps into the measured set would legitimately
     skew service away from tickets (compensation covers partial quanta,
     not absence). Dedicated lightly-funded churners beside them keep every
     shard's draw membership turning over block/wake constantly. *)
  let shards = 4 in
  let k, ls =
    sharded_kernel
      ~placement:(fun th -> Kernel.thread_id th mod shards)
      ~migration:false ~shards ~cpus:shards ~seed:1234 ()
  in
  let base = Lottery_sched.base_currency ls in
  let per_shard = 6 in
  (* each shard gets the same ticket multiset {100;200;300} x2 *)
  let threads =
    List.init (shards * per_shard) (fun i ->
        let amount = 100 * (1 + (i mod 3)) in
        let th = spin k (Printf.sprintf "s%02d" i) in
        ignore (Lottery_sched.fund_thread ls th ~amount ~from:base);
        (th, amount))
  in
  for i = 0 to (2 * shards) - 1 do
    let th =
      Kernel.spawn k ~name:(Printf.sprintf "churn%d" i) (fun () ->
          while true do
            Api.compute (Time.ms 10);
            Api.sleep (Time.ms 30)
          done)
    in
    ignore (Lottery_sched.fund_thread ls th ~amount:50 ~from:base)
  done;
  ignore (Kernel.run k ~until:(Time.seconds 600));
  checki "no migrations when pinned" 0 (Lottery_sched.migrations ls);
  check (Alcotest.list Alcotest.string) "sharding audit clean" []
    (Lottery_sched.check_sharding ls);
  let fairness msg group =
    let observed =
      Array.of_list
        (List.map (fun (th, _) -> Kernel.cpu_time th / Time.ms 100) group)
    in
    let weights =
      Array.of_list (List.map (fun (_, a) -> float_of_int a) group)
    in
    checkb msg true (Chi_square.goodness_of_fit ~alpha:0.01 ~observed ~weights ())
  in
  for s = 0 to shards - 1 do
    let group =
      List.filter (fun (th, _) -> Lottery_sched.shard_of ls th = s) threads
    in
    checki (Printf.sprintf "shard %d population" s) per_shard (List.length group);
    fairness (Printf.sprintf "shard %d chi-square (p >= 0.01)" s) group
  done;
  fairness "aggregate chi-square (p >= 0.01)" threads

let trace_of ~cpus ~shards ~pin ~seed ~horizon =
  let k, ls =
    sharded_kernel
      ?placement:(if pin then Some (fun _ -> 0) else None)
      ~migration:(not pin) ~shards ~cpus ~seed ()
  in
  let base = Lottery_sched.base_currency ls in
  let buf = Buffer.create 4096 in
  Kernel.set_tracer k
    (Some (fun t line -> Buffer.add_string buf (Printf.sprintf "%d %s\n" t line)));
  List.iteri
    (fun i amount ->
      let th = spin k (Printf.sprintf "w%d" i) in
      ignore (Lottery_sched.fund_thread ls th ~amount ~from:base))
    [ 400; 300; 200; 100; 50 ];
  ignore (Kernel.run k ~until:horizon);
  Buffer.contents buf

let test_pinned_n_cpu_equals_1_cpu () =
  (* With every thread pinned to shard 0 and migration off, the extra CPUs
     only ever select on empty shards (consuming no randomness), so an
     N-CPU run must replay the 1-CPU schedule byte for byte. *)
  let horizon = Time.seconds 30 in
  let one = trace_of ~cpus:1 ~shards:1 ~pin:false ~seed:77 ~horizon in
  checkb "trace nonempty" true (String.length one > 0);
  List.iter
    (fun cpus ->
      let n = trace_of ~cpus ~shards:cpus ~pin:true ~seed:77 ~horizon in
      checks (Printf.sprintf "%d-CPU pinned trace identical" cpus) one n)
    [ 2; 4 ]

let test_pinned_equivalence_qcheck =
  (* property form across seeds and CPU counts *)
  QCheck.Test.make ~name:"pinned N-CPU schedule == 1-CPU schedule" ~count:20
    QCheck.(pair (int_range 1 10_000) (int_range 2 6))
    (fun (seed, cpus) ->
      let horizon = Time.seconds 5 in
      trace_of ~cpus:1 ~shards:1 ~pin:false ~seed ~horizon
      = trace_of ~cpus ~shards:cpus ~pin:true ~seed ~horizon)

let test_sharded_determinism () =
  (* same seed, same config, migration and stealing on -> byte-identical *)
  let run () =
    let k, ls = sharded_kernel ~shards:4 ~cpus:4 ~seed:2024 () in
    let base = Lottery_sched.base_currency ls in
    let buf = Buffer.create 4096 in
    Kernel.set_tracer k
      (Some (fun t line -> Buffer.add_string buf (Printf.sprintf "%d %s\n" t line)));
    for i = 0 to 19 do
      let th =
        Kernel.spawn k ~name:(Printf.sprintf "d%02d" i) (fun () ->
            while true do
              Api.compute (Time.ms 3);
              if i mod 3 = 0 then Api.sleep (Time.ms 20)
            done)
      in
      ignore (Lottery_sched.fund_thread ls th ~amount:(50 + (13 * i)) ~from:base)
    done;
    ignore (Kernel.run k ~until:(Time.seconds 60));
    (Buffer.contents buf, Lottery_sched.migrations ls, Lottery_sched.steals ls)
  in
  let t1, m1, s1 = run () in
  let t2, m2, s2 = run () in
  checkb "trace nonempty" true (String.length t1 > 0);
  checks "byte-identical traces" t1 t2;
  checki "migration counts agree" m1 m2;
  checki "steal counts agree" s1 s2

let test_force_migrate_and_steal () =
  let k, ls =
    sharded_kernel
      ~placement:(fun _ -> 0)
      ~migration:false ~shards:2 ~cpus:2 ~seed:5 ()
  in
  let base = Lottery_sched.base_currency ls in
  let a = spin k "a" and b = spin k "b" in
  ignore (Lottery_sched.fund_thread ls a ~amount:100 ~from:base);
  ignore (Lottery_sched.fund_thread ls b ~amount:100 ~from:base);
  ignore (Kernel.run k ~until:(Time.seconds 1));
  checki "both pinned on shard 0" 0
    (Lottery_sched.shard_of ls a + Lottery_sched.shard_of ls b);
  (* CPU 1 found nothing and stealing was off *)
  checki "no steals while disabled" 0 (Lottery_sched.steals ls);
  checkb "cpu 1 idled" true
    (Kernel.cpu_time a + Kernel.cpu_time b < 2 * Time.seconds 1);
  Lottery_sched.force_migrate ls b ~dst:1;
  checki "b moved" 1 (Lottery_sched.shard_of ls b);
  checki "move counted" 1 (Lottery_sched.migrations ls);
  check (Alcotest.list Alcotest.string) "audit clean after force_migrate" []
    (Lottery_sched.check_sharding ls);
  let t0a = Kernel.cpu_time a and t0b = Kernel.cpu_time b in
  ignore (Kernel.run k ~until:(Time.seconds 2));
  checki "full utilization once spread" (2 * Time.seconds 1)
    (Kernel.cpu_time a - t0a + (Kernel.cpu_time b - t0b));
  (* with b gone only one thread remains: a second CPU cannot conjure
     parallelism out of it (it is always dispatched before the empty CPU
     gets to steal), so exactly one CPU's worth of progress is made *)
  Lottery_sched.set_migration_enabled ls true;
  Kernel.kill k b;
  let t1a = Kernel.cpu_time a in
  ignore (Kernel.run k ~until:(Time.seconds 3));
  checki "a lone thread uses exactly one CPU" (Time.seconds 1)
    (Kernel.cpu_time a - t1a);
  check (Alcotest.list Alcotest.string) "audit clean at the end" []
    (Lottery_sched.check_sharding ls)

let fake_thread id =
  {
    Types.id;
    tslot = id;
    name = Printf.sprintf "t%d" id;
    state = Types.Runnable;
    pending = Types.Exited;
    cpu = 0;
    compensate = 1.;
    donating_to = [];
    donors = [];
    owned = [];
    failure = None;
    joiners = [];
    servicing = [];
    created_at = 0;
    exited_at = None;
  }

let test_steal_on_empty_shard () =
  (* Drive the sched callbacks directly: one funded thread pinned to shard
     0, and a select on CPU 1. Rebalancing refuses the move (a lone thread
     may not overshoot), so the empty CPU must fall back to stealing. *)
  let rng = Rng.create ~seed:99 () in
  let ls = Lottery_sched.create ~mode:Tree_mode ~shards:2 ~rng () in
  Lottery_sched.set_placement_hook ls (Some (fun _ -> 0));
  let s = Lottery_sched.sched ls in
  let a = fake_thread 0 in
  s.Types.attach a;
  ignore
    (Lottery_sched.fund_thread ls a ~amount:100
       ~from:(Lottery_sched.base_currency ls));
  checki "placed on shard 0" 0 (Lottery_sched.shard_of ls a);
  (match s.Types.select ~cpu:1 with
  | Some th -> checks "cpu 1 stole the thread" "t0" th.Types.name
  | None -> Alcotest.fail "cpu 1 idled instead of stealing");
  checki "counted as a steal" 1 (Lottery_sched.steals ls);
  checki "now on shard 1" 1 (Lottery_sched.shard_of ls a);
  check (Alcotest.list Alcotest.string) "audit clean after steal" []
    (Lottery_sched.check_sharding ls);
  (* the slice ends; the thread goes back into its new shard's draw *)
  s.Types.account a ~used:100 ~quantum:100 ~blocked:false;
  (match s.Types.select ~cpu:1 with
  | Some th -> checks "cpu 1 keeps it locally" "t0" th.Types.name
  | None -> Alcotest.fail "shard 1 lost the thread");
  checki "no second steal needed" 1 (Lottery_sched.steals ls)

let test_smp_guards () =
  let rng = Rng.create ~seed:1 () in
  let rr = Round_robin.create () in
  Alcotest.check_raises "non-smp sched rejected on 2 cpus"
    (Invalid_argument "Kernel.create: scheduler round-robin does not support cpus > 1")
    (fun () -> ignore (Kernel.create ~cpus:2 ~sched:(Round_robin.sched rr) ()));
  Alcotest.check_raises "cpus < 1 rejected"
    (Invalid_argument "Kernel.create: cpus < 1")
    (fun () ->
      let ls = Lottery_sched.create ~shards:1 ~rng () in
      ignore (Kernel.create ~cpus:0 ~sched:(Lottery_sched.sched ls) ()));
  let ls = Lottery_sched.create ~shards:2 ~rng () in
  Alcotest.check_raises "force_migrate bad shard"
    (Invalid_argument "Lottery_sched.force_migrate: bad shard")
    (fun () ->
      let k = Kernel.create ~cpus:2 ~sched:(Lottery_sched.sched ls) () in
      let a = spin k "a" in
      ignore (Kernel.run k ~until:(Time.ms 100));
      Lottery_sched.force_migrate ls a ~dst:7)

let () =
  Alcotest.run "smp"
    [
      ( "shard-tree",
        [
          Alcotest.test_case "set/get/total/min/max" `Quick test_shard_tree_basic;
          Alcotest.test_case "weighted pick" `Quick test_shard_tree_pick;
          Alcotest.test_case "non-power-of-two" `Quick
            test_shard_tree_non_power_of_two;
        ] );
      ( "readd",
        [
          Alcotest.test_case "roundtrip, all backends" `Quick test_readd_roundtrip;
          Alcotest.test_case "cross-structure migration" `Quick
            test_readd_cross_structure;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "4-CPU throughput and shares" `Quick
            test_smp_throughput_and_shares;
          Alcotest.test_case "per-shard fairness, churny" `Slow
            test_smp_per_shard_fairness_churny;
          Alcotest.test_case "pinned N-CPU == 1-CPU" `Quick
            test_pinned_n_cpu_equals_1_cpu;
          QCheck_alcotest.to_alcotest test_pinned_equivalence_qcheck;
          Alcotest.test_case "deterministic replay" `Quick test_sharded_determinism;
          Alcotest.test_case "force_migrate and steal" `Quick
            test_force_migrate_and_steal;
          Alcotest.test_case "steal on an empty shard" `Quick
            test_steal_on_empty_shard;
          Alcotest.test_case "argument guards" `Quick test_smp_guards;
        ] );
    ]
