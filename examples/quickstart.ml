(* Quickstart: proportional-share CPU control in a dozen lines.

   Three compute-bound threads are funded 3:2:1 from the base currency; a
   minute of virtual time later their CPU consumption matches the split.
   Also replays Figure 1's deterministic list lottery, and watches the run
   through the observability bus: a metrics registry summarising wins,
   quanta and latency percentiles, and a trace recorder holding the typed
   event stream.

   Run with: dune exec examples/quickstart.exe *)

open Core

let () =
  (* Figure 1: five clients holding 10, 2, 5, 1, 2 tickets; the fifteenth
     of the twenty tickets is selected, so the third client wins. *)
  let lottery = List_lottery.create ~move_to_front:false () in
  let handles =
    List.map
      (fun (name, tickets) ->
        List_lottery.add lottery ~client:name ~weight:(float_of_int tickets))
      (* the list lottery prepends, so insert in reverse to keep the
         paper's left-to-right order *)
      (List.rev [ ("c1", 10); ("c2", 2); ("c3", 5); ("c4", 1); ("c5", 2) ])
  in
  ignore handles;
  (match List_lottery.draw_with_value lottery ~winning:15. with
  | Some h ->
      Printf.printf "Figure 1 lottery: winning ticket 15 of 20 -> client %s\n"
        (List_lottery.client h)
  | None -> assert false);

  (* Proportional-share scheduling. *)
  let rng = Rng.create ~seed:42 () in
  let ls = Lottery_sched.create ~rng () in
  let kernel = Kernel.create ~sched:(Lottery_sched.sched ls) () in
  let spin name =
    Kernel.spawn kernel ~name (fun () ->
        while true do
          Api.compute (Time.ms 1)
        done)
  in
  let gold = spin "gold" and silver = spin "silver" and bronze = spin "bronze" in
  let base = Lottery_sched.base_currency ls in
  ignore (Lottery_sched.fund_thread ls gold ~amount:300 ~from:base);
  ignore (Lottery_sched.fund_thread ls silver ~amount:200 ~from:base);
  ignore (Lottery_sched.fund_thread ls bronze ~amount:100 ~from:base);

  (* observers: both subscribe to the kernel's event bus and each sees the
     full stream *)
  let metrics = Obs.Metrics.create () in
  Obs.Metrics.attach metrics (Kernel.bus kernel);
  let recorder = Obs.Recorder.create ~capacity:4096 () in
  Obs.Recorder.attach recorder (Kernel.bus kernel);

  ignore (Kernel.run kernel ~until:(Time.seconds 60));
  let total =
    List.fold_left (fun acc th -> acc + Kernel.cpu_time th) 0 [ gold; silver; bronze ]
  in
  Printf.printf "\n60 virtual seconds with a 3:2:1 allocation:\n";
  List.iter
    (fun th ->
      Printf.printf "  %-7s %4.1f%% of the CPU\n" (Kernel.thread_name th)
        (100. *. float_of_int (Kernel.cpu_time th) /. float_of_int total))
    [ gold; silver; bronze ];

  let entitled =
    List.map
      (fun th -> (Kernel.thread_id th, Lottery_sched.thread_entitlement ls th))
      [ gold; silver; bronze ]
  in
  Printf.printf "\n%s" (Obs.Metrics.summary ~entitled metrics);
  Printf.printf
    "\ntrace recorder captured %d events (newest %d kept); export with\n\
     Obs.Recorder.to_chrome_json for chrome://tracing, or run\n\
     lottosim --trace out.json on a scenario file\n"
    (Obs.Recorder.seen recorder)
    (Obs.Recorder.length recorder)
