(* Growable append-only vector: the registry representation for entities
   that are created but never destroyed (ports, mutexes, conditions,
   semaphores). O(1) amortized push, O(1) index, iteration in creation
   order with no list reversal. *)

type 'a t = { mutable items : 'a array; (* [||] until the first push *) mutable len : int }

let create () = { items = [||]; len = 0 }
let length t = t.len

let push t x =
  let cap = Array.length t.items in
  if t.len = cap then begin
    let items = Array.make (max 8 (2 * cap)) x in
    Array.blit t.items 0 items 0 t.len;
    t.items <- items
  end;
  t.items.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.items.(i)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.items.(i)
  done

let fold_left t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.items.(i)
  done;
  !acc

let exists t p =
  let i = ref 0 in
  let found = ref false in
  while (not !found) && !i < t.len do
    if p t.items.(!i) then found := true else incr i
  done;
  !found

let to_list t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := t.items.(i) :: !acc
  done;
  !acc
