(** Slot allocator for entity arenas: dense int handles, generation
    counters for ABA-safe recycling, and an intrusive live-order list that
    preserves allocation (creation) order across arbitrary interleavings of
    alloc and release.

    The allocator stores only unboxed int arrays; callers keep entity
    payloads in parallel arrays resized with {!grow_payload}.

    Generations are odd while a slot is live and even while it is vacant
    (bumped on both alloc and release), so one counter doubles as the
    liveness flag and the ABA detector: a (slot, gen) pair captured before
    a release never matches any later occupant of the slot. *)

type t

val create : ?initial_capacity:int -> unit -> t

val alloc : t -> int
(** Claim a slot (recycling the most recently vacated one first) and link
    it at the tail of the live-order list. *)

val release : t -> int -> unit
(** Vacate a live slot: unlink it, bump its generation, push it on the
    free stack. Raises [Invalid_argument] if the slot is not live. *)

val is_live : t -> int -> bool
val gen : t -> int -> int

val capacity : t -> int
(** Current slot capacity; parallel payload arrays must be kept at least
    this long (see {!grow_payload}). *)

val live_count : t -> int

val used : t -> int
(** High-water mark: slots [0 .. used-1] have been allocated at least
    once. *)

val iter_live : t -> (int -> unit) -> unit
(** Live slots in creation order. Releasing the slot being visited from
    inside the callback is safe. *)

val fold_live : t -> init:'a -> f:('a -> int -> 'a) -> 'a
val exists_live : t -> (int -> bool) -> bool

val grow_payload : t -> 'a array -> dummy:'a -> 'a array
(** [grow_payload t arr ~dummy] returns [arr] if it already covers
    [capacity t], else a copy grown to capacity with new cells set to
    [dummy]. Start payload arrays as [[||]] and pass the first real payload
    as [dummy]. *)
