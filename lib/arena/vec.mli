(** Growable append-only vector: registry representation for entities that
    are created but never destroyed. O(1) amortized push, O(1) index,
    creation-order iteration with no list reversal. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit
val length : 'a t -> int

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val iter : 'a t -> ('a -> unit) -> unit
val fold_left : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
val exists : 'a t -> ('a -> bool) -> bool
val to_list : 'a t -> 'a list
