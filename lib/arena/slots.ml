(* Slot allocator for entity arenas: dense int handles with generation
   counters for ABA-safe recycling, plus an intrusive doubly-linked list
   threading the live slots in allocation (creation) order.

   Callers keep their payloads in parallel arrays sized with
   {!grow_payload}, so the allocator itself stores only unboxed ints.

   Generations follow the odd/even convention: a slot's generation is
   bumped on both alloc and release, so an odd generation means live and an
   even one vacant — one int array doubles as liveness flag and ABA
   detector. A stale (slot, gen) pair taken before a release can never
   match again: any later occupant of the slot has a strictly larger
   generation. *)

type t = {
  mutable gens : int array; (* odd = live, even = vacant *)
  mutable prevs : int array; (* creation-order links over live slots *)
  mutable nexts : int array;
  mutable head : int; (* oldest live slot; -1 = none *)
  mutable tail : int; (* youngest live slot *)
  mutable used : int; (* high-water mark of allocated slots *)
  mutable free : int array; (* stack of vacated slots *)
  mutable free_top : int;
  mutable live : int;
  mutable capacity : int;
}

let create ?(initial_capacity = 16) () =
  let cap = max 1 initial_capacity in
  {
    gens = Array.make cap 0;
    prevs = Array.make cap (-1);
    nexts = Array.make cap (-1);
    head = -1;
    tail = -1;
    used = 0;
    free = Array.make cap 0;
    free_top = 0;
    live = 0;
    capacity = cap;
  }

let capacity t = t.capacity
let live_count t = t.live
let used t = t.used

let grow t =
  let cap = 2 * t.capacity in
  let gens = Array.make cap 0 in
  let prevs = Array.make cap (-1) in
  let nexts = Array.make cap (-1) in
  Array.blit t.gens 0 gens 0 t.capacity;
  Array.blit t.prevs 0 prevs 0 t.capacity;
  Array.blit t.nexts 0 nexts 0 t.capacity;
  t.gens <- gens;
  t.prevs <- prevs;
  t.nexts <- nexts;
  t.capacity <- cap

let alloc t =
  let s =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top)
    end
    else begin
      if t.used = t.capacity then grow t;
      let s = t.used in
      t.used <- t.used + 1;
      s
    end
  in
  t.gens.(s) <- t.gens.(s) + 1;
  (* link at the tail: creation order front-to-back *)
  t.prevs.(s) <- t.tail;
  t.nexts.(s) <- -1;
  if t.tail >= 0 then t.nexts.(t.tail) <- s else t.head <- s;
  t.tail <- s;
  t.live <- t.live + 1;
  s

let is_live t s = s >= 0 && s < t.used && t.gens.(s) land 1 = 1
let gen t s = t.gens.(s)

let push_free t s =
  if t.free_top = Array.length t.free then begin
    let free = Array.make (2 * Array.length t.free) 0 in
    Array.blit t.free 0 free 0 t.free_top;
    t.free <- free
  end;
  t.free.(t.free_top) <- s;
  t.free_top <- t.free_top + 1

let release t s =
  if not (is_live t s) then invalid_arg "Slots.release: slot is not live";
  let p = t.prevs.(s) and n = t.nexts.(s) in
  if p >= 0 then t.nexts.(p) <- n else t.head <- n;
  if n >= 0 then t.prevs.(n) <- p else t.tail <- p;
  t.prevs.(s) <- -1;
  t.nexts.(s) <- -1;
  t.gens.(s) <- t.gens.(s) + 1;
  t.live <- t.live - 1;
  push_free t s

(* Iterate live slots in creation order. The next link is read before [f]
   runs, so releasing the visited slot from within [f] is safe. *)
let iter_live t f =
  let s = ref t.head in
  while !s >= 0 do
    let n = t.nexts.(!s) in
    f !s;
    s := n
  done

let fold_live t ~init ~f =
  let acc = ref init in
  iter_live t (fun s -> acc := f !acc s);
  !acc

let exists_live t p =
  let s = ref t.head in
  let found = ref false in
  while (not !found) && !s >= 0 do
    if p !s then found := true else s := t.nexts.(!s)
  done;
  !found

(* Bring a caller's parallel payload array up to [capacity t], filling new
   cells with [dummy]. Start payloads as [[||]] and pass the first real
   payload as the dummy — the usual trick for polymorphic parallel arrays. *)
let grow_payload t arr ~dummy =
  if Array.length arr >= t.capacity then arr
  else begin
    let a = Array.make t.capacity dummy in
    Array.blit arr 0 a 0 (Array.length arr);
    a
  end
