module type S = sig
  type 'a t
  type 'a handle

  val create : unit -> 'a t
  val add : 'a t -> client:'a -> weight:float -> 'a handle
  val remove : 'a t -> 'a handle -> unit
  val readd : 'a t -> 'a handle -> weight:float -> unit
  val mem : 'a t -> 'a handle -> bool
  val clear : 'a t -> unit
  val set_weight : 'a t -> 'a handle -> float -> unit
  val weight : 'a t -> 'a handle -> float
  val client : 'a handle -> 'a
  val total : 'a t -> float
  val size : 'a t -> int
  val draw : 'a t -> Lotto_prng.Rng.t -> 'a handle option
  val draw_client : 'a t -> Lotto_prng.Rng.t -> 'a option
  val draw_slot : 'a t -> Lotto_prng.Rng.t -> int
  val client_at : 'a t -> int -> 'a
  val draw_k : 'a t -> Lotto_prng.Rng.t -> k:int -> 'a array -> int
  val draw_with_value : 'a t -> winning:float -> 'a handle option
  val iter : 'a t -> ('a handle -> unit) -> unit
end

type mode = List | Tree | Distributed of int | Cumul | Alias

module List_backend = struct
  include List_lottery

  let create () = create ()
end

module Tree_backend = struct
  include Tree_lottery

  let create () = create ()
end

module Cumul_backend = struct
  include Cumul_lottery

  let create () = create ()
end

module Alias_backend = struct
  include Alias_lottery

  let create () = create ()
end

let backend : mode -> (module S) = function
  | List -> (module List_backend)
  | Tree -> (module Tree_backend)
  | Cumul -> (module Cumul_backend)
  | Alias -> (module Alias_backend)
  | Distributed n ->
      (module struct
        include Distributed_lottery

        let create () = Distributed_lottery.create ~nodes:n ()
      end)

(* --- runtime-dispatched wrapper ---------------------------------------- *)

type 'a t =
  | L of 'a List_lottery.t
  | T of 'a Tree_lottery.t
  | D of 'a Distributed_lottery.t
  | C of 'a Cumul_lottery.t
  | A of 'a Alias_lottery.t

type 'a handle =
  | Lh of 'a List_lottery.handle
  | Th of 'a Tree_lottery.handle
  | Dh of 'a Distributed_lottery.handle
  | Ch of 'a Cumul_lottery.handle
  | Ah of 'a Alias_lottery.handle

let foreign () = invalid_arg "Draw: handle from a different backend"

let of_mode = function
  | List -> L (List_lottery.create ())
  | Tree -> T (Tree_lottery.create ())
  | Distributed nodes -> D (Distributed_lottery.create ~nodes ())
  | Cumul -> C (Cumul_lottery.create ())
  | Alias -> A (Alias_lottery.create ())

let of_list l = L l
let of_tree l = T l
let of_distributed l = D l
let of_cumul l = C l
let of_alias l = A l

let mode = function
  | L _ -> List
  | T _ -> Tree
  | D d -> Distributed (Distributed_lottery.nodes d)
  | C _ -> Cumul
  | A _ -> Alias

let add t ~client ~weight =
  match t with
  | L l -> Lh (List_lottery.add l ~client ~weight)
  | T l -> Th (Tree_lottery.add l ~client ~weight)
  | D l -> Dh (Distributed_lottery.add l ~client ~weight)
  | C l -> Ch (Cumul_lottery.add l ~client ~weight)
  | A l -> Ah (Alias_lottery.add l ~client ~weight)

let remove t h =
  match (t, h) with
  | L l, Lh h -> List_lottery.remove l h
  | T l, Th h -> Tree_lottery.remove l h
  | D l, Dh h -> Distributed_lottery.remove l h
  | C l, Ch h -> Cumul_lottery.remove l h
  | A l, Ah h -> Alias_lottery.remove l h
  | _ -> foreign ()

(* Migration hot path: the target structure may be a different instance
   than the one the handle was removed from, but must be the same backend —
   re-wrapping would allocate, and a foreign pair is a caller bug anyway. *)
let readd t h ~weight =
  match (t, h) with
  | L l, Lh h -> List_lottery.readd l h ~weight
  | T l, Th h -> Tree_lottery.readd l h ~weight
  | D l, Dh h -> Distributed_lottery.readd l h ~weight
  | C l, Ch h -> Cumul_lottery.readd l h ~weight
  | A l, Ah h -> Alias_lottery.readd l h ~weight
  | _ -> foreign ()

let mem t h =
  match (t, h) with
  | L l, Lh h -> List_lottery.mem l h
  | T l, Th h -> Tree_lottery.mem l h
  | D l, Dh h -> Distributed_lottery.mem l h
  | C l, Ch h -> Cumul_lottery.mem l h
  | A l, Ah h -> Alias_lottery.mem l h
  | _ -> foreign ()

let clear = function
  | L l -> List_lottery.clear l
  | T l -> Tree_lottery.clear l
  | D l -> Distributed_lottery.clear l
  | C l -> Cumul_lottery.clear l
  | A l -> Alias_lottery.clear l

let set_weight t h w =
  match (t, h) with
  | L l, Lh h -> List_lottery.set_weight l h w
  | T l, Th h -> Tree_lottery.set_weight l h w
  | D l, Dh h -> Distributed_lottery.set_weight l h w
  | C l, Ch h -> Cumul_lottery.set_weight l h w
  | A l, Ah h -> Alias_lottery.set_weight l h w
  | _ -> foreign ()

let weight t h =
  match (t, h) with
  | L l, Lh h -> List_lottery.weight l h
  | T l, Th h -> Tree_lottery.weight l h
  | D l, Dh h -> Distributed_lottery.weight l h
  | C l, Ch h -> Cumul_lottery.weight l h
  | A l, Ah h -> Alias_lottery.weight l h
  | _ -> foreign ()

let client = function
  | Lh h -> List_lottery.client h
  | Th h -> Tree_lottery.client h
  | Dh h -> Distributed_lottery.client h
  | Ch h -> Cumul_lottery.client h
  | Ah h -> Alias_lottery.client h

let total = function
  | L l -> List_lottery.total l
  | T l -> Tree_lottery.total l
  | D l -> Distributed_lottery.total l
  | C l -> Cumul_lottery.total l
  | A l -> Alias_lottery.total l

let size = function
  | L l -> List_lottery.size l
  | T l -> Tree_lottery.size l
  | D l -> Distributed_lottery.size l
  | C l -> Cumul_lottery.size l
  | A l -> Alias_lottery.size l

let draw t rng =
  match t with
  | L l -> Option.map (fun h -> Lh h) (List_lottery.draw l rng)
  | T l -> Option.map (fun h -> Th h) (Tree_lottery.draw l rng)
  | D l -> Option.map (fun h -> Dh h) (Distributed_lottery.draw l rng)
  | C l -> Option.map (fun h -> Ch h) (Cumul_lottery.draw l rng)
  | A l -> Option.map (fun h -> Ah h) (Alias_lottery.draw l rng)

let draw_client t rng = Option.map client (draw t rng)

(* The allocation-free draw path: one dispatch, an int out, no options. *)
let draw_slot t rng =
  match t with
  | L l -> List_lottery.draw_slot l rng
  | T l -> Tree_lottery.draw_slot l rng
  | D l -> Distributed_lottery.draw_slot l rng
  | C l -> Cumul_lottery.draw_slot l rng
  | A l -> Alias_lottery.draw_slot l rng

let client_at t s =
  match t with
  | L l -> List_lottery.client_at l s
  | T l -> Tree_lottery.client_at l s
  | D l -> Distributed_lottery.client_at l s
  | C l -> Cumul_lottery.client_at l s
  | A l -> Alias_lottery.client_at l s

let draw_k t rng ~k out =
  match t with
  | L l -> List_lottery.draw_k l rng ~k out
  | T l -> Tree_lottery.draw_k l rng ~k out
  | D l -> Distributed_lottery.draw_k l rng ~k out
  | C l -> Cumul_lottery.draw_k l rng ~k out
  | A l -> Alias_lottery.draw_k l rng ~k out

let draw_with_value t ~winning =
  match t with
  | L l -> Option.map (fun h -> Lh h) (List_lottery.draw_with_value l ~winning)
  | T l -> Option.map (fun h -> Th h) (Tree_lottery.draw_with_value l ~winning)
  | D l -> Option.map (fun h -> Dh h) (Distributed_lottery.draw_with_value l ~winning)
  | C l -> Option.map (fun h -> Ch h) (Cumul_lottery.draw_with_value l ~winning)
  | A l -> Option.map (fun h -> Ah h) (Alias_lottery.draw_with_value l ~winning)

let iter t f =
  match t with
  | L l -> List_lottery.iter l (fun h -> f (Lh h))
  | T l -> Tree_lottery.iter l (fun h -> f (Th h))
  | D l -> Distributed_lottery.iter l (fun h -> f (Dh h))
  | C l -> Cumul_lottery.iter l (fun h -> f (Ch h))
  | A l -> Alias_lottery.iter l (fun h -> f (Ah h))

let comparisons = function
  | L l -> Some (List_lottery.comparisons l)
  | T _ | D _ | C _ | A _ -> None
