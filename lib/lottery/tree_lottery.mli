(** Tree-based lottery over partial ticket sums (Section 4.2):
    selection and weight updates are O(log n).

    Implemented as a Fenwick (binary indexed) tree of weights with a slot
    free-list, so clients can join and leave dynamically. The paper proposes
    this structure for large client counts and as the basis of a distributed
    lottery; the benchmark suite compares it against {!List_lottery}. *)

type 'a t
type 'a handle

val create : ?initial_capacity:int -> unit -> 'a t
val add : 'a t -> client:'a -> weight:float -> 'a handle
val remove : 'a t -> 'a handle -> unit
(** Idempotent. *)

val readd : 'a t -> 'a handle -> weight:float -> unit
(** Re-insert a handle previously invalidated by {!remove}, reusing the
    handle record itself (raises [Invalid_argument] if it is still live).
    This is the migration primitive: detaching a client from one structure
    and re-inserting it into another of the same backend costs no handle
    allocation. *)

val clear : 'a t -> unit
(** Remove every client at once (invalidating their handles), keeping the
    allocated capacity for reuse; subsequent adds refill slots from 0 in
    insertion order, exactly like a fresh structure. *)

val set_weight : 'a t -> 'a handle -> float -> unit
val weight : 'a t -> 'a handle -> float
val client : 'a handle -> 'a
val mem : 'a t -> 'a handle -> bool
val total : 'a t -> float
val size : 'a t -> int

val draw : 'a t -> Lotto_prng.Rng.t -> 'a handle option
val draw_client : 'a t -> Lotto_prng.Rng.t -> 'a option

val draw_slot : 'a t -> Lotto_prng.Rng.t -> int
(** Allocation-free draw: the winner's arena slot, or [-1] when the total
    weight is zero (no randomness consumed then). The slot is valid until
    the next mutation; resolve it with {!client_at}. *)

val client_at : 'a t -> int -> 'a
(** Resolve a slot returned by {!draw_slot}. *)

val draw_k : 'a t -> Lotto_prng.Rng.t -> k:int -> 'a array -> int
(** [draw_k t rng ~k out] runs up to [min k (Array.length out)]
    independent lotteries and writes the winners into [out.(0..r-1)],
    returning [r] ([0] when the total weight is zero). Each draw consumes
    randomness exactly like {!draw}. *)

val draw_with_value : 'a t -> winning:float -> 'a handle option
(** Deterministic draw for a winning value in [\[0, total)]: the winner is
    the client covering that value in slot (insertion) order. *)

val iter : 'a t -> ('a handle -> unit) -> unit
(** Slot order (insertion order modulo slot reuse). *)

val to_list : 'a t -> ('a * float) list
