type 'a handle = { mutable slot : int; (* -1 once removed *) c : 'a }

type order = Unordered | Move_to_front | By_weight

(* Entries live in a slot arena (parallel arrays indexed by an int slot,
   vacated slots recycled through an int-array stack) and the draw order is
   an intrusive doubly-linked list threaded through [prevs]/[nexts], so
   remove and move-to-front are O(1) instead of the historical
   List.filter. [ws.(s)] doubles as the occupancy flag with a negative
   sentinel for vacant slots; [hs] is filled lazily with the first handle
   ever added. Scan order, float accumulation order, and the comparisons
   counter are unchanged from the list representation. *)
let free_weight = -1.

type 'a t = {
  order : order;
  mutable ws : float array; (* per-slot weight; free_weight = vacant *)
  mutable hs : 'a handle array; (* [||] until the first add *)
  mutable prevs : int array; (* draw-order links; -1 = none *)
  mutable nexts : int array;
  mutable head : int; (* front = most recent winners under mtf; -1 = empty *)
  mutable tail : int;
  mutable capacity : int;
  mutable used : int; (* high-water mark of allocated slots *)
  mutable free : int array; (* stack of vacated slots *)
  mutable free_top : int;
  mutable total : float;
  mutable size : int;
  mutable comparisons : int;
  mutable mutations : int; (* triggers periodic total recomputation *)
}

let create ?(move_to_front = true) ?order () =
  let order =
    match order with
    | Some o -> o
    | None -> if move_to_front then Move_to_front else Unordered
  in
  {
    order;
    ws = Array.make 16 free_weight;
    hs = [||];
    prevs = Array.make 16 (-1);
    nexts = Array.make 16 (-1);
    head = -1;
    tail = -1;
    capacity = 16;
    used = 0;
    free = Array.make 16 0;
    free_top = 0;
    total = 0.;
    size = 0;
    comparisons = 0;
    mutations = 0;
  }

let grow t =
  let cap = t.capacity * 2 in
  let ws = Array.make cap free_weight in
  let prevs = Array.make cap (-1) in
  let nexts = Array.make cap (-1) in
  Array.blit t.ws 0 ws 0 t.capacity;
  Array.blit t.prevs 0 prevs 0 t.capacity;
  Array.blit t.nexts 0 nexts 0 t.capacity;
  if Array.length t.hs > 0 then begin
    let hs = Array.make cap t.hs.(0) in
    Array.blit t.hs 0 hs 0 t.capacity;
    t.hs <- hs
  end;
  t.ws <- ws;
  t.prevs <- prevs;
  t.nexts <- nexts;
  t.capacity <- cap

let alloc_slot t =
  if t.free_top > 0 then begin
    t.free_top <- t.free_top - 1;
    t.free.(t.free_top)
  end
  else begin
    if t.used = t.capacity then grow t;
    let s = t.used in
    t.used <- t.used + 1;
    s
  end

let push_free t s =
  if t.free_top = Array.length t.free then begin
    let free = Array.make (2 * Array.length t.free) 0 in
    Array.blit t.free 0 free 0 t.free_top;
    t.free <- free
  end;
  t.free.(t.free_top) <- s;
  t.free_top <- t.free_top + 1

let link_front t s =
  t.prevs.(s) <- -1;
  t.nexts.(s) <- t.head;
  if t.head >= 0 then t.prevs.(t.head) <- s else t.tail <- s;
  t.head <- s

let unlink t s =
  let p = t.prevs.(s) and n = t.nexts.(s) in
  if p >= 0 then t.nexts.(p) <- n else t.head <- n;
  if n >= 0 then t.prevs.(n) <- p else t.tail <- p;
  t.prevs.(s) <- -1;
  t.nexts.(s) <- -1

let resort t =
  (* Collect the current order, stable-sort by decreasing weight, relink. *)
  let slots = Array.make t.size 0 in
  let i = ref 0 in
  let s = ref t.head in
  while !s >= 0 do
    slots.(!i) <- !s;
    incr i;
    s := t.nexts.(!s)
  done;
  let boxed = Array.to_list slots in
  let sorted = List.stable_sort (fun a b -> compare t.ws.(b) t.ws.(a)) boxed in
  t.head <- -1;
  t.tail <- -1;
  List.iter
    (fun s ->
      (* append at the tail to preserve sorted order front-to-back *)
      t.prevs.(s) <- t.tail;
      t.nexts.(s) <- -1;
      if t.tail >= 0 then t.nexts.(t.tail) <- s else t.head <- s;
      t.tail <- s)
    sorted

let refresh_total t =
  (* Incremental float updates drift; re-sum periodically so long-running
     simulations keep exact draw bounds. *)
  t.mutations <- t.mutations + 1;
  if t.mutations land 4095 = 0 then begin
    let acc = ref 0. in
    let s = ref t.head in
    while !s >= 0 do
      acc := !acc +. t.ws.(!s);
      s := t.nexts.(!s)
    done;
    t.total <- !acc
  end

let add t ~client ~weight =
  if weight < 0. then invalid_arg "List_lottery.add: negative weight";
  let slot = alloc_slot t in
  let h = { slot; c = client } in
  if Array.length t.hs = 0 then t.hs <- Array.make t.capacity h;
  t.hs.(slot) <- h;
  t.ws.(slot) <- weight;
  link_front t slot;
  t.total <- t.total +. weight;
  t.size <- t.size + 1;
  if t.order = By_weight then resort t;
  refresh_total t;
  h

let remove t h =
  if h.slot >= 0 then begin
    let s = h.slot in
    unlink t s;
    t.total <- t.total -. t.ws.(s);
    t.ws.(s) <- free_weight;
    push_free t s;
    t.size <- t.size - 1;
    h.slot <- -1;
    refresh_total t
  end

(* Re-insert a removed handle without allocating a new one: the node is
   relinked at the front exactly as a fresh {!add} would be (the migration
   primitive; see {!Tree_lottery.readd}). *)
let readd t h ~weight =
  if weight < 0. then invalid_arg "List_lottery.readd: negative weight";
  if h.slot >= 0 then invalid_arg "List_lottery.readd: handle still live";
  let slot = alloc_slot t in
  h.slot <- slot;
  if Array.length t.hs = 0 then t.hs <- Array.make t.capacity h;
  t.hs.(slot) <- h;
  t.ws.(slot) <- weight;
  link_front t slot;
  t.total <- t.total +. weight;
  t.size <- t.size + 1;
  if t.order = By_weight then resort t;
  refresh_total t

let set_weight t h weight =
  if weight < 0. then invalid_arg "List_lottery.set_weight: negative weight";
  if h.slot < 0 then invalid_arg "List_lottery.set_weight: removed handle";
  t.total <- t.total -. t.ws.(h.slot) +. weight;
  t.ws.(h.slot) <- weight;
  if t.order = By_weight then resort t;
  refresh_total t

let clear t =
  let s = ref t.head in
  while !s >= 0 do
    let n = t.nexts.(!s) in
    t.hs.(!s).slot <- -1;
    t.ws.(!s) <- free_weight;
    t.prevs.(!s) <- -1;
    t.nexts.(!s) <- -1;
    s := n
  done;
  t.head <- -1;
  t.tail <- -1;
  t.used <- 0;
  t.free_top <- 0;
  t.total <- 0.;
  t.size <- 0

let weight t h = if h.slot < 0 then 0. else t.ws.(h.slot)
let client h = h.c
let mem t h =
  h.slot >= 0
  && h.slot < Array.length t.hs
  && t.ws.(h.slot) >= 0.
  && t.hs.(h.slot) == h
let total t = max t.total 0.
let size t = t.size

let move_to_front t s =
  if t.head <> s then begin
    unlink t s;
    link_front t s
  end

(* [@inline] (here and on [slot_for_value]) keeps the freshly computed
   winning value in a register on the draw path: a non-inlined call would
   box the float argument. *)
let[@inline] scan t winning =
  (* Accumulate the running ticket sum until it exceeds the winning value
     (Figure 1). Float drift can leave [winning] beyond the actual sum; the
     last positive-weight entry wins in that case. *)
  let acc = ref 0. in
  let last = ref (-1) in
  let s = ref t.head in
  let found = ref (-1) in
  while !found < 0 && !s >= 0 do
    t.comparisons <- t.comparisons + 1;
    let w = t.ws.(!s) in
    acc := !acc +. w;
    if w > 0. then begin
      last := !s;
      if !acc > winning then found := !s
    end;
    s := t.nexts.(!s)
  done;
  if !found >= 0 then !found else !last

(* Winner's slot for a winning value, applying the structure's reordering;
   -1 when nothing can win. *)
let[@inline] slot_for_value t winning =
  match scan t winning with
  | -1 -> -1
  | s ->
      if t.order = Move_to_front then move_to_front t s;
      s

let draw_with_value t ~winning =
  if winning < 0. then invalid_arg "List_lottery.draw_with_value: negative";
  match slot_for_value t winning with -1 -> None | s -> Some t.hs.(s)

let draw_slot t rng =
  if t.total <= 0. then -1
  else begin
    let u =
      float_of_int (Lotto_prng.Rng.bits53 rng) /. float_of_int (1 lsl 53)
    in
    slot_for_value t (u *. t.total)
  end

let client_at t s = t.hs.(s).c

let draw t rng =
  let s = draw_slot t rng in
  if s < 0 then None else Some t.hs.(s)

let draw_client t rng =
  let s = draw_slot t rng in
  if s < 0 then None else Some t.hs.(s).c

let draw_k t rng ~k out =
  if t.total <= 0. || k <= 0 then 0
  else begin
    let n = min k (Array.length out) in
    let i = ref 0 in
    let live = ref true in
    while !live && !i < n do
      let s = draw_slot t rng in
      if s < 0 then live := false
      else begin
        out.(!i) <- t.hs.(s).c;
        incr i
      end
    done;
    !i
  end

let iter t f =
  let s = ref t.head in
  while !s >= 0 do
    let n = t.nexts.(!s) in
    f t.hs.(!s);
    s := n
  done

let to_list t =
  let acc = ref [] in
  let s = ref t.tail in
  while !s >= 0 do
    acc := (t.hs.(!s).c, t.ws.(!s)) :: !acc;
    s := t.prevs.(!s)
  done;
  !acc

let comparisons t = t.comparisons
let reset_comparisons t = t.comparisons <- 0
