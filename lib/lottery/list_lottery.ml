type 'a entry = { mutable w : float; c : 'a; mutable live : bool }
type 'a handle = 'a entry

type order = Unordered | Move_to_front | By_weight

type 'a t = {
  order : order;
  mutable entries : 'a entry list; (* front = most recent winners under mtf *)
  mutable total : float;
  mutable size : int;
  mutable comparisons : int;
  mutable mutations : int; (* triggers periodic total recomputation *)
}

let create ?(move_to_front = true) ?order () =
  let order =
    match order with
    | Some o -> o
    | None -> if move_to_front then Move_to_front else Unordered
  in
  { order; entries = []; total = 0.; size = 0; comparisons = 0; mutations = 0 }

let resort t =
  t.entries <- List.stable_sort (fun a b -> compare b.w a.w) t.entries

let refresh_total t =
  (* Incremental float updates drift; re-sum periodically so long-running
     simulations keep exact draw bounds. *)
  t.mutations <- t.mutations + 1;
  if t.mutations land 4095 = 0 then
    t.total <- List.fold_left (fun acc e -> acc +. e.w) 0. t.entries

let add t ~client ~weight =
  if weight < 0. then invalid_arg "List_lottery.add: negative weight";
  let e = { w = weight; c = client; live = true } in
  t.entries <- e :: t.entries;
  t.total <- t.total +. weight;
  t.size <- t.size + 1;
  if t.order = By_weight then resort t;
  refresh_total t;
  e

let remove t e =
  if e.live then begin
    e.live <- false;
    t.entries <- List.filter (fun e' -> e' != e) t.entries;
    t.total <- t.total -. e.w;
    t.size <- t.size - 1;
    refresh_total t
  end

let set_weight t e weight =
  if weight < 0. then invalid_arg "List_lottery.set_weight: negative weight";
  if not e.live then invalid_arg "List_lottery.set_weight: removed handle";
  t.total <- t.total -. e.w +. weight;
  e.w <- weight;
  if t.order = By_weight then resort t;
  refresh_total t

let clear t =
  List.iter (fun e -> e.live <- false) t.entries;
  t.entries <- [];
  t.total <- 0.;
  t.size <- 0

let weight _t e = e.w
let client e = e.c
let mem _t e = e.live
let total t = max t.total 0.
let size t = t.size

let move_to_front t e =
  t.entries <- e :: List.filter (fun e' -> e' != e) t.entries

let scan t winning =
  (* Accumulate the running ticket sum until it exceeds the winning value
     (Figure 1). Float drift can leave [winning] beyond the actual sum; the
     last positive-weight entry wins in that case. *)
  let rec go acc last = function
    | [] -> last
    | e :: rest ->
        t.comparisons <- t.comparisons + 1;
        let acc = acc +. e.w in
        let last = if e.w > 0. then Some e else last in
        if e.w > 0. && acc > winning then Some e else go acc last rest
  in
  go 0. None t.entries

let draw_with_value t ~winning =
  if winning < 0. then invalid_arg "List_lottery.draw_with_value: negative";
  match scan t winning with
  | None -> None
  | Some e ->
      if t.order = Move_to_front then move_to_front t e;
      Some e

let draw t rng =
  if t.total <= 0. then None
  else begin
    let winning = Lotto_prng.Rng.float_unit rng *. t.total in
    draw_with_value t ~winning
  end

let draw_client t rng = Option.map client (draw t rng)
let iter t f = List.iter f t.entries
let to_list t = List.map (fun e -> (e.c, e.w)) t.entries
let comparisons t = t.comparisons
let reset_comparisons t = t.comparisons <- 0
