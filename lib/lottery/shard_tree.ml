(* The inter-shard coordinator of the sharded CPU lottery: a flat 1-based
   partial-sum binary tree whose leaves are per-shard live ticket masses —
   {!Distributed_lottery}'s inter-node tree (the paper's §4.2 distributed
   lottery) lifted out so it can coordinate arbitrary [Draw.t] shards
   instead of its own built-in local lotteries. Every operation is
   allocation-free: set bubbles a delta to the root, pick descends from it,
   and both are O(log shards). *)

type t = {
  shards : int;
  leaves : int; (* power of two >= shards *)
  sums : float array; (* 1-based; leaf i lives at [leaves + i] *)
}

let create ~shards =
  if shards <= 0 then invalid_arg "Shard_tree.create: shards <= 0";
  let rec up c = if c >= shards then c else up (c * 2) in
  let leaves = up 1 in
  { shards; leaves; sums = Array.make (2 * leaves) 0. }

let shards t = t.shards

let check t i =
  if i < 0 || i >= t.shards then invalid_arg "Shard_tree: shard out of range"

let get t i =
  check t i;
  t.sums.(t.leaves + i)

let total t = Float.max 0. t.sums.(1)

(* absolute write: bubble the delta from the leaf to the root *)
let set t i v =
  check t i;
  if v < 0. then invalid_arg "Shard_tree.set: negative mass";
  let delta = v -. t.sums.(t.leaves + i) in
  if delta <> 0. then begin
    let j = ref (t.leaves + i) in
    while !j >= 1 do
      t.sums.(!j) <- t.sums.(!j) +. delta;
      j := !j / 2
    done
  end

(* Ticket-weighted shard pick: descend from the root with a winning value
   in [0, total), preferring the left child unless the value falls past its
   subtree sum (or the right subtree is the only live one) — exactly
   {!Distributed_lottery.descend}. [-1] when no shard holds mass. *)
let pick t ~u =
  let tot = total t in
  if tot <= 0. then -1
  else begin
    let winning = ref (u *. tot) in
    let i = ref 1 in
    while !i < t.leaves do
      let left = 2 * !i in
      if !winning < t.sums.(left) || t.sums.(left + 1) <= 0. then i := left
      else begin
        winning := !winning -. t.sums.(left);
        i := left + 1
      end
    done;
    !i - t.leaves
  end

(* Least-loaded shard (lowest id on ties): the deterministic placement
   policy. A linear scan — shard counts are CPU counts, not client
   counts. *)
let min_shard t =
  let best = ref 0 in
  let best_mass = ref t.sums.(t.leaves) in
  for i = 1 to t.shards - 1 do
    let m = t.sums.(t.leaves + i) in
    if m < !best_mass then begin
      best := i;
      best_mass := m
    end
  done;
  !best

(* Most-loaded shard (lowest id on ties): the rebalance source. *)
let max_shard t =
  let best = ref 0 in
  let best_mass = ref t.sums.(t.leaves) in
  for i = 1 to t.shards - 1 do
    let m = t.sums.(t.leaves + i) in
    if m > !best_mass then begin
      best := i;
      best_mass := m
    end
  done;
  !best
