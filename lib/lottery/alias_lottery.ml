(* Walker/Vose alias-method lottery: O(1) draws from a pair of preallocated
   tables (an acceptance probability and an alias slot per live client),
   rebuilt lazily in O(n) only when a mutation dirtied them. The rebuild
   scratch (small/large work stacks, scaled weights) is preallocated too,
   so the steady state — quiescent weights, draw after draw — allocates
   nothing. The slot arena mirrors {!Tree_lottery} (LIFO free stack,
   [free_weight] sentinel, power-of-two capacity), so handles and slot
   assignment behave identically across the flat backends. *)

type 'a handle = { mutable slot : int; (* -1 once removed *) c : 'a }

let free_weight = -1.

type 'a t = {
  mutable weights : float array; (* per-slot exact weight; free_weight = vacant *)
  mutable slots : 'a handle array; (* [||] until the first add *)
  mutable capacity : int; (* power of two *)
  mutable used : int; (* high-water mark of allocated slots *)
  mutable free : int array; (* stack of vacated slots *)
  mutable free_top : int;
  mutable size : int;
  mutable total : float; (* incremental, same accumulation drift as Tree *)
  (* alias tables over the live positive-weight slots, as dense buckets *)
  mutable prob : float array; (* bucket -> acceptance threshold in [0,1] *)
  mutable alias : int array; (* bucket -> alias *slot* (not bucket) *)
  mutable bucket_slot : int array; (* bucket -> arena slot *)
  mutable nbuckets : int;
  mutable scaled : float array; (* rebuild scratch: weight * m / total *)
  mutable small : int array; (* rebuild scratch: under-full buckets *)
  mutable large : int array; (* rebuild scratch: over-full buckets *)
  mutable built : bool;
}

let create ?(initial_capacity = 16) () =
  let cap = max 2 initial_capacity in
  let cap =
    let rec up c = if c >= cap then c else up (c * 2) in
    up 2
  in
  {
    weights = Array.make cap free_weight;
    slots = [||];
    capacity = cap;
    used = 0;
    free = Array.make cap 0;
    free_top = 0;
    size = 0;
    total = 0.;
    prob = Array.make cap 0.;
    alias = Array.make cap 0;
    bucket_slot = Array.make cap 0;
    nbuckets = 0;
    scaled = Array.make cap 0.;
    small = Array.make cap 0;
    large = Array.make cap 0;
    built = true;
  }

let occupied t s = t.weights.(s) >= 0.

let grow t =
  let cap = t.capacity * 2 in
  let weights = Array.make cap free_weight in
  Array.blit t.weights 0 weights 0 t.capacity;
  if Array.length t.slots > 0 then begin
    let slots = Array.make cap t.slots.(0) in
    Array.blit t.slots 0 slots 0 t.capacity;
    t.slots <- slots
  end;
  t.weights <- weights;
  t.capacity <- cap;
  t.prob <- Array.make cap 0.;
  t.alias <- Array.make cap 0;
  t.bucket_slot <- Array.make cap 0;
  t.scaled <- Array.make cap 0.;
  t.small <- Array.make cap 0;
  t.large <- Array.make cap 0;
  t.built <- false

let push_free t s =
  if t.free_top = Array.length t.free then begin
    let free = Array.make (2 * Array.length t.free) 0 in
    Array.blit t.free 0 free 0 t.free_top;
    t.free <- free
  end;
  t.free.(t.free_top) <- s;
  t.free_top <- t.free_top + 1

let add t ~client ~weight =
  if weight < 0. then invalid_arg "Alias_lottery.add: negative weight";
  let slot =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top)
    end
    else begin
      if t.used = t.capacity then grow t;
      let s = t.used in
      t.used <- t.used + 1;
      s
    end
  in
  let h = { slot; c = client } in
  if Array.length t.slots = 0 then t.slots <- Array.make t.capacity h;
  t.slots.(slot) <- h;
  t.weights.(slot) <- weight;
  t.total <- t.total +. weight;
  t.size <- t.size + 1;
  t.built <- false;
  h

let remove t h =
  if h.slot >= 0 then begin
    let s = h.slot in
    t.total <- t.total -. t.weights.(s);
    t.weights.(s) <- free_weight;
    push_free t s;
    t.size <- t.size - 1;
    h.slot <- -1;
    t.built <- false
  end

(* Re-insert a removed handle without allocating a new one (the migration
   primitive; see {!Tree_lottery.readd}). *)
let readd t h ~weight =
  if weight < 0. then invalid_arg "Alias_lottery.readd: negative weight";
  if h.slot >= 0 then invalid_arg "Alias_lottery.readd: handle still live";
  let slot =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top)
    end
    else begin
      if t.used = t.capacity then grow t;
      let s = t.used in
      t.used <- t.used + 1;
      s
    end
  in
  h.slot <- slot;
  if Array.length t.slots = 0 then t.slots <- Array.make t.capacity h;
  t.slots.(slot) <- h;
  t.weights.(slot) <- weight;
  t.total <- t.total +. weight;
  t.size <- t.size + 1;
  t.built <- false

let set_weight t h weight =
  if weight < 0. then invalid_arg "Alias_lottery.set_weight: negative weight";
  if h.slot < 0 then invalid_arg "Alias_lottery.set_weight: removed handle";
  t.total <- t.total +. (weight -. t.weights.(h.slot));
  t.weights.(h.slot) <- weight;
  t.built <- false

let clear t =
  for s = 0 to t.used - 1 do
    if occupied t s then t.slots.(s).slot <- -1;
    t.weights.(s) <- free_weight
  done;
  t.used <- 0;
  t.free_top <- 0;
  t.size <- 0;
  t.total <- 0.;
  t.nbuckets <- 0;
  t.built <- true

let weight t h = if h.slot < 0 then 0. else t.weights.(h.slot)
let client h = h.c
let mem t h =
  h.slot >= 0
  && h.slot < Array.length t.slots
  && t.weights.(h.slot) >= 0.
  && t.slots.(h.slot) == h
let total t = max t.total 0.
let size t = t.size

(* Vose's stable O(n) table construction. Buckets are the live positive
   weight slots in slot order; each ends with an acceptance threshold and
   an alias, so a draw is one uniform deviate, one compare, at most two
   array reads. Leftover buckets on either stack get threshold 1 (they are
   exactly full modulo float error). *)
let rebuild t =
  let m = ref 0 in
  let exact = ref 0. in
  for s = 0 to t.used - 1 do
    let w = t.weights.(s) in
    if w > 0. then begin
      t.bucket_slot.(!m) <- s;
      exact := !exact +. w;
      incr m
    end
  done;
  let m = !m in
  t.nbuckets <- m;
  if m > 0 && !exact > 0. then begin
    let scale = float_of_int m /. !exact in
    let nsmall = ref 0 and nlarge = ref 0 in
    for b = 0 to m - 1 do
      let p = t.weights.(t.bucket_slot.(b)) *. scale in
      t.scaled.(b) <- p;
      if p < 1. then begin
        t.small.(!nsmall) <- b;
        incr nsmall
      end
      else begin
        t.large.(!nlarge) <- b;
        incr nlarge
      end
    done;
    while !nsmall > 0 && !nlarge > 0 do
      decr nsmall;
      let s = t.small.(!nsmall) in
      let l = t.large.(!nlarge - 1) in
      t.prob.(s) <- t.scaled.(s);
      t.alias.(s) <- t.bucket_slot.(l);
      let rest = t.scaled.(l) +. t.scaled.(s) -. 1. in
      t.scaled.(l) <- rest;
      if rest < 1. then begin
        (* the donor dropped below full: move it to the small stack *)
        decr nlarge;
        t.small.(!nsmall) <- l;
        incr nsmall
      end
    done;
    while !nlarge > 0 do
      decr nlarge;
      let b = t.large.(!nlarge) in
      t.prob.(b) <- 1.;
      t.alias.(b) <- t.bucket_slot.(b)
    done;
    while !nsmall > 0 do
      (* only reachable through float error; treat as exactly full *)
      decr nsmall;
      let b = t.small.(!nsmall) in
      t.prob.(b) <- 1.;
      t.alias.(b) <- t.bucket_slot.(b)
    done
  end;
  t.built <- true

let draw_slot t rng =
  if t.total <= 0. then -1
  else begin
    if not t.built then rebuild t;
    if t.nbuckets = 0 then -1
    else begin
      let u =
        float_of_int (Lotto_prng.Rng.bits53 rng) /. float_of_int (1 lsl 53)
      in
      let x = u *. float_of_int t.nbuckets in
      let b = int_of_float x in
      let b = if b >= t.nbuckets then t.nbuckets - 1 else b in
      if x -. float_of_int b < t.prob.(b) then t.bucket_slot.(b)
      else t.alias.(b)
    end
  end

let client_at t s = t.slots.(s).c

let draw t rng =
  let s = draw_slot t rng in
  if s < 0 then None else Some t.slots.(s)

let draw_client t rng =
  let s = draw_slot t rng in
  if s < 0 then None else Some t.slots.(s).c

(* Deterministic draws keep the slot-order prefix-sum semantics shared by
   every backend; the alias tables cannot answer them in O(1), so this is a
   documented O(n) scan — it serves the equivalence tests and replayers,
   not the hot path. *)
let draw_with_value t ~winning =
  if winning < 0. then invalid_arg "Alias_lottery.draw_with_value: negative";
  if t.total <= 0. then None
  else begin
    let acc = ref 0. in
    let found = ref (-1) in
    let last = ref (-1) in
    let s = ref 0 in
    while !found < 0 && !s < t.used do
      let w = t.weights.(!s) in
      if w > 0. then begin
        acc := !acc +. w;
        last := !s;
        if !acc > winning then found := !s
      end;
      incr s
    done;
    let s = if !found >= 0 then !found else !last in
    if s < 0 then None else Some t.slots.(s)
  end

let draw_k t rng ~k out =
  if t.total <= 0. || k <= 0 then 0
  else begin
    if not t.built then rebuild t;
    let n = min k (Array.length out) in
    let i = ref 0 in
    let live = ref true in
    while !live && !i < n do
      let s = draw_slot t rng in
      if s < 0 then live := false
      else begin
        out.(!i) <- t.slots.(s).c;
        incr i
      end
    done;
    !i
  end

let iter t f =
  for s = 0 to t.used - 1 do
    if occupied t s then f t.slots.(s)
  done

let to_list t =
  let acc = ref [] in
  for s = t.used - 1 downto 0 do
    if occupied t s then acc := (t.slots.(s).c, t.weights.(s)) :: !acc
  done;
  !acc
