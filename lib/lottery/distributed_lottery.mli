(** Distributed lottery sketch (§4.2: "Such a tree-based implementation can
    also be used as the basis of a distributed lottery scheduler").

    Clients live on [nodes] separate nodes; a binary tree of partial ticket
    sums spans the nodes. A draw walks the tree from the root to the owning
    node (one simulated {e message} per hop) and finishes with a local
    lottery there; weight updates propagate from a node's leaf to the root.
    Selection remains exactly ticket-proportional across the whole system
    while every draw and update costs O(log nodes) messages — the counters
    let tests and benches verify the bound.

    Conforms to {!Draw.S}: callers that do not care about placement use
    {!add} (round-robin across nodes); {!add_on} pins a client to a node. *)

type 'a t
type 'a handle

val create : nodes:int -> unit -> 'a t
(** [nodes] is rounded up to a power of two; must be positive. *)

val nodes : 'a t -> int

val add : 'a t -> client:'a -> weight:float -> 'a handle
(** Register a client on the next node in round-robin order. *)

val add_on : 'a t -> node:int -> client:'a -> weight:float -> 'a handle
(** Register a client on a specific node (0-based). *)

val remove : 'a t -> 'a handle -> unit
(** Idempotent. *)

val readd : 'a t -> 'a handle -> weight:float -> unit
(** Re-insert a handle previously invalidated by {!remove}, reusing the
    handle record itself (raises [Invalid_argument] if it is still live).
    This is the migration primitive: detaching a client from one structure
    and re-inserting it into another of the same backend costs no handle
    allocation. *)

val clear : 'a t -> unit
(** Remove every client from every node at once (invalidating their
    handles) and restart round-robin placement, keeping the node tree. *)

val set_weight : 'a t -> 'a handle -> float -> unit
val weight : 'a t -> 'a handle -> float
val node_of : 'a handle -> int
val client : 'a handle -> 'a
val mem : 'a t -> 'a handle -> bool
val size : 'a t -> int
val total : 'a t -> float
val node_total : 'a t -> int -> float

val draw : 'a t -> Lotto_prng.Rng.t -> 'a handle option
(** [None] when no client holds positive weight. *)

val draw_client : 'a t -> Lotto_prng.Rng.t -> 'a option

val draw_slot : 'a t -> Lotto_prng.Rng.t -> int
(** Draw returning the winner as an opaque nonnegative token (the owning
    node and its local slot packed into one int), or [-1] when the total
    weight is zero. The token is valid until the next mutation; resolve it
    with {!client_at}. *)

val client_at : 'a t -> int -> 'a
(** Resolve a token returned by {!draw_slot}. *)

val draw_k : 'a t -> Lotto_prng.Rng.t -> k:int -> 'a array -> int
(** [draw_k t rng ~k out] runs up to [min k (Array.length out)]
    independent lotteries and writes the winners into [out.(0..r-1)],
    returning [r]. *)

val draw_with_value : 'a t -> winning:float -> 'a handle option
(** Deterministic draw for a winning value in [\[0, total)]: descend the
    inter-node tree (counting messages), then the owning node's local
    lottery. *)

val iter : 'a t -> ('a handle -> unit) -> unit
(** Node-major order. *)

val to_list : 'a t -> ('a * float) list

val draws : 'a t -> int
val messages : 'a t -> int
(** Cumulative simulated messages (tree hops) across all draws and
    updates. *)
