(** One draw structure, many resources.

    Every lottery in the system — CPU scheduling, mutex/condition/semaphore
    waiter picks, disk, I/O bandwidth, the packet switch, inverse memory —
    draws through this interface, so the backing structure (the paper's §4.2
    move-to-front list, the O(log n) partial-sum tree, or the distributed
    node tree) is a deployment choice rather than a per-subsystem fork.

    {!S} is the signature the three structures conform to; {!t} is a
    dispatching wrapper chosen at runtime with {!of_mode}; {!backend} packs
    a conforming structure as a first-class module for functor-style use. *)

(** The draw-structure contract (paper §4.2). Weights are nonnegative
    floats; zero-weight clients never win; [draw] returns [None] (without
    consuming randomness) when the total weight is zero. *)
module type S = sig
  type 'a t
  type 'a handle

  val create : unit -> 'a t
  (** A structure with that backend's default configuration. *)

  val add : 'a t -> client:'a -> weight:float -> 'a handle
  val remove : 'a t -> 'a handle -> unit

  val readd : 'a t -> 'a handle -> weight:float -> unit
  (** Re-insert a removed handle, reusing the handle record — the
      allocation-free migration primitive (see {!readd} on the wrapper). *)

  val mem : 'a t -> 'a handle -> bool

  val clear : 'a t -> unit
  (** Remove every client at once (invalidating their handles), keeping the
      structure (and any allocated capacity) for reuse. *)

  val set_weight : 'a t -> 'a handle -> float -> unit
  val weight : 'a t -> 'a handle -> float
  val client : 'a handle -> 'a
  val total : 'a t -> float
  val size : 'a t -> int
  val draw : 'a t -> Lotto_prng.Rng.t -> 'a handle option
  val draw_client : 'a t -> Lotto_prng.Rng.t -> 'a option

  val draw_slot : 'a t -> Lotto_prng.Rng.t -> int
  (** Allocation-free draw: the winner as a nonnegative backend token
      (arena slot for the flat backends), or [-1] when the total weight is
      zero (no randomness consumed then). Valid until the next mutation;
      resolve with {!client_at}. *)

  val client_at : 'a t -> int -> 'a
  (** Resolve a token returned by {!draw_slot}. *)

  val draw_k : 'a t -> Lotto_prng.Rng.t -> k:int -> 'a array -> int
  (** [draw_k t rng ~k out] runs up to [min k (Array.length out)]
      independent lotteries — paying any lazy rebuild once for the whole
      batch — writing winners into [out.(0..r-1)] and returning [r] ([0]
      when the total weight is zero). Each draw consumes randomness
      exactly like {!draw}; backends with draw-dependent state (the
      move-to-front list) apply it per draw. *)

  val draw_with_value : 'a t -> winning:float -> 'a handle option
  (** Deterministic draw for a winning value in [\[0, total)]. *)

  val iter : 'a t -> ('a handle -> unit) -> unit
end

type mode =
  | List  (** move-to-front list, O(n) draw — the paper's prototype *)
  | Tree  (** Fenwick partial-sum tree, O(log n) draw and update *)
  | Distributed of int
      (** partial-sum tree spanning [n] nodes, O(log n) messages *)
  | Cumul
      (** flat cumulative-sum array: O(log n) binary-search draw over a
          lazily rebuilt prefix-sum table — allocation-free while weights
          are quiescent *)
  | Alias
      (** Walker/Vose alias method: O(1) draw from lazily rebuilt
          probability/alias tables — allocation-free while weights are
          quiescent; random draws are distribution-exact but not
          winner-identical to [Tree] for the same stream *)

val backend : mode -> (module S)
(** The conforming structure for a mode, as a first-class module
    ([Distributed n] closes over its node count). *)

(** {1 Runtime-dispatched wrapper}

    ['a t] hides which structure is behind a draw site, so one code path
    serves every backend (this is what the scheduler and the resource
    managers use). *)

type 'a t
type 'a handle

val of_mode : mode -> 'a t

val of_list : 'a List_lottery.t -> 'a t
(** Wrap an existing structure (e.g. to pick a non-default list order). *)

val of_tree : 'a Tree_lottery.t -> 'a t
val of_distributed : 'a Distributed_lottery.t -> 'a t
val of_cumul : 'a Cumul_lottery.t -> 'a t
val of_alias : 'a Alias_lottery.t -> 'a t
val mode : 'a t -> mode

val add : 'a t -> client:'a -> weight:float -> 'a handle
(** Raises [Invalid_argument] on negative weights. *)

val remove : 'a t -> 'a handle -> unit
(** Idempotent. *)

val readd : 'a t -> 'a handle -> weight:float -> unit
(** Re-insert a handle previously invalidated by {!remove} into [t] —
    which may be a {e different} structure of the same backend than the
    one it was removed from. The handle record (and any [Some handle] box
    the caller holds) is reused in place, so moving a client between two
    per-CPU shards is O(remove) + O(insert) with zero allocation on the
    flat backends. Raises [Invalid_argument] if the handle is still live
    or the backend differs. *)

val mem : 'a t -> 'a handle -> bool
(** Whether the handle is currently live in {e this} structure — false for
    a removed handle (until {!readd}) and for a handle living in a
    different structure, which is what lets the sharding audit prove a
    migrated thread is in exactly one shard. *)

val clear : 'a t -> unit
(** Remove every client at once (invalidating their handles), keeping the
    structure for reuse — the cheap way to recycle a scratch draw between
    ephemeral lotteries (e.g. mutex-waiter picks). *)

val set_weight : 'a t -> 'a handle -> float -> unit
val weight : 'a t -> 'a handle -> float
val client : 'a handle -> 'a
val total : 'a t -> float
val size : 'a t -> int

val draw : 'a t -> Lotto_prng.Rng.t -> 'a handle option
(** [None] when the structure is empty or all weights are zero (no
    randomness is consumed in that case). *)

val draw_client : 'a t -> Lotto_prng.Rng.t -> 'a option

val draw_slot : 'a t -> Lotto_prng.Rng.t -> int
(** Allocation-free draw through the wrapper: one dispatch, an int out, no
    options. [-1] when the total weight is zero (no randomness consumed in
    that case); otherwise a backend token valid until the next mutation,
    resolved with {!client_at}. This is the hot path the scheduler and the
    resource managers use per decision. *)

val client_at : 'a t -> int -> 'a
(** Resolve a token returned by {!draw_slot}. *)

val draw_k : 'a t -> Lotto_prng.Rng.t -> k:int -> 'a array -> int
(** Batch draw: up to [min k (Array.length out)] independent lotteries,
    paying any lazy rebuild once for the whole batch, winners written into
    the caller's scratch array; returns how many were drawn ([0] when the
    total weight is zero). *)

val draw_with_value : 'a t -> winning:float -> 'a handle option
val iter : 'a t -> ('a handle -> unit) -> unit

val comparisons : 'a t -> int option
(** Cumulative list entries examined ([None] for non-list backends): the
    paper's search-length metric. *)
