(** List-based lottery with the paper's §4.2 search optimizations.

    A draw picks a winning value uniformly below the total weight and scans
    the client list accumulating a running sum until it reaches the winner —
    O(n) worst case. The paper suggests two orderings that shorten the
    average search: "a simple 'move to front' heuristic can be very
    effective" (winners migrate toward the head) and "ordering the clients
    by decreasing ticket counts can substantially reduce the average search
    length". Both are available; the benchmark suite compares them. *)

type 'a t
type 'a handle

type order =
  | Unordered  (** insertion order, no reordering *)
  | Move_to_front  (** winners move to the head (the prototype's choice) *)
  | By_weight  (** kept sorted by decreasing weight *)

val create : ?move_to_front:bool -> ?order:order -> unit -> 'a t
(** [order] defaults to [Move_to_front]; the legacy [move_to_front] flag
    maps [false] to [Unordered] and is overridden by [order] when both are
    given. *)

val add : 'a t -> client:'a -> weight:float -> 'a handle
(** Weights must be nonnegative; zero-weight clients never win. *)

val remove : 'a t -> 'a handle -> unit
(** Idempotent. *)

val readd : 'a t -> 'a handle -> weight:float -> unit
(** Re-insert a handle previously invalidated by {!remove}, reusing the
    handle record itself (raises [Invalid_argument] if it is still live).
    This is the migration primitive: detaching a client from one structure
    and re-inserting it into another of the same backend costs no handle
    allocation. *)

val clear : 'a t -> unit
(** Remove every client at once (invalidating their handles), leaving an
    empty structure ready for reuse — O(n), vs O(n²) repeated {!remove}. *)

val set_weight : 'a t -> 'a handle -> float -> unit
val weight : 'a t -> 'a handle -> float
val client : 'a handle -> 'a
val mem : 'a t -> 'a handle -> bool
val total : 'a t -> float
val size : 'a t -> int

val draw : 'a t -> Lotto_prng.Rng.t -> 'a handle option
(** [None] when the lottery is empty or all weights are zero. *)

val draw_client : 'a t -> Lotto_prng.Rng.t -> 'a option

val draw_slot : 'a t -> Lotto_prng.Rng.t -> int
(** Allocation-free draw: the winner's arena slot, or [-1] when the total
    weight is zero (no randomness consumed then). Applies the structure's
    reordering (move-to-front) like {!draw}. The slot is valid until the
    next mutation; resolve it with {!client_at}. *)

val client_at : 'a t -> int -> 'a
(** Resolve a slot returned by {!draw_slot}. *)

val slot_for_value : 'a t -> float -> int
(** Winner's slot for a deterministic winning value (applying the
    structure's reordering, like {!draw_with_value}); [-1] when nothing
    can win. *)

val draw_k : 'a t -> Lotto_prng.Rng.t -> k:int -> 'a array -> int
(** [draw_k t rng ~k out] runs up to [min k (Array.length out)] sequential
    lotteries (each applying move-to-front like {!draw}) and writes the
    winners into [out.(0..r-1)], returning [r]. *)

val draw_with_value : 'a t -> winning:float -> 'a handle option
(** Deterministic draw for a given winning value in [\[0, total)];
    used by tests to replay Figure 1 exactly. *)

val iter : 'a t -> ('a handle -> unit) -> unit
(** Front-to-back order (reflects move-to-front history). *)

val to_list : 'a t -> ('a * float) list

val comparisons : 'a t -> int
(** Total list entries examined by all draws so far — the paper's "average
    search length" metric for evaluating move-to-front. *)

val reset_comparisons : 'a t -> unit
