(* Clients are registered as handles that carry their own identity; the
   per-node local lotteries store the distributed handle as their client, so
   a deterministic draw can recover the distributed handle from the local
   winner. *)
type 'a handle = {
  node : int;
  hclient : 'a;
  mutable local : 'a handle List_lottery.handle option; (* None once removed *)
  mutable live : bool;
}

type 'a t = {
  node_count : int; (* power of two *)
  sums : float array; (* 1-based binary tree over nodes; leaf i at node_count + i *)
  locals : 'a handle List_lottery.t array;
  mutable nclients : int;
  mutable next_node : int; (* round-robin placement for node-less adds *)
  mutable draws : int;
  mutable messages : int;
}

let create ~nodes () =
  if nodes <= 0 then invalid_arg "Distributed_lottery.create: nodes <= 0";
  let rec up c = if c >= nodes then c else up (c * 2) in
  let node_count = up 1 in
  {
    node_count;
    sums = Array.make (2 * node_count) 0.;
    locals = Array.init node_count (fun _ -> List_lottery.create ~order:Unordered ());
    nclients = 0;
    next_node = 0;
    draws = 0;
    messages = 0;
  }

let nodes t = t.node_count

(* propagate a weight delta from a node's leaf to the root, one message per
   level (the update path of the distributed tree) *)
let bubble_up t node delta =
  let i = ref (t.node_count + node) in
  while !i >= 1 do
    t.sums.(!i) <- t.sums.(!i) +. delta;
    if !i > 1 then t.messages <- t.messages + 1;
    i := !i / 2
  done

let check_node t node =
  if node < 0 || node >= t.node_count then
    invalid_arg "Distributed_lottery: node out of range"

let add_on t ~node ~client ~weight =
  check_node t node;
  let h = { node; hclient = client; local = None; live = true } in
  h.local <- Some (List_lottery.add t.locals.(node) ~client:h ~weight);
  t.nclients <- t.nclients + 1;
  bubble_up t node weight;
  h

(* Node-less registration: clients are spread round-robin, so callers that
   do not care about placement (the [Draw] wrapper) still get balanced
   nodes. *)
let add t ~client ~weight =
  let node = t.next_node in
  t.next_node <- (t.next_node + 1) mod t.node_count;
  add_on t ~node ~client ~weight

let local_handle h =
  match h.local with
  | Some lh -> lh
  | None -> invalid_arg "Distributed_lottery: removed handle"

let remove t h =
  if h.live then begin
    h.live <- false;
    let lh = local_handle h in
    let w = List_lottery.weight t.locals.(h.node) lh in
    List_lottery.remove t.locals.(h.node) lh;
    h.local <- None;
    t.nclients <- t.nclients - 1;
    bubble_up t h.node (-.w)
  end

(* Re-register a removed handle on its original node. Unlike the flat
   backends, the per-node local lottery needs a fresh local handle, so this
   allocates — the distributed backend is a message-count model, not a
   hot-path structure. *)
let readd t h ~weight =
  if weight < 0. then invalid_arg "Distributed_lottery.readd: negative weight";
  if h.live then invalid_arg "Distributed_lottery.readd: handle still live";
  h.live <- true;
  h.local <- Some (List_lottery.add t.locals.(h.node) ~client:h ~weight);
  t.nclients <- t.nclients + 1;
  bubble_up t h.node weight

let set_weight t h weight =
  if not h.live then invalid_arg "Distributed_lottery.set_weight: removed handle";
  let lh = local_handle h in
  let old = List_lottery.weight t.locals.(h.node) lh in
  List_lottery.set_weight t.locals.(h.node) lh weight;
  bubble_up t h.node (weight -. old)

let clear t =
  Array.iter
    (fun local ->
      List_lottery.iter local (fun lh ->
          let h = List_lottery.client lh in
          h.live <- false;
          h.local <- None);
      List_lottery.clear local)
    t.locals;
  Array.fill t.sums 0 (Array.length t.sums) 0.;
  t.nclients <- 0;
  t.next_node <- 0

let weight t h =
  match h.local with
  | Some lh -> List_lottery.weight t.locals.(h.node) lh
  | None -> 0.

let node_of h = h.node
let client h = h.hclient
let mem t h =
  h.live
  &&
  match h.local with
  | Some lh -> List_lottery.mem t.locals.(h.node) lh
  | None -> false
let size t = t.nclients
let total t = Float.max 0. t.sums.(1)

let node_total t node =
  check_node t node;
  Float.max 0. t.sums.(t.node_count + node)

(* Walk the inter-node tree from the root to the owning node; each hop is a
   message. Returns the node and the residual winning value. *)
let descend t winning =
  let winning = ref winning in
  let i = ref 1 in
  while !i < t.node_count do
    let left = 2 * !i in
    if !winning < t.sums.(left) || t.sums.(left + 1) <= 0. then i := left
    else begin
      winning := !winning -. t.sums.(left);
      i := left + 1
    end;
    t.messages <- t.messages + 1
  done;
  (!i - t.node_count, !winning)

(* The winner of a deterministic winning value, as its node and local slot
   packed into one int token ([lslot * node_count + node]): the
   allocation-light currency shared by [draw_slot]/[client_at]. *)
let token_for_value t winning =
  let node, w = descend t winning in
  (* final local lottery on the owning node (clamped for float drift) *)
  let local = t.locals.(node) in
  let w = Float.min w (Float.max 0. (List_lottery.total local -. 1e-9)) in
  let lslot = List_lottery.slot_for_value local (Float.max 0. w) in
  if lslot < 0 then -1 else (lslot * t.node_count) + node

let handle_at t token =
  List_lottery.client_at t.locals.(token mod t.node_count) (token / t.node_count)

let client_at t token = (handle_at t token).hclient

let draw_with_value t ~winning =
  if winning < 0. then invalid_arg "Distributed_lottery.draw_with_value: negative";
  if total t <= 0. then None
  else
    match token_for_value t winning with
    | -1 -> None
    | tok -> Some (handle_at t tok)

let draw_slot t rng =
  t.draws <- t.draws + 1;
  if total t <= 0. then -1
  else begin
    let u =
      float_of_int (Lotto_prng.Rng.bits53 rng) /. float_of_int (1 lsl 53)
    in
    token_for_value t (u *. total t)
  end

let draw t rng =
  let s = draw_slot t rng in
  if s < 0 then None else Some (handle_at t s)

let draw_client t rng =
  let s = draw_slot t rng in
  if s < 0 then None else Some (client_at t s)

let draw_k t rng ~k out =
  if total t <= 0. || k <= 0 then 0
  else begin
    let n = min k (Array.length out) in
    let i = ref 0 in
    let live = ref true in
    while !live && !i < n do
      let s = draw_slot t rng in
      if s < 0 then live := false
      else begin
        out.(!i) <- client_at t s;
        incr i
      end
    done;
    !i
  end

let iter t f =
  Array.iter (fun local -> List_lottery.iter local (fun lh -> f (List_lottery.client lh))) t.locals

let to_list t =
  let acc = ref [] in
  iter t (fun h -> acc := (client h, weight t h) :: !acc);
  List.rev !acc

let draws t = t.draws
let messages t = t.messages
