(* Flat cumulative-sum lottery: draws binary-search a preallocated prefix-sum
   float array rebuilt lazily — O(n) once after any burst of mutations, then
   O(log n) per draw with no pointer chasing and no allocation. The slot
   arena (LIFO free stack, [free_weight] sentinel, power-of-two capacity)
   mirrors {!Tree_lottery} exactly, so an identical add/remove sequence
   assigns identical slots and a draw with the same winning value picks the
   same client. *)

type 'a handle = { mutable slot : int; (* -1 once removed *) c : 'a }

let free_weight = -1.

type 'a t = {
  mutable cum : float array; (* inclusive prefix sums over slots 0..used-1 *)
  mutable weights : float array; (* per-slot exact weight; free_weight = vacant *)
  mutable slots : 'a handle array; (* [||] until the first add *)
  mutable capacity : int; (* power of two *)
  mutable used : int; (* high-water mark of allocated slots *)
  mutable free : int array; (* stack of vacated slots *)
  mutable free_top : int;
  mutable size : int;
  mutable total : float; (* incremental, same accumulation drift as Tree *)
  mutable built : bool; (* cum agrees with weights *)
}

let create ?(initial_capacity = 16) () =
  let cap = max 2 initial_capacity in
  let cap =
    let rec up c = if c >= cap then c else up (c * 2) in
    up 2
  in
  {
    cum = Array.make cap 0.;
    weights = Array.make cap free_weight;
    slots = [||];
    capacity = cap;
    used = 0;
    free = Array.make cap 0;
    free_top = 0;
    size = 0;
    total = 0.;
    built = true;
  }

let occupied t s = t.weights.(s) >= 0.

let grow t =
  let cap = t.capacity * 2 in
  let weights = Array.make cap free_weight in
  Array.blit t.weights 0 weights 0 t.capacity;
  if Array.length t.slots > 0 then begin
    let slots = Array.make cap t.slots.(0) in
    Array.blit t.slots 0 slots 0 t.capacity;
    t.slots <- slots
  end;
  t.weights <- weights;
  t.capacity <- cap;
  t.cum <- Array.make cap 0.;
  t.built <- false

let push_free t s =
  if t.free_top = Array.length t.free then begin
    let free = Array.make (2 * Array.length t.free) 0 in
    Array.blit t.free 0 free 0 t.free_top;
    t.free <- free
  end;
  t.free.(t.free_top) <- s;
  t.free_top <- t.free_top + 1

let add t ~client ~weight =
  if weight < 0. then invalid_arg "Cumul_lottery.add: negative weight";
  let slot =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top)
    end
    else begin
      if t.used = t.capacity then grow t;
      let s = t.used in
      t.used <- t.used + 1;
      s
    end
  in
  let h = { slot; c = client } in
  if Array.length t.slots = 0 then t.slots <- Array.make t.capacity h;
  t.slots.(slot) <- h;
  t.weights.(slot) <- weight;
  t.total <- t.total +. weight;
  t.size <- t.size + 1;
  t.built <- false;
  h

let remove t h =
  if h.slot >= 0 then begin
    let s = h.slot in
    t.total <- t.total -. t.weights.(s);
    t.weights.(s) <- free_weight;
    push_free t s;
    t.size <- t.size - 1;
    h.slot <- -1;
    t.built <- false
  end

(* Re-insert a removed handle without allocating a new one (the migration
   primitive; see {!Tree_lottery.readd}). *)
let readd t h ~weight =
  if weight < 0. then invalid_arg "Cumul_lottery.readd: negative weight";
  if h.slot >= 0 then invalid_arg "Cumul_lottery.readd: handle still live";
  let slot =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top)
    end
    else begin
      if t.used = t.capacity then grow t;
      let s = t.used in
      t.used <- t.used + 1;
      s
    end
  in
  h.slot <- slot;
  if Array.length t.slots = 0 then t.slots <- Array.make t.capacity h;
  t.slots.(slot) <- h;
  t.weights.(slot) <- weight;
  t.total <- t.total +. weight;
  t.size <- t.size + 1;
  t.built <- false

let set_weight t h weight =
  if weight < 0. then invalid_arg "Cumul_lottery.set_weight: negative weight";
  if h.slot < 0 then invalid_arg "Cumul_lottery.set_weight: removed handle";
  t.total <- t.total +. (weight -. t.weights.(h.slot));
  t.weights.(h.slot) <- weight;
  t.built <- false

let clear t =
  for s = 0 to t.used - 1 do
    if occupied t s then t.slots.(s).slot <- -1;
    t.weights.(s) <- free_weight
  done;
  t.used <- 0;
  t.free_top <- 0;
  t.size <- 0;
  t.total <- 0.;
  t.built <- true

let weight t h = if h.slot < 0 then 0. else t.weights.(h.slot)
let client h = h.c
let mem t h =
  h.slot >= 0
  && h.slot < Array.length t.slots
  && t.weights.(h.slot) >= 0.
  && t.slots.(h.slot) == h
let total t = max t.total 0.
let size t = t.size

(* The dirtiness contract: any mutation marks the structure dirty; the next
   draw pays one O(used) pass rebuilding exact prefix sums (vacant and
   zero-weight slots contribute nothing, so their [cum] entry repeats the
   previous sum and the search skips them). [total] stays incremental —
   accumulating deltas in the same order as {!Tree_lottery} — so the
   winning value computed from it is bit-for-bit the tree's. *)
let rebuild t =
  let acc = ref 0. in
  for s = 0 to t.used - 1 do
    let w = t.weights.(s) in
    if w > 0. then acc := !acc +. w;
    t.cum.(s) <- !acc
  done;
  t.built <- true

(* First slot whose exact prefix sum exceeds the winning value; [-1] when
   float drift pushed [winning] past the rebuilt total. [@inline] keeps the
   winning value in a register on the draw path: a non-inlined call would
   box the float argument. *)
let[@inline] search t winning =
  let lo = ref 0 and hi = ref t.used in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if t.cum.(mid) <= winning then lo := mid + 1 else hi := mid
  done;
  if !lo < t.used then !lo else -1

let last_live_slot t =
  let found = ref (-1) in
  for s = 0 to t.used - 1 do
    if t.weights.(s) > 0. then found := s
  done;
  !found

let draw_slot t rng =
  if t.total <= 0. then -1
  else begin
    if not t.built then rebuild t;
    let u =
      float_of_int (Lotto_prng.Rng.bits53 rng) /. float_of_int (1 lsl 53)
    in
    let s = search t (u *. t.total) in
    if s >= 0 then s else last_live_slot t
  end

let client_at t s = t.slots.(s).c

let draw t rng =
  let s = draw_slot t rng in
  if s < 0 then None else Some t.slots.(s)

let draw_client t rng =
  let s = draw_slot t rng in
  if s < 0 then None else Some t.slots.(s).c

let draw_with_value t ~winning =
  if winning < 0. then invalid_arg "Cumul_lottery.draw_with_value: negative";
  if t.total <= 0. then None
  else begin
    if not t.built then rebuild t;
    let s = search t winning in
    let s = if s >= 0 then s else last_live_slot t in
    if s < 0 then None else Some t.slots.(s)
  end

let draw_k t rng ~k out =
  if t.total <= 0. || k <= 0 then 0
  else begin
    if not t.built then rebuild t;
    let n = min k (Array.length out) in
    let i = ref 0 in
    let live = ref true in
    while !live && !i < n do
      let s = draw_slot t rng in
      if s < 0 then live := false
      else begin
        out.(!i) <- t.slots.(s).c;
        incr i
      end
    done;
    !i
  end

let iter t f =
  for s = 0 to t.used - 1 do
    if occupied t s then f t.slots.(s)
  done

let to_list t =
  let acc = ref [] in
  for s = t.used - 1 downto 0 do
    if occupied t s then acc := (t.slots.(s).c, t.weights.(s)) :: !acc
  done;
  !acc
