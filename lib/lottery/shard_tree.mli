(** Inter-shard partial-sum tree for per-CPU lottery shards.

    The paper's §4.2 distributed lottery keeps a binary tree of partial
    ticket sums over the nodes and descends it to pick the node holding
    the winning ticket; {!Distributed_lottery} implements that with its
    own per-node local lotteries. This module is the same inter-node tree
    with the leaves decoupled: each leaf mirrors the live ticket mass of
    an arbitrary per-shard {!Draw.t}, so a sharded scheduler can pick a
    steal source ticket-weighted, find the least-loaded shard for
    placement, and read the global mass — all O(log shards) or O(shards)
    and allocation-free. *)

type t

val create : shards:int -> t
(** All leaves start at mass 0. Raises on [shards <= 0]. *)

val shards : t -> int

val set : t -> int -> float -> unit
(** [set t i mass] writes shard [i]'s absolute mass, bubbling the delta to
    the root; a no-op when the value is unchanged. *)

val get : t -> int -> float

val total : t -> float

val pick : t -> u:float -> int
(** Ticket-weighted shard pick for a uniform deviate [u] in [0, 1): the
    shard covering [u * total] in the partial-sum descent, or [-1] when no
    shard holds mass. Zero-mass shards never win. *)

val min_shard : t -> int
(** Least-loaded shard, lowest id on ties — the deterministic
    ticket-weighted placement target. *)

val max_shard : t -> int
(** Most-loaded shard, lowest id on ties — the rebalance source. *)
