type 'a handle = { mutable slot : int; (* -1 once removed *) c : 'a }

(* Slots are unboxed: [weights.(s)] doubles as the occupancy flag with a
   [free_weight] sentinel for vacant slots, and [slots] is a plain handle
   array (filled lazily with the first handle ever added, then overwritten
   slot by slot). The free list is an int-array stack, so add/remove churn
   allocates nothing beyond the handle record itself. *)
let free_weight = -1.

type 'a t = {
  mutable tree : float array; (* 1-based Fenwick array of partial sums *)
  mutable weights : float array; (* per-slot exact weight; free_weight = vacant *)
  mutable slots : 'a handle array; (* [||] until the first add *)
  mutable capacity : int; (* power of two *)
  mutable used : int; (* high-water mark of allocated slots *)
  mutable free : int array; (* stack of vacated slots *)
  mutable free_top : int;
  mutable size : int;
  mutable total : float;
}

let create ?(initial_capacity = 16) () =
  let cap = max 2 initial_capacity in
  (* round up to a power of two for a clean Fenwick descend *)
  let cap =
    let rec up c = if c >= cap then c else up (c * 2) in
    up 2
  in
  {
    tree = Array.make (cap + 1) 0.;
    weights = Array.make cap free_weight;
    slots = [||];
    capacity = cap;
    used = 0;
    free = Array.make cap 0;
    free_top = 0;
    size = 0;
    total = 0.;
  }

let occupied t s = t.weights.(s) >= 0.

let bump t slot delta =
  (* Standard Fenwick point update: add delta to slot (0-based) upward. *)
  let i = ref (slot + 1) in
  while !i <= t.capacity do
    t.tree.(!i) <- t.tree.(!i) +. delta;
    i := !i + (!i land - !i)
  done;
  t.total <- t.total +. delta

let rebuild t =
  Array.fill t.tree 0 (t.capacity + 1) 0.;
  t.total <- 0.;
  for s = 0 to t.used - 1 do
    if t.weights.(s) > 0. then begin
      let w = t.weights.(s) in
      let i = ref (s + 1) in
      while !i <= t.capacity do
        t.tree.(!i) <- t.tree.(!i) +. w;
        i := !i + (!i land - !i)
      done;
      t.total <- t.total +. w
    end
  done

let grow t =
  let cap = t.capacity * 2 in
  let weights = Array.make cap free_weight in
  Array.blit t.weights 0 weights 0 t.capacity;
  if Array.length t.slots > 0 then begin
    let slots = Array.make cap t.slots.(0) in
    Array.blit t.slots 0 slots 0 t.capacity;
    t.slots <- slots
  end;
  t.weights <- weights;
  t.capacity <- cap;
  t.tree <- Array.make (cap + 1) 0.;
  rebuild t

let push_free t s =
  if t.free_top = Array.length t.free then begin
    let free = Array.make (2 * Array.length t.free) 0 in
    Array.blit t.free 0 free 0 t.free_top;
    t.free <- free
  end;
  t.free.(t.free_top) <- s;
  t.free_top <- t.free_top + 1

let add t ~client ~weight =
  if weight < 0. then invalid_arg "Tree_lottery.add: negative weight";
  let slot =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top)
    end
    else begin
      if t.used = t.capacity then grow t;
      let s = t.used in
      t.used <- t.used + 1;
      s
    end
  in
  let h = { slot; c = client } in
  if Array.length t.slots = 0 then t.slots <- Array.make t.capacity h;
  t.slots.(slot) <- h;
  t.weights.(slot) <- weight;
  bump t slot weight;
  t.size <- t.size + 1;
  h

let remove t h =
  if h.slot >= 0 then begin
    let s = h.slot in
    bump t s (-.t.weights.(s));
    t.weights.(s) <- free_weight;
    push_free t s;
    t.size <- t.size - 1;
    h.slot <- -1
  end

let set_weight t h weight =
  if weight < 0. then invalid_arg "Tree_lottery.set_weight: negative weight";
  if h.slot < 0 then invalid_arg "Tree_lottery.set_weight: removed handle";
  bump t h.slot (weight -. t.weights.(h.slot));
  t.weights.(h.slot) <- weight

let clear t =
  for s = 0 to t.used - 1 do
    if occupied t s then t.slots.(s).slot <- -1;
    t.weights.(s) <- free_weight
  done;
  Array.fill t.tree 0 (t.capacity + 1) 0.;
  t.used <- 0;
  t.free_top <- 0;
  t.size <- 0;
  t.total <- 0.

let weight t h = if h.slot < 0 then 0. else t.weights.(h.slot)
let client h = h.c
let mem _t h = h.slot >= 0
let total t = max t.total 0.
let size t = t.size

let descend t winning =
  (* Fenwick tree search: find the lowest slot whose prefix sum exceeds the
     winning value. *)
  let pos = ref 0 in
  let rest = ref winning in
  let step = ref t.capacity in
  while !step > 0 do
    let next = !pos + !step in
    if next <= t.capacity && t.tree.(next) <= !rest then begin
      rest := !rest -. t.tree.(next);
      pos := next
    end;
    step := !step / 2
  done;
  !pos (* 0-based slot of the winner *)

let last_live t =
  let found = ref None in
  for s = 0 to t.used - 1 do
    if t.weights.(s) > 0. then found := Some t.slots.(s)
  done;
  !found

let draw_with_value t ~winning =
  if winning < 0. then invalid_arg "Tree_lottery.draw_with_value: negative";
  if t.total <= 0. then None
  else begin
    let s = descend t winning in
    if s < t.capacity && t.weights.(s) > 0. then Some t.slots.(s)
    else
      (* float drift pushed the winning value past the true total *)
      last_live t
  end

let draw t rng =
  if t.total <= 0. then None
  else draw_with_value t ~winning:(Lotto_prng.Rng.float_unit rng *. t.total)

let draw_client t rng = Option.map client (draw t rng)

let iter t f =
  for s = 0 to t.used - 1 do
    if occupied t s then f t.slots.(s)
  done

let to_list t =
  let acc = ref [] in
  for s = t.used - 1 downto 0 do
    if occupied t s then acc := (t.slots.(s).c, t.weights.(s)) :: !acc
  done;
  !acc
