type 'a handle = { mutable slot : int; (* -1 once removed *) c : 'a }

type 'a t = {
  mutable tree : float array; (* 1-based Fenwick array of partial sums *)
  mutable weights : float array; (* per-slot exact weight *)
  mutable slots : 'a handle option array;
  mutable capacity : int; (* power of two *)
  mutable used : int; (* high-water mark of allocated slots *)
  mutable free : int list;
  mutable size : int;
  mutable total : float;
}

let create ?(initial_capacity = 16) () =
  let cap = max 2 initial_capacity in
  (* round up to a power of two for a clean Fenwick descend *)
  let cap =
    let rec up c = if c >= cap then c else up (c * 2) in
    up 2
  in
  {
    tree = Array.make (cap + 1) 0.;
    weights = Array.make cap 0.;
    slots = Array.make cap None;
    capacity = cap;
    used = 0;
    free = [];
    size = 0;
    total = 0.;
  }

let bump t slot delta =
  (* Standard Fenwick point update: add delta to slot (0-based) upward. *)
  let i = ref (slot + 1) in
  while !i <= t.capacity do
    t.tree.(!i) <- t.tree.(!i) +. delta;
    i := !i + (!i land - !i)
  done;
  t.total <- t.total +. delta

let rebuild t =
  Array.fill t.tree 0 (t.capacity + 1) 0.;
  t.total <- 0.;
  for s = 0 to t.used - 1 do
    if t.weights.(s) > 0. then begin
      let w = t.weights.(s) in
      let i = ref (s + 1) in
      while !i <= t.capacity do
        t.tree.(!i) <- t.tree.(!i) +. w;
        i := !i + (!i land - !i)
      done;
      t.total <- t.total +. w
    end
  done

let grow t =
  let cap = t.capacity * 2 in
  let weights = Array.make cap 0. in
  let slots = Array.make cap None in
  Array.blit t.weights 0 weights 0 t.capacity;
  Array.blit t.slots 0 slots 0 t.capacity;
  t.weights <- weights;
  t.slots <- slots;
  t.capacity <- cap;
  t.tree <- Array.make (cap + 1) 0.;
  rebuild t

let add t ~client ~weight =
  if weight < 0. then invalid_arg "Tree_lottery.add: negative weight";
  let slot =
    match t.free with
    | s :: rest ->
        t.free <- rest;
        s
    | [] ->
        if t.used = t.capacity then grow t;
        let s = t.used in
        t.used <- t.used + 1;
        s
  in
  let h = { slot; c = client } in
  t.slots.(slot) <- Some h;
  t.weights.(slot) <- weight;
  bump t slot weight;
  t.size <- t.size + 1;
  h

let remove t h =
  if h.slot >= 0 then begin
    let s = h.slot in
    bump t s (-.t.weights.(s));
    t.weights.(s) <- 0.;
    t.slots.(s) <- None;
    t.free <- s :: t.free;
    t.size <- t.size - 1;
    h.slot <- -1
  end

let set_weight t h weight =
  if weight < 0. then invalid_arg "Tree_lottery.set_weight: negative weight";
  if h.slot < 0 then invalid_arg "Tree_lottery.set_weight: removed handle";
  bump t h.slot (weight -. t.weights.(h.slot));
  t.weights.(h.slot) <- weight

let clear t =
  for s = 0 to t.used - 1 do
    (match t.slots.(s) with Some h -> h.slot <- -1 | None -> ());
    t.slots.(s) <- None;
    t.weights.(s) <- 0.
  done;
  Array.fill t.tree 0 (t.capacity + 1) 0.;
  t.used <- 0;
  t.free <- [];
  t.size <- 0;
  t.total <- 0.

let weight t h = if h.slot < 0 then 0. else t.weights.(h.slot)
let client h = h.c
let mem _t h = h.slot >= 0
let total t = max t.total 0.
let size t = t.size

let descend t winning =
  (* Fenwick tree search: find the lowest slot whose prefix sum exceeds the
     winning value. *)
  let pos = ref 0 in
  let rest = ref winning in
  let step = ref t.capacity in
  while !step > 0 do
    let next = !pos + !step in
    if next <= t.capacity && t.tree.(next) <= !rest then begin
      rest := !rest -. t.tree.(next);
      pos := next
    end;
    step := !step / 2
  done;
  !pos (* 0-based slot of the winner *)

let last_live t =
  let found = ref None in
  for s = 0 to t.used - 1 do
    if t.weights.(s) > 0. then found := t.slots.(s)
  done;
  !found

let draw_with_value t ~winning =
  if winning < 0. then invalid_arg "Tree_lottery.draw_with_value: negative";
  if t.total <= 0. then None
  else begin
    let s = descend t winning in
    if s < t.capacity && t.weights.(s) > 0. then t.slots.(s)
    else
      (* float drift pushed the winning value past the true total *)
      last_live t
  end

let draw t rng =
  if t.total <= 0. then None
  else
    draw_with_value t ~winning:(Lotto_prng.Rng.float_unit rng *. t.total)

let draw_client t rng = Option.map client (draw t rng)

let iter t f =
  for s = 0 to t.used - 1 do
    match t.slots.(s) with Some h -> f h | None -> ()
  done

let to_list t =
  let acc = ref [] in
  for s = t.used - 1 downto 0 do
    match t.slots.(s) with
    | Some h -> acc := (h.c, t.weights.(s)) :: !acc
    | None -> ()
  done;
  !acc
