type 'a handle = { mutable slot : int; (* -1 once removed *) c : 'a }

(* Slots are unboxed: [weights.(s)] doubles as the occupancy flag with a
   [free_weight] sentinel for vacant slots, and [slots] is a plain handle
   array (filled lazily with the first handle ever added, then overwritten
   slot by slot). The free list is an int-array stack, so add/remove churn
   allocates nothing beyond the handle record itself. *)
let free_weight = -1.

type 'a t = {
  mutable tree : float array; (* 1-based Fenwick array of partial sums *)
  mutable weights : float array; (* per-slot exact weight; free_weight = vacant *)
  mutable slots : 'a handle array; (* [||] until the first add *)
  mutable capacity : int; (* power of two *)
  mutable used : int; (* high-water mark of allocated slots *)
  mutable free : int array; (* stack of vacated slots *)
  mutable free_top : int;
  mutable size : int;
}

(* The total lives in the Fenwick root: [capacity] is always a power of
   two, so node [capacity] covers the whole range [1..capacity] and
   receives exactly the same [+. delta] sequence a separate accumulator
   would — without the boxed-float store a [mutable total : float] field
   in this mixed record costs on every update. Keeping the hot remove/
   readd/set_weight path allocation-free is what lets a sharded scheduler
   dequeue-on-dispatch every quantum. *)
let[@inline] raw_total t = t.tree.(t.capacity)

let create ?(initial_capacity = 16) () =
  let cap = max 2 initial_capacity in
  (* round up to a power of two for a clean Fenwick descend *)
  let cap =
    let rec up c = if c >= cap then c else up (c * 2) in
    up 2
  in
  {
    tree = Array.make (cap + 1) 0.;
    weights = Array.make cap free_weight;
    slots = [||];
    capacity = cap;
    used = 0;
    free = Array.make cap 0;
    free_top = 0;
    size = 0;
  }

let occupied t s = t.weights.(s) >= 0.

let bump t slot delta =
  (* Standard Fenwick point update: add delta to slot (0-based) upward. *)
  let i = ref (slot + 1) in
  while !i <= t.capacity do
    t.tree.(!i) <- t.tree.(!i) +. delta;
    i := !i + (!i land - !i)
  done

let rebuild t =
  Array.fill t.tree 0 (t.capacity + 1) 0.;
  for s = 0 to t.used - 1 do
    if t.weights.(s) > 0. then begin
      let w = t.weights.(s) in
      let i = ref (s + 1) in
      while !i <= t.capacity do
        t.tree.(!i) <- t.tree.(!i) +. w;
        i := !i + (!i land - !i)
      done
    end
  done

let grow t =
  let cap = t.capacity * 2 in
  let weights = Array.make cap free_weight in
  Array.blit t.weights 0 weights 0 t.capacity;
  if Array.length t.slots > 0 then begin
    let slots = Array.make cap t.slots.(0) in
    Array.blit t.slots 0 slots 0 t.capacity;
    t.slots <- slots
  end;
  t.weights <- weights;
  t.capacity <- cap;
  t.tree <- Array.make (cap + 1) 0.;
  rebuild t

let push_free t s =
  if t.free_top = Array.length t.free then begin
    let free = Array.make (2 * Array.length t.free) 0 in
    Array.blit t.free 0 free 0 t.free_top;
    t.free <- free
  end;
  t.free.(t.free_top) <- s;
  t.free_top <- t.free_top + 1

let add t ~client ~weight =
  if weight < 0. then invalid_arg "Tree_lottery.add: negative weight";
  let slot =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top)
    end
    else begin
      if t.used = t.capacity then grow t;
      let s = t.used in
      t.used <- t.used + 1;
      s
    end
  in
  let h = { slot; c = client } in
  if Array.length t.slots = 0 then t.slots <- Array.make t.capacity h;
  t.slots.(slot) <- h;
  t.weights.(slot) <- weight;
  bump t slot weight;
  t.size <- t.size + 1;
  h

let remove t h =
  if h.slot >= 0 then begin
    let s = h.slot in
    bump t s (-.t.weights.(s));
    t.weights.(s) <- free_weight;
    push_free t s;
    t.size <- t.size - 1;
    h.slot <- -1
  end

(* Re-insert a removed handle without allocating a new one: the migration
   primitive. The handle record is reused in place, so callers holding
   [Some h] boxes keep them valid across a remove/readd pair — a migration
   between two structures costs zero minor words in the steady state. *)
let readd t h ~weight =
  if weight < 0. then invalid_arg "Tree_lottery.readd: negative weight";
  if h.slot >= 0 then invalid_arg "Tree_lottery.readd: handle still live";
  let slot =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top)
    end
    else begin
      if t.used = t.capacity then grow t;
      let s = t.used in
      t.used <- t.used + 1;
      s
    end
  in
  h.slot <- slot;
  if Array.length t.slots = 0 then t.slots <- Array.make t.capacity h;
  t.slots.(slot) <- h;
  t.weights.(slot) <- weight;
  bump t slot weight;
  t.size <- t.size + 1

let set_weight t h weight =
  if weight < 0. then invalid_arg "Tree_lottery.set_weight: negative weight";
  if h.slot < 0 then invalid_arg "Tree_lottery.set_weight: removed handle";
  bump t h.slot (weight -. t.weights.(h.slot));
  t.weights.(h.slot) <- weight

let clear t =
  for s = 0 to t.used - 1 do
    if occupied t s then t.slots.(s).slot <- -1;
    t.weights.(s) <- free_weight
  done;
  Array.fill t.tree 0 (t.capacity + 1) 0.;
  t.used <- 0;
  t.free_top <- 0;
  t.size <- 0

let weight t h = if h.slot < 0 then 0. else t.weights.(h.slot)
let client h = h.c
let mem t h =
  h.slot >= 0
  && h.slot < Array.length t.slots
  && t.weights.(h.slot) >= 0.
  && t.slots.(h.slot) == h
let total t = max (raw_total t) 0.
let size t = t.size

let[@inline] descend t winning =
  (* Fenwick tree search: find the lowest slot whose prefix sum exceeds the
     winning value. *)
  let pos = ref 0 in
  let rest = ref winning in
  let step = ref t.capacity in
  while !step > 0 do
    let next = !pos + !step in
    if next <= t.capacity && t.tree.(next) <= !rest then begin
      rest := !rest -. t.tree.(next);
      pos := next
    end;
    step := !step / 2
  done;
  !pos (* 0-based slot of the winner *)

let last_live_slot t =
  let found = ref (-1) in
  for s = 0 to t.used - 1 do
    if t.weights.(s) > 0. then found := s
  done;
  !found

(* [@inline] keeps the freshly computed winning value in a register on the
   draw path: a non-inlined call would box the float argument. *)
let[@inline] slot_for_value t winning =
  let s = descend t winning in
  if s < t.capacity && t.weights.(s) > 0. then s
  else
    (* float drift pushed the winning value past the true total *)
    last_live_slot t

let draw_with_value t ~winning =
  if winning < 0. then invalid_arg "Tree_lottery.draw_with_value: negative";
  if raw_total t <= 0. then None
  else
    match slot_for_value t winning with -1 -> None | s -> Some t.slots.(s)

let draw_slot t rng =
  if raw_total t <= 0. then -1
  else begin
    let u =
      float_of_int (Lotto_prng.Rng.bits53 rng) /. float_of_int (1 lsl 53)
    in
    slot_for_value t (u *. raw_total t)
  end

let client_at t s = t.slots.(s).c

let draw t rng =
  let s = draw_slot t rng in
  if s < 0 then None else Some t.slots.(s)

let draw_client t rng =
  let s = draw_slot t rng in
  if s < 0 then None else Some t.slots.(s).c

let draw_k t rng ~k out =
  if raw_total t <= 0. || k <= 0 then 0
  else begin
    let n = min k (Array.length out) in
    let i = ref 0 in
    let live = ref true in
    while !live && !i < n do
      let s = draw_slot t rng in
      if s < 0 then live := false
      else begin
        out.(!i) <- t.slots.(s).c;
        incr i
      end
    done;
    !i
  end

let iter t f =
  for s = 0 to t.used - 1 do
    if occupied t s then f t.slots.(s)
  done

let to_list t =
  let acc = ref [] in
  for s = t.used - 1 downto 0 do
    if occupied t s then acc := (t.slots.(s).c, t.weights.(s)) :: !acc
  done;
  !acc
