exception Cycle of string
exception Duplicate_name of string
exception In_use of string

type attach = Unattached | Backs of currency | Held

and ticket = {
  tid : int;
  mutable amount : int;
  denom : currency;
  mutable attach : attach;
  mutable active : bool;
  mutable destroyed : bool;
}

and currency = {
  cid : int;
  cname : string;
  base_p : bool;
  mutable issued : ticket list;
  mutable backing : ticket list;
  mutable active_amount : int;
  mutable alive : bool;
}

type system = {
  mutable next_id : int;
  base_currency : currency;
  by_name : (string, currency) Hashtbl.t;
  mutable all : currency list; (* reverse creation order *)
  mutable watchers : (int * (unit -> unit)) list; (* change subscriptions *)
}

let fresh_id sys =
  let id = sys.next_id in
  sys.next_id <- id + 1;
  id

let create_system () =
  let base_currency =
    {
      cid = 0;
      cname = "base";
      base_p = true;
      issued = [];
      backing = [];
      active_amount = 0;
      alive = true;
    }
  in
  let by_name = Hashtbl.create 16 in
  Hashtbl.replace by_name "base" base_currency;
  { next_id = 1; base_currency; by_name; all = [ base_currency ]; watchers = [] }

let base sys = sys.base_currency

(* Change notification: consumers that cache draw weights (the scheduler,
   the resource managers) subscribe here instead of polling; every mutation
   that can move a valuation or an activation fires the callbacks. The
   callbacks run synchronously and must not mutate the system. *)
type subscription = int

let on_change sys f =
  let wid = fresh_id sys in
  sys.watchers <- (wid, f) :: sys.watchers;
  wid

let unsubscribe sys wid =
  sys.watchers <- List.filter (fun (w, _) -> w <> wid) sys.watchers

let notify sys = List.iter (fun (_, f) -> f ()) sys.watchers

let make_currency sys ~name =
  if Hashtbl.mem sys.by_name name then raise (Duplicate_name name);
  let c =
    {
      cid = fresh_id sys;
      cname = name;
      base_p = false;
      issued = [];
      backing = [];
      active_amount = 0;
      alive = true;
    }
  in
  Hashtbl.replace sys.by_name name c;
  sys.all <- c :: sys.all;
  c

let find_currency sys name = Hashtbl.find_opt sys.by_name name
let currency_name c = c.cname
let currency_id c = c.cid
let is_base c = c.base_p
let currencies sys = List.rev sys.all

let remove_currency sys c =
  if c.base_p then raise (In_use "base currency cannot be removed");
  if not c.alive then invalid_arg "Funding.remove_currency: already removed";
  if c.issued <> [] then raise (In_use (c.cname ^ " still has issued tickets"));
  if c.backing <> [] then raise (In_use (c.cname ^ " still has backing tickets"));
  c.alive <- false;
  Hashtbl.remove sys.by_name c.cname;
  sys.all <- List.filter (fun c' -> c'.cid <> c.cid) sys.all

let active_amount c = c.active_amount
let issued_tickets c = c.issued
let backing_tickets c = c.backing

let issue sys ~currency ~amount =
  if amount < 0 then invalid_arg "Funding.issue: negative amount";
  if not currency.alive then invalid_arg "Funding.issue: dead currency";
  let t =
    {
      tid = fresh_id sys;
      amount;
      denom = currency;
      attach = Unattached;
      active = false;
      destroyed = false;
    }
  in
  currency.issued <- t :: currency.issued;
  t

let amount t = t.amount
let denomination t = t.denom
let ticket_id t = t.tid
let is_active t = t.active
let funds t = match t.attach with Backs c -> Some c | Unattached | Held -> None
let is_held t = t.attach = Held

let check_live t name = if t.destroyed then invalid_arg (name ^ ": destroyed ticket")

(* Activation propagation (paper §4.4): activating a ticket raises its
   denomination's active amount; on a zero -> nonzero transition every
   backing ticket of that currency activates in turn, and symmetrically for
   deactivation. *)
let rec activate_ticket t =
  if not t.active then begin
    t.active <- true;
    let c = t.denom in
    let was_zero = c.active_amount = 0 in
    c.active_amount <- c.active_amount + t.amount;
    if was_zero && c.active_amount > 0 then
      List.iter activate_ticket c.backing
  end

let rec deactivate_ticket t =
  if t.active then begin
    t.active <- false;
    let c = t.denom in
    let was_positive = c.active_amount > 0 in
    c.active_amount <- c.active_amount - t.amount;
    assert (c.active_amount >= 0);
    if was_positive && c.active_amount = 0 then
      List.iter deactivate_ticket c.backing
  end

let set_amount sys t new_amount =
  check_live t "Funding.set_amount";
  if new_amount < 0 then invalid_arg "Funding.set_amount: negative amount";
  if t.active then begin
    let c = t.denom in
    let old_sum = c.active_amount in
    let new_sum = old_sum - t.amount + new_amount in
    t.amount <- new_amount;
    c.active_amount <- new_sum;
    if old_sum = 0 && new_sum > 0 then List.iter activate_ticket c.backing
    else if old_sum > 0 && new_sum = 0 then List.iter deactivate_ticket c.backing
  end
  else t.amount <- new_amount;
  notify sys

(* A backing edge [currency <- ticket] makes [currency]'s value depend on
   the ticket's denomination. Funding [c] with a ticket denominated in [d]
   is cyclic iff [d]'s value already depends on [c]. *)
let would_cycle ~funded ~denom =
  let rec depends_on c =
    c.cid = funded.cid
    || List.exists (fun b -> depends_on b.denom) c.backing
  in
  depends_on denom

let fund sys ~ticket ~currency =
  check_live ticket "Funding.fund";
  if not currency.alive then invalid_arg "Funding.fund: dead currency";
  (match ticket.attach with
  | Unattached -> ()
  | Backs _ | Held -> invalid_arg "Funding.fund: ticket already attached");
  if currency.cid = ticket.denom.cid then
    invalid_arg "Funding.fund: ticket cannot fund its own denomination";
  if would_cycle ~funded:currency ~denom:ticket.denom then
    raise
      (Cycle
         (Printf.sprintf "funding %s with a ticket denominated in %s"
            currency.cname ticket.denom.cname));
  ticket.attach <- Backs currency;
  currency.backing <- ticket :: currency.backing;
  if currency.active_amount > 0 then activate_ticket ticket;
  notify sys

let unfund sys t =
  check_live t "Funding.unfund";
  match t.attach with
  | Backs c ->
      deactivate_ticket t;
      c.backing <- List.filter (fun b -> b.tid <> t.tid) c.backing;
      t.attach <- Unattached;
      notify sys
  | Unattached | Held -> invalid_arg "Funding.unfund: ticket not backing"

let hold sys t =
  check_live t "Funding.hold";
  (match t.attach with
  | Unattached | Held -> ()
  | Backs _ -> invalid_arg "Funding.hold: ticket is backing a currency");
  t.attach <- Held;
  activate_ticket t;
  notify sys

let suspend sys t =
  check_live t "Funding.suspend";
  if t.attach <> Held then invalid_arg "Funding.suspend: ticket not held";
  deactivate_ticket t;
  notify sys

let resume sys t =
  check_live t "Funding.resume";
  if t.attach <> Held then invalid_arg "Funding.resume: ticket not held";
  activate_ticket t;
  notify sys

let release sys t =
  check_live t "Funding.release";
  if t.attach <> Held then invalid_arg "Funding.release: ticket not held";
  deactivate_ticket t;
  t.attach <- Unattached;
  notify sys

let destroy_ticket sys t =
  check_live t "Funding.destroy_ticket";
  (match t.attach with
  | Backs _ -> unfund sys t
  | Held -> release sys t
  | Unattached -> ());
  let c = t.denom in
  c.issued <- List.filter (fun i -> i.tid <> t.tid) c.issued;
  t.destroyed <- true;
  notify sys

module Valuation = struct
  type v = { memo : (int, float) Hashtbl.t }

  let make (_ : system) = { memo = Hashtbl.create 32 }

  let rec unit_value v c =
    if c.base_p then 1.
    else if c.active_amount = 0 then 0.
    else
      match Hashtbl.find_opt v.memo c.cid with
      | Some x -> x
      | None ->
          (* Seed with 0 so a (dynamically created, normally impossible)
             cycle terminates instead of looping. *)
          Hashtbl.replace v.memo c.cid 0.;
          let x = currency_value v c /. float_of_int c.active_amount in
          Hashtbl.replace v.memo c.cid x;
          x

  and currency_value v c =
    if c.base_p then float_of_int c.active_amount
    else
      List.fold_left
        (fun acc t -> if t.active then acc +. ticket_value v t else acc)
        0. c.backing

  and ticket_value v t =
    if not t.active then 0.
    else float_of_int t.amount *. unit_value v t.denom
end

let ticket_value sys t = Valuation.ticket_value (Valuation.make sys) t
let currency_value sys c = Valuation.currency_value (Valuation.make sys) c

let check_invariants sys =
  let fail fmt = Printf.ksprintf failwith fmt in
  List.iter
    (fun c ->
      if not c.alive then fail "dead currency %s in system list" c.cname;
      (* Active amount equals sum of active issued ticket amounts. *)
      let sum =
        List.fold_left (fun acc t -> if t.active then acc + t.amount else acc) 0 c.issued
      in
      if sum <> c.active_amount then
        fail "currency %s: active_amount %d <> recomputed %d" c.cname
          c.active_amount sum;
      (* Attachment symmetry for backing tickets. *)
      List.iter
        (fun t ->
          (match t.attach with
          | Backs c' when c'.cid = c.cid -> ()
          | _ -> fail "currency %s: backing ticket %d not attached to it" c.cname t.tid);
          if t.destroyed then fail "currency %s: destroyed backing ticket" c.cname;
          (* Propagation: a backing ticket is active iff the funded currency
             has a nonzero active amount. *)
          if t.active <> (c.active_amount > 0) then
            fail "currency %s: backing ticket %d activity %b vs amount %d"
              c.cname t.tid t.active c.active_amount)
        c.backing;
      List.iter
        (fun t ->
          if t.destroyed then fail "currency %s: destroyed issued ticket" c.cname;
          if t.denom.cid <> c.cid then
            fail "currency %s: issued ticket %d has wrong denomination" c.cname t.tid;
          match t.attach with
          | Unattached ->
              if t.active then fail "unattached ticket %d is active" t.tid
          | Held -> ()
          | Backs c' ->
              if not (List.exists (fun b -> b.tid = t.tid) c'.backing) then
                fail "ticket %d claims to back %s but is not listed" t.tid c'.cname)
        c.issued;
      (* Acyclicity. *)
      let rec walk seen c' =
        if List.mem c'.cid seen then fail "cycle through currency %s" c'.cname;
        List.iter (fun b -> walk (c'.cid :: seen) b.denom) c'.backing
      in
      walk [] c)
    (currencies sys)

let pp_ticket fmt t =
  Format.fprintf fmt "#%d %d.%s%s%s" t.tid t.amount t.denom.cname
    (if t.active then " [active]" else "")
    (match t.attach with
    | Unattached -> ""
    | Held -> " held"
    | Backs c -> " -> " ^ c.cname)

let pp_currency fmt c =
  Format.fprintf fmt "@[<v 2>currency %s (active %d)@,issued: %a@,backing: %a@]"
    c.cname c.active_amount
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_ticket)
    c.issued
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_ticket)
    c.backing

let to_dot sys =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph funding {\n  rankdir=TB;\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  c%d [shape=box, label=\"%s\\nactive %d\"];\n" c.cid
           c.cname c.active_amount))
    (currencies sys);
  List.iter
    (fun c ->
      List.iter
        (fun t ->
          let style = if t.active then "solid" else "dashed" in
          match t.attach with
          | Backs target ->
              Buffer.add_string buf
                (Printf.sprintf "  c%d -> c%d [label=\"%d.%s\", style=%s];\n" c.cid
                   target.cid t.amount c.cname style)
          | Held ->
              Buffer.add_string buf
                (Printf.sprintf
                   "  t%d [shape=ellipse, label=\"ticket %d.%s\"];\n  c%d -> t%d [style=%s];\n"
                   t.tid t.amount c.cname c.cid t.tid style)
          | Unattached -> ())
        c.issued)
    (currencies sys);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_system fmt sys =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_currency)
    (currencies sys)
