exception Cycle of string
exception Duplicate_name of string
exception In_use of string

module Slots = Lotto_arena.Slots

type attach = Unattached | Backs of currency | Held

and ticket = {
  tid : int;  (** unique forever; never recycled *)
  mutable tkslot : int;
      (** dense arena slot; [-1] once destroyed and the slot recycled *)
  mutable amount : int;
  denom : currency;
  mutable attach : attach;
  mutable active : bool;
  mutable destroyed : bool;
}

and currency = {
  cid : int;  (** unique forever; never recycled *)
  mutable cslot : int;
      (** dense arena slot; [-1] once removed. Consumers (the scheduler)
          index per-currency state arrays by it, guarding against recycling
          with a physical-equality check on the stored currency. *)
  cname : string;
  base_p : bool;
  (* Issued/backing edges live as intrusive doubly-linked lists threaded
     through the system's adjacency arrays ([i_prev]/[i_next] for the
     issued list of the denomination, [b_prev]/[b_next] for the backing
     list of the funded currency), indexed by ticket slot. The heads below
     point at the most recently linked ticket, so iteration order is
     exactly the old most-recent-first list order, and unlinking is O(1)
     instead of a [List.filter] over every edge. *)
  mutable issued_head : int;
  mutable backing_head : int;
  mutable active_amount : int;
  mutable alive : bool;
  (* Incremental valuation cache. [cache_ok] means [val_cache] holds the
     currency's value (sum of its active backing tickets in base units; for
     base, the active amount) and [unit_cache] the base units per unit of
     this currency. Invalidation propagates along backing edges to dependent
     currencies, so a lottery after k mutations revalues O(affected)
     currencies rather than the whole system. *)
  mutable val_cache : float;
  mutable unit_cache : float;
  mutable cache_ok : bool;
}

type change = { dirtied : currency list (* most recently dirtied first *) }

type system = {
  mutable next_id : int;
  base_currency : currency;
  by_name : (string, currency) Hashtbl.t;
  (* Currency arena: [cur_slots] tracks liveness/creation order, [cur_tab]
     maps slot -> record. *)
  cur_slots : Slots.t;
  mutable cur_tab : currency array;
  (* Ticket arena and the edge adjacency arrays indexed by ticket slot. A
     ticket sits in its denomination's issued list for its whole life and
     in at most one backing list (while [attach = Backs _]), so one slot
     carries both link pairs. [-1] terminates. *)
  tk_slots : Slots.t;
  mutable tk_tab : ticket array;
  mutable i_prev : int array;
  mutable i_next : int array;
  mutable b_prev : int array;
  mutable b_next : int array;
  (* Flat watcher table: change subscriptions in a slot arena instead of a
     hashtable, fired in subscription order. *)
  w_slots : Slots.t;
  mutable w_tab : (change -> unit) array;
  mutable dirty_acc : currency list; (* valid->stale flips since last notify *)
}

let fresh_id sys =
  let id = sys.next_id in
  sys.next_id <- id + 1;
  id

let create_system () =
  let cur_slots = Slots.create () in
  let base_slot = Slots.alloc cur_slots in
  let base_currency =
    {
      cid = 0;
      cslot = base_slot;
      cname = "base";
      base_p = true;
      issued_head = -1;
      backing_head = -1;
      active_amount = 0;
      alive = true;
      val_cache = 0.;
      unit_cache = 1.;
      cache_ok = false;
    }
  in
  let cur_tab = Slots.grow_payload cur_slots [||] ~dummy:base_currency in
  cur_tab.(base_slot) <- base_currency;
  let by_name = Hashtbl.create 16 in
  Hashtbl.replace by_name "base" base_currency;
  {
    next_id = 1;
    base_currency;
    by_name;
    cur_slots;
    cur_tab;
    tk_slots = Slots.create ();
    tk_tab = [||];
    i_prev = [||];
    i_next = [||];
    b_prev = [||];
    b_next = [||];
    w_slots = Slots.create ~initial_capacity:4 ();
    w_tab = [||];
    dirty_acc = [];
  }

let base sys = sys.base_currency

(* --- edge lists ---------------------------------------------------------

   Prepends and unlinks on the intrusive lists. New edges link at the head,
   matching the historical [t :: list] prepend, so every traversal below
   visits tickets in the same most-recent-first order as the list
   representation did — load-bearing for the float fold in [ensure] and for
   the order in which cascades and invalidation visit edges. *)

let link_issued sys c s =
  sys.i_prev.(s) <- -1;
  sys.i_next.(s) <- c.issued_head;
  if c.issued_head >= 0 then sys.i_prev.(c.issued_head) <- s;
  c.issued_head <- s

let unlink_issued sys c s =
  let p = sys.i_prev.(s) and n = sys.i_next.(s) in
  if p >= 0 then sys.i_next.(p) <- n else c.issued_head <- n;
  if n >= 0 then sys.i_prev.(n) <- p;
  sys.i_prev.(s) <- -1;
  sys.i_next.(s) <- -1

let link_backing sys c s =
  sys.b_prev.(s) <- -1;
  sys.b_next.(s) <- c.backing_head;
  if c.backing_head >= 0 then sys.b_prev.(c.backing_head) <- s;
  c.backing_head <- s

let unlink_backing sys c s =
  let p = sys.b_prev.(s) and n = sys.b_next.(s) in
  if p >= 0 then sys.b_next.(p) <- n else c.backing_head <- n;
  if n >= 0 then sys.b_prev.(n) <- p;
  sys.b_prev.(s) <- -1;
  sys.b_next.(s) <- -1

(* The next slot is captured before the callback runs, so detaching the
   visited ticket from inside [f] is safe. *)
let iter_issued sys c f =
  let s = ref c.issued_head in
  while !s >= 0 do
    let t = sys.tk_tab.(!s) in
    let n = sys.i_next.(!s) in
    f t;
    s := n
  done

let iter_backing sys c f =
  let s = ref c.backing_head in
  while !s >= 0 do
    let t = sys.tk_tab.(!s) in
    let n = sys.b_next.(!s) in
    f t;
    s := n
  done

let exists_backing sys c f =
  let s = ref c.backing_head in
  let found = ref false in
  while (not !found) && !s >= 0 do
    if f sys.tk_tab.(!s) then found := true else s := sys.b_next.(!s)
  done;
  !found

let collect_list iter sys c =
  let acc = ref [] in
  iter sys c (fun t -> acc := t :: !acc);
  List.rev !acc

(* --- change notification ------------------------------------------------

   Consumers that cache draw weights (the scheduler, the resource managers)
   subscribe here instead of polling; every mutation that can move a
   valuation or an activation fires the callbacks once, with the set of
   currencies whose cached value went stale. The callbacks run synchronously
   and must not mutate the system (recording the dirtied ids for the next
   draw is the intended use). *)

type subscription = { wslot : int; wgen : int }

let on_change sys f =
  (* Subscriptions historically drew their id from the shared counter;
     keep consuming one so the cid/tid sequences of everything created
     after a subscription (visible in pp/dot output) are unchanged. *)
  ignore (fresh_id sys : int);
  let s = Slots.alloc sys.w_slots in
  sys.w_tab <- Slots.grow_payload sys.w_slots sys.w_tab ~dummy:f;
  sys.w_tab.(s) <- f;
  { wslot = s; wgen = Slots.gen sys.w_slots s }

let unsubscribe sys { wslot; wgen } =
  (* The generation check makes double-unsubscribe a no-op even after the
     slot has been recycled by a later subscription. *)
  if Slots.is_live sys.w_slots wslot && Slots.gen sys.w_slots wslot = wgen
  then begin
    Slots.release sys.w_slots wslot;
    sys.w_tab.(wslot) <- (fun (_ : change) -> ())
  end

let changed ch = ch.dirtied

let notify sys =
  let dirtied = sys.dirty_acc in
  sys.dirty_acc <- [];
  if Slots.live_count sys.w_slots > 0 then begin
    let ch = { dirtied } in
    Slots.iter_live sys.w_slots (fun s -> sys.w_tab.(s) ch)
  end

(* --- invalidation -------------------------------------------------------

   A currency's value depends on its backing tickets' denominations, so a
   mutation at [c] can move the value of any currency reachable from [c]
   through issued tickets that back other currencies ("upward", toward the
   thread/client leaves in the paper's Figure 3). Two properties keep this
   cheap and sound:

   - stop-early: if [c] is already stale, every dependent was staled when
     [c] was (reads revalidate a currency only after revalidating everything
     it depends on), so the walk can stop;
   - base opacity: the base currency's unit value is the constant 1, so its
     active-amount changes never move a dependent's value — invalidation of
     base records base itself and propagates no further. This is what makes
     a block/wake of a base-funded thread O(1). *)

let rec invalidate sys c =
  if c.cache_ok then begin
    c.cache_ok <- false;
    sys.dirty_acc <- c :: sys.dirty_acc;
    if not c.base_p then
      iter_issued sys c (fun t ->
          match t.attach with Backs c' -> invalidate sys c' | _ -> ())
  end

let make_currency sys ~name =
  if Hashtbl.mem sys.by_name name then raise (Duplicate_name name);
  let cid = fresh_id sys in
  let s = Slots.alloc sys.cur_slots in
  let c =
    {
      cid;
      cslot = s;
      cname = name;
      base_p = false;
      issued_head = -1;
      backing_head = -1;
      active_amount = 0;
      alive = true;
      val_cache = 0.;
      unit_cache = 0.;
      cache_ok = false;
    }
  in
  sys.cur_tab <- Slots.grow_payload sys.cur_slots sys.cur_tab ~dummy:c;
  sys.cur_tab.(s) <- c;
  Hashtbl.replace sys.by_name name c;
  c

let find_currency sys name = Hashtbl.find_opt sys.by_name name
let currency_name c = c.cname
let currency_id c = c.cid
let currency_slot c = c.cslot

let currency_generation sys c =
  if c.cslot < 0 then -1 else Slots.gen sys.cur_slots c.cslot

let is_base c = c.base_p

let currencies sys =
  List.rev
    (Slots.fold_live sys.cur_slots ~init:[] ~f:(fun acc s ->
         sys.cur_tab.(s) :: acc))

let live_currency_count sys = Slots.live_count sys.cur_slots

let remove_currency sys c =
  if c.base_p then raise (In_use "base currency cannot be removed");
  if not c.alive then invalid_arg "Funding.remove_currency: already removed";
  if c.issued_head >= 0 then
    raise (In_use (c.cname ^ " still has issued tickets"));
  if c.backing_head >= 0 then
    raise (In_use (c.cname ^ " still has backing tickets"));
  c.alive <- false;
  Hashtbl.remove sys.by_name c.cname;
  Slots.release sys.cur_slots c.cslot;
  c.cslot <- -1

let active_amount c = c.active_amount
let issued_tickets sys c = collect_list iter_issued sys c
let backing_tickets sys c = collect_list iter_backing sys c

let issue sys ~currency ~amount =
  if amount < 0 then invalid_arg "Funding.issue: negative amount";
  if not currency.alive then invalid_arg "Funding.issue: dead currency";
  let tid = fresh_id sys in
  let s = Slots.alloc sys.tk_slots in
  let t =
    {
      tid;
      tkslot = s;
      amount;
      denom = currency;
      attach = Unattached;
      active = false;
      destroyed = false;
    }
  in
  sys.tk_tab <- Slots.grow_payload sys.tk_slots sys.tk_tab ~dummy:t;
  sys.tk_tab.(s) <- t;
  sys.i_prev <- Slots.grow_payload sys.tk_slots sys.i_prev ~dummy:(-1);
  sys.i_next <- Slots.grow_payload sys.tk_slots sys.i_next ~dummy:(-1);
  sys.b_prev <- Slots.grow_payload sys.tk_slots sys.b_prev ~dummy:(-1);
  sys.b_next <- Slots.grow_payload sys.tk_slots sys.b_next ~dummy:(-1);
  link_issued sys currency s;
  t

let amount t = t.amount
let denomination t = t.denom
let ticket_id t = t.tid
let ticket_slot t = t.tkslot

let ticket_generation sys t =
  if t.tkslot < 0 then -1 else Slots.gen sys.tk_slots t.tkslot

let is_active t = t.active
let funds t = match t.attach with Backs c -> Some c | Unattached | Held -> None
let is_held t = t.attach = Held

let check_live t name = if t.destroyed then invalid_arg (name ^ ": destroyed ticket")

(* A ticket's activity flip moves two things: its denomination's active
   amount (hence unit value), and — when the ticket backs a currency — that
   currency's value. Both get invalidated here, so the zero-crossing cascade
   below stales exactly the affected region of the graph. *)
let flip_invalidate sys t =
  invalidate sys t.denom;
  match t.attach with Backs c -> invalidate sys c | Unattached | Held -> ()

(* Activation propagation (paper §4.4): activating a ticket raises its
   denomination's active amount; on a zero -> nonzero transition every
   backing ticket of that currency activates in turn, and symmetrically for
   deactivation. *)
let rec activate_ticket sys t =
  if not t.active then begin
    t.active <- true;
    flip_invalidate sys t;
    let c = t.denom in
    let was_zero = c.active_amount = 0 in
    c.active_amount <- c.active_amount + t.amount;
    if was_zero && c.active_amount > 0 then
      iter_backing sys c (activate_ticket sys)
  end

let rec deactivate_ticket sys t =
  if t.active then begin
    t.active <- false;
    flip_invalidate sys t;
    let c = t.denom in
    let was_positive = c.active_amount > 0 in
    c.active_amount <- c.active_amount - t.amount;
    assert (c.active_amount >= 0);
    if was_positive && c.active_amount = 0 then
      iter_backing sys c (deactivate_ticket sys)
  end

let set_amount sys t new_amount =
  check_live t "Funding.set_amount";
  if new_amount < 0 then invalid_arg "Funding.set_amount: negative amount";
  if t.active then begin
    flip_invalidate sys t;
    let c = t.denom in
    let old_sum = c.active_amount in
    let new_sum = old_sum - t.amount + new_amount in
    t.amount <- new_amount;
    c.active_amount <- new_sum;
    if old_sum = 0 && new_sum > 0 then iter_backing sys c (activate_ticket sys)
    else if old_sum > 0 && new_sum = 0 then
      iter_backing sys c (deactivate_ticket sys)
  end
  else t.amount <- new_amount;
  notify sys

(* A backing edge [currency <- ticket] makes [currency]'s value depend on
   the ticket's denomination. Funding [c] with a ticket denominated in [d]
   is cyclic iff [d]'s value already depends on [c]. The walk memoizes
   visited currencies so shared sub-graphs (diamonds) are visited once. *)
let would_cycle sys ~funded ~denom =
  let seen = Hashtbl.create 16 in
  let rec depends_on c =
    c.cid = funded.cid
    || ((not (Hashtbl.mem seen c.cid))
       && begin
            Hashtbl.add seen c.cid ();
            exists_backing sys c (fun b -> depends_on b.denom)
          end)
  in
  depends_on denom

let fund sys ~ticket ~currency =
  check_live ticket "Funding.fund";
  if not currency.alive then invalid_arg "Funding.fund: dead currency";
  (match ticket.attach with
  | Unattached -> ()
  | Backs _ | Held -> invalid_arg "Funding.fund: ticket already attached");
  if currency.cid = ticket.denom.cid then
    invalid_arg "Funding.fund: ticket cannot fund its own denomination";
  if would_cycle sys ~funded:currency ~denom:ticket.denom then
    raise
      (Cycle
         (Printf.sprintf "funding %s with a ticket denominated in %s"
            currency.cname ticket.denom.cname));
  ticket.attach <- Backs currency;
  link_backing sys currency ticket.tkslot;
  invalidate sys currency;
  if currency.active_amount > 0 then activate_ticket sys ticket;
  notify sys

let unfund sys t =
  check_live t "Funding.unfund";
  match t.attach with
  | Backs c ->
      deactivate_ticket sys t;
      unlink_backing sys c t.tkslot;
      t.attach <- Unattached;
      invalidate sys c;
      notify sys
  | Unattached | Held -> invalid_arg "Funding.unfund: ticket not backing"

let hold sys t =
  check_live t "Funding.hold";
  (match t.attach with
  | Unattached | Held -> ()
  | Backs _ -> invalid_arg "Funding.hold: ticket is backing a currency");
  t.attach <- Held;
  activate_ticket sys t;
  notify sys

let suspend sys t =
  check_live t "Funding.suspend";
  if t.attach <> Held then invalid_arg "Funding.suspend: ticket not held";
  deactivate_ticket sys t;
  notify sys

let resume sys t =
  check_live t "Funding.resume";
  if t.attach <> Held then invalid_arg "Funding.resume: ticket not held";
  activate_ticket sys t;
  notify sys

let release sys t =
  check_live t "Funding.release";
  if t.attach <> Held then invalid_arg "Funding.release: ticket not held";
  deactivate_ticket sys t;
  t.attach <- Unattached;
  notify sys

let destroy_ticket sys t =
  check_live t "Funding.destroy_ticket";
  (match t.attach with
  | Backs _ -> unfund sys t
  | Held -> release sys t
  | Unattached -> ());
  unlink_issued sys t.denom t.tkslot;
  Slots.release sys.tk_slots t.tkslot;
  t.tkslot <- -1;
  t.destroyed <- true;
  notify sys

(* --- valuation ----------------------------------------------------------

   Reads revalidate lazily: a stale currency recomputes its value from its
   backing tickets, pulling (and caching) the unit values of their
   denominations on the way down. A quiescent graph is therefore valued
   once, and each mutation only forces recomputation of the currencies it
   actually dirtied. The arithmetic (fold order over the backing edges,
   value/active division) is identical to a from-scratch walk, so cached
   results are bit-for-bit equal to uncached ones. *)

let rec ensure sys c =
  if not c.cache_ok then begin
    (* Seed with 0 so a (dynamically created, normally impossible) cycle
       terminates instead of looping. *)
    c.cache_ok <- true;
    if c.base_p then begin
      c.val_cache <- float_of_int c.active_amount;
      c.unit_cache <- 1.
    end
    else begin
      c.val_cache <- 0.;
      c.unit_cache <- 0.;
      (* Left fold, head (most recent edge) first: the same float
         accumulation order as the historical list fold. *)
      let v = ref 0. in
      let s = ref c.backing_head in
      while !s >= 0 do
        let t = sys.tk_tab.(!s) in
        if t.active then
          v := !v +. (float_of_int t.amount *. unit_val sys t.denom);
        s := sys.b_next.(!s)
      done;
      c.val_cache <- !v;
      c.unit_cache <-
        (if c.active_amount = 0 then 0.
         else !v /. float_of_int c.active_amount)
    end
  end

(* No zero-active shortcut here: a read must leave the currency validated
   (stop-early invalidation relies on "a valid currency has valid
   supports"), and [ensure] already caches unit value 0 in that case. *)
and unit_val sys c =
  if c.base_p then 1.
  else begin
    ensure sys c;
    c.unit_cache
  end

let value_of_currency sys c =
  ensure sys c;
  c.val_cache

(* The denomination is validated even when the ticket is inactive: a
   consumer that caches this 0 must be told (via a change event) when the
   ticket's activation later makes it worth something, and events only fire
   on valid -> stale flips. *)
let value_of_ticket sys t =
  let u = unit_val sys t.denom in
  if t.active then float_of_int t.amount *. u else 0.

module Valuation = struct
  (* Historically a per-draw memo table; the memo now lives on the currency
     records and survives across draws, so a snapshot is just a view of the
     system. Kept for call-site compatibility — making one is free. *)
  type v = system

  let make (sys : system) = sys
  let unit_value sys c = unit_val sys c
  let currency_value sys c = value_of_currency sys c
  let ticket_value sys t = value_of_ticket sys t
end

let ticket_value sys t = value_of_ticket sys t
let currency_value sys c = value_of_currency sys c
let unit_value sys c = unit_val sys c

(* From-scratch valuation with a private memo, bypassing the caches: the
   reference implementation [check_invariants] audits the caches against. *)
let uncached_currency_value sys c =
  let memo = Hashtbl.create 32 in
  let rec unit c =
    if c.base_p then 1.
    else if c.active_amount = 0 then 0.
    else
      match Hashtbl.find_opt memo c.cid with
      | Some x -> x
      | None ->
          Hashtbl.replace memo c.cid 0.;
          let x = value c /. float_of_int c.active_amount in
          Hashtbl.replace memo c.cid x;
          x
  and value c =
    if c.base_p then float_of_int c.active_amount
    else begin
      let acc = ref 0. in
      let s = ref c.backing_head in
      while !s >= 0 do
        let t = sys.tk_tab.(!s) in
        if t.active then acc := !acc +. (float_of_int t.amount *. unit t.denom);
        s := sys.b_next.(!s)
      done;
      !acc
    end
  in
  value c

let check_invariants sys =
  let fail fmt = Printf.ksprintf failwith fmt in
  Slots.iter_live sys.cur_slots (fun slot ->
      let c = sys.cur_tab.(slot) in
      if not c.alive then fail "dead currency %s in arena" c.cname;
      if c.cslot <> slot then
        fail "currency %s: slot field %d <> arena slot %d" c.cname c.cslot slot;
      (* Active amount equals sum of active issued ticket amounts. *)
      let sum = ref 0 in
      iter_issued sys c (fun t -> if t.active then sum := !sum + t.amount);
      if !sum <> c.active_amount then
        fail "currency %s: active_amount %d <> recomputed %d" c.cname
          c.active_amount !sum;
      (* A valid cache must agree exactly with a from-scratch valuation. *)
      if c.cache_ok then begin
        let fresh = uncached_currency_value sys c in
        if c.val_cache <> fresh then
          fail "currency %s: cached value %g <> recomputed %g" c.cname
            c.val_cache fresh;
        let fresh_unit =
          if c.base_p then 1.
          else if c.active_amount = 0 then 0.
          else fresh /. float_of_int c.active_amount
        in
        if (not c.base_p) && c.unit_cache <> fresh_unit then
          fail "currency %s: cached unit value %g <> recomputed %g" c.cname
            c.unit_cache fresh_unit
      end;
      (* Attachment symmetry for backing tickets, plus slot coherence. *)
      iter_backing sys c (fun t ->
          (match t.attach with
          | Backs c' when c'.cid = c.cid -> ()
          | _ ->
              fail "currency %s: backing ticket %d not attached to it" c.cname
                t.tid);
          if t.destroyed then fail "currency %s: destroyed backing ticket" c.cname;
          (* Propagation: a backing ticket is active iff the funded currency
             has a nonzero active amount. *)
          if t.active <> (c.active_amount > 0) then
            fail "currency %s: backing ticket %d activity %b vs amount %d"
              c.cname t.tid t.active c.active_amount);
      iter_issued sys c (fun t ->
          if t.destroyed then fail "currency %s: destroyed issued ticket" c.cname;
          if t.tkslot < 0 || not (sys.tk_tab.(t.tkslot) == t) then
            fail "ticket %d: stale arena slot %d" t.tid t.tkslot;
          if t.denom.cid <> c.cid then
            fail "currency %s: issued ticket %d has wrong denomination" c.cname
              t.tid;
          match t.attach with
          | Unattached ->
              if t.active then fail "unattached ticket %d is active" t.tid
          | Held -> ()
          | Backs c' ->
              if not (exists_backing sys c' (fun b -> b.tid = t.tid)) then
                fail "ticket %d claims to back %s but is not listed" t.tid
                  c'.cname);
      (* Acyclicity: depth-first walk with a white/grey/black marking, so
         shared sub-graphs are visited once instead of once per path. *)
      let color = Hashtbl.create 16 in
      let rec walk c' =
        match Hashtbl.find_opt color c'.cid with
        | Some `Done -> ()
        | Some `On_path -> fail "cycle through currency %s" c'.cname
        | None ->
            Hashtbl.replace color c'.cid `On_path;
            iter_backing sys c' (fun b -> walk b.denom);
            Hashtbl.replace color c'.cid `Done
      in
      walk c)

let pp_ticket fmt t =
  Format.fprintf fmt "#%d %d.%s%s%s" t.tid t.amount t.denom.cname
    (if t.active then " [active]" else "")
    (match t.attach with
    | Unattached -> ""
    | Held -> " held"
    | Backs c -> " -> " ^ c.cname)

let pp_currency sys fmt c =
  Format.fprintf fmt "@[<v 2>currency %s (active %d)@,issued: %a@,backing: %a@]"
    c.cname c.active_amount
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_ticket)
    (issued_tickets sys c)
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_ticket)
    (backing_tickets sys c)

let to_dot sys =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph funding {\n  rankdir=TB;\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  c%d [shape=box, label=\"%s\\nactive %d\"];\n" c.cid
           c.cname c.active_amount))
    (currencies sys);
  List.iter
    (fun c ->
      iter_issued sys c (fun t ->
          let style = if t.active then "solid" else "dashed" in
          match t.attach with
          | Backs target ->
              Buffer.add_string buf
                (Printf.sprintf "  c%d -> c%d [label=\"%d.%s\", style=%s];\n"
                   c.cid target.cid t.amount c.cname style)
          | Held ->
              Buffer.add_string buf
                (Printf.sprintf
                   "  t%d [shape=ellipse, label=\"ticket %d.%s\"];\n  c%d -> t%d [style=%s];\n"
                   t.tid t.amount c.cname c.cid t.tid style)
          | Unattached -> ()))
    (currencies sys);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_system fmt sys =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (pp_currency sys))
    (currencies sys)
