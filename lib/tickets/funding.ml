exception Cycle of string
exception Duplicate_name of string
exception In_use of string

type attach = Unattached | Backs of currency | Held

and ticket = {
  tid : int;
  mutable amount : int;
  denom : currency;
  mutable attach : attach;
  mutable active : bool;
  mutable destroyed : bool;
}

and currency = {
  cid : int;
  cname : string;
  base_p : bool;
  mutable issued : ticket list;
  mutable backing : ticket list;
  mutable active_amount : int;
  mutable alive : bool;
  (* Incremental valuation cache. [cache_ok] means [val_cache] holds the
     currency's value (sum of its active backing tickets in base units; for
     base, the active amount) and [unit_cache] the base units per unit of
     this currency. Invalidation propagates along backing edges to dependent
     currencies, so a lottery after k mutations revalues O(affected)
     currencies rather than the whole system. *)
  mutable val_cache : float;
  mutable unit_cache : float;
  mutable cache_ok : bool;
}

type change = { dirtied : currency list (* most recently dirtied first *) }

type system = {
  mutable next_id : int;
  base_currency : currency;
  by_name : (string, currency) Hashtbl.t;
  mutable all : currency list; (* reverse creation order *)
  watchers : (int, change -> unit) Hashtbl.t; (* change subscriptions *)
  mutable dirty_acc : currency list; (* valid->stale flips since last notify *)
}

let fresh_id sys =
  let id = sys.next_id in
  sys.next_id <- id + 1;
  id

let create_system () =
  let base_currency =
    {
      cid = 0;
      cname = "base";
      base_p = true;
      issued = [];
      backing = [];
      active_amount = 0;
      alive = true;
      val_cache = 0.;
      unit_cache = 1.;
      cache_ok = false;
    }
  in
  let by_name = Hashtbl.create 16 in
  Hashtbl.replace by_name "base" base_currency;
  {
    next_id = 1;
    base_currency;
    by_name;
    all = [ base_currency ];
    watchers = Hashtbl.create 4;
    dirty_acc = [];
  }

let base sys = sys.base_currency

(* --- change notification ------------------------------------------------

   Consumers that cache draw weights (the scheduler, the resource managers)
   subscribe here instead of polling; every mutation that can move a
   valuation or an activation fires the callbacks once, with the set of
   currencies whose cached value went stale. The callbacks run synchronously
   and must not mutate the system (recording the dirtied ids for the next
   draw is the intended use). *)

type subscription = int

let on_change sys f =
  let wid = fresh_id sys in
  Hashtbl.replace sys.watchers wid f;
  wid

let on_any_change sys f = on_change sys (fun _ -> f ())
let unsubscribe sys wid = Hashtbl.remove sys.watchers wid
let changed ch = ch.dirtied

let notify sys =
  let dirtied = sys.dirty_acc in
  sys.dirty_acc <- [];
  if Hashtbl.length sys.watchers > 0 then begin
    let ch = { dirtied } in
    Hashtbl.iter (fun _ f -> f ch) sys.watchers
  end

(* --- invalidation -------------------------------------------------------

   A currency's value depends on its backing tickets' denominations, so a
   mutation at [c] can move the value of any currency reachable from [c]
   through issued tickets that back other currencies ("upward", toward the
   thread/client leaves in the paper's Figure 3). Two properties keep this
   cheap and sound:

   - stop-early: if [c] is already stale, every dependent was staled when
     [c] was (reads revalidate a currency only after revalidating everything
     it depends on), so the walk can stop;
   - base opacity: the base currency's unit value is the constant 1, so its
     active-amount changes never move a dependent's value — invalidation of
     base records base itself and propagates no further. This is what makes
     a block/wake of a base-funded thread O(1). *)

let rec invalidate sys c =
  if c.cache_ok then begin
    c.cache_ok <- false;
    sys.dirty_acc <- c :: sys.dirty_acc;
    if not c.base_p then
      List.iter
        (fun t -> match t.attach with Backs c' -> invalidate sys c' | _ -> ())
        c.issued
  end

let make_currency sys ~name =
  if Hashtbl.mem sys.by_name name then raise (Duplicate_name name);
  let c =
    {
      cid = fresh_id sys;
      cname = name;
      base_p = false;
      issued = [];
      backing = [];
      active_amount = 0;
      alive = true;
      val_cache = 0.;
      unit_cache = 0.;
      cache_ok = false;
    }
  in
  Hashtbl.replace sys.by_name name c;
  sys.all <- c :: sys.all;
  c

let find_currency sys name = Hashtbl.find_opt sys.by_name name
let currency_name c = c.cname
let currency_id c = c.cid
let is_base c = c.base_p
let currencies sys = List.rev sys.all

let remove_currency sys c =
  if c.base_p then raise (In_use "base currency cannot be removed");
  if not c.alive then invalid_arg "Funding.remove_currency: already removed";
  if c.issued <> [] then raise (In_use (c.cname ^ " still has issued tickets"));
  if c.backing <> [] then raise (In_use (c.cname ^ " still has backing tickets"));
  c.alive <- false;
  Hashtbl.remove sys.by_name c.cname;
  sys.all <- List.filter (fun c' -> c'.cid <> c.cid) sys.all

let active_amount c = c.active_amount
let issued_tickets c = c.issued
let backing_tickets c = c.backing

let issue sys ~currency ~amount =
  if amount < 0 then invalid_arg "Funding.issue: negative amount";
  if not currency.alive then invalid_arg "Funding.issue: dead currency";
  let t =
    {
      tid = fresh_id sys;
      amount;
      denom = currency;
      attach = Unattached;
      active = false;
      destroyed = false;
    }
  in
  currency.issued <- t :: currency.issued;
  t

let amount t = t.amount
let denomination t = t.denom
let ticket_id t = t.tid
let is_active t = t.active
let funds t = match t.attach with Backs c -> Some c | Unattached | Held -> None
let is_held t = t.attach = Held

let check_live t name = if t.destroyed then invalid_arg (name ^ ": destroyed ticket")

(* A ticket's activity flip moves two things: its denomination's active
   amount (hence unit value), and — when the ticket backs a currency — that
   currency's value. Both get invalidated here, so the zero-crossing cascade
   below stales exactly the affected region of the graph. *)
let flip_invalidate sys t =
  invalidate sys t.denom;
  match t.attach with Backs c -> invalidate sys c | Unattached | Held -> ()

(* Activation propagation (paper §4.4): activating a ticket raises its
   denomination's active amount; on a zero -> nonzero transition every
   backing ticket of that currency activates in turn, and symmetrically for
   deactivation. *)
let rec activate_ticket sys t =
  if not t.active then begin
    t.active <- true;
    flip_invalidate sys t;
    let c = t.denom in
    let was_zero = c.active_amount = 0 in
    c.active_amount <- c.active_amount + t.amount;
    if was_zero && c.active_amount > 0 then
      List.iter (activate_ticket sys) c.backing
  end

let rec deactivate_ticket sys t =
  if t.active then begin
    t.active <- false;
    flip_invalidate sys t;
    let c = t.denom in
    let was_positive = c.active_amount > 0 in
    c.active_amount <- c.active_amount - t.amount;
    assert (c.active_amount >= 0);
    if was_positive && c.active_amount = 0 then
      List.iter (deactivate_ticket sys) c.backing
  end

let set_amount sys t new_amount =
  check_live t "Funding.set_amount";
  if new_amount < 0 then invalid_arg "Funding.set_amount: negative amount";
  if t.active then begin
    flip_invalidate sys t;
    let c = t.denom in
    let old_sum = c.active_amount in
    let new_sum = old_sum - t.amount + new_amount in
    t.amount <- new_amount;
    c.active_amount <- new_sum;
    if old_sum = 0 && new_sum > 0 then List.iter (activate_ticket sys) c.backing
    else if old_sum > 0 && new_sum = 0 then
      List.iter (deactivate_ticket sys) c.backing
  end
  else t.amount <- new_amount;
  notify sys

(* A backing edge [currency <- ticket] makes [currency]'s value depend on
   the ticket's denomination. Funding [c] with a ticket denominated in [d]
   is cyclic iff [d]'s value already depends on [c]. The walk memoizes
   visited currencies so shared sub-graphs (diamonds) are visited once. *)
let would_cycle ~funded ~denom =
  let seen = Hashtbl.create 16 in
  let rec depends_on c =
    c.cid = funded.cid
    || ((not (Hashtbl.mem seen c.cid))
       && begin
            Hashtbl.add seen c.cid ();
            List.exists (fun b -> depends_on b.denom) c.backing
          end)
  in
  depends_on denom

let fund sys ~ticket ~currency =
  check_live ticket "Funding.fund";
  if not currency.alive then invalid_arg "Funding.fund: dead currency";
  (match ticket.attach with
  | Unattached -> ()
  | Backs _ | Held -> invalid_arg "Funding.fund: ticket already attached");
  if currency.cid = ticket.denom.cid then
    invalid_arg "Funding.fund: ticket cannot fund its own denomination";
  if would_cycle ~funded:currency ~denom:ticket.denom then
    raise
      (Cycle
         (Printf.sprintf "funding %s with a ticket denominated in %s"
            currency.cname ticket.denom.cname));
  ticket.attach <- Backs currency;
  currency.backing <- ticket :: currency.backing;
  invalidate sys currency;
  if currency.active_amount > 0 then activate_ticket sys ticket;
  notify sys

let unfund sys t =
  check_live t "Funding.unfund";
  match t.attach with
  | Backs c ->
      deactivate_ticket sys t;
      c.backing <- List.filter (fun b -> b.tid <> t.tid) c.backing;
      t.attach <- Unattached;
      invalidate sys c;
      notify sys
  | Unattached | Held -> invalid_arg "Funding.unfund: ticket not backing"

let hold sys t =
  check_live t "Funding.hold";
  (match t.attach with
  | Unattached | Held -> ()
  | Backs _ -> invalid_arg "Funding.hold: ticket is backing a currency");
  t.attach <- Held;
  activate_ticket sys t;
  notify sys

let suspend sys t =
  check_live t "Funding.suspend";
  if t.attach <> Held then invalid_arg "Funding.suspend: ticket not held";
  deactivate_ticket sys t;
  notify sys

let resume sys t =
  check_live t "Funding.resume";
  if t.attach <> Held then invalid_arg "Funding.resume: ticket not held";
  activate_ticket sys t;
  notify sys

let release sys t =
  check_live t "Funding.release";
  if t.attach <> Held then invalid_arg "Funding.release: ticket not held";
  deactivate_ticket sys t;
  t.attach <- Unattached;
  notify sys

let destroy_ticket sys t =
  check_live t "Funding.destroy_ticket";
  (match t.attach with
  | Backs _ -> unfund sys t
  | Held -> release sys t
  | Unattached -> ());
  let c = t.denom in
  c.issued <- List.filter (fun i -> i.tid <> t.tid) c.issued;
  t.destroyed <- true;
  notify sys

(* --- valuation ----------------------------------------------------------

   Reads revalidate lazily: a stale currency recomputes its value from its
   backing tickets, pulling (and caching) the unit values of their
   denominations on the way down. A quiescent graph is therefore valued
   once, and each mutation only forces recomputation of the currencies it
   actually dirtied. The arithmetic (fold order over the backing list,
   value/active division) is identical to a from-scratch walk, so cached
   results are bit-for-bit equal to uncached ones. *)

let rec ensure c =
  if not c.cache_ok then begin
    (* Seed with 0 so a (dynamically created, normally impossible) cycle
       terminates instead of looping. *)
    c.cache_ok <- true;
    if c.base_p then begin
      c.val_cache <- float_of_int c.active_amount;
      c.unit_cache <- 1.
    end
    else begin
      c.val_cache <- 0.;
      c.unit_cache <- 0.;
      let v =
        List.fold_left
          (fun acc t ->
            if t.active then acc +. (float_of_int t.amount *. unit_value t.denom)
            else acc)
          0. c.backing
      in
      c.val_cache <- v;
      c.unit_cache <-
        (if c.active_amount = 0 then 0. else v /. float_of_int c.active_amount)
    end
  end

(* No zero-active shortcut here: a read must leave the currency validated
   (stop-early invalidation relies on "a valid currency has valid
   supports"), and [ensure] already caches unit value 0 in that case. *)
and unit_value c =
  if c.base_p then 1.
  else begin
    ensure c;
    c.unit_cache
  end

let value_of_currency c =
  ensure c;
  c.val_cache

(* The denomination is validated even when the ticket is inactive: a
   consumer that caches this 0 must be told (via a change event) when the
   ticket's activation later makes it worth something, and events only fire
   on valid -> stale flips. *)
let value_of_ticket t =
  let u = unit_value t.denom in
  if t.active then float_of_int t.amount *. u else 0.

module Valuation = struct
  (* Historically a per-draw memo table; the memo now lives on the currency
     records and survives across draws, so a snapshot is just a view of the
     system. Kept for call-site compatibility — making one is free. *)
  type v = unit

  let make (_ : system) = ()
  let unit_value () c = unit_value c
  let currency_value () c = value_of_currency c
  let ticket_value () t = value_of_ticket t
end

let ticket_value (_ : system) t = value_of_ticket t
let currency_value (_ : system) c = value_of_currency c
let unit_value (_ : system) c = unit_value c

(* From-scratch valuation with a private memo, bypassing the caches: the
   reference implementation [check_invariants] audits the caches against. *)
let uncached_currency_value c =
  let memo = Hashtbl.create 32 in
  let rec unit c =
    if c.base_p then 1.
    else if c.active_amount = 0 then 0.
    else
      match Hashtbl.find_opt memo c.cid with
      | Some x -> x
      | None ->
          Hashtbl.replace memo c.cid 0.;
          let x = value c /. float_of_int c.active_amount in
          Hashtbl.replace memo c.cid x;
          x
  and value c =
    if c.base_p then float_of_int c.active_amount
    else
      List.fold_left
        (fun acc t ->
          if t.active then acc +. (float_of_int t.amount *. unit t.denom)
          else acc)
        0. c.backing
  in
  value c

let check_invariants sys =
  let fail fmt = Printf.ksprintf failwith fmt in
  List.iter
    (fun c ->
      if not c.alive then fail "dead currency %s in system list" c.cname;
      (* Active amount equals sum of active issued ticket amounts. *)
      let sum =
        List.fold_left (fun acc t -> if t.active then acc + t.amount else acc) 0 c.issued
      in
      if sum <> c.active_amount then
        fail "currency %s: active_amount %d <> recomputed %d" c.cname
          c.active_amount sum;
      (* A valid cache must agree exactly with a from-scratch valuation. *)
      if c.cache_ok then begin
        let fresh = uncached_currency_value c in
        if c.val_cache <> fresh then
          fail "currency %s: cached value %g <> recomputed %g" c.cname
            c.val_cache fresh;
        let fresh_unit =
          if c.base_p then 1.
          else if c.active_amount = 0 then 0.
          else fresh /. float_of_int c.active_amount
        in
        if (not c.base_p) && c.unit_cache <> fresh_unit then
          fail "currency %s: cached unit value %g <> recomputed %g" c.cname
            c.unit_cache fresh_unit
      end;
      (* Attachment symmetry for backing tickets. *)
      List.iter
        (fun t ->
          (match t.attach with
          | Backs c' when c'.cid = c.cid -> ()
          | _ -> fail "currency %s: backing ticket %d not attached to it" c.cname t.tid);
          if t.destroyed then fail "currency %s: destroyed backing ticket" c.cname;
          (* Propagation: a backing ticket is active iff the funded currency
             has a nonzero active amount. *)
          if t.active <> (c.active_amount > 0) then
            fail "currency %s: backing ticket %d activity %b vs amount %d"
              c.cname t.tid t.active c.active_amount)
        c.backing;
      List.iter
        (fun t ->
          if t.destroyed then fail "currency %s: destroyed issued ticket" c.cname;
          if t.denom.cid <> c.cid then
            fail "currency %s: issued ticket %d has wrong denomination" c.cname t.tid;
          match t.attach with
          | Unattached ->
              if t.active then fail "unattached ticket %d is active" t.tid
          | Held -> ()
          | Backs c' ->
              if not (List.exists (fun b -> b.tid = t.tid) c'.backing) then
                fail "ticket %d claims to back %s but is not listed" t.tid c'.cname)
        c.issued;
      (* Acyclicity: depth-first walk with a white/grey/black marking, so
         shared sub-graphs are visited once instead of once per path. *)
      let color = Hashtbl.create 16 in
      let rec walk c' =
        match Hashtbl.find_opt color c'.cid with
        | Some `Done -> ()
        | Some `On_path -> fail "cycle through currency %s" c'.cname
        | None ->
            Hashtbl.replace color c'.cid `On_path;
            List.iter (fun b -> walk b.denom) c'.backing;
            Hashtbl.replace color c'.cid `Done
      in
      walk c)
    (currencies sys)

let pp_ticket fmt t =
  Format.fprintf fmt "#%d %d.%s%s%s" t.tid t.amount t.denom.cname
    (if t.active then " [active]" else "")
    (match t.attach with
    | Unattached -> ""
    | Held -> " held"
    | Backs c -> " -> " ^ c.cname)

let pp_currency fmt c =
  Format.fprintf fmt "@[<v 2>currency %s (active %d)@,issued: %a@,backing: %a@]"
    c.cname c.active_amount
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_ticket)
    c.issued
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_ticket)
    c.backing

let to_dot sys =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph funding {\n  rankdir=TB;\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  c%d [shape=box, label=\"%s\\nactive %d\"];\n" c.cid
           c.cname c.active_amount))
    (currencies sys);
  List.iter
    (fun c ->
      List.iter
        (fun t ->
          let style = if t.active then "solid" else "dashed" in
          match t.attach with
          | Backs target ->
              Buffer.add_string buf
                (Printf.sprintf "  c%d -> c%d [label=\"%d.%s\", style=%s];\n" c.cid
                   target.cid t.amount c.cname style)
          | Held ->
              Buffer.add_string buf
                (Printf.sprintf
                   "  t%d [shape=ellipse, label=\"ticket %d.%s\"];\n  c%d -> t%d [style=%s];\n"
                   t.tid t.amount c.cname c.cid t.tid style)
          | Unattached -> ())
        c.issued)
    (currencies sys);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_system fmt sys =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_currency)
    (currencies sys)
