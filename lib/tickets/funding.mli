(** Tickets and currencies: the paper's resource-rights model (Sections 3–4).

    A {e system} owns one {e base} currency and any number of user currencies.
    Each currency is {e backed} (funded) by tickets denominated in other
    currencies; each currency {e issues} tickets denominated in itself.
    Currency relationships must form an acyclic graph rooted at the base.

    A ticket is {e active} while its holder competes in lotteries, or while
    the currency it backs has a nonzero active amount. Activations and
    deactivations propagate through backing tickets exactly as described in
    Section 4.4 of the paper: when a currency's active amount crosses zero,
    the change propagates to each of its backing tickets.

    Valuation (Section 4.4): the value of a ticket denominated in the base
    currency is its face amount; the value of a currency is the sum of the
    values of its active backing tickets; the value of a non-base ticket is
    the currency's value times the ticket's share of the currency's active
    amount. *)

type system
type currency
type ticket

exception Cycle of string
(** Raised by {!fund} when the requested edge would make the currency graph
    cyclic. *)

exception Duplicate_name of string
exception In_use of string
(** Raised by {!remove_currency} when tickets still reference the currency. *)

(** {1 Systems and currencies} *)

val create_system : unit -> system

val base : system -> currency
(** The conserved base currency ("base" in the paper's figures). *)

(** {2 Change notification}

    Consumers that cache derived state (draw weights in the scheduler and
    the resource managers) subscribe here instead of polling. Events are
    {e scoped}: each carries the currencies whose cached valuation the
    mutation dirtied, so a consumer updates O(changed) draw weights rather
    than rebuilding all of them. *)

type subscription

type change
(** One batch of invalidations, delivered after the mutation settles. *)

val changed : change -> currency list
(** The currencies whose value may have moved, deduplicated within the
    batch. Completeness contract: between two reads of a currency's value,
    every change to that value is covered by some delivered event — so a
    consumer that (1) accumulates the ids from every event and (2) re-reads
    exactly the accumulated currencies before each draw never uses a stale
    weight. Currencies never read by anyone may stay stale without further
    events until the next read. *)

val on_change : system -> (change -> unit) -> subscription
(** [on_change sys f] calls [f change] after every mutation that can affect
    valuations or ticket activity ({!fund}, {!unfund}, {!hold}, {!suspend},
    {!resume}, {!release}, {!set_amount}, {!destroy_ticket}). Callbacks run
    synchronously on the mutating path, must not mutate the system or the
    subscription table, and should be cheap — typically recording
    {!changed} ids in a pending set for the next draw. *)

val unsubscribe : system -> subscription -> unit
(** Idempotent, O(1). *)

val make_currency : system -> name:string -> currency
(** Raises {!Duplicate_name} if [name] is taken ("base" is always taken). *)

val find_currency : system -> string -> currency option
val currency_name : currency -> string

val currency_id : currency -> int
(** Unique forever — ids are never recycled. *)

val currency_slot : currency -> int
(** The currency's dense arena slot; [-1] once removed and the slot
    recycled. Consumers keeping per-currency state in arrays index them by
    this (guarding against recycling with a physical-equality check on the
    stored currency). *)

val currency_generation : system -> currency -> int
(** Generation of the currency's slot ([-1] once removed). A (slot,
    generation) pair captured while the currency is live never matches any
    later occupant of the recycled slot. *)

val is_base : currency -> bool
val currencies : system -> currency list
(** All live currencies including base, in creation order. *)

val live_currency_count : system -> int

val remove_currency : system -> currency -> unit
(** Raises {!In_use} unless the currency has no issued and no backing
    tickets; the base currency can never be removed. *)

val active_amount : currency -> int
(** Sum of the amounts of this currency's currently active issued tickets. *)

val issued_tickets : system -> currency -> ticket list
val backing_tickets : system -> currency -> ticket list
(** Fresh lists, most recently attached first (the historical list order);
    the edges themselves live in the system's adjacency arrays, so these
    are O(degree) snapshots safe to mutate under. *)

(** {1 Tickets} *)

val issue : system -> currency:currency -> amount:int -> ticket
(** Create an inactive, unattached ticket denominated in [currency].
    Raises [Invalid_argument] on negative amounts. *)

val amount : ticket -> int
val denomination : ticket -> currency

val ticket_id : ticket -> int
(** Unique forever — ids are never recycled. *)

val ticket_slot : ticket -> int
(** The ticket's dense arena slot; [-1] once destroyed and the slot
    recycled. *)

val ticket_generation : system -> ticket -> int
(** Generation of the ticket's slot ([-1] once destroyed). *)

val is_active : ticket -> bool

val set_amount : system -> ticket -> int -> unit
(** Ticket inflation / deflation (Section 3.2): change the face amount,
    updating active sums and propagating zero crossings. *)

val destroy_ticket : system -> ticket -> unit
(** Deactivates and detaches the ticket, then removes it from its
    denomination's issued list. The ticket must not be reused. *)

(** {1 Attachment and activity} *)

val fund : system -> ticket:ticket -> currency:currency -> unit
(** Attach [ticket] as a backing ticket of [currency]. The ticket must be
    unattached. Activates the ticket if [currency] already has active
    issued tickets. Raises {!Cycle} when the edge would create a cycle and
    [Invalid_argument] when attempting to fund the ticket's own
    denomination. *)

val unfund : system -> ticket -> unit
(** Detach a backing ticket (deactivating it first). No-op semantics apply
    only to attached tickets; raises [Invalid_argument] otherwise. *)

val hold : system -> ticket -> unit
(** Mark the ticket as held by a competing client and activate it. The
    ticket must be unattached or already held. *)

val suspend : system -> ticket -> unit
(** Deactivate a held ticket (client left the run queue). *)

val resume : system -> ticket -> unit
(** Reactivate a held ticket (client rejoined the run queue). *)

val release : system -> ticket -> unit
(** Deactivate and detach a held ticket. *)

val funds : ticket -> currency option
(** The currency this ticket currently backs, if any. *)

val is_held : ticket -> bool

(** {1 Valuation}

    Valuations are memoized incrementally on the currency records: each
    mutation invalidates only the currencies it can affect (propagating
    along backing edges toward the funded leaves), and reads lazily
    revalidate just the stale region. A quiescent graph is valued once;
    steady-state reads are O(1). Cached results are bit-for-bit identical
    to a from-scratch walk. *)

module Valuation : sig
  type v
  (** Historically a per-draw memo table; the memo now lives on the
      currency records and survives across draws, so a snapshot is just a
      view of the (always current) system and creating one is free. *)

  val make : system -> v

  val unit_value : v -> currency -> float
  (** Base units per unit of [currency]; [1.] for base, [0.] for a currency
      with zero active amount. *)

  val currency_value : v -> currency -> float
  (** Sum of the values of the currency's active backing tickets (for the
      base currency: its active amount). *)

  val ticket_value : v -> ticket -> float
  (** [0.] for inactive tickets. *)
end

val ticket_value : system -> ticket -> float
(** Current value in base units (cached, O(1) on a quiescent graph). *)

val currency_value : system -> currency -> float
val unit_value : system -> currency -> float

(** {1 Introspection} *)

val check_invariants : system -> unit
(** Validates internal consistency (active sums, attachment symmetry,
    activation propagation, acyclicity, and agreement of the incremental
    valuation caches with a from-scratch valuation); raises [Failure] with
    a description on violation. Used by tests and enabled in debug
    builds. *)

val pp_currency : system -> Format.formatter -> currency -> unit
val pp_ticket : Format.formatter -> ticket -> unit
val pp_system : Format.formatter -> system -> unit

val to_dot : system -> string
(** Graphviz rendering of the funding graph, in the style of the paper's
    Figure 3: box nodes for currencies (name and active amount), ellipses
    for held (competing) tickets, edges labelled with ticket amounts and
    dashed when inactive. *)
