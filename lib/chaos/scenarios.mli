(** Canned workloads for chaos soaks, one per synchronization mechanism.

    A scenario is a pure recipe: [build] spawns and funds its threads on
    the kernel/scheduler pair in the {!ctx}, calling [ctx.point] at
    interesting places so an installed {!Injector} can add timing faults
    there. Scenarios keep all state local, terminate on their own when no
    fault fires, and tolerate the kill of {e any} of their threads (peers
    stranded on a wait queue read as a deadlock, which the soak driver
    accepts after kills). *)

type ctx = {
  kernel : Lotto_sim.Kernel.t;
  ls : Lotto_sched.Lottery_sched.t;
  point : unit -> unit;  (** body-level fault point (no-op when unfaulted) *)
}

type t = { name : string; horizon : Lotto_sim.Time.t; build : ctx -> unit }

val rpc : t
(** Clients looping synchronous RPCs against two servers on one port. *)

val scatter : t
(** Scatter-gather [rpc_many] across three single-server ports (divided
    ticket transfers, kills mid-scatter). *)

val mutex : t
(** Four workers contending on a [Lottery_wake] mutex. *)

val cond : t
(** Producers/consumers over a condition variable. *)

val sem : t
(** Workers sharing a two-permit counting semaphore. *)

val service : t
(** A worker pool behind a bounded [Drop_oldest] port under overrunning
    clients: admission control sheds while workers and clients are killed,
    and every surviving client asserts its requests all ended served or
    shed. Exercises the kill-style [Rejected] unwind next to real kill
    faults. *)

val all : t list
(** The six healthy scenarios above — everything a soak sweeps by
    default. *)

val rpc_buggy : t
(** The {!rpc} workload with the historical reply-after-kill bug
    deliberately reintroduced in the server (replying to a dead client
    raises). Not in {!all}; used by tests and CI to prove the soak
    {e catches} the bug as a reported failure. *)

val find : string -> t option
(** Lookup by name among {!all} and {!rpc_buggy}. *)
