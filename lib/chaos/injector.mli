(** Deterministic fault injector.

    One injector instance per kernel (no global state): it owns a seeded
    {!Lotto_prng.Rng.t}, so the fault sequence is a pure function of
    [(plan, seed)] plus the kernel's deterministic evolution — replays
    reproduce faults exactly.

    Two injection surfaces:
    - {!step} fires at scheduling-decision boundaries (install it via
      {!Lotto_sim.Kernel.set_pre_select}): random kills and wakeup-order
      perturbations of registered wait lists;
    - {!point} is called from inside scenario thread bodies at interesting
      places: randomized extra sleeps and yields that shift timing.

    Every fault is appended to a replayable log and published as a
    [Fault_injected] event when the kernel's bus has subscribers. *)

type t

val create :
  ?plan:Plan.t ->
  ?killable:(Lotto_sim.Types.thread -> bool) ->
  rng:Lotto_prng.Rng.t ->
  kernel:Lotto_sim.Kernel.t ->
  unit ->
  t
(** [plan] defaults to {!Plan.default}; [killable] (default: everything)
    restricts which threads the kill fault may target. *)

val step : t -> unit
(** The scheduling-boundary injection point; safe to call whenever no
    thread is running (e.g. from a pre-select hook). *)

val point : t -> unit
(** The thread-body injection point; must be called from inside a
    simulated thread (it may perform [Api.sleep]/[Api.yield]). *)

val faults : t -> (Lotto_sim.Time.t * string) list
(** Chronological fault log, e.g. [(1200, "kill client2")]. *)

val kills : t -> int
