(** The soak driver: sweep seeds over scenarios with fault injection and
    per-slice invariant auditing, and report minimal reproducers.

    Each run builds a fresh lottery-scheduled kernel from the seed, wires
    an {!Injector} into the kernel's pre-select hook, and (by default)
    runs the combined {!Audit} at {e every} scheduling boundary plus once
    after the run. Every run also carries a {!Lotto_obs.Span} tracer (a
    passive bus subscriber, so determinism is unaffected): after the run
    it is finalized and any structural span violation — a leaked,
    double-received or double-closed RPC span — fails the run alongside
    the invariant audit. A run fails when any invariant is violated or any
    thread dies with an exception other than {!Lotto_sim.Types.Killed};
    deadlocks are tolerated (stranding peers is a legitimate consequence
    of a kill). Runs are deterministic: re-invoking {!run_one} with the
    same [(plan, scenario, seed)] reproduces the identical outcome. *)

type outcome = {
  scenario : string;
  seed : int;
  violations : (Lotto_sim.Time.t * string) list;
      (** first non-empty audit batch (auditing stops once corrupt),
          followed by any end-of-run span violations (prefixed ["span: "]) *)
  thread_failures : (string * string) list;  (** name, exn; [Killed] excluded *)
  faults : (Lotto_sim.Time.t * string) list;  (** the injector's fault log *)
  summary : Lotto_sim.Types.run_summary;
  span_stats : Lotto_obs.Span.stats;
      (** accounting of every RPC span the run opened; after finalize
          [st_open = 0] always holds *)
}

val failed : outcome -> bool

val run_one :
  ?plan:Plan.t -> ?audit:bool -> ?cpus:int -> Scenarios.t -> seed:int -> outcome
(** One seeded chaos run. [audit] (default [true]) runs the invariant
    audit at every scheduling boundary. [cpus] (default [1]) runs the
    kernel with that many virtual CPUs: [1] keeps the historical
    unsharded scheduler (existing repro pairs stay valid), [n > 1] shards
    the lottery one shard per CPU so fault injection also exercises
    placement, hysteresis rebalancing, work stealing and the
    {!Lotto_sched.Lottery_sched.check_sharding} audit. *)

type report = { runs : int; failures : outcome list }

val first_failure : report -> (string * int) option
(** The minimal reproducing [(scenario, seed)] pair, if anything failed. *)

val seed_range : from:int -> count:int -> int list

val soak :
  ?plan:Plan.t ->
  ?audit:bool ->
  ?cpus:int ->
  ?scenarios:Scenarios.t list ->
  seeds:int list ->
  unit ->
  report
(** Sweep [seeds] over [scenarios] (default {!Scenarios.all}), each run
    on a [cpus]-CPU kernel (default 1). *)

val report_to_string : report -> string
(** Human-readable report; failing runs print their repro pair, the
    violations/failures found and the injected-fault log. *)
