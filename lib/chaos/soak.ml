open Lotto_sim
module LS = Lotto_sched.Lottery_sched
module Rng = Lotto_prng.Rng

type outcome = {
  scenario : string;
  seed : int;
  violations : (Time.t * string) list;
  thread_failures : (string * string) list;
  faults : (Time.t * string) list;
  summary : Types.run_summary;
  span_stats : Lotto_obs.Span.stats;
}

let failed o = o.violations <> [] || o.thread_failures <> []

let run_one ?(plan = Plan.default) ?(audit = true) ?(cpus = 1)
    (sc : Scenarios.t) ~seed =
  if cpus < 1 then invalid_arg "Soak.run_one: cpus < 1";
  let rng = Rng.create ~seed () in
  (* the injector gets its own stream derived from the run seed, so fault
     decisions and lottery draws never perturb each other's sequences *)
  let inj_rng = Rng.split rng in
  (* cpus = 1 keeps the historical unsharded scheduler so existing repro
     pairs stay valid; cpus > 1 shards the lottery one shard per CPU and
     exercises placement, rebalancing and stealing under fault injection *)
  let ls =
    if cpus = 1 then LS.create ~rng () else LS.create ~shards:cpus ~rng ()
  in
  let kernel = Kernel.create ~cpus ~sched:(LS.sched ls) () in
  let inj = Injector.create ~plan ~rng:inj_rng ~kernel () in
  (* the span tracer is a pure bus subscriber: it consumes no randomness and
     never touches kernel state, so attaching it preserves run-for-run
     determinism while letting the soak assert that no RPC span is ever
     leaked — kills must produce Orphaned/Dropped spans, not silence *)
  let span = Lotto_obs.Span.create () in
  Lotto_obs.Span.attach span (Kernel.bus kernel);
  sc.Scenarios.build
    { Scenarios.kernel; ls; point = (fun () -> Injector.point inj) };
  let violations = ref [] in
  let audit_now () =
    (* first finding wins: one corrupted slice cascades, so later batches
       add noise, not information *)
    if audit && !violations = [] then
      match Audit.check ~sched:ls kernel with
      | [] -> ()
      | vs -> violations := List.map (fun v -> (Kernel.now kernel, v)) vs
  in
  Kernel.set_pre_select kernel
    (Some
       (fun () ->
         Injector.step inj;
         audit_now ()));
  let summary = Kernel.run kernel ~until:sc.Scenarios.horizon in
  audit_now ();
  Lotto_obs.Span.finalize span ~now:(Kernel.now kernel);
  let span_violations =
    List.map
      (fun v -> (Kernel.now kernel, "span: " ^ v))
      (Lotto_obs.Span.violations span)
  in
  let thread_failures =
    Kernel.failures kernel
    |> List.filter_map (fun (th, e) ->
           match e with
           | Types.Killed -> None (* expected consequence of a kill fault *)
           | e -> Some (Kernel.thread_name th, Printexc.to_string e))
  in
  {
    scenario = sc.Scenarios.name;
    seed;
    violations = !violations @ span_violations;
    thread_failures;
    faults = Injector.faults inj;
    summary;
    span_stats = Lotto_obs.Span.stats span;
  }

type report = { runs : int; failures : outcome list }

let first_failure r =
  match r.failures with [] -> None | o :: _ -> Some (o.scenario, o.seed)

let seed_range ~from ~count = List.init count (fun i -> from + i)

let soak ?plan ?audit ?cpus ?(scenarios = Scenarios.all) ~seeds () =
  let runs = ref 0 in
  let failures = ref [] in
  List.iter
    (fun sc ->
      List.iter
        (fun seed ->
          incr runs;
          let o = run_one ?plan ?audit ?cpus sc ~seed in
          if failed o then failures := o :: !failures)
        seeds)
    scenarios;
  { runs = !runs; failures = List.rev !failures }

let pp_outcome buf o =
  Buffer.add_string buf
    (Printf.sprintf "FAIL scenario=%s seed=%d  (repro: chaos replay %s %d)\n"
       o.scenario o.seed o.scenario o.seed);
  List.iter
    (fun (t, v) -> Buffer.add_string buf (Printf.sprintf "  [%d] violation: %s\n" t v))
    o.violations;
  List.iter
    (fun (name, e) ->
      Buffer.add_string buf (Printf.sprintf "  thread %s failed: %s\n" name e))
    o.thread_failures;
  List.iter
    (fun (t, f) -> Buffer.add_string buf (Printf.sprintf "  [%d] fault: %s\n" t f))
    o.faults

let report_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "soak: %d runs, %d failed\n" r.runs (List.length r.failures));
  (match first_failure r with
  | None -> ()
  | Some (sc, seed) ->
      Buffer.add_string buf
        (Printf.sprintf "first failing pair: (%s, %d)\n" sc seed));
  List.iter (fun o -> pp_outcome buf o) r.failures;
  Buffer.contents buf
