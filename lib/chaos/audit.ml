open Lotto_sim
module LS = Lotto_sched.Lottery_sched
module Obs = Lotto_obs

let check ?sched kernel =
  let kernel_vs = Kernel.check_invariants kernel in
  let sched_vs =
    match sched with
    | None -> []
    | Some ls ->
        (* check_sharding is always empty on an unsharded scheduler, so the
           combined audit is safe for every kernel shape *)
        LS.check_funding_coherence ls (Kernel.threads kernel)
        @ LS.check_sharding ls
  in
  (* [Kernel.check_invariants] already published its findings; mirror the
     scheduler-side ones onto the same bus so subscribers see everything. *)
  let bus = Kernel.bus kernel in
  if sched_vs <> [] && Obs.Bus.active bus then
    List.iter
      (fun what ->
        Obs.Bus.emit bus ~time:(Kernel.now kernel)
          (Obs.Event.Invariant_violation { who = Obs.Event.kernel_actor; what }))
      sched_vs;
  kernel_vs @ sched_vs
