(** Combined invariant audit: kernel structures plus (optionally) the
    lottery scheduler's funding view. *)

val check : ?sched:Lotto_sched.Lottery_sched.t -> Lotto_sim.Kernel.t -> string list
(** [check ?sched k] runs {!Lotto_sim.Kernel.check_invariants} and, when
    [sched] is given, {!Lotto_sched.Lottery_sched.check_funding_coherence}
    over the kernel's threads plus
    {!Lotto_sched.Lottery_sched.check_sharding} (always empty on an
    unsharded scheduler). Returns every violation found (empty =
    healthy); mutates nothing, so it can run between any two slices.
    Scheduler-side findings are published as [Invariant_violation] events
    when the kernel's bus has subscribers (kernel-side ones already are). *)
