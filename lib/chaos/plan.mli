(** A fault plan: what the {!Injector} is allowed to do, and how often.

    Together with a scenario name and a seed, the plan fully determines a
    chaos run — replaying the same [(scenario, seed, plan)] triple
    reproduces the same faults at the same virtual times. *)

type t = {
  kill_prob : float;  (** per scheduling boundary: kill a random thread *)
  perturb_prob : float;
      (** per boundary: rotate one wait list (wakeup-order perturbation) *)
  sleep_prob : float;  (** per fault point inside a body: extra sleep *)
  yield_prob : float;  (** per fault point inside a body: extra yield *)
  max_kills : int;  (** total kill budget for the run *)
  max_sleep : Lotto_sim.Time.t;  (** injected sleeps last [1..max_sleep] *)
}

val default : t
(** Mild: occasional kills (budget 3), frequent reorderings. *)

val none : t
(** All probabilities zero — an injector with this plan does nothing,
    which is how the bench guard measures hook overhead. *)

val aggressive : t
(** High kill/perturb rates for bug hunts. *)

val validate : t -> unit
(** Raises [Invalid_argument] on probabilities outside [0,1] or negative
    budgets. *)

val to_string : t -> string
