open Lotto_sim

type t = {
  kill_prob : float;
  perturb_prob : float;
  sleep_prob : float;
  yield_prob : float;
  max_kills : int;
  max_sleep : Time.t;
}

let default =
  {
    kill_prob = 0.02;
    perturb_prob = 0.10;
    sleep_prob = 0.05;
    yield_prob = 0.05;
    max_kills = 3;
    max_sleep = Time.ms 50;
  }

let none =
  {
    kill_prob = 0.;
    perturb_prob = 0.;
    sleep_prob = 0.;
    yield_prob = 0.;
    max_kills = 0;
    max_sleep = 0;
  }

let aggressive =
  {
    kill_prob = 0.15;
    perturb_prob = 0.25;
    sleep_prob = 0.15;
    yield_prob = 0.10;
    max_kills = 8;
    max_sleep = Time.ms 200;
  }

let check_prob what p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Plan: %s = %g not in [0,1]" what p)

let validate t =
  check_prob "kill_prob" t.kill_prob;
  check_prob "perturb_prob" t.perturb_prob;
  check_prob "sleep_prob" t.sleep_prob;
  check_prob "yield_prob" t.yield_prob;
  if t.max_kills < 0 then invalid_arg "Plan: max_kills < 0";
  if t.max_sleep < 0 then invalid_arg "Plan: max_sleep < 0"

let to_string t =
  Printf.sprintf
    "kill=%.3g perturb=%.3g sleep=%.3g yield=%.3g max_kills=%d max_sleep=%d"
    t.kill_prob t.perturb_prob t.sleep_prob t.yield_prob t.max_kills t.max_sleep
