open Lotto_sim
open Lotto_sim.Types
module LS = Lotto_sched.Lottery_sched

type ctx = { kernel : Kernel.t; ls : LS.t; point : unit -> unit }

type t = { name : string; horizon : Time.t; build : ctx -> unit }

let fund ctx th amount =
  ignore (LS.fund_thread ctx.ls th ~amount ~from:(LS.base_currency ctx.ls))

(* Every scenario terminates on its own (bounded loops) well before its
   horizon when no fault fires; injected kills may strand peers on wait
   queues, which the soak driver tolerates as a legitimate deadlock. All
   state is scenario-local — no module-level mutables. *)

let rpc =
  {
    name = "rpc";
    horizon = Time.seconds 30;
    build =
      (fun ctx ->
        let k = ctx.kernel in
        let p = Kernel.create_port k ~name:"svc" in
        for i = 1 to 2 do
          let srv =
            Kernel.spawn k ~name:(Printf.sprintf "server%d" i) (fun () ->
                for _ = 1 to 12 do
                  let m = Api.receive p in
                  ctx.point ();
                  Api.compute_ms 2;
                  Api.reply m ("ok:" ^ m.payload)
                done)
          in
          fund ctx srv 300
        done;
        for i = 1 to 3 do
          let c =
            Kernel.spawn k ~name:(Printf.sprintf "client%d" i) (fun () ->
                for j = 1 to 8 do
                  ctx.point ();
                  ignore (Api.rpc p (Printf.sprintf "c%d-%d" i j));
                  Api.compute_ms 1
                done)
          in
          fund ctx c (100 * i)
        done);
  }

let scatter =
  {
    name = "scatter";
    horizon = Time.seconds 30;
    build =
      (fun ctx ->
        let k = ctx.kernel in
        let ports =
          List.init 3 (fun i -> Kernel.create_port k ~name:(Printf.sprintf "p%d" i))
        in
        List.iteri
          (fun i p ->
            let srv =
              Kernel.spawn k ~name:(Printf.sprintf "server%d" i) (fun () ->
                  for _ = 1 to 6 do
                    let m = Api.receive p in
                    ctx.point ();
                    Api.compute_ms (1 + i);
                    Api.reply m "ok"
                  done)
            in
            fund ctx srv 200)
          ports;
        for i = 1 to 2 do
          let c =
            Kernel.spawn k ~name:(Printf.sprintf "client%d" i) (fun () ->
                for j = 1 to 3 do
                  ctx.point ();
                  ignore
                    (Api.rpc_many
                       (List.map (fun p -> (p, Printf.sprintf "c%d-%d" i j)) ports));
                  Api.compute_ms 1
                done)
          in
          fund ctx c 150
        done);
  }

let mutex =
  {
    name = "mutex";
    horizon = Time.seconds 30;
    build =
      (fun ctx ->
        let k = ctx.kernel in
        let m = Kernel.create_mutex k ~policy:Lottery_wake "m" in
        for i = 1 to 4 do
          let w =
            Kernel.spawn k ~name:(Printf.sprintf "worker%d" i) (fun () ->
                for _ = 1 to 6 do
                  Api.with_lock m (fun () ->
                      ctx.point ();
                      Api.compute_ms 2);
                  Api.compute_ms 1
                done)
          in
          fund ctx w (50 * i)
        done);
  }

let cond =
  {
    name = "cond";
    horizon = Time.seconds 30;
    build =
      (fun ctx ->
        let k = ctx.kernel in
        let m = Kernel.create_mutex k "m" in
        let c = Kernel.create_condition k ~policy:Lottery_wake "items" in
        let items = ref 0 in
        for i = 1 to 2 do
          let prod =
            Kernel.spawn k ~name:(Printf.sprintf "producer%d" i) (fun () ->
                for _ = 1 to 8 do
                  Api.compute_ms 1;
                  ctx.point ();
                  Api.with_lock m (fun () ->
                      incr items;
                      Api.signal c)
                done)
          in
          fund ctx prod 200
        done;
        for i = 1 to 3 do
          let cons =
            Kernel.spawn k ~name:(Printf.sprintf "consumer%d" i) (fun () ->
                for _ = 1 to 4 do
                  Api.with_lock m (fun () ->
                      while !items = 0 do
                        Api.wait c m
                      done;
                      decr items);
                  ctx.point ();
                  Api.compute_ms 1
                done)
          in
          fund ctx cons 100
        done);
  }

let sem =
  {
    name = "sem";
    horizon = Time.seconds 30;
    build =
      (fun ctx ->
        let k = ctx.kernel in
        let s = Kernel.create_semaphore k ~policy:Lottery_wake ~initial:2 "pool" in
        for i = 1 to 4 do
          let w =
            Kernel.spawn k ~name:(Printf.sprintf "user%d" i) (fun () ->
                for _ = 1 to 5 do
                  Api.sem_wait s;
                  ctx.point ();
                  Api.compute_ms 2;
                  Api.sem_post s
                done)
          in
          fund ctx w (60 * i)
        done);
  }

let service =
  {
    name = "service";
    horizon = Time.seconds 30;
    build =
      (fun ctx ->
        let k = ctx.kernel in
        (* worker pool behind a bounded drop-oldest port: the offered load
           overruns the queue, so admission control sheds while the
           injector kills workers and clients mid-flight. Each surviving
           client closes its own books — every request it issued must end
           served or shed; anything else is a real accounting bug. *)
        let p = Kernel.create_port ~capacity:4 ~shed:Drop_oldest k ~name:"svc" in
        for i = 1 to 3 do
          let srv =
            Kernel.spawn k ~name:(Printf.sprintf "worker%d" i) (fun () ->
                for _ = 1 to 10 do
                  let m = Api.receive p in
                  ctx.point ();
                  Api.compute_ms 3;
                  Api.reply m "ok"
                done)
          in
          fund ctx srv 300
        done;
        for i = 1 to 4 do
          let c =
            Kernel.spawn k ~name:(Printf.sprintf "client%d" i) (fun () ->
                let served = ref 0 and shed = ref 0 in
                for j = 1 to 8 do
                  ctx.point ();
                  (match Api.rpc p (Printf.sprintf "c%d-%d" i j) with
                  | (_ : string) -> incr served
                  | exception Rejected _ -> incr shed);
                  Api.compute_ms 1
                done;
                (* a killed client never reaches this line (Killed unwinds
                   it), so the check only fires for clients that ran their
                   full loop — where it must hold exactly *)
                if !served + !shed <> 8 then
                  failwith "service: request neither served nor shed")
          in
          fund ctx c (50 * i)
        done);
  }

let all = [ rpc; scatter; mutex; cond; sem; service ]

(* The historical reply-after-kill bug, reintroduced on purpose: this
   server front-end raises into the server whenever the client died before
   the reply — exactly what [Api.reply] did before it learned to drop.
   Excluded from {!all}; exists so tests can prove the soak driver CATCHES
   the bug (a non-[Killed] server failure) rather than silently passing. *)
let buggy_reply (m : message) result =
  (match m.sender.state with
  | Zombie -> invalid_arg "Api.reply: sender is not awaiting a reply"
  | _ -> ());
  Api.reply m result

let rpc_buggy =
  {
    name = "rpc-buggy";
    horizon = Time.seconds 30;
    build =
      (fun ctx ->
        let k = ctx.kernel in
        let p = Kernel.create_port k ~name:"svc" in
        for i = 1 to 2 do
          let srv =
            Kernel.spawn k ~name:(Printf.sprintf "server%d" i) (fun () ->
                for _ = 1 to 12 do
                  let m = Api.receive p in
                  ctx.point ();
                  (* long service window so the client often dies mid-request *)
                  Api.sleep_ms 20;
                  Api.compute_ms 2;
                  buggy_reply m ("ok:" ^ m.payload)
                done)
          in
          fund ctx srv 300
        done;
        for i = 1 to 3 do
          let c =
            Kernel.spawn k ~name:(Printf.sprintf "client%d" i) (fun () ->
                for j = 1 to 8 do
                  ctx.point ();
                  ignore (Api.rpc p (Printf.sprintf "c%d-%d" i j));
                  Api.compute_ms 1
                done)
          in
          fund ctx c (100 * i)
        done);
  }

let find name = List.find_opt (fun s -> s.name = name) (rpc_buggy :: all)
