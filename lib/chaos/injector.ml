open Lotto_sim
open Lotto_sim.Types
module Rng = Lotto_prng.Rng
module Obs = Lotto_obs

type t = {
  plan : Plan.t;
  rng : Rng.t;
  kernel : Kernel.t;
  killable : thread -> bool;
  mutable kills_done : int;
  mutable log : (Time.t * string) list; (* reverse chronological *)
}

let create ?(plan = Plan.default) ?(killable = fun _ -> true) ~rng ~kernel () =
  Plan.validate plan;
  { plan; rng; kernel; killable; kills_done = 0; log = [] }

let record t ?th fault =
  t.log <- (Kernel.now t.kernel, fault) :: t.log;
  let bus = Kernel.bus t.kernel in
  if Obs.Bus.active bus then begin
    let who =
      match th with
      | Some th -> Obs.Event.actor_of ~tid:th.id ~tname:th.name
      | None -> Obs.Event.kernel_actor
    in
    Obs.Bus.emit bus ~time:(Kernel.now t.kernel)
      (Obs.Event.Fault_injected { who; fault })
  end

(* Every draw is conditional on a positive probability, so a zeroed-out
   plan consumes nothing from the stream: the same seed then drives an
   identical run with and without the injector installed. *)
let chance t p = p > 0. && Rng.float_unit t.rng < p

let pick t arr = arr.(Rng.int_below t.rng (Array.length arr))

let try_kill t =
  if t.kills_done < t.plan.Plan.max_kills && chance t t.plan.Plan.kill_prob then begin
    let candidates =
      List.filter
        (fun th -> th.state <> Zombie && t.killable th)
        (Kernel.threads t.kernel)
    in
    if candidates <> [] then begin
      let th = pick t (Array.of_list candidates) in
      t.kills_done <- t.kills_done + 1;
      record t ~th ("kill " ^ th.name);
      Kernel.kill t.kernel th
    end
  end

type target =
  | P_mutex of mutex
  | P_cond of condition
  | P_sem of semaphore
  | P_port of port

let rotate = function [] -> [] | x :: rest -> rest @ [ x ]

(* Wakeup-order perturbation: rotate one wait list. Membership is
   preserved, so a healthy kernel stays invariant-clean — only code that
   wrongly depends on arrival order (or holds stale aliases into a list)
   breaks under this. *)
let try_perturb t =
  if chance t t.plan.Plan.perturb_prob then begin
    let k = t.kernel in
    let many n = n >= 2 in
    let targets =
      List.filter_map
        (fun m -> if many (List.length m.lock_waiters) then Some (P_mutex m) else None)
        (Kernel.mutexes k)
      @ List.filter_map
          (fun c -> if many (List.length c.cond_waiters) then Some (P_cond c) else None)
          (Kernel.conditions k)
      @ List.filter_map
          (fun s -> if many (List.length s.sem_waiters) then Some (P_sem s) else None)
          (Kernel.semaphores k)
      @ List.filter_map
          (fun p -> if many (Queue.length p.waiters) then Some (P_port p) else None)
          (Kernel.ports k)
    in
    if targets <> [] then
      match pick t (Array.of_list targets) with
      | P_mutex m ->
          m.lock_waiters <- rotate m.lock_waiters;
          record t ("perturb-waiters mutex " ^ m.mutex_name)
      | P_cond c ->
          c.cond_waiters <- rotate c.cond_waiters;
          record t ("perturb-waiters cond " ^ c.cond_name)
      | P_sem s ->
          s.sem_waiters <- rotate s.sem_waiters;
          record t ("perturb-waiters sem " ^ s.sem_name)
      | P_port p -> (
          match Queue.take_opt p.waiters with
          | Some w ->
              Queue.push w p.waiters;
              record t ("perturb-waiters port " ^ p.port_name)
          | None -> ())
  end

let step t =
  try_kill t;
  try_perturb t

let point t =
  if chance t t.plan.Plan.sleep_prob then begin
    let d = 1 + Rng.int_below t.rng (max 1 t.plan.Plan.max_sleep) in
    record t ~th:(Api.self ()) (Printf.sprintf "sleep %d" d);
    Api.sleep d
  end
  else if chance t t.plan.Plan.yield_prob then begin
    record t ~th:(Api.self ()) "yield";
    Api.yield ()
  end

let faults t = List.rev t.log
let kills t = t.kills_done
