open Lotto_sim
module Ls = Lotto_sched.Lottery_sched

type workload =
  | Spin of { cost : int }
  | Interactive of { burst : int; pause : int }
  | Serve of { port : string; cost : int }  (* receive, compute, reply *)
  | Rpc of { target : string; think : int }  (* compute, then call *)

type thread_spec = { t_name : string; workload : workload; amount : int; from : string }
type currency_spec = { c_name : string; c_amount : int; c_from : string }

type t = {
  seed : int;
  quantum : int;
  currencies : currency_spec list; (* in declaration order *)
  threads : thread_spec list;
  horizon : int;
}

type report = {
  rows : (string * int * float) list;
  timeline : string;
  horizon : Time.t;
  recorder : Lotto_obs.Recorder.t option;
  stats : string option;
  spans : Lotto_obs.Span.t option;
  prom : string option;
  profile : string option;
}

(* --- parsing ------------------------------------------------------------- *)

let duration word =
  let num suffix =
    let body = String.sub word 0 (String.length word - String.length suffix) in
    int_of_string_opt body
  in
  let ends s = String.length word > String.length s && Filename.check_suffix word s in
  if ends "us" then Option.map Time.us (num "us")
  else if ends "ms" then Option.map Time.ms (num "ms")
  else if ends "s" then Option.map Time.seconds (num "s")
  else None

let parse text =
  let err line fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" line m)) fmt
  in
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  let rec go (acc : t) = function
    | [] ->
        if acc.horizon > 0 then Ok acc
        else Error "scenario needs a final \"run <duration>\" directive"
    | (ln, _) :: _ when acc.horizon > 0 -> err ln "nothing may follow \"run\""
    | (ln, line) :: rest -> (
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "seed"; s ] -> (
            match int_of_string_opt s with
            | Some seed -> go { acc with seed } rest
            | None -> err ln "bad seed %S" s)
        | [ "quantum"; d ] -> (
            match duration d with
            | Some quantum when quantum > 0 -> go { acc with quantum } rest
            | _ -> err ln "bad quantum %S" d)
        | [ "currency"; c_name; amount; c_from ] -> (
            match int_of_string_opt amount with
            | Some c_amount when c_amount >= 0 ->
                go
                  { acc with currencies = acc.currencies @ [ { c_name; c_amount; c_from } ] }
                  rest
            | _ -> err ln "bad currency amount %S" amount)
        | "thread" :: t_name :: spec -> (
            let mk workload amount from =
              match int_of_string_opt amount with
              | Some amount when amount >= 0 ->
                  go
                    {
                      acc with
                      threads = acc.threads @ [ { t_name; workload; amount; from } ];
                    }
                    rest
              | _ -> err ln "bad funding amount %S" amount
            in
            match spec with
            | [ "spin"; cost; amount; from ] -> (
                match duration cost with
                | Some cost when cost > 0 -> mk (Spin { cost }) amount from
                | _ -> err ln "bad spin cost %S" cost)
            | [ "interactive"; burst; pause; amount; from ] -> (
                match (duration burst, duration pause) with
                | Some burst, Some pause when burst > 0 && pause >= 0 ->
                    mk (Interactive { burst; pause }) amount from
                | _ -> err ln "bad interactive durations")
            | [ "serve"; port; cost; amount; from ] -> (
                match duration cost with
                | Some cost when cost > 0 -> mk (Serve { port; cost }) amount from
                | _ -> err ln "bad service cost %S" cost)
            | [ "rpc"; target; think; amount; from ] -> (
                match duration think with
                | Some think when think > 0 -> mk (Rpc { target; think }) amount from
                | _ -> err ln "bad think time %S" think)
            | _ ->
                err ln
                  "expected: thread NAME spin COST AMOUNT CUR | thread NAME \
                   interactive BURST PAUSE AMOUNT CUR | thread NAME serve \
                   PORT COST AMOUNT CUR | thread NAME rpc PORT THINK AMOUNT \
                   CUR")
        | [ "run"; d ] -> (
            match duration d with
            | Some horizon when horizon > 0 -> go { acc with horizon } rest
            | _ -> err ln "bad run duration %S" d)
        | _ -> err ln "unparseable directive %S" line)
  in
  go { seed = 1; quantum = Time.ms 100; currencies = []; threads = []; horizon = 0 } lines

let parse_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      parse text

(* --- running --------------------------------------------------------------- *)

let run ?(cpus = 1) ?(trace = false) ?(trace_capacity = 1 lsl 20)
    ?(stats = false) ?(spans = false) ?(prom = false) ?profile_clock t =
  if cpus < 1 then invalid_arg "Scenario.run: cpus < 1";
  let rng = Lotto_prng.Rng.create ~seed:t.seed () in
  (* [cpus = 1] keeps the historical unsharded scheduler so single-CPU
     outputs stay byte-identical; [cpus > 1] shards the lottery one shard
     per virtual CPU and runs the kernel's round loop *)
  let ls =
    if cpus = 1 then Ls.create ~rng () else Ls.create ~shards:cpus ~rng ()
  in
  let kernel = Kernel.create ~quantum:t.quantum ~cpus ~sched:(Ls.sched ls) () in
  let timeline = Timeline.attach kernel ~bucket:(max (Time.ms 100) (t.horizon / 60)) () in
  (* recorder, metrics, span tracer and timeline are independent
     subscribers on the kernel's event bus; each sees the full stream *)
  let recorder =
    if trace then begin
      let r = Lotto_obs.Recorder.create ~capacity:trace_capacity () in
      Lotto_obs.Recorder.attach r (Kernel.bus kernel);
      Some r
    end
    else None
  in
  let metrics =
    if stats || prom then begin
      let m = Lotto_obs.Metrics.create () in
      Lotto_obs.Metrics.attach m (Kernel.bus kernel);
      Some m
    end
    else None
  in
  let span_tracer =
    if spans then begin
      let s = Lotto_obs.Span.create () in
      Lotto_obs.Span.attach s (Kernel.bus kernel);
      Some s
    end
    else None
  in
  let profiler =
    Option.map
      (fun clock ->
        let p = Lotto_obs.Profile.create ~clock () in
        Kernel.set_profiler kernel (Some p);
        Ls.set_profiler ls (Some p);
        p)
      profile_clock
  in
  let lookup name =
    match Lotto_tickets.Funding.find_currency (Ls.funding ls) name with
    | Some c -> c
    | None -> failwith (Printf.sprintf "unknown currency %S" name)
  in
  List.iter
    (fun c ->
      let target = Ls.make_currency ls c.c_name in
      ignore (Ls.fund_currency ls ~target ~amount:c.c_amount ~from:(lookup c.c_from)))
    t.currencies;
  (* one port per distinct name mentioned by serve/rpc threads; an rpc
     target nobody serves is legal (the client blocks and its spans are
     orphan-flagged at the horizon) but is usually a typo *)
  let ports = Hashtbl.create 8 in
  let port_of name =
    match Hashtbl.find_opt ports name with
    | Some p -> p
    | None ->
        let p = Kernel.create_port kernel ~name in
        Hashtbl.add ports name p;
        p
  in
  List.iter
    (fun spec ->
      match spec.workload with
      | Serve { port; _ } | Rpc { target = port; _ } -> ignore (port_of port)
      | Spin _ | Interactive _ -> ())
    t.threads;
  let threads =
    List.map
      (fun spec ->
        let body () =
          match spec.workload with
          | Spin { cost } ->
              while true do
                Api.compute cost
              done
          | Interactive { burst; pause } ->
              while true do
                Api.compute burst;
                Api.sleep pause
              done
          | Serve { port; cost } ->
              let p = port_of port in
              while true do
                let m = Api.receive p in
                Api.compute cost;
                Api.reply m m.Types.payload
              done
          | Rpc { target; think } ->
              let p = port_of target in
              while true do
                Api.compute think;
                ignore (Api.rpc p "req")
              done
        in
        let th = Kernel.spawn kernel ~name:spec.t_name body in
        ignore (Ls.fund_thread ls th ~amount:spec.amount ~from:(lookup spec.from));
        (spec.t_name, th))
      t.threads
  in
  ignore (Kernel.run kernel ~until:t.horizon);
  Option.iter
    (fun s -> Lotto_obs.Span.finalize s ~now:(Kernel.now kernel))
    span_tracer;
  (* entitlements before teardown: backing-ticket value at final exchange
     rates, the yardstick for the observed-vs-entitled fairness table *)
  let stats_text =
    if not stats then None
    else
      Option.map
        (fun m ->
          let entitled =
            List.map (fun (_, th) -> (Kernel.thread_id th, Ls.thread_entitlement ls th)) threads
          in
          let s = Lotto_obs.Metrics.summary ~entitled m in
          (* a wrapped trace silently looking complete is the trap; say so
             next to the numbers people actually read *)
          match recorder with
          | Some r when Lotto_obs.Recorder.dropped r > 0 ->
              s
              ^ Printf.sprintf
                  "\nwarning: trace window wrapped — %d oldest events \
                   dropped (kept %d of %d)\n"
                  (Lotto_obs.Recorder.dropped r)
                  (Lotto_obs.Recorder.length r)
                  (Lotto_obs.Recorder.seen r)
          | _ -> s)
        metrics
  in
  let prom_text = if prom then Option.map Lotto_obs.Metrics.to_prom metrics else None in
  let profile_text = Option.map Lotto_obs.Metrics.profile profiler in
  Timeline.detach timeline;
  Option.iter Lotto_obs.Recorder.detach recorder;
  Option.iter Lotto_obs.Metrics.detach metrics;
  Option.iter Lotto_obs.Span.detach span_tracer;
  Kernel.set_profiler kernel None;
  let total = List.fold_left (fun acc (_, th) -> acc + Kernel.cpu_time th) 0 threads in
  {
    rows =
      List.map
        (fun (name, th) ->
          ( name,
            Kernel.cpu_time th,
            float_of_int (Kernel.cpu_time th) /. float_of_int (max 1 total) ))
        threads;
    timeline = Timeline.render timeline;
    horizon = t.horizon;
    recorder;
    stats = stats_text;
    spans = span_tracer;
    prom = prom_text;
    profile = profile_text;
  }
