open Lotto_sim
module Ls = Lotto_sched.Lottery_sched

type workload =
  | Spin of { cost : int }
  | Interactive of { burst : int; pause : int }

type thread_spec = { t_name : string; workload : workload; amount : int; from : string }
type currency_spec = { c_name : string; c_amount : int; c_from : string }

type t = {
  seed : int;
  quantum : int;
  currencies : currency_spec list; (* in declaration order *)
  threads : thread_spec list;
  horizon : int;
}

type report = {
  rows : (string * int * float) list;
  timeline : string;
  horizon : Time.t;
  recorder : Lotto_obs.Recorder.t option;
  stats : string option;
}

(* --- parsing ------------------------------------------------------------- *)

let duration word =
  let num suffix =
    let body = String.sub word 0 (String.length word - String.length suffix) in
    int_of_string_opt body
  in
  let ends s = String.length word > String.length s && Filename.check_suffix word s in
  if ends "us" then Option.map Time.us (num "us")
  else if ends "ms" then Option.map Time.ms (num "ms")
  else if ends "s" then Option.map Time.seconds (num "s")
  else None

let parse text =
  let err line fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" line m)) fmt
  in
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  let rec go (acc : t) = function
    | [] ->
        if acc.horizon > 0 then Ok acc
        else Error "scenario needs a final \"run <duration>\" directive"
    | (ln, _) :: _ when acc.horizon > 0 -> err ln "nothing may follow \"run\""
    | (ln, line) :: rest -> (
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "seed"; s ] -> (
            match int_of_string_opt s with
            | Some seed -> go { acc with seed } rest
            | None -> err ln "bad seed %S" s)
        | [ "quantum"; d ] -> (
            match duration d with
            | Some quantum when quantum > 0 -> go { acc with quantum } rest
            | _ -> err ln "bad quantum %S" d)
        | [ "currency"; c_name; amount; c_from ] -> (
            match int_of_string_opt amount with
            | Some c_amount when c_amount >= 0 ->
                go
                  { acc with currencies = acc.currencies @ [ { c_name; c_amount; c_from } ] }
                  rest
            | _ -> err ln "bad currency amount %S" amount)
        | "thread" :: t_name :: spec -> (
            let mk workload amount from =
              match int_of_string_opt amount with
              | Some amount when amount >= 0 ->
                  go
                    {
                      acc with
                      threads = acc.threads @ [ { t_name; workload; amount; from } ];
                    }
                    rest
              | _ -> err ln "bad funding amount %S" amount
            in
            match spec with
            | [ "spin"; cost; amount; from ] -> (
                match duration cost with
                | Some cost when cost > 0 -> mk (Spin { cost }) amount from
                | _ -> err ln "bad spin cost %S" cost)
            | [ "interactive"; burst; pause; amount; from ] -> (
                match (duration burst, duration pause) with
                | Some burst, Some pause when burst > 0 && pause >= 0 ->
                    mk (Interactive { burst; pause }) amount from
                | _ -> err ln "bad interactive durations")
            | _ -> err ln "expected: thread NAME spin COST AMOUNT CUR | thread NAME interactive BURST PAUSE AMOUNT CUR")
        | [ "run"; d ] -> (
            match duration d with
            | Some horizon when horizon > 0 -> go { acc with horizon } rest
            | _ -> err ln "bad run duration %S" d)
        | _ -> err ln "unparseable directive %S" line)
  in
  go { seed = 1; quantum = Time.ms 100; currencies = []; threads = []; horizon = 0 } lines

let parse_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      parse text

(* --- running --------------------------------------------------------------- *)

let run ?(trace = false) ?(trace_capacity = 1 lsl 20) ?(stats = false)
    t =
  let rng = Lotto_prng.Rng.create ~seed:t.seed () in
  let ls = Ls.create ~rng () in
  let kernel = Kernel.create ~quantum:t.quantum ~sched:(Ls.sched ls) () in
  let timeline = Timeline.attach kernel ~bucket:(max (Time.ms 100) (t.horizon / 60)) () in
  (* recorder, metrics and timeline are independent subscribers on the
     kernel's event bus; each sees the full stream *)
  let recorder =
    if trace then begin
      let r = Lotto_obs.Recorder.create ~capacity:trace_capacity () in
      Lotto_obs.Recorder.attach r (Kernel.bus kernel);
      Some r
    end
    else None
  in
  let metrics =
    if stats then begin
      let m = Lotto_obs.Metrics.create () in
      Lotto_obs.Metrics.attach m (Kernel.bus kernel);
      Some m
    end
    else None
  in
  let lookup name =
    match Lotto_tickets.Funding.find_currency (Ls.funding ls) name with
    | Some c -> c
    | None -> failwith (Printf.sprintf "unknown currency %S" name)
  in
  List.iter
    (fun c ->
      let target = Ls.make_currency ls c.c_name in
      ignore (Ls.fund_currency ls ~target ~amount:c.c_amount ~from:(lookup c.c_from)))
    t.currencies;
  let threads =
    List.map
      (fun spec ->
        let body () =
          match spec.workload with
          | Spin { cost } ->
              while true do
                Api.compute cost
              done
          | Interactive { burst; pause } ->
              while true do
                Api.compute burst;
                Api.sleep pause
              done
        in
        let th = Kernel.spawn kernel ~name:spec.t_name body in
        ignore (Ls.fund_thread ls th ~amount:spec.amount ~from:(lookup spec.from));
        (spec.t_name, th))
      t.threads
  in
  ignore (Kernel.run kernel ~until:t.horizon);
  (* entitlements before teardown: backing-ticket value at final exchange
     rates, the yardstick for the observed-vs-entitled fairness table *)
  let stats_text =
    Option.map
      (fun m ->
        let entitled =
          List.map (fun (_, th) -> (Kernel.thread_id th, Ls.thread_entitlement ls th)) threads
        in
        Lotto_obs.Metrics.summary ~entitled m)
      metrics
  in
  Timeline.detach timeline;
  Option.iter Lotto_obs.Recorder.detach recorder;
  Option.iter Lotto_obs.Metrics.detach metrics;
  let total = List.fold_left (fun acc (_, th) -> acc + Kernel.cpu_time th) 0 threads in
  {
    rows =
      List.map
        (fun (name, th) ->
          ( name,
            Kernel.cpu_time th,
            float_of_int (Kernel.cpu_time th) /. float_of_int (max 1 total) ))
        threads;
    timeline = Timeline.render timeline;
    horizon = t.horizon;
    recorder;
    stats = stats_text;
  }
