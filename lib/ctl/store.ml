module F = Lotto_tickets.Funding
module Acl = Lotto_tickets.Acl

type entry = { label : string; ticket : F.ticket }

type t = {
  mutable system : F.system;
  mutable acl : Acl.t;
  mutable entries : entry list; (* creation order *)
  mutable next_label : int;
}

let create () =
  let system = F.create_system () in
  { system; acl = Acl.create system; entries = []; next_label = 1 }

let system t = t.system
let acl t = t.acl

let find_entry t label = List.find_opt (fun e -> e.label = label) t.entries

let fresh_label t =
  let l = Printf.sprintf "t%d" t.next_label in
  t.next_label <- t.next_label + 1;
  l

(* --- serialization ----------------------------------------------------- *)

let ticket_state ticket =
  match F.funds ticket with
  | Some c -> "backs:" ^ F.currency_name c
  | None ->
      if F.is_held ticket then
        if F.is_active ticket then "held:active" else "held:inactive"
      else "unattached"

let perm_word = function Acl.Issue -> "issue" | Acl.Fund -> "fund" | Acl.Manage -> "manage"

let perm_of_word = function
  | "issue" -> Some Acl.Issue
  | "fund" -> Some Acl.Fund
  | "manage" -> Some Acl.Manage
  | _ -> None

let save t =
  let buf = Buffer.create 256 in
  List.iter
    (fun c ->
      if not (F.is_base c) then
        Buffer.add_string buf (Printf.sprintf "currency %s\n" (F.currency_name c)))
    (F.currencies t.system);
  List.iter
    (fun c ->
      if not (F.is_base c) then begin
        (match Acl.owner t.acl c with
        | owner when owner <> "root" ->
            Buffer.add_string buf
              (Printf.sprintf "owner %s %s\n" (F.currency_name c) owner)
        | _ -> ()
        | exception Not_found -> ());
        List.iter
          (fun (principal, perm) ->
            Buffer.add_string buf
              (Printf.sprintf "grant %s %s %s\n" (F.currency_name c) principal
                 (perm_word perm)))
          (try List.rev (Acl.grants t.acl c) with Not_found -> [])
      end)
    (F.currencies t.system);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "ticket %s %d %s %s\n" e.label (F.amount e.ticket)
           (F.currency_name (F.denomination e.ticket))
           (ticket_state e.ticket)))
    (List.rev t.entries);
  Buffer.contents buf

let load text =
  let t = create () in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let rec go = function
    | [] -> Ok t
    | line :: rest -> (
        match String.split_on_char ' ' line with
        | [ "currency"; name ] -> (
            match Acl.make_currency t.acl ~as_:"root" ~name with
            | Ok _ -> go rest
            | Error m -> err "%s" m)
        | [ "owner"; name; principal ] -> (
            match F.find_currency t.system name with
            | None -> err "owner line for unknown currency %s" name
            | Some c -> (
                match Acl.chown t.acl ~as_:"root" c principal with
                | Ok () -> go rest
                | Error m -> err "%s" m))
        | [ "grant"; name; principal; perm ] -> (
            match (F.find_currency t.system name, perm_of_word perm) with
            | None, _ -> err "grant line for unknown currency %s" name
            | _, None -> err "bad permission %S" perm
            | Some c, Some p -> (
                (* the original owner granted this; replay as the current
                   owner *)
                match Acl.grant t.acl ~as_:(Acl.owner t.acl c) c principal p with
                | Ok () -> go rest
                | Error m -> err "%s" m))
        | [ "ticket"; label; amount; denom; state ] -> (
            match (int_of_string_opt amount, F.find_currency t.system denom) with
            | None, _ -> err "bad amount in %S" line
            | _, None -> err "unknown denomination %s" denom
            | Some amount, Some currency -> (
                let ticket = F.issue t.system ~currency ~amount in
                t.entries <- { label; ticket } :: t.entries;
                (* keep next_label beyond any loaded tN labels *)
                (match
                   if String.length label > 1 && label.[0] = 't' then
                     int_of_string_opt (String.sub label 1 (String.length label - 1))
                   else None
                 with
                | Some n when n >= t.next_label -> t.next_label <- n + 1
                | _ -> ());
                match String.split_on_char ':' state with
                | [ "unattached" ] -> go rest
                | [ "held"; "active" ] ->
                    F.hold t.system ticket;
                    go rest
                | [ "held"; "inactive" ] ->
                    F.hold t.system ticket;
                    F.suspend t.system ticket;
                    go rest
                | [ "backs"; target ] -> (
                    match F.find_currency t.system target with
                    | None -> err "unknown funded currency %s" target
                    | Some c -> (
                        match F.fund t.system ~ticket ~currency:c with
                        | () -> go rest
                        | exception F.Cycle m -> err "cycle: %s" m))
                | _ -> err "bad ticket state %S" state))
        | _ -> err "unparseable line %S" line)
  in
  go lines

let load_file path =
  if not (Sys.file_exists path) then Ok (create ())
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    load text
  end

let save_file t path =
  match open_out_bin path with
  | oc ->
      output_string oc (save t);
      close_out oc;
      Ok ()
  | exception Sys_error m -> Error m

(* --- commands ----------------------------------------------------------- *)

type cmd =
  | Mkcur of string
  | Rmcur of string
  | Mktkt of { amount : int; denom : string }
  | Rmtkt of string
  | Fund of { ticket : string; currency : string }
  | Unfund of string
  | Hold of string
  | Release of string
  | Lscur
  | Lstkt
  | Eval
  | Draw of { n : int; seed : int }
  | Simulate of { seconds : int; seed : int }
  | Dot
  | Chown of { currency : string; new_owner : string }
  | Grant of { currency : string; principal : string; perm : string }
  | Ungrant of { currency : string; principal : string; perm : string }

let parse_command words =
  let int_arg name s k =
    match int_of_string_opt s with
    | Some n -> k n
    | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)
  in
  match words with
  | [ "mkcur"; name ] -> Ok (Mkcur name)
  | [ "rmcur"; name ] -> Ok (Rmcur name)
  | [ "mktkt"; amount; denom ] ->
      int_arg "mktkt amount" amount (fun amount -> Ok (Mktkt { amount; denom }))
  | [ "rmtkt"; label ] -> Ok (Rmtkt label)
  | [ "fund"; ticket; currency ] -> Ok (Fund { ticket; currency })
  | [ "unfund"; ticket ] -> Ok (Unfund ticket)
  | [ "hold"; ticket ] -> Ok (Hold ticket)
  | [ "release"; ticket ] -> Ok (Release ticket)
  | [ "lscur" ] -> Ok Lscur
  | [ "dot" ] -> Ok Dot
  | [ "chown"; currency; new_owner ] -> Ok (Chown { currency; new_owner })
  | [ "grant"; currency; principal; perm ] -> Ok (Grant { currency; principal; perm })
  | [ "ungrant"; currency; principal; perm ] ->
      Ok (Ungrant { currency; principal; perm })
  | [ "lstkt" ] -> Ok Lstkt
  | [ "eval" ] -> Ok Eval
  | [ "draw"; n ] -> int_arg "draw count" n (fun n -> Ok (Draw { n; seed = 42 }))
  | [ "draw"; n; seed ] ->
      int_arg "draw count" n (fun n ->
          int_arg "seed" seed (fun seed -> Ok (Draw { n; seed })))
  | [ "simulate"; seconds ] ->
      int_arg "seconds" seconds (fun seconds -> Ok (Simulate { seconds; seed = 42 }))
  | [ "simulate"; seconds; seed ] ->
      int_arg "seconds" seconds (fun seconds ->
          int_arg "seed" seed (fun seed -> Ok (Simulate { seconds; seed })))
  | cmd :: _ -> Error (Printf.sprintf "unknown command %S" cmd)
  | [] -> Error "empty command"

let with_entry t label k =
  match find_entry t label with
  | Some e -> k e
  | None -> Error (Printf.sprintf "no ticket labelled %s" label)

let with_currency t name k =
  match F.find_currency t.system name with
  | Some c -> k c
  | None -> Error (Printf.sprintf "no currency named %s" name)

let describe_ticket t e =
  ignore t;
  Printf.sprintf "%-6s %6d.%s  %s" e.label (F.amount e.ticket)
    (F.currency_name (F.denomination e.ticket))
    (ticket_state e.ticket)

(* Replay the stored graph inside a lottery scheduler: every held ticket
   becomes a compute-bound thread funded identically, and the CPU split
   after [seconds] shows what the stored rights are worth. *)
let simulate t ~seconds ~seed =
  let open Lotto_sim in
  let module Ls = Lotto_sched.Lottery_sched in
  let rng = Lotto_prng.Rng.create ~seed () in
  let ls = Ls.create ~rng () in
  let kernel = Kernel.create ~sched:(Ls.sched ls) () in
  (* copy currencies *)
  List.iter
    (fun c ->
      if not (F.is_base c) then ignore (Ls.make_currency ls (F.currency_name c)))
    (F.currencies t.system);
  let lookup name =
    match F.find_currency (Ls.funding ls) name with
    | Some c -> c
    | None -> assert false
  in
  (* copy backing tickets, and one spinner per held ticket *)
  let spinners = ref [] in
  List.iter
    (fun e ->
      let amount = F.amount e.ticket in
      let denom = lookup (F.currency_name (F.denomination e.ticket)) in
      match F.funds e.ticket with
      | Some target ->
          ignore
            (Ls.fund_currency ls ~target:(lookup (F.currency_name target)) ~amount
               ~from:denom)
      | None ->
          if F.is_held e.ticket then begin
            let s = Lotto_workloads.Spinner.spawn kernel ~name:e.label () in
            ignore
              (Ls.fund_thread ls (Lotto_workloads.Spinner.thread s) ~amount
                 ~from:denom);
            spinners := (e.label, s) :: !spinners
          end)
    (List.rev t.entries);
  match !spinners with
  | [] -> Error "no held tickets to simulate"
  | spinners ->
      ignore (Kernel.run kernel ~until:(Time.seconds seconds));
      let total =
        List.fold_left
          (fun acc (_, s) ->
            acc + Kernel.cpu_time (Lotto_workloads.Spinner.thread s))
          0 spinners
      in
      let buf = Buffer.create 128 in
      Buffer.add_string buf
        (Printf.sprintf "simulated %ds of CPU under lottery scheduling:\n" seconds);
      List.iter
        (fun (label, s) ->
          let cpu = Kernel.cpu_time (Lotto_workloads.Spinner.thread s) in
          Buffer.add_string buf
            (Printf.sprintf "  %-6s %5.1f%%  (%d ticks)\n" label
               (100. *. float_of_int cpu /. float_of_int (max 1 total))
               cpu))
        (List.rev spinners);
      Ok (Buffer.contents buf)

let exec ?(user = "root") t cmd =
  match cmd with
  | Mkcur name -> (
      match Acl.make_currency t.acl ~as_:user ~name with
      | Ok _ -> Ok (Printf.sprintf "created currency %s (owner %s)" name user)
      | Error m -> Error m)
  | Rmcur name ->
      with_currency t name (fun c ->
          match Acl.remove_currency t.acl ~as_:user c with
          | Ok () -> Ok (Printf.sprintf "removed currency %s" name)
          | Error m -> Error m)
  | Mktkt { amount; denom } ->
      if amount < 0 then Error "mktkt: negative amount"
      else
        with_currency t denom (fun currency ->
            match Acl.issue t.acl ~as_:user ~currency ~amount with
            | Error m -> Error m
            | Ok ticket ->
                let label = fresh_label t in
                t.entries <- { label; ticket } :: t.entries;
                Ok (Printf.sprintf "created ticket %s = %d.%s" label amount denom))
  | Rmtkt label ->
      with_entry t label (fun e ->
          match Acl.destroy_ticket t.acl ~as_:user e.ticket with
          | Error m -> Error m
          | Ok () ->
              t.entries <- List.filter (fun e' -> e'.label <> label) t.entries;
              Ok (Printf.sprintf "destroyed ticket %s" label))
  | Fund { ticket; currency } ->
      with_entry t ticket (fun e ->
          with_currency t currency (fun c ->
              match Acl.fund t.acl ~as_:user ~ticket:e.ticket ~currency:c with
              | Ok () -> Ok (Printf.sprintf "%s now funds %s" ticket currency)
              | Error m -> Error m))
  | Unfund label ->
      with_entry t label (fun e ->
          match Acl.unfund t.acl ~as_:user e.ticket with
          | Ok () -> Ok (Printf.sprintf "%s unfunded" label)
          | Error m -> Error m)
  | Chown { currency; new_owner } ->
      with_currency t currency (fun c ->
          match Acl.chown t.acl ~as_:user c new_owner with
          | Ok () -> Ok (Printf.sprintf "%s now owned by %s" currency new_owner)
          | Error m -> Error m)
  | Grant { currency; principal; perm } -> (
      match perm_of_word perm with
      | None -> Error (Printf.sprintf "unknown permission %S (issue|fund|manage)" perm)
      | Some p ->
          with_currency t currency (fun c ->
              match Acl.grant t.acl ~as_:user c principal p with
              | Ok () -> Ok (Printf.sprintf "granted %s on %s to %s" perm currency principal)
              | Error m -> Error m))
  | Ungrant { currency; principal; perm } -> (
      match perm_of_word perm with
      | None -> Error (Printf.sprintf "unknown permission %S (issue|fund|manage)" perm)
      | Some p ->
          with_currency t currency (fun c ->
              match Acl.revoke_perm t.acl ~as_:user c principal p with
              | Ok () -> Ok (Printf.sprintf "revoked %s on %s from %s" perm currency principal)
              | Error m -> Error m))
  | Hold label ->
      with_entry t label (fun e ->
          match F.hold t.system e.ticket with
          | () -> Ok (Printf.sprintf "%s is now held (competing)" label)
          | exception Invalid_argument m -> Error m)
  | Release label ->
      with_entry t label (fun e ->
          match F.release t.system e.ticket with
          | () -> Ok (Printf.sprintf "%s released" label)
          | exception Invalid_argument m -> Error m)
  | Lscur ->
      let lines =
        List.map
          (fun c ->
            let owner = try Acl.owner t.acl c with Not_found -> "?" in
            Printf.sprintf "%-12s owner=%-8s active=%d backing=%d issued=%d"
              (F.currency_name c) owner (F.active_amount c)
              (List.length (F.backing_tickets t.system c))
              (List.length (F.issued_tickets t.system c)))
          (F.currencies t.system)
      in
      Ok (String.concat "\n" lines)
  | Lstkt ->
      if t.entries = [] then Ok "(no tickets)"
      else
        Ok (String.concat "\n" (List.rev_map (describe_ticket t) t.entries))
  | Eval ->
      let v = F.Valuation.make t.system in
      let cur_lines =
        List.map
          (fun c ->
            Printf.sprintf "currency %-12s value=%.2f unit=%.4f" (F.currency_name c)
              (F.Valuation.currency_value v c)
              (F.Valuation.unit_value v c))
          (F.currencies t.system)
      in
      let tkt_lines =
        List.rev_map
          (fun e ->
            Printf.sprintf "ticket   %-12s value=%.2f" e.label
              (F.Valuation.ticket_value v e.ticket))
          t.entries
      in
      Ok (String.concat "\n" (cur_lines @ tkt_lines))
  | Draw { n; seed } ->
      if n <= 0 then Error "draw: need a positive count"
      else begin
        let held = List.filter (fun e -> F.is_held e.ticket) (List.rev t.entries) in
        if held = [] then Error "draw: no held tickets"
        else begin
          let rng = Lotto_prng.Rng.create ~seed () in
          let wins = Hashtbl.create 8 in
          let v = F.Valuation.make t.system in
          (* unordered list backend, filled in reverse: the prepending list
             then scans tickets in their creation order *)
          let d =
            Lotto_draw.Draw.of_list
              (Lotto_draw.List_lottery.create
                 ~order:Lotto_draw.List_lottery.Unordered ())
          in
          List.iter
            (fun e ->
              ignore
                (Lotto_draw.Draw.add d ~client:e
                   ~weight:(F.Valuation.ticket_value v e.ticket)))
            (List.rev held);
          for _ = 1 to n do
            match Lotto_draw.Draw.draw_client d rng with
            | Some e ->
                Hashtbl.replace wins e.label
                  (1 + Option.value ~default:0 (Hashtbl.find_opt wins e.label))
            | None -> ()
          done;
          let lines =
            List.map
              (fun e ->
                let w = Option.value ~default:0 (Hashtbl.find_opt wins e.label) in
                Printf.sprintf "%-6s %6d wins (%.1f%%)" e.label w
                  (100. *. float_of_int w /. float_of_int n))
              held
          in
          Ok (String.concat "\n" lines)
        end
      end
  | Simulate { seconds; seed } ->
      if seconds <= 0 then Error "simulate: need a positive duration"
      else simulate t ~seconds ~seed
  | Dot -> Ok (F.to_dot t.system)
