(** Scenario-driven simulations for the [lottosim] tool.

    A scenario is a small text program describing currencies, threads and a
    run horizon; running it builds a lottery-scheduled kernel, executes it,
    and reports each thread's CPU share plus an execution timeline. It
    makes "what does a 3:2:1 split under my workload look like?" a
    one-file question.

    Syntax (one directive per line, [#] comments):
    {v
    seed 42                    # optional, default 1
    quantum 100ms              # optional, default 100ms
    currency alice 1000 base   # name, funding amount, funding source
    thread a1 spin 1ms 100 alice        # compute-bound: cost per iteration
    thread a2 spin 1ms 200 alice
    thread ivy interactive 20ms 80ms 100 base   # compute then sleep, repeat
    run 60s
    v}

    Durations accept [us], [ms] and [s] suffixes. Threads are funded with
    [amount currency]. [run] must appear exactly once, last. *)

type t

type report = {
  rows : (string * int * float) list;
      (** thread name, cpu ticks, share of total cpu *)
  timeline : string;
  horizon : Lotto_sim.Time.t;
  recorder : Lotto_obs.Recorder.t option;
      (** captured event trace, when [run ~trace:true]; export with
          {!Lotto_obs.Recorder.to_chrome_json} / [to_csv] *)
  stats : string option;
      (** rendered {!Lotto_obs.Metrics.summary} — per-thread wins, quanta,
          compensation counts, wait/dispatch percentiles and the
          observed-vs-entitled share table — when [run ~stats:true] *)
}

val parse : string -> (t, string) result
val parse_file : string -> (t, string) result

val run : ?trace:bool -> ?trace_capacity:int -> ?stats:bool -> t -> report
(** Execute the scenario. [trace] (default false) records the typed event
    stream into a ring buffer of [trace_capacity] events (default 2^20);
    [stats] (default false) accumulates the metrics registry and renders
    its summary against each thread's final ticket entitlement. *)
