(** Scenario-driven simulations for the [lottosim] tool.

    A scenario is a small text program describing currencies, threads and a
    run horizon; running it builds a lottery-scheduled kernel, executes it,
    and reports each thread's CPU share plus an execution timeline. It
    makes "what does a 3:2:1 split under my workload look like?" a
    one-file question.

    Syntax (one directive per line, [#] comments):
    {v
    seed 42                    # optional, default 1
    quantum 100ms              # optional, default 100ms
    currency alice 1000 base   # name, funding amount, funding source
    thread a1 spin 1ms 100 alice        # compute-bound: cost per iteration
    thread a2 spin 1ms 200 alice
    thread ivy interactive 20ms 80ms 100 base   # compute then sleep, repeat
    thread srv serve echo 5ms 100 base  # RPC server on port "echo"
    thread cli rpc echo 2ms 100 alice   # think 2ms, call "echo", repeat
    run 60s
    v}

    Durations accept [us], [ms] and [s] suffixes. Threads are funded with
    [amount currency]. [run] must appear exactly once, last.

    [serve] threads loop receive → compute → reply on the named port;
    [rpc] threads loop compute → synchronous call. Ports are created on
    demand, one per distinct name; client/server pairs are what make
    [--spans] and the trace's RPC flow arrows interesting. Calling a port
    nobody serves is legal — the client blocks and its spans are
    orphan-flagged at the horizon. *)

type t

type report = {
  rows : (string * int * float) list;
      (** thread name, cpu ticks, share of total cpu *)
  timeline : string;
  horizon : Lotto_sim.Time.t;
  recorder : Lotto_obs.Recorder.t option;
      (** captured event trace, when [run ~trace:true]; export with
          {!Lotto_obs.Recorder.to_chrome_json} / [to_csv] *)
  stats : string option;
      (** rendered {!Lotto_obs.Metrics.summary} — per-thread wins, quanta,
          compensation counts, wait/dispatch percentiles and the
          observed-vs-entitled share table — when [run ~stats:true]; a
          warning line is appended when the trace ring wrapped *)
  spans : Lotto_obs.Span.t option;
      (** finalized causal span tracer, when [run ~spans:true]; export with
          {!Lotto_obs.Span.to_chrome_json} *)
  prom : string option;
      (** Prometheus text snapshot ({!Lotto_obs.Metrics.to_prom}), when
          [run ~prom:true] *)
  profile : string option;
      (** rendered scheduler phase profile, when [run ~profile_clock] was
          given *)
}

val parse : string -> (t, string) result
val parse_file : string -> (t, string) result

val run :
  ?cpus:int ->
  ?trace:bool ->
  ?trace_capacity:int ->
  ?stats:bool ->
  ?spans:bool ->
  ?prom:bool ->
  ?profile_clock:(unit -> int) ->
  t ->
  report
(** Execute the scenario. [cpus] (default 1) is the number of virtual
    CPUs: [1] runs the historical single-CPU kernel with an unsharded
    lottery (outputs are byte-identical to older releases), while [n > 1]
    shards the lottery one shard per CPU — ticket-weighted placement,
    hysteresis rebalancing and work stealing included — and drives the
    kernel's multi-CPU round loop. [trace] (default false) records the typed event
    stream into a ring buffer of [trace_capacity] events (default 2^20);
    [stats] (default false) accumulates the metrics registry and renders
    its summary against each thread's final ticket entitlement; [spans]
    (default false) attaches a causal span tracer, finalized at the
    horizon; [prom] (default false) renders a Prometheus snapshot of the
    metrics; [profile_clock] (a monotonic nanosecond counter, e.g. built
    on [Unix.gettimeofday]) enables the scheduler phase profiler. *)
