(** Multi-tenant service harness: wires tenants, pools, clients, funding,
    and the optional I/O device into one kernel run and captures a
    per-tenant SLO report.

    Under {!Lottery} each tenant is a {!Lotto_tickets.Funding} currency
    funded with its share from the base currency; the currency backs the
    tenant's workers (amount 100 each), client stubs and generator
    (amount 1 each — they do no CPU work), and, when the tenant does I/O,
    a funded {!Lotto_res.Io_bandwidth} client — one currency pricing both
    resources, the paper's §6 design. Under {!Decay_usage} no funding
    exists and the same workload runs on the decay-usage scheduler, which
    is what the lottery-vs-SRM comparison experiment exploits. *)

type sched_kind = Lottery | Decay_usage

type config = {
  seed : int;
  horizon : Lotto_sim.Time.t;
  quantum : Lotto_sim.Time.t;
  sched_kind : sched_kind;
  io_slot : Lotto_sim.Time.t option;
      (** virtual time between I/O device slots; [None] disables the device *)
  tenants : Tenant.spec list;
}

val config :
  ?seed:int ->
  ?horizon:Lotto_sim.Time.t ->
  ?quantum:Lotto_sim.Time.t ->
  ?sched_kind:sched_kind ->
  ?io_slot:Lotto_sim.Time.t ->
  Tenant.spec list ->
  config
(** Defaults: seed 94, horizon 60 s, quantum 10 ms, {!Lottery}, no I/O
    device. Raises [Invalid_argument] on an empty tenant list. *)

type tenant_report = {
  t_name : string;
  t_share : int;
  arrivals : int;
  served : int;
  shed : int;  (** [Rejected] outcomes observed by the tenant's stubs *)
  in_flight : int;  (** arrivals − served − shed at capture *)
  kernel_shed : int;  (** the kernel's own count at the tenant's port *)
  goodput_per_s : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;  (** e2e latency percentiles; [nan] when nothing served *)
  worker_quanta : int;
  io_submitted : int;
  io_served : int;
}

type report = {
  tenants : tenant_report list;
  chi_square_p : float option;
      (** p-value of worker CPU time against share-proportional
          entitlements ({!Lotto_obs.Metrics.fairness}); high = consistent *)
  accounted : bool;
      (** every tenant satisfied
          [arrivals = served + shed + backlog + holding] at capture *)
  shed_consistent : bool;
      (** client-observed shed counts equal kernel port shed counts *)
  total_quanta : int;
  slices : int;
  prom : string;  (** {!Slo.to_prom} capture, ready to expose or snapshot *)
}

val run : ?cpus:int -> config -> report
(** Build the world, run to the horizon, capture. Deterministic per
    [(config, cpus)]. *)

val find : report -> string -> tenant_report
(** Raises [Not_found] for an unknown tenant name. *)

val report_to_string : report -> string
