(** Per-tenant service-level accounting.

    One {!tenant} row per tenant: an {!Lotto_obs.Hdr} histogram of
    end-to-end latency (arrival stamp → reply received, so client-side
    queueing and dispatch delay are included), plus request counters that
    satisfy the conservation law the service harness asserts:

    {[ arrivals = served + shed + in_flight ]}

    [in_flight] is derived, never stored, so the books cannot drift. *)

type tenant = {
  name : string;
  lat : Lotto_obs.Hdr.t;
  mutable arrivals : int;  (** open-loop arrivals generated *)
  mutable served : int;  (** replies received by client stubs *)
  mutable shed : int;  (** [Rejected] surfaced to client stubs *)
  mutable io_submitted : int;
  mutable io_served : int;  (** filled from the I/O manager at capture *)
}

type t

val create : unit -> t

val tenant : t -> string -> tenant
(** Find-or-create by name; rows keep first-seen order. *)

val tenants : t -> tenant list

val record_arrival : tenant -> unit
val record_served : tenant -> latency_us:int -> unit
val record_shed : tenant -> unit

val in_flight : tenant -> int
(** [arrivals - served - shed]: requests still queued client-side, queued
    at the port, or in service. *)

val goodput_per_s : tenant -> horizon:Lotto_sim.Time.t -> float
val percentile_ms : tenant -> float -> float
(** [percentile_ms ten 99.] — e2e latency percentile in ms ([nan] when no
    request completed). *)

val summary : t -> horizon:Lotto_sim.Time.t -> string
(** One table row per tenant: arrivals/served/shed/in-flight, goodput and
    p50/p99/p999. *)

val to_prom : ?namespace:string -> t -> string
(** Prometheus text exposition (default namespace ["lotto_slo"]): counter
    families per tenant plus a latency summary with quantiles
    0.5/0.9/0.99/0.999. *)
