(** Worker pool: server threads draining a tenant's bounded RPC port.

    Each worker loops receive → compute the per-request service time →
    [on_served] hook → reply ["ok"]. The port is created with the spec's
    capacity and shed policy, so admission control happens in the kernel
    before a request ever reaches a worker. *)

type t

val spawn :
  Lotto_sim.Kernel.t ->
  spec:Tenant.spec ->
  ?on_served:(unit -> unit) ->
  unit ->
  t
(** Create the port and spawn [spec.workers] server threads. [on_served]
    runs in worker context after the service computation and before the
    reply (the service harness uses it to submit the tenant's I/O). The
    caller is responsible for funding the worker threads. *)

val port : t -> Lotto_sim.Types.port
val workers : t -> Lotto_sim.Types.thread list

val shed_count : t -> int
(** Kernel-side count of requests shed at this pool's port. *)
