open Lotto_sim

type spec = {
  name : string;
  share : int;
  arrivals : Arrivals.profile;
  service : Time.t;
  workers : int;
  stubs : int;
  capacity : int;
  shed : Types.shed_policy;
  io_per_req : int;
}

let spec ?(share = 100) ?(service = Time.ms 5) ?(workers = 4) ?(stubs = 64)
    ?(capacity = 32) ?(shed = Types.Reject_new) ?(io_per_req = 0) ~arrivals
    name =
  if share < 1 then invalid_arg "Tenant.spec: share must be >= 1";
  if workers < 1 then invalid_arg "Tenant.spec: workers must be >= 1";
  if stubs < 1 then invalid_arg "Tenant.spec: stubs must be >= 1";
  if io_per_req < 0 then invalid_arg "Tenant.spec: io_per_req must be >= 0";
  { name; share; arrivals; service; workers; stubs; capacity; shed; io_per_req }

(* The service rate a tenant's entitlement buys on one CPU that it shares
   with the other tenants: share fraction / per-request cost. *)
let entitled_rate_per_s specs spec =
  let total = List.fold_left (fun acc s -> acc + s.share) 0 specs in
  let frac = float_of_int spec.share /. float_of_int (max 1 total) in
  frac *. (1e6 /. float_of_int (max 1 spec.service))

let offered_rate_per_s spec = Arrivals.mean_rate_per_s spec.arrivals
