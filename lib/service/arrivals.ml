module Rng = Lotto_prng.Rng

type profile =
  | Poisson of float
  | Mmpp of {
      calm_per_s : float;
      burst_per_s : float;
      calm_ms : float;
      burst_ms : float;
    }

let validate = function
  | Poisson r ->
      if not (r > 0.) then invalid_arg "Arrivals: Poisson rate must be > 0"
  | Mmpp { calm_per_s; burst_per_s; calm_ms; burst_ms } ->
      if
        not
          (calm_per_s > 0. && burst_per_s > 0. && calm_ms > 0. && burst_ms > 0.)
      then invalid_arg "Arrivals: Mmpp parameters must be > 0"

let mean_rate_per_s = function
  | Poisson r -> r
  | Mmpp { calm_per_s; burst_per_s; calm_ms; burst_ms } ->
      (* time-weighted average of the two state rates *)
      ((calm_per_s *. calm_ms) +. (burst_per_s *. burst_ms))
      /. (calm_ms +. burst_ms)

type t =
  | P of { rng : Rng.t; mean_us : float }
  | M of {
      rng : Rng.t;
      mean_us : float array;  (** per-state mean interarrival, µs *)
      sojourn_us : float array;  (** per-state mean sojourn, µs *)
      mutable state : int;
      mutable until_switch : float;  (** µs left in the current state *)
    }

let create ~rng profile =
  validate profile;
  match profile with
  | Poisson r -> P { rng; mean_us = 1e6 /. r }
  | Mmpp { calm_per_s; burst_per_s; calm_ms; burst_ms } ->
      let sojourn_us = [| calm_ms *. 1e3; burst_ms *. 1e3 |] in
      let m =
        M
          {
            rng;
            mean_us = [| 1e6 /. calm_per_s; 1e6 /. burst_per_s |];
            sojourn_us;
            state = 0;
            until_switch = 0.;
          }
      in
      (match m with
      | M s -> s.until_switch <- Rng.exponential rng ~mean:sojourn_us.(0)
      | P _ -> assert false);
      m

let next_gap_us t =
  let gap =
    match t with
    | P { rng; mean_us } -> Rng.exponential rng ~mean:mean_us
    | M s ->
        (* Walk exponential candidate gaps across state switches: thanks to
           memorylessness, a candidate that overshoots the switch point is
           discarded and redrawn at the boundary under the new state's
           rate, which is exactly the MMPP law. *)
        let consumed = ref 0. in
        let gap = ref (-1.) in
        while !gap < 0. do
          let cand = Rng.exponential s.rng ~mean:s.mean_us.(s.state) in
          if cand <= s.until_switch then begin
            s.until_switch <- s.until_switch -. cand;
            gap := !consumed +. cand
          end
          else begin
            consumed := !consumed +. s.until_switch;
            s.state <- 1 - s.state;
            s.until_switch <-
              Rng.exponential s.rng ~mean:s.sojourn_us.(s.state)
          end
        done;
        !gap
  in
  let g = int_of_float gap in
  if g < 1 then 1 else g
