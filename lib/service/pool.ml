open Lotto_sim

type t = {
  port : Types.port;
  workers : Types.thread list;
}

let spawn k ~(spec : Tenant.spec) ?(on_served = fun () -> ()) () =
  let port =
    Kernel.create_port ~capacity:spec.capacity ~shed:spec.shed k
      ~name:(spec.name ^ ".port")
  in
  let worker () =
    (* Workers run for the whole simulation; the kernel stops them at the
       horizon. A worker killed mid-request (chaos) simply dies — the
       client's ticket transfer is withdrawn and the reply, if it ever
       comes from a sibling, is dropped as traced. *)
    while true do
      let msg = Api.receive port in
      Api.compute spec.service;
      on_served ();
      Api.reply msg "ok"
    done
  in
  let workers =
    List.init spec.workers (fun i ->
        Kernel.spawn k ~name:(Printf.sprintf "%s.w%d" spec.name i) worker)
  in
  { port; workers }

let port t = t.port
let workers t = t.workers
let shed_count t = Kernel.port_shed_count t.port
