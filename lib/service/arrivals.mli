(** Open-loop arrival generators in virtual time.

    An open-loop source fires requests on its own schedule, independent of
    how fast the service drains them — the load model behind every heavy-
    traffic claim in the service layer (closed-loop clients self-throttle
    under overload and hide saturation). Two processes are provided:

    - {!Poisson}: memoryless arrivals at a fixed rate;
    - {!Mmpp}: a 2-state Markov-modulated Poisson process (calm/burst), the
      standard bursty-traffic model — exponential sojourns in each state,
      Poisson arrivals at the state's rate.

    Generators draw from the {!Lotto_prng.Rng} stream they are created
    with, so a split stream per tenant makes every arrival schedule
    deterministic per seed and independent of other tenants. *)

type profile =
  | Poisson of float  (** arrivals per virtual second; must be positive *)
  | Mmpp of {
      calm_per_s : float;  (** arrival rate in the calm state *)
      burst_per_s : float;  (** arrival rate in the burst state *)
      calm_ms : float;  (** mean sojourn in the calm state, ms *)
      burst_ms : float;  (** mean sojourn in the burst state, ms *)
    }

val mean_rate_per_s : profile -> float
(** Long-run average arrival rate (for capacity planning against a
    tenant's entitled service rate). *)

type t

val create : rng:Lotto_prng.Rng.t -> profile -> t
(** Raises [Invalid_argument] on non-positive rates or sojourns. *)

val next_gap_us : t -> int
(** Draw the next interarrival gap in µs of virtual time (at least 1),
    advancing the generator. An MMPP generator resamples across state
    switches using memorylessness, so gaps spanning a switch follow the
    modulated law exactly. *)
