open Lotto_sim

type state = {
  ten : Slo.tenant;
  backlog : int Queue.t;  (** intended arrival times, µs, FIFO *)
  mutable holding : int;  (** requests popped by a stub, outcome unrecorded *)
}

type t = {
  st : state;
  stubs : Types.thread list;
  generator : Types.thread;
}

(* One persistent stub per concurrent outstanding request. Stubs never
   compute, so their slices are ~zero-length: each earns a standing
   compensation factor (paper §3.4) and is dispatched promptly even when
   the machine is saturated with backlogged workers — exactly the paper's
   interactive-thread mechanism. Spawning a fresh thread per request
   instead would wait out a full lottery backlog before its first select,
   adding seconds of spurious "latency" that no real kernel charges. *)
let spawn k ~(spec : Tenant.spec) ~rng ~slo ~port =
  let ten = Slo.tenant slo spec.name in
  let arr = Arrivals.create ~rng spec.arrivals in
  let st = { ten; backlog = Queue.create (); holding = 0 } in
  let sem = Kernel.create_semaphore k ~initial:0 (spec.name ^ ".backlog") in
  let stub () =
    (* Prime at t=0: every thread alive before the first compute drains
       its zero-length first slice immediately, establishing the
       compensation history the dispatch-latency argument above needs. *)
    Api.yield ();
    while true do
      Api.sem_wait sem;
      let t0 = Queue.pop st.backlog in
      st.holding <- st.holding + 1;
      (match Api.rpc port "req" with
      | (_ : string) -> Slo.record_served ten ~latency_us:(Api.now () - t0)
      | exception Types.Rejected _ -> Slo.record_shed ten);
      st.holding <- st.holding - 1
    done
  in
  let generator () =
    Api.yield ();
    (* Absolute-time open-loop schedule: arrival k fires at the sum of the
       first k gaps regardless of how late the generator itself was
       dispatched, so the offered rate survives scheduling delay. The
       else-branch catches up without sleeping when we wake past several
       arrival times. *)
    let next = ref (Arrivals.next_gap_us arr) in
    while true do
      let now = Api.now () in
      if !next > now then Api.sleep (!next - now)
      else begin
        Slo.record_arrival ten;
        Queue.push !next st.backlog;
        Api.sem_post sem;
        next := !next + Arrivals.next_gap_us arr
      end
    done
  in
  let stubs =
    List.init spec.stubs (fun i ->
        Kernel.spawn k ~name:(Printf.sprintf "%s.c%d" spec.name i) stub)
  in
  let generator = Kernel.spawn k ~name:(spec.name ^ ".gen") generator in
  { st; stubs; generator }

let tenant c = c.st.ten
let backlog_len c = Queue.length c.st.backlog
let holding c = c.st.holding
let stubs c = c.stubs
let generator c = c.generator

(* Conservation law at any quiescent point: every generated arrival is
   served, shed, still queued client-side, or held by a stub mid-RPC. *)
let accounted c =
  c.st.ten.Slo.arrivals
  = c.st.ten.Slo.served + c.st.ten.Slo.shed
    + Queue.length c.st.backlog + c.st.holding
