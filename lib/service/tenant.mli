(** Static description of one tenant of the shared service.

    A tenant buys a proportional share of the machine (funded as a
    {!Lotto_tickets.Funding} currency under lottery scheduling), runs a
    fixed worker pool behind a bounded RPC port, and offers open-loop
    load described by an {!Arrivals.profile}. *)

type spec = {
  name : string;
  share : int;  (** funding amount of the tenant's currency, in base tickets *)
  arrivals : Arrivals.profile;
  service : Lotto_sim.Time.t;  (** per-request CPU cost *)
  workers : int;  (** server threads draining the port *)
  stubs : int;  (** persistent client stubs issuing RPCs *)
  capacity : int;  (** bounded-port depth; [max_int] = unbounded *)
  shed : Lotto_sim.Types.shed_policy;
  io_per_req : int;  (** I/O requests submitted per served request *)
}

val spec :
  ?share:int ->
  ?service:Lotto_sim.Time.t ->
  ?workers:int ->
  ?stubs:int ->
  ?capacity:int ->
  ?shed:Lotto_sim.Types.shed_policy ->
  ?io_per_req:int ->
  arrivals:Arrivals.profile ->
  string ->
  spec
(** [spec ~arrivals name] with defaults share 100, service 5 ms, 4 workers,
    64 stubs, capacity 32, [Reject_new], no I/O. Raises [Invalid_argument]
    on non-positive share/workers/stubs or negative [io_per_req]. *)

val entitled_rate_per_s : spec list -> spec -> float
(** Service rate the tenant's share entitles it to on one CPU shared with
    [specs]: share fraction of the machine divided by per-request cost. *)

val offered_rate_per_s : spec -> float
