module Hdr = Lotto_obs.Hdr

(* e2e latencies in µs of virtual time; 2^-5 relative error, values up to
   2^30 µs (~18 virtual minutes) before clamping *)
let make_hdr () = Hdr.create ~sub_bits:5 ~max_value:(1 lsl 30) ()

type tenant = {
  name : string;
  lat : Hdr.t;  (** arrival → reply-received, µs of virtual time *)
  mutable arrivals : int;
  mutable served : int;
  mutable shed : int;
  mutable io_submitted : int;
  mutable io_served : int;
}

type t = {
  tbl : (string, tenant) Hashtbl.t;
  mutable order : tenant list;  (** reverse first-seen order *)
}

let create () = { tbl = Hashtbl.create 8; order = [] }

let tenant t name =
  match Hashtbl.find_opt t.tbl name with
  | Some ten -> ten
  | None ->
      let ten =
        {
          name;
          lat = make_hdr ();
          arrivals = 0;
          served = 0;
          shed = 0;
          io_submitted = 0;
          io_served = 0;
        }
      in
      Hashtbl.replace t.tbl name ten;
      t.order <- ten :: t.order;
      ten

let tenants t = List.rev t.order

let record_arrival ten = ten.arrivals <- ten.arrivals + 1

let record_served ten ~latency_us =
  ten.served <- ten.served + 1;
  Hdr.record ten.lat latency_us

let record_shed ten = ten.shed <- ten.shed + 1

let in_flight ten = ten.arrivals - ten.served - ten.shed

let goodput_per_s ten ~horizon =
  if horizon <= 0 then 0.
  else float_of_int ten.served /. Lotto_sim.Time.to_seconds horizon

let percentile_ms ten p =
  if Hdr.count ten.lat = 0 then nan else Hdr.percentile ten.lat p /. 1000.

let summary t ~horizon =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-10s %9s %9s %8s %9s %9s %9s %9s %9s\n" "tenant"
       "arrivals" "served" "shed" "inflight" "goodput/s" "p50(ms)" "p99(ms)"
       "p999(ms)");
  List.iter
    (fun ten ->
      Buffer.add_string buf
        (Printf.sprintf "%-10s %9d %9d %8d %9d %9.1f %9.1f %9.1f %9.1f\n"
           ten.name ten.arrivals ten.served ten.shed (in_flight ten)
           (goodput_per_s ten ~horizon)
           (percentile_ms ten 50.) (percentile_ms ten 99.)
           (percentile_ms ten 99.9)))
    (tenants t);
  Buffer.contents buf

(* Prometheus text exposition, following Lotto_obs.Metrics.to_prom. *)

let prom_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_prom ?(namespace = "lotto_slo") t =
  let buf = Buffer.create 2048 in
  let tens = tenants t in
  let label ten = Printf.sprintf "{tenant=\"%s\"}" (prom_escape ten.name) in
  let counter name help get =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s_%s %s\n# TYPE %s_%s counter\n" namespace name
         help namespace name);
    List.iter
      (fun ten ->
        Buffer.add_string buf
          (Printf.sprintf "%s_%s%s %d\n" namespace name (label ten) (get ten)))
      tens
  in
  counter "requests_total" "Open-loop arrivals generated." (fun x -> x.arrivals);
  counter "served_total" "Requests answered within the run." (fun x -> x.served);
  counter "shed_total" "Requests shed by bounded-port admission." (fun x ->
      x.shed);
  counter "in_flight" "Requests neither served nor shed at capture."
    in_flight;
  counter "io_submitted_total" "I/O requests submitted on the tenant's behalf."
    (fun x -> x.io_submitted);
  counter "io_served_total" "I/O slots won by the tenant's funded client."
    (fun x -> x.io_served);
  Buffer.add_string buf
    (Printf.sprintf "# HELP %s_latency_us End-to-end latency, µs of virtual \
                     time.\n# TYPE %s_latency_us summary\n"
       namespace namespace);
  List.iter
    (fun ten ->
      if Hdr.count ten.lat > 0 then
        List.iter
          (fun q ->
            Buffer.add_string buf
              (Printf.sprintf "%s_latency_us{tenant=\"%s\",quantile=\"%g\"} %g\n"
                 namespace (prom_escape ten.name) q
                 (Hdr.percentile ten.lat (q *. 100.))))
          [ 0.5; 0.9; 0.99; 0.999 ];
      Buffer.add_string buf
        (Printf.sprintf "%s_latency_us_sum%s %d\n" namespace (label ten)
           (Hdr.sum ten.lat));
      Buffer.add_string buf
        (Printf.sprintf "%s_latency_us_count%s %d\n" namespace (label ten)
           (Hdr.count ten.lat)))
    tens;
  Buffer.contents buf
