open Lotto_sim
module Ls = Lotto_sched.Lottery_sched
module Decay = Lotto_sched.Decay_usage
module Io = Lotto_res.Io_bandwidth
module Rng = Lotto_prng.Rng
module Metrics = Lotto_obs.Metrics

type sched_kind = Lottery | Decay_usage

type config = {
  seed : int;
  horizon : Time.t;
  quantum : Time.t;
  sched_kind : sched_kind;
  io_slot : Time.t option;  (** I/O device slot interval; [None] = no device *)
  tenants : Tenant.spec list;
}

let config ?(seed = 94) ?(horizon = Time.seconds 60) ?(quantum = Time.ms 10)
    ?(sched_kind = Lottery) ?io_slot tenants =
  if tenants = [] then invalid_arg "Service.config: no tenants";
  { seed; horizon; quantum; sched_kind; io_slot; tenants }

type tenant_report = {
  t_name : string;
  t_share : int;
  arrivals : int;
  served : int;
  shed : int;
  in_flight : int;
  kernel_shed : int;  (** sheds counted at the tenant's port by the kernel *)
  goodput_per_s : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  worker_quanta : int;  (** CPU ticks consumed by the tenant's workers *)
  io_submitted : int;
  io_served : int;
}

type report = {
  tenants : tenant_report list;
  chi_square_p : float option;
      (** worker CPU shares vs ticket entitlements, [Metrics.fairness] *)
  accounted : bool;  (** conservation law held for every tenant *)
  shed_consistent : bool;
      (** client-observed sheds equal kernel port counts, per tenant *)
  total_quanta : int;
  slices : int;
  prom : string;  (** SLO families at capture, Prometheus text format *)
}

(* Per-tenant runtime state wired up during construction. *)
type runtime = {
  spec : Tenant.spec;
  pool : Pool.t;
  client : Client.t;
  io_client : Io.client option;
}

let run ?(cpus = 1) cfg =
  let rng = Rng.create ~seed:cfg.seed () in
  let io_rng = Rng.split rng in
  (* One split stream per tenant for arrivals, drawn before the scheduler
     consumes the parent stream, so a tenant's schedule depends only on
     (seed, tenant order) — not on scheduling decisions. *)
  let tenant_rngs = List.map (fun _ -> Rng.split rng) cfg.tenants in
  let ls, sched =
    match cfg.sched_kind with
    | Lottery ->
        let shards = if cpus > 1 then cpus else 0 in
        let ls = Ls.create ~shards ~rng () in
        (Some ls, Ls.sched ls)
    | Decay_usage -> (None, Decay.(sched (create ())))
  in
  let kernel = Kernel.create ~quantum:cfg.quantum ~cpus ~sched () in
  let metrics = Metrics.create () in
  Metrics.attach metrics (Kernel.bus kernel);
  let slo = Slo.create () in
  let io_dev =
    match cfg.io_slot with
    | None -> None
    | Some _ -> (
        match ls with
        | Some ls -> Some (Io.create ~funding:(Ls.funding ls) ~rng:io_rng ())
        | None -> Some (Io.create ~rng:io_rng ()))
  in
  let fund th ~amount ~from =
    match ls with
    | Some ls -> ignore (Ls.fund_thread ls th ~amount ~from)
    | None -> ()
  in
  let runtimes =
    List.map2
      (fun (spec : Tenant.spec) trng ->
        let currency =
          match ls with
          | Some ls ->
              let cur = Ls.make_currency ls spec.name in
              ignore
                (Ls.fund_currency ls ~target:cur ~amount:spec.share
                   ~from:(Ls.base_currency ls));
              Some cur
          | None -> None
        in
        let io_client =
          match io_dev with
          | Some dev when spec.io_per_req > 0 -> (
              match currency with
              | Some cur ->
                  Some (Io.add_funded_client dev ~name:spec.name ~currency:cur ())
              | None ->
                  Some (Io.add_client dev ~name:spec.name ~tickets:spec.share))
          | _ -> None
        in
        let ten = Slo.tenant slo spec.name in
        let on_served () =
          match io_client with
          | Some c ->
              ten.Slo.io_submitted <- ten.Slo.io_submitted + spec.io_per_req;
              Io.submit (Option.get io_dev) c ~requests:spec.io_per_req
          | None -> ()
        in
        let pool = Pool.spawn kernel ~spec ~on_served () in
        let client = Client.spawn kernel ~spec ~rng:trng ~slo ~port:(Pool.port pool) in
        (match currency with
        | Some cur ->
            List.iter
              (fun w -> fund w ~amount:100 ~from:cur)
              (Pool.workers pool);
            List.iter (fun s -> fund s ~amount:1 ~from:cur) (Client.stubs client);
            fund (Client.generator client) ~amount:1 ~from:cur
        | None -> ());
        { spec; pool; client; io_client })
      cfg.tenants tenant_rngs
  in
  (match (io_dev, cfg.io_slot) with
  | Some dev, Some slot ->
      let device =
        Kernel.spawn kernel ~name:"io.device" (fun () ->
            while true do
              Api.sleep slot;
              ignore (Io.serve_slot dev)
            done)
      in
      (match ls with
      | Some ls ->
          ignore
            (Ls.fund_thread ls device ~amount:50 ~from:(Ls.base_currency ls))
      | None -> ())
  | _ -> ());
  let summary = Kernel.run kernel ~until:cfg.horizon in
  (* Capture: pull I/O completions into the SLO rows before rendering. *)
  List.iter
    (fun rt ->
      match (io_dev, rt.io_client) with
      | Some dev, Some c ->
          let ten = Slo.tenant slo rt.spec.name in
          ten.Slo.io_served <- Io.served dev c
      | _ -> ())
    runtimes;
  let entitled =
    List.concat_map
      (fun rt ->
        let w = float_of_int rt.spec.share /. float_of_int rt.spec.workers in
        List.map (fun th -> (Kernel.thread_id th, w)) (Pool.workers rt.pool))
      runtimes
  in
  let _, chi_square_p = Metrics.fairness metrics ~entitled in
  let tenants =
    List.map
      (fun rt ->
        let ten = Slo.tenant slo rt.spec.name in
        {
          t_name = rt.spec.name;
          t_share = rt.spec.share;
          arrivals = ten.Slo.arrivals;
          served = ten.Slo.served;
          shed = ten.Slo.shed;
          in_flight = Slo.in_flight ten;
          kernel_shed = Pool.shed_count rt.pool;
          goodput_per_s = Slo.goodput_per_s ten ~horizon:cfg.horizon;
          p50_ms = Slo.percentile_ms ten 50.;
          p99_ms = Slo.percentile_ms ten 99.;
          p999_ms = Slo.percentile_ms ten 99.9;
          worker_quanta =
            List.fold_left
              (fun acc th -> acc + Kernel.cpu_time th)
              0 (Pool.workers rt.pool);
          io_submitted = ten.Slo.io_submitted;
          io_served = ten.Slo.io_served;
        })
      runtimes
  in
  {
    tenants;
    chi_square_p;
    accounted = List.for_all (fun rt -> Client.accounted rt.client) runtimes;
    shed_consistent =
      List.for_all
        (fun rt ->
          (Slo.tenant slo rt.spec.name).Slo.shed = Pool.shed_count rt.pool)
        runtimes;
    total_quanta = Metrics.total_quanta metrics;
    slices = summary.Types.slices;
    prom = Slo.to_prom slo;
  }

let find report name = List.find (fun tr -> tr.t_name = name) report.tenants

let pp_report buf report =
  Buffer.add_string buf
    (Printf.sprintf "%-10s %6s %9s %9s %8s %9s %9s %9s %9s %9s\n" "tenant"
       "share" "arrivals" "served" "shed" "inflight" "goodput/s" "p50(ms)"
       "p99(ms)" "p999(ms)");
  List.iter
    (fun tr ->
      Buffer.add_string buf
        (Printf.sprintf "%-10s %6d %9d %9d %8d %9d %9.1f %9.1f %9.1f %9.1f\n"
           tr.t_name tr.t_share tr.arrivals tr.served tr.shed tr.in_flight
           tr.goodput_per_s tr.p50_ms tr.p99_ms tr.p999_ms))
    report.tenants;
  Buffer.add_string buf
    (Printf.sprintf "chi-square p = %s   accounted = %b   shed-consistent = %b\n"
       (match report.chi_square_p with
       | Some p -> Printf.sprintf "%.4f" p
       | None -> "n/a")
       report.accounted report.shed_consistent)

let report_to_string report =
  let buf = Buffer.create 512 in
  pp_report buf report;
  Buffer.contents buf
