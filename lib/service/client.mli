(** Open-loop client side of one tenant: a load generator plus a pool of
    persistent RPC stubs.

    The generator walks an absolute-time arrival schedule drawn from the
    tenant's {!Arrivals} profile and pushes intended arrival times onto a
    client-side backlog; stubs take them off a semaphore and issue the
    blocking RPC. End-to-end latency is measured from the {e intended}
    arrival time, so generator and stub dispatch delays count against the
    SLO — the open-loop property that makes overload visible.

    Stubs are persistent (rather than one thread per request) because
    zero-compute threads hold a standing compensation factor (§3.4) and
    are dispatched promptly under saturation; fresh threads would queue
    behind the full lottery for their first slice. *)

type t

val spawn :
  Lotto_sim.Kernel.t ->
  spec:Tenant.spec ->
  rng:Lotto_prng.Rng.t ->
  slo:Slo.t ->
  port:Lotto_sim.Types.port ->
  t
(** Spawn [spec.stubs] stub threads and one generator thread. The caller
    is responsible for funding them (amount 1 each suffices — they do no
    CPU work). [rng] should be a per-tenant split stream. *)

val tenant : t -> Slo.tenant
val backlog_len : t -> int
(** Arrivals generated but not yet picked up by a stub. *)

val holding : t -> int
(** Requests currently held by a stub whose outcome is not yet recorded. *)

val stubs : t -> Lotto_sim.Types.thread list
val generator : t -> Lotto_sim.Types.thread

val accounted : t -> bool
(** The conservation law [arrivals = served + shed + backlog + holding].
    Holds at every point where no stub is between its counter updates —
    in particular after {!Lotto_sim.Kernel.run} returns. *)
