open Lotto_sim
module Mw = Lotto_workloads.Mutex_workload
module D = Lotto_stats.Descriptive
module H = Lotto_stats.Histogram

type group_result = {
  label : string;
  acquisitions : int;
  mean_wait : float;
  wait_stddev : float;
  histogram : H.t;
}

type t = {
  group_a : group_result;
  group_b : group_result;
  acquisition_ratio : float;
  wait_ratio : float;
}

let run ?(seed = 11) ?(duration = Time.seconds 120)
    ?(group_size = 4) ?(hold = Time.ms 50) ?(work = Time.ms 50) () =
  let kernel, ls = Common.lottery_setup ~seed () in
  let base = Common.Ls.base_currency ls in
  let mutex = Kernel.create_mutex kernel ~policy:Types.Lottery_wake "lock" in
  let spawn_group label tickets =
    Array.init group_size (fun i ->
        let name = Printf.sprintf "%s%d" label (i + 1) in
        let c = Mw.spawn_contender kernel ~mutex ~name ~hold ~work () in
        ignore (Common.Ls.fund_thread ls (Mw.thread c) ~amount:tickets ~from:base);
        c)
  in
  let ga = spawn_group "A" 200 in
  let gb = spawn_group "B" 100 in
  ignore (Kernel.run kernel ~until:duration);
  let summarize label group =
    let waits = Array.concat (Array.to_list (Array.map Mw.waiting_times group)) in
    let histogram = H.create ~lo:0. ~hi:4. ~buckets:20 in
    Array.iter (H.add histogram) waits;
    {
      label;
      acquisitions = Array.fold_left (fun acc c -> acc + Mw.acquisitions c) 0 group;
      mean_wait = (if Array.length waits = 0 then nan else D.mean waits);
      wait_stddev = (if Array.length waits < 2 then 0. else D.stddev waits);
      histogram;
    }
  in
  let group_a = summarize "A" ga and group_b = summarize "B" gb in
  {
    group_a;
    group_b;
    acquisition_ratio = Common.iratio group_a.acquisitions group_b.acquisitions;
    wait_ratio = Common.ratio group_b.mean_wait group_a.mean_wait;
  }

let print t =
  Common.print_header "Figure 11: lottery-scheduled mutex, groups A:B = 2:1";
  Common.print_row [ "group"; "acquisitions"; "mean wait (s)"; "stddev" ];
  List.iter
    (fun g ->
      Common.print_row
        [
          g.label;
          Printf.sprintf "%5d" g.acquisitions;
          Printf.sprintf "%.3f" g.mean_wait;
          Printf.sprintf "%.3f" g.wait_stddev;
        ])
    [ t.group_a; t.group_b ];
  Common.print_kv "acquisition ratio A:B" "%.2f : 1 (paper: 1.80 : 1)"
    t.acquisition_ratio;
  Common.print_kv "waiting-time ratio A:B" "1 : %.2f (paper: 1 : 2.11)" t.wait_ratio

let to_csv t =
  Common.csv ~header:[ "group"; "acquisitions"; "mean_wait_s"; "wait_stddev_s" ]
    (List.map
       (fun g ->
         [
           g.label;
           string_of_int g.acquisitions;
           Common.f g.mean_wait;
           Common.f g.wait_stddev;
         ])
       [ t.group_a; t.group_b ])
