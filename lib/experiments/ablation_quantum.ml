open Lotto_sim
module Spinner = Lotto_workloads.Spinner
module D = Lotto_stats.Descriptive

type row = {
  quantum_ms : int;
  lotteries_per_window : int;
  mean_abs_error : float; (* mean relative error of the window share *)
  predicted_error : float;
}

type t = { rows : row array }

let window = Time.seconds 2

let one ~seed ~duration quantum_ms =
  let kernel, ls = Common.lottery_setup ~quantum:(Time.ms quantum_ms) ~seed () in
  let a = Spinner.spawn kernel ~name:"A" ~window () in
  let b = Spinner.spawn kernel ~name:"B" ~window () in
  let base = Common.Ls.base_currency ls in
  ignore (Common.Ls.fund_thread ls (Spinner.thread a) ~amount:200 ~from:base);
  ignore (Common.Ls.fund_thread ls (Spinner.thread b) ~amount:100 ~from:base);
  ignore (Kernel.run kernel ~until:duration);
  let wa = Spinner.windows a ~upto:duration and wb = Spinner.windows b ~upto:duration in
  (* relative error of the favoured task's per-window CPU share against its
     entitlement p = 2/3 — bounded, unlike the A:B ratio *)
  let errors =
    Array.init (Array.length wa) (fun i ->
        let total = wa.(i) + wb.(i) in
        if total = 0 then nan
        else begin
          let share = float_of_int wa.(i) /. float_of_int total in
          abs_float (share -. (2. /. 3.)) /. (2. /. 3.)
        end)
    |> Array.to_list
    |> List.filter Float.is_finite
    |> Array.of_list
  in
  let n = window / Time.ms quantum_ms in
  let p = 2. /. 3. in
  {
    quantum_ms;
    lotteries_per_window = n;
    mean_abs_error = D.mean errors;
    (* cv of the window share for the favoured task, by the paper's
       binomial model: sqrt(np(1-p))/np *)
    predicted_error = sqrt ((1. -. p) /. (float_of_int n *. p));
  }

(* Each quantum size is an independent seeded simulation — a task list for
   the domain pool, merged back in quantum order. *)
let run ?(seed = 24) ?(duration = Time.seconds 120) ?(jobs = 1) () =
  {
    rows =
      Lotto_par.Pool.map_tasks ~jobs (one ~seed ~duration)
        [| 10; 20; 50; 100; 200; 400 |];
  }

let print t =
  Common.print_header "Ablation: quantum size vs short-term fairness (2:1, 2s windows)";
  Common.print_row
    [ "quantum"; "lotteries/window"; "mean |error|"; "binomial prediction" ];
  Array.iter
    (fun r ->
      Common.print_row
        [
          Printf.sprintf "%4dms" r.quantum_ms;
          Printf.sprintf "%5d" r.lotteries_per_window;
          Printf.sprintf "%.3f" r.mean_abs_error;
          Printf.sprintf "%.3f" r.predicted_error;
        ])
    t.rows

let to_csv t =
  Common.csv
    ~header:[ "quantum_ms"; "lotteries_per_window"; "mean_abs_error"; "binomial_prediction" ]
    (Array.to_list t.rows
    |> List.map (fun r ->
           [
             string_of_int r.quantum_ms;
             string_of_int r.lotteries_per_window;
             Common.f r.mean_abs_error;
             Common.f r.predicted_error;
           ]))
