module Sw = Lotto_res.Switch
module Rng = Lotto_prng.Rng

type row = {
  name : string;
  tickets : int;
  offered : float;
  delivered : int;
  share : float;
  mean_delay : float;
  dropped : int;
}

type t = {
  congested : row array;
  uncongested : row;
  port0_utilization : float;
}

let run ?(seed = 90) ?(slots = 200_000) () =
  let rng = Rng.create ~algo:Splitmix64 ~seed () in
  let sw = Sw.create ~ports:2 ~rng () in
  let specs = [| ("gold", 300, 0.6); ("silver", 200, 0.6); ("bronze", 100, 0.6) |] in
  let congested =
    Array.map
      (fun (name, tickets, rate) ->
        Sw.add_circuit sw ~name ~output_port:0 ~tickets ~rate)
      specs
  in
  let lonely = Sw.add_circuit sw ~name:"telemetry" ~output_port:1 ~tickets:10 ~rate:0.3 in
  Sw.step sw ~slots;
  let total_delivered =
    Array.fold_left (fun acc c -> acc + Sw.delivered sw c) 0 congested
  in
  let mk name tickets offered c total =
    {
      name;
      tickets;
      offered;
      delivered = Sw.delivered sw c;
      share = float_of_int (Sw.delivered sw c) /. float_of_int (max 1 total);
      mean_delay = Sw.mean_delay sw c;
      dropped = Sw.dropped sw c;
    }
  in
  {
    congested =
      Array.mapi
        (fun i c ->
          let name, tickets, rate = specs.(i) in
          mk name tickets rate c total_delivered)
        congested;
    uncongested = mk "telemetry" 10 0.3 lonely (Sw.delivered sw lonely);
    port0_utilization = Sw.port_utilization sw 0;
  }

let print t =
  Common.print_header "Section 6 (ext): virtual circuits on a congested port (3:2:1)";
  Common.print_row [ "circuit"; "tickets"; "offered"; "delivered"; "share"; "delay"; "drops" ];
  let dump r =
    Common.print_row
      [
        r.name;
        string_of_int r.tickets;
        Printf.sprintf "%.2f" r.offered;
        Printf.sprintf "%6d" r.delivered;
        Printf.sprintf "%.3f" r.share;
        Printf.sprintf "%7.1f" r.mean_delay;
        string_of_int r.dropped;
      ]
  in
  Array.iter dump t.congested;
  dump t.uncongested;
  Common.print_kv "congested port utilization" "%.3f (saturated)" t.port0_utilization;
  Common.print_kv "uncongested circuit" "loses nothing despite 10 tickets"

let to_csv t =
  let row r =
    [
      r.name;
      string_of_int r.tickets;
      Common.f r.offered;
      string_of_int r.delivered;
      Common.f r.share;
      Common.f r.mean_delay;
      string_of_int r.dropped;
    ]
  in
  Common.csv
    ~header:[ "circuit"; "tickets"; "offered"; "delivered"; "share"; "mean_delay"; "dropped" ]
    (Array.to_list t.congested @ [ t.uncongested ] |> List.map row)
