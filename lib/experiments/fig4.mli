(** Figure 4 — relative rate accuracy.

    Two compute-bound tasks run for sixty seconds with a [r : 1] ticket
    allocation; the observed iteration ratio is plotted against the
    allocated ratio for [r = 1..10], three runs each. The paper reports
    observed ratios close to allocated ones, with variance growing with the
    ratio (one 10:1 run came out 13.42:1; a 20:1 three-minute run averaged
    19.08:1). *)

type run = { allocated : int; observed : float }

type t = {
  runs : run array;  (** three per allocated ratio *)
  twenty_to_one : float;  (** observed ratio of the 20:1 three-minute run *)
  slope : float;
      (** least-squares fit of observed against allocated — the paper's
          gray identity line has slope 1 *)
  intercept : float;
}

val run :
  ?seed:int ->
  ?duration:Lotto_sim.Time.t ->
  ?runs_per_ratio:int ->
  ?max_ratio:int ->
  ?jobs:int ->
  unit ->
  t
(** Every (ratio, trial) cell plus the 20:1 aside is an independent seeded
    simulation; [jobs] farms them out to that many domains
    ({!Lotto_par.Pool.map_tasks}). Results are merged by task index, so the
    output is byte-identical for every [jobs] value (default 1 =
    sequential in the calling domain). *)

val print : t -> unit

val max_relative_error : t -> float
(** Largest [|observed - allocated| / allocated] across runs (used by the
    integration tests' tolerance check). *)

val to_csv : t -> string
(** Serialize the result for external plotting. *)
