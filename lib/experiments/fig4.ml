open Lotto_sim
module Spinner = Lotto_workloads.Spinner

type run = { allocated : int; observed : float }

type t = {
  runs : run array;
  twenty_to_one : float;
  slope : float;  (** least-squares fit of observed vs allocated; ideal 1 *)
  intercept : float;
}

let one_run ~seed ~duration ~ratio =
  let kernel, ls = Common.lottery_setup ~seed () in
  let a = Spinner.spawn kernel ~name:"A" () in
  let b = Spinner.spawn kernel ~name:"B" () in
  let base = Common.Ls.base_currency ls in
  ignore (Common.Ls.fund_thread ls (Spinner.thread a) ~amount:(100 * ratio) ~from:base);
  ignore (Common.Ls.fund_thread ls (Spinner.thread b) ~amount:100 ~from:base);
  ignore (Kernel.run kernel ~until:duration);
  Common.iratio (Spinner.iterations a) (Spinner.iterations b)

(* One replication = one fully self-contained seeded kernel. The task list
   is pure data (the per-task seed derived from the experiment seed by the
   same offset formula as the historical sequential loop), so the grid can
   run on any number of domains and still assemble byte-identical output. *)
type task = { t_seed : int; t_duration : Time.t; t_ratio : int }

let run ?(seed = 1994) ?(duration = Time.seconds 60) ?(runs_per_ratio = 3)
    ?(max_ratio = 10) ?(jobs = 1) () =
  let grid =
    List.concat_map
      (fun ratio ->
        List.init runs_per_ratio (fun i ->
            { t_seed = seed + (1000 * ratio) + i; t_duration = duration; t_ratio = ratio }))
      (List.init max_ratio (fun r -> r + 1))
  in
  (* The paper's aside: a 20:1 allocation observed over three minutes —
     one more independent task on the same list. *)
  let twenty =
    { t_seed = seed + 777; t_duration = Time.seconds 180; t_ratio = 20 }
  in
  let tasks = Array.of_list (grid @ [ twenty ]) in
  let observed =
    Lotto_par.Pool.map_tasks ~jobs
      (fun t -> one_run ~seed:t.t_seed ~duration:t.t_duration ~ratio:t.t_ratio)
      tasks
  in
  let n_grid = Array.length tasks - 1 in
  let twenty_to_one = observed.(n_grid) in
  let runs =
    Array.init n_grid (fun i ->
        { allocated = tasks.(i).t_ratio; observed = observed.(i) })
  in
  (* the gray identity line of the paper's Figure 4, as a regression *)
  let intercept, slope =
    Lotto_stats.Descriptive.linear_fit
      (Array.map (fun r -> (float_of_int r.allocated, r.observed)) runs)
  in
  { runs; twenty_to_one; slope; intercept }

let print t =
  Common.print_header "Figure 4: relative rate accuracy (2 tasks, 60s runs)";
  Common.print_row [ "allocated"; "observed (one row per run)" ];
  let by_ratio = Hashtbl.create 16 in
  Array.iter
    (fun r ->
      let existing = try Hashtbl.find by_ratio r.allocated with Not_found -> [] in
      Hashtbl.replace by_ratio r.allocated (r.observed :: existing))
    t.runs;
  let ratios =
    Hashtbl.fold (fun k _ acc -> k :: acc) by_ratio [] |> List.sort_uniq compare
  in
  List.iter
    (fun ratio ->
      let obs = Hashtbl.find by_ratio ratio |> List.rev in
      Common.print_row
        [
          Printf.sprintf "%2d : 1" ratio;
          String.concat "  " (List.map (Printf.sprintf "%5.2f") obs);
        ])
    ratios;
  Common.print_kv "20:1 over 3 minutes" "%.2f : 1 (paper: 19.08 : 1)" t.twenty_to_one;
  Common.print_kv "observed vs allocated fit" "slope %.3f, intercept %.2f (ideal 1, 0)"
    t.slope t.intercept

let max_relative_error t =
  Array.fold_left
    (fun acc r ->
      let expected = float_of_int r.allocated in
      max acc (abs_float (r.observed -. expected) /. expected))
    0. t.runs

let to_csv t =
  Common.csv ~header:[ "allocated"; "observed" ]
    (Array.to_list t.runs
    |> List.map (fun r -> [ string_of_int r.allocated; Common.f r.observed ]))
