(** Ablation — lottery versus stride scheduling variance.

    Stride scheduling (Waldspurger's deterministic successor to lottery
    scheduling) delivers the same proportional shares with per-window error
    bounded by a single quantum, where the lottery's error is binomial.
    Both run the same 2:1 workload; we report the favoured task's
    per-window CPU share (entitlement 2/3): its mean, standard deviation
    and worst deviation. *)

type row = {
  scheduler : string;
  mean_share : float;
  share_stddev : float;
  worst_window : float;  (** max |share - 2/3| across windows *)
}

type t = { lottery : row; stride : row }

val run : ?seed:int -> ?duration:Lotto_sim.Time.t -> ?jobs:int -> unit -> t
(** The lottery and stride runs are independent simulations; [jobs] runs
    them on that many domains with index-merged (byte-identical) results. *)

val print : t -> unit

val to_csv : t -> string
(** Serialize the result for external plotting. *)
