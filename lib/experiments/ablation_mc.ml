open Lotto_sim
module Mc = Lotto_workloads.Monte_carlo
module Rng = Lotto_prng.Rng

type row = {
  exponent : float;
  elder_trials : int;
  newcomer_trials : int;
  catch_up : float;
}

type t = { rows : row array }

(* Pick the scale per exponent so that a converged task (error ~ 1e-4)
   still holds a ~100-unit ticket: tickets are integers, and a scale that
   rounds converged tickets down to 1 would freeze the feedback loop long
   before real convergence (especially for the cubic variant). *)
let scale_for exponent = 100. *. (1e4 ** exponent)

let one ~seed ~duration exponent =
  let kernel, ls = Common.lottery_setup ~seed () in
  let mc = Common.Ls.make_currency ls "mc" in
  ignore
    (Common.Ls.fund_currency ls ~target:mc ~amount:1000
       ~from:(Common.Ls.base_currency ls));
  let elder =
    Mc.spawn kernel ls ~name:"elder"
      ~rng:(Rng.create ~algo:Splitmix64 ~seed:(seed * 2) ())
      ~from:mc ~exponent ~scale:(scale_for exponent) ()
  in
  let newcomer =
    Mc.spawn kernel ls ~name:"newcomer"
      ~rng:(Rng.create ~algo:Splitmix64 ~seed:((seed * 2) + 1) ())
      ~from:mc ~exponent ~scale:(scale_for exponent)
      ~start_at:(duration / 2) ()
  in
  ignore (Kernel.run kernel ~until:duration);
  {
    exponent;
    elder_trials = Mc.trials elder;
    newcomer_trials = Mc.trials newcomer;
    catch_up = Common.iratio (Mc.trials newcomer) (Mc.trials elder);
  }

(* One exponent = one independent two-task simulation (its RNGs are all
   derived from the experiment seed inside [one]), so the three variants
   are a task list for the domain pool. *)
let run ?(seed = 66) ?(duration = Time.seconds 240) ?(jobs = 1) () =
  { rows = Lotto_par.Pool.map_tasks ~jobs (one ~seed ~duration) [| 1.; 2.; 3. |] }

let print t =
  Common.print_header
    "Ablation: Monte-Carlo funding = error^e (newcomer starts at half time)";
  Common.print_row [ "exponent"; "elder trials"; "newcomer trials"; "catch-up" ];
  Array.iter
    (fun r ->
      Common.print_row
        [
          Printf.sprintf "%.0f" r.exponent;
          Printf.sprintf "%9d" r.elder_trials;
          Printf.sprintf "%9d" r.newcomer_trials;
          Printf.sprintf "%.3f" r.catch_up;
        ])
    t.rows

let to_csv t =
  Common.csv ~header:[ "exponent"; "elder_trials"; "newcomer_trials"; "catch_up" ]
    (Array.to_list t.rows
    |> List.map (fun r ->
           [
             Common.f r.exponent;
             string_of_int r.elder_trials;
             string_of_int r.newcomer_trials;
             Common.f r.catch_up;
           ]))
