module Io = Lotto_res.Io_bandwidth
module Rng = Lotto_prng.Rng

type app_row = {
  name : string;
  cpu_need : int;
  io_need : int;
  work_done : int;
  final_cpu_tickets : int;
  final_io_tickets : int;
}

type policy_result = { policy : string; apps : app_row array; total_work : int }
type t = { static : policy_result; managed : policy_result }

type app = {
  a_name : string;
  a_cpu_need : int;
  a_io_need : int;
  budget : int;
  mutable cpu_tickets : int;
  mutable io_tickets : int;
  mutable cpu_bank : int; (* slots received but not yet consumed *)
  mutable io_bank : int;
  mutable work : int;
  cpu_client : Io.client;
  io_client : Io.client;
}

(* per-epoch capacities: enough combined demand to congest both devices *)
let cpu_capacity = 400
let io_capacity = 400

let make_apps ~rng =
  let cpu_dev = Io.create ~rng () in
  let io_dev = Io.create ~rng:(Rng.split rng) () in
  let mk a_name a_cpu_need a_io_need =
    {
      a_name;
      a_cpu_need;
      a_io_need;
      budget = 300;
      cpu_tickets = 150;
      io_tickets = 150;
      cpu_bank = 0;
      io_bank = 0;
      work = 0;
      cpu_client = Io.add_client cpu_dev ~name:(a_name ^ ":cpu") ~tickets:150;
      io_client = Io.add_client io_dev ~name:(a_name ^ ":io") ~tickets:150;
    }
  in
  (* crunch is compute-heavy, slurp is I/O-heavy *)
  let apps = [| mk "crunch" 3 1; mk "slurp" 1 3 |] in
  (cpu_dev, io_dev, apps)

let epoch cpu_dev io_dev apps ~managed =
  (* everyone is always backlogged on both devices *)
  Array.iter
    (fun a ->
      Io.set_tickets cpu_dev a.cpu_client a.cpu_tickets;
      Io.set_tickets io_dev a.io_client a.io_tickets;
      let top_up dev client =
        let deficit = (2 * cpu_capacity) - Io.pending dev client in
        if deficit > 0 then Io.submit dev client ~requests:deficit
      in
      top_up cpu_dev a.cpu_client;
      top_up io_dev a.io_client)
    apps;
  let cpu_before = Array.map (fun a -> Io.served cpu_dev a.cpu_client) apps in
  let io_before = Array.map (fun a -> Io.served io_dev a.io_client) apps in
  Io.serve cpu_dev ~slots:cpu_capacity;
  Io.serve io_dev ~slots:io_capacity;
  Array.iteri
    (fun i a ->
      a.cpu_bank <- a.cpu_bank + Io.served cpu_dev a.cpu_client - cpu_before.(i);
      a.io_bank <- a.io_bank + Io.served io_dev a.io_client - io_before.(i);
      (* consume banked slots into completed work units *)
      let units = min (a.cpu_bank / a.a_cpu_need) (a.io_bank / a.a_io_need) in
      a.cpu_bank <- a.cpu_bank - (units * a.a_cpu_need);
      a.io_bank <- a.io_bank - (units * a.a_io_need);
      a.work <- a.work + units;
      if managed then begin
        (* the manager thread's policy: move 10% of the budget toward the
           bottleneck resource, judged by the surplus left in the banks *)
        let shift = max 1 (a.budget / 10) in
        if a.cpu_bank > a.io_bank && a.io_tickets + shift <= a.budget then begin
          (* starved for io: cpu slots pile up unused *)
          a.io_tickets <- a.io_tickets + shift;
          a.cpu_tickets <- a.budget - a.io_tickets
        end
        else if a.io_bank > a.cpu_bank && a.cpu_tickets + shift <= a.budget then begin
          a.cpu_tickets <- a.cpu_tickets + shift;
          a.io_tickets <- a.budget - a.cpu_tickets
        end
      end)
    apps

let one ~seed ~epochs ~managed =
  let rng = Rng.create ~algo:Splitmix64 ~seed () in
  let cpu_dev, io_dev, apps = make_apps ~rng in
  for _ = 1 to epochs do
    epoch cpu_dev io_dev apps ~managed
  done;
  let rows =
    Array.map
      (fun a ->
        {
          name = a.a_name;
          cpu_need = a.a_cpu_need;
          io_need = a.a_io_need;
          work_done = a.work;
          final_cpu_tickets = a.cpu_tickets;
          final_io_tickets = a.io_tickets;
        })
      apps
  in
  {
    policy = (if managed then "managed" else "static 50/50");
    apps = rows;
    total_work = Array.fold_left (fun acc r -> acc + r.work_done) 0 rows;
  }

let run ?(seed = 63) ?(epochs = 200) () =
  {
    static = one ~seed ~epochs ~managed:false;
    managed = one ~seed ~epochs ~managed:true;
  }

let print t =
  Common.print_header
    "Section 6.3: manager threads rebalance funding across CPU and I/O";
  List.iter
    (fun r ->
      Common.print_kv "policy" "%s (total work %d)" r.policy r.total_work;
      Common.print_row [ "app"; "needs cpu:io"; "work done"; "final split cpu:io" ];
      Array.iter
        (fun a ->
          Common.print_row
            [
              a.name;
              Printf.sprintf "%d:%d" a.cpu_need a.io_need;
              Printf.sprintf "%6d" a.work_done;
              Printf.sprintf "%d:%d" a.final_cpu_tickets a.final_io_tickets;
            ])
        r.apps)
    [ t.static; t.managed ]

let to_csv t =
  Common.csv
    ~header:[ "policy"; "app"; "cpu_need"; "io_need"; "work_done"; "final_cpu"; "final_io" ]
    (List.concat_map
       (fun r ->
         Array.to_list r.apps
         |> List.map (fun a ->
                [
                  r.policy;
                  a.name;
                  string_of_int a.cpu_need;
                  string_of_int a.io_need;
                  string_of_int a.work_done;
                  string_of_int a.final_cpu_tickets;
                  string_of_int a.final_io_tickets;
                ]))
       [ t.static; t.managed ])
