open Lotto_sim
module Ls = Lotto_sched.Lottery_sched
module Spinner = Lotto_workloads.Spinner
module Chi = Lotto_stats.Chi_square

type sample = {
  s_time : Time.t;
  s_migrations : int;
  s_steals : int;
  s_imbalance : float;
}

type config = {
  label : string;
  cpus : int;
  names : string array;
  observed : int array;
  entitled : float array;
  aggregate_p : float;
  per_shard_p : (int * int * float) array;
  migrations : int;
  steals : int;
  shard_mass : float array;
  series : sample list;
}

type t = {
  global : config;
  sharded : config;
  threads : int;
  duration : Time.t;
}

let chisq_p ~observed ~weights =
  let total = Array.fold_left ( + ) 0 observed in
  let wsum = Array.fold_left ( +. ) 0. weights in
  if total = 0 || wsum <= 0. || Array.length observed < 2 then nan
  else
    let expected =
      Array.map (fun w -> float_of_int total *. w /. wsum) weights
    in
    let stat = Chi.statistic ~observed ~expected in
    Chi.p_value ~statistic:stat
      ~df:(Chi.degrees_of_freedom ~cells:(Array.length observed))

let one_config ~label ~seed ~duration ~amounts ~cpus ~samples () =
  let n = Array.length amounts in
  let rng = Lotto_prng.Rng.create ~seed () in
  (* cpus = 1 is the historical unsharded scheduler — the global lottery
     every thread competes in; cpus > 1 shards it one shard per CPU *)
  let ls =
    if cpus = 1 then Ls.create ~rng () else Ls.create ~shards:cpus ~rng ()
  in
  let kernel = Kernel.create ~cpus ~sched:(Ls.sched ls) () in
  let base = Ls.base_currency ls in
  let spinners =
    Array.init n (fun i ->
        let sp = Spinner.spawn kernel ~name:(Printf.sprintf "t%02d" i) () in
        ignore
          (Ls.fund_thread ls (Spinner.thread sp) ~amount:amounts.(i) ~from:base);
        sp)
  in
  (* run in chunks so the migration counter and the shard ticket-mass
     imbalance can be sampled as a time series *)
  let series = ref [] in
  let chunk = max 1 (duration / samples) in
  for k = 1 to samples do
    ignore (Kernel.run kernel ~until:(min duration (chunk * k)));
    if cpus > 1 then begin
      let masses = Array.init (Ls.shards ls) (Ls.shard_ticket_mass ls) in
      let total = Array.fold_left ( +. ) 0. masses in
      let ideal = total /. float_of_int cpus in
      let imb =
        if ideal <= 0. then 0.
        else
          Array.fold_left
            (fun acc m -> max acc (abs_float (m -. ideal) /. ideal))
            0. masses
      in
      series :=
        {
          s_time = min duration (chunk * k);
          s_migrations = Ls.migrations ls;
          s_steals = Ls.steals ls;
          s_imbalance = imb;
        }
        :: !series
    end
  done;
  ignore (Kernel.run kernel ~until:duration);
  let q = Kernel.quantum kernel in
  let observed =
    Array.map (fun sp -> Kernel.cpu_time (Spinner.thread sp) / q) spinners
  in
  let entitled =
    Array.map (fun sp -> Ls.thread_entitlement ls (Spinner.thread sp)) spinners
  in
  let aggregate_p = chisq_p ~observed ~weights:entitled in
  (* per-shard: each shard is one CPU's own lottery, so within a shard the
     members' CPU time should split proportionally to their entitlements
     (renormalized over the shard's membership) *)
  let per_shard_p =
    if cpus = 1 then [||]
    else
      Array.init (Ls.shards ls) (fun s ->
          let members = ref [] in
          Array.iteri
            (fun i sp ->
              if Ls.shard_of ls (Spinner.thread sp) = s then
                members := i :: !members)
            spinners;
          let idx = Array.of_list (List.rev !members) in
          let p =
            if Array.length idx < 2 then nan
            else
              chisq_p
                ~observed:(Array.map (fun i -> observed.(i)) idx)
                ~weights:(Array.map (fun i -> entitled.(i)) idx)
          in
          (s, Array.length idx, p))
  in
  let shard_mass =
    if cpus = 1 then [||]
    else Array.init (Ls.shards ls) (Ls.shard_ticket_mass ls)
  in
  {
    label;
    cpus;
    names = Array.map Spinner.(fun sp -> Kernel.thread_name (thread sp)) spinners;
    observed;
    entitled;
    aggregate_p;
    per_shard_p;
    migrations = Ls.migrations ls;
    steals = Ls.steals ls;
    shard_mass;
    series = List.rev !series;
  }

let run ?(seed = 1994) ?(duration = Time.seconds 120) ?(threads = 24)
    ?(cpus = 4) ?(samples = 24) () =
  if cpus < 2 then invalid_arg "Smp_fairness.run: cpus < 2";
  if threads < cpus then invalid_arg "Smp_fairness.run: threads < cpus";
  (* a 5-way ticket spread, repeated: enough weight diversity to make the
     chi-square informative while no single thread is entitled to more
     than one CPU's worth (which no scheduler could deliver) *)
  let amounts = Array.init threads (fun i -> 100 * (1 + (i mod 5))) in
  let global =
    one_config ~label:"global" ~seed ~duration ~amounts ~cpus:1 ~samples ()
  in
  let sharded =
    one_config ~label:"sharded" ~seed ~duration ~amounts ~cpus ~samples ()
  in
  { global; sharded; threads; duration }

let min_shard_p t =
  Array.fold_left
    (fun acc (_, _, p) -> if Float.is_nan p then acc else min acc p)
    infinity t.sharded.per_shard_p

let print_config c =
  let total = Array.fold_left ( + ) 0 c.observed in
  let esum = Array.fold_left ( +. ) 0. c.entitled in
  Common.print_kv
    (Printf.sprintf "%s (%d cpu%s)" c.label c.cpus
       (if c.cpus = 1 then "" else "s"))
    "%d quanta served, aggregate chi-square p = %.3f" total c.aggregate_p;
  Array.iteri
    (fun i name ->
      Common.print_row
        [
          name;
          Printf.sprintf "observed %5.1f%%"
            (100. *. float_of_int c.observed.(i) /. float_of_int (max 1 total));
          Printf.sprintf "entitled %5.1f%%" (100. *. c.entitled.(i) /. esum);
        ])
    c.names;
  if c.cpus > 1 then begin
    Array.iter
      (fun (s, members, p) ->
        Common.print_kv
          (Printf.sprintf "shard %d" s)
          "%d threads, mass %.0f, chi-square p = %s" members c.shard_mass.(s)
          (if Float.is_nan p then "n/a" else Printf.sprintf "%.3f" p))
      c.per_shard_p;
    Common.print_kv "migrations / steals" "%d / %d" c.migrations c.steals;
    match c.series with
    | [] -> ()
    | series ->
        let last = List.nth series (List.length series - 1) in
        Common.print_kv "final ticket imbalance" "%.3f of ideal (band 0.25)"
          last.s_imbalance
  end

let print t =
  Common.print_header
    (Printf.sprintf
       "SMP fairness: global lottery vs %d-way sharded (%d threads, %ds)"
       t.sharded.cpus t.threads (t.duration / Time.seconds 1));
  print_config t.global;
  print_config t.sharded;
  Common.print_kv "min per-shard p" "%.3f (pass at p >= 0.01)" (min_shard_p t);
  Common.print_kv "note" "%s"
    "sharding guarantees proportional share per shard; aggregate share \
     tracks entitlement only to within the imbalance band"

let to_csv t =
  Common.csv
    ~header:[ "time_s"; "migrations"; "steals"; "ticket_imbalance" ]
    (List.map
       (fun s ->
         [
           string_of_int (s.s_time / Time.seconds 1);
           string_of_int s.s_migrations;
           string_of_int s.s_steals;
           Common.f s.s_imbalance;
         ])
       t.sharded.series)
