(* Capacity-planning curves for one tenant owning the whole machine.

   Sweep the offered-load multiplier over the machine's service capacity
   (200 req/s at 5 ms/request) and record goodput, shed fraction and
   latency percentiles, once with Poisson arrivals and once with a
   bursty MMPP at the same mean rate. The knee sits at 1.0 for Poisson;
   the bursty curve sheds measurably below nominal capacity — the margin
   a capacity planner has to hold back for burst absorption.

   Each (multiplier, profile) cell is an independent seeded simulation
   built entirely inside the task body, so the sweep runs on the domain
   pool and is byte-identical at any --jobs. *)

open Lotto_sim
module Svc = Lotto_service.Service
module Tenant = Lotto_service.Tenant
module Arrivals = Lotto_service.Arrivals

type row = {
  profile : string;
  multiplier : float;
  offered_per_s : float;
  goodput_per_s : float;
  shed_frac : float;
  p50_ms : float;
  p99_ms : float;
  accounted : bool;
}

type t = { rows : row array }

let capacity_per_s = 200.  (* 1 / 5 ms *)

let profile_of name rate =
  match name with
  | "poisson" -> Arrivals.Poisson rate
  | "mmpp" ->
      (* 3:1 calm/burst sojourn split, burst 3× the calm rate: mean is
         (0.75*r/2 + 0.25*3r/2)*2 = rate. *)
      Arrivals.Mmpp
        {
          calm_per_s = rate /. 1.5;
          burst_per_s = rate *. 2.;
          calm_ms = 750.;
          burst_ms = 250.;
        }
  | _ -> invalid_arg "profile_of"

let one ~seed ~horizon (name, multiplier) =
  let rate = multiplier *. capacity_per_s in
  let spec = Tenant.spec ~share:100 ~arrivals:(profile_of name rate) "A" in
  let report = Svc.run (Svc.config ~seed ~horizon [ spec ]) in
  let tr = Svc.find report "A" in
  {
    profile = name;
    multiplier;
    offered_per_s = rate;
    goodput_per_s = tr.Svc.goodput_per_s;
    shed_frac = Common.iratio tr.Svc.shed (max 1 tr.Svc.arrivals);
    p50_ms = tr.Svc.p50_ms;
    p99_ms = tr.Svc.p99_ms;
    accounted = report.Svc.accounted && report.Svc.shed_consistent;
  }

let run ?(seed = 94) ?(horizon = Time.seconds 60) ?(jobs = 1) () =
  let multipliers = [ 0.5; 0.7; 0.9; 1.0; 1.1; 1.3; 1.6; 2.0 ] in
  let cells =
    Array.of_list
      (List.concat_map
         (fun p -> List.map (fun m -> (p, m)) multipliers)
         [ "poisson"; "mmpp" ])
  in
  { rows = Lotto_par.Pool.map_tasks ~jobs (one ~seed ~horizon) cells }

let row_cells r =
  [
    r.profile;
    Printf.sprintf "%.2f" r.multiplier;
    Printf.sprintf "%.0f" r.offered_per_s;
    Printf.sprintf "%7.1f" r.goodput_per_s;
    Printf.sprintf "%.3f" r.shed_frac;
    Printf.sprintf "%7.1f" r.p50_ms;
    Printf.sprintf "%7.1f" r.p99_ms;
    string_of_bool r.accounted;
  ]

let print t =
  Common.print_header "Service: capacity-planning curves (shed vs offered load)";
  Common.print_row
    [ "profile"; "x-capacity"; "offered/s"; "goodput/s"; "shed_frac";
      "p50ms"; "p99ms"; "accounted" ];
  Array.iter (fun r -> Common.print_row (row_cells r)) t.rows

let to_csv t =
  Common.csv
    ~header:
      [ "profile"; "multiplier"; "offered_per_s"; "goodput_per_s";
        "shed_frac"; "p50_ms"; "p99_ms"; "accounted" ]
    (Array.to_list t.rows |> List.map row_cells)
