open Lotto_sim
module Spinner = Lotto_workloads.Spinner

type task_result = {
  name : string;
  cumulative : int array;
  rate_before : float;
  rate_after : float;
}

type t = {
  tasks : task_result array;
  switch_at : Time.t;
  a_aggregate_ratio : float;
  b1_drop : float;
  b2_drop : float;
  a_over_b_after : float;
}

let run ?(seed = 9) ?(duration = Time.seconds 300) () =
  let kernel, ls = Common.lottery_setup ~seed () in
  let base = Common.Ls.base_currency ls in
  let switch_at = duration / 2 in
  let cur_a = Common.Ls.make_currency ls "A" in
  let cur_b = Common.Ls.make_currency ls "B" in
  ignore (Common.Ls.fund_currency ls ~target:cur_a ~amount:1000 ~from:base);
  ignore (Common.Ls.fund_currency ls ~target:cur_b ~amount:1000 ~from:base);
  let spawn name cur amount ~start_at =
    let s = Spinner.spawn kernel ~name ~start_at () in
    ignore (Common.Ls.fund_thread ls (Spinner.thread s) ~amount ~from:cur);
    s
  in
  let a1 = spawn "A1" cur_a 100 ~start_at:0 in
  let a2 = spawn "A2" cur_a 200 ~start_at:0 in
  let b1 = spawn "B1" cur_b 100 ~start_at:0 in
  let b2 = spawn "B2" cur_b 200 ~start_at:0 in
  (* B3's thread currency is inactive while it sleeps, so its 300.B ticket
     only starts diluting currency B when it wakes at the halfway mark. *)
  let b3 = spawn "B3" cur_b 300 ~start_at:switch_at in
  ignore (Kernel.run kernel ~until:duration);
  let result name s =
    let before = Spinner.iterations_between s ~lo:0 ~hi:switch_at in
    let after = Spinner.iterations_between s ~lo:switch_at ~hi:duration in
    let half_s = Time.to_seconds switch_at in
    {
      name;
      cumulative = Spinner.cumulative s ~upto:duration;
      rate_before = float_of_int before /. half_s;
      rate_after = float_of_int after /. half_s;
    }
  in
  let ra1 = result "A1" a1
  and ra2 = result "A2" a2
  and rb1 = result "B1" b1
  and rb2 = result "B2" b2
  and rb3 = result "B3" b3 in
  let a_before = ra1.rate_before +. ra2.rate_before in
  let a_after = ra1.rate_after +. ra2.rate_after in
  let b_after = rb1.rate_after +. rb2.rate_after +. rb3.rate_after in
  {
    tasks = [| ra1; ra2; rb1; rb2; rb3 |];
    switch_at;
    a_aggregate_ratio = Common.ratio a_after a_before;
    b1_drop = Common.ratio rb1.rate_after rb1.rate_before;
    b2_drop = Common.ratio rb2.rate_after rb2.rate_before;
    a_over_b_after = Common.ratio a_after b_after;
  }

let print t =
  Common.print_header "Figure 9: currencies insulate loads (B3 joins at half time)";
  Common.print_row [ "task"; "iter/s before"; "iter/s after" ];
  Array.iter
    (fun task ->
      Common.print_row
        [
          task.name;
          Printf.sprintf "%7.1f" task.rate_before;
          Printf.sprintf "%7.1f" task.rate_after;
        ])
    t.tasks;
  Common.print_kv "A aggregate after/before" "%.3f (ideal 1.0)" t.a_aggregate_ratio;
  Common.print_kv "B1 after/before" "%.3f (ideal 0.5)" t.b1_drop;
  Common.print_kv "B2 after/before" "%.3f (ideal 0.5)" t.b2_drop;
  Common.print_kv "A:B aggregate after" "%.3f (paper: 1.00)" t.a_over_b_after

let to_csv t =
  Common.csv ~header:[ "task"; "iter_per_s_before"; "iter_per_s_after" ]
    (Array.to_list t.tasks
    |> List.map (fun task ->
           [ task.name; Common.f task.rate_before; Common.f task.rate_after ]))
