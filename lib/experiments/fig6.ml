open Lotto_sim
module Mc = Lotto_workloads.Monte_carlo
module Rng = Lotto_prng.Rng

type task_result = {
  name : string;
  start_at : Time.t;
  cumulative : int array;
  final_trials : int;
  final_error : float;
  final_estimate : float;
}

type t = { window : Time.t; tasks : task_result array }

let run ?(seed = 6) ?(duration = Time.seconds 600)
    ?(stagger = Time.seconds 120) ?(window = Time.seconds 8) () =
  let kernel, ls = Common.lottery_setup ~seed () in
  (* One currency shared by the mutually trusting experiments: inflation
     inside it cannot affect other users (not that there are any here). *)
  let mc = Common.Ls.make_currency ls "monte-carlo" in
  ignore (Common.Ls.fund_currency ls ~target:mc ~amount:1000 ~from:(Common.Ls.base_currency ls));
  let master_rng = Rng.create ~algo:Splitmix64 ~seed () in
  let tasks =
    Array.init 3 (fun i ->
        let name = Printf.sprintf "mc%d" (i + 1) in
        let rng = Rng.split master_rng in
        let start_at = i * stagger in
        (name, start_at, Mc.spawn kernel ls ~name ~rng ~from:mc ~window ~start_at ()))
  in
  ignore (Kernel.run kernel ~until:duration);
  {
    window;
    tasks =
      Array.map
        (fun (name, start_at, task) ->
          {
            name;
            start_at;
            cumulative = Mc.cumulative task ~upto:duration;
            final_trials = Mc.trials task;
            final_error = Mc.relative_error task;
            final_estimate = Mc.estimate task;
          })
        tasks;
  }

let print t =
  Common.print_header
    "Figure 6: staggered Monte-Carlo tasks, ticket value = error^2";
  Common.print_row [ "task"; "start"; "final trials"; "rel. error"; "estimate(pi/4=0.7854)" ];
  Array.iter
    (fun task ->
      Common.print_row
        [
          task.name;
          Printf.sprintf "%4ds" (task.start_at / Time.seconds 1);
          Printf.sprintf "%9d" task.final_trials;
          Printf.sprintf "%.2e" task.final_error;
          Printf.sprintf "%.6f" task.final_estimate;
        ])
    t.tasks;
  (* sample the cumulative curves sparsely: converging lines are the result *)
  let samples = 10 in
  Common.print_row ("t(s)" :: Array.to_list (Array.map (fun task -> task.name) t.tasks));
  let n = Array.fold_left (fun acc task -> max acc (Array.length task.cumulative)) 0 t.tasks in
  for s = 1 to samples do
    let idx = min (n - 1) ((s * n / samples) - 1) in
    Common.print_row
      (Printf.sprintf "%4d" ((idx + 1) * t.window / Time.seconds 1)
      :: Array.to_list
           (Array.map
              (fun task ->
                if idx < Array.length task.cumulative then
                  string_of_int task.cumulative.(idx)
                else "-")
              t.tasks))
  done

let convergence_spread t =
  let finals = Array.map (fun task -> float_of_int task.final_trials) t.tasks in
  let mx = Array.fold_left max finals.(0) finals in
  let mn = Array.fold_left min finals.(0) finals in
  if mx = 0. then nan else (mx -. mn) /. mx

let to_csv t =
  let n =
    Array.fold_left (fun acc task -> max acc (Array.length task.cumulative)) 0 t.tasks
  in
  let header =
    "time_s" :: Array.to_list (Array.map (fun task -> task.name) t.tasks)
  in
  let rows =
    List.init n (fun i ->
        string_of_int ((i + 1) * t.window / Time.seconds 1)
        :: Array.to_list
             (Array.map
                (fun task ->
                  if i < Array.length task.cumulative then
                    string_of_int task.cumulative.(i)
                  else "")
                t.tasks))
  in
  Common.csv ~header rows
