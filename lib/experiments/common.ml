module Ls = Lotto_sched.Lottery_sched
open Lotto_sim

let lottery_setup ?mode ?(quantum = Time.ms 100) ?use_compensation ~seed () =
  let rng = Lotto_prng.Rng.create ~seed () in
  let ls = Ls.create ?mode ?use_compensation ~rng () in
  let kernel = Kernel.create ~quantum ~sched:(Ls.sched ls) () in
  (kernel, ls)

(* Recursive [mkdir -p]: creates missing parent components, tolerates
   pre-existing directories (and the races CI parallelism can produce). *)
let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with
    | Sys_error _ when Sys.is_directory dir -> ()
  end

let ratio a b = if b = 0. then nan else a /. b
let iratio a b = ratio (float_of_int a) (float_of_int b)

let print_header title =
  Printf.printf "\n== %s ==\n" title

let print_kv key fmt =
  Printf.ksprintf (fun s -> Printf.printf "  %-28s %s\n" (key ^ ":") s) fmt

let print_row cells = Printf.printf "  %s\n" (String.concat "\t" cells)

let quote cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let csv ~header rows =
  let line cells = String.concat "," (List.map quote cells) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let f x = Printf.sprintf "%.6g" x

let pp_float_array fmt xs =
  Format.fprintf fmt "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%.3f" x)
    xs;
  Format.fprintf fmt "|]"
