(** §4.2 ablation — average list-lottery search length.

    "Various optimizations can reduce the average number of clients that
    must be examined. … if the distribution of tickets to clients is
    uneven, ordering the clients by decreasing ticket counts can
    substantially reduce the average search length. Since those clients
    with the largest number of tickets will be selected most frequently, a
    simple 'move to front' heuristic can be very effective."

    We measure entries examined per draw for the three orderings over a
    skewed (Zipf-like) ticket distribution at several client counts, plus
    the tree lottery's lg n bound for contrast. *)

type row = {
  clients : int;
  unordered : float;  (** mean entries examined per draw *)
  move_to_front : float;
  by_weight : float;
  tree_depth : float;  (** ceil lg n — the tree's comparisons *)
}

type t = { rows : row array }

val run : ?seed:int -> ?draws:int -> ?jobs:int -> unit -> t
(** Each (client count, ordering) measurement is independent; [jobs] runs
    them on that many domains with index-merged (byte-identical) results. *)

val print : t -> unit

val to_csv : t -> string
(** Serialize the result for external plotting. *)
