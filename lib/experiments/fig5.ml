open Lotto_sim
module Spinner = Lotto_workloads.Spinner

type t = {
  window : Time.t;
  rates_a : float array;
  rates_b : float array;
  overall_ratio : float;
}

let simulate ~seed ~duration ~window =
  let kernel, ls = Common.lottery_setup ~seed () in
  let a = Spinner.spawn kernel ~name:"A" ~window () in
  let b = Spinner.spawn kernel ~name:"B" ~window () in
  let base = Common.Ls.base_currency ls in
  ignore (Common.Ls.fund_thread ls (Spinner.thread a) ~amount:200 ~from:base);
  ignore (Common.Ls.fund_thread ls (Spinner.thread b) ~amount:100 ~from:base);
  ignore (Kernel.run kernel ~until:duration);
  let per_second counter = Spinner.rate_per_second counter ~upto:duration in
  {
    window;
    rates_a = per_second a;
    rates_b = per_second b;
    overall_ratio = Common.iratio (Spinner.iterations a) (Spinner.iterations b);
  }

(* The whole figure is one 200-second kernel (its windows are slices of a
   single timeline, not independent replications), so the task list is a
   singleton: it rides the same harness for uniformity, and map_tasks runs
   a single task inline whatever [jobs] says. *)
let run ?(seed = 51) ?(duration = Time.seconds 200) ?(window = Time.seconds 8)
    ?(jobs = 1) () =
  (Lotto_par.Pool.map_tasks ~jobs
     (fun seed -> simulate ~seed ~duration ~window)
     [| seed |]).(0)

let window_ratios t =
  Array.init
    (min (Array.length t.rates_a) (Array.length t.rates_b))
    (fun i -> Common.ratio t.rates_a.(i) t.rates_b.(i))

let print t =
  Common.print_header "Figure 5: fairness over 8-second windows (2:1, 200s)";
  Common.print_row [ "window"; "A iter/s"; "B iter/s"; "ratio" ];
  Array.iteri
    (fun i ra ->
      let rb = t.rates_b.(i) in
      Common.print_row
        [
          Printf.sprintf "%3d-%3ds"
            (i * t.window / Time.seconds 1)
            ((i + 1) * t.window / Time.seconds 1);
          Printf.sprintf "%8.1f" ra;
          Printf.sprintf "%8.1f" rb;
          Printf.sprintf "%5.2f" (Common.ratio ra rb);
        ])
    t.rates_a;
  Common.print_kv "overall ratio" "%.3f : 1 (paper: 2.01 : 1)" t.overall_ratio

let to_csv t =
  Common.csv ~header:[ "window_start_s"; "a_iter_per_s"; "b_iter_per_s"; "ratio" ]
    (Array.to_list
       (Array.mapi
          (fun i ra ->
            [
              string_of_int (i * t.window / Time.seconds 1);
              Common.f ra;
              Common.f t.rates_b.(i);
              Common.f (Common.ratio ra t.rates_b.(i));
            ])
          t.rates_a))
