(** §5.6 — system overhead.

    The paper compares wall-clock completion of identical workloads under
    its lottery kernel and unmodified Mach (timesharing), finding the
    unoptimized lottery prototype's overhead comparable. Our analog runs
    the same simulated workload (3-task and 8-task Dhrystone mixes) under
    each scheduler and reports (a) the host CPU cost per scheduling
    decision — the real overhead of the policy code — and (b) the virtual
    CPU split, to confirm every policy kept the machine saturated. The
    Bechamel suite in [bench/main.ml] measures the per-draw costs more
    precisely. *)

type row = {
  scheduler : string;
  tasks : int;
  decisions : int;
  host_ns_per_decision : float;
  virtual_cpu_total : int;  (** summed thread CPU; equals the horizon *)
}

type t = { rows : row array }

val run : ?seed:int -> ?duration:Lotto_sim.Time.t -> ?jobs:int -> unit -> t
(** Runs 3-task and 8-task spinner mixes under lottery-list, lottery-tree,
    round-robin, decay-usage and stride; [jobs] runs the ten cells on that
    many domains. Decisions and virtual-CPU columns are byte-identical
    across [jobs]; the host-ns column is a wall-clock measurement and never
    reproducible exactly (and reflects contention when parallel). *)

val print : t -> unit

val to_csv : t -> string
(** Serialize the result for external plotting. *)
