(** Global-versus-sharded fairness: does splitting the lottery across
    per-CPU shards (with ticket-weighted placement, hysteresis rebalancing
    and work stealing) preserve proportional share?

    One spinner population with a 5-way ticket spread runs twice from the
    same seed: once under the historical single-CPU global lottery, once
    under an [cpus]-way sharded scheduler on a multi-CPU kernel. Both runs
    are checked with a chi-square test of observed quanta against ticket
    entitlement — the sharded run both in aggregate and {e per shard}
    (each shard is one CPU's own lottery, so its members' CPU time should
    split proportionally to their entitlements renormalized over the
    shard). The sharded run also samples a time series of the migration /
    steal counters and the shard ticket-mass imbalance, the observables of
    the rebalancing policy. *)

type sample = {
  s_time : Lotto_sim.Time.t;
  s_migrations : int;  (** cumulative *)
  s_steals : int;  (** cumulative *)
  s_imbalance : float;
      (** max over shards of |mass - ideal| / ideal, where ideal is
          total mass / shards; the rebalancer holds this within its
          imbalance band (default 0.25) *)
}

type config = {
  label : string;
  cpus : int;
  names : string array;
  observed : int array;  (** quanta served per thread *)
  entitled : float array;  (** base-unit entitlement per thread *)
  aggregate_p : float;
  per_shard_p : (int * int * float) array;
      (** shard, member count, chi-square p over its members (nan when
          fewer than 2); empty when unsharded *)
  migrations : int;
  steals : int;
  shard_mass : float array;  (** final per-shard ticket mass *)
  series : sample list;  (** chronological; empty when unsharded *)
}

type t = {
  global : config;
  sharded : config;
  threads : int;
  duration : Lotto_sim.Time.t;
}

val run :
  ?seed:int ->
  ?duration:Lotto_sim.Time.t ->
  ?threads:int ->
  ?cpus:int ->
  ?samples:int ->
  unit ->
  t
(** Defaults: seed 1994, 120 s, 24 threads, 4 CPUs, 24 series samples.
    Raises [Invalid_argument] when [cpus < 2] or [threads < cpus]. *)

val min_shard_p : t -> float
(** The smallest per-shard chi-square p of the sharded run (ignoring
    degenerate single-member shards) — the acceptance gate is
    [min_shard_p >= 0.01]. *)

val print : t -> unit
val to_csv : t -> string
(** The sharded run's migration / imbalance time series. *)
