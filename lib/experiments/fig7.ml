open Lotto_sim
module Db = Lotto_workloads.Db
module Corpus = Lotto_workloads.Corpus

type client_result = {
  name : string;
  tickets : int;
  completions : int;
  completion_times : Time.t array;
  mean_response : float;
  last_result : int option;
}

type t = {
  clients : client_result array;
  served_total : int;
  b_c_completions_when_a_done : int * int;
  phase1_responses : float array;
}

let run ?(seed = 7) ?(duration = Time.seconds 800)
    ?(query_cost = Time.seconds 8) ?(workers = 3) ?(a_queries = 20) () =
  let kernel, ls = Common.lottery_setup ~seed () in
  let corpus = Corpus.generate ~seed:1994 ~size_bytes:(256 * 1024) () in
  let server = Db.start_server kernel ~name:"db" ~workers ~query_cost ~corpus () in
  let base = Common.Ls.base_currency ls in
  let mk name tickets max_queries =
    (* Clients start 1 ms in so the (deliberately ticketless) server's
       workers can park in [receive] first — on Mach the server initializes
       and blocks before clients arrive. *)
    let c =
      Db.spawn_client kernel server ~name ~query:"lottery" ?max_queries
        ~start_at:(Time.ms 1) ()
    in
    ignore (Common.Ls.fund_thread ls (Db.thread c) ~amount:tickets ~from:base);
    c
  in
  let a = mk "A" 800 (Some a_queries) in
  let b = mk "B" 300 None in
  let c = mk "C" 100 None in
  ignore (Kernel.run kernel ~until:duration);
  let result name tickets client =
    {
      name;
      tickets;
      completions = Db.completions client;
      completion_times = Db.completion_times client;
      mean_response = Db.mean_response_time client;
      last_result = Db.last_result client;
    }
  in
  let a_r = result "A" 8 a and b_r = result "B" 3 b and c_r = result "C" 1 c in
  (* B and C progress at the instant A finished its 20th query *)
  let a_done =
    if Array.length a_r.completion_times = 0 then duration
    else a_r.completion_times.(Array.length a_r.completion_times - 1)
  in
  let count_before times = Array.fold_left (fun n t -> if t <= a_done then n + 1 else n) 0 times in
  (* response-time means restricted to the contended phase (A still active),
     the regime the paper's 17.19 / 43.19 / 132.20 s means reflect *)
  let phase1_mean client =
    let times = Db.completion_times client and values = Db.response_times client in
    let acc = ref 0. and n = ref 0 in
    Array.iteri (fun i t -> if t <= a_done then begin acc := !acc +. values.(i); incr n end) times;
    if !n = 0 then nan else !acc /. float_of_int !n
  in
  {
    clients = [| a_r; b_r; c_r |];
    served_total = Db.queries_served server;
    b_c_completions_when_a_done =
      (count_before b_r.completion_times, count_before c_r.completion_times);
    phase1_responses = [| phase1_mean a; phase1_mean b; phase1_mean c |];
  }

let print t =
  Common.print_header "Figure 7: query processing, 8:3:1 clients, ticketless server";
  Common.print_row [ "client"; "tickets"; "queries"; "mean resp (s)"; "matches" ];
  Array.iter
    (fun c ->
      Common.print_row
        [
          c.name;
          string_of_int c.tickets;
          Printf.sprintf "%4d" c.completions;
          Printf.sprintf "%8.2f" c.mean_response;
          (match c.last_result with Some n -> string_of_int n | None -> "-");
        ])
    t.clients;
  let b, c = t.b_c_completions_when_a_done in
  Common.print_kv "B+C queries at A's exit" "%d (paper: 10)" (b + c);
  Common.print_kv "server queries served" "%d" t.served_total;
  let resp i = t.phase1_responses.(i) in
  Common.print_kv "contended resp. means" "%.1f / %.1f / %.1f s (paper: 17.2 / 43.2 / 132.2)"
    (resp 0) (resp 1) (resp 2);
  Common.print_kv "contended resp. ratios" "1 : %.2f : %.2f (paper: 1 : 2.51 : 7.69)"
    (Common.ratio (resp 1) (resp 0))
    (Common.ratio (resp 2) (resp 0))

let to_csv t =
  Common.csv
    ~header:[ "client"; "tickets"; "completions"; "mean_response_s"; "contended_mean_s" ]
    (Array.to_list t.clients
    |> List.mapi (fun i c ->
           [
             c.name;
             string_of_int c.tickets;
             string_of_int c.completions;
             Common.f c.mean_response;
             Common.f t.phase1_responses.(i);
           ]))
