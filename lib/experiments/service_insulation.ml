(* Tenant insulation under saturation (service layer).

   Tenant A (share 900) offers slightly more than its entitled service
   rate; tenant B (share 100) offers 10× its entitlement. Run A alone,
   then A next to the overloaded B, and compare A's p99. With currencies
   both runs keep A in the bounded-queue regime (admission control sheds
   the excess at the port), so A's p99 moves only by the capacity it
   cedes to B — about 180/200 — and never by B's 10× overload itself.

   The numbers are chosen so both tenants stay backlogged in the loaded
   run (slack redistribution would otherwise skew observed shares away
   from the 9:1 entitlement and the chi-square gate would misfire), and
   so that the isolated run is saturated too (an unsaturated isolated
   baseline would make the p99 ratio measure queueing regime change, not
   insulation). Machine capacity at 5 ms/request is 200 req/s; A offers
   207 (1.15× its 180 entitlement), B offers 200 (10× its 20). *)

open Lotto_sim
module Svc = Lotto_service.Service
module Tenant = Lotto_service.Tenant
module Arrivals = Lotto_service.Arrivals

type t = {
  isolated_a : Svc.tenant_report;
  isolated_ok : bool;
  loaded : Svc.report;
  loaded_a : Svc.tenant_report;
  loaded_b : Svc.tenant_report;
  p99_ratio : float;
  pass : bool;  (** the SLO invariant: ratio, chi-square, accounting *)
}

let spec_a =
  Tenant.spec ~share:900 ~arrivals:(Arrivals.Poisson 207.) ~io_per_req:1 "A"

let spec_b =
  Tenant.spec ~share:100 ~arrivals:(Arrivals.Poisson 200.) ~io_per_req:1 "B"

let config ~seed ~horizon tenants =
  Svc.config ~seed ~horizon ~io_slot:(Time.ms 2) tenants

let run ?(seed = 94) ?(horizon = Time.seconds 120) () =
  let isolated = Svc.run (config ~seed ~horizon [ spec_a ]) in
  let loaded = Svc.run (config ~seed ~horizon [ spec_a; spec_b ]) in
  let isolated_a = Svc.find isolated "A" in
  let loaded_a = Svc.find loaded "A" in
  let loaded_b = Svc.find loaded "B" in
  let p99_ratio = Common.ratio loaded_a.Svc.p99_ms isolated_a.Svc.p99_ms in
  let chi_ok =
    match loaded.Svc.chi_square_p with Some p -> p >= 0.01 | None -> false
  in
  let pass =
    p99_ratio <= 1.5 && chi_ok
    && isolated.Svc.accounted && loaded.Svc.accounted
    && isolated.Svc.shed_consistent && loaded.Svc.shed_consistent
  in
  {
    isolated_a;
    isolated_ok = isolated.Svc.accounted && isolated.Svc.shed_consistent;
    loaded;
    loaded_a;
    loaded_b;
    p99_ratio;
    pass;
  }

let row (tr : Svc.tenant_report) arm =
  [
    arm;
    tr.Svc.t_name;
    string_of_int tr.Svc.t_share;
    string_of_int tr.Svc.arrivals;
    string_of_int tr.Svc.served;
    string_of_int tr.Svc.shed;
    string_of_int tr.Svc.in_flight;
    Printf.sprintf "%7.1f" tr.Svc.goodput_per_s;
    Printf.sprintf "%7.1f" tr.Svc.p50_ms;
    Printf.sprintf "%7.1f" tr.Svc.p99_ms;
    string_of_int tr.Svc.io_served;
  ]

let print t =
  Common.print_header
    "Service: tenant insulation under saturation (B at 10x entitlement)";
  Common.print_row
    [ "arm"; "tenant"; "share"; "arrivals"; "served"; "shed"; "inflight";
      "goodput/s"; "p50ms"; "p99ms"; "io" ];
  Common.print_row (row t.isolated_a "isolated");
  Common.print_row (row t.loaded_a "loaded");
  Common.print_row (row t.loaded_b "loaded");
  Common.print_kv "A p99 loaded/isolated" "%.3f (gate: <= 1.5)" t.p99_ratio;
  Common.print_kv "chi-square p (loaded)" "%s (gate: >= 0.01)"
    (match t.loaded.Svc.chi_square_p with
    | Some p -> Printf.sprintf "%.4f" p
    | None -> "n/a");
  Common.print_kv "accounting" "%b (arrivals = served + shed + in-flight)"
    (t.isolated_ok && t.loaded.Svc.accounted && t.loaded.Svc.shed_consistent);
  Printf.printf "  SLO invariant: %s\n" (if t.pass then "PASS" else "FAIL")

let to_csv t =
  Common.csv
    ~header:
      [ "arm"; "tenant"; "share"; "arrivals"; "served"; "shed"; "inflight";
        "goodput_per_s"; "p50_ms"; "p99_ms"; "io_served" ]
    [
      row t.isolated_a "isolated";
      row t.loaded_a "loaded";
      row t.loaded_b "loaded";
    ]
