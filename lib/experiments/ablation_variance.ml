open Lotto_sim
module Spinner = Lotto_workloads.Spinner
module D = Lotto_stats.Descriptive

type row = {
  scheduler : string;
  mean_share : float;
  share_stddev : float;
  worst_window : float;
}

type t = { lottery : row; stride : row }

let window = Time.seconds 2

let summarize scheduler wa wb =
  (* the favoured task's per-window CPU share (entitlement 2/3): bounded,
     unlike the A:B ratio, so means and deviations are well-behaved *)
  let shares =
    Array.init (Array.length wa) (fun i ->
        let total = wa.(i) + wb.(i) in
        if total = 0 then nan else float_of_int wa.(i) /. float_of_int total)
    |> Array.to_list
    |> List.filter Float.is_finite
    |> Array.of_list
  in
  {
    scheduler;
    mean_share = D.mean shares;
    share_stddev = D.stddev shares;
    worst_window =
      Array.fold_left (fun acc s -> max acc (abs_float (s -. (2. /. 3.)))) 0. shares;
  }

let lottery_run ~seed ~duration =
  let kernel, ls = Common.lottery_setup ~seed () in
  let a = Spinner.spawn kernel ~name:"A" ~window () in
  let b = Spinner.spawn kernel ~name:"B" ~window () in
  let base = Common.Ls.base_currency ls in
  ignore (Common.Ls.fund_thread ls (Spinner.thread a) ~amount:200 ~from:base);
  ignore (Common.Ls.fund_thread ls (Spinner.thread b) ~amount:100 ~from:base);
  ignore (Kernel.run kernel ~until:duration);
  summarize "lottery"
    (Spinner.windows a ~upto:duration)
    (Spinner.windows b ~upto:duration)

let stride_run ~duration =
  let st = Lotto_sched.Stride_sched.create () in
  let kernel = Kernel.create ~sched:(Lotto_sched.Stride_sched.sched st) () in
  let a = Spinner.spawn kernel ~name:"A" ~window () in
  let b = Spinner.spawn kernel ~name:"B" ~window () in
  Lotto_sched.Stride_sched.set_tickets st (Spinner.thread a) 200;
  Lotto_sched.Stride_sched.set_tickets st (Spinner.thread b) 100;
  ignore (Kernel.run kernel ~until:duration);
  summarize "stride"
    (Spinner.windows a ~upto:duration)
    (Spinner.windows b ~upto:duration)

(* The two scheduler runs are independent simulations — a two-entry task
   list for the domain pool. *)
let run ?(seed = 33) ?(duration = Time.seconds 200) ?(jobs = 1) () =
  match
    Lotto_par.Pool.map_tasks ~jobs
      (function
        | `Lottery -> lottery_run ~seed ~duration
        | `Stride -> stride_run ~duration)
      [| `Lottery; `Stride |]
  with
  | [| lottery; stride |] -> { lottery; stride }
  | _ -> assert false

let print t =
  Common.print_header
    "Ablation: lottery vs stride variance (2:1, share of CPU per 2s window)";
  Common.print_row [ "scheduler"; "mean share (ideal 0.667)"; "stddev"; "worst |share-2/3|" ];
  List.iter
    (fun r ->
      Common.print_row
        [
          r.scheduler;
          Printf.sprintf "%.3f" r.mean_share;
          Printf.sprintf "%.3f" r.share_stddev;
          Printf.sprintf "%.3f" r.worst_window;
        ])
    [ t.lottery; t.stride ]

let to_csv t =
  Common.csv ~header:[ "scheduler"; "mean_share"; "share_stddev"; "worst_window" ]
    (List.map
       (fun r ->
         [ r.scheduler; Common.f r.mean_share; Common.f r.share_stddev; Common.f r.worst_window ])
       [ t.lottery; t.stride ])
