open Lotto_sim
module Spinner = Lotto_workloads.Spinner

type row = {
  scheduler : string;
  tasks : int;
  decisions : int;
  host_ns_per_decision : float;
  virtual_cpu_total : int;
}

type t = { rows : row array }

type sched_kind = L_list | L_tree | Rr | Decay | Stride

let kind_name = function
  | L_list -> "lottery-list"
  | L_tree -> "lottery-tree"
  | Rr -> "round-robin"
  | Decay -> "decay-usage"
  | Stride -> "stride"

let one ~seed ~duration ~tasks kind =
  let rng = Lotto_prng.Rng.create ~seed () in
  let fund_hooks = ref (fun (_ : Types.thread) (_ : int) -> ()) in
  let sched =
    match kind with
    | L_list | L_tree ->
        let mode =
          match kind with
          | L_list -> Common.Ls.List_mode
          | _ -> Common.Ls.Tree_mode
        in
        let ls = Common.Ls.create ~mode ~rng () in
        (fund_hooks :=
           fun th amount ->
             ignore
               (Common.Ls.fund_thread ls th ~amount
                  ~from:(Common.Ls.base_currency ls)));
        Common.Ls.sched ls
    | Rr -> Lotto_sched.Round_robin.(sched (create ()))
    | Decay -> Lotto_sched.Decay_usage.(sched (create ()))
    | Stride ->
        let st = Lotto_sched.Stride_sched.create () in
        (fund_hooks := fun th amount -> Lotto_sched.Stride_sched.set_tickets st th amount);
        Lotto_sched.Stride_sched.sched st
  in
  let kernel = Kernel.create ~sched () in
  let spinners =
    Array.init tasks (fun i ->
        let s = Spinner.spawn kernel ~name:(Printf.sprintf "t%d" i) () in
        !fund_hooks (Spinner.thread s) 100;
        s)
  in
  (* Wall clock, not [Sys.time]: process-CPU time sums over every running
     domain, which would charge parallel siblings' work to this row when
     the experiment runs under [--jobs N]. The column is a host-performance
     measurement either way — the one experiment field that is not
     reproducible byte-for-byte across hosts or runs. *)
  let t0 = Unix.gettimeofday () in
  let summary = Kernel.run kernel ~until:duration in
  let host = Unix.gettimeofday () -. t0 in
  {
    scheduler = kind_name kind;
    tasks;
    decisions = summary.slices;
    host_ns_per_decision =
      (if summary.slices = 0 then nan else host *. 1e9 /. float_of_int summary.slices);
    virtual_cpu_total =
      Array.fold_left (fun acc s -> acc + Kernel.cpu_time (Spinner.thread s)) 0 spinners;
  }

(* Each (task count, policy) cell is an independent seeded simulation — a
   task list for the domain pool. Note that with [jobs > 1] the host-ns
   column measures contended wall-clock time; decisions and virtual CPU
   stay byte-identical. *)
let run ?(seed = 56) ?(duration = Time.seconds 60) ?(jobs = 1) () =
  let kinds = [ L_list; L_tree; Rr; Decay; Stride ] in
  let cells =
    Array.of_list
      (List.concat_map
         (fun tasks -> List.map (fun kind -> (tasks, kind)) kinds)
         [ 3; 8 ])
  in
  let rows =
    Lotto_par.Pool.map_tasks ~jobs
      (fun (tasks, kind) -> one ~seed ~duration ~tasks kind)
      cells
  in
  { rows }

let print t =
  Common.print_header "Section 5.6: scheduling overhead (same workload per policy)";
  Common.print_row
    [ "scheduler"; "tasks"; "decisions"; "host ns/decision"; "virtual cpu" ];
  Array.iter
    (fun r ->
      Common.print_row
        [
          Printf.sprintf "%-12s" r.scheduler;
          string_of_int r.tasks;
          string_of_int r.decisions;
          Printf.sprintf "%8.0f" r.host_ns_per_decision;
          string_of_int r.virtual_cpu_total;
        ])
    t.rows

let to_csv t =
  Common.csv
    ~header:[ "scheduler"; "tasks"; "decisions"; "host_ns_per_decision"; "virtual_cpu" ]
    (Array.to_list t.rows
    |> List.map (fun r ->
           [
             r.scheduler;
             string_of_int r.tasks;
             string_of_int r.decisions;
             Common.f r.host_ns_per_decision;
             string_of_int r.virtual_cpu_total;
           ]))
