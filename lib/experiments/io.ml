module Io = Lotto_res.Io_bandwidth
module Rng = Lotto_prng.Rng

type phase_row = { name : string; tickets : int; served : int; share : float }
type t = { phase1 : phase_row array; phase2 : phase_row array }

let run ?(seed = 60) ?(slots_per_phase = 60_000) () =
  let rng = Rng.create ~seed () in
  let dev = Io.create ~rng () in
  let specs = [| ("video", 300); ("backup", 200); ("log", 100) |] in
  let clients =
    Array.map (fun (name, tickets) -> Io.add_client dev ~name ~tickets) specs
  in
  let keep_backlogged which =
    Array.iteri
      (fun i c ->
        if which i then begin
          let deficit = slots_per_phase - Io.pending dev c in
          if deficit > 0 then Io.submit dev c ~requests:deficit
        end)
      clients
  in
  let snapshot offset =
    Array.mapi
      (fun i c ->
        let name, tickets = specs.(i) in
        let served = Io.served dev c - offset.(i) in
        (name, tickets, served))
      clients
  in
  let to_rows snap =
    let total = Array.fold_left (fun acc (_, _, s) -> acc + s) 0 snap in
    Array.map
      (fun (name, tickets, served) ->
        {
          name;
          tickets;
          served;
          share = float_of_int served /. float_of_int (max 1 total);
        })
      snap
  in
  keep_backlogged (fun _ -> true);
  Io.serve dev ~slots:slots_per_phase;
  let phase1_raw = snapshot (Array.map (fun _ -> 0) clients) in
  let offsets = Array.map (fun c -> Io.served dev c) clients in
  (* phase 2: the middle stream goes idle; its share must flow to the
     others in proportion to their tickets *)
  Io.cancel_pending dev clients.(1);
  keep_backlogged (fun i -> i <> 1);
  Io.serve dev ~slots:slots_per_phase;
  let phase2_raw = snapshot offsets in
  { phase1 = to_rows phase1_raw; phase2 = to_rows phase2_raw }

let print t =
  Common.print_header "Section 6: lottery-scheduled I/O bandwidth (3:2:1)";
  let dump label rows =
    Common.print_kv "phase" "%s" label;
    Common.print_row [ "stream"; "tickets"; "served"; "share" ];
    Array.iter
      (fun r ->
        Common.print_row
          [
            r.name;
            string_of_int r.tickets;
            Printf.sprintf "%6d" r.served;
            Printf.sprintf "%.3f" r.share;
          ])
      rows
  in
  dump "all backlogged (ideal 0.50/0.33/0.17)" t.phase1;
  dump "middle idle (ideal 0.75/0/0.25)" t.phase2

let to_csv t =
  let rows phase label =
    Array.to_list phase
    |> List.map (fun r ->
           [ label; r.name; string_of_int r.tickets; string_of_int r.served; Common.f r.share ])
  in
  Common.csv ~header:[ "phase"; "stream"; "tickets"; "served"; "share" ]
    (rows t.phase1 "all-backlogged" @ rows t.phase2 "middle-idle")
