module Ll = Lotto_draw.List_lottery
module Rng = Lotto_prng.Rng

type row = {
  clients : int;
  unordered : float;
  move_to_front : float;
  by_weight : float;
  tree_depth : float;
}

type t = { rows : row array }

(* skewed ticket distribution: client r holds ~1000/(r+1) tickets *)
let weight_of rank = 1000. /. float_of_int (rank + 1)

let mean_search ~seed ~draws ~clients order =
  let t = Ll.create ~order () in
  (* insert in random order so the orderings themselves do the work *)
  let ranks = Array.init clients Fun.id in
  let shuffle_rng = Rng.create ~algo:Splitmix64 ~seed () in
  Rng.shuffle shuffle_rng ranks;
  Array.iter (fun r -> ignore (Ll.add t ~client:r ~weight:(weight_of r))) ranks;
  let rng = Rng.create ~algo:Splitmix64 ~seed:(seed + 1) () in
  (* warm the move-to-front ordering before measuring *)
  for _ = 1 to 500 do
    ignore (Ll.draw t rng)
  done;
  Ll.reset_comparisons t;
  for _ = 1 to draws do
    ignore (Ll.draw t rng)
  done;
  float_of_int (Ll.comparisons t) /. float_of_int draws

(* Every (client count, ordering) measurement creates its own lottery and
   RNGs from the experiment seed — twelve independent tasks for the domain
   pool, re-assembled into rows by index. *)
let run ?(seed = 42) ?(draws = 5_000) ?(jobs = 1) () =
  let sizes = [| 16; 64; 256; 1024 |] in
  let orders = [| Ll.Unordered; Ll.Move_to_front; Ll.By_weight |] in
  let cells =
    Array.concat
      (Array.to_list
         (Array.map (fun clients -> Array.map (fun o -> (clients, o)) orders) sizes))
  in
  let means =
    Lotto_par.Pool.map_tasks ~jobs
      (fun (clients, order) -> mean_search ~seed ~draws ~clients order)
      cells
  in
  let rows =
    Array.mapi
      (fun i clients ->
        {
          clients;
          unordered = means.(3 * i);
          move_to_front = means.((3 * i) + 1);
          by_weight = means.((3 * i) + 2);
          tree_depth = Float.round (log (float_of_int clients) /. log 2.);
        })
      sizes
  in
  { rows }

let print t =
  Common.print_header
    "Section 4.2: mean search length per draw (skewed 1/r ticket distribution)";
  Common.print_row [ "clients"; "unordered"; "move-to-front"; "sorted"; "tree (lg n)" ];
  Array.iter
    (fun r ->
      Common.print_row
        [
          Printf.sprintf "%5d" r.clients;
          Printf.sprintf "%8.1f" r.unordered;
          Printf.sprintf "%8.1f" r.move_to_front;
          Printf.sprintf "%8.1f" r.by_weight;
          Printf.sprintf "%8.0f" r.tree_depth;
        ])
    t.rows

let to_csv t =
  Common.csv
    ~header:[ "clients"; "unordered"; "move_to_front"; "by_weight"; "tree_depth" ]
    (Array.to_list t.rows
    |> List.map (fun r ->
           [
             string_of_int r.clients;
             Common.f r.unordered;
             Common.f r.move_to_front;
             Common.f r.by_weight;
             Common.f r.tree_depth;
           ]))
