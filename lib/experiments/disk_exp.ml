module Disk = Lotto_res.Disk
module Rng = Lotto_prng.Rng

type client_row = {
  name : string;
  tickets : int;
  served : int;
  share : float;
  mean_latency : float;
}

type policy_result = {
  policy : string;
  clients : client_row array;
  throughput : float;
  seek_distance : int;
}

type t = { results : policy_result array }

let policy_name = function
  | Disk.Lottery -> "lottery"
  | Disk.Fcfs -> "fcfs"
  | Disk.Sstf -> "sstf"

let one ~seed ~duration policy =
  let rng = Rng.create ~algo:Splitmix64 ~seed () in
  let workload_rng = Rng.create ~algo:Splitmix64 ~seed:(seed + 1) () in
  let disk = Disk.create ~policy ~rng () in
  let specs = [| ("gold", 300); ("silver", 200); ("bronze", 100) |] in
  let clients =
    Array.map (fun (name, tickets) -> Disk.add_client disk ~name ~tickets) specs
  in
  (* keep everyone backlogged with uniformly random cylinders: refill
     before every service so queues never drain *)
  let refill () =
    Array.iter
      (fun c ->
        while Disk.pending disk c < 16 do
          Disk.submit disk c ~cylinder:(Rng.int_below workload_rng 1000)
        done)
      clients
  in
  while Disk.now disk < duration do
    refill ();
    ignore (Disk.serve_one disk)
  done;
  let total = max 1 (Disk.total_served disk) in
  {
    policy = policy_name policy;
    clients =
      Array.mapi
        (fun i c ->
          let name, tickets = specs.(i) in
          {
            name;
            tickets;
            served = Disk.served disk c;
            share = float_of_int (Disk.served disk c) /. float_of_int total;
            mean_latency = Disk.mean_latency disk c;
          })
        clients;
    throughput = float_of_int total *. 1e6 /. float_of_int (Disk.now disk);
    seek_distance = Disk.total_seek_distance disk;
  }

let run ?(seed = 70) ?(duration = 50_000_000) () =
  {
    results =
      Array.of_list
        (List.map (one ~seed ~duration) [ Disk.Lottery; Disk.Fcfs; Disk.Sstf ]);
  }

let print t =
  Common.print_header "Section 6 (ext): disk-bandwidth lotteries (3:2:1 clients)";
  Array.iter
    (fun r ->
      Common.print_kv "policy" "%s (throughput %.1f req/Mtick, seek %d cyl)"
        r.policy r.throughput r.seek_distance;
      Common.print_row [ "client"; "tickets"; "served"; "share"; "mean latency" ];
      Array.iter
        (fun c ->
          Common.print_row
            [
              c.name;
              string_of_int c.tickets;
              Printf.sprintf "%6d" c.served;
              Printf.sprintf "%.3f" c.share;
              Printf.sprintf "%9.0f" c.mean_latency;
            ])
        r.clients)
    t.results

let lottery_shares t =
  let r = Array.to_list t.results |> List.find (fun r -> r.policy = "lottery") in
  Array.map (fun c -> c.share) r.clients

let to_csv t =
  Common.csv
    ~header:
      [ "policy"; "client"; "tickets"; "served"; "share"; "mean_latency_ticks";
        "throughput_req_per_mtick"; "seek_cylinders" ]
    (Array.to_list t.results
    |> List.concat_map (fun r ->
           Array.to_list r.clients
           |> List.map (fun c ->
                  [
                    r.policy;
                    c.name;
                    string_of_int c.tickets;
                    string_of_int c.served;
                    Common.f c.share;
                    Common.f c.mean_latency;
                    Common.f r.throughput;
                    string_of_int r.seek_distance;
                  ])))
