(** Shared plumbing for the experiment reproductions. *)

module Ls = Lotto_sched.Lottery_sched

val lottery_setup :
  ?mode:Ls.mode ->
  ?quantum:Lotto_sim.Time.t ->
  ?use_compensation:bool ->
  seed:int ->
  unit ->
  Lotto_sim.Kernel.t * Ls.t
(** A kernel driven by a freshly seeded lottery scheduler.
    [quantum] defaults to the paper's 100 ms. *)

val ratio : float -> float -> float
(** [a / b], guarding division by zero with [nan]. *)

val iratio : int -> int -> float

val print_header : string -> unit
(** Banner for one experiment section in harness output. *)

val print_kv : string -> ('a, unit, string, unit) format4 -> 'a
(** [print_kv key fmt ...] prints an aligned ["  key: value"] row. *)

val print_row : string list -> unit
(** Tab-aligned data row. *)

val pp_float_array : Format.formatter -> float array -> unit

val csv : header:string list -> string list list -> string
(** Serialize rows as RFC-4180-ish CSV (values containing commas or quotes
    are quoted). *)

val f : float -> string
(** Compact float cell ([%.6g]). *)

val mkdir_p : string -> unit
(** Recursive [mkdir -p]: create every missing component of a directory
    path; existing directories (including ones that appear concurrently)
    are fine. *)
