(** Figure 5 — fairness over time.

    Two tasks with a 2:1 allocation run for 200 seconds; average iteration
    rates are computed over a series of 8-second windows. The paper's
    observed averages were 25378 and 12619 iterations/sec, a 2.01:1 ratio,
    with per-window rates staying close to the allocation throughout. *)

type t = {
  window : Lotto_sim.Time.t;
  rates_a : float array;  (** iterations/sec per window *)
  rates_b : float array;
  overall_ratio : float;
}

val run :
  ?seed:int ->
  ?duration:Lotto_sim.Time.t ->
  ?window:Lotto_sim.Time.t ->
  ?jobs:int ->
  unit ->
  t
(** The figure is a single 200-second kernel (the windows slice one
    timeline), so its task list is a singleton: [jobs] is accepted for
    harness uniformity and the run is sequential regardless. *)

val print : t -> unit

val window_ratios : t -> float array

val to_csv : t -> string
(** Serialize the result for external plotting. *)
