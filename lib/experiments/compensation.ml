open Lotto_sim

type t = { with_compensation : float; without_compensation : float }

let one ~seed ~duration ~use_compensation =
  let kernel, ls = Common.lottery_setup ~seed ~use_compensation () in
  let base = Common.Ls.base_currency ls in
  (* A burns full quanta; B consumes 20 ms then yields, modelling the
     paper's fractional-quantum thread. *)
  let a =
    Kernel.spawn kernel ~name:"A" (fun () ->
        while true do
          Api.compute (Time.ms 100)
        done)
  in
  let b =
    Kernel.spawn kernel ~name:"B" (fun () ->
        while true do
          Api.compute (Time.ms 20);
          Api.yield ()
        done)
  in
  ignore (Common.Ls.fund_thread ls a ~amount:400 ~from:base);
  ignore (Common.Ls.fund_thread ls b ~amount:400 ~from:base);
  ignore (Kernel.run kernel ~until:duration);
  Common.iratio (Kernel.cpu_time a) (Kernel.cpu_time b)

(* The on/off variants are independent seeded simulations — a two-entry
   task list for the domain pool. *)
let run ?(seed = 45) ?(duration = Time.seconds 120) ?(jobs = 1) () =
  match
    Lotto_par.Pool.map_tasks ~jobs
      (fun (seed, use_compensation) -> one ~seed ~duration ~use_compensation)
      [| (seed, true); (seed + 1, false) |]
  with
  | [| with_compensation; without_compensation |] ->
      { with_compensation; without_compensation }
  | _ -> assert false

let print t =
  Common.print_header "Section 4.5: compensation tickets (A full quantum, B 1/5)";
  Common.print_kv "cpu ratio with compensation" "%.2f : 1 (ideal 1 : 1)"
    t.with_compensation;
  Common.print_kv "cpu ratio without" "%.2f : 1 (degenerates to ~5 : 1)"
    t.without_compensation

let to_csv t =
  Common.csv ~header:[ "variant"; "cpu_ratio" ]
    [
      [ "with-compensation"; Common.f t.with_compensation ];
      [ "without-compensation"; Common.f t.without_compensation ];
    ]
