(** §4.5 compensation-ticket demonstration (ablation).

    Threads A and B hold equal funding; A always consumes its entire
    100 ms quantum, while B uses only 20 ms before yielding. Without
    compensation tickets B would win lotteries as often as A but consume
    five times less CPU (a 5:1 ratio, violating the 1:1 allocation). With
    compensation, B's value is inflated by 1/f = 5 whenever it yields
    early, so B wins five times as often and the CPU ratio returns to
    1:1. *)

type t = {
  with_compensation : float;  (** A cpu / B cpu, ideal 1.0 *)
  without_compensation : float;  (** ideal (broken) 5.0 *)
}

val run : ?seed:int -> ?duration:Lotto_sim.Time.t -> ?jobs:int -> unit -> t
(** The with/without variants are independent seeded simulations; [jobs]
    runs them on that many domains with index-merged results. *)

val print : t -> unit

val to_csv : t -> string
(** Serialize the result for external plotting. *)
