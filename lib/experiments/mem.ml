module Im = Lotto_res.Inverse_memory
module Rng = Lotto_prng.Rng

type client_row = {
  name : string;
  tickets : int;
  resident : int;
  faults : int;
  fault_rate : float;
}

type policy_result = { policy : string; clients : client_row array }
type t = { results : policy_result array }

let policy_name = function
  | Im.Inverse_lottery -> "inverse-lottery"
  | Im.Global_lru -> "global-lru"
  | Im.Global_random -> "global-random"

let one ~seed ~frames ~working_set ~steps policy =
  let rng = Rng.create ~algo:Splitmix64 ~seed () in
  let pool = Im.create ~policy ~frames ~rng () in
  let specs = [ ("gold", 300); ("silver", 200); ("bronze", 100) ] in
  let clients =
    List.map
      (fun (name, tickets) -> Im.add_client pool ~name ~tickets ~working_set)
      specs
  in
  Im.simulate pool ~steps;
  {
    policy = policy_name policy;
    clients =
      Array.of_list
        (List.map2
           (fun (name, tickets) c ->
             {
               name;
               tickets;
               resident = Im.resident pool c;
               faults = Im.faults pool c;
               fault_rate =
                 float_of_int (Im.faults pool c)
                 /. float_of_int (max 1 (Im.accesses pool c));
             })
           specs clients);
  }

let run ?(seed = 62) ?(frames = 300) ?(working_set = 400)
    ?(steps = 300_000) () =
  {
    results =
      Array.of_list
        (List.map
           (one ~seed ~frames ~working_set ~steps)
           [ Im.Inverse_lottery; Im.Global_lru; Im.Global_random ]);
  }

let print t =
  Common.print_header "Section 6.2: inverse-lottery page replacement (3:2:1)";
  Array.iter
    (fun r ->
      Common.print_kv "policy" "%s" r.policy;
      Common.print_row [ "client"; "tickets"; "resident"; "faults"; "fault rate" ];
      Array.iter
        (fun c ->
          Common.print_row
            [
              c.name;
              string_of_int c.tickets;
              Printf.sprintf "%4d" c.resident;
              Printf.sprintf "%6d" c.faults;
              Printf.sprintf "%.3f" c.fault_rate;
            ])
        r.clients)
    t.results

let inverse_residents t =
  let r =
    Array.to_list t.results
    |> List.find (fun r -> r.policy = "inverse-lottery")
  in
  Array.map (fun c -> c.resident) r.clients

let to_csv t =
  Common.csv ~header:[ "policy"; "client"; "tickets"; "resident"; "faults"; "fault_rate" ]
    (Array.to_list t.results
    |> List.concat_map (fun r ->
           Array.to_list r.clients
           |> List.map (fun c ->
                  [
                    r.policy;
                    c.name;
                    string_of_int c.tickets;
                    string_of_int c.resident;
                    string_of_int c.faults;
                    Common.f c.fault_rate;
                  ])))
