open Lotto_sim
module Video = Lotto_workloads.Video

type viewer_result = {
  name : string;
  cumulative : int array;
  fps_before : float;
  fps_after : float;
}

type t = {
  viewers : viewer_result array;
  switch_at : Time.t;
  ratios_before : float * float;
  ratios_after : float * float;
}

let run ?(seed = 8) ?(duration = Time.seconds 300)
    ?(frame_cost = Time.ms 200) () =
  let kernel, ls = Common.lottery_setup ~seed () in
  let base = Common.Ls.base_currency ls in
  let switch_at = duration / 2 in
  let spawn name = Video.spawn_viewer kernel ~name ~frame_cost () in
  let a = spawn "A" and b = spawn "B" and c = spawn "C" in
  let ta = Common.Ls.fund_thread ls (Video.thread a) ~amount:300 ~from:base in
  let tb = Common.Ls.fund_thread ls (Video.thread b) ~amount:200 ~from:base in
  let tc = Common.Ls.fund_thread ls (Video.thread c) ~amount:100 ~from:base in
  ignore ta;
  ignore (Kernel.run kernel ~until:switch_at);
  (* dynamic reallocation: 3:2:1 becomes 3:1:2 *)
  Common.Ls.set_ticket_amount ls tb 100;
  Common.Ls.set_ticket_amount ls tc 200;
  ignore (Kernel.run kernel ~until:duration);
  let result name v =
    {
      name;
      cumulative = Video.cumulative v ~upto:duration;
      fps_before = Video.fps v ~lo:0 ~hi:switch_at;
      fps_after = Video.fps v ~lo:switch_at ~hi:duration;
    }
  in
  let ra = result "A" a and rb = result "B" b and rc = result "C" c in
  {
    viewers = [| ra; rb; rc |];
    switch_at;
    ratios_before =
      (Common.ratio ra.fps_before rc.fps_before, Common.ratio rb.fps_before rc.fps_before);
    ratios_after =
      (Common.ratio ra.fps_after rb.fps_after, Common.ratio rc.fps_after rb.fps_after);
  }

let print t =
  Common.print_header "Figure 8: three video viewers, 3:2:1 then 3:1:2";
  Common.print_row [ "viewer"; "fps before"; "fps after"; "total frames" ];
  Array.iter
    (fun v ->
      Common.print_row
        [
          v.name;
          Printf.sprintf "%5.2f" v.fps_before;
          Printf.sprintf "%5.2f" v.fps_after;
          string_of_int
            (if Array.length v.cumulative = 0 then 0
             else v.cumulative.(Array.length v.cumulative - 1));
        ])
    t.viewers;
  let ab, bc = t.ratios_before in
  Common.print_kv "before (A:C, B:C)" "%.2f, %.2f (ideal 3, 2)" ab bc;
  let ab', cb' = t.ratios_after in
  Common.print_kv "after (A:B, C:B)" "%.2f, %.2f (ideal 3, 2)" ab' cb'

let to_csv t =
  Common.csv ~header:[ "viewer"; "fps_before"; "fps_after"; "total_frames" ]
    (Array.to_list t.viewers
    |> List.map (fun v ->
           [
             v.name;
             Common.f v.fps_before;
             Common.f v.fps_after;
             string_of_int
               (if Array.length v.cumulative = 0 then 0
                else v.cumulative.(Array.length v.cumulative - 1));
           ]))
