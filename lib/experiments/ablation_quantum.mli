(** §2 ablation — quantum size versus short-term fairness.

    The paper: "With a scheduling quantum of 10 milliseconds (100 lotteries
    per second), reasonable fairness can be achieved over subsecond time
    intervals" — accuracy improves with more lotteries per interval, since
    the binomial error of the observed share falls as 1/sqrt(n).

    Two tasks with a 2:1 allocation run under quanta from 10 ms to 400 ms;
    for each quantum we report the mean relative error of the favoured
    task's per-2-second-window CPU share against its 2/3 entitlement, and
    the error predicted by the binomial model. Shorter quanta give tighter
    windows. *)

type row = {
  quantum_ms : int;
  lotteries_per_window : int;
  mean_abs_error : float;  (** mean over windows of |share - 2/3| / (2/3) *)
  predicted_error : float;  (** binomial cv of the window share *)
}

type t = { rows : row array }

val run : ?seed:int -> ?duration:Lotto_sim.Time.t -> ?jobs:int -> unit -> t
(** Each quantum size is an independent seeded simulation; [jobs] runs
    them on that many domains with index-merged (byte-identical) results. *)

val print : t -> unit

val to_csv : t -> string
(** Serialize the result for external plotting. *)
