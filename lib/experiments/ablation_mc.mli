(** Footnote 6 ablation — the Monte-Carlo funding function's shape.

    "Any monotonically increasing function of the relative error would
    cause convergence. A linear function would cause the tasks to converge
    more slowly; a cubic function would result in more rapid convergence."

    One task starts at t=0; a second starts midway. Both set their ticket
    to [scale * error^e] for e in {1, 2, 3}; we measure the newcomer's
    catch-up ratio (newcomer trials / elder trials at the end) — higher
    exponents catch up faster. *)

type row = {
  exponent : float;
  elder_trials : int;
  newcomer_trials : int;
  catch_up : float;  (** newcomer / elder at the end *)
}

type t = { rows : row array }

val run : ?seed:int -> ?duration:Lotto_sim.Time.t -> ?jobs:int -> unit -> t
(** Each exponent is an independent seeded simulation; [jobs] runs them on
    that many domains with index-merged (byte-identical) results. *)

val print : t -> unit

val to_csv : t -> string
(** Serialize the result for external plotting. *)
