open Lotto_sim
module Ds = Lotto_workloads.Disk_service
module Rng = Lotto_prng.Rng

type phase1_row = { name : string; disk_tickets : int; reads : int; share : float }

type t = {
  phase1 : phase1_row array;
  cpu_rich_reads : int;
  disk_rich_reads : int;
}

(* An I/O-bound application: [width] threads issuing parallel reads, all
   carrying the app's disk tickets. (A synchronous client with a single
   outstanding request cannot compete in the lottery right after being
   served — the classic closed-loop flattening — so, like any real
   I/O-bound program, the app keeps several requests in flight.) *)
let io_bound_app kernel ls disk ~name ~cpu_tickets ~disk_tickets ~wl ~width =
  let base = Common.Ls.base_currency ls in
  List.init width (fun i ->
      let rng = Rng.split wl in
      let th =
        Kernel.spawn kernel
          ~name:(Printf.sprintf "%s.%d" name i)
          (fun () ->
            while true do
              Api.compute (Time.us 100);
              Ds.read disk ~cylinder:(Rng.int_below rng 1000)
            done)
      in
      ignore (Common.Ls.fund_thread ls th ~amount:cpu_tickets ~from:base);
      Ds.set_disk_tickets disk th disk_tickets;
      th)

let app_reads disk threads =
  List.fold_left (fun acc th -> acc + Ds.reads_completed disk th) 0 threads

let phase1 ~seed ~duration =
  let kernel, ls = Common.lottery_setup ~seed () in
  let disk =
    Ds.start kernel ~rng:(Rng.create ~algo:Splitmix64 ~seed ()) ~name:"disk" ()
  in
  let wl = Rng.create ~algo:Splitmix64 ~seed:(seed + 1) () in
  let specs = [| ("gold", 300); ("silver", 200); ("bronze", 100) |] in
  (* server parks first; apps follow with equal CPU funding *)
  ignore (Kernel.run kernel ~until:(Time.us 1));
  let apps =
    Array.map
      (fun (name, disk_tickets) ->
        io_bound_app kernel ls disk ~name ~cpu_tickets:100 ~disk_tickets ~wl
          ~width:4)
      specs
  in
  ignore (Kernel.run kernel ~until:duration);
  let total = max 1 (Ds.total_reads disk) in
  Array.mapi
    (fun i threads ->
      let name, disk_tickets = specs.(i) in
      {
        name;
        disk_tickets;
        reads = app_reads disk threads;
        share = float_of_int (app_reads disk threads) /. float_of_int total;
      })
    apps

let phase2 ~seed ~duration =
  let kernel, ls = Common.lottery_setup ~seed:(seed + 10) () in
  let disk =
    Ds.start kernel ~rng:(Rng.create ~algo:Splitmix64 ~seed:(seed + 11) ()) ~name:"disk" ()
  in
  let wl = Rng.create ~algo:Splitmix64 ~seed:(seed + 12) () in
  ignore (Kernel.run kernel ~until:(Time.us 1));
  let cpu_rich =
    io_bound_app kernel ls disk ~name:"cpu-rich" ~cpu_tickets:1000 ~disk_tickets:1
      ~wl ~width:4
  in
  let disk_rich =
    io_bound_app kernel ls disk ~name:"disk-rich" ~cpu_tickets:100 ~disk_tickets:10
      ~wl ~width:4
  in
  ignore (Kernel.run kernel ~until:duration);
  (app_reads disk cpu_rich, app_reads disk disk_rich)

let run ?(seed = 80) ?(duration = Time.seconds 120) () =
  let p1 = phase1 ~seed ~duration in
  let cpu_rich_reads, disk_rich_reads = phase2 ~seed ~duration in
  { phase1 = p1; cpu_rich_reads; disk_rich_reads }

let print t =
  Common.print_header
    "Section 6 (ext): in-kernel disk service with separate disk tickets";
  Common.print_row [ "client"; "disk tickets"; "reads"; "share" ];
  Array.iter
    (fun r ->
      Common.print_row
        [
          r.name;
          string_of_int r.disk_tickets;
          Printf.sprintf "%6d" r.reads;
          Printf.sprintf "%.3f" r.share;
        ])
    t.phase1;
  Common.print_kv "resource independence" "cpu-rich(1000cpu/1disk)=%d reads vs disk-rich(100cpu/10disk)=%d"
    t.cpu_rich_reads t.disk_rich_reads

let to_csv t =
  Common.csv ~header:[ "client"; "disk_tickets"; "reads"; "share" ]
    ((Array.to_list t.phase1
     |> List.map (fun r ->
            [ r.name; string_of_int r.disk_tickets; string_of_int r.reads; Common.f r.share ]))
    @ [
        [ "cpu-rich"; "1"; string_of_int t.cpu_rich_reads; "" ];
        [ "disk-rich"; "10"; string_of_int t.disk_rich_reads; "" ];
      ])
