(* Lottery currencies vs decay-usage under multi-tenant overload.

   The same two-tenant service — A (share 900) at 1.15× its entitled
   rate, B (share 100) at 10× — runs once under lottery scheduling with
   per-tenant currencies and once under decay-usage (the SRM-style
   timesharing baseline). Decay-usage has no notion of shares: it
   equalizes usage across backlogged workers, so B's 4 saturated workers
   pull half the machine instead of a tenth, A's goodput collapses
   toward parity, and the chi-square test against the 9:1 entitlement
   rejects. Lottery keeps both the shares and the SLO. Both tenants stay
   saturated throughout (same operating point as the insulation
   experiment), which is what makes the static 9:1 chi-square test the
   right yardstick for both schedulers. *)

open Lotto_sim
module Svc = Lotto_service.Service
module Tenant = Lotto_service.Tenant
module Arrivals = Lotto_service.Arrivals

type arm = { sched : string; report : Svc.report }
type t = { arms : arm list }

let specs () =
  [
    Tenant.spec ~share:900 ~arrivals:(Arrivals.Poisson 207.) ~io_per_req:1 "A";
    Tenant.spec ~share:100 ~arrivals:(Arrivals.Poisson 200.) ~io_per_req:1 "B";
  ]

let run ?(seed = 94) ?(horizon = Time.seconds 120) () =
  let one sched_kind name =
    let cfg =
      Svc.config ~seed ~horizon ~sched_kind ~io_slot:(Time.ms 2) (specs ())
    in
    { sched = name; report = Svc.run cfg }
  in
  {
    arms =
      [ one Svc.Lottery "lottery"; one Svc.Decay_usage "decay-usage" ];
  }

let rows t =
  List.concat_map
    (fun arm ->
      List.map
        (fun (tr : Svc.tenant_report) ->
          [
            arm.sched;
            tr.Svc.t_name;
            string_of_int tr.Svc.t_share;
            Printf.sprintf "%7.1f" tr.Svc.goodput_per_s;
            string_of_int tr.Svc.shed;
            Printf.sprintf "%7.1f" tr.Svc.p99_ms;
            string_of_int tr.Svc.worker_quanta;
            (match arm.report.Svc.chi_square_p with
            | Some p -> Printf.sprintf "%.4f" p
            | None -> "n/a");
          ])
        arm.report.Svc.tenants)
    t.arms

let print t =
  Common.print_header "Service: lottery currencies vs decay-usage (SRM)";
  Common.print_row
    [ "sched"; "tenant"; "share"; "goodput/s"; "shed"; "p99ms";
      "cpu_quanta"; "chi_p" ];
  List.iter Common.print_row (rows t);
  List.iter
    (fun arm ->
      let a = Svc.find arm.report "A" and b = Svc.find arm.report "B" in
      Common.print_kv
        (arm.sched ^ " A:B cpu ratio")
        "%.2f (entitled 9.00)"
        (Common.iratio a.Svc.worker_quanta b.Svc.worker_quanta))
    t.arms

let to_csv t =
  Common.csv
    ~header:
      [ "sched"; "tenant"; "share"; "goodput_per_s"; "shed"; "p99_ms";
        "cpu_quanta"; "chi_p" ]
    (rows t)
