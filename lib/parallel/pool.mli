(** Fixed-size domain pool for deterministic parallel replication.

    The experiment layer's unit of work is an independent, fully
    self-contained simulation: a seeded kernel plus scheduler built from a
    pure task description. This module farms such tasks out to a fixed set
    of worker domains and merges the results {e by task index}, so the
    assembled output — and therefore every printed table and CSV derived
    from it — is byte-identical regardless of how many domains ran or in
    what order tasks completed.

    Determinism contract:
    - Results are stored at the submitting index; completion order is
      invisible to the caller.
    - Task functions must be self-contained: every kernel, scheduler, RNG
      and recorder they touch is created inside the task from the task
      description (per-task seeds derived deterministically, never drawn
      from shared RNG state). No module in this repository holds
      module-level mutable state, which is what makes this safe — keep it
      that way.
    - If several tasks raise, the exception of the {e lowest-indexed}
      failing task is re-raised (with its backtrace), independent of
      scheduling.

    Hand-rolled on [Domain] + [Mutex]/[Condition] from the stdlib; no
    external dependencies. *)

type t
(** A pool of worker domains consuming tasks from a shared queue. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs] worker domains (at least 1) that block on
    a condition variable until work arrives. *)

val shutdown : t -> unit
(** Signal all workers to finish outstanding tasks and exit, then join
    their domains. Idempotent. Calling {!map} after shutdown raises
    [Invalid_argument]. *)

val jobs : t -> int
(** Number of worker domains in the pool. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map p f tasks] runs [f tasks.(i)] for every [i] on the pool's workers
    and returns the results in task-index order. The caller blocks until
    all tasks finish. Exceptions follow the lowest-index rule above. *)

val map_tasks : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** One-shot convenience: [map_tasks ~jobs f tasks] equals
    [Array.map f tasks] executed on [min jobs (Array.length tasks)]
    worker domains. With [jobs <= 1] (or fewer than two tasks) no domain
    is spawned and the tasks run sequentially in the calling domain — the
    exact single-threaded code path. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default for [--jobs]. *)
