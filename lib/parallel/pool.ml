type t = {
  n_jobs : int;
  mu : Mutex.t;
  work_cv : Condition.t; (* signalled when a task is queued or on shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.n_jobs

(* Workers take thunks off the shared queue until shutdown drains it. The
   thunks are built by {!map} and never raise: task exceptions are captured
   into the result slot there. *)
let worker_loop t =
  let rec next () =
    Mutex.lock t.mu;
    let rec take () =
      match Queue.take_opt t.queue with
      | Some task -> Some task
      | None ->
          if t.closing then None
          else begin
            Condition.wait t.work_cv t.mu;
            take ()
          end
    in
    let task = take () in
    Mutex.unlock t.mu;
    match task with
    | Some task ->
        task ();
        next ()
    | None -> ()
  in
  next ()

let create ~jobs =
  let n_jobs = max 1 jobs in
  let t =
    {
      n_jobs;
      mu = Mutex.create ();
      work_cv = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [];
    }
  in
  t.workers <- List.init n_jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mu;
  t.closing <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mu;
  let ws = t.workers in
  t.workers <- [];
  List.iter Domain.join ws

type 'b slot = Pending | Ok_r of 'b | Error_r of exn * Printexc.raw_backtrace

let map t f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    Mutex.lock t.mu;
    if t.closing then begin
      Mutex.unlock t.mu;
      invalid_arg "Pool.map: pool is shut down"
    end;
    (* Per-map completion state; [results] writes are published to the
       caller by the mutex-protected [remaining] handshake below. *)
    let results = Array.make n Pending in
    let remaining = ref n in
    let done_cv = Condition.create () in
    for i = 0 to n - 1 do
      Queue.add
        (fun () ->
          let r =
            match f tasks.(i) with
            | v -> Ok_r v
            | exception e -> Error_r (e, Printexc.get_raw_backtrace ())
          in
          Mutex.lock t.mu;
          results.(i) <- r;
          decr remaining;
          if !remaining = 0 then Condition.signal done_cv;
          Mutex.unlock t.mu)
        t.queue
    done;
    Condition.broadcast t.work_cv;
    while !remaining > 0 do
      Condition.wait done_cv t.mu
    done;
    Mutex.unlock t.mu;
    (* Deterministic error propagation: scan in task order, so the same
       task's exception surfaces no matter which worker hit it first. *)
    Array.iter
      (function
        | Error_r (e, bt) -> Printexc.raise_with_backtrace e bt
        | Ok_r _ | Pending -> ())
      results;
    Array.map
      (function Ok_r v -> v | Pending | Error_r _ -> assert false)
      results
  end

let map_tasks ~jobs f tasks =
  let n = Array.length tasks in
  if jobs <= 1 || n <= 1 then Array.map f tasks
  else begin
    let pool = create ~jobs:(min jobs n) in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> map pool f tasks)
  end
