open Lotto_sim.Types

type t = {
  queue : thread Queue.t;
  member : (int, unit) Hashtbl.t; (* lazy-deletion membership *)
  mutable selections : int;
}

let create () = { queue = Queue.create (); member = Hashtbl.create 32; selections = 0 }

let enqueue t th =
  if not (Hashtbl.mem t.member th.id) then begin
    Hashtbl.replace t.member th.id ();
    Queue.push th t.queue
  end

let remove t th = Hashtbl.remove t.member th.id

let rec select t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some th ->
      if Hashtbl.mem t.member th.id then begin
        (* rotate: the selected thread goes to the tail for next time *)
        Queue.push th t.queue;
        t.selections <- t.selections + 1;
        Some th
      end
      else select t

let sched t =
  {
    sched_name = "round-robin";
    attach = enqueue t;
    detach = remove t;
    ready = enqueue t;
    unready = remove t;
    smp_ok = false;
    select = (fun ~cpu:_ -> select t);
    account = (fun _ ~used:_ ~quantum:_ ~blocked:_ -> ());
    donate = (fun ~src:_ ~dst:_ -> ());
    revoke = (fun ~src:_ -> ());
    revoke_from = (fun ~src:_ ~dst:_ -> ());
    pick_waiter = (fun _ -> None);
  }

let selections t = t.selections
