open Lotto_sim.Types

type tstate = {
  th : thread;
  mutable prio : int;
  mutable donors : thread list; (* threads currently donating to us *)
  mutable runnable : bool;
  mutable seq : int; (* FIFO order within a priority level *)
}

type t = {
  states : (int, tstate) Hashtbl.t;
  inheritance : bool;
  mutable next_seq : int;
  mutable donation_of : (int * thread) list; (* src id -> dst *)
}

let create ?(inheritance = false) () =
  { states = Hashtbl.create 32; inheritance; next_seq = 0; donation_of = [] }

let state t th =
  match Hashtbl.find_opt t.states th.id with
  | Some s -> s
  | None ->
      let s = { th; prio = 0; donors = []; runnable = false; seq = 0 } in
      Hashtbl.replace t.states th.id s;
      s

let set_priority t th p = (state t th).prio <- p
let priority t th = (state t th).prio

let rec effective t (s : tstate) =
  if not t.inheritance then s.prio
  else
    List.fold_left
      (fun acc d -> max acc (effective t (state t d)))
      s.prio s.donors

let effective_priority t th = effective t (state t th)

let mark_ready t th =
  let s = state t th in
  if not s.runnable then begin
    s.runnable <- true;
    s.seq <- t.next_seq;
    t.next_seq <- t.next_seq + 1
  end

let mark_unready t th = (state t th).runnable <- false

let detach t th =
  mark_unready t th;
  Hashtbl.remove t.states th.id

let select t =
  let best = ref None in
  Hashtbl.iter
    (fun _ s ->
      if s.runnable then
        match !best with
        | None -> best := Some s
        | Some b ->
            let ps = effective t s and pb = effective t b in
            if ps > pb || (ps = pb && s.seq < b.seq) then best := Some s)
    t.states;
  match !best with
  | None -> None
  | Some s ->
      (* refresh FIFO position so equal priorities round-robin *)
      s.seq <- t.next_seq;
      t.next_seq <- t.next_seq + 1;
      Some s.th

let donate t ~src ~dst =
  if t.inheritance then begin
    let d = state t dst in
    if not (List.memq src d.donors) then d.donors <- src :: d.donors;
    t.donation_of <- (src.id, dst) :: t.donation_of
  end

let revoke_from t ~src ~dst =
  if t.inheritance then begin
    t.donation_of <-
      List.filter (fun (s, d) -> not (s = src.id && d.id = dst.id)) t.donation_of;
    if not (List.exists (fun (s, d) -> s = src.id && d.id = dst.id) t.donation_of)
    then begin
      let ds = state t dst in
      ds.donors <- List.filter (fun th -> th.id <> src.id) ds.donors
    end
  end

let revoke t ~src =
  if t.inheritance then
    List.iter
      (fun (s, dst) -> if s = src.id then revoke_from t ~src ~dst)
      t.donation_of

let sched t =
  {
    sched_name = (if t.inheritance then "fixed-priority+pi" else "fixed-priority");
    attach = mark_ready t;
    detach = detach t;
    ready = mark_ready t;
    unready = mark_unready t;
    smp_ok = false;
    select = (fun ~cpu:_ -> select t);
    account = (fun _ ~used:_ ~quantum:_ ~blocked:_ -> ());
    donate = (fun ~src ~dst -> donate t ~src ~dst);
    revoke = (fun ~src -> revoke t ~src);
    revoke_from = (fun ~src ~dst -> revoke_from t ~src ~dst);
    pick_waiter = (fun _ -> None);
  }
