open Lotto_sim.Types
module F = Lotto_tickets.Funding
module D = Lotto_draw.Draw
module Rng = Lotto_prng.Rng

type mode = List_mode | Tree_mode | Cumul_mode | Alias_mode

let draw_mode = function
  | List_mode -> D.List
  | Tree_mode -> D.Tree
  | Cumul_mode -> D.Cumul
  | Alias_mode -> D.Alias

(* Face amount of every thread's competing ticket. The value is arbitrary:
   a thread currency's worth flows through whatever single ticket is active
   in it, so only the amount's positivity matters. *)
let competing_amount = 1000

type tstate = {
  th : thread;
  some : thread option; (* preallocated [Some th]: select returns this *)
  cur : F.currency;
  competing : F.ticket;
  mutable donations : (int * F.ticket) list; (* dst thread id -> transfer *)
  mutable dh : tstate D.handle option; (* present iff runnable *)
  mutable in_fq : bool; (* queued in the round-robin fallback ring *)
  mutable in_pending : bool; (* queued for a scoped weight refresh *)
}

(* Per-thread and per-currency state lives in arrays indexed by the dense
   arena handles the kernel and the funding system hand out ([thread.tslot]
   and {!F.currency_slot}) instead of id-keyed hashtables: a lookup is one
   bounds check and a load. Slots are recycled after death, so every read
   guards with a physical-equality check on the stored thread/currency —
   a stale entry for a previous occupant can never be mistaken for the
   current one (detach clears eagerly; the guard is belt-and-braces). *)
type t = {
  mode : mode;
  rng : Rng.t;
  system : F.system;
  mutable st_tab : tstate option array; (* by thread slot *)
  mutable by_cslot : tstate option array; (* by thread-currency slot *)
  mutable wcache : float array; (* by thread slot: currency value behind
                                   the last weight written to the draw *)
  mutable ccache : float array; (* by thread slot: compensation factor
                                   behind the last weight written. The two
                                   inputs are cached separately so
                                   [account] can compare each against an
                                   existing box (the funding cache, the
                                   thread's compensate field) — comparing
                                   the recomputed product would box the
                                   fresh float on every decision *)
  pending_q : tstate Queue.t; (* dirtied thread currencies, insertion order *)
  draw : tstate D.t;
  scratch : thread D.t; (* reusable waiter-pick draw, cleared between picks *)
  fallback_q : tstate Queue.t; (* round-robin ring of runnable threads *)
  quantum_fallback : bool;
  use_compensation : bool;
  mutable dirty : bool; (* ALL draw weights need recomputation *)
  mutable draws : int;
  mutable full_refreshes : int;
  mutable scoped_updates : int;
  mutable draw_hook : (runnable:int -> total_weight:float -> unit) option;
      (* observability probe, fired once per lottery *)
  mutable profiler : Lotto_obs.Profile.t option;
      (* when set, valuation (pending-weight flush) and draw host-clock
         costs are recorded per select *)
}

let ensure_cap arr n =
  let len = Array.length arr in
  if n < len then arr
  else begin
    let a = Array.make (max 16 (max (n + 1) (2 * len))) None in
    Array.blit arr 0 a 0 len;
    a
  end

let ensure_capf arr n =
  let len = Array.length arr in
  if n < len then arr
  else begin
    let a = Array.make (max 16 (max (n + 1) (2 * len))) 0. in
    Array.blit arr 0 a 0 len;
    a
  end

let slot_get arr slot =
  if slot < 0 || slot >= Array.length arr then None else arr.(slot)

(* The guarded lookups: a hit only counts when the occupant is the same
   record the state was created for. The [as]-patterns return the option
   already sitting in the table — rebuilding [Some s] here would charge
   every accounting call two minor words. *)
let find_state t (th : thread) =
  match slot_get t.st_tab th.tslot with
  | Some s as o when s.th == th -> o
  | _ -> None

let find_by_currency t c =
  match slot_get t.by_cslot (F.currency_slot c) with
  | Some s as o when s.cur == c -> o
  | _ -> None

let create ?(mode = List_mode) ?(quantum_fallback = true)
    ?(use_compensation = true) ~rng () =
  let t =
    {
      mode;
      rng;
      system = F.create_system ();
      st_tab = [||];
      by_cslot = [||];
      wcache = [||];
      ccache = [||];
      pending_q = Queue.create ();
      draw = D.of_mode (draw_mode mode);
      scratch = D.of_mode (draw_mode mode);
      fallback_q = Queue.create ();
      quantum_fallback;
      use_compensation;
      dirty = false;
      draws = 0;
      full_refreshes = 0;
      scoped_updates = 0;
      draw_hook = None;
      profiler = None;
    }
  in
  (* Scoped change tracking: every funding mutation — ours or a caller's
     going straight through the Funding API — reports the currencies it
     dirtied; we record the ones that belong to draw clients and revalue
     exactly those before the next lottery. *)
  ignore
    (F.on_change t.system (fun ch ->
         List.iter
           (fun c ->
             match find_by_currency t c with
             | Some s ->
                 if not s.in_pending then begin
                   s.in_pending <- true;
                   Queue.push s t.pending_q
                 end
             | None -> ())
           (F.changed ch)));
  t

let funding t = t.system
let base_currency t = F.base t.system
let make_currency t name = F.make_currency t.system ~name
let mark_dirty t = t.dirty <- true

let state t th =
  match find_state t th with
  | Some s -> s
  | None ->
      if th.tslot < 0 then
        invalid_arg "Lottery_sched.state: thread already reaped";
      let cur =
        F.make_currency t.system ~name:(Printf.sprintf "thread:%d:%s" th.id th.name)
      in
      let competing = F.issue t.system ~currency:cur ~amount:competing_amount in
      let s =
        {
          th;
          some = Some th;
          cur;
          competing;
          donations = [];
          dh = None;
          in_fq = false;
          in_pending = false;
        }
      in
      t.st_tab <- ensure_cap t.st_tab th.tslot;
      t.wcache <- ensure_capf t.wcache th.tslot;
      t.ccache <- ensure_capf t.ccache th.tslot;
      t.st_tab.(th.tslot) <- Some s;
      let cslot = F.currency_slot cur in
      t.by_cslot <- ensure_cap t.by_cslot cslot;
      t.by_cslot.(cslot) <- Some s;
      s

let thread_currency t th = (state t th).cur

(* Draw weight: the thread currency's active backing value, times the
   kernel-maintained compensation factor (when enabled). Valuations are
   cached incrementally inside Funding, so this is O(1) on a quiescent
   graph. *)
let[@inline] factor t (s : tstate) =
  if t.use_compensation then s.th.compensate else 1.
let value_of t s = F.currency_value t.system s.cur *. factor t s
let thread_value t th = value_of t (state t th)

(* The one weight-write of the draw path: records the two inputs of the
   written weight so [account] can later detect "nothing changed" without
   recomputing the product. *)
let write_weight t s h =
  let cv = F.currency_value t.system s.cur in
  let f = factor t s in
  D.set_weight t.draw h (cv *. f);
  t.wcache.(s.th.tslot) <- cv;
  t.ccache.(s.th.tslot) <- f

(* --- funding API ------------------------------------------------------- *)

let fund_currency t ~target ~amount ~from =
  let ticket = F.issue t.system ~currency:from ~amount in
  F.fund t.system ~ticket ~currency:target;
  ticket

let fund_thread t th ~amount ~from =
  fund_currency t ~target:(thread_currency t th) ~amount ~from

let set_ticket_amount t ticket amount = F.set_amount t.system ticket amount
let destroy_ticket t ticket = F.destroy_ticket t.system ticket

(* --- scheduler callbacks ------------------------------------------------ *)

(* Insertion computes the weight fresh (validating the thread currency's
   caches), so a wake needs no follow-up event flush: it is itself the one
   per-thread weight write of the block/wake path — count it as such. *)
let add_to_draw t s =
  if s.dh = None then begin
    let cv = F.currency_value t.system s.cur in
    let f = factor t s in
    s.dh <- Some (D.add t.draw ~client:s ~weight:(cv *. f));
    t.wcache.(s.th.tslot) <- cv;
    t.ccache.(s.th.tslot) <- f;
    t.scoped_updates <- t.scoped_updates + 1;
    if not s.in_fq then begin
      Queue.push s t.fallback_q;
      s.in_fq <- true
    end
  end

let remove_from_draw _t s =
  match s.dh with
  | Some h ->
      D.remove (_t : t).draw h;
      s.dh <- None
  | None -> ()

let ready t th =
  let s = state t th in
  if not (F.is_active s.competing) then F.resume t.system s.competing;
  add_to_draw t s

let attach t th =
  let s = state t th in
  (* competing ticket becomes held (and active) the first time *)
  F.hold t.system s.competing;
  add_to_draw t s

let unready t th =
  let s = state t th in
  F.suspend t.system s.competing;
  remove_from_draw t s

let drop_donations t s =
  if s.donations <> [] then begin
    List.iter (fun (_, ticket) -> F.destroy_ticket t.system ticket) s.donations;
    s.donations <- []
  end

(* Divided transfers (§3.1): each active donation ticket is denominated in
   the source's currency with the same face amount, so k concurrent
   transfers automatically split the source's value k ways — and when one
   is withdrawn the rest re-concentrate. *)
let donate t ~src ~dst =
  let s = state t src in
  let d = state t dst in
  let ticket = F.issue t.system ~currency:s.cur ~amount:competing_amount in
  F.fund t.system ~ticket ~currency:d.cur;
  s.donations <- (dst.id, ticket) :: s.donations

let revoke t ~src = drop_donations t (state t src)

let revoke_from t ~src ~dst =
  let s = state t src in
  match List.assoc_opt dst.id s.donations with
  | None -> ()
  | Some ticket ->
      F.destroy_ticket t.system ticket;
      s.donations <- List.remove_assoc dst.id s.donations

let detach t th =
  match find_state t th with
  | None -> ()
  | Some s ->
      remove_from_draw t s;
      drop_donations t s;
      (* Other threads may still be donating to this one (e.g. blocked
         mutex waiters whose owner dies); clear their references before the
         backing sweep below destroys those tickets. A donation funding
         this thread is by construction a backing ticket of its currency
         denominated in the donor's thread currency, so walking the backing
         edges reaches exactly the donors — O(degree), not a sweep over
         every scheduler state. *)
      List.iter
        (fun b ->
          match find_by_currency t (F.denomination b) with
          | Some donor ->
              donor.donations <-
                List.filter (fun (_, d) -> not (d == b)) donor.donations
          | None -> ())
        (F.backing_tickets t.system s.cur);
      (* Tear down the thread currency: first any tickets still backing it
         (allocations from user currencies), then its issued tickets. *)
      List.iter
        (fun b -> F.destroy_ticket t.system b)
        (F.backing_tickets t.system s.cur);
      let cslot = F.currency_slot s.cur in
      F.destroy_ticket t.system s.competing;
      List.iter
        (fun i -> F.destroy_ticket t.system i)
        (F.issued_tickets t.system s.cur);
      F.remove_currency t.system s.cur;
      if th.tslot >= 0 && th.tslot < Array.length t.st_tab then
        t.st_tab.(th.tslot) <- None;
      if cslot >= 0 && cslot < Array.length t.by_cslot then
        t.by_cslot.(cslot) <- None

let refresh_weights t =
  t.full_refreshes <- t.full_refreshes + 1;
  Array.iter
    (function
      | Some ({ dh = Some h; _ } as s) -> write_weight t s h
      | _ -> ())
    t.st_tab

let drain_pending t f =
  while not (Queue.is_empty t.pending_q) do
    let s = Queue.pop t.pending_q in
    s.in_pending <- false;
    f s
  done

(* Bring the draw in sync with the funding graph: a full rebuild only when
   explicitly requested ({!mark_dirty}), otherwise revalue exactly the
   threads whose currencies the change events dirtied — O(changed), the
   steady-state path. Detached threads may still sit in the queue; their
   [dh] is gone, so they drain as no-ops. *)
let flush_pending t =
  if t.dirty then begin
    refresh_weights t;
    t.dirty <- false;
    drain_pending t (fun _ -> ())
  end
  else if not (Queue.is_empty t.pending_q) then
    drain_pending t (fun s ->
        match s.dh with
        | Some h ->
            write_weight t s h;
            t.scoped_updates <- t.scoped_updates + 1
        | None -> ())

(* Unfunded threads never win a lottery (paper: zero tickets = starvation).
   To keep simulations with forgotten funding alive, optionally fall back to
   round-robin among runnable threads when every runnable thread has zero
   weight. The ring holds every runnable thread once; stale entries (threads
   that blocked or exited since being queued) are dropped lazily, so a pick
   is O(1) amortized. *)
let fallback_pick t =
  if not t.quantum_fallback then None
  else begin
    let rec next () =
      match Queue.take_opt t.fallback_q with
      | None -> None
      | Some s ->
          if s.dh = None then begin
            s.in_fq <- false;
            next ()
          end
          else begin
            Queue.push s t.fallback_q;
            s.some
          end
    in
    next ()
  end

let fire_draw_hook t =
  match t.draw_hook with
  | None -> ()
  | Some hook -> hook ~runnable:(D.size t.draw) ~total_weight:(D.total t.draw)

let select t =
  t.draws <- t.draws + 1;
  (match t.profiler with
  | None ->
      flush_pending t;
      fire_draw_hook t
  | Some p ->
      let t0 = Lotto_obs.Profile.start p in
      flush_pending t;
      Lotto_obs.Profile.stop p Lotto_obs.Profile.Valuation t0;
      fire_draw_hook t);
  (* Slot-based draw: the winner comes back as an int token and resolves to
     the tstate's preallocated [Some th] — no option or handle wrapper is
     built per decision. *)
  match t.profiler with
  | None ->
      let w = D.draw_slot t.draw t.rng in
      if w >= 0 then (D.client_at t.draw w).some else fallback_pick t
  | Some p ->
      let t0 = Lotto_obs.Profile.start p in
      let w = D.draw_slot t.draw t.rng in
      Lotto_obs.Profile.stop p Lotto_obs.Profile.Draw t0;
      if w >= 0 then (D.client_at t.draw w).some else fallback_pick t

let account t th ~used:_ ~quantum:_ ~blocked:_ =
  (* The thread's compensation factor was reset when its quantum started
     and possibly re-set when it blocked; refresh its draw weight so the
     next draw sees the current value. The fresh value is compared against
     the cached copy of the last write first: for a compute-bound thread on
     a quiescent funding graph nothing changed, and skipping [set_weight]
     keeps the comparison float unboxed (the cross-module call would box
     it). Skipping is exact, not approximate — a weight delta of zero
     leaves every backend bit-identical. *)
  if not t.dirty then begin
    match find_state t th with
    | Some ({ dh = Some h; _ } as s) ->
        (* Each input is compared against an existing box (the funding
           valuation cache, the thread's compensate field), so the
           quiescent path computes no fresh float at all. Skipping the
           write when both inputs match is exact: the product could not
           have changed. *)
        if
          F.currency_value t.system s.cur <> t.wcache.(th.tslot)
          || factor t s <> t.ccache.(th.tslot)
        then write_weight t s h
    | _ -> ()
  end

(* Lottery among blocked waiters (paper §6.1), weighted by each waiter's
   own funding. A waiter's thread currency is inactive while it blocks (its
   competing ticket is suspended, and condition/semaphore waiters donate to
   nobody), so we weigh its *potential* value: the sum of its backing
   tickets at current exchange rates — exactly what the waiter would be
   worth the moment it wakes. *)
let potential_value t v (s : tstate) =
  List.fold_left
    (fun acc b ->
      acc
      +. (float_of_int (F.amount b) *. F.Valuation.unit_value v (F.denomination b)))
    0.
    (F.backing_tickets t.system s.cur)

(* The pick goes through the same draw backend as the CPU lottery: the
   scheduler's scratch structure over the waiters, weighted by potential
   value and cleared again by the next pick. The list backend prepends, so
   waiters are inserted back-to-front to keep the scan in arrival order
   (matching the historical walk) without allocating a reversed list. *)
let pick_waiter t waiters =
  let v = F.Valuation.make t.system in
  let d = t.scratch in
  D.clear d;
  let insert w =
    ignore (D.add d ~client:w ~weight:(potential_value t v (state t w)))
  in
  (match t.mode with
  | Tree_mode | Cumul_mode | Alias_mode -> List.iter insert waiters
  | List_mode ->
      let rec back_to_front = function
        | [] -> ()
        | w :: rest ->
            back_to_front rest;
            insert w
      in
      back_to_front waiters);
  let s = D.draw_slot d t.rng in
  if s < 0 then None else Some (D.client_at d s)

let sched t =
  {
    sched_name =
      (match t.mode with
      | List_mode -> "lottery-list"
      | Tree_mode -> "lottery-tree"
      | Cumul_mode -> "lottery-cumul"
      | Alias_mode -> "lottery-alias");
    attach = attach t;
    detach = detach t;
    ready = ready t;
    unready = unready t;
    select = (fun () -> select t);
    account = (fun th ~used ~quantum ~blocked -> account t th ~used ~quantum ~blocked);
    donate = (fun ~src ~dst -> donate t ~src ~dst);
    revoke = (fun ~src -> revoke t ~src);
    revoke_from = (fun ~src ~dst -> revoke_from t ~src ~dst);
    pick_waiter = (fun ws -> pick_waiter t ws);
  }

let set_draw_hook t hook = t.draw_hook <- hook
let set_profiler t p = t.profiler <- p

(* --- auditable introspection -------------------------------------------- *)

(* Read-only: must go through [find_state], never [state], which would
   resurrect a currency for a detached (dead) thread. *)
let donation_targets t th =
  match find_state t th with
  | None -> []
  | Some s -> List.map fst s.donations

let check_funding_coherence t threads =
  let out = ref [] in
  let vf fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  List.iter
    (fun th ->
      let sched_side = List.sort compare (donation_targets t th) in
      let kernel_side =
        List.sort compare (List.map (fun (d : thread) -> d.id) th.donating_to)
      in
      if sched_side <> kernel_side then
        vf "%s: kernel donating_to [%s] but scheduler holds transfers to [%s]"
          th.name
          (String.concat ";" (List.map string_of_int kernel_side))
          (String.concat ";" (List.map string_of_int sched_side)))
    threads;
  (* The kernel's thread list is live-only, so dead threads with leftover
     funding state can't be caught from [threads]; sweep our own table. A
     healthy detach clears the entry at death, so any surviving zombie (or
     slot/thread disagreement) is a leak. *)
  Array.iteri
    (fun i entry ->
      match entry with
      | Some s when s.th.state = Zombie ->
          vf "%s: dead thread still has scheduler funding state" s.th.name
      | Some s when s.th.tslot <> i ->
          vf "%s: scheduler state at slot %d but thread slot is %d" s.th.name i
            s.th.tslot
      | _ -> ())
    t.st_tab;
  (match F.check_invariants t.system with
  | () -> ()
  | exception Failure msg -> vf "funding graph: %s" msg);
  List.rev !out

let thread_entitlement t th =
  let v = F.Valuation.make t.system in
  potential_value t v (state t th)

let draws t = t.draws
let full_refreshes t = t.full_refreshes
let scoped_weight_updates t = t.scoped_updates
let list_comparisons t = D.comparisons t.draw
let runnable_count t = D.size t.draw
