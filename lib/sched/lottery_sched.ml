open Lotto_sim.Types
module F = Lotto_tickets.Funding
module D = Lotto_draw.Draw
module Rng = Lotto_prng.Rng

type mode = List_mode | Tree_mode

let draw_mode = function List_mode -> D.List | Tree_mode -> D.Tree

(* Face amount of every thread's competing ticket. The value is arbitrary:
   a thread currency's worth flows through whatever single ticket is active
   in it, so only the amount's positivity matters. *)
let competing_amount = 1000

type tstate = {
  th : thread;
  cur : F.currency;
  competing : F.ticket;
  mutable donations : (int * F.ticket) list; (* dst thread id -> transfer *)
  mutable dh : thread D.handle option; (* present iff runnable *)
}

type t = {
  mode : mode;
  rng : Rng.t;
  system : F.system;
  states : (int, tstate) Hashtbl.t;
  draw : thread D.t;
  quantum_fallback : bool;
  use_compensation : bool;
  mutable dirty : bool; (* draw weights need recomputation *)
  mutable draws : int;
  mutable fallback_rr : int; (* rotates unfunded-thread fallback *)
  mutable draw_hook : (runnable:int -> total_weight:float -> unit) option;
      (* observability probe, fired once per lottery *)
}

let[@warning "-16"] create ?(mode = List_mode) ?(quantum_fallback = true)
    ?(use_compensation = true) ~rng () =
  let t =
    {
      mode;
      rng;
      system = F.create_system ();
      states = Hashtbl.create 64;
      draw = D.of_mode (draw_mode mode);
      quantum_fallback;
      use_compensation;
      dirty = true;
      draws = 0;
      fallback_rr = 0;
      draw_hook = None;
    }
  in
  (* Every funding mutation — ours or a caller's going straight through the
     Funding API — marks the cached draw weights stale. *)
  ignore (F.on_change t.system (fun () -> t.dirty <- true));
  t

let funding t = t.system
let base_currency t = F.base t.system
let make_currency t name = F.make_currency t.system ~name
let mark_dirty t = t.dirty <- true

let state t th =
  match Hashtbl.find_opt t.states th.id with
  | Some s -> s
  | None ->
      let cur =
        F.make_currency t.system ~name:(Printf.sprintf "thread:%d:%s" th.id th.name)
      in
      let competing = F.issue t.system ~currency:cur ~amount:competing_amount in
      let s = { th; cur; competing; donations = []; dh = None } in
      Hashtbl.replace t.states th.id s;
      s

let thread_currency t th = (state t th).cur

(* Draw weight: the thread currency's active backing value, times the
   kernel-maintained compensation factor (when enabled). *)
let raw_value_with valuation s = F.Valuation.currency_value valuation s.cur

let factor t (s : tstate) = if t.use_compensation then s.th.compensate else 1.

let value_of t s =
  let v = F.Valuation.make t.system in
  raw_value_with v s *. factor t s

let thread_value t th = value_of t (state t th)

(* --- funding API ------------------------------------------------------- *)

let fund_currency t ~target ~amount ~from =
  let ticket = F.issue t.system ~currency:from ~amount in
  F.fund t.system ~ticket ~currency:target;
  ticket

let fund_thread t th ~amount ~from =
  fund_currency t ~target:(thread_currency t th) ~amount ~from

let set_ticket_amount t ticket amount = F.set_amount t.system ticket amount
let destroy_ticket t ticket = F.destroy_ticket t.system ticket

(* --- scheduler callbacks ------------------------------------------------ *)

let add_to_draw t s =
  if s.dh = None then s.dh <- Some (D.add t.draw ~client:s.th ~weight:0.);
  t.dirty <- true

let remove_from_draw t s =
  match s.dh with
  | Some h ->
      D.remove t.draw h;
      s.dh <- None;
      t.dirty <- true
  | None -> ()

let ready t th =
  let s = state t th in
  if not (F.is_active s.competing) then F.resume t.system s.competing;
  add_to_draw t s

let attach t th =
  let s = state t th in
  (* competing ticket becomes held (and active) the first time *)
  F.hold t.system s.competing;
  add_to_draw t s

let unready t th =
  let s = state t th in
  F.suspend t.system s.competing;
  remove_from_draw t s

let drop_donations t s =
  if s.donations <> [] then begin
    List.iter (fun (_, ticket) -> F.destroy_ticket t.system ticket) s.donations;
    s.donations <- []
  end

(* Divided transfers (§3.1): each active donation ticket is denominated in
   the source's currency with the same face amount, so k concurrent
   transfers automatically split the source's value k ways — and when one
   is withdrawn the rest re-concentrate. *)
let donate t ~src ~dst =
  let s = state t src in
  let d = state t dst in
  let ticket = F.issue t.system ~currency:s.cur ~amount:competing_amount in
  F.fund t.system ~ticket ~currency:d.cur;
  s.donations <- (dst.id, ticket) :: s.donations

let revoke t ~src = drop_donations t (state t src)

let revoke_from t ~src ~dst =
  let s = state t src in
  match List.assoc_opt dst.id s.donations with
  | None -> ()
  | Some ticket ->
      F.destroy_ticket t.system ticket;
      s.donations <- List.remove_assoc dst.id s.donations

let detach t th =
  match Hashtbl.find_opt t.states th.id with
  | None -> ()
  | Some s ->
      remove_from_draw t s;
      drop_donations t s;
      (* Other threads may still be donating to this one (e.g. blocked
         mutex waiters whose owner dies); clear their references before the
         backing sweep below destroys those tickets. *)
      Hashtbl.iter
        (fun _ other ->
          other.donations <-
            List.filter
              (fun (_, d) ->
                match F.funds d with
                | Some c -> F.currency_id c <> F.currency_id s.cur
                | None -> true)
              other.donations)
        t.states;
      (* Tear down the thread currency: first any tickets still backing it
         (allocations from user currencies), then its issued tickets. *)
      List.iter (fun b -> F.destroy_ticket t.system b) (F.backing_tickets s.cur);
      F.destroy_ticket t.system s.competing;
      List.iter (fun i -> F.destroy_ticket t.system i) (F.issued_tickets s.cur);
      F.remove_currency t.system s.cur;
      Hashtbl.remove t.states th.id;
      t.dirty <- true

let refresh_weights t =
  let v = F.Valuation.make t.system in
  Hashtbl.iter
    (fun _ s ->
      match s.dh with
      | Some h -> D.set_weight t.draw h (raw_value_with v s *. factor t s)
      | None -> ())
    t.states

(* Unfunded threads never win a lottery (paper: zero tickets = starvation).
   To keep simulations with forgotten funding alive, optionally fall back to
   round-robin among runnable threads when every runnable thread has zero
   weight. *)
let fallback_pick t =
  if not t.quantum_fallback then None
  else begin
    let runnable = ref [] in
    Hashtbl.iter (fun _ s -> if s.dh <> None then runnable := s.th :: !runnable) t.states;
    match List.sort (fun a b -> compare a.id b.id) !runnable with
    | [] -> None
    | threads ->
        let n = List.length threads in
        let idx = t.fallback_rr mod n in
        t.fallback_rr <- t.fallback_rr + 1;
        Some (List.nth threads idx)
  end

let fire_draw_hook t =
  match t.draw_hook with
  | None -> ()
  | Some hook -> hook ~runnable:(D.size t.draw) ~total_weight:(D.total t.draw)

let select t =
  t.draws <- t.draws + 1;
  if t.dirty then begin
    refresh_weights t;
    t.dirty <- false
  end;
  fire_draw_hook t;
  match D.draw_client t.draw t.rng with
  | Some th -> Some th
  | None -> fallback_pick t

let account t th ~used:_ ~quantum:_ ~blocked:_ =
  (* The thread's compensation factor was reset when its quantum started
     and possibly re-set when it blocked; refresh its draw weight so the
     next draw sees the current value without a full rebuild. *)
  if not t.dirty then begin
    match Hashtbl.find_opt t.states th.id with
    | Some ({ dh = Some h; _ } as s) -> D.set_weight t.draw h (value_of t s)
    | _ -> ()
  end

(* Lottery among blocked waiters (paper §6.1), weighted by each waiter's
   own funding. A waiter's thread currency is inactive while it blocks (its
   competing ticket is suspended, and condition/semaphore waiters donate to
   nobody), so we weigh its *potential* value: the sum of its backing
   tickets at current exchange rates — exactly what the waiter would be
   worth the moment it wakes. *)
let potential_value v (s : tstate) =
  List.fold_left
    (fun acc b ->
      acc
      +. (float_of_int (F.amount b) *. F.Valuation.unit_value v (F.denomination b)))
    0. (F.backing_tickets s.cur)

(* The pick goes through the same draw backend as the CPU lottery: an
   ephemeral structure over the waiters, weighted by potential value. The
   list backend prepends, so waiters are inserted in reverse to keep the
   scan in arrival order (matching the historical walk). *)
let pick_waiter t waiters =
  let v = F.Valuation.make t.system in
  let d = D.of_mode (draw_mode t.mode) in
  let ws = match t.mode with List_mode -> List.rev waiters | Tree_mode -> waiters in
  List.iter
    (fun w -> ignore (D.add d ~client:w ~weight:(potential_value v (state t w))))
    ws;
  D.draw_client d t.rng

let sched t =
  {
    sched_name =
      (match t.mode with
      | List_mode -> "lottery-list"
      | Tree_mode -> "lottery-tree");
    attach = attach t;
    detach = detach t;
    ready = ready t;
    unready = unready t;
    select = (fun () -> select t);
    account = (fun th ~used ~quantum ~blocked -> account t th ~used ~quantum ~blocked);
    donate = (fun ~src ~dst -> donate t ~src ~dst);
    revoke = (fun ~src -> revoke t ~src);
    revoke_from = (fun ~src ~dst -> revoke_from t ~src ~dst);
    pick_waiter = (fun ws -> pick_waiter t ws);
  }

let set_draw_hook t hook = t.draw_hook <- hook

let thread_entitlement t th =
  let v = F.Valuation.make t.system in
  potential_value v (state t th)

let draws t = t.draws
let list_comparisons t = D.comparisons t.draw
let runnable_count t = D.size t.draw
