open Lotto_sim.Types
module F = Lotto_tickets.Funding
module D = Lotto_draw.Draw
module Sh = Lotto_draw.Shard_tree
module Rng = Lotto_prng.Rng

type mode = List_mode | Tree_mode | Cumul_mode | Alias_mode

let draw_mode = function
  | List_mode -> D.List
  | Tree_mode -> D.Tree
  | Cumul_mode -> D.Cumul
  | Alias_mode -> D.Alias

(* Face amount of every thread's competing ticket. The value is arbitrary:
   a thread currency's worth flows through whatever single ticket is active
   in it, so only the amount's positivity matters. *)
let competing_amount = 1000

type tstate = {
  th : thread;
  some : thread option; (* preallocated [Some th]: select returns this *)
  cur : F.currency;
  competing : F.ticket;
  mutable donations : (int * F.ticket) list; (* dst thread id -> transfer *)
  mutable dh : tstate D.handle option;
      (* unsharded: present iff runnable. Sharded: allocated at the first
         enqueue and kept forever (the [Some] box included) — dispatch and
         migration recycle the same handle through {!D.remove}/{!D.readd},
         so the steady-state quantum cycle allocates nothing. [in_draw]
         carries liveness. *)
  mutable in_fq : bool; (* queued in a round-robin fallback ring *)
  mutable in_pending : bool; (* queued for a scoped weight refresh *)
  (* --- sharded-mode state (unused when [shards = 0]) ----------------- *)
  mutable shard : int; (* owning shard; -1 until first placement *)
  mutable in_draw : bool; (* live in its shard's draw structure *)
  mutable counted : bool;
      (* this thread's [wlast] is accumulated in the shard tree: true for
         runnable *and* dispatched (on-CPU) threads, false while blocked —
         so a running thread still attracts rebalancing pressure to its
         shard but can never itself be drawn, stolen or migrated *)
  mutable ring_of : int;
      (* which shard's fallback ring holds this entry (one-ring invariant:
         a migrated thread is handed to its new ring lazily, on pop, so
         migration itself never touches the rings) *)
  mutable wlast : float;
      (* the last weight written to a shard draw — kept as the record's
         own box so the dispatch/re-enqueue cycle can pass it to
         {!D.readd} without allocating a fresh float *)
}

(* Per-thread and per-currency state lives in arrays indexed by the dense
   arena handles the kernel and the funding system hand out ([thread.tslot]
   and {!F.currency_slot}) instead of id-keyed hashtables: a lookup is one
   bounds check and a load. Slots are recycled after death, so every read
   guards with a physical-equality check on the stored thread/currency —
   a stale entry for a previous occupant can never be mistaken for the
   current one (detach clears eagerly; the guard is belt-and-braces). *)
type t = {
  mode : mode;
  rng : Rng.t;
  system : F.system;
  mutable st_tab : tstate option array; (* by thread slot *)
  mutable by_cslot : tstate option array; (* by thread-currency slot *)
  mutable wcache : float array; (* by thread slot: currency value behind
                                   the last weight written to the draw *)
  mutable ccache : float array; (* by thread slot: compensation factor
                                   behind the last weight written. The two
                                   inputs are cached separately so
                                   [account] can compare each against an
                                   existing box (the funding cache, the
                                   thread's compensate field) — comparing
                                   the recomputed product would box the
                                   fresh float on every decision *)
  pending_q : tstate Queue.t; (* dirtied thread currencies, insertion order *)
  draw : tstate D.t;
  scratch : thread D.t; (* reusable waiter-pick draw, cleared between picks *)
  fallback_q : tstate Queue.t; (* round-robin ring of runnable threads *)
  (* --- per-CPU lottery shards (empty when [shards = 0]) -------------- *)
  shards : int; (* 0 = the single-draw path above *)
  sdraws : tstate D.t array; (* one draw structure per virtual CPU *)
  srings : tstate Queue.t array; (* per-shard fallback rings *)
  stree : Sh.t; (* partial-sum tree over per-shard ticket masses *)
  imbalance_band : float; (* rebalance trigger, as a fraction of total/N *)
  mutable migration_enabled : bool;
  mutable placement_hook : (thread -> int) option;
  mutable migrations : int;
  mutable steals : int;
  quantum_fallback : bool;
  use_compensation : bool;
  mutable dirty : bool; (* ALL draw weights need recomputation *)
  mutable draws : int;
  mutable full_refreshes : int;
  mutable scoped_updates : int;
  mutable draw_hook : (runnable:int -> total_weight:float -> unit) option;
      (* observability probe, fired once per lottery *)
  mutable profiler : Lotto_obs.Profile.t option;
      (* when set, valuation (pending-weight flush) and draw host-clock
         costs are recorded per select *)
}

let ensure_cap arr n =
  let len = Array.length arr in
  if n < len then arr
  else begin
    let a = Array.make (max 16 (max (n + 1) (2 * len))) None in
    Array.blit arr 0 a 0 len;
    a
  end

let ensure_capf arr n =
  let len = Array.length arr in
  if n < len then arr
  else begin
    let a = Array.make (max 16 (max (n + 1) (2 * len))) 0. in
    Array.blit arr 0 a 0 len;
    a
  end

let slot_get arr slot =
  if slot < 0 || slot >= Array.length arr then None else arr.(slot)

(* The guarded lookups: a hit only counts when the occupant is the same
   record the state was created for. The [as]-patterns return the option
   already sitting in the table — rebuilding [Some s] here would charge
   every accounting call two minor words. *)
let find_state t (th : thread) =
  match slot_get t.st_tab th.tslot with
  | Some s as o when s.th == th -> o
  | _ -> None

let find_by_currency t c =
  match slot_get t.by_cslot (F.currency_slot c) with
  | Some s as o when s.cur == c -> o
  | _ -> None

let create ?(mode = List_mode) ?(quantum_fallback = true)
    ?(use_compensation = true) ?(shards = 0) ?(imbalance_band = 0.25) ~rng () =
  if shards < 0 then invalid_arg "Lottery_sched.create: shards < 0";
  if imbalance_band <= 0. then
    invalid_arg "Lottery_sched.create: imbalance_band <= 0";
  let t =
    {
      mode;
      rng;
      system = F.create_system ();
      st_tab = [||];
      by_cslot = [||];
      wcache = [||];
      ccache = [||];
      pending_q = Queue.create ();
      draw = D.of_mode (draw_mode mode);
      scratch = D.of_mode (draw_mode mode);
      fallback_q = Queue.create ();
      shards;
      sdraws = Array.init shards (fun _ -> D.of_mode (draw_mode mode));
      srings = Array.init shards (fun _ -> Queue.create ());
      stree = Sh.create ~shards:(max 1 shards);
      imbalance_band;
      migration_enabled = true;
      placement_hook = None;
      migrations = 0;
      steals = 0;
      quantum_fallback;
      use_compensation;
      dirty = false;
      draws = 0;
      full_refreshes = 0;
      scoped_updates = 0;
      draw_hook = None;
      profiler = None;
    }
  in
  (* Scoped change tracking: every funding mutation — ours or a caller's
     going straight through the Funding API — reports the currencies it
     dirtied; we record the ones that belong to draw clients and revalue
     exactly those before the next lottery. *)
  ignore
    (F.on_change t.system (fun ch ->
         List.iter
           (fun c ->
             match find_by_currency t c with
             | Some s ->
                 if not s.in_pending then begin
                   s.in_pending <- true;
                   Queue.push s t.pending_q
                 end
             | None -> ())
           (F.changed ch)));
  t

let funding t = t.system
let base_currency t = F.base t.system
let make_currency t name = F.make_currency t.system ~name
let mark_dirty t = t.dirty <- true

let state t th =
  match find_state t th with
  | Some s -> s
  | None ->
      if th.tslot < 0 then
        invalid_arg "Lottery_sched.state: thread already reaped";
      let cur =
        F.make_currency t.system ~name:(Printf.sprintf "thread:%d:%s" th.id th.name)
      in
      let competing = F.issue t.system ~currency:cur ~amount:competing_amount in
      let s =
        {
          th;
          some = Some th;
          cur;
          competing;
          donations = [];
          dh = None;
          in_fq = false;
          in_pending = false;
          shard = -1;
          in_draw = false;
          counted = false;
          ring_of = -1;
          wlast = 0.;
        }
      in
      t.st_tab <- ensure_cap t.st_tab th.tslot;
      t.wcache <- ensure_capf t.wcache th.tslot;
      t.ccache <- ensure_capf t.ccache th.tslot;
      t.st_tab.(th.tslot) <- Some s;
      let cslot = F.currency_slot cur in
      t.by_cslot <- ensure_cap t.by_cslot cslot;
      t.by_cslot.(cslot) <- Some s;
      s

let thread_currency t th = (state t th).cur

(* Draw weight: the thread currency's active backing value, times the
   kernel-maintained compensation factor (when enabled). Valuations are
   cached incrementally inside Funding, so this is O(1) on a quiescent
   graph. *)
let[@inline] factor t (s : tstate) =
  if t.use_compensation then s.th.compensate else 1.
let value_of t s = F.currency_value t.system s.cur *. factor t s
let thread_value t th = value_of t (state t th)

(* The one weight-write of the draw path: records the two inputs of the
   written weight so [account] can later detect "nothing changed" without
   recomputing the product. *)
let write_weight t s h =
  let cv = F.currency_value t.system s.cur in
  let f = factor t s in
  D.set_weight t.draw h (cv *. f);
  t.wcache.(s.th.tslot) <- cv;
  t.ccache.(s.th.tslot) <- f

(* --- per-CPU shards: mass accounting, migration, stealing -------------- *)

(* The shard tree tracks the live ticket mass *assigned* to each shard:
   runnable threads waiting in the shard's draw plus the thread currently
   dispatched on that CPU (dequeued but still consuming the shard's share).
   Blocked threads carry no mass. Tracking assignment rather than draw
   occupancy keeps the steady-state quantum cycle (dispatch dequeue +
   account re-enqueue) entirely off the tree: only block/wake, funding
   changes and migrations touch it. *)
let stree_adjust t i delta =
  let v = Sh.get t.stree i +. delta in
  Sh.set t.stree i (if v > 0. then v else 0.)

(* Take a drawn thread off its shard's structure for the duration of its
   slice. Its mass stays counted; the recycled handle makes the later
   re-enqueue allocation-free. *)
let[@inline] dispatch_dequeue t s =
  (match s.dh with
  | Some h -> D.remove t.sdraws.(s.shard) h
  | None -> ());
  s.in_draw <- false

(* (Re-)insert a thread into its shard's draw. The weight inputs are
   compared against the cached copies exactly as [account] does on the
   unsharded path: on a quiescent graph nothing changed and the re-insert
   reuses the boxed product of the last write ([wlast]), so a
   compute-bound thread's dispatch/re-enqueue cycle allocates nothing. *)
let sh_enqueue t s =
  if not s.in_draw then begin
    let slot = s.th.tslot in
    if
      F.currency_value t.system s.cur <> t.wcache.(slot)
      || factor t s <> t.ccache.(slot)
    then begin
      let cv = F.currency_value t.system s.cur in
      let f = factor t s in
      let nw = cv *. f in
      t.wcache.(slot) <- cv;
      t.ccache.(slot) <- f;
      if s.counted then stree_adjust t s.shard (nw -. s.wlast);
      s.wlast <- nw;
      t.scoped_updates <- t.scoped_updates + 1
    end;
    (match s.dh with
    | Some h -> D.readd t.sdraws.(s.shard) h ~weight:s.wlast
    | None -> s.dh <- Some (D.add t.sdraws.(s.shard) ~client:s ~weight:s.wlast));
    s.in_draw <- true;
    if not s.counted then begin
      stree_adjust t s.shard s.wlast;
      s.counted <- true
    end;
    if not s.in_fq then begin
      Queue.push s t.srings.(s.shard);
      s.ring_of <- s.shard;
      s.in_fq <- true
    end
  end

(* Revalue a sharded thread's draw weight in place (the scoped-refresh
   write). Dequeued threads are skipped: their caches disagree with the
   funding graph until [sh_enqueue] reconciles them on re-insert. *)
let write_weight_sh t s =
  match s.dh with
  | Some h when s.in_draw ->
      let cv = F.currency_value t.system s.cur in
      let f = factor t s in
      let nw = cv *. f in
      t.wcache.(s.th.tslot) <- cv;
      t.ccache.(s.th.tslot) <- f;
      if s.counted then stree_adjust t s.shard (nw -. s.wlast);
      s.wlast <- nw;
      D.set_weight t.sdraws.(s.shard) h nw
  | _ -> ()

(* Move a thread between shards: O(1) detach from the source structure,
   O(log n) re-insert into the destination, both on the existing handle
   record — zero allocation. Fallback-ring entries are left where they are
   (the one-ring invariant): the stale entry hands the thread to its new
   ring lazily when popped. *)
let migrate t s ~dst =
  if dst < 0 || dst >= t.shards then invalid_arg "Lottery_sched: bad shard";
  if s.shard <> dst then begin
    if s.in_draw then begin
      match s.dh with
      | Some h ->
          D.remove t.sdraws.(s.shard) h;
          D.readd t.sdraws.(dst) h ~weight:s.wlast
      | None -> assert false
    end;
    if s.counted then begin
      stree_adjust t s.shard (-.s.wlast);
      stree_adjust t dst s.wlast
    end;
    s.shard <- dst;
    t.migrations <- t.migrations + 1
  end

(* Ticket-weighted placement: a new thread lands on the least-loaded shard
   (by live ticket mass, lowest id on ties), unless a placement hook pins
   it somewhere specific. *)
let place t s =
  if s.shard < 0 then
    s.shard <-
      (match t.placement_hook with
      | None -> Sh.min_shard t.stree
      | Some f ->
          let i = f s.th in
          if i < 0 || i >= t.shards then
            invalid_arg "Lottery_sched: placement hook returned a bad shard";
          i)

(* Hysteresis rebalance, run at every scheduling decision: trigger when
   the richest or poorest shard strays more than [imbalance_band] x the
   fair share from it, then migrate ticket-weighted picks rich -> poor
   until back within half the band (or the move budget runs out). The
   no-overshoot rule — the rich shard must stay at least as rich as the
   poor one becomes — stops a single heavy thread from ping-ponging
   between shards. On a balanced system this is two O(shards) scans and
   no draw. *)
let max_rebalance_moves = 8

let rebalance t =
  let tot = Sh.total t.stree in
  if tot > 0. then begin
    let ideal = tot /. float_of_int t.shards in
    let full_band = t.imbalance_band *. ideal in
    let thresh = ref full_band in
    let moves = ref 0 in
    let go = ref true in
    while !go && !moves < max_rebalance_moves do
      go := false;
      let rich = Sh.max_shard t.stree in
      let poor = Sh.min_shard t.stree in
      let mr = Sh.get t.stree rich in
      let mp = Sh.get t.stree poor in
      if rich <> poor && (mr -. ideal > !thresh || ideal -. mp > !thresh) then begin
        let w = D.draw_slot t.sdraws.(rich) t.rng in
        if w >= 0 then begin
          let s = D.client_at t.sdraws.(rich) w in
          if mr -. s.wlast >= mp +. s.wlast then begin
            migrate t s ~dst:poor;
            thresh := full_band /. 2.;
            incr moves;
            go := true
          end
        end
      end
    done
  end

(* Work stealing, tried when a CPU's own shard has no funded runnable
   thread: pick a source shard ticket-weighted through the shard tree,
   draw a victim from it, and migrate it here. One steal per empty
   decision keeps the RNG consumption bounded and deterministic. *)
let steal t ~dst =
  if not t.migration_enabled then None
  else if Sh.total t.stree <= 0. then None
  else begin
    let src = Sh.pick t.stree ~u:(Rng.float_unit t.rng) in
    if src < 0 || src = dst then None
    else begin
      let w = D.draw_slot t.sdraws.(src) t.rng in
      if w < 0 then None
      else begin
        let s = D.client_at t.sdraws.(src) w in
        migrate t s ~dst;
        t.steals <- t.steals + 1;
        Some s
      end
    end
  end

(* --- funding API ------------------------------------------------------- *)

let fund_currency t ~target ~amount ~from =
  let ticket = F.issue t.system ~currency:from ~amount in
  F.fund t.system ~ticket ~currency:target;
  ticket

let fund_thread t th ~amount ~from =
  fund_currency t ~target:(thread_currency t th) ~amount ~from

let set_ticket_amount t ticket amount = F.set_amount t.system ticket amount
let destroy_ticket t ticket = F.destroy_ticket t.system ticket

(* --- scheduler callbacks ------------------------------------------------ *)

(* Insertion computes the weight fresh (validating the thread currency's
   caches), so a wake needs no follow-up event flush: it is itself the one
   per-thread weight write of the block/wake path — count it as such. *)
let add_to_draw t s =
  if s.dh = None then begin
    let cv = F.currency_value t.system s.cur in
    let f = factor t s in
    s.dh <- Some (D.add t.draw ~client:s ~weight:(cv *. f));
    t.wcache.(s.th.tslot) <- cv;
    t.ccache.(s.th.tslot) <- f;
    t.scoped_updates <- t.scoped_updates + 1;
    if not s.in_fq then begin
      Queue.push s t.fallback_q;
      s.in_fq <- true
    end
  end

let remove_from_draw _t s =
  match s.dh with
  | Some h ->
      D.remove (_t : t).draw h;
      s.dh <- None
  | None -> ()

let ready t th =
  let s = state t th in
  if not (F.is_active s.competing) then F.resume t.system s.competing;
  if t.shards > 0 then begin
    place t s;
    sh_enqueue t s
  end
  else add_to_draw t s

let attach t th =
  let s = state t th in
  (* competing ticket becomes held (and active) the first time *)
  F.hold t.system s.competing;
  if t.shards > 0 then begin
    place t s;
    sh_enqueue t s
  end
  else add_to_draw t s

let unready t th =
  let s = state t th in
  F.suspend t.system s.competing;
  if t.shards > 0 then begin
    if s.counted then begin
      stree_adjust t s.shard (-.s.wlast);
      s.counted <- false
    end;
    if s.in_draw then dispatch_dequeue t s
  end
  else remove_from_draw t s

let drop_donations t s =
  if s.donations <> [] then begin
    List.iter (fun (_, ticket) -> F.destroy_ticket t.system ticket) s.donations;
    s.donations <- []
  end

(* Divided transfers (§3.1): each active donation ticket is denominated in
   the source's currency with the same face amount, so k concurrent
   transfers automatically split the source's value k ways — and when one
   is withdrawn the rest re-concentrate. *)
let donate t ~src ~dst =
  let s = state t src in
  let d = state t dst in
  let ticket = F.issue t.system ~currency:s.cur ~amount:competing_amount in
  F.fund t.system ~ticket ~currency:d.cur;
  s.donations <- (dst.id, ticket) :: s.donations

let revoke t ~src = drop_donations t (state t src)

let revoke_from t ~src ~dst =
  let s = state t src in
  match List.assoc_opt dst.id s.donations with
  | None -> ()
  | Some ticket ->
      F.destroy_ticket t.system ticket;
      s.donations <- List.remove_assoc dst.id s.donations

let detach t th =
  match find_state t th with
  | None -> ()
  | Some s ->
      if t.shards > 0 then begin
        if s.counted then begin
          stree_adjust t s.shard (-.s.wlast);
          s.counted <- false
        end;
        if s.in_draw then dispatch_dequeue t s
      end
      else remove_from_draw t s;
      drop_donations t s;
      (* Other threads may still be donating to this one (e.g. blocked
         mutex waiters whose owner dies); clear their references before the
         backing sweep below destroys those tickets. A donation funding
         this thread is by construction a backing ticket of its currency
         denominated in the donor's thread currency, so walking the backing
         edges reaches exactly the donors — O(degree), not a sweep over
         every scheduler state. *)
      List.iter
        (fun b ->
          match find_by_currency t (F.denomination b) with
          | Some donor ->
              donor.donations <-
                List.filter (fun (_, d) -> not (d == b)) donor.donations
          | None -> ())
        (F.backing_tickets t.system s.cur);
      (* Tear down the thread currency: first any tickets still backing it
         (allocations from user currencies), then its issued tickets. *)
      List.iter
        (fun b -> F.destroy_ticket t.system b)
        (F.backing_tickets t.system s.cur);
      let cslot = F.currency_slot s.cur in
      F.destroy_ticket t.system s.competing;
      List.iter
        (fun i -> F.destroy_ticket t.system i)
        (F.issued_tickets t.system s.cur);
      F.remove_currency t.system s.cur;
      if th.tslot >= 0 && th.tslot < Array.length t.st_tab then
        t.st_tab.(th.tslot) <- None;
      if cslot >= 0 && cslot < Array.length t.by_cslot then
        t.by_cslot.(cslot) <- None

let refresh_weights t =
  t.full_refreshes <- t.full_refreshes + 1;
  if t.shards > 0 then
    Array.iter
      (function Some s -> write_weight_sh t s | None -> ())
      t.st_tab
  else
    Array.iter
      (function
        | Some ({ dh = Some h; _ } as s) -> write_weight t s h
        | _ -> ())
      t.st_tab

let drain_pending t f =
  while not (Queue.is_empty t.pending_q) do
    let s = Queue.pop t.pending_q in
    s.in_pending <- false;
    f s
  done

(* Bring the draw in sync with the funding graph: a full rebuild only when
   explicitly requested ({!mark_dirty}), otherwise revalue exactly the
   threads whose currencies the change events dirtied — O(changed), the
   steady-state path. Detached threads may still sit in the queue; their
   [dh] is gone, so they drain as no-ops. *)
let flush_pending t =
  if t.dirty then begin
    refresh_weights t;
    t.dirty <- false;
    drain_pending t (fun _ -> ())
  end
  else if not (Queue.is_empty t.pending_q) then
    if t.shards > 0 then
      drain_pending t (fun s ->
          if s.in_draw then begin
            write_weight_sh t s;
            t.scoped_updates <- t.scoped_updates + 1
          end)
    else
      drain_pending t (fun s ->
          match s.dh with
          | Some h ->
              write_weight t s h;
              t.scoped_updates <- t.scoped_updates + 1
          | None -> ())

(* Unfunded threads never win a lottery (paper: zero tickets = starvation).
   To keep simulations with forgotten funding alive, optionally fall back to
   round-robin among runnable threads when every runnable thread has zero
   weight. The ring holds every runnable thread once; stale entries (threads
   that blocked or exited since being queued) are dropped lazily, so a pick
   is O(1) amortized. *)
let fallback_pick t =
  if not t.quantum_fallback then None
  else begin
    let rec next () =
      match Queue.take_opt t.fallback_q with
      | None -> None
      | Some s ->
          if s.dh = None then begin
            s.in_fq <- false;
            next ()
          end
          else begin
            Queue.push s t.fallback_q;
            s.some
          end
    in
    next ()
  end

(* Sharded fallback: the per-shard round-robin ring, with the one-ring
   invariant's lazy hand-off — an entry whose thread migrated away is
   pushed to its new shard's ring on pop rather than eagerly on migrate. *)
let sh_ring_pick t c =
  if not t.quantum_fallback then None
  else begin
    let rec next () =
      match Queue.take_opt t.srings.(c) with
      | None -> None
      | Some s ->
          if not s.in_draw then begin
            (* blocked, dispatched or dead: drop; re-enqueue re-rings it *)
            s.in_fq <- false;
            next ()
          end
          else if s.shard <> c then begin
            Queue.push s t.srings.(s.shard);
            s.ring_of <- s.shard;
            next ()
          end
          else begin
            Queue.push s t.srings.(c);
            Some s
          end
    in
    next ()
  end

let fire_draw_hook t =
  match t.draw_hook with
  | None -> ()
  | Some hook ->
      if t.shards > 0 then begin
        let n = ref 0 in
        for i = 0 to t.shards - 1 do
          n := !n + D.size t.sdraws.(i)
        done;
        hook ~runnable:!n ~total_weight:(Sh.total t.stree)
      end
      else hook ~runnable:(D.size t.draw) ~total_weight:(D.total t.draw)

let select t =
  t.draws <- t.draws + 1;
  (match t.profiler with
  | None ->
      flush_pending t;
      fire_draw_hook t
  | Some p ->
      let t0 = Lotto_obs.Profile.start p in
      flush_pending t;
      Lotto_obs.Profile.stop p Lotto_obs.Profile.Valuation t0;
      fire_draw_hook t);
  (* Slot-based draw: the winner comes back as an int token and resolves to
     the tstate's preallocated [Some th] — no option or handle wrapper is
     built per decision. *)
  match t.profiler with
  | None ->
      let w = D.draw_slot t.draw t.rng in
      if w >= 0 then (D.client_at t.draw w).some else fallback_pick t
  | Some p ->
      let t0 = Lotto_obs.Profile.start p in
      let w = D.draw_slot t.draw t.rng in
      Lotto_obs.Profile.stop p Lotto_obs.Profile.Draw t0;
      if w >= 0 then (D.client_at t.draw w).some else fallback_pick t

(* One scheduling decision for virtual CPU [cpu] = shard [cpu]. The local
   draw is consulted first; an empty (or unfunded) shard tries a ticket-
   weighted steal, then its fallback ring. Whatever is returned is
   dequeued for the duration of its slice, so no other CPU of the same
   kernel round can dispatch it. *)
let select_sharded t ~cpu =
  t.draws <- t.draws + 1;
  (match t.profiler with
  | None ->
      flush_pending t;
      fire_draw_hook t
  | Some p ->
      let t0 = Lotto_obs.Profile.start p in
      flush_pending t;
      Lotto_obs.Profile.stop p Lotto_obs.Profile.Valuation t0;
      fire_draw_hook t);
  if t.migration_enabled && t.shards > 1 then rebalance t;
  let d = t.sdraws.(cpu) in
  let w =
    match t.profiler with
    | None -> D.draw_slot d t.rng
    | Some p ->
        let t0 = Lotto_obs.Profile.start p in
        let w = D.draw_slot d t.rng in
        Lotto_obs.Profile.stop p Lotto_obs.Profile.Draw t0;
        w
  in
  if w >= 0 then begin
    let s = D.client_at d w in
    dispatch_dequeue t s;
    s.some
  end
  else begin
    match steal t ~dst:cpu with
    | Some s ->
        dispatch_dequeue t s;
        s.some
    | None -> (
        match sh_ring_pick t cpu with
        | Some s ->
            dispatch_dequeue t s;
            s.some
        | None -> None)
  end

let account t th ~used:_ ~quantum:_ ~blocked:_ =
  if t.shards > 0 then begin
    (* The dispatched thread was dequeued at selection; put it back (with
       a freshness-checked weight) if its slice left it runnable. Blocked
       and exited threads were already handled by unready/detach. *)
    match find_state t th with
    | Some s when th.state = Runnable -> sh_enqueue t s
    | _ -> ()
  end
  else
  (* The thread's compensation factor was reset when its quantum started
     and possibly re-set when it blocked; refresh its draw weight so the
     next draw sees the current value. The fresh value is compared against
     the cached copy of the last write first: for a compute-bound thread on
     a quiescent funding graph nothing changed, and skipping [set_weight]
     keeps the comparison float unboxed (the cross-module call would box
     it). Skipping is exact, not approximate — a weight delta of zero
     leaves every backend bit-identical. *)
  if not t.dirty then begin
    match find_state t th with
    | Some ({ dh = Some h; _ } as s) ->
        (* Each input is compared against an existing box (the funding
           valuation cache, the thread's compensate field), so the
           quiescent path computes no fresh float at all. Skipping the
           write when both inputs match is exact: the product could not
           have changed. *)
        if
          F.currency_value t.system s.cur <> t.wcache.(th.tslot)
          || factor t s <> t.ccache.(th.tslot)
        then write_weight t s h
    | _ -> ()
  end

(* Lottery among blocked waiters (paper §6.1), weighted by each waiter's
   own funding. A waiter's thread currency is inactive while it blocks (its
   competing ticket is suspended, and condition/semaphore waiters donate to
   nobody), so we weigh its *potential* value: the sum of its backing
   tickets at current exchange rates — exactly what the waiter would be
   worth the moment it wakes. *)
let potential_value t v (s : tstate) =
  List.fold_left
    (fun acc b ->
      acc
      +. (float_of_int (F.amount b) *. F.Valuation.unit_value v (F.denomination b)))
    0.
    (F.backing_tickets t.system s.cur)

(* The pick goes through the same draw backend as the CPU lottery: the
   scheduler's scratch structure over the waiters, weighted by potential
   value and cleared again by the next pick. The list backend prepends, so
   waiters are inserted back-to-front to keep the scan in arrival order
   (matching the historical walk) without allocating a reversed list. *)
let pick_waiter t waiters =
  let v = F.Valuation.make t.system in
  let d = t.scratch in
  D.clear d;
  let insert w =
    ignore (D.add d ~client:w ~weight:(potential_value t v (state t w)))
  in
  (match t.mode with
  | Tree_mode | Cumul_mode | Alias_mode -> List.iter insert waiters
  | List_mode ->
      let rec back_to_front = function
        | [] -> ()
        | w :: rest ->
            back_to_front rest;
            insert w
      in
      back_to_front waiters);
  let s = D.draw_slot d t.rng in
  if s < 0 then None else Some (D.client_at d s)

let sched t =
  {
    sched_name =
      (match t.mode with
      | List_mode -> "lottery-list"
      | Tree_mode -> "lottery-tree"
      | Cumul_mode -> "lottery-cumul"
      | Alias_mode -> "lottery-alias");
    attach = attach t;
    detach = detach t;
    ready = ready t;
    unready = unready t;
    smp_ok = t.shards > 0;
    select =
      (if t.shards > 0 then fun ~cpu -> select_sharded t ~cpu
       else fun ~cpu:_ -> select t);
    account = (fun th ~used ~quantum ~blocked -> account t th ~used ~quantum ~blocked);
    donate = (fun ~src ~dst -> donate t ~src ~dst);
    revoke = (fun ~src -> revoke t ~src);
    revoke_from = (fun ~src ~dst -> revoke_from t ~src ~dst);
    pick_waiter = (fun ws -> pick_waiter t ws);
  }

let set_draw_hook t hook = t.draw_hook <- hook
let set_profiler t p = t.profiler <- p

(* --- auditable introspection -------------------------------------------- *)

(* Read-only: must go through [find_state], never [state], which would
   resurrect a currency for a detached (dead) thread. *)
let donation_targets t th =
  match find_state t th with
  | None -> []
  | Some s -> List.map fst s.donations

let check_funding_coherence t threads =
  let out = ref [] in
  let vf fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  List.iter
    (fun th ->
      let sched_side = List.sort compare (donation_targets t th) in
      let kernel_side =
        List.sort compare (List.map (fun (d : thread) -> d.id) th.donating_to)
      in
      if sched_side <> kernel_side then
        vf "%s: kernel donating_to [%s] but scheduler holds transfers to [%s]"
          th.name
          (String.concat ";" (List.map string_of_int kernel_side))
          (String.concat ";" (List.map string_of_int sched_side)))
    threads;
  (* The kernel's thread list is live-only, so dead threads with leftover
     funding state can't be caught from [threads]; sweep our own table. A
     healthy detach clears the entry at death, so any surviving zombie (or
     slot/thread disagreement) is a leak. *)
  Array.iteri
    (fun i entry ->
      match entry with
      | Some s when s.th.state = Zombie ->
          vf "%s: dead thread still has scheduler funding state" s.th.name
      | Some s when s.th.tslot <> i ->
          vf "%s: scheduler state at slot %d but thread slot is %d" s.th.name i
            s.th.tslot
      | _ -> ())
    t.st_tab;
  (match F.check_invariants t.system with
  | () -> ()
  | exception Failure msg -> vf "funding graph: %s" msg);
  List.rev !out

let thread_entitlement t th =
  let v = F.Valuation.make t.system in
  potential_value t v (state t th)

let draws t = t.draws
let full_refreshes t = t.full_refreshes
let scoped_weight_updates t = t.scoped_updates
let list_comparisons t = D.comparisons t.draw
let runnable_count t =
  if t.shards > 0 then begin
    let n = ref 0 in
    for i = 0 to t.shards - 1 do
      n := !n + D.size t.sdraws.(i)
    done;
    !n
  end
  else D.size t.draw

(* --- sharding introspection and control ---------------------------------- *)

let shards t = t.shards
let migrations t = t.migrations
let steals t = t.steals
let set_migration_enabled t b = t.migration_enabled <- b
let set_placement_hook t h = t.placement_hook <- h

let shard_of t th =
  match find_state t th with
  | Some s when t.shards > 0 -> s.shard
  | _ -> -1

let shard_ticket_mass t i =
  if t.shards <= 0 || i < 0 || i >= t.shards then
    invalid_arg "Lottery_sched.shard_ticket_mass: bad shard";
  Sh.get t.stree i

let force_migrate t th ~dst =
  if t.shards <= 0 then invalid_arg "Lottery_sched.force_migrate: not sharded";
  if dst < 0 || dst >= t.shards then
    invalid_arg "Lottery_sched.force_migrate: bad shard";
  match find_state t th with
  | Some s when s.shard >= 0 -> migrate t s ~dst
  | _ -> ()

(* Cross-checks the sharded bookkeeping: every live tstate sits in exactly
   the shard draw it claims ([D.mem] there and nowhere else), every shard-
   tree leaf matches the sum of [wlast] over the tstates counted into it
   (relative epsilon — the leaf is maintained by incremental float deltas),
   and flag coherence (in_draw implies counted implies placed). Read-only;
   safe between any two slices. *)
let check_sharding t =
  if t.shards <= 0 then []
  else begin
    let out = ref [] in
    let vf fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
    let sums = Array.make t.shards 0. in
    Array.iter
      (function
        | None -> ()
        | Some s ->
            if s.in_draw && not s.counted then
              vf "%s: in a shard draw but not counted in the shard tree"
                s.th.name;
            if s.counted && (s.shard < 0 || s.shard >= t.shards) then
              vf "%s: counted but shard id %d out of range" s.th.name s.shard;
            if s.counted && s.shard >= 0 && s.shard < t.shards then
              sums.(s.shard) <- sums.(s.shard) +. s.wlast;
            (match s.dh with
            | Some h ->
                for i = 0 to t.shards - 1 do
                  let here = D.mem t.sdraws.(i) h in
                  if s.in_draw && i = s.shard && not here then
                    vf "%s: claims shard %d but its handle is not there"
                      s.th.name s.shard;
                  if here && (not s.in_draw || i <> s.shard) then
                    vf "%s: handle live in shard %d (claims %s)" s.th.name i
                      (if s.in_draw then string_of_int s.shard else "none")
                done
            | None ->
                if s.in_draw then
                  vf "%s: in_draw set but no draw handle" s.th.name))
      t.st_tab;
    for i = 0 to t.shards - 1 do
      let leaf = Sh.get t.stree i in
      let scale = max 1. (max (abs_float leaf) (abs_float sums.(i))) in
      if abs_float (leaf -. sums.(i)) > 1e-6 *. scale then
        vf "shard %d: tree mass %.9g but counted tstates sum to %.9g" i leaf
          sums.(i)
    done;
    List.rev !out
  end
