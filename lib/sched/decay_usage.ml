open Lotto_sim.Types

type tstate = {
  th : thread;
  mutable usage : float;
  mutable updated_at : int; (* virtual time of last decay application *)
  mutable runnable : bool;
  mutable seq : int;
}

type t = {
  states : (int, tstate) Hashtbl.t;
  half_life : float;
  mutable clock : int; (* advanced via account calls *)
  mutable next_seq : int;
}

let create ?(half_life = Lotto_sim.Time.seconds 2) () =
  if half_life <= 0 then invalid_arg "Decay_usage.create: half_life <= 0";
  {
    states = Hashtbl.create 32;
    half_life = float_of_int half_life;
    clock = 0;
    next_seq = 0;
  }

let state t th =
  match Hashtbl.find_opt t.states th.id with
  | Some s -> s
  | None ->
      let s = { th; usage = 0.; updated_at = t.clock; runnable = false; seq = 0 } in
      Hashtbl.replace t.states th.id s;
      s

let decay t s =
  let dt = t.clock - s.updated_at in
  if dt > 0 then begin
    s.usage <- s.usage *. (0.5 ** (float_of_int dt /. t.half_life));
    s.updated_at <- t.clock
  end

let usage t th =
  let s = state t th in
  decay t s;
  s.usage

let mark_ready t th =
  let s = state t th in
  if not s.runnable then begin
    s.runnable <- true;
    s.seq <- t.next_seq;
    t.next_seq <- t.next_seq + 1
  end

let mark_unready t th = (state t th).runnable <- false

let detach t th = Hashtbl.remove t.states th.id

let select t =
  let best = ref None in
  Hashtbl.iter
    (fun _ s ->
      if s.runnable then begin
        decay t s;
        match !best with
        | None -> best := Some s
        | Some b ->
            if s.usage < b.usage || (s.usage = b.usage && s.seq < b.seq) then
              best := Some s
      end)
    t.states;
  Option.map (fun s -> s.th) !best

let account t th ~used ~quantum:_ ~blocked:_ =
  t.clock <- t.clock + used;
  let s = state t th in
  decay t s;
  s.usage <- s.usage +. float_of_int used

let sched t =
  {
    sched_name = "decay-usage";
    attach = mark_ready t;
    detach = detach t;
    ready = mark_ready t;
    unready = mark_unready t;
    smp_ok = false;
    select = (fun ~cpu:_ -> select t);
    account = (fun th ~used ~quantum ~blocked -> account t th ~used ~quantum ~blocked);
    donate = (fun ~src:_ ~dst:_ -> ());
    revoke = (fun ~src:_ -> ());
    revoke_from = (fun ~src:_ ~dst:_ -> ());
    pick_waiter = (fun _ -> None);
  }
