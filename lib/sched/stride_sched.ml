open Lotto_sim.Types

let stride1 = 1 lsl 20 |> float_of_int

type tstate = {
  th : thread;
  mutable tickets : int;
  mutable pass : float;
  mutable remain : float; (* pass headroom saved when leaving the queue *)
  mutable runnable : bool;
  mutable seq : int;
}

type t = {
  states : (int, tstate) Hashtbl.t;
  mutable global_pass : float;
  mutable next_seq : int;
}

let create () = { states = Hashtbl.create 32; global_pass = 0.; next_seq = 0 }

let stride s = stride1 /. float_of_int s.tickets

let state t th =
  match Hashtbl.find_opt t.states th.id with
  | Some s -> s
  | None ->
      let s = { th; tickets = 1; pass = 0.; remain = 0.; runnable = false; seq = 0 } in
      Hashtbl.replace t.states th.id s;
      s

let set_tickets t th n =
  if n <= 0 then invalid_arg "Stride_sched.set_tickets: nonpositive";
  let s = state t th in
  (* Rescale remaining pass so a ticket change takes effect smoothly, as in
     the stride-scheduling client-modification rule. *)
  let done_frac = (s.pass -. t.global_pass) /. stride s in
  s.tickets <- n;
  s.pass <- t.global_pass +. (done_frac *. stride s)

let tickets t th = (state t th).tickets
let pass t th = (state t th).pass

let mark_ready t th =
  let s = state t th in
  if not s.runnable then begin
    s.runnable <- true;
    s.seq <- t.next_seq;
    t.next_seq <- t.next_seq + 1;
    (* rejoin at the global pass plus saved headroom: blocked threads don't
       accumulate credit *)
    s.pass <- t.global_pass +. s.remain
  end

let mark_unready t th =
  let s = state t th in
  if s.runnable then begin
    s.runnable <- false;
    s.remain <- max 0. (s.pass -. t.global_pass)
  end

let detach t th = Hashtbl.remove t.states th.id

let select t =
  let best = ref None in
  Hashtbl.iter
    (fun _ s ->
      if s.runnable then
        match !best with
        | None -> best := Some s
        | Some b ->
            if s.pass < b.pass || (s.pass = b.pass && s.seq < b.seq) then
              best := Some s)
    t.states;
  match !best with
  | None -> None
  | Some s ->
      t.global_pass <- s.pass;
      Some s.th

let account t th ~used ~quantum ~blocked:_ =
  let s = state t th in
  s.pass <- s.pass +. (stride s *. float_of_int used /. float_of_int quantum)

let sched t =
  {
    sched_name = "stride";
    attach = mark_ready t;
    detach = detach t;
    ready = mark_ready t;
    unready = mark_unready t;
    smp_ok = false;
    select = (fun ~cpu:_ -> select t);
    account = (fun th ~used ~quantum ~blocked -> account t th ~used ~quantum ~blocked);
    donate = (fun ~src:_ ~dst:_ -> ());
    revoke = (fun ~src:_ -> ());
    revoke_from = (fun ~src:_ ~dst:_ -> ());
    pick_waiter = (fun _ -> None);
  }
