(** The lottery scheduler (paper Sections 2–4).

    Each simulated thread gets its own {e thread currency}; the thread
    competes with a single ticket issued in that currency, and all funding
    reaches it by backing that currency with tickets denominated in user
    currencies (or in base). This realizes the paper's kernel objects
    (Figure 2/3) directly:

    - {e ticket transfers} (§3.1, §4.6): when the kernel reports that a
      blocked thread should fund another, a ticket denominated in the
      blocked thread's currency is issued and funds the target's currency,
      while the blocked thread's own competing ticket is inactive — so the
      full value moves, transitively through chains of blocked threads;
    - {e ticket inflation} (§3.2): {!set_ticket_amount} adjusts any funding
      ticket, contained within its currency;
    - {e compensation tickets} (§3.4, §4.5): the kernel maintains a
      [quantum/used] factor on threads that block early, which this
      scheduler multiplies into their draw weight;
    - {e lottery-scheduled mutexes} (§6.1): [pick_waiter] draws among a
      mutex's waiters weighted by their currency values.

    Draws use the paper's move-to-front list (O(n)), the partial-sum tree
    (O(log n)), the flat cumulative-sum array (O(log n), allocation-free
    when quiescent), or the Walker/Vose alias method (O(1) draw); all
    produce identically distributed winners. *)

type t
type mode = List_mode | Tree_mode | Cumul_mode | Alias_mode

val create :
  ?mode:mode ->
  ?quantum_fallback:bool ->
  ?use_compensation:bool ->
  ?shards:int ->
  ?imbalance_band:float ->
  rng:Lotto_prng.Rng.t ->
  unit ->
  t
(** [mode] defaults to [List_mode] (the paper's prototype).
    [quantum_fallback] (default [true]) lets completely unfunded threads run
    round-robin when no funded thread is runnable, instead of deadlocking
    the simulation. [use_compensation] (default [true]) applies the
    kernel's compensation-ticket factor to draw weights; disabling it
    reproduces the paper's §4.5 counterexample where an I/O-bound thread
    receives far less than its entitled share.

    [shards] (default [0] = unsharded) turns on the multi-CPU mode: one
    draw structure per shard, shard [i] serving virtual CPU [i], with
    threads placed on the least-loaded shard (ticket-weighted), rebalanced
    when a shard's ticket mass deviates from the [1/shards] ideal by more
    than [imbalance_band] (default [0.25], a fraction of the ideal), and
    stolen from a ticket-weighted random victim when a CPU's own shard has
    nothing runnable. A sharded scheduler declares
    {!Lotto_sim.Types.sched.smp_ok} and dequeues the winner on dispatch, so
    it also works (and is byte-stable) on a 1-CPU kernel with [shards = 1].
    Raises [Invalid_argument] when [shards < 0] or [imbalance_band <= 0]. *)

val sched : t -> Lotto_sim.Types.sched

(** {1 Currencies and funding}

    Draw weights track the funding graph through
    {!Lotto_tickets.Funding.on_change}, so mutations made directly on the
    underlying {!funding} system are picked up too; {!mark_dirty} remains
    only as an explicit escape hatch. *)

val funding : t -> Lotto_tickets.Funding.system
val base_currency : t -> Lotto_tickets.Funding.currency

val make_currency : t -> string -> Lotto_tickets.Funding.currency
(** A named user currency (raises [Funding.Duplicate_name] on clash). *)

val fund_currency :
  t ->
  target:Lotto_tickets.Funding.currency ->
  amount:int ->
  from:Lotto_tickets.Funding.currency ->
  Lotto_tickets.Funding.ticket
(** Issue a ticket of [amount] denominated in [from] and back [target]
    with it — e.g. [fund_currency t ~target:alice ~amount:200 ~from:base]
    is the paper's "alice = 200.base". *)

val fund_thread :
  t ->
  Lotto_sim.Types.thread ->
  amount:int ->
  from:Lotto_tickets.Funding.currency ->
  Lotto_tickets.Funding.ticket
(** Back a thread's currency, e.g. "thread1 = 100.alice". *)

val set_ticket_amount : t -> Lotto_tickets.Funding.ticket -> int -> unit
(** Ticket inflation / deflation. *)

val destroy_ticket : t -> Lotto_tickets.Funding.ticket -> unit

val thread_currency : t -> Lotto_sim.Types.thread -> Lotto_tickets.Funding.currency
(** The thread's private currency (created when the scheduler first sees
    the thread). *)

val thread_value : t -> Lotto_sim.Types.thread -> float
(** Current draw weight in base units (funding value times any outstanding
    compensation factor). *)

val mark_dirty : t -> unit
(** Force weight recomputation before the next draw. *)

(** {1 Introspection} *)

val thread_entitlement : t -> Lotto_sim.Types.thread -> float
(** The base-unit value of the thread's backing tickets at current
    exchange rates, whether or not the thread is currently runnable — the
    share it is {e entitled} to whenever it competes. Unlike
    {!thread_value} this does not drop to zero while the thread blocks,
    making it the right yardstick for observed-vs-entitled fairness
    gauges (e.g. {!Lotto_obs.Metrics.fairness}). *)

val set_draw_hook : t -> (runnable:int -> total_weight:float -> unit) option -> unit
(** Install an observability probe fired once per lottery, just before the
    winning ticket is drawn, with the runnable-client count and the total
    active weight. Used to instrument draw cost and contention; [None]
    removes it. *)

val set_profiler : t -> Lotto_obs.Profile.t option -> unit
(** Install (or clear) a scheduler phase profiler: each [select] records
    its {e valuation} phase (flushing dirtied weights into the draw) and
    its {e draw} phase (picking the winner) host-clock cost. Pair with
    {!Lotto_sim.Kernel.set_profiler} on the same profiler so all four
    phases land in one report. With no profiler the cost is one branch per
    select. *)

val donation_targets : t -> Lotto_sim.Types.thread -> int list
(** Thread ids currently receiving a transfer ticket from [th], one entry
    per live donation (a divided transfer lists each target once per
    share). Read-only: does not create funding state for unknown or dead
    threads, so it is safe to call on zombies. *)

val check_funding_coherence : t -> Lotto_sim.Types.thread list -> string list
(** Audit the scheduler's funding view against the kernel's: each thread's
    {!Lotto_sim.Types.thread.donating_to} list must match the transfer
    tickets this scheduler holds for it (as multisets of target ids), dead
    threads must hold no scheduler state, and the underlying funding graph
    must pass {!Lotto_tickets.Funding.check_invariants}. Returns one
    string per violation; empty means coherent. Runs read-only between
    slices; composed with {!Lotto_sim.Kernel.check_invariants} by the
    {!Lotto_chaos} auditor. *)

val draws : t -> int
(** Lotteries held so far. *)

val full_refreshes : t -> int
(** Times every runnable thread's weight was recomputed (only after
    {!mark_dirty}). Steady-state scheduling should keep this at zero: the
    scoped change events from {!Lotto_tickets.Funding.on_change} let the
    scheduler revalue only the threads a mutation actually touched. *)

val scoped_weight_updates : t -> int
(** Cumulative per-thread weight writes on the incremental path: weights
    computed when a thread (re)enters the draw, plus flushes of scoped
    change events for threads already in it. A block/wake of one
    base-funded thread costs exactly one of these — the insert-time write
    at wake — independent of how many threads exist. *)

val list_comparisons : t -> int option
(** Cumulative list-entries examined ([None] in tree mode): the paper's
    search-length metric for the move-to-front heuristic. *)

val runnable_count : t -> int

(** {1 Sharded (multi-CPU) mode}

    All of the following are meaningful only when [create] was given
    [shards > 0]; on an unsharded scheduler the accessors return [0] /
    [-1] / [[]] and {!force_migrate} raises. *)

val shards : t -> int
(** Number of shards ([0] when unsharded). *)

val shard_of : t -> Lotto_sim.Types.thread -> int
(** The shard the thread is currently placed on; [-1] if the scheduler
    has no state for it (or is unsharded). A dispatched thread keeps its
    shard id for the duration of its slice. *)

val shard_ticket_mass : t -> int -> float
(** Ticket mass currently assigned to a shard (runnable-in-draw plus
    dispatched; blocked threads carry no mass). Raises on a bad index or
    an unsharded scheduler. *)

val migrations : t -> int
(** Threads moved between shards so far (rebalancing, stealing and
    {!force_migrate} all count). *)

val steals : t -> int
(** Work-steals: migrations triggered by a CPU whose own shard had
    nothing runnable. *)

val set_migration_enabled : t -> bool -> unit
(** Turn rebalancing and stealing off (or back on, the default). With
    migration disabled, placement is final — used by the equivalence
    tests that pin every thread to one shard. *)

val set_placement_hook : t -> (Lotto_sim.Types.thread -> int) option -> unit
(** Override initial placement: called once per thread when it first
    becomes runnable; a return out of [0..shards-1] falls back to the
    default least-loaded choice. *)

val force_migrate : t -> Lotto_sim.Types.thread -> dst:int -> unit
(** Move a thread to shard [dst] immediately (no-op when already there or
    when the scheduler holds no state for it). O(1) detach, O(log n)
    re-insert, zero allocation in the steady state — the bench hook for
    measuring migration cost. Raises on an unsharded scheduler or a bad
    [dst]. *)

val check_sharding : t -> string list
(** Audit sharded bookkeeping: each runnable thread's draw handle is live
    in exactly the shard it claims, each shard-tree leaf matches the
    ticket mass of the threads counted into it (relative epsilon — leaves
    are maintained incrementally), and the in-draw/counted flags are
    coherent. Returns one string per violation; empty means healthy (and
    always empty on an unsharded scheduler). Read-only between slices;
    composed with the kernel and funding audits by the {!Lotto_chaos}
    auditor. *)
