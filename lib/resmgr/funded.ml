(* Currency funding glue shared by the resource managers.

   A funded client competes in its resource's lotteries exactly like a
   thread competes for the CPU: it holds a ticket issued in the funding
   currency, so the currency's value is divided among everything it funds
   (CPU threads, disk clients, circuits, ...) in proportion to face
   amounts, and inflating a backing ticket shifts every resource at once.
   Managers suspend the held ticket while the client has no queued work, so
   an idle stream's rights re-concentrate into the currency's other
   consumers (the paper's lightly-contended-resource property, applied
   across resources). *)

module F = Lotto_tickets.Funding

type t = { sys : F.system; ticket : F.ticket }

let attach sys ~currency ~amount =
  if amount <= 0 then invalid_arg "Funded.attach: amount <= 0";
  let ticket = F.issue sys ~currency ~amount in
  F.hold sys ticket;
  { sys; ticket }

(* Activate/deactivate the competing ticket (idempotent). *)
let set_active fd active =
  if active then F.resume fd.sys fd.ticket else F.suspend fd.sys fd.ticket

let value valuation fd = F.Valuation.ticket_value valuation fd.ticket
let currency fd = F.denomination fd.ticket
let detach fd = F.destroy_ticket fd.sys fd.ticket

(* Scoped change tracking shared by the managers: accumulate the currency
   ids dirtied by funding mutations so the manager can revalue only the
   clients funded by those currencies (O(dirtied)) instead of walking its
   whole client list on every draw. *)
module Tracker = struct
  type t = { pending : (int, unit) Hashtbl.t; mutable full : bool }

  let attach sys =
    let tr = { pending = Hashtbl.create 16; full = false } in
    ignore
      (F.on_change sys (fun ch ->
           List.iter
             (fun c -> Hashtbl.replace tr.pending (F.currency_id c) ())
             (F.changed ch)));
    tr

  let force tr = tr.full <- true

  let drain tr =
    if tr.full then begin
      tr.full <- false;
      Hashtbl.reset tr.pending;
      `All
    end
    else if Hashtbl.length tr.pending = 0 then `None
    else begin
      let cids = Hashtbl.fold (fun cid () acc -> cid :: acc) tr.pending [] in
      Hashtbl.reset tr.pending;
      `Dirtied cids
    end
end
