(** Lottery-scheduled disk bandwidth (paper §6 and footnote 7: "a
    disk-based database could use lotteries to schedule disk bandwidth").

    A single disk arm serves requests addressed to cylinders. Service time
    is a seek proportional to the distance travelled plus a fixed
    rotation+transfer cost. Three head-scheduling policies:

    - [Fcfs]: first come, first served — fair in arrival order, terrible
      seeks;
    - [Sstf]: shortest seek time first — maximum throughput, starves
      distant requests and ignores resource rights entirely;
    - [Lottery]: pick the {e client} by ticket lottery, then serve that
      client's request nearest the head — proportional-share bandwidth with
      locally good seeks, the paper's proposal.

    Lottery draws go through {!Lotto_draw.Draw} ([?backend] selects the
    structure) over clients with queued requests; clients hold either raw
    tickets ({!add_client}) or a share of a
    {!Lotto_tickets.Funding.currency} ({!add_funded_client}), so one
    currency can proportionally fund CPU {e and} disk.

    Time is virtual (integer ticks); the module is deterministic given its
    RNG. *)

type policy = Fcfs | Sstf | Lottery

type t
type client

val create :
  ?policy:policy ->
  ?cylinders:int ->
  ?seek_cost:int ->
  ?transfer_cost:int ->
  ?backend:Lotto_draw.Draw.mode ->
  ?batch:bool ->
  ?funding:Lotto_tickets.Funding.system ->
  rng:Lotto_prng.Rng.t ->
  unit ->
  t
(** Defaults: [Lottery] policy, 1000 cylinders, seek cost 10 ticks per
    cylinder, fixed per-request cost 2000 ticks, [List] draw backend.
    [funding] is required for {!add_funded_client} and is typically the
    scheduler's {!Lottery_sched.funding} system.

    [batch] (default [true]) refills the winner queue through
    {!Lotto_draw.Draw.draw_k}: up to 64 lottery winners are pre-drawn in
    one batch — paying any lazy draw-table rebuild once per batch instead
    of once per serve — and consumed in draw order, each still serving its
    own nearest request (the elevator move). A generation counter guards
    the batch: any positive weight write (a new backlog, ticket or funding
    movement) discards the unserved tail, while a client whose weight
    dropped to zero (its queue drained) is merely skipped at consume time
    — for independent with-replacement draws that conditioning is exactly
    the redraw distribution, so proportional share is preserved slot by
    slot. The discarded draws consume randomness, so the RNG stream
    differs from [~batch:false] service; the per-slot winner distribution
    is identical. *)

val policy : t -> policy
val add_client : t -> name:string -> tickets:int -> client

val add_funded_client :
  t ->
  name:string ->
  ?amount:int ->
  currency:Lotto_tickets.Funding.currency ->
  unit ->
  client
(** The client competes with a held ticket of [amount] (default 1000)
    denominated in [currency]: its bandwidth share follows the currency's
    value, divided among everything the currency funds, and the ticket is
    suspended while the client has no queued requests. Raises
    [Invalid_argument] when the manager was created without [~funding]. *)

val set_tickets : t -> client -> int -> unit
(** Raw-ticket clients only (ignored weight-wise for funded clients —
    inflate their currency's backing tickets instead). *)

val client_name : client -> string

val submit : t -> client -> cylinder:int -> unit
(** Queue one request. Raises [Invalid_argument] for cylinders outside
    [\[0, cylinders)]. *)

val pending : t -> client -> int

val serve_one : t -> client option
(** Serve the next request per the policy; advances the virtual clock by
    the seek + transfer time. [None] if no requests are queued. *)

val serve_for : t -> ticks:int -> unit
(** Serve until the virtual clock has advanced at least [ticks] (or the
    queues drain). *)

val now : t -> int
(** Virtual disk time consumed so far. *)

val served : t -> client -> int
val total_served : t -> int
val mean_latency : t -> client -> float
(** Mean ticks between submission and completion; [nan] before the first
    completion. *)

val total_seek_distance : t -> int
(** Cylinders travelled — the throughput-versus-fairness cost of the
    policy. *)

val head_position : t -> int

val events : t -> Lotto_obs.Bus.t
(** Per-manager bus carrying one {!Lotto_obs.Event.Resource_draw} per
    lottery held (timestamped with the virtual clock). *)
