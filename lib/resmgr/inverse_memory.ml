module Rng = Lotto_prng.Rng
module Draw = Lotto_draw.Draw
module F = Lotto_tickets.Funding
module Obs = Lotto_obs

type policy = Inverse_lottery | Global_lru | Global_random

type client = {
  id : int;
  name : string;
  mutable tickets : int;
  mutable value : float; (* share basis: raw tickets or currency value *)
  funding : Funded.t option;
  mutable handle : client Draw.handle option;
  working_set : int;
  resident : (int, int) Hashtbl.t; (* vpage -> last-use stamp *)
  mutable faults : int;
  mutable accesses : int;
  mutable evictions : int;
}

type t = {
  pol : policy;
  frames : int;
  rng : Rng.t;
  draw : client Draw.t; (* victim lottery (unused under Global_lru) *)
  fsys : F.system option;
  ftrack : Funded.Tracker.t option;
  by_cid : (int, client) Hashtbl.t; (* funding-currency id -> clients *)
  bus : Obs.Bus.t;
  mutable clients : client list; (* reverse creation order *)
  mutable used : int;
  mutable clock : int; (* LRU stamp source *)
  mutable next_id : int;
  mutable total_value : float; (* cached T for the (1 - t_i/T) factor *)
  mutable wdirty : bool; (* T moved: every inverse weight needs a rebuild *)
}

let create ?(policy = Inverse_lottery) ?(backend = Draw.List) ?funding ~frames
    ~rng () =
  if frames <= 0 then invalid_arg "Inverse_memory.create: frames <= 0";
  {
    pol = policy;
    frames;
    rng;
    draw = Draw.of_mode backend;
    fsys = funding;
    ftrack = Option.map Funded.Tracker.attach funding;
    by_cid = Hashtbl.create 16;
    bus = Obs.Bus.create ();
    clients = [];
    used = 0;
    clock = 0;
    next_id = 0;
    total_value = 0.;
    wdirty = false;
  }

let policy t = t.pol
let events t = t.bus

(* The paper's victim-selection weight: (1 - t_i/T) scaled by the fraction
   of physical memory the client occupies. Clients holding no frames cannot
   lose. *)
let weight_of t c =
  let occ = Hashtbl.length c.resident in
  match t.pol with
  | Global_lru -> 0.
  | Global_random -> float_of_int occ (* uniform over resident frames *)
  | Inverse_lottery ->
      if occ = 0 then 0.
      else begin
        let ticket_part =
          if t.total_value <= 0. then 1. else 1. -. (c.value /. t.total_value)
        in
        let occupancy = float_of_int occ /. float_of_int t.frames in
        (* A lone over-provisioned client (t_i = T) still has to self-evict. *)
        Float.max ticket_part 1e-9 *. occupancy
      end

let update_weight t c =
  match c.handle with
  | Some h -> Draw.set_weight t.draw h (weight_of t c)
  | None -> ()

(* Funded values are revalued per dirtied currency (scoped change events),
   but the inverse factor (1 - t_i/T) couples every weight to the total T:
   whenever any share actually moved — or membership/tickets changed — T and
   all weights are rebuilt. That rebuild is O(clients) float work with no
   funding-graph walks; while shares are quiescent, victim picks skip it
   entirely. *)
let refresh t =
  (match (t.fsys, t.ftrack) with
  | Some sys, Some tr -> (
      let v = F.Valuation.make sys in
      let revalue c =
        match c.funding with
        | Some fd ->
            let value = Funded.value v fd in
            if value <> c.value then begin
              c.value <- value;
              t.wdirty <- true
            end
        | None -> ()
      in
      match Funded.Tracker.drain tr with
      | `None -> ()
      | `All -> List.iter revalue t.clients
      | `Dirtied cids ->
          List.iter
            (fun cid -> List.iter revalue (Hashtbl.find_all t.by_cid cid))
            cids)
  | _ -> ());
  if t.wdirty then begin
    t.wdirty <- false;
    t.total_value <- List.fold_left (fun acc c -> acc +. c.value) 0. t.clients;
    List.iter (fun c -> update_weight t c) t.clients
  end

let register t c =
  c.handle <- Some (Draw.add t.draw ~client:c ~weight:0.);
  t.clients <- c :: t.clients;
  t.wdirty <- true

let add_client t ~name ~tickets ~working_set =
  if tickets < 0 then invalid_arg "Inverse_memory.add_client: negative tickets";
  if working_set <= 0 then invalid_arg "Inverse_memory.add_client: working_set <= 0";
  let c =
    {
      id = t.next_id;
      name;
      tickets;
      value = float_of_int tickets;
      funding = None;
      handle = None;
      working_set;
      resident = Hashtbl.create 64;
      faults = 0;
      accesses = 0;
      evictions = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  register t c;
  c

let add_funded_client t ~name ?(amount = 1000) ~working_set ~currency () =
  if working_set <= 0 then
    invalid_arg "Inverse_memory.add_funded_client: working_set <= 0";
  let sys =
    match t.fsys with
    | Some sys -> sys
    | None -> invalid_arg "Inverse_memory.add_funded_client: created without ~funding"
  in
  (* Memory rights stay active even while the client isn't faulting — it
     holds frames the whole time, unlike an idle I/O stream. *)
  let fd = Funded.attach sys ~currency ~amount in
  let c =
    {
      id = t.next_id;
      name;
      tickets = 0;
      value = Funded.value (F.Valuation.make sys) fd;
      funding = Some fd;
      handle = None;
      working_set;
      resident = Hashtbl.create 64;
      faults = 0;
      accesses = 0;
      evictions = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  register t c;
  Hashtbl.add t.by_cid (F.currency_id (Funded.currency fd)) c;
  c

let set_tickets t c tickets =
  if tickets < 0 then invalid_arg "Inverse_memory.set_tickets: negative";
  c.tickets <- tickets;
  if c.funding = None then begin
    c.value <- float_of_int tickets;
    t.wdirty <- true
  end

let client_name c = c.name

let evict_lru_of t victim =
  let best = ref None in
  Hashtbl.iter
    (fun vpage stamp ->
      match !best with
      | None -> best := Some (vpage, stamp)
      | Some (_, s) -> if stamp < s then best := Some (vpage, stamp))
    victim.resident;
  match !best with
  | None -> assert false (* victims are chosen among resident-page holders *)
  | Some (vpage, _) ->
      Hashtbl.remove victim.resident vpage;
      victim.evictions <- victim.evictions + 1;
      t.used <- t.used - 1;
      update_weight t victim

let evict_random_of t victim =
  let n = Hashtbl.length victim.resident in
  let target = Rng.int_below t.rng n in
  let i = ref 0 in
  let chosen = ref None in
  Hashtbl.iter
    (fun vpage _ ->
      if !i = target then chosen := Some vpage;
      incr i)
    victim.resident;
  match !chosen with
  | None -> assert false
  | Some vpage ->
      Hashtbl.remove victim.resident vpage;
      victim.evictions <- victim.evictions + 1;
      t.used <- t.used - 1;
      update_weight t victim

let publish_draw t c =
  if Obs.Bus.active t.bus then begin
    let holders =
      List.fold_left
        (fun acc c -> if Hashtbl.length c.resident > 0 then acc + 1 else acc)
        0 t.clients
    in
    Obs.Bus.emit t.bus ~time:t.clock
      (Obs.Event.Resource_draw
         {
           who = Obs.Event.actor_of ~tid:c.id ~tname:c.name;
           resource = "memory";
           contenders = holders;
           total_weight = Draw.total t.draw;
         })
  end

let pick_victim t =
  match t.pol with
  | Global_lru ->
      (* deterministic scan, no lottery *)
      let best = ref None in
      List.iter
        (fun c ->
          Hashtbl.iter
            (fun _ stamp ->
              match !best with
              | None -> best := Some (c, stamp)
              | Some (_, s) -> if stamp < s then best := Some (c, stamp))
            c.resident)
        t.clients;
      (match !best with Some (c, _) -> c | None -> assert false)
  | Global_random | Inverse_lottery -> (
      refresh t;
      match Draw.draw_client t.draw t.rng with
      | Some c ->
          publish_draw t c;
          c
      | None -> assert false (* full memory implies a positive-weight holder *))

let access t c vpage =
  if vpage < 0 || vpage >= c.working_set then
    invalid_arg "Inverse_memory.access: page outside working set";
  c.accesses <- c.accesses + 1;
  t.clock <- t.clock + 1;
  if Hashtbl.mem c.resident vpage then begin
    Hashtbl.replace c.resident vpage t.clock;
    `Hit
  end
  else begin
    c.faults <- c.faults + 1;
    if t.used >= t.frames then begin
      let victim = pick_victim t in
      match t.pol with
      | Global_random -> evict_random_of t victim
      | Global_lru | Inverse_lottery -> evict_lru_of t victim
    end;
    Hashtbl.replace c.resident vpage t.clock;
    t.used <- t.used + 1;
    update_weight t c;
    `Fault
  end

type pattern = Uniform | Zipf of float

(* Zipf sampling by inversion over precomputed cumulative weights. *)
let zipf_sampler s n =
  let weights = Array.init n (fun r -> 1. /. (float_of_int (r + 1) ** s)) in
  let cumulative = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    weights;
  let total = !acc in
  fun rng ->
    let u = Rng.float_unit rng *. total in
    (* binary search for the first cumulative weight above u *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo

let simulate ?(pattern = Uniform) t ~steps =
  let clients = Array.of_list (List.rev t.clients) in
  if Array.length clients = 0 then invalid_arg "Inverse_memory.simulate: no clients";
  let samplers =
    Array.map
      (fun c ->
        match pattern with
        | Uniform -> fun rng -> Rng.int_below rng c.working_set
        | Zipf s ->
            if s <= 0. then invalid_arg "Inverse_memory.simulate: zipf s <= 0";
            zipf_sampler s c.working_set)
      clients
  in
  for i = 0 to steps - 1 do
    let idx = i mod Array.length clients in
    let c = clients.(idx) in
    ignore (access t c (samplers.(idx) t.rng))
  done

let resident _t c = Hashtbl.length c.resident
let faults _t c = c.faults
let accesses _t c = c.accesses
let evictions_suffered _t c = c.evictions
let frames_total t = t.frames
let frames_free t = t.frames - t.used
