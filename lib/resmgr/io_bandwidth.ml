module Rng = Lotto_prng.Rng
module Draw = Lotto_draw.Draw
module F = Lotto_tickets.Funding
module Obs = Lotto_obs

type client = {
  id : int;
  name : string;
  mutable tickets : int;
  mutable value : float; (* draw-weight basis: raw tickets or currency value *)
  funding : Funded.t option;
  mutable handle : client Draw.handle option;
  mutable pending : int;
  mutable served : int;
}

type t = {
  rng : Rng.t;
  draw : client Draw.t;
  fsys : F.system option;
  ftrack : Funded.Tracker.t option;
  by_cid : (int, client) Hashtbl.t; (* funding-currency id -> clients *)
  bus : Obs.Bus.t;
  mutable clients : client list; (* reverse creation order *)
  mutable next_id : int;
  mutable backlogged : int; (* clients with pending > 0 *)
  mutable total_served : int;
  mutable wgen : int; (* bumped on every weight write: a batch of
                         pre-drawn winners is valid only while it holds *)
  mutable batch : client array; (* draw_k scratch, sized at first register *)
}

let batch_k = 64

let create ?(backend = Draw.List) ?funding ~rng () =
  {
    rng;
    draw = Draw.of_mode backend;
    fsys = funding;
    ftrack = Option.map Funded.Tracker.attach funding;
    by_cid = Hashtbl.create 16;
    bus = Obs.Bus.create ();
    clients = [];
    next_id = 0;
    backlogged = 0;
    total_served = 0;
    wgen = 0;
    batch = [||];
  }

let events t = t.bus

(* A client competes only while backlogged; idle shares redistribute. *)
let weight_of c = if c.pending > 0 then c.value else 0.

let update_weight t c =
  match c.handle with
  | Some h ->
      Draw.set_weight t.draw h (weight_of c);
      t.wgen <- t.wgen + 1
  | None -> ()

let register t c =
  c.handle <- Some (Draw.add t.draw ~client:c ~weight:(weight_of c));
  t.clients <- c :: t.clients;
  t.wgen <- t.wgen + 1;
  if Array.length t.batch = 0 then t.batch <- Array.make batch_k c

let add_client t ~name ~tickets =
  if tickets < 0 then invalid_arg "Io_bandwidth.add_client: negative tickets";
  let c =
    {
      id = t.next_id;
      name;
      tickets;
      value = float_of_int tickets;
      funding = None;
      handle = None;
      pending = 0;
      served = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  register t c;
  c

let add_funded_client t ~name ?(amount = 1000) ~currency () =
  let sys =
    match t.fsys with
    | Some sys -> sys
    | None -> invalid_arg "Io_bandwidth.add_funded_client: created without ~funding"
  in
  let fd = Funded.attach sys ~currency ~amount in
  Funded.set_active fd false (* idle until the first submit *);
  let c =
    {
      id = t.next_id;
      name;
      tickets = 0;
      value = Funded.value (F.Valuation.make sys) fd;
      funding = Some fd;
      handle = None;
      pending = 0;
      served = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  register t c;
  Hashtbl.add t.by_cid (F.currency_id (Funded.currency fd)) c;
  c

let set_tickets t c tickets =
  if tickets < 0 then invalid_arg "Io_bandwidth.set_tickets: negative";
  c.tickets <- tickets;
  if c.funding = None then begin
    c.value <- float_of_int tickets;
    update_weight t c
  end

let client_name c = c.name

let set_backlogged t c now_backlogged =
  t.backlogged <- t.backlogged + (if now_backlogged then 1 else -1);
  (match c.funding with
  | Some fd -> Funded.set_active fd now_backlogged
  | None -> ());
  update_weight t c

let submit t c ~requests =
  if requests < 0 then invalid_arg "Io_bandwidth.submit: negative requests";
  if requests > 0 then begin
    let was_idle = c.pending = 0 in
    c.pending <- c.pending + requests;
    if was_idle then set_backlogged t c true
  end

let pending _t c = c.pending

let cancel_pending t c =
  if c.pending > 0 then begin
    c.pending <- 0;
    set_backlogged t c false
  end

(* Re-derive funded clients' values from the funding graph. Scoped change
   events say exactly which currencies moved, so the steady-state pass
   revalues only the clients funded by those currencies — O(dirtied), not
   O(clients) — and is a no-op while the graph is quiescent. *)
let refresh t =
  match (t.fsys, t.ftrack) with
  | Some sys, Some tr -> (
      let revalue v c =
        match c.funding with
        | Some fd ->
            c.value <- Funded.value v fd;
            update_weight t c
        | None -> ()
      in
      match Funded.Tracker.drain tr with
      | `None -> ()
      | `All -> List.iter (revalue (F.Valuation.make sys)) t.clients
      | `Dirtied cids ->
          let v = F.Valuation.make sys in
          List.iter
            (fun cid -> List.iter (revalue v) (Hashtbl.find_all t.by_cid cid))
            cids)
  | _ -> ()

let publish_draw t c =
  if Obs.Bus.active t.bus then
    Obs.Bus.emit t.bus ~time:t.total_served
      (Obs.Event.Resource_draw
         {
           who = Obs.Event.actor_of ~tid:c.id ~tname:c.name;
           resource = "io";
           contenders = t.backlogged;
           total_weight = Draw.total t.draw;
         })

(* All backlogged clients are unfunded: serve FIFO by creation order
   (t.clients is reversed, so keep the last match). *)
let fifo_pick t =
  List.fold_left (fun acc c -> if c.pending > 0 then Some c else acc) None t.clients

let serve_winner t c =
  c.pending <- c.pending - 1;
  if c.pending = 0 then set_backlogged t c false;
  c.served <- c.served + 1;
  t.total_served <- t.total_served + 1

let serve_slot t =
  refresh t;
  let s = Draw.draw_slot t.draw t.rng in
  if s >= 0 then begin
    let c = Draw.client_at t.draw s in
    publish_draw t c;
    serve_winner t c;
    Some c
  end
  else
    match fifo_pick t with
    | None -> None
    | Some c ->
        serve_winner t c;
        Some c

(* Batched service: pre-draw up to [batch_k] winners in one {!Draw.draw_k}
   call (paying any lazy table rebuild once for the whole burst) and serve
   them in order. Serving a winner can change draw weights — a client's
   last pending request drains, or a funding change lands via [refresh] —
   which [wgen] detects; the unserved tail of the batch is then discarded
   and redrawn against the fresh weights, so every served slot saw the
   weights a slot-at-a-time lottery would have. (The discarded draws do
   consume randomness, so the stream differs from repeated {!serve_slot}
   calls; the distribution per slot is identical.) *)
let serve t ~slots =
  let left = ref slots in
  let live = ref true in
  while !live && !left > 0 do
    refresh t;
    let k = min !left batch_k in
    let n =
      if Array.length t.batch = 0 then 0 else Draw.draw_k t.draw t.rng ~k t.batch
    in
    if n = 0 then begin
      match fifo_pick t with
      | None -> live := false
      | Some c ->
          serve_winner t c;
          decr left
    end
    else begin
      let gen = t.wgen in
      let i = ref 0 in
      while !i < n && t.wgen = gen do
        let c = t.batch.(!i) in
        publish_draw t c;
        serve_winner t c;
        incr i;
        decr left
      done
    end
  done

let served _t c = c.served
let total_served t = t.total_served
