module Rng = Lotto_prng.Rng
module Draw = Lotto_draw.Draw
module F = Lotto_tickets.Funding
module Obs = Lotto_obs

type policy = Fcfs | Sstf | Lottery

type request = { cylinder : int; submitted_at : int; seq : int }

type client = {
  id : int;
  name : string;
  mutable tickets : int;
  mutable value : float; (* draw-weight basis: raw tickets or currency value *)
  funding : Funded.t option;
  mutable handle : client Draw.handle option;
  mutable queue : request list; (* unordered; scans pick by seq / distance *)
  mutable served : int;
  mutable latency_sum : int;
}

type t = {
  pol : policy;
  cylinders : int;
  seek_cost : int;
  transfer_cost : int;
  batch_enabled : bool;
  rng : Rng.t;
  draw : client Draw.t;
  fsys : F.system option;
  ftrack : Funded.Tracker.t option;
  by_cid : (int, client) Hashtbl.t; (* funding-currency id -> clients *)
  bus : Obs.Bus.t;
  mutable clients : client list; (* reverse creation order *)
  mutable next_id : int;
  mutable backlogged_count : int;
  mutable head : int;
  mutable clock : int;
  mutable seq : int;
  mutable total_served : int;
  mutable seek_distance : int;
  mutable wgen : int; (* bumped on every weight write: a batch of
                         pre-drawn winners is valid only while it holds *)
  mutable batch : client array; (* draw_k scratch, sized at first register *)
  mutable batch_len : int; (* winners pre-drawn into [batch] *)
  mutable batch_pos : int; (* next unserved winner *)
  mutable batch_gen : int; (* [wgen] the batch was drawn under *)
}

let batch_k = 64

let create ?(policy = Lottery) ?(cylinders = 1000) ?(seek_cost = 10)
    ?(transfer_cost = 2000) ?(backend = Draw.List) ?(batch = true) ?funding
    ~rng () =
  if cylinders <= 0 then invalid_arg "Disk.create: cylinders <= 0";
  if seek_cost < 0 || transfer_cost <= 0 then invalid_arg "Disk.create: bad costs";
  {
    pol = policy;
    cylinders;
    seek_cost;
    transfer_cost;
    batch_enabled = batch;
    rng;
    draw = Draw.of_mode backend;
    fsys = funding;
    ftrack = Option.map Funded.Tracker.attach funding;
    by_cid = Hashtbl.create 16;
    bus = Obs.Bus.create ();
    clients = [];
    next_id = 0;
    backlogged_count = 0;
    head = 0;
    clock = 0;
    seq = 0;
    total_served = 0;
    seek_distance = 0;
    wgen = 0;
    batch = [||];
    batch_len = 0;
    batch_pos = 0;
    batch_gen = -1;
  }

let policy t = t.pol
let events t = t.bus

let weight_of c = if c.queue <> [] then c.value else 0.

(* A weight dropping to zero (a queue draining) does NOT bump [wgen]:
   batched slots are independent draws, so skipping a dead entry at
   consume time conditions the remaining slots on "not that client" —
   exactly the distribution a redraw against the shrunken weights would
   give. Any write of a {e positive} weight (a new backlog, ticket or
   funding movement) changes the ratios among live clients and must
   discard the pre-drawn tail. *)
let update_weight t c =
  match c.handle with
  | Some h ->
      let w = weight_of c in
      Draw.set_weight t.draw h w;
      if w > 0. then t.wgen <- t.wgen + 1
  | None -> ()

let register t c =
  c.handle <- Some (Draw.add t.draw ~client:c ~weight:(weight_of c));
  t.clients <- c :: t.clients;
  t.wgen <- t.wgen + 1;
  if Array.length t.batch = 0 then t.batch <- Array.make batch_k c

let add_client t ~name ~tickets =
  if tickets < 0 then invalid_arg "Disk.add_client: negative tickets";
  let c =
    {
      id = t.next_id;
      name;
      tickets;
      value = float_of_int tickets;
      funding = None;
      handle = None;
      queue = [];
      served = 0;
      latency_sum = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  register t c;
  c

let add_funded_client t ~name ?(amount = 1000) ~currency () =
  let sys =
    match t.fsys with
    | Some sys -> sys
    | None -> invalid_arg "Disk.add_funded_client: created without ~funding"
  in
  let fd = Funded.attach sys ~currency ~amount in
  Funded.set_active fd false (* idle until the first submit *);
  let c =
    {
      id = t.next_id;
      name;
      tickets = 0;
      value = Funded.value (F.Valuation.make sys) fd;
      funding = Some fd;
      handle = None;
      queue = [];
      served = 0;
      latency_sum = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  register t c;
  Hashtbl.add t.by_cid (F.currency_id (Funded.currency fd)) c;
  c

let set_tickets t c tickets =
  if tickets < 0 then invalid_arg "Disk.set_tickets: negative tickets";
  c.tickets <- tickets;
  if c.funding = None then begin
    c.value <- float_of_int tickets;
    update_weight t c
  end

let client_name c = c.name

let set_backlogged t c now_backlogged =
  t.backlogged_count <- t.backlogged_count + (if now_backlogged then 1 else -1);
  (match c.funding with
  | Some fd -> Funded.set_active fd now_backlogged
  | None -> ());
  update_weight t c

let submit t c ~cylinder =
  if cylinder < 0 || cylinder >= t.cylinders then
    invalid_arg "Disk.submit: cylinder out of range";
  let r = { cylinder; submitted_at = t.clock; seq = t.seq } in
  t.seq <- t.seq + 1;
  let was_idle = c.queue = [] in
  c.queue <- r :: c.queue;
  if was_idle then set_backlogged t c true

let pending _t c = List.length c.queue

(* creation order, for the deterministic policies and tie-breaks *)
let backlogged t = List.filter (fun c -> c.queue <> []) (List.rev t.clients)

let nearest_request t c =
  match c.queue with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun (best : request) (r : request) ->
             if abs (r.cylinder - t.head) < abs (best.cylinder - t.head) then r
             else best)
           first rest)

let oldest_request c =
  match c.queue with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun (best : request) (r : request) ->
             if r.seq < best.seq then r else best)
           first rest)

(* Re-derive funded clients' values from the funding graph. Scoped change
   events say exactly which currencies moved, so the steady-state pass
   revalues only the clients funded by those currencies — O(dirtied), not
   O(clients) — and is a no-op while the graph is quiescent. *)
let refresh t =
  match (t.fsys, t.ftrack) with
  | Some sys, Some tr -> (
      let revalue v c =
        match c.funding with
        | Some fd ->
            c.value <- Funded.value v fd;
            update_weight t c
        | None -> ()
      in
      match Funded.Tracker.drain tr with
      | `None -> ()
      | `All -> List.iter (revalue (F.Valuation.make sys)) t.clients
      | `Dirtied cids ->
          let v = F.Valuation.make sys in
          List.iter
            (fun cid -> List.iter (revalue v) (Hashtbl.find_all t.by_cid cid))
            cids)
  | _ -> ()

let publish_draw t c =
  if Obs.Bus.active t.bus then
    Obs.Bus.emit t.bus ~time:t.clock
      (Obs.Event.Resource_draw
         {
           who = Obs.Event.actor_of ~tid:c.id ~tname:c.name;
           resource = "disk";
           contenders = t.backlogged_count;
           total_weight = Draw.total t.draw;
         })

(* Batched refill: pre-draw up to [batch_k] winners in one {!Draw.draw_k}
   call — paying any lazy table rebuild once for the whole batch instead
   of once per draw — and serve them in draw order. [wgen] guards the
   batch: a positive weight write discards the unserved tail (redrawn
   against the fresh weights), while entries whose client has since gone
   weightless are skipped at consume time (see [update_weight]); either
   way every served slot sees the distribution a slot-at-a-time lottery
   would have drawn from. (Discarded draws consume randomness, so the
   stream differs from unbatched service; the per-slot distribution is
   identical.) *)
let refill_batch t =
  t.batch_len <-
    (if Array.length t.batch = 0 then 0
     else Draw.draw_k t.draw t.rng ~k:batch_k t.batch);
  t.batch_pos <- 0;
  t.batch_gen <- t.wgen

let batch_winner t =
  if t.batch_gen <> t.wgen then t.batch_pos <- t.batch_len (* discard *);
  while
    t.batch_pos < t.batch_len && weight_of t.batch.(t.batch_pos) <= 0.
  do
    t.batch_pos <- t.batch_pos + 1
  done;
  if t.batch_pos >= t.batch_len then refill_batch t;
  if t.batch_pos < t.batch_len then begin
    let c = t.batch.(t.batch_pos) in
    t.batch_pos <- t.batch_pos + 1;
    Some c
  end
  else None

(* choose (client, request) per policy *)
let choose t : (client * request) option =
  match t.pol with
  | Fcfs ->
      (* globally oldest request *)
      List.fold_left
        (fun acc c ->
          match (acc, oldest_request c) with
          | None, Some r -> Some (c, r)
          | Some (_, rb), Some r when r.seq < rb.seq -> Some (c, r)
          | acc, _ -> acc)
        None (backlogged t)
  | Sstf ->
      (* globally nearest request to the head *)
      List.fold_left
        (fun acc c ->
          match (acc, nearest_request t c) with
          | None, Some r -> Some (c, r)
          | Some (_, rb), Some r
            when abs (r.cylinder - t.head) < abs (rb.cylinder - t.head) ->
              Some (c, r)
          | acc, _ -> acc)
        None (backlogged t)
  | Lottery -> (
      (* lottery over backlogged clients' funding, then the winner's
         nearest request (good local seeks, proportional global share) *)
      refresh t;
      let winner =
        if t.batch_enabled then begin
          match batch_winner t with
          | Some c ->
              publish_draw t c;
              Some c
          | None ->
              (* backlogged but unfunded: first backlogged in creation order *)
              List.fold_left
                (fun acc c -> if c.queue <> [] then Some c else acc)
                None t.clients
        end
        else
          (* slot-based pick: no option or handle wrapper built per decision *)
          let s = Draw.draw_slot t.draw t.rng in
          if s >= 0 then begin
            let c = Draw.client_at t.draw s in
            publish_draw t c;
            Some c
          end
          else
            List.fold_left
              (fun acc c -> if c.queue <> [] then Some c else acc)
              None t.clients
      in
      match winner with
      | None -> None
      | Some w -> (
          match nearest_request t w with
          | Some r -> Some (w, r)
          | None -> None))

let serve_one t =
  match choose t with
  | None -> None
  | Some (c, r) ->
      let distance = abs (r.cylinder - t.head) in
      t.seek_distance <- t.seek_distance + distance;
      t.clock <- t.clock + (distance * t.seek_cost) + t.transfer_cost;
      t.head <- r.cylinder;
      c.queue <- List.filter (fun (r' : request) -> r'.seq <> r.seq) c.queue;
      if c.queue = [] then set_backlogged t c false;
      c.served <- c.served + 1;
      c.latency_sum <- c.latency_sum + (t.clock - r.submitted_at);
      t.total_served <- t.total_served + 1;
      Some c

let serve_for t ~ticks =
  let stop_at = t.clock + ticks in
  let continue = ref true in
  while !continue && t.clock < stop_at do
    match serve_one t with None -> continue := false | Some _ -> ()
  done

let now t = t.clock
let served _t c = c.served
let total_served t = t.total_served

let mean_latency _t c =
  if c.served = 0 then nan else float_of_int c.latency_sum /. float_of_int c.served

let total_seek_distance t = t.seek_distance
let head_position t = t.head
