(** Lottery-managed I/O / network bandwidth (paper §6, "Managing Diverse
    Resources": disk bandwidth, ATM virtual circuits).

    A device serves fixed-size transfer slots. Each slot, a lottery is held
    among clients with queued requests, weighted by their tickets — so each
    {e backlogged} client receives bandwidth proportional to its share of
    the backlogged tickets, and idle clients' shares redistribute
    automatically (the "lightly contended resource" property of §2.1).

    Draws go through {!Lotto_draw.Draw} ([?backend] selects the structure),
    and clients are funded either with raw tickets ({!add_client}) or from
    a {!Lotto_tickets.Funding.currency} ({!add_funded_client}) so one
    currency can proportionally fund CPU {e and} bandwidth. *)

type t
type client

val create :
  ?backend:Lotto_draw.Draw.mode ->
  ?funding:Lotto_tickets.Funding.system ->
  rng:Lotto_prng.Rng.t ->
  unit ->
  t
(** [backend] defaults to [List] (the paper's prototype structure);
    [funding] is required for {!add_funded_client} and is typically the
    scheduler's {!Lottery_sched.funding} system. *)

val add_client : t -> name:string -> tickets:int -> client

val add_funded_client :
  t ->
  name:string ->
  ?amount:int ->
  currency:Lotto_tickets.Funding.currency ->
  unit ->
  client
(** The client competes with a held ticket of [amount] (default 1000)
    denominated in [currency]: its bandwidth share follows the currency's
    value, divided among everything the currency funds, and the ticket is
    suspended while the client has nothing queued. Raises
    [Invalid_argument] when the manager was created without [~funding]. *)

val set_tickets : t -> client -> int -> unit
(** Raw-ticket clients only (ignored weight-wise for funded clients —
    inflate their currency's backing tickets instead). *)

val client_name : client -> string

val submit : t -> client -> requests:int -> unit
(** Enqueue transfer requests (one slot each). *)

val pending : t -> client -> int

val cancel_pending : t -> client -> unit
(** Drop all of the client's queued requests (the stream went idle). *)

val serve_slot : t -> client option
(** Serve one slot: the lottery winner's oldest request completes. [None]
    when no requests are queued anywhere. *)

val serve : t -> slots:int -> unit
(** Serve up to [slots] slots (stops early if the device goes idle). *)

val served : t -> client -> int
val total_served : t -> int

val events : t -> Lotto_obs.Bus.t
(** Per-manager bus carrying one {!Lotto_obs.Event.Resource_draw} per
    lottery held (timestamped with slots served so far). *)
