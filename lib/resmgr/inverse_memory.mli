(** Proportional-share physical-page management via inverse lotteries
    (paper §6.2).

    When a page fault finds all frames in use, a {e victim client} is chosen
    by an inverse lottery: client [i] loses with probability proportional to
    [(1 - t_i / T) * (frames_i / frames_total)] — fewer tickets and larger
    residency both make revocation more likely. The victim then evicts its
    own least-recently-used page. Two conventional baselines are provided
    for comparison: global LRU (ticket-blind) and random victim.

    Victim lotteries go through {!Lotto_draw.Draw} ([?backend] selects the
    structure); clients hold either raw tickets ({!add_client}) or a share
    of a {!Lotto_tickets.Funding.currency} ({!add_funded_client}). Unlike
    the bandwidth managers, a funded memory client's ticket stays active
    the whole time — it holds frames even when it is not faulting. *)

type policy =
  | Inverse_lottery  (** the paper's policy *)
  | Global_lru  (** evict the globally least-recently-used page *)
  | Global_random  (** evict a uniformly random resident page *)

type t
type client

val create :
  ?policy:policy ->
  ?backend:Lotto_draw.Draw.mode ->
  ?funding:Lotto_tickets.Funding.system ->
  frames:int ->
  rng:Lotto_prng.Rng.t ->
  unit ->
  t
(** [policy] defaults to [Inverse_lottery]; [frames] is the physical pool
    size; [backend] defaults to [List]. [funding] is required for
    {!add_funded_client}. *)

val policy : t -> policy

val add_client : t -> name:string -> tickets:int -> working_set:int -> client
(** A client touches virtual pages [0 .. working_set - 1]. *)

val add_funded_client :
  t ->
  name:string ->
  ?amount:int ->
  working_set:int ->
  currency:Lotto_tickets.Funding.currency ->
  unit ->
  client
(** The client's [t_i] in the inverse-lottery weight is the value of a
    held ticket of [amount] (default 1000) denominated in [currency].
    Raises [Invalid_argument] when the pool was created without
    [~funding]. *)

val set_tickets : t -> client -> int -> unit
(** Raw-ticket clients only (ignored weight-wise for funded clients —
    inflate their currency's backing tickets instead). *)

val client_name : client -> string

val access : t -> client -> int -> [ `Hit | `Fault ]
(** Touch one virtual page, faulting it in (possibly evicting) if needed.
    Raises [Invalid_argument] if the page is outside the working set. *)

type pattern =
  | Uniform  (** every page in the working set equally likely *)
  | Zipf of float
      (** rank-skewed locality: page [r] with probability proportional to
          [1/(r+1)^s]; real programs look like [Zipf 0.8..1.2] *)

val simulate : ?pattern:pattern -> t -> steps:int -> unit
(** Drive the pool: clients access pages per [pattern] (default [Uniform]),
    round-robin, so every client applies equal pressure and the
    steady-state residency split reflects the replacement policy alone. *)

val resident : t -> client -> int
(** Frames currently held. *)

val faults : t -> client -> int
val accesses : t -> client -> int
val evictions_suffered : t -> client -> int
val frames_total : t -> int
val frames_free : t -> int

val events : t -> Lotto_obs.Bus.t
(** Per-pool bus carrying one {!Lotto_obs.Event.Resource_draw} per victim
    lottery held (resource ["memory"], timestamped with the access
    clock). *)
