module Rng = Lotto_prng.Rng
module Draw = Lotto_draw.Draw
module F = Lotto_tickets.Funding
module Obs = Lotto_obs

type circuit = {
  id : int;
  name : string;
  port : int;
  mutable tickets : int;
  mutable value : float; (* draw-weight basis: raw tickets or currency value *)
  funding : Funded.t option;
  mutable handle : circuit Draw.handle option;
  mutable rate : float;
  buffer : int Queue.t; (* arrival slot of each buffered cell *)
  mutable delivered : int;
  mutable dropped : int;
  mutable delay_sum : int;
}

type t = {
  ports : int;
  capacity : int;
  rng : Rng.t;
  draws : circuit Draw.t array; (* one lottery per output port *)
  fsys : F.system option;
  ftrack : Funded.Tracker.t option;
  by_cid : (int, circuit) Hashtbl.t; (* funding-currency id -> circuits *)
  bus : Obs.Bus.t;
  mutable circuits : circuit list; (* reverse creation order *)
  mutable next_id : int;
  buffered_per_port : int array;
  mutable slot : int;
  sent_per_port : int array;
}

let create ?(ports = 4) ?(buffer_capacity = 64) ?(backend = Draw.List) ?funding
    ~rng () =
  if ports <= 0 then invalid_arg "Switch.create: ports <= 0";
  if buffer_capacity <= 0 then invalid_arg "Switch.create: buffer_capacity <= 0";
  {
    ports;
    capacity = buffer_capacity;
    rng;
    draws = Array.init ports (fun _ -> Draw.of_mode backend);
    fsys = funding;
    ftrack = Option.map Funded.Tracker.attach funding;
    by_cid = Hashtbl.create 16;
    bus = Obs.Bus.create ();
    circuits = [];
    next_id = 0;
    buffered_per_port = Array.make ports 0;
    slot = 0;
    sent_per_port = Array.make ports 0;
  }

let events t = t.bus

let weight_of c = if Queue.is_empty c.buffer then 0. else c.value

let update_weight t c =
  match c.handle with
  | Some h -> Draw.set_weight t.draws.(c.port) h (weight_of c)
  | None -> ()

let register t c =
  c.handle <- Some (Draw.add t.draws.(c.port) ~client:c ~weight:(weight_of c));
  t.circuits <- c :: t.circuits

let add_circuit t ~name ~output_port ~tickets ~rate =
  if output_port < 0 || output_port >= t.ports then
    invalid_arg "Switch.add_circuit: port out of range";
  if tickets < 0 then invalid_arg "Switch.add_circuit: negative tickets";
  if rate < 0. || rate > 1. then invalid_arg "Switch.add_circuit: rate not in [0,1]";
  let c =
    {
      id = t.next_id;
      name;
      port = output_port;
      tickets;
      value = float_of_int tickets;
      funding = None;
      handle = None;
      rate;
      buffer = Queue.create ();
      delivered = 0;
      dropped = 0;
      delay_sum = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  register t c;
  c

let add_funded_circuit t ~name ~output_port ?(amount = 1000) ~rate
    ~currency () =
  if output_port < 0 || output_port >= t.ports then
    invalid_arg "Switch.add_funded_circuit: port out of range";
  if rate < 0. || rate > 1. then
    invalid_arg "Switch.add_funded_circuit: rate not in [0,1]";
  let sys =
    match t.fsys with
    | Some sys -> sys
    | None -> invalid_arg "Switch.add_funded_circuit: created without ~funding"
  in
  let fd = Funded.attach sys ~currency ~amount in
  Funded.set_active fd false (* idle until the first cell arrives *);
  let c =
    {
      id = t.next_id;
      name;
      port = output_port;
      tickets = 0;
      value = Funded.value (F.Valuation.make sys) fd;
      funding = Some fd;
      handle = None;
      rate;
      buffer = Queue.create ();
      delivered = 0;
      dropped = 0;
      delay_sum = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  register t c;
  Hashtbl.add t.by_cid (F.currency_id (Funded.currency fd)) c;
  c

let set_tickets t c tickets =
  if tickets < 0 then invalid_arg "Switch.set_tickets: negative tickets";
  c.tickets <- tickets;
  if c.funding = None then begin
    c.value <- float_of_int tickets;
    update_weight t c
  end

let set_rate _t c rate =
  if rate < 0. || rate > 1. then invalid_arg "Switch.set_rate: rate not in [0,1]";
  c.rate <- rate

let circuit_name c = c.name

let set_buffered t c now_buffered =
  t.buffered_per_port.(c.port) <-
    t.buffered_per_port.(c.port) + (if now_buffered then 1 else -1);
  (match c.funding with
  | Some fd -> Funded.set_active fd now_buffered
  | None -> ());
  update_weight t c

(* Re-derive funded circuits' values from the funding graph. Scoped change
   events say exactly which currencies moved, so the steady-state pass
   revalues only the circuits funded by those currencies — O(dirtied), not
   O(circuits) — and is a no-op while the graph is quiescent. *)
let refresh t =
  match (t.fsys, t.ftrack) with
  | Some sys, Some tr -> (
      let revalue v c =
        match c.funding with
        | Some fd ->
            c.value <- Funded.value v fd;
            update_weight t c
        | None -> ()
      in
      match Funded.Tracker.drain tr with
      | `None -> ()
      | `All -> List.iter (revalue (F.Valuation.make sys)) t.circuits
      | `Dirtied cids ->
          let v = F.Valuation.make sys in
          List.iter
            (fun cid -> List.iter (revalue v) (Hashtbl.find_all t.by_cid cid))
            cids)
  | _ -> ()

let arrivals t =
  List.iter
    (fun c ->
      if c.rate > 0. && Rng.float_unit t.rng < c.rate then begin
        if Queue.length c.buffer >= t.capacity then c.dropped <- c.dropped + 1
        else begin
          let was_empty = Queue.is_empty c.buffer in
          Queue.push t.slot c.buffer;
          if was_empty then set_buffered t c true
        end
      end)
    (List.rev t.circuits)

let publish_draw t c =
  if Obs.Bus.active t.bus then
    Obs.Bus.emit t.bus ~time:t.slot
      (Obs.Event.Resource_draw
         {
           who = Obs.Event.actor_of ~tid:c.id ~tname:c.name;
           resource = Printf.sprintf "switch:p%d" c.port;
           contenders = t.buffered_per_port.(c.port);
           total_weight = Draw.total t.draws.(c.port);
         })

let transmit_port t port =
  if t.buffered_per_port.(port) > 0 then begin
    (* Slot-based pick. Batching with [draw_k] would not be faithful here:
       arrivals interleave with transmissions slot by slot on the same RNG
       stream, so each port's lottery must consume randomness exactly when
       its slot comes up. *)
    let winner =
      let s = Draw.draw_slot t.draws.(port) t.rng in
      if s >= 0 then begin
        let c = Draw.client_at t.draws.(port) s in
        publish_draw t c;
        Some c
      end
      else
        (* buffered circuits but zero total weight: first-created
           buffered circuit on this port (t.circuits is reversed, so
           keep the last match) *)
        List.fold_left
          (fun acc c ->
            if c.port = port && not (Queue.is_empty c.buffer) then Some c
            else acc)
          None t.circuits
    in
    match winner with
    | None -> ()
    | Some w ->
        let arrived = Queue.pop w.buffer in
        if Queue.is_empty w.buffer then set_buffered t w false;
        w.delivered <- w.delivered + 1;
        w.delay_sum <- w.delay_sum + (t.slot - arrived);
        t.sent_per_port.(port) <- t.sent_per_port.(port) + 1
  end

let step t ~slots =
  for _ = 1 to slots do
    refresh t;
    arrivals t;
    for port = 0 to t.ports - 1 do
      transmit_port t port
    done;
    t.slot <- t.slot + 1
  done

let now t = t.slot
let delivered _t c = c.delivered
let dropped _t c = c.dropped
let backlog _t c = Queue.length c.buffer

let mean_delay _t c =
  if c.delivered = 0 then nan
  else float_of_int c.delay_sum /. float_of_int c.delivered

let port_utilization t port =
  if port < 0 || port >= t.ports then invalid_arg "Switch.port_utilization: bad port";
  if t.slot = 0 then 0.
  else float_of_int t.sent_per_port.(port) /. float_of_int t.slot
