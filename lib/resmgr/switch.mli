(** Lottery-scheduled network switch (paper §6: "ATM switches schedule
    virtual circuits to determine which buffered cell should next be
    forwarded. Lottery scheduling could be used to provide different levels
    of service to virtual circuits competing for congested channels.").

    A slotted output-queued switch: each virtual circuit targets one output
    port and holds tickets. Every slot, each circuit receives a new cell
    with its configured arrival probability (dropped if its buffer is
    full), and every output port transmits one cell chosen by a lottery
    among the circuits with buffered cells for that port. Uncongested ports
    simply forward; on congested ports, delivered bandwidth tracks ticket
    shares.

    Each port's lottery goes through {!Lotto_draw.Draw} ([?backend]
    selects the structure); circuits hold either raw tickets
    ({!add_circuit}) or a share of a {!Lotto_tickets.Funding.currency}
    ({!add_funded_circuit}). *)

type t
type circuit

val create :
  ?ports:int ->
  ?buffer_capacity:int ->
  ?backend:Lotto_draw.Draw.mode ->
  ?funding:Lotto_tickets.Funding.system ->
  rng:Lotto_prng.Rng.t ->
  unit ->
  t
(** Defaults: 4 output ports, 64-cell per-circuit buffers, [List] draw
    backend. [funding] is required for {!add_funded_circuit}. *)

val add_circuit :
  t -> name:string -> output_port:int -> tickets:int -> rate:float -> circuit
(** [rate] is the per-slot cell arrival probability in [\[0, 1\]]. *)

val add_funded_circuit :
  t ->
  name:string ->
  output_port:int ->
  ?amount:int ->
  rate:float ->
  currency:Lotto_tickets.Funding.currency ->
  unit ->
  circuit
(** The circuit competes with a held ticket of [amount] (default 1000)
    denominated in [currency], suspended while its buffer is empty.
    Raises [Invalid_argument] when the switch was created without
    [~funding]. *)

val set_tickets : t -> circuit -> int -> unit
(** Raw-ticket circuits only (ignored weight-wise for funded circuits —
    inflate their currency's backing tickets instead). *)

val set_rate : t -> circuit -> float -> unit
val circuit_name : circuit -> string

val step : t -> slots:int -> unit
(** Advance the switch: arrivals, then one transmission per port per
    slot. *)

val now : t -> int
(** Slots elapsed. *)

val delivered : t -> circuit -> int
val dropped : t -> circuit -> int
val backlog : t -> circuit -> int
val mean_delay : t -> circuit -> float
(** Mean slots a delivered cell spent buffered; [nan] before the first
    delivery. *)

val port_utilization : t -> int -> float
(** Fraction of slots in which the port transmitted. *)

val events : t -> Lotto_obs.Bus.t
(** Per-switch bus carrying one {!Lotto_obs.Event.Resource_draw} per port
    lottery held (resource ["switch:p<i>"], timestamped with the slot). *)
