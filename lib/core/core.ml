(** Lottery scheduling: flexible proportional-share resource management.

    Facade over the library stack, in dependency order:

    - {!Rng} (with {!Park_miller}, the paper's Appendix-A generator):
      seeded, reproducible randomness;
    - {!Funding}: tickets and currencies — the resource-rights model of
      Sections 3–4 (transfers, inflation, currencies, compensation);
    - {!Draw} over {!List_lottery} / {!Tree_lottery} /
      {!Distributed_lottery}: one weighted-draw interface for every
      lottery in the system (Sections 4.2 and 5.1), plus
      {!Inverse_lottery} (Section 6.2);
    - {!Time}, {!Kernel}, {!Api}, {!Types}: the discrete-event kernel
      standing in for Mach 3.0, with effect-based threads, synchronous RPC
      and mutexes;
    - {!Lottery_sched} plus the baselines {!Round_robin},
      {!Fixed_priority}, {!Decay_usage}, {!Stride_sched};
    - workloads ({!Spinner}, {!Monte_carlo}, {!Db}, {!Corpus}, {!Video},
      {!Mutex_workload}) and space-shared managers ({!Inverse_memory},
      {!Io_bandwidth});
    - {!Service}: the multi-tenant serving stack — open-loop arrival
      generators, bounded RPC ports with overload shedding, per-tenant
      SLO accounting;
    - {!Experiments}: one runnable module per figure/table of the paper's
      evaluation, with {!Pool} fanning independent replications out across
      domains (index-merged, byte-identical to sequential).

    Quickstart:
    {[
      let rng = Core.Rng.create ~seed:42 () in
      let ls = Core.Lottery_sched.create ~rng () in
      let kernel = Core.Kernel.create ~sched:(Core.Lottery_sched.sched ls) () in
      let worker name =
        Core.Kernel.spawn kernel ~name (fun () ->
            while true do Core.Api.compute (Core.Time.ms 1) done)
      in
      let a = worker "a" and b = worker "b" in
      let base = Core.Lottery_sched.base_currency ls in
      ignore (Core.Lottery_sched.fund_thread ls a ~amount:200 ~from:base);
      ignore (Core.Lottery_sched.fund_thread ls b ~amount:100 ~from:base);
      ignore (Core.Kernel.run kernel ~until:(Core.Time.seconds 60));
      (* Core.Kernel.cpu_time a ≈ 2 × Core.Kernel.cpu_time b *)
    ]} *)

(* Randomness *)
module Rng = Lotto_prng.Rng
module Park_miller = Lotto_prng.Park_miller
module Splitmix64 = Lotto_prng.Splitmix64
module Xoshiro256 = Lotto_prng.Xoshiro256

(* Resource rights *)
module Funding = Lotto_tickets.Funding
module Acl = Lotto_tickets.Acl

(* Draw structures *)
module Arena = Lotto_arena
(** Slot arenas and registries backing the entity tables: {!Arena.Slots}
    (dense handles + generation counters) and {!Arena.Vec}. *)

module Draw = Lotto_draw.Draw
module List_lottery = Lotto_draw.List_lottery
module Tree_lottery = Lotto_draw.Tree_lottery
module Cumul_lottery = Lotto_draw.Cumul_lottery
module Alias_lottery = Lotto_draw.Alias_lottery
module Inverse_lottery = Lotto_draw.Inverse_lottery
module Distributed_lottery = Lotto_draw.Distributed_lottery
module Shard_tree = Lotto_draw.Shard_tree

(* Simulation kernel *)
module Time = Lotto_sim.Time
module Types = Lotto_sim.Types
module Kernel = Lotto_sim.Kernel
module Api = Lotto_sim.Api
module Timeline = Lotto_sim.Timeline

(* Observability: typed event bus, trace recorder, metrics registry *)
module Obs = Lotto_obs

(* Deterministic domain-parallel replication runner *)
module Pool = Lotto_par.Pool

(* Fault injection and invariant auditing *)
module Chaos = Lotto_chaos

(* Schedulers *)
module Lottery_sched = Lotto_sched.Lottery_sched
module Round_robin = Lotto_sched.Round_robin
module Fixed_priority = Lotto_sched.Fixed_priority
module Decay_usage = Lotto_sched.Decay_usage
module Stride_sched = Lotto_sched.Stride_sched

(* Workloads *)
module Spinner = Lotto_workloads.Spinner
module Monte_carlo = Lotto_workloads.Monte_carlo
module Corpus = Lotto_workloads.Corpus
module Db = Lotto_workloads.Db
module Video = Lotto_workloads.Video
module Mutex_workload = Lotto_workloads.Mutex_workload
module Disk_service = Lotto_workloads.Disk_service

(* Multi-tenant service layer: open-loop load, admission control, SLOs *)
module Service = struct
  module Arrivals = Lotto_service.Arrivals
  module Tenant = Lotto_service.Tenant
  module Pool = Lotto_service.Pool
  module Client = Lotto_service.Client
  module Slo = Lotto_service.Slo
  module Harness = Lotto_service.Service
end

(* Space-shared resources *)
module Inverse_memory = Lotto_res.Inverse_memory
module Io_bandwidth = Lotto_res.Io_bandwidth
module Disk = Lotto_res.Disk
module Switch = Lotto_res.Switch

(* Statistics *)
module Descriptive = Lotto_stats.Descriptive
module Histogram = Lotto_stats.Histogram
module Chi_square = Lotto_stats.Chi_square
module Window = Lotto_stats.Window

(* Experiment reproductions *)
module Experiments = struct
  module Fig4 = Lotto_exp.Fig4
  module Fig5 = Lotto_exp.Fig5
  module Fig6 = Lotto_exp.Fig6
  module Fig7 = Lotto_exp.Fig7
  module Fig8 = Lotto_exp.Fig8
  module Fig9 = Lotto_exp.Fig9
  module Fig11 = Lotto_exp.Fig11
  module Compensation = Lotto_exp.Compensation
  module Overhead = Lotto_exp.Overhead
  module Mem = Lotto_exp.Mem
  module Io = Lotto_exp.Io
  module Disk_exp = Lotto_exp.Disk_exp
  module Switch_exp = Lotto_exp.Switch_exp
  module Ablation_quantum = Lotto_exp.Ablation_quantum
  module Ablation_variance = Lotto_exp.Ablation_variance
  module Ablation_mc = Lotto_exp.Ablation_mc
  module Manager_exp = Lotto_exp.Manager_exp
  module Disk_service_exp = Lotto_exp.Disk_service_exp
  module Search_length = Lotto_exp.Search_length
  module Service_insulation = Lotto_exp.Service_insulation
  module Service_vs_decay = Lotto_exp.Service_vs_decay
  module Service_capacity = Lotto_exp.Service_capacity
end
