let compute n = Effect.perform (Effects.Compute n)
let compute_ms n = compute (Time.ms n)
let sleep d = Effect.perform (Effects.Sleep d)
let sleep_ms d = sleep (Time.ms d)
let rpc port payload = Effect.perform (Effects.Rpc (port, payload))
let rpc_many targets = Effect.perform (Effects.Rpc_many targets)
let receive port = Effect.perform (Effects.Receive port)
let poll_receive port = Effect.perform (Effects.Poll_receive port)
let reply msg result = Effect.perform (Effects.Reply (msg, result))
let lock m = Effect.perform (Effects.Lock m)
let unlock m = Effect.perform (Effects.Unlock m)

let with_lock m f =
  lock m;
  match f () with
  | v ->
      unlock m;
      v
  | exception e ->
      unlock m;
      raise e

(* POSIX condition-wait cancellation semantics: when [Killed] lands in a
   thread blocked in [wait], the mutex is reacquired before the exception
   propagates, so callers' cleanup ([with_lock]'s unlock) finds the mutex
   held exactly as the [wait] contract promises. The kernel may already
   have granted the mutex back (kill in the reacquire window after a
   signal), in which case there is nothing to do; and a second kill landing
   during the reacquisition itself just restarts it. *)
let wait cond mutex =
  try Effect.perform (Effects.Wait (cond, mutex))
  with Types.Killed ->
    let rec reacquire () =
      let me = Effect.perform Effects.Self in
      match mutex.Types.owner with
      | Some o when o == me -> ()
      | _ -> ( try lock mutex with Types.Killed -> reacquire ())
    in
    reacquire ();
    raise Types.Killed
let signal cond = Effect.perform (Effects.Signal cond)
let broadcast cond = Effect.perform (Effects.Broadcast cond)
let sem_wait sm = Effect.perform (Effects.Sem_wait sm)
let sem_post sm = Effect.perform (Effects.Sem_post sm)
let join th = Effect.perform (Effects.Join th)
let yield () = Effect.perform Effects.Yield
let now () = Effect.perform Effects.Now
let self () = Effect.perform Effects.Self
let spawn name body = Effect.perform (Effects.Spawn (name, body))
