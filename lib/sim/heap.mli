(** Array-based binary min-heap keyed by integer priority, stable for equal
    keys (insertion order wins). Used as the kernel's timer queue. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> key:int -> 'a -> unit
val peek_min : 'a t -> (int * 'a) option
val pop_min : 'a t -> (int * 'a) option

val min_key : 'a t -> int
(** Key of the minimum entry, without allocating. The heap must be
    non-empty (check {!is_empty} first). *)

val min_elt : 'a t -> 'a
(** Value of the minimum entry, without allocating. The heap must be
    non-empty. *)

val drop_min : 'a t -> unit
(** Remove the minimum entry without building the result pair. The heap
    must be non-empty. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val iter : 'a t -> (key:int -> 'a -> unit) -> unit
(** Visit every entry in unspecified (heap-internal) order. Used by
    auditors that need to inspect the pending-timer population without
    disturbing it. *)
