(** Array-based binary min-heap keyed by integer priority, stable for equal
    keys (insertion order wins). Used as the kernel's timer queue. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> key:int -> 'a -> unit
val peek_min : 'a t -> (int * 'a) option
val pop_min : 'a t -> (int * 'a) option
val size : 'a t -> int
val is_empty : 'a t -> bool

val iter : 'a t -> (key:int -> 'a -> unit) -> unit
(** Visit every entry in unspecified (heap-internal) order. Used by
    auditors that need to inspect the pending-timer population without
    disturbing it. *)
