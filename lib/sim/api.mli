(** Thread-side system calls.

    These functions may only be called from inside a thread body spawned
    with {!Kernel.spawn}; elsewhere they raise [Effect.Unhandled]. *)

val compute : int -> unit
(** Consume CPU ticks. Preempted transparently at quantum boundaries. *)

val compute_ms : int -> unit

val sleep : int -> unit
(** Block for a duration of virtual time without consuming CPU. *)

val sleep_ms : int -> unit

val rpc : Types.port -> string -> string
(** Synchronous remote procedure call: enqueue a request and block until a
    server thread replies. While blocked, the caller's resource rights fund
    the server (ticket transfer, paper §4.6). On a bounded port
    ({!Kernel.create_port} with [~capacity]) admission control may raise
    {!Types.Rejected} instead — immediately under [Reject_new], or later
    (while blocked, delivered kill-style) when a [Drop_oldest] port evicts
    this call's queued request to admit a newer one. *)

val rpc_many : (Types.port * string) list -> string list
(** Scatter-gather RPC (the paper's divided ticket transfers, §3.1): send
    one request to each port, block until every server replies, and return
    the replies in request order. While blocked, the caller's rights are
    divided {e equally} among the servers still working on its requests —
    as each replies, its share is withdrawn and the remainder
    re-concentrates on the stragglers. Raises [Invalid_argument] in the
    caller on an empty target list. *)

val receive : Types.port -> Types.message
(** Block until a request arrives (immediate if one is queued). *)

val poll_receive : Types.port -> Types.message option
(** Take a queued request without blocking ([None] when the queue is
    empty). Like {!receive}, picking up a message redirects the blocked
    sender's ticket transfer to the caller. *)

val reply : Types.message -> string -> unit
(** Wake the message's sender with the result. Instantaneous.

    Replying to a sender that has exited, been killed, or caught
    {!Types.Killed} and moved on is a traced no-op: the reply is dropped
    and an [Rpc_reply_dropped] event published, so a server can never be
    faulted by its client dying mid-request. Only a genuine duplicate — a
    second reply to a request already answered (including a scatter slot
    already filled) — raises [Invalid_argument] in the replying thread. *)

val lock : Types.mutex -> unit
(** Acquire, blocking if held. While blocked, the waiter funds the current
    owner (§6.1). *)

val unlock : Types.mutex -> unit
(** Release; the next owner is chosen by the mutex's wake policy. Raises
    [Invalid_argument] inside the calling thread if it is not the owner. *)

val with_lock : Types.mutex -> (unit -> 'a) -> 'a

val wait : Types.condition -> Types.mutex -> unit
(** Atomically release the mutex and block until signalled; the mutex is
    reacquired (possibly after queueing) before [wait] returns. The caller
    must hold the mutex; as with any condition variable, re-check the
    predicate in a loop. *)

val signal : Types.condition -> unit
(** Wake one waiter (chosen by the condition's wake policy). No-op when
    nobody waits. *)

val broadcast : Types.condition -> unit
(** Wake every waiter; they contend for the mutex in wake order. *)

val sem_wait : Types.semaphore -> unit
(** P(): take a permit, blocking while the count is zero. *)

val sem_post : Types.semaphore -> unit
(** V(): release a permit, waking a waiter if any (by wake policy). *)

val join : Types.thread -> unit
(** Block until the target exits (immediately if it already has). While
    blocked, the joiner's resource rights fund the target — joining is a
    transfer site like RPC and locks. Raises [Invalid_argument] when a
    thread joins itself. *)

val yield : unit -> unit
(** Surrender the remainder of the current quantum. *)

val now : unit -> Time.t
val self : unit -> Types.thread
val spawn : string -> (unit -> unit) -> Types.thread
(** Spawn a sibling thread from inside the simulation. *)
