type 'a cell = { key : int; seq : int; v : 'a }

type 'a t = {
  mutable cells : 'a cell option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { cells = Array.make 16 None; size = 0; next_seq = 0 }

let get t i = match t.cells.(i) with Some c -> c | None -> assert false

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap t i j =
  let tmp = t.cells.(i) in
  t.cells.(i) <- t.cells.(j);
  t.cells.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less (get t l) (get t !smallest) then smallest := l;
  if r < t.size && less (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~key v =
  if t.size = Array.length t.cells then begin
    let bigger = Array.make (2 * t.size) None in
    Array.blit t.cells 0 bigger 0 t.size;
    t.cells <- bigger
  end;
  t.cells.(t.size) <- Some { key; seq = t.next_seq; v };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_min t = if t.size = 0 then None else Some ((get t 0).key, (get t 0).v)

(* Non-allocating accessors for the kernel's timer hot loop: callers check
   [is_empty] first (the heap must be non-empty). *)
let min_key t = (get t 0).key
let min_elt t = (get t 0).v

let drop_min t =
  t.size <- t.size - 1;
  t.cells.(0) <- t.cells.(t.size);
  t.cells.(t.size) <- None;
  if t.size > 0 then sift_down t 0

let pop_min t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    t.cells.(0) <- t.cells.(t.size);
    t.cells.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    Some (top.key, top.v)
  end

let size t = t.size
let is_empty t = t.size = 0

let iter t f =
  for i = 0 to t.size - 1 do
    let c = get t i in
    f ~key:c.key c.v
  done
