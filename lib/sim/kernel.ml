open Types
module Obs = Lotto_obs
module Slots = Lotto_arena.Slots
module Vec = Lotto_arena.Vec

type t = {
  mutable now : int;
      (* the global virtual clock: the round floor between slices, the
         executing CPU's clock during one. [cpu_now] carries each virtual
         CPU's own clock; [now] = [cpu_now.(c)] while CPU [c] runs. *)
  quantum : int;
  cpus : int;
  cpu_now : int array; (* per-CPU virtual clock, length [cpus] *)
  sel : thread option array;
      (* per-round select results: every CPU at the round floor selects
         before any slice runs, so one round's slices are virtually
         concurrent and no thread can be picked by two CPUs (smp_ok
         schedulers dequeue on dispatch). Reuses the scheduler's returned
         option — the round adds no allocation. *)
  sched : sched;
  timers : thread Heap.t;
  mutable next_id : int;
  (* Thread arena: live threads occupy dense slots (thread.slot), recycled
     through a generation-counted free list when a thread is reaped, with
     an intrusive order index preserving creation-order iteration. Dead
     threads leave the table entirely — their records stay valid for
     anyone still holding them, but kernel iteration is O(live). *)
  th_slots : Slots.t;
  mutable th_tab : thread array; (* [||] until the first spawn *)
  by_name : (string, thread) Hashtbl.t;
      (* name -> first thread ever created with it (live or dead): O(1)
         find_thread with the historical first-created-wins semantics *)
  mutable failed : (thread * exn) list; (* reverse order of death *)
  mutable idle : int;
  mutable slices : int;
  bus : Obs.Bus.t;
  mutable tracer_sub : Obs.Bus.subscription option; (* legacy set_tracer shim *)
  mutable current : thread option; (* thread being advanced, if any *)
  (* registries of every synchronization object created through this
     kernel, in creation order: the invariant auditor cross-checks
     wait-queue membership against thread [pending] states, and fault
     injectors perturb wakeup order through them *)
  ports_v : port Vec.t;
  mutexes_v : mutex Vec.t;
  conds_v : condition Vec.t;
  sems_v : semaphore Vec.t;
  mutable pre_select : (unit -> unit) option;
      (* fired at every scheduling-decision boundary, just before select *)
  mutable profiler : Obs.Profile.t option;
      (* when set, dispatch (slice execution) and publish (bus fan-out)
         host-clock costs are recorded; schedulers time their own phases *)
}

(* Event publication: every site guards with [observed] so that with no
   subscribers the cost is a single array-length check and no event is
   allocated (the tracing-off hot path must stay free). *)
let[@inline] observed k = Obs.Bus.active k.bus
let[@inline] actor th = Obs.Event.actor_of ~tid:th.id ~tname:th.name

let emit k ev =
  match k.profiler with
  | None -> Obs.Bus.emit k.bus ~time:k.now ev
  | Some p ->
      let t0 = Obs.Profile.start p in
      Obs.Bus.emit k.bus ~time:k.now ev;
      Obs.Profile.stop p Obs.Profile.Publish t0

let create ?(quantum = Time.ms 100) ?(cpus = 1) ~sched () =
  if quantum <= 0 then invalid_arg "Kernel.create: quantum <= 0";
  if cpus < 1 then invalid_arg "Kernel.create: cpus < 1";
  if cpus > 1 && not sched.smp_ok then
    invalid_arg
      ("Kernel.create: scheduler " ^ sched.sched_name
     ^ " does not support cpus > 1");
  {
    now = 0;
    quantum;
    cpus;
    cpu_now = Array.make cpus 0;
    sel = Array.make cpus None;
    sched;
    timers = Heap.create ();
    next_id = 0;
    th_slots = Slots.create ();
    th_tab = [||];
    by_name = Hashtbl.create 64;
    failed = [];
    idle = 0;
    slices = 0;
    bus = Obs.Bus.create ();
    tracer_sub = None;
    current = None;
    ports_v = Vec.create ();
    mutexes_v = Vec.create ();
    conds_v = Vec.create ();
    sems_v = Vec.create ();
    pre_select = None;
    profiler = None;
  }

let now k = k.now
let quantum k = k.quantum
let cpus k = k.cpus

let cpu_clock k cpu =
  if cpu < 0 || cpu >= k.cpus then invalid_arg "Kernel.cpu_clock: bad cpu";
  k.cpu_now.(cpu)

let fresh_id k =
  let id = k.next_id in
  k.next_id <- id + 1;
  id

let spawn k ~name body =
  let th =
    {
      id = fresh_id k;
      tslot = -1;
      name;
      state = Runnable;
      pending = Not_started body;
      cpu = 0;
      compensate = 1.;
      donating_to = [];
      donors = [];
      owned = [];
      failure = None;
      joiners = [];
      servicing = [];
      created_at = k.now;
      exited_at = None;
    }
  in
  let s = Slots.alloc k.th_slots in
  th.tslot <- s;
  k.th_tab <- Slots.grow_payload k.th_slots k.th_tab ~dummy:th;
  k.th_tab.(s) <- th;
  if not (Hashtbl.mem k.by_name name) then Hashtbl.add k.by_name name th;
  k.sched.attach th;
  if observed k then emit k (Obs.Event.Spawn { who = actor th });
  th

let create_port ?(capacity = max_int) ?(shed = Reject_new) k ~name =
  if capacity < 1 then invalid_arg "Kernel.create_port: capacity must be >= 1";
  let p =
    {
      port_id = fresh_id k;
      port_name = name;
      queue = Queue.create ();
      waiters = Queue.create ();
      capacity;
      shed;
      shed_count = 0;
      rej = Rejected name;
    }
  in
  Vec.push k.ports_v p;
  p

let create_mutex k ?(policy = Fifo) name =
  let m =
    { mutex_id = fresh_id k; mutex_name = name; policy; owner = None; lock_waiters = []; acquisitions = 0 }
  in
  Vec.push k.mutexes_v m;
  m

let create_condition k ?(policy = Fifo) name =
  let c =
    { cond_id = fresh_id k; cond_name = name; cond_policy = policy; cond_waiters = []; signals = 0 }
  in
  Vec.push k.conds_v c;
  c

let create_semaphore k ?(policy = Fifo) ~initial name =
  if initial < 0 then invalid_arg "Kernel.create_semaphore: negative initial count";
  let sm =
    { sem_id = fresh_id k; sem_name = name; sem_policy = policy; count = initial; sem_waiters = [] }
  in
  Vec.push k.sems_v sm;
  sm

let ports k = Vec.to_list k.ports_v
let mutexes k = Vec.to_list k.mutexes_v
let conditions k = Vec.to_list k.conds_v
let semaphores k = Vec.to_list k.sems_v

(* --- state transitions ------------------------------------------------ *)

let block k th ~on =
  th.state <- Blocked;
  k.sched.unready th;
  if observed k then emit k (Obs.Event.Block { who = actor th; on })

let unblock k th =
  th.state <- Runnable;
  k.sched.ready th;
  if observed k then emit k (Obs.Event.Wake { who = actor th })

(* --- bounded-port admission ------------------------------------------- *)

(* A waiter entry is live only while its thread still sits in
   [Waiting_recv]; entries for threads that caught [Killed] and moved on
   are skipped here exactly as [deliver_or_queue] skips them. *)
let port_has_live_waiter p =
  Queue.fold
    (fun acc w ->
      acc || (match w.pending with Waiting_recv _ -> true | _ -> false))
    false p.waiters

(* The admission predicate for a plain [Api.rpc]: a message is shed only
   when it would have to queue (no live server waiting) and the queue is
   already at capacity. One int compare on the unbounded default. *)
let port_would_shed p =
  Queue.length p.queue >= p.capacity && not (port_has_live_waiter p)

(* Pop the oldest evictable queued message under [Drop_oldest]. Scatter
   shards ([Api.rpc_many] senders, blocked in [Waiting_replies]) are never
   evicted — partially-shedding a gather has no sensible client-side
   story — so eviction candidates are single-shot requests, live
   ([Waiting_reply]) or stale (sender dead or moved on). The head of the
   queue is almost always evictable; the rebuild below only runs when a
   scatter shard is oldest. *)
let take_oldest_victim p =
  let evictable m =
    match m.sender.pending with Waiting_replies _ -> false | _ -> true
  in
  match Queue.peek_opt p.queue with
  | None -> None
  | Some m when evictable m ->
      ignore (Queue.pop p.queue);
      Some m
  | Some _ ->
      let keep = Queue.create () in
      let victim = ref None in
      Queue.iter
        (fun m ->
          if Option.is_none !victim && evictable m then victim := Some m
          else Queue.push m keep)
        p.queue;
      Queue.clear p.queue;
      Queue.transfer keep p.queue;
      !victim

let port_shed_count p = p.shed_count

(* remove the first element satisfying [p]; the rest keep their order *)
let remove_one p lst =
  let removed = ref false in
  List.filter
    (fun x ->
      if (not !removed) && p x then begin
        removed := true;
        false
      end
      else true)
    lst

let donate k ~src ~dst =
  src.donating_to <- dst :: src.donating_to;
  dst.donors <- src :: dst.donors;
  k.sched.donate ~src ~dst;
  if observed k then emit k (Obs.Event.Donate { src = actor src; dst = actor dst })

let revoke k src =
  if src.donating_to <> [] then begin
    List.iter
      (fun d -> d.donors <- remove_one (fun s -> s == src) d.donors)
      src.donating_to;
    src.donating_to <- [];
    k.sched.revoke ~src
  end

let revoke_from k ~src ~dst =
  (* remove one occurrence only: a scatter may target the same server (or
     port) several times, one donation each *)
  if List.exists (fun d -> d.id = dst.id) src.donating_to then begin
    src.donating_to <- remove_one (fun d -> d.id = dst.id) src.donating_to;
    dst.donors <- remove_one (fun s -> s == src) dst.donors;
    k.sched.revoke_from ~src ~dst
  end

let grant_mutex k m th ~contended =
  m.owner <- Some th;
  th.owned <- m :: th.owned;
  m.acquisitions <- m.acquisitions + 1;
  if observed k then
    emit k
      (Obs.Event.Lock_acquire { who = actor th; mutex = m.mutex_name; contended })

(* Hand a released mutex to its next waiter (by wake policy), moving the
   remaining waiters' funding to the new owner. [who] is the releasing
   thread: the unlocker on the normal path, the dead owner on the robust
   path ({!finish}). *)
let release_mutex k who m =
  (match m.owner with
  | Some o -> o.owned <- List.filter (fun m' -> m' != m) o.owned
  | None -> ());
  m.owner <- None;
  if observed k then
    emit k (Obs.Event.Lock_release { who = actor who; mutex = m.mutex_name });
  match m.lock_waiters with
  | [] -> ()
  | waiters ->
      let next =
        match m.policy with
        | Fifo -> List.hd waiters
        | Lottery_wake -> (
            match k.sched.pick_waiter waiters with
            | Some w -> w
            | None -> List.hd waiters)
      in
      m.lock_waiters <- List.filter (fun w -> w.id <> next.id) waiters;
      grant_mutex k m next ~contended:true;
      (match next.pending with
      | Waiting_lock { k = kn; _ } -> next.pending <- Ready_unit kn
      | _ -> assert false);
      revoke k next;
      unblock k next;
      (* Remaining waiters now fund the new owner (the paper's mutex
         currency moves its inheritance ticket to the winner). *)
      List.iter
        (fun w ->
          revoke k w;
          donate k ~src:w ~dst:next)
        m.lock_waiters

let finish k th exn_opt =
  th.pending <- Exited;
  th.state <- Zombie;
  th.exited_at <- Some k.now;
  th.failure <- exn_opt;
  (match exn_opt with Some e -> k.failed <- (th, e) :: k.failed | None -> ());
  revoke k th;
  (* Robust-mutex handoff: a thread that dies holding a mutex — killed in
     the grant window before its [lock] ever returned, or exiting without
     running cleanup — must not orphan it. Release and hand off exactly as
     an unlock would, so the waiters neither deadlock on a zombie owner
     nor keep funding it. [owned] tracks exactly the held locks, so this is
     O(held), not a sweep over every mutex ever created. *)
  let held = th.owned in
  List.iter
    (fun m ->
      match m.owner with Some o when o == th -> release_mutex k th m | _ -> ())
    held;
  (* wake joiners before detaching: their transfer tickets still reference
     the dying thread's funding state *)
  List.iter
    (fun j ->
      match j.pending with
      | Waiting_join { k = kj; _ } ->
          j.pending <- Ready_unit kj;
          revoke k j;
          unblock k j
      | _ -> ())
    th.joiners;
  th.joiners <- [];
  (* Threads still donating *to* the dying thread (e.g. blocked RPC clients
     whose server dies): the scheduler's detach below destroys the transfer
     tickets, so scrub the kernel-side donation lists too — the two views
     must stay coherent for the invariant audit, and a later revoke_from
     for a dead target must be a no-op on both sides. [donors] is the
     reverse index, so the scrub is O(degree), not O(threads). *)
  List.iter
    (fun src ->
      if src != th && src.donating_to <> [] then
        src.donating_to <- List.filter (fun d -> d.id <> th.id) src.donating_to)
    th.donors;
  th.donors <- [];
  k.sched.detach th;
  (* reap: recycle the arena slot; the record stays valid for holders *)
  if th.tslot >= 0 then begin
    Slots.release k.th_slots th.tslot;
    th.tslot <- -1
  end;
  if observed k then
    emit k
      (Obs.Event.Exit
         { who = actor th; failure = Option.map Printexc.to_string exn_opt })

(* --- IPC and mutex operations (run inside effect handlers) ------------ *)

(* The server begins servicing [msg]: push it on the span-parent stack and
   announce the pickup. Called at all three pickup sites — direct handoff,
   queue drain on receive, and poll. *)
let begin_service k srv msg ~port:p =
  srv.servicing <- msg.msg_id :: srv.servicing;
  if observed k then
    emit k
      (Obs.Event.Rpc_recv
         { who = actor srv; port = p.port_name; msg_id = msg.msg_id;
           sender = actor msg.sender })

let end_service srv id =
  match srv.servicing with
  | x :: rest when x = id -> srv.servicing <- rest
  | l -> srv.servicing <- List.filter (fun x -> x <> id) l

let do_reply k msg result =
  let client = msg.sender in
  let server_actor () =
    match k.current with Some s -> actor s | None -> actor client
  in
  let emit_reply () =
    if observed k then
      emit k
        (Obs.Event.Rpc_reply
           { who = server_actor (); client = actor client; msg_id = msg.msg_id })
  in
  (* Replying to a client that exited, was killed, or caught [Killed] and
     abandoned the request must not fault the server: the reply is dropped
     as a traced no-op. Only replies the client could never have stopped
     waiting for on its own — a second answer to an already-answered
     request — remain programming errors that raise in the server. *)
  let drop reason =
    if observed k then
      emit k
        (Obs.Event.Rpc_reply_dropped
           { who = server_actor (); client = actor client; msg_id = msg.msg_id;
             reason })
  in
  match client.pending with
  | Waiting_reply { k = kc } ->
      emit_reply ();
      client.pending <- Ready_reply (result, kc);
      revoke k client;
      unblock k client
  | Waiting_replies scatter ->
      if scatter.replies.(msg.slot) <> None then
        invalid_arg "Api.reply: duplicate reply to a scatter slot";
      emit_reply ();
      scatter.replies.(msg.slot) <- Some result;
      scatter.outstanding <- scatter.outstanding - 1;
      (* the replying server's share of the divided transfer is withdrawn;
         remaining servers keep (now larger) shares of the client's value *)
      (match k.current with
      | Some server -> revoke_from k ~src:client ~dst:server
      | None -> ());
      if scatter.outstanding = 0 then begin
        let results =
          Array.to_list (Array.map (fun r -> Option.get r) scatter.replies)
        in
        client.pending <- Ready_replies (results, scatter.ks);
        revoke k client;
        unblock k client
      end
  | Ready_reply _ | Ready_replies _ ->
      (* the request was already answered and the client merely hasn't run
         yet: a second reply is a genuine duplicate *)
      invalid_arg "Api.reply: sender is not awaiting a reply"
  | Exited -> drop "client exited"
  | _ -> drop "client no longer waiting"

let do_reply k msg result =
  do_reply k msg result;
  (* replied (or dropped): the request leaves the server's span stack *)
  match k.current with
  | Some srv -> end_service srv msg.msg_id
  | None -> ()

let do_unlock k th m =
  (match m.owner with
  | Some o when o == th -> ()
  | Some _ | None -> invalid_arg "Api.unlock: thread does not own mutex");
  release_mutex k th m

let choose_waiter k policy waiters =
  match waiters with
  | [] -> None
  | first :: _ -> (
      match policy with
      | Fifo -> Some first
      | Lottery_wake -> (
          match k.sched.pick_waiter waiters with
          | Some w -> Some w
          | None -> Some first))

(* A condition waiter woken by signal/broadcast must reacquire the mutex it
   released: grant immediately if free, otherwise join the mutex queue
   (funding the current owner like any other lock waiter). *)
let reacquire_after_signal k th m kc =
  match m.owner with
  | None ->
      grant_mutex k m th ~contended:false;
      th.pending <- Ready_unit kc;
      unblock k th
  | Some owner ->
      m.lock_waiters <- m.lock_waiters @ [ th ];
      th.pending <- Waiting_lock { mutex = m; k = kc };
      donate k ~src:th ~dst:owner

let wake_cond_waiter k c w =
  c.cond_waiters <- List.filter (fun w' -> w'.id <> w.id) c.cond_waiters;
  match w.pending with
  | Waiting_cond { mutex; k = kc; _ } -> reacquire_after_signal k w mutex kc
  | _ -> assert false

let do_signal k c =
  c.signals <- c.signals + 1;
  match choose_waiter k c.cond_policy c.cond_waiters with
  | None -> ()
  | Some w -> wake_cond_waiter k c w

let do_broadcast k c =
  c.signals <- c.signals + 1;
  (* wake in policy order so a lottery condition hands the mutex queue
     positions out by funding *)
  let rec drain () =
    match choose_waiter k c.cond_policy c.cond_waiters with
    | None -> ()
    | Some w ->
        wake_cond_waiter k c w;
        drain ()
  in
  drain ()

let do_sem_post k sm =
  match choose_waiter k sm.sem_policy sm.sem_waiters with
  | None -> sm.count <- sm.count + 1
  | Some w -> (
      sm.sem_waiters <- List.filter (fun w' -> w'.id <> w.id) sm.sem_waiters;
      match w.pending with
      | Waiting_sem { k = kc; _ } ->
          w.pending <- Ready_unit kc;
          unblock k w
      | _ -> assert false)

(* --- running thread bodies -------------------------------------------- *)

let rec start_body (k : t) (th : thread) (body : unit -> unit) : step =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> S_done);
      exnc = (fun e -> S_failed e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Effects.Compute n ->
              Some (fun (kc : (a, step) continuation) -> S_compute (n, kc))
          | Effects.Sleep d ->
              Some (fun (kc : (a, step) continuation) -> S_sleep (d, kc))
          | Effects.Rpc (p, payload) ->
              Some (fun (kc : (a, step) continuation) -> S_rpc (p, payload, kc))
          | Effects.Rpc_many targets ->
              Some (fun (kc : (a, step) continuation) -> S_rpc_many (targets, kc))
          | Effects.Receive p ->
              Some (fun (kc : (a, step) continuation) -> S_recv (p, kc))
          | Effects.Poll_receive p ->
              Some
                (fun (kc : (a, step) continuation) ->
                  match Queue.take_opt p.queue with
                  | Some msg ->
                      begin_service k th msg ~port:p;
                      if msg.sender.state = Blocked then
                        donate k ~src:msg.sender ~dst:th;
                      continue kc (Some msg)
                  | None -> continue kc None)
          | Effects.Lock m ->
              Some (fun (kc : (a, step) continuation) -> S_lock (m, kc))
          | Effects.Wait (c, m) ->
              Some (fun (kc : (a, step) continuation) -> S_wait (c, m, kc))
          | Effects.Sem_wait sm ->
              Some (fun (kc : (a, step) continuation) -> S_sem_wait (sm, kc))
          | Effects.Join target ->
              Some (fun (kc : (a, step) continuation) -> S_join (target, kc))
          | Effects.Signal c ->
              Some
                (fun (kc : (a, step) continuation) ->
                  do_signal k c;
                  continue kc ())
          | Effects.Broadcast c ->
              Some
                (fun (kc : (a, step) continuation) ->
                  do_broadcast k c;
                  continue kc ())
          | Effects.Sem_post sm ->
              Some
                (fun (kc : (a, step) continuation) ->
                  do_sem_post k sm;
                  continue kc ())
          | Effects.Yield ->
              Some (fun (kc : (a, step) continuation) -> S_yield kc)
          | Effects.Now ->
              Some (fun (kc : (a, step) continuation) -> continue kc k.now)
          | Effects.Self ->
              Some (fun (kc : (a, step) continuation) -> continue kc th)
          | Effects.Spawn (name, body') ->
              Some
                (fun (kc : (a, step) continuation) ->
                  continue kc (spawn k ~name body'))
          | Effects.Reply (msg, result) ->
              Some
                (fun (kc : (a, step) continuation) ->
                  match do_reply k msg result with
                  | () -> continue kc ()
                  | exception e -> discontinue kc e)
          | Effects.Unlock m ->
              Some
                (fun (kc : (a, step) continuation) ->
                  match do_unlock k th m with
                  | () -> continue kc ()
                  | exception e -> discontinue kc e)
          | _ -> None);
    }

(* Classify a step, installing the thread's new pending state. *)
and handle_step k th (s : step) : [ `Continue | `Blocked | `Exited | `Yielded ] =
  match s with
  | S_done ->
      finish k th None;
      `Exited
  | S_failed e ->
      finish k th (Some e);
      `Exited
  | S_yield kc ->
      th.pending <- Ready_unit kc;
      `Yielded
  | S_join (target, kc) ->
      if target.state = Zombie then begin
        th.pending <- Ready_unit kc;
        `Continue
      end
      else if target == th then
        handle_step k th
          (Effect.Deep.discontinue kc (Invalid_argument "Api.join: cannot join self"))
      else begin
        th.pending <- Waiting_join { target; k = kc };
        block k th ~on:"join";
        target.joiners <- target.joiners @ [ th ];
        (* one more transfer site: the joiner's rights speed the target up *)
        donate k ~src:th ~dst:target;
        `Blocked
      end
  | S_compute (n, kc) ->
      if n <= 0 then begin
        th.pending <- Ready_unit kc;
        `Continue
      end
      else begin
        th.pending <- Compute { remaining = n; kc };
        `Continue
      end
  | S_sleep (d, kc) ->
      let until = k.now + max d 0 in
      th.pending <- Sleeping { until; k = kc };
      block k th ~on:"sleep";
      Heap.push k.timers ~key:until th;
      `Blocked
  | S_rpc_many (targets, kc) ->
      if targets = [] then
        handle_step k th
          (Effect.Deep.discontinue kc (Invalid_argument "Api.rpc_many: no targets"))
      else begin
        let n = List.length targets in
        th.pending <-
          Waiting_replies { replies = Array.make n None; outstanding = n; ks = kc };
        block k th ~on:"rpc";
        List.iteri
          (fun slot (p, payload) ->
            let msg =
              { msg_id = fresh_id k; sender = th; payload; sent_at = k.now; slot }
            in
            deliver_or_queue k th p msg)
          targets;
        `Blocked
      end
  | S_rpc (p, payload, kc) ->
      (* the id is consumed whether or not the request is admitted, so a
         bounded run's id stream matches the same run traced or untraced *)
      let id = fresh_id k in
      if port_would_shed p then shed_rpc k th p ~id ~payload kc
      else begin
        let msg = { msg_id = id; sender = th; payload; sent_at = k.now; slot = 0 } in
        th.pending <- Waiting_reply { k = kc };
        block k th ~on:"rpc";
        deliver_or_queue k th p msg;
        `Blocked
      end
  | S_recv (p, kc) -> (
      match Queue.take_opt p.queue with
      | Some msg ->
          th.pending <- Ready_msg (msg, kc);
          begin_service k th msg ~port:p;
          (* The queued sender's ticket transfer lands on whichever server
             thread picks the message up (paper §4.6). *)
          if msg.sender.state = Blocked then donate k ~src:msg.sender ~dst:th;
          `Continue
      | None ->
          th.pending <- Waiting_recv { port = p; k = kc };
          block k th ~on:"recv";
          Queue.push th p.waiters;
          `Blocked)
  | S_lock (m, kc) -> (
      match m.owner with
      | None ->
          grant_mutex k m th ~contended:false;
          th.pending <- Ready_unit kc;
          `Continue
      | Some owner ->
          m.lock_waiters <- m.lock_waiters @ [ th ];
          th.pending <- Waiting_lock { mutex = m; k = kc };
          block k th ~on:"lock";
          donate k ~src:th ~dst:owner;
          `Blocked)
  | S_wait (c, m, kc) -> (
      (* atomically release the mutex and block on the condition *)
      match do_unlock k th m with
      | () ->
          th.pending <- Waiting_cond { cond = c; mutex = m; k = kc };
          block k th ~on:"cond";
          c.cond_waiters <- c.cond_waiters @ [ th ];
          `Blocked
      | exception e -> handle_step k th (Effect.Deep.discontinue kc e))
  | S_sem_wait (sm, kc) ->
      if sm.count > 0 then begin
        sm.count <- sm.count - 1;
        th.pending <- Ready_unit kc;
        `Continue
      end
      else begin
        sm.sem_waiters <- sm.sem_waiters @ [ th ];
        th.pending <- Waiting_sem { sem = sm; k = kc };
        block k th ~on:"sem";
        `Blocked
      end

(* Admission control refused [th]'s request on full port [p]: bounce the
   new request (reject-new, or drop-oldest finding nothing evictable), or
   evict the oldest queued single-shot request and admit the new one. *)
and shed_rpc k th p ~id ~payload kc =
  match p.shed with
  | Reject_new -> reject_rpc k th p ~id ~reason:"reject-new" kc
  | Drop_oldest -> (
      match take_oldest_victim p with
      | None -> reject_rpc k th p ~id ~reason:"no-victim" kc
      | Some victim ->
          p.shed_count <- p.shed_count + 1;
          if observed k then
            emit k
              (Obs.Event.Rpc_shed
                 { who = actor victim.sender; port = p.port_name;
                   msg_id = victim.msg_id; reason = "drop-oldest";
                   parent =
                     (match victim.sender.servicing with
                     | [] -> None
                     | s :: _ -> Some s) });
          (* admit the new request before unwinding the victim, so the
             queue never overshoots capacity if the victim's body catches
             [Rejected] and immediately retries *)
          let msg = { msg_id = id; sender = th; payload; sent_at = k.now; slot = 0 } in
          th.pending <- Waiting_reply { k = kc };
          block k th ~on:"rpc";
          deliver_or_queue k th p msg;
          (* deliver [Rejected] into the victim's sender, [kill]-style: the
             body may catch it and keep going, so fix up catch-and-continue
             threads that came back runnable without being re-readied *)
          (match victim.sender.pending with
          | Waiting_reply { k = vkc } ->
              let v = victim.sender in
              if v.state = Blocked then revoke k v;
              ignore (handle_step k v (Effect.Deep.discontinue vkc p.rej));
              (match (v.state, v.pending) with
              | ( Blocked,
                  ( Not_started _ | Compute _ | Ready_unit _ | Ready_msg _
                  | Ready_reply _ | Ready_replies _ ) ) ->
                  unblock k v
              | _ -> ())
          | _ -> () (* stale: the sender died or moved on; nothing waits *));
          `Blocked)

and reject_rpc k th p ~id ~reason kc =
  p.shed_count <- p.shed_count + 1;
  if observed k then
    emit k
      (Obs.Event.Rpc_shed
         { who = actor th; port = p.port_name; msg_id = id; reason;
           parent =
             (match th.servicing with [] -> None | s :: _ -> Some s) });
  (* the sender never blocked: [Rejected] surfaces directly in its body *)
  handle_step k th (Effect.Deep.discontinue kc p.rej)

(* hand a freshly sent message to a live waiting server, or queue it *)
and deliver_or_queue k sender p msg =
  if observed k then
    emit k
      (Obs.Event.Rpc_send
         { who = actor sender; port = p.port_name; msg_id = msg.msg_id;
           parent =
             (* the span the sender is itself servicing, if any: nested
                RPC chains form trees *)
             (match sender.servicing with [] -> None | s :: _ -> Some s) });
  let rec next_live_waiter () =
    match Queue.take_opt p.waiters with
    | Some srv when (match srv.pending with Waiting_recv _ -> true | _ -> false) ->
        Some srv
    | Some _ -> next_live_waiter () (* killed while waiting; skip *)
    | None -> None
  in
  match next_live_waiter () with
  | Some srv -> (
      match srv.pending with
      | Waiting_recv { k = ks; _ } ->
          srv.pending <- Ready_msg (msg, ks);
          begin_service k srv msg ~port:p;
          unblock k srv;
          donate k ~src:sender ~dst:srv
      | _ -> assert false)
  | None -> Queue.push msg p.queue

(* Drive a thread's continuation until it needs CPU time, blocks, yields or
   exits. All non-compute kernel operations are instantaneous in virtual
   time. *)
and advance k th : [ `Compute | `Blocked | `Exited | `Yielded ] =
  match th.pending with
  | Not_started body ->
      let s = start_body k th body in
      push_on k th s
  | Ready_unit kc -> push_on k th (Effect.Deep.continue kc ())
  | Ready_msg (m, kc) -> push_on k th (Effect.Deep.continue kc m)
  | Ready_reply (r, kc) -> push_on k th (Effect.Deep.continue kc r)
  | Ready_replies (rs, kc) -> push_on k th (Effect.Deep.continue kc rs)
  | Compute c when c.remaining <= 0 -> push_on k th (Effect.Deep.continue c.kc ())
  | Compute _ -> `Compute
  | Sleeping _ | Waiting_recv _ | Waiting_reply _ | Waiting_replies _
  | Waiting_lock _ | Waiting_cond _ | Waiting_sem _ | Waiting_join _ ->
      `Blocked
  | Exited -> `Exited

and push_on k th s =
  match handle_step k th s with
  | `Continue -> advance k th
  | (`Blocked | `Exited | `Yielded) as r -> r

(* Forcibly terminate a thread: deliver {!Types.Killed} into its body so
   exception handlers (lock cleanup and the like) run, detach it from
   whatever it was waiting on, and reap it. Must not target the currently
   running thread. *)
let kill k th =
  (match k.current with
  | Some c when c == th -> invalid_arg "Kernel.kill: cannot kill the running thread"
  | _ -> ());
  (match th.pending with
  | Exited -> ()
  | Not_started _ -> finish k th (Some Killed)
  | _ ->
      (* unhook from wait lists first so nothing wakes a zombie *)
      (match th.pending with
      | Waiting_lock { mutex; _ } ->
          mutex.lock_waiters <- List.filter (fun w -> w.id <> th.id) mutex.lock_waiters
      | Waiting_cond { cond; _ } ->
          cond.cond_waiters <- List.filter (fun w -> w.id <> th.id) cond.cond_waiters
      | Waiting_sem { sem; _ } ->
          sem.sem_waiters <- List.filter (fun w -> w.id <> th.id) sem.sem_waiters
      | Waiting_join { target; _ } ->
          target.joiners <- List.filter (fun w -> w.id <> th.id) target.joiners
      | Waiting_recv { port; _ } ->
          (* Queue has no removal; rebuild without the victim so no zombie
             lingers on a port's waiter list. *)
          let keep = Queue.create () in
          Queue.iter (fun w -> if w.id <> th.id then Queue.push w keep) port.waiters;
          Queue.clear port.waiters;
          Queue.transfer keep port.waiters
      | _ -> () (* the timer heap skips dead entries lazily *));
      if th.state = Blocked then revoke k th;
      let deliver (type a) (kc : (a, step) Effect.Deep.continuation) =
        (* the body may catch Killed and run cleanup; whatever step it
           produces next is processed normally *)
        ignore (handle_step k th (Effect.Deep.discontinue kc Killed))
      in
      (match th.pending with
      | Compute { kc; _ } -> deliver kc
      | Sleeping { k = kc; _ } -> deliver kc
      | Waiting_recv { k = kc; _ } -> deliver kc
      | Waiting_reply { k = kc } -> deliver kc
      | Waiting_replies { ks = kc; _ } -> deliver kc
      | Waiting_lock { k = kc; _ } -> deliver kc
      | Waiting_cond { k = kc; _ } -> deliver kc
      | Waiting_sem { k = kc; _ } -> deliver kc
      | Waiting_join { k = kc; _ } -> deliver kc
      | Ready_unit kc -> deliver kc
      | Ready_msg (_, kc) -> deliver kc
      | Ready_reply (_, kc) -> deliver kc
      | Ready_replies (_, kc) -> deliver kc
      | Not_started _ | Exited -> ());
      (* If the body caught Killed and kept going, respect that: a thread
         that blocked again (sleep, lock, ...) installed a coherent waiting
         state via [handle_step], but one that came back runnable — e.g.
         [wait]'s reacquire path grabbing a free mutex — was never
         re-readied, since nothing was running it. Fix the state up here so
         catch-and-continue threads actually get scheduled again. *)
      (match (th.state, th.pending) with
      | ( Blocked,
          ( Not_started _ | Compute _ | Ready_unit _ | Ready_msg _
          | Ready_reply _ | Ready_replies _ ) ) ->
          unblock k th
      | _ -> ()));
  ignore k

(* --- the scheduling loop ----------------------------------------------- *)

(* A timer-heap entry is live only while its thread is still sleeping
   toward that exact deadline. Killed sleepers — and sleepers that caught
   [Killed] and moved on — leave stale entries behind (the heap has no
   removal); both the waker and the idle-time branch must ignore them. *)
let timer_entry_live ~key th =
  match th.pending with Sleeping { until; _ } -> until = key | _ -> false

(* Both walkers use the non-allocating heap accessors (is_empty/min_key/
   min_elt/drop_min) in a flat while loop: [peek_min]'s option-of-tuple and
   a per-call [let rec] closure would otherwise charge every scheduling
   decision a handful of minor words even when the heap is empty. *)
let prune_stale_timers k =
  let scanning = ref true in
  while !scanning do
    if Heap.is_empty k.timers then scanning := false
    else begin
      let key = Heap.min_key k.timers in
      let th = Heap.min_elt k.timers in
      if timer_entry_live ~key th then scanning := false
      else Heap.drop_min k.timers
    end
  done

let wake_timers k =
  let waking = ref true in
  while !waking do
    prune_stale_timers k;
    if Heap.is_empty k.timers || Heap.min_key k.timers > k.now then
      waking := false
    else begin
      let th = Heap.min_elt k.timers in
      Heap.drop_min k.timers;
      match th.pending with
      | Sleeping { k = kc; _ } ->
          th.pending <- Ready_unit kc;
          unblock k th
      | _ -> ()
    end
  done

let run_slice k th ~cpu ~cur ~horizon =
  k.slices <- k.slices + 1;
  th.state <- Running;
  (* Starting a fresh quantum cancels any outstanding compensation ticket
     (paper §4.5: the inflation lasts "until the client starts its next
     quantum"). *)
  th.compensate <- 1.;
  if observed k then emit k (Obs.Event.Select { who = actor th; cpu });
  let slice_left = ref k.quantum in
  let outcome = ref `Preempted in
  (* [cur] is the scheduler's own [Some th] (select returns a preallocated
     option); reusing it keeps the dispatch path from building a fresh one
     per slice. *)
  k.current <- cur;
  (try
     while true do
       match advance k th with
       | `Blocked ->
           outcome := `Blocked;
           raise Exit
       | `Exited ->
           outcome := `Exited;
           raise Exit
       | `Yielded ->
           outcome := `Yielded;
           raise Exit
       | `Compute ->
           if !slice_left = 0 then begin
             outcome := `Preempted;
             raise Exit
           end;
           let c =
             match th.pending with Compute c -> c | _ -> assert false
           in
           let budget = min c.remaining !slice_left in
           let budget = min budget (max 1 (horizon - k.now)) in
           k.now <- k.now + budget;
           th.cpu <- th.cpu + budget;
           slice_left := !slice_left - budget;
           c.remaining <- c.remaining - budget;
           if k.now >= horizon then begin
             outcome := `Horizon;
             raise Exit
           end
     done
   with Exit -> ());
  k.current <- None;
  let used = k.quantum - !slice_left in
  let blocked = !outcome = `Blocked in
  (match !outcome with
  | `Blocked | `Exited -> ()
  | `Preempted | `Yielded | `Horizon -> th.state <- Runnable);
  if observed k then begin
    let why =
      match !outcome with
      | `Preempted -> Obs.Event.End_quantum
      | `Yielded -> Obs.Event.End_yield
      | `Blocked -> Obs.Event.End_block
      | `Exited -> Obs.Event.End_exit
      | `Horizon -> Obs.Event.End_horizon
    in
    emit k (Obs.Event.Preempt { who = actor th; used; quantum = k.quantum; why })
  end;
  (* Compensation ticket: a thread that gave up the CPU (blocked or yielded)
     after consuming only a fraction f of its quantum has its value inflated
     by 1/f until it next starts a quantum. *)
  let gave_up = match !outcome with `Blocked | `Yielded -> true | _ -> false in
  if gave_up && used < k.quantum then begin
    th.compensate <- float_of_int k.quantum /. float_of_int (max used 1);
    if observed k then
      emit k (Obs.Event.Compensate { who = actor th; factor = th.compensate })
  end;
  k.sched.account th ~used ~quantum:k.quantum ~blocked

let has_live_blocked k =
  Slots.exists_live k.th_slots (fun s -> k.th_tab.(s).state = Blocked)

(* The scheduling loop proceeds in *rounds* anchored at the minimum per-CPU
   clock T (the round floor): every CPU whose clock sits at T first selects
   (in CPU-id order, so replays are deterministic), then the selected
   slices run (again in id order). Splitting select from execution makes
   one round's slices virtually concurrent: a thread woken mid-slice by
   CPU 0 cannot be dispatched by CPU 1 "in the past" at T, and — since
   smp_ok schedulers dequeue on dispatch and only re-enqueue in [account]
   — no thread is ever picked by two CPUs of the same round. CPUs whose
   clock is ahead of T simply sit the round out. With [cpus = 1] every
   round is exactly one select + one slice at [k.now], byte-identical to
   the historical single-CPU loop. *)
let min_cpu_now k =
  let m = ref k.cpu_now.(0) in
  for c = 1 to k.cpus - 1 do
    if k.cpu_now.(c) < !m then m := k.cpu_now.(c)
  done;
  !m

let max_cpu_now k =
  let m = ref k.cpu_now.(0) in
  for c = 1 to k.cpus - 1 do
    if k.cpu_now.(c) > !m then m := k.cpu_now.(c)
  done;
  !m

(* earliest clock strictly ahead of the floor [t]; [max_int] if none *)
let next_busy_clock k ~t =
  let m = ref max_int in
  for c = 0 to k.cpus - 1 do
    if k.cpu_now.(c) > t && k.cpu_now.(c) < !m then m := k.cpu_now.(c)
  done;
  !m

let run k ~until =
  let deadlocked = ref false in
  let stop = ref false in
  while (not !stop) && min_cpu_now k < until do
    let t = min_cpu_now k in
    k.now <- t;
    wake_timers k;
    (* phase 1: every CPU at the floor picks a thread against the state at
       time T, before any of this round's slices execute *)
    let ran_any = ref false in
    let idle_at_t = ref 0 in
    for cpu = 0 to k.cpus - 1 do
      if k.cpu_now.(cpu) = t then begin
        (match k.pre_select with Some f -> f () | None -> ());
        let cur = k.sched.select ~cpu in
        k.sel.(cpu) <- cur;
        match cur with Some _ -> () | None -> incr idle_at_t
      end
      else k.sel.(cpu) <- None
    done;
    (* phase 2: run the round's slices, each starting at T. [sel] is left
       in place so the idle pass below can tell idle CPUs (None at the
       floor) from ones that ran a zero-length slice; phase 1 rewrites
       every entry next round. *)
    for cpu = 0 to k.cpus - 1 do
      match k.sel.(cpu) with
      | None -> ()
      | Some th as cur ->
          (* a pre_select hook later in phase 1 (fault injection) may have
             killed an already-dispatched thread; drop that slice *)
          if th.state = Runnable then begin
            ran_any := true;
            k.now <- t;
            (match k.profiler with
            | None -> run_slice k th ~cpu ~cur ~horizon:until
            | Some p ->
                let t0 = Obs.Profile.start p in
                run_slice k th ~cpu ~cur ~horizon:until;
                Obs.Profile.stop p Obs.Profile.Dispatch t0);
            k.cpu_now.(cpu) <- k.now
          end
    done;
    if !idle_at_t > 0 then begin
      (* Idle CPUs advance together to the next thing that can make work
         appear for them: the next *live* timer deadline (stale entries
         left by killed sleepers must not inflate idle_ticks or delay
         termination toward a phantom wakeup) or the next busy CPU's slice
         boundary, clamped to the horizon. *)
      prune_stale_timers k;
      let next_timer =
        if Heap.is_empty k.timers then max_int else Heap.min_key k.timers
      in
      let target = min next_timer (next_busy_clock k ~t) in
      if target < max_int then begin
        let target = min (max target t) until in
        for cpu = 0 to k.cpus - 1 do
          match k.sel.(cpu) with
          | None when k.cpu_now.(cpu) = t ->
              k.idle <- k.idle + (target - t);
              k.cpu_now.(cpu) <- target
          | _ -> ()
        done
      end
      else if not !ran_any then begin
        (* nothing ran, nothing sleeping, no CPU ahead: the simulation is
           over — a deadlock if blocked threads remain *)
        if has_live_blocked k then deadlocked := true;
        stop := true
      end
      (* [ran_any] with no timer and no CPU ahead: a zero-length slice kept
         the floor at T; the idle CPUs retry next round. *)
    end
  done;
  Array.fill k.sel 0 k.cpus None;
  k.now <- (if !stop then min_cpu_now k else max_cpu_now k);
  { ended_at = k.now; idle_ticks = k.idle; deadlocked = !deadlocked; slices = k.slices }

let threads k =
  List.rev
    (Slots.fold_live k.th_slots ~init:[] ~f:(fun acc s -> k.th_tab.(s) :: acc))

let live_thread_count k = Slots.live_count k.th_slots
let thread_slot th = th.tslot
let thread_generation k th = if th.tslot < 0 then -1 else Slots.gen k.th_slots th.tslot

let find_thread k name = Hashtbl.find_opt k.by_name name

let set_pre_select k f = k.pre_select <- f
let set_profiler k p = k.profiler <- p

(* --- invariant audit --------------------------------------------------- *)

(* Cross-check every thread's [state]/[pending] pair against the wait
   structures that claim it, and vice versa. Pure observation: no kernel
   state is modified, so it is safe to run between any two slices (e.g.
   from a [pre_select] hook). Violations are returned as strings and, when
   the bus has subscribers, emitted as [Invariant_violation] events. *)
let check_invariants k =
  let out = ref [] in
  let report ?th what =
    let who =
      match th with Some t -> actor t | None -> Obs.Event.kernel_actor
    in
    if observed k then emit k (Obs.Event.Invariant_violation { who; what });
    out := what :: !out
  in
  let vf ?th fmt = Printf.ksprintf (fun s -> report ?th s) fmt in
  let count_in pred lst = List.length (List.filter pred lst) in
  let count_q pred q =
    Queue.fold (fun acc w -> if pred w then acc + 1 else acc) 0 q
  in
  let is_waiting_pending = function
    | Sleeping _ | Waiting_recv _ | Waiting_reply _ | Waiting_replies _
    | Waiting_lock _ | Waiting_cond _ | Waiting_sem _ | Waiting_join _ -> true
    | _ -> false
  in
  let heap_entries = ref [] in
  Heap.iter k.timers (fun ~key th -> heap_entries := (key, th) :: !heap_entries);
  Slots.iter_live k.th_slots (fun slot ->
      let th = k.th_tab.(slot) in
      if th.tslot <> slot then
        vf ~th "%s: arena slot mismatch (record says %d, table says %d)"
          th.name th.tslot slot;
      (match (th.state, th.pending) with
      | Zombie, Exited -> ()
      | Zombie, _ -> vf ~th "%s: Zombie but pending is not Exited" th.name
      | _, Exited -> vf ~th "%s: pending Exited but state is not Zombie" th.name
      | Blocked, p when not (is_waiting_pending p) ->
          vf ~th "%s: Blocked with a runnable pending state" th.name
      | (Runnable | Running), p when is_waiting_pending p ->
          vf ~th "%s: runnable but pending says it is waiting" th.name
      | _ -> ());
      (match th.pending with
      | Sleeping { until; _ } ->
          if
            not
              (List.exists
                 (fun (key, t) -> key = until && t == th)
                 !heap_entries)
          then
            vf ~th "%s: Sleeping until %d with no matching timer-heap entry"
              th.name until
      | Waiting_lock { mutex = m; _ } ->
          let n = count_in (fun w -> w == th) m.lock_waiters in
          if n <> 1 then
            vf ~th "%s: Waiting_lock on %s but on its waiter list %d times"
              th.name m.mutex_name n
      | Waiting_cond { cond = c; _ } ->
          let n = count_in (fun w -> w == th) c.cond_waiters in
          if n <> 1 then
            vf ~th "%s: Waiting_cond on %s but on its waiter list %d times"
              th.name c.cond_name n
      | Waiting_sem { sem = s; _ } ->
          let n = count_in (fun w -> w == th) s.sem_waiters in
          if n <> 1 then
            vf ~th "%s: Waiting_sem on %s but on its waiter list %d times"
              th.name s.sem_name n
      | Waiting_recv { port = p; _ } ->
          let n = count_q (fun w -> w == th) p.waiters in
          if n <> 1 then
            vf ~th "%s: Waiting_recv on %s but on its waiter queue %d times"
              th.name p.port_name n
      | Waiting_join { target; _ } ->
          let n = count_in (fun w -> w == th) target.joiners in
          if n <> 1 then
            vf ~th "%s: Waiting_join on %s but on its joiner list %d times"
              th.name target.name n;
          if target.state = Zombie then
            vf ~th "%s: Waiting_join on already-exited %s" th.name target.name
      | Waiting_replies s ->
          let blanks =
            Array.fold_left
              (fun acc r -> if r = None then acc + 1 else acc)
              0 s.replies
          in
          if s.outstanding <> blanks then
            vf ~th "%s: scatter outstanding=%d but %d unreplied slots" th.name
              s.outstanding blanks;
          if s.outstanding <= 0 then
            vf ~th "%s: Waiting_replies with outstanding=%d (should be awake)"
              th.name s.outstanding
      | _ -> ());
      if th.donating_to <> [] then begin
        if th.state <> Blocked then
          vf ~th "%s: donating while not Blocked" th.name;
        List.iter
          (fun d ->
            if d.state = Zombie then
              vf ~th "%s: donating to dead thread %s" th.name d.name;
            let fwd = count_in (fun d' -> d' == d) th.donating_to in
            let back = count_in (fun s -> s == th) d.donors in
            if fwd <> back then
              vf ~th
                "%s: %d transfers to %s but its donor index records %d"
                th.name fwd d.name back)
          th.donating_to
      end;
      List.iter
        (fun src ->
          if not (List.exists (fun d -> d == th) src.donating_to) then
            vf ~th "%s: donor index names %s, which is not donating to it"
              th.name src.name)
        th.donors;
      List.iter
        (fun m ->
          match m.owner with
          | Some o when o == th -> ()
          | _ ->
              vf ~th "%s: owned-mutex index lists %s, which it does not own"
                th.name m.mutex_name)
        th.owned);
  Vec.iter k.mutexes_v (fun m ->
      (match m.owner with
      | Some o when o.state = Zombie ->
          vf ~th:o "mutex %s: owned by dead thread %s" m.mutex_name o.name
      | Some o ->
          let n = count_in (fun m' -> m' == m) o.owned in
          if n <> 1 then
            vf ~th:o "mutex %s: owner %s lists it in owned-index %d times"
              m.mutex_name o.name n
      | None ->
          if m.lock_waiters <> [] then
            vf "mutex %s: free but has %d waiters" m.mutex_name
              (List.length m.lock_waiters));
      List.iter
        (fun w ->
          match w.pending with
          | Waiting_lock { mutex = m'; _ } when m' == m -> ()
          | _ ->
              vf ~th:w "mutex %s: waiter %s is not blocked on it" m.mutex_name
                w.name)
        m.lock_waiters);
  Vec.iter k.conds_v (fun c ->
      List.iter
        (fun w ->
          match w.pending with
          | Waiting_cond { cond = c'; _ } when c' == c -> ()
          | _ ->
              vf ~th:w "condition %s: waiter %s is not blocked on it"
                c.cond_name w.name)
        c.cond_waiters);
  Vec.iter k.sems_v (fun s ->
      if s.count < 0 then vf "semaphore %s: negative count %d" s.sem_name s.count;
      if s.count > 0 && s.sem_waiters <> [] then
        vf "semaphore %s: count %d with %d waiters" s.sem_name s.count
          (List.length s.sem_waiters);
      List.iter
        (fun w ->
          match w.pending with
          | Waiting_sem { sem = s'; _ } when s' == s -> ()
          | _ ->
              vf ~th:w "semaphore %s: waiter %s is not blocked on it"
                s.sem_name w.name)
        s.sem_waiters);
  Vec.iter k.ports_v (fun p ->
      Queue.iter
        (fun w ->
          match w.pending with
          | Waiting_recv { port = p'; _ } when p' == p -> ()
          | _ ->
              vf ~th:w "port %s: waiter %s is not blocked in receive on it"
                p.port_name w.name)
        p.waiters;
      if Queue.length p.queue > p.capacity then
        vf "port %s: %d queued messages exceed capacity %d" p.port_name
          (Queue.length p.queue) p.capacity);
  List.rev !out

let failures k =
  (* accumulated at death; sort by id to present them in creation order,
     as the historical thread-list filter did *)
  List.sort (fun (a, _) (b, _) -> compare a.id b.id) k.failed

let bus k = k.bus

(* Legacy single-tracer interface, now one bus subscriber among many: the
   five historical event kinds render to their exact old lines (see
   {!Obs.Event.render}), so pre-bus consumers and determinism tests keep
   working without clobbering other observers. *)
let set_tracer k f =
  (match k.tracer_sub with
  | Some s ->
      Obs.Bus.unsubscribe s;
      k.tracer_sub <- None
  | None -> ());
  match f with
  | None -> ()
  | Some f ->
      k.tracer_sub <-
        Some
          (Obs.Bus.subscribe ~name:"legacy-tracer" k.bus (fun time ev ->
               f time (Obs.Event.render ev)))
let cpu_time th = th.cpu
let thread_name th = th.name
let thread_id th = th.id
let thread_state th = th.state
