(** ASCII execution timelines.

    Subscribes to a kernel's {!Lotto_obs.Bus}, records which thread each
    quantum went to (from the typed [Preempt] events, which carry exact
    per-slice tick counts), and renders a Gantt-style chart — one row per
    thread, one column per time bucket, with the glyph showing how much of
    the bucket the thread received. Handy for eyeballing proportional
    shares and transfer effects in examples and while debugging schedulers.

    A timeline is one bus subscriber among many: attaching does {e not}
    displace recorders, metrics registries, or a legacy
    {!Kernel.set_tracer} hook, and several timelines can observe one
    kernel simultaneously. *)

type t

val attach : Kernel.t -> ?bucket:Time.t -> unit -> t
(** Start recording. [bucket] is the rendering column width (default 1 s). *)

val detach : t -> unit
(** Stop recording (removes only this timeline's subscription; any other
    bus subscribers keep observing). Idempotent. *)

val render : ?width:int -> t -> string
(** Render rows for every thread observed, covering the recorded interval;
    at most [width] columns (default 72; the bucket width grows to fit).
    Glyphs: ['#'] > 2/3 of the bucket, ['+'] > 1/3, ['.'] > 0, space =
    none. *)

val cpu_of : t -> string -> int
(** Recorded CPU ticks for a thread name ([0] if never seen). *)
