(** The discrete-event kernel: our stand-in for the Mach 3.0 scheduler core.

    The kernel multiplexes simulated threads over one virtual CPU in
    quantum-sized slices, delegating every policy decision to an abstract
    {!Types.sched}. Threads are effect-handler coroutines; all requests they
    make (compute, sleep, RPC, locks) cost virtual time only, and the whole
    simulation is deterministic given the scheduler's RNG seed.

    Semantics mirroring the paper's platform:
    - one lottery/selection per quantum (default 100 ms, §4);
    - a thread that blocks after using a fraction of its quantum gets its
      {!Types.thread.compensate} factor set to [quantum/used] until it next
      starts a fresh quantum (§4.5) — proportional-share schedulers apply it;
    - a blocked RPC client funds the server processing its request, a
      blocked mutex waiter funds the lock owner, via {!Types.sched.donate}
      (§4.6, §6.1);
    - timer wakeups are processed at slice boundaries, as on real
      quantum-scheduled systems. *)

type t

val create : ?quantum:Time.t -> sched:Types.sched -> unit -> t
(** [quantum] defaults to 100 ms ([Time.ms 100]), the Mach quantum the
    paper's prototype used. *)

val now : t -> Time.t
val quantum : t -> Time.t

val spawn : t -> name:string -> (unit -> unit) -> Types.thread
(** Create a runnable thread. The body runs inside the simulation and may
    call any {!Api} function. Exceptions escaping the body turn the thread
    into a zombie recorded in {!failures}. *)

val create_port : t -> name:string -> Types.port
val create_mutex : t -> ?policy:Types.wake_policy -> string -> Types.mutex
(** [create_mutex k name] with [policy] defaulting to [Fifo]. *)

val create_condition : t -> ?policy:Types.wake_policy -> string -> Types.condition
(** CThreads-style condition variable; a [Lottery_wake] policy makes
    signal/broadcast prefer funded waiters. *)

val create_semaphore :
  t -> ?policy:Types.wake_policy -> initial:int -> string -> Types.semaphore
(** Counting semaphore with [initial] permits. *)

val kill : t -> Types.thread -> unit
(** Forcibly terminate a thread (failure injection): {!Types.Killed} is
    delivered into its body, so exception handlers such as
    {!Api.with_lock}'s cleanup run before it dies. A body that catches
    [Killed] and continues survives. Only valid between [run] calls or from
    outside the simulation — not on the currently running thread. *)

val run : t -> until:Time.t -> Types.run_summary
(** Run the simulation until virtual time [until], until every thread has
    exited, or until deadlock (threads blocked, none sleeping). Can be
    called repeatedly with increasing horizons; state persists. *)

val threads : t -> Types.thread list
(** In creation order. *)

val find_thread : t -> string -> Types.thread option
val failures : t -> (Types.thread * exn) list

(** {1 Observability}

    Every kernel owns a {!Lotto_obs.Bus} and publishes a typed
    {!Lotto_obs.Event.t} for each scheduling decision and synchronization
    action: [Select]/[Preempt] around every slice, [Block]/[Wake],
    [Spawn]/[Exit], [Donate]/[Compensate] for the paper's ticket
    mechanisms, [Lock_acquire]/[Lock_release] and [Rpc_send]/[Rpc_reply].
    Any number of subscribers (timelines, recorders, metrics, test probes)
    observe concurrently; with no subscribers the publication sites cost
    one branch and allocate nothing. *)

val bus : t -> Lotto_obs.Bus.t
(** The kernel's event bus; subscribe with {!Lotto_obs.Bus.subscribe}. *)

val set_tracer : t -> (Time.t -> string -> unit) option -> unit
(** Legacy string-tracer interface, kept as a compatibility shim: installs
    a bus subscriber that renders each event through
    {!Lotto_obs.Event.render} (byte-identical to the historical lines for
    select/block/wake/spawn/exit). Replaces only the tracer installed by a
    previous [set_tracer] call — other bus subscribers are unaffected.
    [set_tracer k None] removes it. *)

(** {1 Thread accessors} *)

val cpu_time : Types.thread -> int
val thread_name : Types.thread -> string
val thread_id : Types.thread -> int
val thread_state : Types.thread -> Types.state
