(** The discrete-event kernel: our stand-in for the Mach 3.0 scheduler core.

    The kernel multiplexes simulated threads over one or more virtual CPUs
    in quantum-sized slices, delegating every policy decision to an
    abstract {!Types.sched}. Threads are effect-handler coroutines; all
    requests they make (compute, sleep, RPC, locks) cost virtual time only,
    and the whole simulation is deterministic given the scheduler's RNG
    seed.

    With [cpus > 1] the loop proceeds in rounds anchored at the minimum
    per-CPU clock: every CPU at the round floor selects first (CPU-id
    order, so replays are deterministic), then the selected slices run —
    one round's slices are virtually concurrent, and because multi-CPU
    schedulers dequeue on dispatch ({!Types.sched.smp_ok}) no thread is
    ever picked by two CPUs of the same round. A single-CPU kernel is
    byte-identical to the historical loop.

    Semantics mirroring the paper's platform:
    - one lottery/selection per quantum (default 100 ms, §4);
    - a thread that blocks after using a fraction of its quantum gets its
      {!Types.thread.compensate} factor set to [quantum/used] until it next
      starts a fresh quantum (§4.5) — proportional-share schedulers apply it;
    - a blocked RPC client funds the server processing its request, a
      blocked mutex waiter funds the lock owner, via {!Types.sched.donate}
      (§4.6, §6.1);
    - timer wakeups are processed at slice boundaries, as on real
      quantum-scheduled systems. *)

type t

val create : ?quantum:Time.t -> ?cpus:int -> sched:Types.sched -> unit -> t
(** [quantum] defaults to 100 ms ([Time.ms 100]), the Mach quantum the
    paper's prototype used. [cpus] (default [1]) is the number of virtual
    CPUs; raises [Invalid_argument] when [cpus > 1] and the scheduler does
    not declare {!Types.sched.smp_ok}. *)

val now : t -> Time.t
(** The global virtual clock: between runs, the time the last {!run}
    ended at; during a slice, the executing CPU's clock. *)

val quantum : t -> Time.t

val cpus : t -> int

val cpu_clock : t -> int -> Time.t
(** [cpu_clock k c] is virtual CPU [c]'s own clock (every CPU ends a run
    at the same time unless it deadlocked mid-round). *)

val spawn : t -> name:string -> (unit -> unit) -> Types.thread
(** Create a runnable thread. The body runs inside the simulation and may
    call any {!Api} function. Exceptions escaping the body turn the thread
    into a zombie recorded in {!failures}. *)

val create_port :
  ?capacity:int -> ?shed:Types.shed_policy -> t -> name:string -> Types.port
(** [capacity] (default unbounded; must be [>= 1]) bounds how many sent
    messages may queue unreceived; a plain {!Api.rpc} that would push the
    queue past it is shed per [shed] (default [Reject_new]): under
    [Reject_new] the arriving client gets {!Types.Rejected} directly, under
    [Drop_oldest] the oldest queued single-shot request is evicted (its
    blocked sender gets [Rejected], kill-style) and the new one admitted.
    Scatter sends ({!Api.rpc_many}) bypass capacity — both as arrivals and
    as eviction victims. Every shed emits {!Lotto_obs.Event.Rpc_shed} and
    bumps {!port_shed_count}. Messages handed directly to a live waiting
    server never occupy the queue and are admitted regardless of
    capacity. *)

val port_would_shed : Types.port -> bool
(** The admission predicate a plain [rpc] is gated on: the port's queue is
    at capacity and no live server waits in receive. Read-only and
    allocation-free — benchable as the shed decision cost. *)

val port_shed_count : Types.port -> int
(** Requests shed at this port so far (both policies). *)

val create_mutex : t -> ?policy:Types.wake_policy -> string -> Types.mutex
(** [create_mutex k name] with [policy] defaulting to [Fifo]. *)

val create_condition : t -> ?policy:Types.wake_policy -> string -> Types.condition
(** CThreads-style condition variable; a [Lottery_wake] policy makes
    signal/broadcast prefer funded waiters. *)

val create_semaphore :
  t -> ?policy:Types.wake_policy -> initial:int -> string -> Types.semaphore
(** Counting semaphore with [initial] permits. *)

(** {2 Synchronization-object registries}

    Every port/mutex/condition/semaphore created through this kernel, in
    creation order. Used by the {!check_invariants} auditor to cross-check
    wait-queue membership, and by fault injectors ({!Lotto_chaos}) to
    perturb wakeup order. *)

val ports : t -> Types.port list
val mutexes : t -> Types.mutex list
val conditions : t -> Types.condition list
val semaphores : t -> Types.semaphore list

val kill : t -> Types.thread -> unit
(** Forcibly terminate a thread (failure injection): {!Types.Killed} is
    delivered into its body, so exception handlers such as
    {!Api.with_lock}'s cleanup run before it dies. A body that catches
    [Killed] and continues survives. The victim is unhooked from whatever
    wait list held it (mutex/condition/semaphore/port queue, join lists);
    a pending timer-heap entry is left behind and skipped lazily by the
    timer machinery. Only valid between slices — from outside the
    simulation or a {!set_pre_select} hook; raises [Invalid_argument] on
    the currently running thread. *)

val run : t -> until:Time.t -> Types.run_summary
(** Run the simulation until virtual time [until], until every thread has
    exited, or until deadlock (threads blocked, none sleeping). Can be
    called repeatedly with increasing horizons; state persists. *)

val threads : t -> Types.thread list
(** Live (non-zombie) threads, in creation order. Threads occupy dense
    arena slots recycled after death, and an intrusive order index keeps
    creation-order iteration O(live) — dead history is not revisited.
    Exited threads leave the listing at the instant they are reaped; their
    records stay valid for anyone still holding them (and failed ones are
    reachable through {!failures}). *)

val live_thread_count : t -> int

val thread_slot : Types.thread -> int
(** The thread's dense arena slot; [-1] once it has exited and the slot was
    recycled. *)

val thread_generation : t -> Types.thread -> int
(** Generation of the thread's slot ([-1] once reaped). A (slot,
    generation) pair captured while a thread is live never matches any
    later occupant of the recycled slot — the ABA guard tested by the
    handle-recycling suite. *)

val find_thread : t -> string -> Types.thread option
(** O(1) lookup by name. Thread names are not required to be unique; when
    several threads have shared [name], the {e first-created} one is
    returned (even if it has already exited), matching the historical
    list-scan semantics. *)

val failures : t -> (Types.thread * exn) list

(** {1 Fault injection and auditing} *)

val set_pre_select : t -> (unit -> unit) option -> unit
(** Install (or clear) a hook fired at every scheduling-decision boundary:
    after timers wake, immediately before the scheduler's [select]. No
    thread is running at that point, so the hook may inspect any kernel
    state, call {!kill}, reorder wait lists, or run {!check_invariants}.
    With no hook installed the cost is one branch per slice. *)

val check_invariants : t -> string list
(** Audit kernel data-structure coherence; safe to call between any two
    slices (it mutates nothing). Returns one human-readable string per
    violation (empty = healthy) and, when the bus has subscribers, emits an
    [Invariant_violation] event per finding. Checked: thread
    [state]/[pending] agreement (Zombie ⇔ [Exited], Blocked ⇔ waiting);
    exactly-once wait-list membership for mutexes, conditions, semaphores,
    port waiter queues and join lists — in both directions; sleeping
    threads have a live timer-heap entry; scatter [outstanding] matches
    unreplied slots; donation lists only target live threads and only from
    blocked donors; mutex owners are alive and free mutexes have no
    waiters; semaphore counts are non-negative and positive counts have no
    waiters. *)

(** {1 Observability}

    Every kernel owns a {!Lotto_obs.Bus} and publishes a typed
    {!Lotto_obs.Event.t} for each scheduling decision and synchronization
    action: [Select]/[Preempt] around every slice, [Block]/[Wake],
    [Spawn]/[Exit], [Donate]/[Compensate] for the paper's ticket
    mechanisms, [Lock_acquire]/[Lock_release] and [Rpc_send]/[Rpc_reply].
    Any number of subscribers (timelines, recorders, metrics, test probes)
    observe concurrently; with no subscribers the publication sites cost
    one branch and allocate nothing. *)

val bus : t -> Lotto_obs.Bus.t
(** The kernel's event bus; subscribe with {!Lotto_obs.Bus.subscribe}. *)

val set_profiler : t -> Lotto_obs.Profile.t option -> unit
(** Install (or clear) a scheduler phase profiler. The kernel records the
    {e dispatch} phase (each slice's host-clock execution time, bus
    publication included) and the {e publish} phase (each event's bus
    fan-out); schedulers that support profiling record their own
    valuation/draw phases into the same profiler (see
    {!Lotto_sched.Lottery_sched.set_profiler}). With no profiler the cost
    is one branch per site. *)

val set_tracer : t -> (Time.t -> string -> unit) option -> unit
(** Legacy string-tracer interface, kept as a compatibility shim: installs
    a bus subscriber that renders each event through
    {!Lotto_obs.Event.render} (byte-identical to the historical lines for
    select/block/wake/spawn/exit). Replaces only the tracer installed by a
    previous [set_tracer] call — other bus subscribers are unaffected.
    [set_tracer k None] removes it. *)

(** {1 Thread accessors} *)

val cpu_time : Types.thread -> int
val thread_name : Types.thread -> string
val thread_id : Types.thread -> int
val thread_state : Types.thread -> Types.state
