module Obs = Lotto_obs

type t = {
  bucket : int;
  (* thread name -> (bucket index -> ticks) *)
  rows : (string, (int, int) Hashtbl.t) Hashtbl.t;
  mutable sub : Obs.Bus.subscription option;
  mutable first_time : int;
  mutable last_time : int;
}

(* The kernel emits a [Preempt] at every slice end carrying the exact ticks
   consumed; charge [time - used, time) to the thread. (The pre-bus string
   parser inferred intervals between consecutive "select" lines and lost
   the final slice; typed events make the accounting exact.) *)
let on_event t time ev =
  if t.first_time < 0 then t.first_time <- time;
  t.last_time <- max t.last_time time;
  match ev with
  | Obs.Event.Preempt { who; used; _ } when used > 0 ->
      let row =
        match Hashtbl.find_opt t.rows who.Obs.Event.tname with
        | Some r -> r
        | None ->
            let r = Hashtbl.create 32 in
            Hashtbl.replace t.rows who.Obs.Event.tname r;
            r
      in
      (* spread [time - used, time) across buckets *)
      let rec charge from remaining =
        if remaining > 0 then begin
          let b = from / t.bucket in
          let bucket_end = (b + 1) * t.bucket in
          let chunk = min remaining (bucket_end - from) in
          Hashtbl.replace row b
            (chunk + Option.value ~default:0 (Hashtbl.find_opt row b));
          charge (from + chunk) (remaining - chunk)
        end
      in
      charge (time - used) used
  | _ -> ()

let attach kernel ?(bucket = Time.seconds 1) () =
  if bucket <= 0 then invalid_arg "Timeline.attach: bucket <= 0";
  let t =
    { bucket; rows = Hashtbl.create 16; sub = None; first_time = -1; last_time = 0 }
  in
  t.sub <-
    Some
      (Obs.Bus.subscribe ~name:"timeline" (Kernel.bus kernel) (fun time ev ->
           on_event t time ev));
  t

let detach t =
  match t.sub with
  | Some s ->
      Obs.Bus.unsubscribe s;
      t.sub <- None
  | None -> ()

let render ?(width = 72) t =
  if width <= 0 then invalid_arg "Timeline.render: width <= 0";
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.rows [] |> List.sort compare
  in
  if names = [] then "(no activity recorded)\n"
  else begin
    let first_bucket = max 0 t.first_time / t.bucket in
    let last_bucket = t.last_time / t.bucket in
    let buckets = last_bucket - first_bucket + 1 in
    (* merge adjacent buckets if the chart would overflow [width] *)
    let per_col = (buckets + width - 1) / width in
    let cols = (buckets + per_col - 1) / per_col in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "timeline: %d columns x %s each\n" cols
         (Format.asprintf "%a" Time.pp (per_col * t.bucket)));
    List.iter
      (fun name ->
        let row = Hashtbl.find t.rows name in
        Buffer.add_string buf (Printf.sprintf "%-12s|" name);
        for col = 0 to cols - 1 do
          let ticks = ref 0 in
          for b = 0 to per_col - 1 do
            let bucket = first_bucket + (col * per_col) + b in
            ticks := !ticks + Option.value ~default:0 (Hashtbl.find_opt row bucket)
          done;
          let capacity = per_col * t.bucket in
          let glyph =
            if !ticks * 3 > capacity * 2 then '#'
            else if !ticks * 3 > capacity then '+'
            else if !ticks > 0 then '.'
            else ' '
          in
          Buffer.add_char buf glyph
        done;
        Buffer.add_string buf "|\n")
      names;
    Buffer.contents buf
  end

let cpu_of t name =
  match Hashtbl.find_opt t.rows name with
  | None -> 0
  | Some row -> Hashtbl.fold (fun _ ticks acc -> acc + ticks) row 0
