(** Core simulator types: threads, ports, mutexes, scheduler interface.

    Everything is mutually recursive (threads hold continuations whose steps
    mention ports and mutexes; schedulers see threads), so the whole object
    graph lives here and {!Kernel} / {!Api} operate on it. *)

type time = Time.t

exception Rejected of string
(** Delivered into a client's body when an {!Api.rpc} to a bounded port is
    shed by admission control: under [Reject_new] the new request bounces
    immediately; under [Drop_oldest] the evicted request's sender gets it.
    The payload is the port name. Scatter-gather sends ({!Api.rpc_many})
    bypass capacity and are never shed. *)

exception Killed
(** Delivered into a thread's body by {!Kernel.kill}: its exception
    handlers (e.g. [Api.with_lock] cleanup) run before the thread dies. *)

(* ------------------------------------------------------------------ *)
(* Threads                                                            *)
(* ------------------------------------------------------------------ *)

type thread = {
  id : int;
  mutable tslot : int;
      (** dense arena index assigned by the kernel at spawn; [-1] once the
          thread is reaped and its slot recycled. Schedulers index their
          per-thread state arrays by it (guarding against recycling with a
          physical-equality check on the stored thread). *)
  name : string;
  mutable state : state;
  mutable pending : pending;
  mutable cpu : int;  (** total virtual CPU ticks consumed *)
  mutable compensate : float;
      (** compensation-ticket factor (>= 1), applied by proportional-share
          schedulers to the thread's draw weight; reset by the kernel each
          time the thread starts a fresh quantum (paper §4.5) *)
  mutable donating_to : thread list;
      (** targets of this thread's current ticket transfers, if blocked;
          several when a transfer is divided across servers (§3.1) *)
  mutable donors : thread list;
      (** reverse index of [donating_to]: threads currently transferring to
          us, one entry per transfer, so a dying thread scrubs its donors in
          O(degree) instead of scanning every thread *)
  mutable owned : mutex list;
      (** mutexes this thread currently owns, so robust handoff at death is
          O(held locks) instead of a sweep over every mutex *)
  mutable failure : exn option;
  mutable joiners : thread list;  (** threads blocked in [Api.join] on us *)
  mutable servicing : int list;
      (** msg_ids of requests this thread has received and not yet replied
          to, innermost first — the span-parent stack: an RPC sent while
          servicing is a child span of the head *)
  created_at : time;
  mutable exited_at : time option;
}

and state = Runnable | Running | Blocked | Zombie

(* What a suspended thread is waiting for, including the continuation to
   resume it with. [Ready_*] states carry the value that arrived while the
   thread was waiting; the kernel feeds it in when the scheduler next picks
   the thread. *)
and pending =
  | Not_started of (unit -> unit)
  | Compute of compute_req
  | Sleeping of { until : time; k : (unit, step) Effect.Deep.continuation }
  | Waiting_recv of { port : port; k : (message, step) Effect.Deep.continuation }
  | Waiting_reply of { k : (string, step) Effect.Deep.continuation }
  | Waiting_replies of scatter
      (** blocked on several concurrent RPCs (divided ticket transfer) *)
  | Waiting_lock of { mutex : mutex; k : (unit, step) Effect.Deep.continuation }
  | Waiting_cond of {
      cond : condition;
      mutex : mutex;
      k : (unit, step) Effect.Deep.continuation;
    }
  | Waiting_sem of { sem : semaphore; k : (unit, step) Effect.Deep.continuation }
  | Waiting_join of { target : thread; k : (unit, step) Effect.Deep.continuation }
  | Ready_unit of (unit, step) Effect.Deep.continuation
  | Ready_msg of message * (message, step) Effect.Deep.continuation
  | Ready_reply of string * (string, step) Effect.Deep.continuation
  | Ready_replies of string list * (string list, step) Effect.Deep.continuation
  | Exited

and compute_req = {
  mutable remaining : int;
  kc : (unit, step) Effect.Deep.continuation;
}

and scatter = {
  replies : string option array;
  mutable outstanding : int;
  ks : (string list, step) Effect.Deep.continuation;
}

(* The outcome of running a thread's continuation until its next request. *)
and step =
  | S_done
  | S_failed of exn
  | S_compute of int * (unit, step) Effect.Deep.continuation
  | S_sleep of int * (unit, step) Effect.Deep.continuation
  | S_rpc of port * string * (string, step) Effect.Deep.continuation
  | S_rpc_many of (port * string) list * (string list, step) Effect.Deep.continuation
  | S_recv of port * (message, step) Effect.Deep.continuation
  | S_lock of mutex * (unit, step) Effect.Deep.continuation
  | S_wait of condition * mutex * (unit, step) Effect.Deep.continuation
  | S_sem_wait of semaphore * (unit, step) Effect.Deep.continuation
  | S_join of thread * (unit, step) Effect.Deep.continuation
  | S_yield of (unit, step) Effect.Deep.continuation

(* ------------------------------------------------------------------ *)
(* IPC                                                                *)
(* ------------------------------------------------------------------ *)

and message = {
  msg_id : int;
  sender : thread;  (** blocked in [Waiting_reply]/[Waiting_replies] *)
  payload : string;
  sent_at : time;
  slot : int;  (** reply position for scatter-gather sends; 0 otherwise *)
}

and shed_policy =
  | Reject_new  (** bounce the arriving request; the queue is untouched *)
  | Drop_oldest
      (** evict the oldest queued single-shot request to admit the new
          one (only plain {!Api.rpc} messages are eviction candidates) *)

and port = {
  port_id : int;
  port_name : string;
  queue : message Queue.t;  (** sent but not yet received *)
  waiters : thread Queue.t;  (** server threads blocked in receive *)
  capacity : int;  (** max queued messages; [max_int] = unbounded *)
  shed : shed_policy;  (** admission policy once [queue] is full *)
  mutable shed_count : int;  (** requests shed at this port so far *)
  rej : exn;
      (** preallocated [Rejected port_name], so the shed decision path
          allocates nothing *)
}

(* ------------------------------------------------------------------ *)
(* Mutexes                                                            *)
(* ------------------------------------------------------------------ *)

and wake_policy =
  | Fifo  (** conventional mutex: longest waiter acquires next *)
  | Lottery_wake
      (** paper §6.1: on release, hold a lottery among the waiters (the
          scheduler's [pick_waiter] decides, by funding) *)

and mutex = {
  mutex_id : int;
  mutex_name : string;
  policy : wake_policy;
  mutable owner : thread option;
  mutable lock_waiters : thread list;  (** arrival order *)
  mutable acquisitions : int;
}

(* CThreads-style condition variable: waiting atomically releases the
   associated mutex; woken threads reacquire it before returning. *)
and condition = {
  cond_id : int;
  cond_name : string;
  cond_policy : wake_policy;
  mutable cond_waiters : thread list;  (** arrival order *)
  mutable signals : int;
}

(* Counting semaphore, the other classic CThreads primitive. A lottery
   wake policy makes V() prefer funded waiters, like the mutex in §6.1. *)
and semaphore = {
  sem_id : int;
  sem_name : string;
  sem_policy : wake_policy;
  mutable count : int;
  mutable sem_waiters : thread list;  (** arrival order *)
}

(* ------------------------------------------------------------------ *)
(* Scheduler interface                                                *)
(* ------------------------------------------------------------------ *)

(* The kernel drives an abstract scheduler through this record. The
   donate/revoke callbacks carry the paper's ticket transfers: the kernel
   announces "blocked thread [src] should fund [dst]"; proportional-share
   schedulers implement it with transfer tickets, others ignore it. *)
and sched = {
  sched_name : string;
  smp_ok : bool;
      (** whether the scheduler implements on-CPU semantics for several
          virtual CPUs (dequeue on dispatch, so the same thread is never
          selected by two CPUs for overlapping slices). [Kernel.create]
          refuses [cpus > 1] for schedulers that do not. *)
  attach : thread -> unit;  (** thread created (initially runnable) *)
  detach : thread -> unit;  (** thread exited *)
  ready : thread -> unit;  (** thread became runnable *)
  unready : thread -> unit;  (** thread blocked *)
  select : cpu:int -> thread option;
      (** choose among runnable threads for virtual CPU [cpu]; called once
          per quantum per CPU (always [~cpu:0] on a single-CPU kernel) *)
  account : thread -> used:int -> quantum:int -> blocked:bool -> unit;
      (** the selected thread consumed [used] of [quantum] and then either
          blocked ([blocked = true]) or was preempted / yielded *)
  donate : src:thread -> dst:thread -> unit;
      (** [src] (blocked) should fund [dst]. May be called several times
          with distinct targets while [src] stays blocked: the transfer is
          then divided, each target receiving an equal share of [src]'s
          value (§3.1). *)
  revoke : src:thread -> unit;  (** withdraw all of [src]'s transfers *)
  revoke_from : src:thread -> dst:thread -> unit;
      (** withdraw only the transfer from [src] to [dst] (one server of a
          divided transfer replied) *)
  pick_waiter : thread list -> thread option;
      (** winner among blocked waiters for a [Lottery_wake] mutex,
          condition or semaphore; [None] falls back to FIFO order *)
}

type run_summary = {
  ended_at : time;
  idle_ticks : int;
  deadlocked : bool;
  slices : int;  (** scheduling decisions taken *)
}
