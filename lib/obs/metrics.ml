module Chi = Lotto_stats.Chi_square

(* growable float sample buffer — only allocated on the opt-in raw path *)
module Samples = struct
  type t = { mutable data : float array; mutable len : int }

  let create () = { data = Array.make 16 0.; len = 0 }

  let add t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0. in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let to_array t = Array.sub t.data 0 t.len
end

(* latency histograms: µs of virtual time, 2^-5 relative error, values up
   to 2^30 µs (~18 virtual minutes) before clamping *)
let make_hdr () = Hdr.create ~sub_bits:5 ~max_value:(1 lsl 30) ()

type row = {
  tid : int;
  name : string;
  mutable wins : int;
  mutable quanta : int;
  mutable compensations : int;
  mutable blocks : int;
  mutable donations : int;
  mutable lock_acquires : int;
  mutable lock_contended : int;
  mutable rpcs : int;
  mutable rpcs_served : int;
  mutable rpcs_shed : int;
  wait_h : Hdr.t;
  dispatch_h : Hdr.t;
  wait_raw : Samples.t option;
  dispatch_raw : Samples.t option;
  mutable blocked_since : int option;
  mutable runnable_since : int option;
  q_used : (int, int) Hashtbl.t;
      (** CPU ticks received, keyed by the quantum in force when they were
          granted: the chi-square bins each thread's time into slices of
          the quantum it actually ran under, so runs that change quantum
          mid-stream don't under-count early threads *)
}

type t = {
  raw : bool;
  rows : (int, row) Hashtbl.t;
  mutable order : int list;  (** reverse first-seen order *)
  mutable quantum_us : int;  (** largest quantum seen in Preempt events *)
  mutable sub : Bus.subscription option;
}

let create ?(raw = false) () =
  { raw; rows = Hashtbl.create 32; order = []; quantum_us = 0; sub = None }

let row t (a : Event.actor) =
  match Hashtbl.find_opt t.rows a.Event.tid with
  | Some r -> r
  | None ->
      let r =
        {
          tid = a.Event.tid;
          name = a.Event.tname;
          wins = 0;
          quanta = 0;
          compensations = 0;
          blocks = 0;
          donations = 0;
          lock_acquires = 0;
          lock_contended = 0;
          rpcs = 0;
          rpcs_served = 0;
          rpcs_shed = 0;
          wait_h = make_hdr ();
          dispatch_h = make_hdr ();
          wait_raw = (if t.raw then Some (Samples.create ()) else None);
          dispatch_raw = (if t.raw then Some (Samples.create ()) else None);
          blocked_since = None;
          runnable_since = None;
          q_used = Hashtbl.create 4;
        }
      in
      Hashtbl.replace t.rows a.Event.tid r;
      t.order <- a.Event.tid :: t.order;
      r

let sample hdr raw v =
  Hdr.record hdr v;
  match raw with
  | Some s -> Samples.add s (float_of_int v)
  | None -> ()

let on_event t time ev =
  match ev with
  | Event.Spawn { who } -> (row t who).runnable_since <- Some time
  | Event.Select { who; _ } ->
      let r = row t who in
      r.wins <- r.wins + 1;
      (match r.runnable_since with
      | Some since -> sample r.dispatch_h r.dispatch_raw (time - since)
      | None -> ());
      r.runnable_since <- None
  | Event.Preempt { who; used; quantum; why } -> (
      let r = row t who in
      r.quanta <- r.quanta + used;
      if quantum > 0 then begin
        (match Hashtbl.find_opt r.q_used quantum with
        | Some acc -> Hashtbl.replace r.q_used quantum (acc + used)
        | None -> Hashtbl.add r.q_used quantum used)
      end;
      if quantum > t.quantum_us then t.quantum_us <- quantum;
      match why with
      | Event.End_quantum | Event.End_yield | Event.End_horizon ->
          r.runnable_since <- Some time
      | Event.End_block | Event.End_exit -> ())
  | Event.Block { who; _ } ->
      let r = row t who in
      r.blocks <- r.blocks + 1;
      r.blocked_since <- Some time
  | Event.Wake { who } ->
      let r = row t who in
      (match r.blocked_since with
      | Some since -> sample r.wait_h r.wait_raw (time - since)
      | None -> ());
      r.blocked_since <- None;
      r.runnable_since <- Some time
  | Event.Exit { who; _ } -> (row t who).runnable_since <- None
  | Event.Compensate { who; _ } ->
      let r = row t who in
      r.compensations <- r.compensations + 1
  | Event.Donate { src; _ } ->
      let r = row t src in
      r.donations <- r.donations + 1
  | Event.Lock_acquire { who; contended; _ } ->
      let r = row t who in
      r.lock_acquires <- r.lock_acquires + 1;
      if contended then r.lock_contended <- r.lock_contended + 1
  | Event.Lock_release _ -> ()
  | Event.Rpc_send { who; _ } ->
      let r = row t who in
      r.rpcs <- r.rpcs + 1
  | Event.Rpc_recv { who; _ } ->
      let r = row t who in
      r.rpcs_served <- r.rpcs_served + 1
  | Event.Rpc_reply _ -> ()
  | Event.Rpc_shed { who; _ } ->
      let r = row t who in
      r.rpcs_shed <- r.rpcs_shed + 1
  | Event.Resource_draw _ -> ()
  | Event.Rpc_reply_dropped _ -> ()
  | Event.Fault_injected _ -> ()
  | Event.Invariant_violation _ -> ()

let attach t bus =
  if t.sub <> None then invalid_arg "Metrics.attach: already attached";
  t.sub <- Some (Bus.subscribe ~name:"metrics" bus (fun time ev -> on_event t time ev))

let detach t =
  match t.sub with
  | Some s ->
      Bus.unsubscribe s;
      t.sub <- None
  | None -> ()

type snapshot = {
  tid : int;
  name : string;
  wins : int;
  quanta : int;
  compensations : int;
  blocks : int;
  donations : int;
  lock_acquires : int;
  lock_contended : int;
  rpcs : int;
  rpcs_served : int;
  rpcs_shed : int;
  wait : Hdr.t;
  dispatch : Hdr.t;
  wait_us : float array;
  dispatch_us : float array;
}

let snapshots t =
  List.rev t.order
  |> List.map (fun tid ->
         let r = Hashtbl.find t.rows tid in
         {
           tid = r.tid;
           name = r.name;
           wins = r.wins;
           quanta = r.quanta;
           compensations = r.compensations;
           blocks = r.blocks;
           donations = r.donations;
           lock_acquires = r.lock_acquires;
           lock_contended = r.lock_contended;
           rpcs = r.rpcs;
           rpcs_served = r.rpcs_served;
           rpcs_shed = r.rpcs_shed;
           wait = Hdr.copy r.wait_h;
           dispatch = Hdr.copy r.dispatch_h;
           wait_us =
             (match r.wait_raw with Some s -> Samples.to_array s | None -> [||]);
           dispatch_us =
             (match r.dispatch_raw with
             | Some s -> Samples.to_array s
             | None -> [||]);
         })

let total_quanta t = Hashtbl.fold (fun _ (r : row) acc -> acc + r.quanta) t.rows 0

type share = {
  s_tid : int;
  s_name : string;
  s_quanta : int;
  observed : float;
  entitled : float;
}

let fairness t ~entitled =
  (* Dedupe by tid, first entry wins: a tid listed twice maps to the same
     row, so keeping both entries would sum that row's quanta twice into
     [total_q] and give the thread two cells in the chi-square. *)
  let seen = Hashtbl.create (List.length entitled) in
  let entitled =
    List.filter
      (fun (tid, _) ->
        if Hashtbl.mem seen tid then false
        else begin
          Hashtbl.add seen tid ();
          true
        end)
      entitled
  in
  let compared =
    List.filter_map
      (fun (tid, weight) ->
        Option.map (fun (r : row) -> (r, weight)) (Hashtbl.find_opt t.rows tid))
      entitled
  in
  let total_q =
    List.fold_left (fun acc ((r : row), _) -> acc + r.quanta) 0 compared
  in
  let total_w = List.fold_left (fun acc (_, w) -> acc +. w) 0. compared in
  let rows =
    List.map
      (fun ((r : row), w) ->
        {
          s_tid = r.tid;
          s_name = r.name;
          s_quanta = r.quanta;
          observed = float_of_int r.quanta /. float_of_int (max 1 total_q);
          entitled = (if total_w > 0. then w /. total_w else 0.);
        })
      compared
  in
  (* Goodness of fit over CPU time binned into quantum-sized units, not raw
     win counts: compensation tickets (paper §3.4) deliberately inflate an
     I/O-bound thread's win RATE in proportion to how little of each quantum
     it uses, so win counts are non-proportional by design while CPU time
     stays proportional to entitlement. *)
  let p_value =
    if t.quantum_us <= 0 || total_w <= 0. || List.length compared < 2
       || List.exists (fun (_, w) -> w <= 0.) compared
    then None
    else begin
      (* Quantum-weighted slice count: each chunk of CPU time is divided by
         the quantum it was granted under, so a run that changes quantum
         mid-stream (e.g. the quantum ablation) bins every thread's time at
         its own granularity instead of under-counting early threads by the
         largest quantum seen. For homogeneous-quantum runs this is exactly
         the historical [round (quanta / quantum_us)]. *)
      let slices (r : row) =
        Hashtbl.fold
          (fun q used acc ->
            acc + int_of_float (Float.round (float_of_int used /. float_of_int q)))
          r.q_used 0
      in
      let observed = Array.of_list (List.map (fun (r, _) -> slices r) compared) in
      let total = Array.fold_left ( + ) 0 observed in
      if total = 0 then None
      else begin
        let expected =
          Array.of_list
            (List.map (fun (_, w) -> w /. total_w *. float_of_int total) compared)
        in
        let stat = Chi.statistic ~observed ~expected in
        let df = Chi.degrees_of_freedom ~cells:(Array.length observed) in
        Some (Chi.p_value ~statistic:stat ~df)
      end
    end
  in
  (rows, p_value)

(* percentiles straight off the histogram: O(buckets), no sort, no copy of
   the sample stream (which is no longer retained by default anyway) *)
let pcts h =
  if Hdr.count h = 0 then "-"
  else
    Printf.sprintf "%.1f/%.1f/%.1f"
      (Hdr.percentile h 50. /. 1000.)
      (Hdr.percentile h 90. /. 1000.)
      (Hdr.percentile h 99. /. 1000.)

let summary ?entitled t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-14s %7s %10s %5s %6s %6s %20s %20s\n" "thread" "wins"
       "quanta(ms)" "comp" "blocks" "locks" "wait p50/90/99 (ms)"
       "disp p50/90/99 (ms)");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-14s %7d %10.1f %5d %6d %6d %20s %20s\n" s.name s.wins
           (float_of_int s.quanta /. 1000.)
           s.compensations s.blocks s.lock_acquires (pcts s.wait)
           (pcts s.dispatch)))
    (snapshots t);
  (match entitled with
  | None -> ()
  | Some entitled ->
      let rows, p = fairness t ~entitled in
      if rows <> [] then begin
        Buffer.add_string buf "\nobserved vs entitled CPU share:\n";
        Buffer.add_string buf
          (Printf.sprintf "  %-14s %12s %10s %10s %8s\n" "thread" "quanta(ms)"
             "observed" "entitled" "ratio");
        List.iter
          (fun s ->
            Buffer.add_string buf
              (Printf.sprintf "  %-14s %12.1f %9.1f%% %9.1f%% %8s\n" s.s_name
                 (float_of_int s.s_quanta /. 1000.)
                 (100. *. s.observed) (100. *. s.entitled)
                 (if s.entitled > 0. then
                    Printf.sprintf "%.3f" (s.observed /. s.entitled)
                  else "-")))
          rows;
        match p with
        | Some p ->
            Buffer.add_string buf
              (Printf.sprintf
                 "  chi-square over quantum-sized CPU slices: p = %.3f (%s \
                  ticket split)\n"
                 p
                 (if p >= 0.001 then "consistent with" else "INCONSISTENT with"))
        | None -> ()
      end);
  Buffer.contents buf

let profile p =
  "scheduler phase profile (host-clock ns):\n" ^ Profile.summary p

(* --- Prometheus text exposition ----------------------------------------- *)

let prom_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_prom ?(namespace = "lotto") t =
  let buf = Buffer.create 4096 in
  let snaps = snapshots t in
  let labels (s : snapshot) =
    Printf.sprintf "{thread=\"%s\",tid=\"%d\"}" (prom_escape s.name) s.tid
  in
  let counter name help get =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s_%s %s\n# TYPE %s_%s counter\n" namespace name
         help namespace name);
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "%s_%s%s %d\n" namespace name (labels s) (get s)))
      snaps
  in
  counter "wins_total" "Lottery wins (selections)." (fun s -> s.wins);
  counter "quanta_us_total" "CPU time received, microseconds of virtual time."
    (fun s -> s.quanta);
  counter "compensations_total" "Compensation-ticket activations." (fun s ->
      s.compensations);
  counter "blocks_total" "Times blocked." (fun s -> s.blocks);
  counter "donations_total" "Ticket donations made while blocked." (fun s ->
      s.donations);
  counter "lock_acquires_total" "Mutex acquisitions." (fun s -> s.lock_acquires);
  counter "lock_contended_total" "Mutex acquisitions that had to queue."
    (fun s -> s.lock_contended);
  counter "rpcs_sent_total" "RPC requests sent." (fun s -> s.rpcs);
  counter "rpcs_served_total" "RPC requests picked up for service." (fun s ->
      s.rpcs_served);
  counter "rpcs_shed_total" "RPC requests shed by bounded-port admission."
    (fun s -> s.rpcs_shed);
  let summary_metric name help get =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s_%s %s\n# TYPE %s_%s summary\n" namespace name
         help namespace name);
    List.iter
      (fun s ->
        let h = get s in
        let lbl = labels s in
        if Hdr.count h > 0 then
          List.iter
            (fun q ->
              Buffer.add_string buf
                (Printf.sprintf "%s_%s{thread=\"%s\",tid=\"%d\",quantile=\"%g\"} %g\n"
                   namespace name (prom_escape s.name) s.tid q
                   (Hdr.percentile h (q *. 100.))))
            [ 0.5; 0.9; 0.99; 0.999 ];
        Buffer.add_string buf
          (Printf.sprintf "%s_%s_sum%s %d\n" namespace name lbl (Hdr.sum h));
        Buffer.add_string buf
          (Printf.sprintf "%s_%s_count%s %d\n" namespace name lbl (Hdr.count h)))
      snaps
  in
  summary_metric "wait_us" "Block-to-wake latency, microseconds of virtual time."
    (fun s -> s.wait);
  summary_metric "dispatch_us"
    "Runnable-to-selected latency, microseconds of virtual time." (fun s ->
      s.dispatch);
  Buffer.contents buf
