type status =
  | Pending
  | Serving
  | Closed
  | Dropped of string
  | Orphaned of string

type span = {
  id : int;
  port : string;
  client : Event.actor;
  parent : int option;
  sent_at : int;
  mutable server : Event.actor option;
  mutable recv_at : int option;
  mutable closed_at : int option;
  mutable status : status;
  mutable children : int list;
}

type t = {
  retain : int;
  tbl : (int, span) Hashtbl.t;
  (* ids this thread sent and still awaits a reply for / is servicing;
     consulted on [Exit] to flag the dead endpoint's spans *)
  client_open : (int, int list ref) Hashtbl.t;
  serving : (int, int list ref) Hashtbl.t;
  finished : int Queue.t;  (* settled span ids, oldest first, for eviction *)
  mutable n_finished : int;
  mutable total : int;
  mutable evicted : int;
  mutable n_closed : int;
  mutable n_dropped : int;
  mutable n_orphaned : int;
  mutable viols : string list;  (* reverse order *)
  mutable sub : Bus.subscription option;
}

let create ?(retain = 65536) () =
  if retain <= 0 then invalid_arg "Span.create: retain <= 0";
  {
    retain;
    tbl = Hashtbl.create 256;
    client_open = Hashtbl.create 16;
    serving = Hashtbl.create 16;
    finished = Queue.create ();
    n_finished = 0;
    total = 0;
    evicted = 0;
    n_closed = 0;
    n_dropped = 0;
    n_orphaned = 0;
    viols = [];
    sub = None;
  }

let violation t msg = t.viols <- msg :: t.viols

let push_open tbl tid id =
  match Hashtbl.find_opt tbl tid with
  | Some l -> l := id :: !l
  | None -> Hashtbl.replace tbl tid (ref [ id ])

let drop_open tbl tid id =
  match Hashtbl.find_opt tbl tid with
  | None -> ()
  | Some l -> (
      (* settle order is usually LIFO per thread, so try the head first *)
      match !l with
      | x :: rest when x = id -> l := rest
      | _ -> l := List.filter (fun x -> x <> id) !l)

let is_terminal = function
  | Closed | Dropped _ | Orphaned _ -> true
  | Pending | Serving -> false

let status_tag = function
  | Pending -> "pending"
  | Serving -> "serving"
  | Closed -> "closed"
  | Dropped r -> "dropped: " ^ r
  | Orphaned r -> "orphaned: " ^ r

(* a span leaves the in-flight books: forget it on both endpoints and,
   once [Closed]/[Dropped] (no further events possible), queue it for
   eviction. [Orphaned] spans can still see a late [Rpc_reply_dropped]
   (client died, server mid-service), so they are never evicted. *)
let settle t s =
  drop_open t.client_open s.client.Event.tid s.id;
  (match s.server with
  | Some srv -> drop_open t.serving srv.Event.tid s.id
  | None -> ());
  (match s.status with
  | Closed | Dropped _ ->
      Queue.push s.id t.finished;
      t.n_finished <- t.n_finished + 1
  | _ -> ());
  while t.n_finished > t.retain do
    let id = Queue.pop t.finished in
    t.n_finished <- t.n_finished - 1;
    if Hashtbl.mem t.tbl id then begin
      Hashtbl.remove t.tbl id;
      t.evicted <- t.evicted + 1
    end
  done

let orphan t s ~now reason =
  t.n_orphaned <- t.n_orphaned + 1;
  s.status <- Orphaned reason;
  s.closed_at <- Some now;
  settle t s

let on_event t now ev =
  match ev with
  | Event.Rpc_send { who; port; msg_id; parent } ->
      if Hashtbl.mem t.tbl msg_id then
        violation t (Printf.sprintf "duplicate span id #%d on %s" msg_id port)
      else begin
        let s =
          {
            id = msg_id;
            port;
            client = who;
            parent;
            sent_at = now;
            server = None;
            recv_at = None;
            closed_at = None;
            status = Pending;
            children = [];
          }
        in
        Hashtbl.replace t.tbl msg_id s;
        t.total <- t.total + 1;
        push_open t.client_open who.Event.tid msg_id;
        match parent with
        | None -> ()
        | Some p -> (
            match Hashtbl.find_opt t.tbl p with
            | Some ps -> ps.children <- msg_id :: ps.children
            | None -> ())
      end
  | Event.Rpc_recv { who; msg_id; port; _ } -> (
      match Hashtbl.find_opt t.tbl msg_id with
      | None ->
          violation t (Printf.sprintf "recv of unknown span #%d on %s" msg_id port)
      | Some s ->
          if s.recv_at <> None then
            violation t (Printf.sprintf "span #%d received twice" msg_id)
          else begin
            s.server <- Some who;
            s.recv_at <- Some now;
            push_open t.serving who.Event.tid msg_id;
            (* a span whose client already died stays Orphaned; the server
               is servicing a request nobody waits for *)
            if s.status = Pending then s.status <- Serving
          end)
  | Event.Rpc_reply { msg_id; _ } -> (
      match Hashtbl.find_opt t.tbl msg_id with
      | None ->
          violation t
            (Printf.sprintf "reply to unknown span #%d (double reply or never sent)"
               msg_id)
      | Some s -> (
          match s.status with
          | Serving ->
              s.status <- Closed;
              s.closed_at <- Some now;
              t.n_closed <- t.n_closed + 1;
              settle t s
          | Pending -> violation t (Printf.sprintf "span #%d replied before recv" msg_id)
          | Closed -> violation t (Printf.sprintf "span #%d replied twice" msg_id)
          | Dropped _ | Orphaned _ ->
              violation t
                (Printf.sprintf "reply delivered on dead span #%d" msg_id)))
  | Event.Rpc_reply_dropped { msg_id; reason; _ } -> (
      match Hashtbl.find_opt t.tbl msg_id with
      | None ->
          violation t (Printf.sprintf "dropped reply to unknown span #%d" msg_id)
      | Some s -> (
          match s.status with
          | Serving | Pending ->
              s.status <- Dropped reason;
              s.closed_at <- Some now;
              t.n_dropped <- t.n_dropped + 1;
              settle t s
          | Orphaned _ ->
              (* already flagged when the client died; the server's no-op
                 reply resolves it for good *)
              s.status <- Dropped reason;
              t.n_orphaned <- t.n_orphaned - 1;
              t.n_dropped <- t.n_dropped + 1;
              settle t s
          | Closed | Dropped _ ->
              violation t (Printf.sprintf "span #%d dropped after close" msg_id)))
  | Event.Rpc_shed { who; port; msg_id; reason; parent } -> (
      match Hashtbl.find_opt t.tbl msg_id with
      | None ->
          (* rejected before any [Rpc_send] was emitted (reject-new /
             no-victim): open the span here so every shed request is
             visible in traces, and close it immediately *)
          let s =
            {
              id = msg_id;
              port;
              client = who;
              parent;
              sent_at = now;
              server = None;
              recv_at = None;
              closed_at = Some now;
              status = Dropped ("shed: " ^ reason);
              children = [];
            }
          in
          Hashtbl.replace t.tbl msg_id s;
          t.total <- t.total + 1;
          t.n_dropped <- t.n_dropped + 1;
          (match parent with
          | None -> ()
          | Some p -> (
              match Hashtbl.find_opt t.tbl p with
              | Some ps -> ps.children <- msg_id :: ps.children
              | None -> ()));
          settle t s
      | Some s -> (
          match s.status with
          | Pending ->
              (* a queued request evicted by drop-oldest *)
              s.status <- Dropped ("shed: " ^ reason);
              s.closed_at <- Some now;
              t.n_dropped <- t.n_dropped + 1;
              settle t s
          | Orphaned _ ->
              (* the sender died first; eviction resolves it for good *)
              s.status <- Dropped ("shed: " ^ reason);
              s.closed_at <- Some now;
              t.n_orphaned <- t.n_orphaned - 1;
              t.n_dropped <- t.n_dropped + 1;
              settle t s
          | Serving | Closed | Dropped _ ->
              violation t
                (Printf.sprintf "span #%d shed while %s" msg_id
                   (status_tag s.status))))
  | Event.Exit { who; _ } ->
      let tid = who.Event.tid in
      (match Hashtbl.find_opt t.serving tid with
      | None -> ()
      | Some l ->
          let ids = !l in
          Hashtbl.remove t.serving tid;
          List.iter
            (fun id ->
              match Hashtbl.find_opt t.tbl id with
              | Some s when not (is_terminal s.status) ->
                  orphan t s ~now "server died"
              | _ -> ())
            ids);
      (match Hashtbl.find_opt t.client_open tid with
      | None -> ()
      | Some l ->
          let ids = !l in
          Hashtbl.remove t.client_open tid;
          List.iter
            (fun id ->
              match Hashtbl.find_opt t.tbl id with
              | Some s when not (is_terminal s.status) ->
                  orphan t s ~now "client died"
              | _ -> ())
            ids)
  | _ -> ()

let attach t bus =
  if t.sub <> None then invalid_arg "Span.attach: already attached";
  t.sub <- Some (Bus.subscribe ~name:"spans" bus (fun time ev -> on_event t time ev))

let detach t =
  match t.sub with
  | Some s ->
      Bus.unsubscribe s;
      t.sub <- None
  | None -> ()

let finalize t ~now =
  let open_ids =
    Hashtbl.fold
      (fun id s acc -> if is_terminal s.status then acc else id :: acc)
      t.tbl []
  in
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.tbl id with
      | Some s -> orphan t s ~now "unfinished at finalize"
      | None -> ())
    open_ids;
  Hashtbl.reset t.client_open;
  Hashtbl.reset t.serving

let find t id = Hashtbl.find_opt t.tbl id

let spans t =
  (* msg_ids come from the kernel's shared counter, so ascending id is
     send order *)
  Hashtbl.fold (fun _ s acc -> s :: acc) t.tbl []
  |> List.sort (fun a b -> compare a.id b.id)

let iter t f = List.iter f (spans t)

let total t = t.total
let evicted t = t.evicted
let violations t = List.rev t.viols

type stats = {
  st_total : int;
  st_closed : int;
  st_dropped : int;
  st_orphaned : int;
  st_open : int;
}

let stats t =
  {
    st_total = t.total;
    st_closed = t.n_closed;
    st_dropped = t.n_dropped;
    st_orphaned = t.n_orphaned;
    st_open = t.total - t.n_closed - t.n_dropped - t.n_orphaned;
  }

let to_chrome_json ?(pid = 1) t =
  let buf = Buffer.create 4096 in
  let first = ref true in
  let obj fields =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%s" k v))
      fields;
    Buffer.add_char buf '}'
  in
  let str s = "\"" ^ Recorder.json_escape s ^ "\"" in
  Buffer.add_string buf "[\n";
  List.iter
    (fun s ->
      let ev ~ph ~ts ~tid extra =
        obj
          ([ ("name", str s.port); ("cat", str "span"); ("ph", str ph);
             ("id", string_of_int s.id); ("ts", string_of_int ts);
             ("pid", string_of_int pid); ("tid", string_of_int tid) ]
          @ extra)
      in
      let args kvs =
        [ ( "args",
            "{"
            ^ String.concat ","
                (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) kvs)
            ^ "}" ) ]
      in
      ev ~ph:"b" ~ts:s.sent_at ~tid:s.client.Event.tid
        (args
           (("client", str s.client.Event.tname)
           :: ("status", str (status_tag s.status))
           ::
           (match s.parent with
           | None -> []
           | Some p -> [ ("parent", string_of_int p) ])));
      (match (s.recv_at, s.server) with
      | Some ts, Some srv ->
          ev ~ph:"n" ~ts ~tid:srv.Event.tid
            (args [ ("op", str "recv"); ("server", str srv.Event.tname) ])
      | _ -> ());
      let end_ts =
        match s.closed_at with
        | Some ts -> ts
        | None -> ( match s.recv_at with Some ts -> ts | None -> s.sent_at)
      in
      let end_tid =
        match s.server with Some srv -> srv.Event.tid | None -> s.client.Event.tid
      in
      ev ~ph:"e" ~ts:end_ts ~tid:end_tid [])
    (spans t);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
