type phase = Valuation | Draw | Dispatch | Publish

type t = {
  clock : unit -> int;
  valuation : Hdr.t;
  draw : Hdr.t;
  dispatch : Hdr.t;
  publish : Hdr.t;
}

let create ~clock () =
  let mk () = Hdr.create ~sub_bits:5 ~max_value:(1 lsl 40) () in
  { clock; valuation = mk (); draw = mk (); dispatch = mk (); publish = mk () }

let start t = t.clock ()

let hdr t = function
  | Valuation -> t.valuation
  | Draw -> t.draw
  | Dispatch -> t.dispatch
  | Publish -> t.publish

let stop t phase t0 = Hdr.record (hdr t phase) (t.clock () - t0)

let phase_name = function
  | Valuation -> "valuation"
  | Draw -> "draw"
  | Dispatch -> "dispatch"
  | Publish -> "publish"

let summary t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-10s %10s %10s %24s\n" "phase" "count" "total(ms)"
       "p50/p90/p99 (us)");
  List.iter
    (fun phase ->
      let h = hdr t phase in
      let n = Hdr.count h in
      let pcts =
        if n = 0 then "-"
        else
          Printf.sprintf "%.1f/%.1f/%.1f"
            (Hdr.percentile h 50. /. 1000.)
            (Hdr.percentile h 90. /. 1000.)
            (Hdr.percentile h 99. /. 1000.)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-10s %10d %10.2f %24s\n" (phase_name phase) n
           (float_of_int (Hdr.sum h) /. 1e6)
           pcts))
    [ Valuation; Draw; Dispatch; Publish ];
  Buffer.contents buf
