(** Causal span tracer for RPC requests.

    Every RPC request is a {e span}: its id is the kernel [msg_id] (unique
    per kernel), its parent is the span the sender was itself servicing
    when it sent (carried on [Event.Rpc_send]), so nested RPC chains —
    client → server → backend — form trees. Subscribing a tracer to the
    kernel {!Bus} reconstructs every span's life from the event stream
    alone:

    - [Rpc_send] opens the span (pending in the port queue),
    - [Rpc_recv] marks it served (some server thread is working on it),
    - [Rpc_reply] closes it,
    - [Rpc_reply_dropped] closes it as {!Dropped},
    - [Rpc_shed] closes it as {!Dropped} (admission control on a bounded
      port evicted a queued request, or — for a request rejected before
      its [Rpc_send] — opens and immediately drops the span, so shed
      traffic is never invisible in traces),
    - [Exit] of either endpoint flags it {!Orphaned} — a span is never
      silently leaked, which the chaos soak asserts over kill-heavy runs.

    Memory is bounded: finished spans beyond [retain] are evicted oldest
    first ({!evicted} counts them); in-flight spans are always kept. *)

type status =
  | Pending  (** sent, not yet picked up by a server *)
  | Serving  (** picked up, reply outstanding *)
  | Closed  (** replied normally *)
  | Dropped of string
      (** the server replied but delivery was impossible (client dead),
          reason as carried on [Rpc_reply_dropped] — or admission control
          shed the request, reason ["shed: <policy>"] as carried on
          [Rpc_shed] *)
  | Orphaned of string
      (** an endpoint died (or the run ended) before the reply: flagged,
          not leaked. Reasons: ["client died"], ["server died"],
          ["unfinished at finalize"]. *)

type span = {
  id : int;  (** = kernel [msg_id] *)
  port : string;
  client : Event.actor;
  parent : int option;  (** enclosing span of the sender, if any *)
  sent_at : int;
  mutable server : Event.actor option;
  mutable recv_at : int option;
  mutable closed_at : int option;  (** set for [Closed]/[Dropped]/[Orphaned] *)
  mutable status : status;
  mutable children : int list;  (** child span ids, reverse send order *)
}

type t

val create : ?retain:int -> unit -> t
(** [retain] (default 65536, must be positive) bounds how many {e finished}
    spans are kept; older finished spans are evicted. *)

val attach : t -> Bus.t -> unit
(** Raises [Invalid_argument] if already attached. *)

val detach : t -> unit

val on_event : t -> int -> Event.t -> unit
(** Feed one event directly (what {!attach} wires up). *)

val finalize : t -> now:int -> unit
(** End of run: every span still [Pending]/[Serving] becomes
    [Orphaned "unfinished at finalize"]. Idempotent thereafter. *)

val find : t -> int -> span option
val iter : t -> (span -> unit) -> unit
(** Retained spans in send order. *)

val spans : t -> span list
(** Retained spans in send order. *)

val total : t -> int
(** Spans ever opened (including evicted ones). *)

val evicted : t -> int

val violations : t -> string list
(** Structural impossibilities seen in the event stream — a recv for an
    unknown or already-received span, a reply to an unknown or
    already-closed span, a duplicate span id. Empty on a healthy kernel,
    including under fault injection: kills produce {!Orphaned}/{!Dropped}
    spans, never violations. *)

type stats = {
  st_total : int;  (** spans ever opened *)
  st_closed : int;
  st_dropped : int;
  st_orphaned : int;
  st_open : int;  (** still pending/serving (0 after {!finalize}) *)
}

val stats : t -> stats
(** Counts over {e all} spans ever opened (eviction does not forget). *)

val to_chrome_json : ?pid:int -> t -> string
(** Chrome trace-event JSON of the retained spans as async ["b"]/["e"]
    pairs (one track per request id, named after the port) with
    client/server/status/parent under ["args"], loadable in Perfetto
    alongside (or instead of) the {!Recorder} trace. Orphaned and dropped
    spans close at their flag time and carry their status. *)
