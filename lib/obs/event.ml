type actor = { tid : int; tname : string }

type slice_end = End_quantum | End_yield | End_block | End_exit | End_horizon

type t =
  | Select of { who : actor; cpu : int }
      (** [cpu] is the virtual CPU taking the slice (always [0] on a
          single-CPU kernel); [render] deliberately omits it so the legacy
          trace lines stay byte-identical. *)
  | Preempt of { who : actor; used : int; quantum : int; why : slice_end }
  | Block of { who : actor; on : string }
  | Wake of { who : actor }
  | Spawn of { who : actor }
  | Exit of { who : actor; failure : string option }
  | Donate of { src : actor; dst : actor }
  | Compensate of { who : actor; factor : float }
  | Lock_acquire of { who : actor; mutex : string; contended : bool }
  | Lock_release of { who : actor; mutex : string }
  | Rpc_send of { who : actor; port : string; msg_id : int; parent : int option }
  | Rpc_recv of { who : actor; port : string; msg_id : int; sender : actor }
  | Rpc_reply of { who : actor; client : actor; msg_id : int }
  | Resource_draw of {
      who : actor;
      resource : string;
      contenders : int;
      total_weight : float;
    }
  | Rpc_reply_dropped of { who : actor; client : actor; msg_id : int; reason : string }
  | Rpc_shed of {
      who : actor;  (** the request's sender (new arrival or evicted victim) *)
      port : string;
      msg_id : int;
      reason : string;  (** ["reject-new"], ["drop-oldest"] or ["no-victim"] *)
      parent : int option;
          (** like {!Rpc_send}: the span the sender was itself servicing, so
              rejected-before-send requests still get a well-parented span *)
    }
  | Fault_injected of { who : actor; fault : string }
  | Invariant_violation of { who : actor; what : string }

let actor_of ~tid ~tname = { tid; tname }

let kernel_actor = { tid = -1; tname = "kernel" }

let who = function
  | Select { who; _ }
  | Preempt { who; _ }
  | Block { who; _ }
  | Wake { who }
  | Spawn { who }
  | Exit { who; _ }
  | Compensate { who; _ }
  | Lock_acquire { who; _ }
  | Lock_release { who; _ }
  | Rpc_send { who; _ }
  | Rpc_recv { who; _ }
  | Rpc_reply { who; _ }
  | Resource_draw { who; _ }
  | Rpc_reply_dropped { who; _ }
  | Rpc_shed { who; _ }
  | Fault_injected { who; _ }
  | Invariant_violation { who; _ } -> who
  | Donate { src; _ } -> src

let tag = function
  | Select _ -> "select"
  | Preempt _ -> "preempt"
  | Block _ -> "block"
  | Wake _ -> "wake"
  | Spawn _ -> "spawn"
  | Exit _ -> "exit"
  | Donate _ -> "donate"
  | Compensate _ -> "compensate"
  | Lock_acquire _ -> "lock-acquire"
  | Lock_release _ -> "lock-release"
  | Rpc_send _ -> "rpc-send"
  | Rpc_recv _ -> "rpc-recv"
  | Rpc_reply _ -> "rpc-reply"
  | Resource_draw _ -> "resource-draw"
  | Rpc_reply_dropped _ -> "rpc-reply-dropped"
  | Rpc_shed _ -> "rpc-shed"
  | Fault_injected _ -> "fault-injected"
  | Invariant_violation _ -> "invariant-violation"

let slice_end_tag = function
  | End_quantum -> "quantum"
  | End_yield -> "yield"
  | End_block -> "block"
  | End_exit -> "exit"
  | End_horizon -> "horizon"

let detail = function
  | Select _ | Wake _ | Spawn _ -> ""
  | Preempt { used; quantum; why; _ } ->
      Printf.sprintf "used %d/%d (%s)" used quantum (slice_end_tag why)
  | Block { on; _ } -> on
  | Exit { failure = None; _ } -> ""
  | Exit { failure = Some e; _ } -> e
  | Donate { dst; _ } -> "-> " ^ dst.tname
  | Compensate { factor; _ } -> Printf.sprintf "factor %.3f" factor
  | Lock_acquire { mutex; contended; _ } ->
      if contended then mutex ^ " (contended)" else mutex
  | Lock_release { mutex; _ } -> mutex
  | Rpc_send { port; msg_id; parent; _ } -> (
      match parent with
      | None -> Printf.sprintf "%s #%d" port msg_id
      | Some p -> Printf.sprintf "%s #%d (in #%d)" port msg_id p)
  | Rpc_recv { port; msg_id; sender; _ } ->
      Printf.sprintf "%s #%d from %s" port msg_id sender.tname
  | Rpc_reply { client; msg_id; _ } ->
      Printf.sprintf "-> %s #%d" client.tname msg_id
  | Resource_draw { resource; contenders; total_weight; _ } ->
      Printf.sprintf "%s (%d contenders, total %.6g)" resource contenders
        total_weight
  | Rpc_reply_dropped { client; msg_id; reason; _ } ->
      Printf.sprintf "-> %s #%d (%s)" client.tname msg_id reason
  | Rpc_shed { port; msg_id; reason; _ } ->
      Printf.sprintf "%s #%d (%s)" port msg_id reason
  | Fault_injected { fault; _ } -> fault
  | Invariant_violation { what; _ } -> what

(* The five legacy lines must stay byte-identical to the pre-bus string
   tracer: determinism tests diff them across runs, and downstream tools
   may grep them. *)
let render ev =
  match ev with
  | Spawn { who } -> "spawn " ^ who.tname
  | Block { who; _ } -> "block " ^ who.tname
  | Wake { who } -> "wake " ^ who.tname
  | Select { who; _ } -> "select " ^ who.tname
  | Exit { who; failure } ->
      "exit " ^ who.tname ^ (match failure with None -> "" | Some e -> " (" ^ e ^ ")")
  | _ -> (
      let w = (who ev).tname in
      match detail ev with
      | "" -> tag ev ^ " " ^ w
      | d -> tag ev ^ " " ^ w ^ " " ^ d)
