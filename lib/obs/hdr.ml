(* Log-linear bucketing (the HdrHistogram construction):

     index(v) = v                                          for v < 2^sub_bits
              = (msb(v) - sub_bits + 1) * 2^sub_bits
                + (top sub_bits+1 bits of v) - 2^sub_bits  otherwise

   so each power-of-two range [2^m, 2^(m+1)) is cut into 2^sub_bits linear
   sub-buckets of width 2^(m - sub_bits): bucket width / bucket floor is at
   most 2^-sub_bits, the advertised relative-error bound. The linear region
   below 2^sub_bits has unit buckets (exact). *)

type t = {
  sub_bits : int;
  sub : int;  (* 2^sub_bits *)
  max_value : int;
  counts : int array;
  mutable total : int;
  mutable clamped : int;
  mutable sum : int;  (* of exact (unclamped) sample values *)
  mutable min_v : int;
  mutable max_v : int;
}

(* position of the highest set bit; tail-recursive so {!record} stays
   allocation-free (a [ref] would be a heap block) *)
let rec msb_pos v acc = if v <= 1 then acc else msb_pos (v lsr 1) (acc + 1)

let bucket_count ~sub_bits ~sub ~max_value =
  (msb_pos max_value 0 - sub_bits + 2) * sub

let create ?(sub_bits = 5) ?(max_value = 1 lsl 30) () =
  if sub_bits < 1 || sub_bits > 16 then invalid_arg "Hdr.create: sub_bits out of range";
  let sub = 1 lsl sub_bits in
  if max_value < sub then invalid_arg "Hdr.create: max_value < 2^sub_bits";
  {
    sub_bits;
    sub;
    max_value;
    counts = Array.make (bucket_count ~sub_bits ~sub ~max_value) 0;
    total = 0;
    clamped = 0;
    sum = 0;
    min_v = max_int;
    max_v = min_int;
  }

let[@inline] index t v =
  if v < t.sub then v
  else begin
    let m = msb_pos v 0 in
    let shift = m - t.sub_bits in
    ((shift + 1) * t.sub) + (v lsr shift) - t.sub
  end

let record t v =
  let v = if v < 0 then 0 else v in
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  let v =
    if v > t.max_value then begin
      t.clamped <- t.clamped + 1;
      t.max_value
    end
    else v
  in
  let i = index t v in
  Array.unsafe_set t.counts i (Array.unsafe_get t.counts i + 1)

let count t = t.total
let clamped t = t.clamped
let sum t = t.sum

let check_nonempty name t = if t.total = 0 then invalid_arg (name ^ ": empty histogram")

let mean t =
  check_nonempty "Hdr.mean" t;
  float_of_int t.sum /. float_of_int t.total

let min_value t =
  check_nonempty "Hdr.min_value" t;
  t.min_v

let max_value_seen t =
  check_nonempty "Hdr.max_value_seen" t;
  t.max_v

(* inclusive value bounds of bucket [i] *)
let bounds t i =
  if i < t.sub then (i, i)
  else begin
    let shift = (i / t.sub) - 1 in
    let lo = ((i mod t.sub) + t.sub) lsl shift in
    (lo, lo + (1 lsl shift) - 1)
  end

let percentile t p =
  check_nonempty "Hdr.percentile" t;
  if p < 0. || p > 100. then invalid_arg "Hdr.percentile: p out of range";
  let target =
    let r = int_of_float (ceil (p /. 100. *. float_of_int t.total)) in
    if r < 1 then 1 else if r > t.total then t.total else r
  in
  let n = Array.length t.counts in
  let rec walk i cum =
    if i >= n then t.max_v (* unreachable: counts sum to total *)
    else begin
      let cum = cum + t.counts.(i) in
      if cum >= target then begin
        let lo, hi = bounds t i in
        (lo + hi + 1) / 2
      end
      else walk (i + 1) cum
    end
  in
  let mid = walk 0 0 in
  let v = if mid < t.min_v then t.min_v else if mid > t.max_v then t.max_v else mid in
  float_of_int v

let max_relative_error t = 1. /. float_of_int t.sub

let merge ~into src =
  if into.sub_bits <> src.sub_bits || into.max_value <> src.max_value then
    invalid_arg "Hdr.merge: mismatched histogram parameters";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.total <- into.total + src.total;
  into.clamped <- into.clamped + src.clamped;
  into.sum <- into.sum + src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let copy t =
  {
    t with
    counts = Array.copy t.counts;
  }

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.clamped <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- min_int

let iter_buckets t f =
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo, hi = bounds t i in
        f ~lo ~hi ~count:c
      end)
    t.counts
