type t = {
  cap : int;
  buf : (int * Event.t) option array;
  mutable next : int;  (** write cursor *)
  mutable seen : int;
  mutable sub : Bus.subscription option;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity <= 0";
  { cap = capacity; buf = Array.make capacity None; next = 0; seen = 0; sub = None }

let record t time ev =
  t.buf.(t.next) <- Some (time, ev);
  t.next <- (t.next + 1) mod t.cap;
  t.seen <- t.seen + 1

let attach t bus =
  if t.sub <> None then invalid_arg "Recorder.attach: already attached";
  t.sub <- Some (Bus.subscribe ~name:"recorder" bus (fun time ev -> record t time ev))

let detach t =
  match t.sub with
  | Some s ->
      Bus.unsubscribe s;
      t.sub <- None
  | None -> ()

let capacity t = t.cap
let length t = min t.seen t.cap
let seen t = t.seen
let dropped t = max 0 (t.seen - t.cap)

let events t =
  let n = length t in
  let start = if t.seen <= t.cap then 0 else t.next in
  List.init n (fun i ->
      match t.buf.((start + i) mod t.cap) with
      | Some e -> e
      | None -> assert false)

let clear t =
  Array.fill t.buf 0 t.cap None;
  t.next <- 0;
  t.seen <- 0

(* --- Chrome trace-event JSON ------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json ?(pid = 1) t =
  let buf = Buffer.create 4096 in
  let first = ref true in
  let obj fields =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%s" k v))
      fields;
    Buffer.add_char buf '}'
  in
  let str s = "\"" ^ json_escape s ^ "\"" in
  let base ~name ~ph ~ts ~tid extra =
    obj
      ([ ("name", str name); ("ph", str ph); ("ts", string_of_int ts);
         ("pid", string_of_int pid); ("tid", string_of_int tid) ]
      @ extra)
  in
  let args kvs =
    [ ( "args",
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) kvs)
        ^ "}" ) ]
  in
  let instant ~name ~ts ~tid extra =
    base ~name ~ph:"i" ~ts ~tid (("s", str "t") :: extra)
  in
  (* flow events ("s"/"t"/"f") are bound to each other by (cat, name, id);
     one rpc:<msg_id> flow per request *)
  let flow ~ph ~ts ~tid ~id extra =
    obj
      ([ ("name", str "rpc"); ("cat", str "rpc"); ("ph", str ph);
         ("id", string_of_int id); ("ts", string_of_int ts);
         ("pid", string_of_int pid); ("tid", string_of_int tid) ]
      @ extra)
  in
  (* tids with an open B slice: the ring may have dropped a Select whose
     Preempt survived; only close slices we opened. *)
  let open_slices = Hashtbl.create 16 in
  Buffer.add_string buf "[\n";
  (* capture-window metadata first: a wrapped ring is detectable from the
     file alone, not just from whoever held the recorder *)
  obj
    [ ("name", str "trace_window"); ("ph", str "M"); ("ts", "0");
      ("pid", string_of_int pid); ("tid", "0");
      ( "args",
        Printf.sprintf "{\"seen\":%d,\"capacity\":%d,\"dropped\":%d}" t.seen
          t.cap (dropped t) ) ];
  (* thread-name metadata so Perfetto labels the tracks *)
  let named = Hashtbl.create 16 in
  let evs = events t in
  List.iter
    (fun (_, ev) ->
      let a = Event.who ev in
      if not (Hashtbl.mem named a.Event.tid) then begin
        Hashtbl.replace named a.Event.tid ();
        obj
          [ ("name", str "thread_name"); ("ph", str "M"); ("ts", "0");
            ("pid", string_of_int pid); ("tid", string_of_int a.Event.tid);
            ("args", "{\"name\":" ^ str a.Event.tname ^ "}") ]
      end)
    evs;
  let last_ts = ref 0 in
  List.iter
    (fun (ts, ev) ->
      last_ts := max !last_ts ts;
      match ev with
      | Event.Select { who; _ } ->
          Hashtbl.replace open_slices who.Event.tid who.Event.tname;
          base ~name:who.Event.tname ~ph:"B" ~ts ~tid:who.Event.tid []
      | Event.Preempt { who; used; quantum; why } ->
          if Hashtbl.mem open_slices who.Event.tid then begin
            Hashtbl.remove open_slices who.Event.tid;
            base ~name:who.Event.tname ~ph:"E" ~ts ~tid:who.Event.tid
              (args
                 [ ("used", string_of_int used);
                   ("quantum", string_of_int quantum);
                   ("end", str (Event.slice_end_tag why)) ])
          end
      | Event.Block { who; on } ->
          instant ~name:("block:" ^ on) ~ts ~tid:who.Event.tid []
      | Event.Wake { who } -> instant ~name:"wake" ~ts ~tid:who.Event.tid []
      | Event.Spawn { who } -> instant ~name:"spawn" ~ts ~tid:who.Event.tid []
      | Event.Exit { who; failure } ->
          instant ~name:"exit" ~ts ~tid:who.Event.tid
            (match failure with
            | None -> []
            | Some e -> args [ ("failure", str e) ])
      | Event.Donate { src; dst } ->
          instant ~name:"donate" ~ts ~tid:src.Event.tid
            (args [ ("to", str dst.Event.tname) ])
      | Event.Compensate { who; factor } ->
          instant ~name:"compensate" ~ts ~tid:who.Event.tid
            (args [ ("factor", Printf.sprintf "%.6g" factor) ])
      | Event.Lock_acquire { who; mutex; contended } ->
          instant ~name:("lock:" ^ mutex) ~ts ~tid:who.Event.tid
            (args [ ("contended", if contended then "true" else "false") ])
      | Event.Lock_release { who; mutex } ->
          instant ~name:("unlock:" ^ mutex) ~ts ~tid:who.Event.tid []
      | Event.Rpc_send { who; port; msg_id; parent } ->
          instant ~name:("rpc:" ^ port) ~ts ~tid:who.Event.tid
            (args
               (("msg", string_of_int msg_id)
               ::
               (match parent with
               | None -> []
               | Some p -> [ ("parent", string_of_int p) ])));
          (* flow start: the request leaves the client track here *)
          flow ~ph:"s" ~ts ~tid:who.Event.tid ~id:msg_id []
      | Event.Rpc_recv { who; port; msg_id; sender } ->
          instant ~name:("recv:" ^ port) ~ts ~tid:who.Event.tid
            (args [ ("msg", string_of_int msg_id); ("from", str sender.Event.tname) ]);
          (* flow step: picked up on the server track *)
          flow ~ph:"t" ~ts ~tid:who.Event.tid ~id:msg_id []
      | Event.Rpc_reply { who; client; msg_id } ->
          instant ~name:"reply" ~ts ~tid:who.Event.tid
            (args [ ("to", str client.Event.tname); ("msg", string_of_int msg_id) ]);
          (* flow finish: the reply lands back on the client track *)
          flow ~ph:"f" ~ts ~tid:client.Event.tid ~id:msg_id
            [ ("bp", str "e") ]
      | Event.Resource_draw { who; resource; contenders; total_weight } ->
          instant ~name:("draw:" ^ resource) ~ts ~tid:who.Event.tid
            (args
               [ ("winner", str who.Event.tname);
                 ("contenders", string_of_int contenders);
                 ("total", Printf.sprintf "%.6g" total_weight) ])
      | Event.Rpc_reply_dropped { who; client; msg_id; reason } ->
          instant ~name:"reply-dropped" ~ts ~tid:who.Event.tid
            (args
               [ ("to", str client.Event.tname); ("msg", string_of_int msg_id);
                 ("reason", str reason) ])
      | Event.Rpc_shed { who; port; msg_id; reason; _ } ->
          instant ~name:("shed:" ^ port) ~ts ~tid:who.Event.tid
            (args [ ("msg", string_of_int msg_id); ("reason", str reason) ])
      | Event.Fault_injected { who; fault } ->
          instant ~name:"fault" ~ts ~tid:who.Event.tid (args [ ("fault", str fault) ])
      | Event.Invariant_violation { who; what } ->
          instant ~name:"invariant-violation" ~ts ~tid:who.Event.tid
            (args [ ("what", str what) ]))
    evs;
  (* close slices left open at capture end so the JSON is well-balanced *)
  Hashtbl.iter
    (fun tid tname -> base ~name:tname ~ph:"E" ~ts:!last_ts ~tid [])
    open_slices;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(* --- CSV ---------------------------------------------------------------- *)

let csv_quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time_us,event,tid,thread,detail\n";
  if dropped t > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "# dropped %d oldest events (ring capacity %d, saw %d): window is \
          incomplete\n"
         (dropped t) t.cap t.seen);
  List.iter
    (fun (ts, ev) ->
      let a = Event.who ev in
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%d,%s,%s\n" ts (Event.tag ev) a.Event.tid
           (csv_quote a.Event.tname)
           (csv_quote (Event.detail ev))))
    (events t);
  Buffer.contents buf
