(** Bounded-memory log-linear histogram for latency metrics.

    A fixed array of integer buckets covering [0, max_value]: values below
    [2^sub_bits] get exact unit-width buckets; above that, each power-of-two
    range is split into [2^sub_bits] linear sub-buckets, so the bucket width
    at value [v] is at most [v / 2^sub_bits]. Reported quantiles are bucket
    midpoints, giving a guaranteed relative error of at most
    {!max_relative_error} [= 2^-sub_bits] against the exact sample (half
    that in expectation). This is the HdrHistogram construction, sized for
    microsecond latencies.

    {!record} is O(1), touches only preallocated [int] state, and allocates
    {e nothing} per sample — the property the [obs-overhead/hdr] benchmark
    gates on minor words. Memory is fixed at creation (about
    [(log2 max_value - sub_bits + 2) * 2^sub_bits] words — ~7 KB at the
    defaults) regardless of how many samples are recorded, so a registry of
    thousands of histograms survives runs with millions of samples.
    Histograms with identical parameters {!merge}, enabling per-domain
    accumulation with [Lotto_par] fan-in. *)

type t

val create : ?sub_bits:int -> ?max_value:int -> unit -> t
(** [sub_bits] (default 5, range 1..16) sets the precision: relative error
    is bounded by [2^-sub_bits]. [max_value] (default [2^30], must be
    [>= 2^sub_bits]) is the largest exactly-tracked value; larger samples
    are clamped into the top bucket and counted by {!clamped} (they still
    contribute their exact value to {!sum} and {!max}). *)

val record : t -> int -> unit
(** Record one sample. Negative values clamp to 0. O(1), zero allocation. *)

val count : t -> int
(** Samples recorded (including clamped ones). *)

val clamped : t -> int
(** Samples that exceeded [max_value] and were clamped into the top bucket
    (their quantile estimates are floored at [max_value]). *)

val sum : t -> int
(** Exact sum of recorded samples (unclamped values). *)

val mean : t -> float
(** Exact mean ([sum / count]). Raises [Invalid_argument] when empty. *)

val min_value : t -> int
(** Exact minimum sample. Raises [Invalid_argument] when empty. *)

val max_value_seen : t -> int
(** Exact maximum sample. Raises [Invalid_argument] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0., 100.]: the midpoint of the bucket
    holding the sample of rank [ceil (p/100 * count)], clamped into
    [[min_value, max_value_seen]]. Within {!max_relative_error} of the
    exact order statistic. Raises [Invalid_argument] when empty or [p] is
    out of range. *)

val max_relative_error : t -> float
(** [2^-sub_bits]: guaranteed bound on [|estimate - exact| / exact] for any
    unclamped quantile. *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds every bucket of [src] into [into]. Raises
    [Invalid_argument] unless both were created with the same [sub_bits]
    and [max_value]. [src] is unchanged. *)

val copy : t -> t
(** Independent snapshot. *)

val reset : t -> unit

val iter_buckets : t -> (lo:int -> hi:int -> count:int -> unit) -> unit
(** Non-empty buckets in increasing value order; [lo]/[hi] are the
    inclusive value bounds of each bucket. For exporters. *)
