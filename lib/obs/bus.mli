(** Multi-subscriber event bus.

    The kernel owns one bus and publishes every {!Event.t} on it; any
    number of observers — the ASCII {!Lotto_sim.Timeline}, a
    {!Recorder}, a {!Metrics} registry, test probes — subscribe
    concurrently and each receives the full stream in emission order.
    Subscribing never displaces another observer (unlike the old
    single-slot string tracer).

    Designed so an idle bus costs one branch per would-be event on the
    kernel's hot path: publishers guard with {!active} and only construct
    the event when somebody is listening. *)

type t
type subscription

val create : unit -> t

val subscribe : ?name:string -> t -> (int -> Event.t -> unit) -> subscription
(** [subscribe bus f] registers [f], called as [f time event] for every
    subsequent emission. [name] is reported by {!subscribers} for
    debugging. Callbacks run synchronously on the emitting (simulation)
    path and must not block; exceptions propagate to the kernel. *)

val unsubscribe : subscription -> unit
(** Remove one subscriber; other subscriptions are untouched. Idempotent. *)

val active : t -> bool
(** [true] when at least one subscriber is registered. Publishers should
    test this before building an event. O(1). *)

val subscriber_count : t -> int
val subscribers : t -> string list
(** Names of current subscribers (["?"] for anonymous ones). *)

val emit : t -> time:int -> Event.t -> unit
(** Deliver to every current subscriber in subscription order. A
    subscriber unsubscribing (or new ones subscribing) during delivery
    takes effect from the next emission. *)
