(** Bounded ring-buffer trace recorder.

    Subscribes to a {!Bus} and keeps the most recent [capacity] timestamped
    events; older ones are overwritten and counted in {!dropped}. The
    captured window exports to Chrome trace-event JSON (loadable in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}) and to CSV. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 65536 events; must be positive. *)

val attach : t -> Bus.t -> unit
(** Start recording from [bus]. Raises [Invalid_argument] if already
    attached. *)

val detach : t -> unit
(** Stop recording (keeps the captured events). Idempotent. *)

val record : t -> int -> Event.t -> unit
(** Feed one event directly (what {!attach} wires up); exposed for tests
    and for recording without a bus. *)

val capacity : t -> int
val length : t -> int
(** Events currently held (≤ capacity). *)

val seen : t -> int
(** Total events observed, including overwritten ones. *)

val dropped : t -> int
(** [max 0 (seen - capacity)]: events lost to wraparound. *)

val events : t -> (int * Event.t) list
(** Captured [(time, event)] pairs, oldest first. *)

val clear : t -> unit

(** {1 Exporters} *)

val to_chrome_json : ?pid:int -> t -> string
(** Chrome trace-event format: a JSON array of objects with ["name"],
    ["ph"], ["ts"] (µs), ["pid"] and ["tid"] fields. Scheduling slices
    appear as ["B"]/["E"] duration pairs per thread track (opened by
    [Select], closed by the matching [Preempt]); RPC requests additionally
    emit flow events — ["s"] on the client at [Rpc_send], ["t"] on the
    server at [Rpc_recv], ["f"] back on the client at [Rpc_reply], all
    bound by [id = msg_id] — so Perfetto draws each request as a connected
    arrow path across thread tracks; everything else becomes thread-scoped
    instant events with details under ["args"]. The first record is
    metadata (["ph":"M"], name [trace_window]) carrying [seen], [capacity]
    and [dropped], so a wrapped window is detectable from the file alone.
    All strings are JSON-escaped. [pid] defaults to 1. *)

val to_csv : t -> string
(** One row per event: [time_us,event,tid,thread,detail], with RFC-4180
    quoting on the name/detail columns. When the ring wrapped, a comment
    row [# dropped N oldest events ...] follows the header so the loss is
    visible in the file itself. *)

val json_escape : string -> string
(** JSON string-body escaping used by the exporters; shared with
    {!Span.to_chrome_json}. *)
