(** Scheduler phase profiler: where the per-slice budget goes.

    Splits each scheduling slice's {e host-machine} cost into four phases —
    ticket {e valuation} (funding-graph flush), lottery {e draw},
    {e dispatch} (continuation resume, i.e. the thread's own slice), and
    event {e publish} (bus fan-out) — each accumulated into an {!Hdr}
    histogram of nanoseconds. The kernel times dispatch and publish; the
    scheduler times valuation and draw inside [select] (the kernel cannot
    see past that call).

    The clock is injected so [lib/obs] needs no [unix] dependency: pass any
    monotonic nanosecond counter ([lottosim] wraps [Unix.gettimeofday]).
    The instrumented path is two clock reads and one {!Hdr.record} per
    phase occurrence — zero allocation, and entirely skipped when no
    profiler is installed. *)

type phase = Valuation | Draw | Dispatch | Publish

type t

val create : clock:(unit -> int) -> unit -> t
(** [clock] must be monotonic, in nanoseconds (any fixed unit works; the
    rendering labels assume ns). *)

val start : t -> int
(** Read the clock. Pair with {!stop}. *)

val stop : t -> phase -> int -> unit
(** [stop t phase t0] records [clock () - t0] into [phase]'s histogram. *)

val hdr : t -> phase -> Hdr.t
(** The live histogram for [phase] (do not mutate; {!Hdr.copy} to keep). *)

val phase_name : phase -> string
(** ["valuation"] / ["draw"] / ["dispatch"] / ["publish"]. *)

val summary : t -> string
(** Text table: per-phase count, total ms, and p50/p90/p99 µs. *)
