type subscriber = { sid : int; sname : string; fn : int -> Event.t -> unit }

type t = {
  mutable subs : subscriber array;  (** emission order; rebuilt on churn *)
  mutable next_sid : int;
}

type subscription = { bus : t; id : int }

let create () = { subs = [||]; next_sid = 0 }

let subscribe ?(name = "?") t fn =
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  t.subs <- Array.append t.subs [| { sid; sname = name; fn } |];
  { bus = t; id = sid }

let unsubscribe { bus; id } =
  bus.subs <- Array.of_list (List.filter (fun s -> s.sid <> id) (Array.to_list bus.subs))

let active t = Array.length t.subs > 0
let subscriber_count t = Array.length t.subs
let subscribers t = Array.to_list t.subs |> List.map (fun s -> s.sname)

let emit t ~time ev =
  (* snapshot: churn during delivery affects the next emission only *)
  let subs = t.subs in
  for i = 0 to Array.length subs - 1 do
    (Array.unsafe_get subs i).fn time ev
  done
