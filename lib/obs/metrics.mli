(** Per-thread metrics registry and fairness gauge.

    Subscribes to a {!Bus} and accumulates, per thread: lottery wins
    (selections), quanta ticks received, compensation-ticket activations,
    block counts, donation/lock/RPC counters, and two latency
    distributions — {e wait time} (block → wake) and {e dispatch latency}
    (runnable → selected) — recorded into bounded-memory {!Hdr} histograms
    (O(1) per sample, no per-sample allocation, quantiles within
    {!Hdr.max_relative_error}). Raw per-sample retention is available
    behind [~raw:true] for tests that need exact values. The fairness
    gauge checks observed CPU share against ticket entitlement with
    {!Lotto_stats.Chi_square}, the paper's own accuracy measure
    (§2, Figures 1–5). *)

type t

val create : ?raw:bool -> unit -> t
(** [raw] (default [false]) additionally retains every wait/dispatch
    sample in growable arrays — unbounded memory, for tests and offline
    analysis only; histograms are always maintained. *)

val attach : t -> Bus.t -> unit
(** Raises [Invalid_argument] if already attached. *)

val detach : t -> unit
val on_event : t -> int -> Event.t -> unit
(** Feed one event directly (what {!attach} wires up). *)

(** Accumulated counters for one thread. Latencies are in µs of virtual
    time. *)
type snapshot = {
  tid : int;
  name : string;
  wins : int;  (** times selected to run (= lotteries won) *)
  quanta : int;  (** CPU ticks received *)
  compensations : int;  (** compensation-ticket activations (§4.5) *)
  blocks : int;
  donations : int;  (** transfers made while blocked (§4.6) *)
  lock_acquires : int;
  lock_contended : int;  (** acquisitions that had to queue *)
  rpcs : int;  (** requests sent *)
  rpcs_served : int;  (** requests picked up for service *)
  rpcs_shed : int;  (** requests shed by bounded-port admission control *)
  wait : Hdr.t;  (** block → wake durations (private copy) *)
  dispatch : Hdr.t;  (** runnable → selected durations (private copy) *)
  wait_us : float array;
      (** exact block → wake samples in arrival order; empty unless the
          registry was created with [~raw:true] *)
  dispatch_us : float array;  (** likewise for runnable → selected *)
}

val snapshots : t -> snapshot list
(** One per thread observed, in first-seen order. *)

val total_quanta : t -> int

(** Observed-vs-entitled share comparison for one thread. *)
type share = {
  s_tid : int;
  s_name : string;
  s_quanta : int;
  observed : float;  (** share of total quanta ticks among compared threads *)
  entitled : float;  (** normalized entitlement *)
}

val fairness : t -> entitled:(int * float) list -> share list * float option
(** [fairness m ~entitled] compares observed CPU shares against the given
    [(tid, weight)] entitlements (weights need not be normalized; threads
    not listed are excluded from the comparison, and a tid listed more than
    once counts once — the first entry wins). The second component is
    the chi-square upper-tail p-value of observed CPU time, binned into
    quantum-sized slices, against entitlement-proportional expectations —
    high values mean the allocation is statistically consistent with the
    ticket split — or [None] when it is undefined (no CPU observed, fewer
    than two threads, or a zero entitlement). CPU time rather than raw win
    counts is compared because compensation tickets (§3.4) intentionally
    inflate an I/O-bound thread's win rate while keeping its CPU share
    proportional. *)

val summary : ?entitled:(int * float) list -> t -> string
(** Render the whole registry as text: a per-thread counter table with
    wait-time and dispatch-latency percentiles (read off the histograms in
    O(buckets) — no sorting, no sample copies), plus (with [entitled]) the
    observed-vs-entitled share table and chi-square fairness verdict. *)

val profile : Profile.t -> string
(** Render a scheduler phase profile as a summary section: per-phase
    (valuation / draw / dispatch / publish) count, total host time and
    percentiles. Printed by [lottosim --profile]. *)

val to_prom : ?namespace:string -> t -> string
(** Prometheus text exposition (version 0.0.4) of the registry: one
    [counter] family per counter with [thread]/[tid] labels, and [summary]
    families for wait/dispatch latency with quantiles
    0.5/0.9/0.99/0.999 read off the histograms. [namespace] (default
    ["lotto"]) prefixes every family name. Suitable for writing to a
    textfile-collector path from a long-running sim. *)
