(** Per-thread metrics registry and fairness gauge.

    Subscribes to a {!Bus} and accumulates, per thread: lottery wins
    (selections), quanta ticks received, compensation-ticket activations,
    block counts, donation/lock/RPC counters, and two latency sample sets —
    {e wait time} (block → wake) and {e dispatch latency} (runnable →
    selected). Percentiles come from {!Lotto_stats.Descriptive}; the
    fairness gauge checks observed CPU share against ticket entitlement
    with {!Lotto_stats.Chi_square}, the paper's own accuracy measure
    (§2, Figures 1–5). *)

type t

val create : unit -> t
val attach : t -> Bus.t -> unit
(** Raises [Invalid_argument] if already attached. *)

val detach : t -> unit
val on_event : t -> int -> Event.t -> unit
(** Feed one event directly (what {!attach} wires up). *)

(** Accumulated counters for one thread. Latency samples are in µs of
    virtual time, in arrival order. *)
type snapshot = {
  tid : int;
  name : string;
  wins : int;  (** times selected to run (= lotteries won) *)
  quanta : int;  (** CPU ticks received *)
  compensations : int;  (** compensation-ticket activations (§4.5) *)
  blocks : int;
  donations : int;  (** transfers made while blocked (§4.6) *)
  lock_acquires : int;
  lock_contended : int;  (** acquisitions that had to queue *)
  rpcs : int;  (** requests sent *)
  wait_us : float array;  (** block → wake durations *)
  dispatch_us : float array;  (** runnable → selected durations *)
}

val snapshots : t -> snapshot list
(** One per thread observed, in first-seen order. *)

val total_quanta : t -> int

(** Observed-vs-entitled share comparison for one thread. *)
type share = {
  s_tid : int;
  s_name : string;
  s_quanta : int;
  observed : float;  (** share of total quanta ticks among compared threads *)
  entitled : float;  (** normalized entitlement *)
}

val fairness : t -> entitled:(int * float) list -> share list * float option
(** [fairness m ~entitled] compares observed CPU shares against the given
    [(tid, weight)] entitlements (weights need not be normalized; threads
    not listed are excluded from the comparison). The second component is
    the chi-square upper-tail p-value of observed CPU time, binned into
    quantum-sized slices, against entitlement-proportional expectations —
    high values mean the allocation is statistically consistent with the
    ticket split — or [None] when it is undefined (no CPU observed, fewer
    than two threads, or a zero entitlement). CPU time rather than raw win
    counts is compared because compensation tickets (§3.4) intentionally
    inflate an I/O-bound thread's win rate while keeping its CPU share
    proportional. *)

val summary : ?entitled:(int * float) list -> t -> string
(** Render the whole registry as text: a per-thread counter table with
    wait-time and dispatch-latency percentiles, plus (with [entitled]) the
    observed-vs-entitled share table and chi-square fairness verdict. *)
