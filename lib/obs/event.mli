(** The typed kernel-event taxonomy.

    One constructor per observable scheduling decision or synchronization
    action. Events reference threads through lightweight {!actor} records
    (id + name) rather than live kernel objects, so recorders can outlive
    the simulation and exporters need no kernel access.

    Timestamps are carried beside events by the {!Bus}, not inside them:
    every subscriber receives [(time, event)] pairs in emission order. *)

type actor = { tid : int; tname : string }

(** Why a scheduling slice ended (carried on [Preempt], which is emitted at
    {e every} slice end so per-slice CPU accounting needs no inference). *)
type slice_end =
  | End_quantum  (** consumed its full quantum *)
  | End_yield  (** voluntarily surrendered the remainder *)
  | End_block  (** blocked (a [Block] event precedes this one) *)
  | End_exit  (** exited (an [Exit] event precedes this one) *)
  | End_horizon  (** the run horizon landed mid-slice *)

type t =
  | Select of { who : actor; cpu : int }
      (** the scheduler picked [who] to run on virtual CPU [cpu] (always
          [0] on a single-CPU kernel); one lottery/decision per quantum per
          CPU. [render] omits [cpu] so legacy trace lines stay
          byte-identical. *)
  | Preempt of { who : actor; used : int; quantum : int; why : slice_end }
      (** [who]'s slice ended after [used] of [quantum] ticks *)
  | Block of { who : actor; on : string }
      (** [who] blocked; [on] is a static reason tag: ["sleep"], ["rpc"],
          ["recv"], ["lock"], ["cond"], ["sem"] or ["join"] *)
  | Wake of { who : actor }  (** [who] became runnable again *)
  | Spawn of { who : actor }
  | Exit of { who : actor; failure : string option }
  | Donate of { src : actor; dst : actor }
      (** blocked [src]'s resource rights now fund [dst] (§4.6) *)
  | Compensate of { who : actor; factor : float }
      (** [who] received a compensation ticket inflating its value by
          [factor] until its next quantum (§4.5) *)
  | Lock_acquire of { who : actor; mutex : string; contended : bool }
      (** [contended] when the mutex was handed off to a waiter rather
          than grabbed free *)
  | Lock_release of { who : actor; mutex : string }
  | Rpc_send of { who : actor; port : string; msg_id : int; parent : int option }
      (** client [who] sent request [msg_id] to [port]. [msg_id] doubles as
          the request's {e span id} (unique per kernel); [parent] is the
          span the sender was itself servicing when it sent — the causal
          edge {!Span} builds request trees from *)
  | Rpc_recv of { who : actor; port : string; msg_id : int; sender : actor }
      (** server [who] picked request [msg_id] up from [port] (direct
          handoff, queue drain, or poll) and is now servicing span
          [msg_id] *)
  | Rpc_reply of { who : actor; client : actor; msg_id : int }
      (** server [who] replied to [client]'s request [msg_id] *)
  | Resource_draw of {
      who : actor;  (** the winning client (manager-local id + name) *)
      resource : string;  (** e.g. ["disk"], ["io"], ["switch:p2"], ["mem"] *)
      contenders : int;  (** clients holding positive weight in this draw *)
      total_weight : float;
    }
      (** a resource manager held a lottery over its backlogged clients
          (§6, "Managing Diverse Resources") and [who] won *)
  | Rpc_reply_dropped of { who : actor; client : actor; msg_id : int; reason : string }
      (** server [who] replied to [client], but the client had exited or
          been killed (or otherwise abandoned the request): the reply was
          discarded instead of being delivered — the traced no-op that
          replaces the historical [Invalid_argument] in the server *)
  | Rpc_shed of {
      who : actor;
      port : string;
      msg_id : int;
      reason : string;
      parent : int option;
    }
      (** admission control on a bounded port shed request [msg_id]: [who]
          is the request's sender — the arriving client under
          ["reject-new"]/["no-victim"], the evicted victim under
          ["drop-oldest"]. [parent] mirrors {!Rpc_send} (the span the
          sender was servicing when it sent), so a request rejected before
          any [Rpc_send] was emitted still opens a correctly-parented span
          that {!Span} immediately marks [Dropped]. *)
  | Fault_injected of { who : actor; fault : string }
      (** a {!Lotto_chaos} injector perturbed the run at a scheduling
          boundary; [who] is the affected thread (or {!kernel_actor} for
          structure-level perturbations) and [fault] a stable description
          such as ["kill"] or ["perturb-waiters mutex m"] *)
  | Invariant_violation of { who : actor; what : string }
      (** a kernel or funding audit found an inconsistency; [who] is the
          implicated thread when there is one, else {!kernel_actor} *)

val actor_of : tid:int -> tname:string -> actor

val kernel_actor : actor
(** Pseudo-actor ([tid = -1], name ["kernel"]) carried by events that
    concern kernel-wide structures rather than one thread. *)

val who : t -> actor
(** The primary thread an event concerns (the [src] for [Donate], the
    server for [Rpc_reply]). *)

val tag : t -> string
(** Stable lowercase constructor tag (["select"], ["preempt"], ...); used
    by the CSV exporter and handy for filtering. *)

val slice_end_tag : slice_end -> string

val detail : t -> string
(** Human-readable payload rendering without the actor, e.g.
    ["-> server"] for a donation or ["mutex m (contended)"]. *)

val render : t -> string
(** Legacy one-line rendering. For the five event kinds the pre-bus string
    tracer emitted ([spawn]/[block]/[wake]/[select]/[exit]) the output is
    byte-identical to the old format, so string-based determinism checks
    keep working; new event kinds render as ["tag detail"] lines. *)
