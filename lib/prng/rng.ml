type algo = Park_miller | Splitmix64 | Xoshiro256pp

type impl =
  | Pm of Park_miller.t
  | Sm of Splitmix64.t
  | Xo of Xoshiro256.t

type t = { algo : algo; impl : impl }

(* 61 random bits from a 64-bit output: keeps values strictly below
   OCaml's max_int with room for rejection-sampling arithmetic. *)
let bits61 = 61
let range61 = 1 lsl bits61

let create ?(algo = Park_miller) ~seed () =
  let impl =
    match algo with
    | Park_miller -> Pm (Park_miller.create ~seed)
    | Splitmix64 -> Sm (Splitmix64.create ~seed)
    | Xoshiro256pp -> Xo (Xoshiro256.create ~seed)
  in
  { algo; impl }

let algo t = t.algo

let name t =
  match t.algo with
  | Park_miller -> "park-miller"
  | Splitmix64 -> "splitmix64"
  | Xoshiro256pp -> "xoshiro256++"

let copy t =
  let impl =
    match t.impl with
    | Pm g -> Pm (Park_miller.copy g)
    | Sm g -> Sm (Splitmix64.copy g)
    | Xo g -> Xo (Xoshiro256.copy g)
  in
  { t with impl }

let top61 x = Int64.to_int (Int64.shift_right_logical x (64 - bits61))

let raw t =
  match t.impl with
  | Pm g -> Park_miller.next g - 1 (* [0, modulus - 2] *)
  | Sm g -> top61 (Splitmix64.next_int64 g)
  | Xo g -> top61 (Xoshiro256.next_int64 g)

let raw_range t =
  match t.impl with Pm _ -> Park_miller.modulus - 1 | Sm _ | Xo _ -> range61

let int_below t n =
  if n <= 0 then invalid_arg "Rng.int_below: n <= 0";
  let range = raw_range t in
  if n <= range then begin
    (* Rejection sampling on the largest multiple of n below range. *)
    let limit = range - (range mod n) in
    let rec draw () =
      let r = raw t in
      if r < limit then r mod n else draw ()
    in
    draw ()
  end
  else if range <= 0x80000000 then begin
    (* Compose two draws; range^2 <= 2^62 still fits in a native int. *)
    let big = range * range in
    if n > big then invalid_arg "Rng.int_below: n exceeds generator range";
    let limit = big - (big mod n) in
    let rec draw () =
      let r = (raw t * range) + raw t in
      if r < limit then r mod n else draw ()
    in
    draw ()
  end
  else invalid_arg "Rng.int_below: n exceeds generator range"

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int_below t (hi - lo + 1)

(* [int_below t (1 lsl 53)] specialized to a closure-free loop: the draw
   hot paths turn the result into a float locally, so a draw allocates
   nothing (with Park–Miller; the 64-bit generators box an Int64 per raw
   draw). Consumes the stream exactly like the general path — 2^53 exceeds
   Park–Miller's single-draw range, so two draws are composed there; the
   61-bit generators use a single draw — keeping every seeded run
   bit-for-bit identical to the historical [int_below]-based definition. *)
let bits53 t =
  let n = 1 lsl 53 in
  let range = raw_range t in
  if n <= range then begin
    let limit = range - (range mod n) in
    let r = ref (raw t) in
    while !r >= limit do
      r := raw t
    done;
    !r mod n
  end
  else begin
    let big = range * range in
    let limit = big - (big mod n) in
    let r = ref ((raw t * range) + raw t) in
    while !r >= limit do
      r := (raw t * range) + raw t
    done;
    !r mod n
  end

let float_unit t = float_of_int (bits53 t) /. float_of_int (1 lsl 53)

let bool t = int_below t 2 = 1

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean <= 0";
  let u = 1. -. float_unit t in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1. -. float_unit t in
  let u2 = float_unit t in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int_below t (Array.length arr))

let split t =
  (* Scramble the drawn value through a SplitMix64 step: for an LCG like
     Park-Miller, seeding a child directly with a parent draw would create
     a stream identical to the parent's (same recurrence, same state). *)
  let sm = Splitmix64.create ~seed:(int_below t 0x3FFFFFFF) in
  let seed = 1 + (Int64.to_int (Int64.shift_right_logical (Splitmix64.next_int64 sm) 34)) in
  create ~algo:t.algo ~seed ()
