(** Unified deterministic random-number interface.

    All randomness in the library flows through a [t], created from an
    explicit seed, so every simulation and experiment is reproducible.
    The default algorithm is {!Park_miller}, matching the paper's prototype;
    higher-quality generators are available for statistical testing. *)

type t

type algo =
  | Park_miller  (** the paper's minimal-standard LCG (Appendix A) *)
  | Splitmix64
  | Xoshiro256pp

val create : ?algo:algo -> seed:int -> unit -> t
(** Default [algo] is [Park_miller]. *)

val algo : t -> algo
val name : t -> string
val copy : t -> t
(** Independent clone with identical current state. *)

val raw : t -> int
(** One raw draw, uniform on [\[0, raw_range t)]. *)

val raw_range : t -> int

val int_below : t -> int -> int
(** [int_below t n] is uniform on [\[0, n)], unbiased (rejection sampling).
    Raises [Invalid_argument] if [n <= 0] or [n] exceeds the generator's
    composable range. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform on [\[lo, hi\]] inclusive. *)

val bits53 : t -> int
(** Uniform on [\[0, 2^53)]: exactly [int_below t (1 lsl 53)], but
    closure-free so draw hot paths that turn it into a float locally
    allocate nothing (with the default Park–Miller generator). *)

val float_unit : t -> float
(** Uniform on [\[0, 1)] with 53 bits of precision where the generator
    allows; [float_of_int (bits53 t) /. 2^53]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed nonnegative float. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normally distributed float (Box–Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a nonempty array. *)

val split : t -> t
(** Derive an independently seeded generator of the same algorithm from the
    current stream (used to give each subsystem its own stream). *)
