open Lotto_sim
module Counter = Lotto_stats.Window.Counter

type t = {
  th : Types.thread;
  counter : Counter.t;
  mutable iterations : int;
  window : int;
}

let spawn kernel ~name ?(cost = Time.ms 1) ?(window = Time.seconds 1)
    ?(start_at = 0) () =
  if cost <= 0 then invalid_arg "Spinner.spawn: cost <= 0";
  let counter = Counter.create ~width:window in
  (* The body only runs once the kernel does, by which time the cell is
     filled. *)
  let cell = ref None in
  let th =
    Kernel.spawn kernel ~name (fun () ->
        let self = Option.get !cell in
        if start_at > 0 then Api.sleep start_at;
        while true do
          Api.compute cost;
          self.iterations <- self.iterations + 1;
          Counter.bump counter ~time:(Api.now ())
        done)
  in
  let t = { th; counter; iterations = 0; window } in
  cell := Some t;
  t

let thread t = t.th
let iterations t = t.iterations

let iterations_between t ~lo ~hi =
  let ws = Counter.windows t.counter ~upto:hi in
  let first = lo / t.window and last = (hi / t.window) - 1 in
  let acc = ref 0 in
  for i = first to min last (Array.length ws - 1) do
    acc := !acc + ws.(i)
  done;
  !acc

let windows t ~upto = Counter.windows t.counter ~upto
let cumulative t ~upto = Counter.cumulative t.counter ~upto

let rate_per_second t ~upto =
  Counter.rates t.counter ~upto ~per:(Time.seconds 1)
